(* The arena file cache (DESIGN.md §15) against its executable spec:
   QCheck lockstep over random register/lookup/warm sequences, the pinned
   eviction order (LRU with warm-stamping in registration order), and the
   registration-time bound that the old O(n^2) order-list append broke. *)

module File_cache = Httpsim.File_cache
module File_cache_ref = Httpsim.File_cache_ref
module Docset = Httpsim.Docset

let outcome_str = function
  | File_cache.Hit b -> Printf.sprintf "Hit %d" b
  | File_cache.Miss b -> Printf.sprintf "Miss %d" b
  | File_cache.Not_found_doc -> "Not_found_doc"

(* One shared path pool: interning is global and idempotent while
   residency is per-cache, so reusing paths across iterations is safe —
   and exactly what the production sweep does. *)
let pool = Array.init 16 (fun i -> Printf.sprintf "/lockstep/%d" i)

let prop_lockstep =
  QCheck2.Test.make ~name:"arena cache lockstep with File_cache_ref" ~count:400
    QCheck2.Gen.(
      pair (int_range 1 40)
        (list_size (int_range 1 120) (pair (int_bound 9) (pair (int_bound 15) (int_bound 15)))))
    (fun (capacity_units, ops) ->
      (* Capacities 256B-10KB against sizes 0-3.75KB: some corpora fit
         entirely, some churn, and some documents never fit at all. *)
      let capacity_bytes = capacity_units * 256 in
      let arena = File_cache.create ~capacity_bytes () in
      let spec = File_cache_ref.create ~capacity_bytes () in
      let registered = ref 0 in
      let agree what a b =
        if a <> b then QCheck2.Test.fail_reportf "%s: arena %d, spec %d" what a b
      in
      List.iter
        (fun (op, (i, b)) ->
          (match op with
          | 0 | 1 when !registered < Array.length pool ->
              let path = pool.(!registered) and bytes = b * 256 in
              incr registered;
              File_cache.add_document arena ~path ~bytes;
              File_cache_ref.add_document spec ~path ~bytes
          | 2 ->
              File_cache.warm arena;
              File_cache_ref.warm spec
          | _ ->
              (* [i] ranges over the whole pool, so unregistered paths
                 (Not_found_doc) stay covered. *)
              let path = pool.(i) in
              let oa = File_cache.lookup arena ~path in
              let os = File_cache_ref.lookup spec ~path in
              if oa <> os then
                QCheck2.Test.fail_reportf "lookup %s: arena %s, spec %s" path (outcome_str oa)
                  (outcome_str os));
          agree "hits" (File_cache.hits arena) (File_cache_ref.hits spec);
          agree "misses" (File_cache.misses arena) (File_cache_ref.misses spec);
          agree "cached_bytes" (File_cache.cached_bytes arena) (File_cache_ref.cached_bytes spec);
          Array.iter
            (fun path ->
              let a = File_cache.is_cached arena ~path
              and s = File_cache_ref.is_cached spec ~path in
              if a <> s then QCheck2.Test.fail_reportf "is_cached %s: arena %b, spec %b" path a s)
            pool)
        ops;
      true)

(* Warm stamps loads in registration order, so after a warm the LRU order
   IS the registration order — eviction victims are pinned, identically
   in both implementations, where the old clock-only scheme fell back to
   hash-iteration order on equal stamps. *)
let test_eviction_order_pinned () =
  let paths = Array.init 4 (fun i -> Printf.sprintf "/evict-pin/%d" i) in
  let check_impl name is_cached_of =
    (* capacity 2 docs; warm walks a,b,c,d: c evicts a, d evicts b *)
    Alcotest.(check (list bool))
      (name ^ ": warm over capacity leaves the registration tail")
      [ false; false; true; true ] (is_cached_of ())
  in
  let arena_state () =
    let c = File_cache.create ~capacity_bytes:2048 () in
    Array.iter (fun path -> File_cache.add_document c ~path ~bytes:1024) paths;
    File_cache.warm c;
    Array.to_list (Array.map (fun path -> File_cache.is_cached c ~path) paths)
  in
  let spec_state () =
    let c = File_cache_ref.create ~capacity_bytes:2048 () in
    Array.iter (fun path -> File_cache_ref.add_document c ~path ~bytes:1024) paths;
    File_cache_ref.warm c;
    Array.to_list (Array.map (fun path -> File_cache_ref.is_cached c ~path) paths)
  in
  check_impl "arena" arena_state;
  check_impl "spec" spec_state;
  (* After the warm the LRU list is c,d (c older): a miss on a must evict
     c, not d, in both implementations. *)
  let arena = File_cache.create ~capacity_bytes:2048 () in
  Array.iter (fun path -> File_cache.add_document arena ~path ~bytes:1024) paths;
  File_cache.warm arena;
  ignore (File_cache.lookup arena ~path:paths.(0));
  Alcotest.(check bool) "arena: LRU victim is the warm-order head" false
    (File_cache.is_cached arena ~path:paths.(2));
  Alcotest.(check bool) "arena: MRU survivor stays" true
    (File_cache.is_cached arena ~path:paths.(3));
  let spec = File_cache_ref.create ~capacity_bytes:2048 () in
  Array.iter (fun path -> File_cache_ref.add_document spec ~path ~bytes:1024) paths;
  File_cache_ref.warm spec;
  ignore (File_cache_ref.lookup spec ~path:paths.(0));
  Alcotest.(check bool) "spec: LRU victim is the warm-order head" false
    (File_cache_ref.is_cached spec ~path:paths.(2));
  Alcotest.(check bool) "spec: MRU survivor stays" true
    (File_cache_ref.is_cached spec ~path:paths.(3))

(* Registration must be far from quadratic: 10^5 documents in both
   implementations in CPU seconds, not minutes (the seed's
   [order @ [path]] append made this O(n^2) — ~10^10 list cells). *)
let test_registration_bounded () =
  let docs = 100_000 in
  let t0 = Sys.time () in
  let arena = File_cache.create ~capacity_bytes:(4 * 1024 * 1024) () in
  for i = 0 to docs - 1 do
    File_cache.add_doc arena ~doc:(Docset.intern (Printf.sprintf "/regtime/%d" i)) ~bytes:1024
  done;
  File_cache.warm arena;
  let spec = File_cache_ref.create ~capacity_bytes:(4 * 1024 * 1024) () in
  for i = 0 to docs - 1 do
    File_cache_ref.add_document spec ~path:(Printf.sprintf "/regtime/%d" i) ~bytes:1024
  done;
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check int) "arena registered all" docs (File_cache.registered arena);
  Alcotest.(check bool)
    (Printf.sprintf "1e5 registrations bounded (%.2fs cpu)" elapsed)
    true (elapsed < 5.);
  (* And lookups at that population stay live: hit the warm head, miss
     past the capacity horizon. *)
  match File_cache.lookup arena ~path:"/regtime/99999" with
  | File_cache.Hit _ | File_cache.Miss _ -> ()
  | File_cache.Not_found_doc -> Alcotest.fail "registered doc reported unknown"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lockstep;
    Alcotest.test_case "eviction order pinned (warm = registration order)" `Quick
      test_eviction_order_pinned;
    Alcotest.test_case "1e5-doc registration bounded" `Quick test_registration_bounded;
  ]
