(* Unit and property tests for Engine.Timer_wheel, centred on its
   equivalence with Engine.Heapq: under the event-queue discipline
   (priorities never below the last extraction) both backends must
   produce identical extraction sequences — same priorities, same
   insertion-order FIFO among ties, same response to cancellation. *)

module Heapq = Engine.Heapq
module Wheel = Engine.Timer_wheel
module Sim = Engine.Sim
module Simtime = Engine.Simtime

let test_empty () =
  let w = Wheel.create () in
  Alcotest.(check bool) "empty" true (Wheel.is_empty w);
  Alcotest.(check int) "length" 0 (Wheel.length w);
  Alcotest.(check bool) "pop empty" true (Wheel.pop_min w = None);
  Alcotest.(check int) "lower bound starts at 0" 0 (Wheel.lower_bound w)

let drain_wheel w =
  let rec go acc = match Wheel.pop_min w with Some (_, v) -> go (v :: acc) | None -> List.rev acc in
  go []

let test_ordering () =
  let w = Wheel.create () in
  List.iter (fun p -> ignore (Wheel.insert w ~prio:p p)) [ 5; 1; 4; 1; 3; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5 ] (drain_wheel w)

let test_fifo_ties () =
  let w = Wheel.create () in
  ignore (Wheel.insert w ~prio:7 "first");
  ignore (Wheel.insert w ~prio:7 "second");
  ignore (Wheel.insert w ~prio:7 "third");
  Alcotest.(check (list string))
    "insertion order at equal priority" [ "first"; "second"; "third" ] (drain_wheel w)

let test_cancel () =
  let w = Wheel.create () in
  let _a = Wheel.insert w ~prio:1 "a" in
  let b = Wheel.insert w ~prio:2 "b" in
  let _c = Wheel.insert w ~prio:3 "c" in
  Alcotest.(check bool) "cancel live" true (Wheel.cancel w b);
  Alcotest.(check bool) "cancel twice" false (Wheel.cancel w b);
  Alcotest.(check int) "length after cancel" 2 (Wheel.length w);
  Alcotest.(check bool) "a first" true (Wheel.pop_min w = Some (1, "a"));
  Alcotest.(check bool) "b skipped" true (Wheel.pop_min w = Some (3, "c"));
  Alcotest.(check bool) "drained" true (Wheel.pop_min w = None)

let test_far_priorities () =
  (* Spread across many wheel levels, including the top ones. *)
  let w = Wheel.create () in
  let prios = [ 0; 1; 63; 64; 4095; 4096; 1_000_000; 1_000_000_000; max_int / 2; max_int ] in
  List.iter (fun p -> ignore (Wheel.insert w ~prio:p p)) (List.rev prios);
  Alcotest.(check (list int)) "cascades through all levels" prios (drain_wheel w)

let test_insert_below_lower_bound_rejected () =
  let w = Wheel.create () in
  ignore (Wheel.insert w ~prio:100 "x");
  Alcotest.(check bool) "pop" true (Wheel.pop_min w = Some (100, "x"));
  Alcotest.check_raises "past insert rejected"
    (Invalid_argument "Timer_wheel.insert: priority 99 below lower bound 100") (fun () ->
      ignore (Wheel.insert w ~prio:99 "y"))

let test_insert_at_lower_bound_ok () =
  let w = Wheel.create () in
  ignore (Wheel.insert w ~prio:50 "a");
  Alcotest.(check bool) "a" true (Wheel.pop_min w = Some (50, "a"));
  ignore (Wheel.insert w ~prio:50 "b");
  (* scheduling "now" keeps working, and fires after what was queued *)
  ignore (Wheel.insert w ~prio:50 "c");
  Alcotest.(check bool) "b" true (Wheel.pop_min w = Some (50, "b"));
  Alcotest.(check bool) "c" true (Wheel.pop_min w = Some (50, "c"))

let test_pop_min_until_commits_horizon () =
  let w = Wheel.create () in
  ignore (Wheel.insert w ~prio:10_000 "later");
  Alcotest.(check bool) "nothing before 5000" true (Wheel.pop_min_until w ~horizon:5_000 = None);
  Alcotest.(check int) "lower bound committed" 5_000 (Wheel.lower_bound w);
  Alcotest.(check bool) "event still queued" true (Wheel.length w = 1);
  Alcotest.(check bool) "fires within horizon" true
    (Wheel.pop_min_until w ~horizon:20_000 = Some (10_000, "later"))

let test_clear () =
  let w = Wheel.create () in
  for i = 0 to 99 do
    ignore (Wheel.insert w ~prio:(i * 37) i)
  done;
  Wheel.clear w;
  Alcotest.(check bool) "cleared" true (Wheel.is_empty w);
  ignore (Wheel.insert w ~prio:1 1);
  Alcotest.(check int) "usable after clear" 1 (Wheel.length w)

(* {1 The equivalence property}

   Random schedules of interleaved inserts, cancellations and pops are
   applied to both backends; extraction sequences (priority AND identity,
   so same-priority FIFO ties are compared too) must match exactly.
   Inserted priorities respect the event-queue discipline: each is the
   current lower bound plus a random non-negative delta, with deltas
   drawn across several orders of magnitude to exercise every wheel
   level. *)

type op =
  | Insert of int (* delta *)
  | Insert_pooled of int (* delta; wheel-side uses the free-list path *)
  | Cancel of int (* index hint *)
  | Pop

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 400)
      (frequency
         [
           ( 4,
             map
               (fun (mag, d) -> Insert (d mod (1 lsl mag)))
               (pair (int_range 0 40) (int_range 0 max_int)) );
           ( 3,
             map
               (fun (mag, d) -> Insert_pooled (d mod (1 lsl mag)))
               (pair (int_range 0 40) (int_range 0 max_int)) );
           (2, map (fun i -> Cancel i) (int_range 0 1000));
           (3, return Pop);
         ]))

let prop_wheel_matches_heap =
  QCheck2.Test.make ~name:"wheel and heap extract identical sequences" ~count:300 gen_ops
    (fun ops ->
      let h = Heapq.create () in
      let w = Wheel.create () in
      let bound = ref 0 in
      let seq = ref 0 in
      let handles = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Insert delta ->
              let prio = if !bound > max_int - delta then max_int else !bound + delta in
              let id = !seq in
              incr seq;
              let hh = Heapq.insert h ~prio id in
              let wh = Wheel.insert w ~prio id in
              handles := (hh, wh) :: !handles;
              Heapq.length h = Wheel.length w
          | Insert_pooled delta ->
              (* Pooled nodes have no handle and recycle through the free
                 list on pop; interleaved with handled inserts, cancels
                 and pops they must still extract in exactly the heap's
                 order, across solo-lane transitions and node reuse. *)
              let prio = if !bound > max_int - delta then max_int else !bound + delta in
              let id = !seq in
              incr seq;
              ignore (Heapq.insert h ~prio id);
              Wheel.insert_pooled w ~prio id;
              Heapq.length h = Wheel.length w
          | Cancel i -> (
              match !handles with
              | [] -> true
              | hs ->
                  let hh, wh = List.nth hs (i mod List.length hs) in
                  let a = Heapq.cancel h hh in
                  let b = Wheel.cancel w wh in
                  a = b && Heapq.length h = Wheel.length w)
          | Pop -> (
              match (Heapq.pop_min h, Wheel.pop_min w) with
              | None, None -> true
              | Some (hp, hv), Some (wp, wv) ->
                  bound := hp;
                  hp = wp && hv = wv && Heapq.length h = Wheel.length w
              | _ -> false))
        ops)

let prop_pop_until_equals_peek_and_pop =
  (* pop_min_until must agree with the heap's peek-then-pop under
     monotonically growing horizons. *)
  QCheck2.Test.make ~name:"wheel pop_min_until matches heap peek+pop" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 100) (int_range 0 100_000))
        (list_size (int_range 1 40) (int_range 0 20_000)))
    (fun (prios, steps) ->
      let h = Heapq.create () in
      let w = Wheel.create () in
      List.iteri
        (fun i p ->
          ignore (Heapq.insert h ~prio:p i);
          ignore (Wheel.insert w ~prio:p i))
        prios;
      let horizon = ref 0 in
      List.for_all
        (fun step ->
          horizon := !horizon + step;
          let rec drain_until () =
            let from_heap =
              match Heapq.peek_min_prio h with
              | Some p when p <= !horizon -> Heapq.pop_min h
              | _ -> None
            in
            let from_wheel = Wheel.pop_min_until w ~horizon:!horizon in
            if from_heap <> from_wheel then false
            else match from_heap with Some _ -> drain_until () | None -> true
          in
          drain_until ())
        steps)

(* {1 Sim-level equivalence}

   The same scenario — a mix of one-shot timers, nested scheduling,
   cancellations and periodic timers — run on a heap-backed and a
   wheel-backed simulator must fire events in exactly the same order at
   exactly the same simulated times. *)

let scripted_run backend =
  let sim = Sim.create ~backend () in
  let log = ref [] in
  let record tag () = log := (Simtime.to_ns (Sim.now sim), tag) :: !log in
  ignore (Sim.at sim (Simtime.of_ns 50) (record "a50"));
  ignore (Sim.at sim (Simtime.of_ns 50) (record "b50"));
  let cancelled = Sim.at sim (Simtime.of_ns 75) (record "never") in
  ignore (Sim.cancel sim cancelled);
  ignore
    (Sim.after sim (Simtime.us 1) (fun () ->
         record "outer" ();
         ignore (Sim.after sim Simtime.span_zero (record "inner-now"));
         ignore (Sim.after sim (Simtime.us 3) (record "inner-later"))));
  let periodic = Sim.every sim (Simtime.us 2) (record "tick") in
  ignore (Sim.at sim (Simtime.of_ns 9_000) (fun () -> ignore (Sim.cancel sim periodic)));
  Sim.run_until sim (Simtime.of_ns 20_000);
  ignore (Sim.after sim (Simtime.us 5) (record "late"));
  Sim.run sim;
  (List.rev !log, Simtime.to_ns (Sim.now sim))

let test_sim_backend_equivalence () =
  let heap_log, heap_clock = scripted_run Sim.Heap in
  let wheel_log, wheel_clock = scripted_run Sim.Wheel in
  Alcotest.(check (list (pair int string))) "same firing sequence" heap_log wheel_log;
  Alcotest.(check int) "same final clock" heap_clock wheel_clock

let prop_sim_random_schedule_equivalence =
  QCheck2.Test.make ~name:"random Sim schedules fire identically on both backends" ~count:100
    QCheck2.Gen.(list_size (int_range 1 120) (pair (int_range 0 50_000) (int_range 0 10)))
    (fun script ->
      let run backend =
        let sim = Sim.create ~backend () in
        let log = ref [] in
        List.iteri
          (fun i (t, kind) ->
            let t = Simtime.of_ns t in
            match kind with
            | 0 | 1 | 2 | 3 ->
                ignore (Sim.at sim t (fun () -> log := (Simtime.to_ns (Sim.now sim), i) :: !log))
            | 9 | 10 ->
                (* fire-and-forget lane; pooled on the wheel backend *)
                Sim.post_at sim t (fun () -> log := (Simtime.to_ns (Sim.now sim), 3000 + i) :: !log)
            | 4 | 5 ->
                (* schedule then immediately cancel: must never fire *)
                let ev = Sim.at sim t (fun () -> log := (-1, i) :: !log) in
                ignore (Sim.cancel sim ev)
            | 6 ->
                (* nested re-arm at fire time *)
                ignore
                  (Sim.at sim t (fun () ->
                       ignore
                         (Sim.after sim (Simtime.ns 17) (fun () ->
                              log := (Simtime.to_ns (Sim.now sim), 1000 + i) :: !log))))
            | _ ->
                let count = ref 0 in
                let ev = ref None in
                ev :=
                  Some
                    (Sim.every sim (Simtime.ns 997) (fun () ->
                         incr count;
                         log := (Simtime.to_ns (Sim.now sim), 2000 + i) :: !log;
                         if !count > 5 then Option.iter (fun e -> ignore (Sim.cancel sim e)) !ev)))
          script;
        Sim.run_until sim (Simtime.of_ns 30_000);
        Sim.run sim;
        List.rev !log
      in
      run Sim.Heap = run Sim.Wheel)

(* The periodic fast lane's primitive: a popped node goes back in at a
   later priority, keeping the same handle (so cancellation still works),
   and a rearm while the node is queued, or into the past, is refused. *)
let test_rearm () =
  let w = Wheel.create () in
  let h = Wheel.insert w ~prio:10 "tick" in
  (try
     Wheel.rearm w h ~prio:20;
     Alcotest.fail "rearm of a queued node must raise"
   with Invalid_argument _ -> ());
  Alcotest.(check (option (pair int string))) "first firing" (Some (10, "tick")) (Wheel.pop_min w);
  Wheel.rearm w h ~prio:75;
  Alcotest.(check int) "rearmed node counts" 1 (Wheel.length w);
  Alcotest.(check (option (pair int string))) "second firing" (Some (75, "tick")) (Wheel.pop_min w);
  (try
     Wheel.rearm w h ~prio:5;
     Alcotest.fail "rearm below the lower bound must raise"
   with Invalid_argument _ -> ());
  Wheel.rearm w h ~prio:75;
  Alcotest.(check bool) "handle still cancellable" true (Wheel.cancel w h);
  Alcotest.(check bool) "wheel drained" true (Wheel.is_empty w);
  Wheel.rearm w h ~prio:200;
  Alcotest.(check (option (pair int string)))
    "cancelled node rearms too" (Some (200, "tick")) (Wheel.pop_min w)

(* Pooled (fire-and-forget) inserts: recycled nodes must behave exactly
   like fresh ones — same FIFO among ties, clean interaction with the
   solo fast lane (repeated single-occupant pops), and no value leakage
   across reuse. *)
let test_insert_pooled () =
  let w = Wheel.create () in
  (* Solo-lane churn: one pooled occupant at a time, popped repeatedly —
     the same node cycles through the free list each time. *)
  for i = 1 to 5 do
    Wheel.insert_pooled w ~prio:(i * 10) i;
    Alcotest.(check (option (pair int int))) "solo pooled pop" (Some (i * 10, i)) (Wheel.pop_min w)
  done;
  (* Mixed ties: pooled and handled nodes at one priority keep insertion
     order, and a recycled pooled node re-queued mid-stream slots in
     FIFO like any fresh insert. *)
  Wheel.insert_pooled w ~prio:100 1;
  ignore (Wheel.insert w ~prio:100 2);
  Wheel.insert_pooled w ~prio:100 3;
  Alcotest.(check int) "three queued" 3 (Wheel.length w);
  Alcotest.(check (list int)) "FIFO among mixed ties" [ 1; 2; 3 ] (drain_wheel w);
  (* Cancellation of a handled node must not disturb pooled neighbours. *)
  Wheel.insert_pooled w ~prio:200 10;
  let hc = Wheel.insert w ~prio:200 11 in
  Wheel.insert_pooled w ~prio:300 12;
  Alcotest.(check bool) "cancel handled" true (Wheel.cancel w hc);
  Alcotest.(check (list int)) "pooled survive cancel" [ 10; 12 ] (drain_wheel w);
  (* clear must not strand pooled nodes in an inconsistent state. *)
  Wheel.insert_pooled w ~prio:400 20;
  Wheel.insert_pooled w ~prio:500 21;
  Wheel.clear w;
  Alcotest.(check bool) "cleared" true (Wheel.is_empty w);
  Wheel.insert_pooled w ~prio:600 22;
  Alcotest.(check (option (pair int int))) "usable after clear" (Some (600, 22)) (Wheel.pop_min w)

(* Sim.post is the fire-and-forget lane end to end: posted events must
   fire in exactly the position an [at] at the same instant would, on
   both backends, including nested posts from inside a firing event. *)
let test_sim_post_equivalence () =
  let run backend =
    let sim = Sim.create ~backend () in
    let log = ref [] in
    let record tag () = log := (Simtime.to_ns (Sim.now sim), tag) :: !log in
    Sim.post_at sim (Simtime.of_ns 40) (record "p40");
    ignore (Sim.at sim (Simtime.of_ns 40) (record "a40"));
    Sim.post_at sim (Simtime.of_ns 40) (record "q40");
    Sim.post sim (Simtime.us 1) (fun () ->
        record "outer" ();
        Sim.post sim Simtime.span_zero (record "inner-now");
        Sim.post sim (Simtime.us 2) (record "inner-later"));
    ignore (Sim.every sim (Simtime.us 1) (record "tick"));
    Sim.run_until sim (Simtime.of_ns 4_500);
    (List.rev !log, Simtime.to_ns (Sim.now sim))
  in
  let heap_log, heap_clock = run Sim.Heap in
  let wheel_log, wheel_clock = run Sim.Wheel in
  Alcotest.(check (list (pair int string))) "same firing sequence" heap_log wheel_log;
  Alcotest.(check int) "same final clock" heap_clock wheel_clock

(* Rearm must interleave correctly with fresh inserts: FIFO among ties
   places the rearmed node behind nodes already at that priority. *)
let test_rearm_tie_order () =
  let w = Wheel.create () in
  let h = Wheel.insert w ~prio:1 "recycled" in
  ignore (Wheel.pop_min w);
  ignore (Wheel.insert w ~prio:9 "fresh");
  Wheel.rearm w h ~prio:9;
  Alcotest.(check (list string)) "behind existing ties" [ "fresh"; "recycled" ] (drain_wheel w)

let suite =
  [
    Alcotest.test_case "empty wheel" `Quick test_empty;
    Alcotest.test_case "rearm recycles a node" `Quick test_rearm;
    Alcotest.test_case "rearm tie order" `Quick test_rearm_tie_order;
    Alcotest.test_case "min ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO among ties" `Quick test_fifo_ties;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "far priorities cascade" `Quick test_far_priorities;
    Alcotest.test_case "past insert rejected" `Quick test_insert_below_lower_bound_rejected;
    Alcotest.test_case "insert at lower bound" `Quick test_insert_at_lower_bound_ok;
    Alcotest.test_case "pop_min_until commits horizon" `Quick test_pop_min_until_commits_horizon;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "pooled inserts recycle cleanly" `Quick test_insert_pooled;
    Alcotest.test_case "scripted Sim equivalence" `Quick test_sim_backend_equivalence;
    Alcotest.test_case "Sim.post fires like Sim.at" `Quick test_sim_post_equivalence;
    QCheck_alcotest.to_alcotest prop_wheel_matches_heap;
    QCheck_alcotest.to_alcotest prop_pop_until_equals_peek_and_pop;
    QCheck_alcotest.to_alcotest prop_sim_random_schedule_equivalence;
  ]
