(* Tests for the workload generators. *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Machine = Procsim.Machine
module Process = Procsim.Process
module Socket = Netsim.Socket
module Stack = Netsim.Stack

let make_rig () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Multilevel.make ~root () in
  let machine = Machine.create ~sim ~policy ~root () in
  let proc = Process.create machine ~name:"srv" () in
  let stack = Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) () in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  Httpsim.File_cache.warm cache;
  (sim, machine, proc, stack, cache)

let with_server (sim, machine, proc, stack, cache) =
  let listen = Socket.make_listen ~port:80 () in
  let server = Httpsim.Event_server.create ~stack ~process:proc ~cache ~listens:[ listen ] () in
  ignore (Httpsim.Event_server.start server);
  (sim, machine, stack, server)

let run machine sim span = Machine.run_until machine (Simtime.add (Sim.now sim) span)

let test_sclient_closed_loop () =
  let sim, machine, stack, _server = with_server (make_rig ()) in
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:2 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.ms 500);
  let completed = Workload.Sclient.completed clients in
  Alcotest.(check bool) "progress" true (completed > 50);
  Alcotest.(check int) "no timeouts" 0 (Workload.Sclient.timeouts clients);
  let lat = Engine.Stats.Summary.mean (Workload.Sclient.response_times clients) in
  Alcotest.(check bool) "latency plausible (sub-5ms unloaded)" true (lat > 0.3 && lat < 5.)

let test_sclient_stop () =
  let sim, machine, stack, _server = with_server (make_rig ()) in
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:1 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.ms 100);
  Workload.Sclient.stop clients;
  let at_stop = Workload.Sclient.completed clients in
  run machine sim (Simtime.ms 200);
  Alcotest.(check bool) "at most one in-flight completion after stop" true
    (Workload.Sclient.completed clients - at_stop <= 1)

let test_sclient_reset_and_window () =
  let sim, machine, stack, _server = with_server (make_rig ()) in
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:2 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.ms 200);
  Workload.Sclient.reset_stats clients;
  Alcotest.(check int) "reset" 0 (Workload.Sclient.completed clients);
  let t0 = Sim.now sim in
  run machine sim (Simtime.ms 200);
  let t1 = Sim.now sim in
  Alcotest.(check int) "window count matches total since reset"
    (Workload.Sclient.completed clients)
    (Workload.Sclient.completions_in clients t0 t1)

(* Regression: completion marks moved from an unbounded list to a bounded
   ring.  With a fixed seed, the windowed counts must agree exactly with the
   all-time counter (the ring is far larger than any test run), and windows
   must be additive. *)
let test_sclient_marks_ring_equivalence () =
  let sim, machine, stack, _server = with_server (make_rig ()) in
  let clients =
    Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~seed:11 ~count:2 ()
  in
  let t0 = Sim.now sim in
  Workload.Sclient.start clients;
  run machine sim (Simtime.ms 200);
  let tm = Sim.now sim in
  run machine sim (Simtime.ms 200);
  let t1 = Sim.now sim in
  let total = Workload.Sclient.completed clients in
  Alcotest.(check bool) "enough samples to be meaningful" true (total > 50);
  Alcotest.(check int) "full window equals all-time counter" total
    (Workload.Sclient.completions_in clients t0 t1);
  Alcotest.(check int) "sub-windows are additive" total
    (Workload.Sclient.completions_in clients t0 tm
    + Workload.Sclient.completions_in clients tm t1);
  Alcotest.(check int) "empty window counts nothing" 0
    (Workload.Sclient.completions_in clients t1 t1)

let test_sclient_timeout_on_dead_port () =
  let sim, machine, _, stack, _ = make_rig () in
  (* No listen socket: connects are refused (RST), clients count refusals
     and retry after the retry delay. *)
  let clients =
    Workload.Sclient.create ~stack ~port:80 ~retry_delay:(Simtime.ms 50) ~count:1 ()
  in
  Workload.Sclient.start clients;
  run machine sim (Simtime.ms 400);
  Alcotest.(check bool) "refusals counted" true (Workload.Sclient.refused clients >= 2);
  Alcotest.(check int) "nothing completed" 0 (Workload.Sclient.completed clients)

let test_sclient_jitter_determinism () =
  let run_once () =
    let sim, machine, stack, _server = with_server (make_rig ()) in
    let clients =
      Workload.Sclient.create ~stack ~port:80 ~jitter:(Simtime.ms 1) ~seed:5 ~count:2 ()
    in
    Workload.Sclient.start clients;
    run machine sim (Simtime.ms 300);
    Workload.Sclient.completed clients
  in
  Alcotest.(check int) "same seed, same result" (run_once ()) (run_once ())

let test_sclient_percentiles () =
  let sim, machine, stack, _server = with_server (make_rig ()) in
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:2 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.ms 500);
  let p50 = Workload.Sclient.response_percentile clients 0.5 in
  let p99 = Workload.Sclient.response_percentile clients 0.99 in
  let mean = Engine.Stats.Summary.mean (Workload.Sclient.response_times clients) in
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  Alcotest.(check bool) "median in the mean's vicinity" true
    (p50 > mean /. 4. && p50 < mean *. 4.);
  Alcotest.(check (float 1e-9)) "empty after reset" 0.
    (Workload.Sclient.reset_stats clients;
     Workload.Sclient.response_percentile clients 0.9)

let test_synflood_rate () =
  let sim, machine, _, stack, _ = make_rig () in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen stack listen;
  let flood = Workload.Synflood.create ~stack ~rate_per_sec:10_000. ~port:80 () in
  Workload.Synflood.start flood;
  run machine sim (Simtime.ms 100);
  Alcotest.(check bool) "~1000 SYNs in 100ms" true
    (abs (Workload.Synflood.sent flood - 1000) <= 2);
  Workload.Synflood.stop flood;
  let at_stop = Workload.Synflood.sent flood in
  run machine sim (Simtime.ms 100);
  Alcotest.(check int) "stopped" at_stop (Workload.Synflood.sent flood)

let test_synflood_sources_cycle () =
  let sim, machine, _, stack, _ = make_rig () in
  let listen = Socket.make_listen ~port:80 ~syn_backlog:10_000 () in
  Stack.add_listen stack listen;
  let flood =
    Workload.Synflood.create ~stack ~src_count:4 ~rate_per_sec:100_000. ~port:80 ()
  in
  Workload.Synflood.start flood;
  run machine sim (Simtime.ms 1);
  (* Sources must cycle within the configured block. *)
  let srcs = ref [] in
  Queue.iter
    (fun conn -> srcs := Netsim.Ipaddr.to_string conn.Socket.src :: !srcs)
    listen.Socket.syn_queue;
  let distinct = List.sort_uniq compare !srcs in
  Alcotest.(check int) "four distinct sources" 4 (List.length distinct)

let test_synflood_prefix () =
  let _, _, _, stack, _ = make_rig () in
  let flood = Workload.Synflood.create ~stack ~src_count:256 ~rate_per_sec:1. ~port:80 () in
  let _base, bits = Workload.Synflood.source_prefix flood in
  Alcotest.(check int) "256 sources = /24" 24 bits;
  let flood16 = Workload.Synflood.create ~stack ~src_count:65536 ~rate_per_sec:1. ~port:80 () in
  Alcotest.(check int) "65536 sources = /16" 16 (snd (Workload.Synflood.source_prefix flood16))

let test_synflood_poisson () =
  let sim, machine, _, stack, _ = make_rig () in
  let listen = Socket.make_listen ~port:80 ~syn_backlog:100_000 () in
  Stack.add_listen stack listen;
  let flood =
    Workload.Synflood.create ~stack ~rng:(Engine.Rng.create ~seed:3) ~rate_per_sec:10_000.
      ~port:80 ()
  in
  Workload.Synflood.start flood;
  run machine sim (Simtime.sec 1);
  let sent = Workload.Synflood.sent flood in
  Alcotest.(check bool) "Poisson rate within 10%" true (sent > 9_000 && sent < 11_000)

let suite =
  [
    Alcotest.test_case "sclient closed loop" `Quick test_sclient_closed_loop;
    Alcotest.test_case "sclient stop" `Quick test_sclient_stop;
    Alcotest.test_case "sclient reset and window" `Quick test_sclient_reset_and_window;
    Alcotest.test_case "sclient marks ring equivalence" `Quick
      test_sclient_marks_ring_equivalence;
    Alcotest.test_case "sclient refused retries" `Quick test_sclient_timeout_on_dead_port;
    Alcotest.test_case "sclient jitter determinism" `Quick test_sclient_jitter_determinism;
    Alcotest.test_case "sclient percentiles" `Quick test_sclient_percentiles;
    Alcotest.test_case "synflood rate" `Quick test_synflood_rate;
    Alcotest.test_case "synflood sources cycle" `Quick test_synflood_sources_cycle;
    Alcotest.test_case "synflood prefix" `Quick test_synflood_prefix;
    Alcotest.test_case "synflood poisson" `Quick test_synflood_poisson;
  ]
