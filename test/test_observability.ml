(* Tests for the observability layer: typed trace events exported as JSON
   lines, and the metrics registry's JSON snapshot agreeing with the
   in-process legacy views. *)

module Sim = Engine.Sim
module Simtime = Engine.Simtime
module Jsonx = Engine.Jsonx
module Metrics = Engine.Metrics
module Tracelog = Engine.Tracelog
module Container = Rescont.Container
module Machine = Procsim.Machine
module Process = Procsim.Process
module Stack = Netsim.Stack
module Socket = Netsim.Socket

(* A small traced HTTP scenario: RC stack, event server, two clients. *)
let run_scenario () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let trace = Tracelog.create ~enabled:true ~capacity:8192 () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root ~trace () in
  let proc = Process.create machine ~name:"httpd" () in
  let stack =
    Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) ()
  in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.register_metrics cache (Machine.metrics machine);
  Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  Httpsim.File_cache.warm cache;
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~policy:Httpsim.Event_server.Inherit_listen
      ~listens:[ Socket.make_listen ~port:80 () ]
      ()
  in
  ignore (Httpsim.Event_server.start server);
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:2 () in
  Workload.Sclient.start clients;
  Machine.run_until machine (Simtime.of_ns 50_000_000);
  (machine, stack, server, cache)

let parse_line line =
  match Jsonx.parse line with
  | Ok json -> json
  | Error msg -> Alcotest.failf "unparseable trace line %S: %s" line msg

let test_trace_jsonl_round_trip () =
  let machine, _stack, _server, _cache = run_scenario () in
  let jsonl = Tracelog.to_jsonl (Machine.trace machine) in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check bool) "trace is non-empty" true (List.length lines > 0);
  let categories = Hashtbl.create 8 in
  List.iter
    (fun line ->
      let json = parse_line line in
      (match Option.bind (Jsonx.member "t_ns" json) Jsonx.int_value with
      | Some t -> Alcotest.(check bool) "t_ns non-negative" true (t >= 0)
      | None -> Alcotest.failf "line lacks t_ns: %s" line);
      (match Option.bind (Jsonx.member "cat" json) Jsonx.string_value with
      | Some cat -> Hashtbl.replace categories cat ()
      | None -> Alcotest.failf "line lacks cat: %s" line);
      match Option.bind (Jsonx.member "type" json) Jsonx.string_value with
      | Some _ -> ()
      | None -> Alcotest.failf "line lacks type: %s" line)
    lines;
  (* The scenario exercises scheduling, networking and HTTP serving, so the
     trace must carry all three families of events. *)
  List.iter
    (fun cat ->
      Alcotest.(check bool) (Printf.sprintf "category %s present" cat) true
        (Hashtbl.mem categories cat))
    [ "dispatch"; "net"; "http" ]

(* Helper: find a metric sample by name (+ optional labels) in the parsed
   snapshot and return its "value" member. *)
let metric_value json name labels =
  let metrics = Option.fold ~none:[] ~some:Jsonx.to_list (Jsonx.member "metrics" json) in
  let wanted_labels = List.sort compare labels in
  let matches m =
    Option.bind (Jsonx.member "name" m) Jsonx.string_value = Some name
    &&
    let got =
      match Jsonx.member "labels" m with
      | Some (Jsonx.Obj kvs) ->
          List.sort compare
            (List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Jsonx.string_value v)) kvs)
      | _ -> []
    in
    got = wanted_labels
  in
  match List.find_opt matches metrics with
  | Some m -> Jsonx.member "value" m
  | None -> Alcotest.failf "metric %s not found in snapshot" name

let test_metrics_snapshot_agrees () =
  let machine, stack, server, cache = run_scenario () in
  let json =
    Jsonx.parse_exn (Jsonx.to_string (Metrics.to_json (Machine.metrics machine)))
  in
  (match Option.bind (Jsonx.member "schema_version" json) Jsonx.int_value with
  | Some 1 -> ()
  | _ -> Alcotest.fail "schema_version 1 expected");
  let s = Stack.stats stack in
  let check_gauge name expected =
    match Option.bind (metric_value json name []) Jsonx.float_value with
    | Some v -> Alcotest.(check (float 1e-9)) name (float_of_int expected) v
    | None -> Alcotest.failf "gauge %s has no numeric value" name
  in
  Alcotest.(check bool) "scenario established connections" true (s.Stack.conns_established > 0);
  check_gauge "net.syns_received" s.Stack.syns_received;
  check_gauge "net.conns_established" s.Stack.conns_established;
  check_gauge "net.conns_closed" s.Stack.conns_closed;
  check_gauge "net.packets_processed" s.Stack.packets_processed;
  let check_counter name labels expected =
    match Option.bind (metric_value json name labels) Jsonx.int_value with
    | Some v -> Alcotest.(check int) name expected v
    | None -> Alcotest.failf "counter %s has no integer value" name
  in
  Alcotest.(check bool) "scenario served requests" true
    (Httpsim.Event_server.static_served server > 0);
  check_counter "http.static_served"
    [ ("server", "httpd") ]
    (Httpsim.Event_server.static_served server);
  check_counter "http.accepts" [ ("server", "httpd") ] (Httpsim.Event_server.accepts server);
  (match Option.bind (metric_value json "sched.dispatches" []) Jsonx.int_value with
  | Some v -> Alcotest.(check bool) "dispatches counted" true (v > 0)
  | None -> Alcotest.fail "sched.dispatches missing");
  match Option.bind (metric_value json "cache.hits" []) Jsonx.int_value with
  | Some v -> Alcotest.(check int) "cache hits view agrees" (Httpsim.File_cache.hits cache) v
  | None -> Alcotest.fail "cache.hits missing"

let test_registry_identity () =
  let m = Metrics.create () in
  let a = Metrics.counter m "reqs" in
  let b = Metrics.counter m "reqs" in
  Metrics.incr a;
  Metrics.incr b ~by:2;
  (* Same (name, labels) resolves to the same underlying counter... *)
  Alcotest.(check int) "shared counter" 3 (Metrics.counter_value a);
  (* ...while different labels are distinct series. *)
  let la = Metrics.counter m ~labels:[ ("srv", "a") ] "reqs.labeled" in
  let lb = Metrics.counter m ~labels:[ ("srv", "b") ] "reqs.labeled" in
  Metrics.incr la;
  Alcotest.(check int) "label a" 1 (Metrics.counter_value la);
  Alcotest.(check int) "label b" 0 (Metrics.counter_value lb);
  (* Label order does not matter. *)
  let l1 = Metrics.counter m ~labels:[ ("x", "1"); ("y", "2") ] "multi" in
  let l2 = Metrics.counter m ~labels:[ ("y", "2"); ("x", "1") ] "multi" in
  Metrics.incr l1;
  Alcotest.(check int) "label order canonical" 1 (Metrics.counter_value l2)

let test_registry_gauge_and_conflicts () =
  let m = Metrics.create () in
  let cell = ref 5 in
  Metrics.gauge m "g" (fun () -> float_of_int !cell);
  cell := 9;
  (match Metrics.value m "g" with
  | Some (Metrics.Gauge v) -> Alcotest.(check (float 1e-9)) "gauge reads live" 9. v
  | _ -> Alcotest.fail "gauge missing");
  (* Re-registering a gauge replaces the read closure. *)
  Metrics.gauge m "g" (fun () -> 42.);
  (match Metrics.value m "g" with
  | Some (Metrics.Gauge v) -> Alcotest.(check (float 1e-9)) "gauge replaced" 42. v
  | _ -> Alcotest.fail "gauge missing after replace");
  (* Kind mismatches are programming errors. *)
  let raised = try ignore (Metrics.counter m "g"); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "kind conflict raises" true raised

let suite =
  [
    Alcotest.test_case "trace JSONL round trip" `Quick test_trace_jsonl_round_trip;
    Alcotest.test_case "metrics snapshot agrees with views" `Quick test_metrics_snapshot_agrees;
    Alcotest.test_case "registry identity" `Quick test_registry_identity;
    Alcotest.test_case "registry gauges and conflicts" `Quick test_registry_gauge_and_conflicts;
  ]
