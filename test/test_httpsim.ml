(* Tests for Httpsim: cost calibration, HTTP encoding, the file cache,
   and the server applications end-to-end on a small rig. *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Machine = Procsim.Machine
module Process = Procsim.Process
module Socket = Netsim.Socket
module Stack = Netsim.Stack
module Http = Httpsim.Http
module Costs = Httpsim.Costs
module File_cache = Httpsim.File_cache

(* {1 Costs — the calibration the whole reproduction rests on} *)

let test_cost_budgets () =
  let us span = Simtime.span_to_us_f span in
  (* Paper §5.3: 105 us and 338 us per request.  Allow 7% slack: the
     budget excludes the load-dependent event-notification overhead. *)
  let persistent = us Costs.persistent_request_total in
  Alcotest.(check bool) "persistent ~105us" true (persistent > 95. && persistent < 112.);
  let nonpersistent = us Costs.nonpersistent_request_total in
  Alcotest.(check bool) "conn-per-request ~338us" true
    (nonpersistent > 315. && nonpersistent < 360.)

let test_syn_costs () =
  let us span = Simtime.span_to_us_f span in
  (* Fig 14: collapse at ~10k SYN/s means ~100us per unfiltered SYN; the
     filtered overhead must be ~3.9us (73% residual at 70k SYN/s). *)
  let unfiltered = us Costs.unfiltered_syn_total in
  Alcotest.(check bool) "unfiltered ~99us" true (unfiltered > 90. && unfiltered < 110.);
  let filtered = us Costs.filtered_syn_total in
  Alcotest.(check bool) "filtered ~3.9us" true (filtered > 3. && filtered < 5.)

let test_primitives_cheap () =
  Alcotest.(check bool) "worst primitive < 1% of a request" true
    (Experiments.Exp_table1.max_primitive_vs_request () < 0.011)

(* {1 Http} *)

let test_http_roundtrip () =
  let req = Http.request ~now:Simtime.zero ~keep_alive:true ~path:"/doc/1k" () in
  let meta = Http.parse req in
  Alcotest.(check string) "path" "/doc/1k" meta.Http.path;
  Alcotest.(check bool) "keep alive" true meta.Http.keep_alive;
  let req10 = Http.request ~now:Simtime.zero ~path:"/x" () in
  Alcotest.(check bool) "HTTP/1.0 default" false (Http.parse req10).Http.keep_alive

let test_http_dynamic () =
  Alcotest.(check bool) "cgi path" true (Http.is_dynamic (Http.meta_of_path "/cgi/run"));
  Alcotest.(check bool) "static path" false (Http.is_dynamic (Http.meta_of_path "/doc/1k"));
  Alcotest.(check bool) "short path" false (Http.is_dynamic (Http.meta_of_path "/x"))

let test_http_parse_error () =
  let bogus = Netsim.Payload.make ~tag:"hello" ~bytes:10 Simtime.zero in
  Alcotest.(check bool) "garbage rejected" true
    (try ignore (Http.parse bogus); false with Invalid_argument _ -> true)

let test_http_response_size () =
  let meta = Http.meta_of_path "/doc/1k" in
  let resp = Http.response ~now:Simtime.zero meta ~body_bytes:1024 in
  Alcotest.(check int) "body plus headers" (1024 + Http.header_bytes) resp.Netsim.Payload.bytes

(* {1 Docset interning} *)

let test_docset_interning () =
  let module Docset = Httpsim.Docset in
  let id = Docset.intern "/docset-test/a" in
  Alcotest.(check int) "idempotent" id (Docset.intern "/docset-test/a");
  Alcotest.(check int) "find_id agrees" id (Docset.find_id "/docset-test/a");
  Alcotest.(check string) "path_of round-trips" "/docset-test/a" (Docset.path_of id);
  Alcotest.(check int) "unknown path is -1" (-1) (Docset.find_id "/docset-test/never-interned");
  let id2 = Docset.intern "/docset-test/b" in
  Alcotest.(check bool) "distinct paths, distinct ids" true (id <> id2);
  Alcotest.(check bool) "size covers both" true (Docset.size () > max id id2)

let test_http_doc_ids () =
  (* The request carries the interned id end to end: building by path and
     building by id produce payloads that parse to the same metadata. *)
  let by_path = Http.request ~now:Simtime.zero ~keep_alive:true ~path:"/doc-id/x" () in
  let meta = Http.parse by_path in
  Alcotest.(check int) "meta.doc is the interned id" (Httpsim.Docset.find_id "/doc-id/x")
    meta.Http.doc;
  let by_doc = Http.request_doc ~now:Simtime.zero ~keep_alive:true ~doc:meta.Http.doc () in
  let meta' = Http.parse by_doc in
  Alcotest.(check string) "path survives the id round-trip" meta.Http.path meta'.Http.path;
  Alcotest.(check int) "doc survives" meta.Http.doc meta'.Http.doc;
  Alcotest.(check bool) "unknown id rejected" true
    (try
       ignore (Http.request_doc ~now:Simtime.zero ~doc:max_int ());
       false
     with Invalid_argument _ -> true)

(* {1 File_cache} *)

let test_cache_hit_miss () =
  let cache = File_cache.create () in
  File_cache.add_document cache ~path:"/a" ~bytes:100;
  (match File_cache.lookup cache ~path:"/a" with
  | File_cache.Miss n -> Alcotest.(check int) "cold miss" 100 n
  | _ -> Alcotest.fail "expected miss");
  (match File_cache.lookup cache ~path:"/a" with
  | File_cache.Hit n -> Alcotest.(check int) "warm hit" 100 n
  | _ -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "not found" true (File_cache.lookup cache ~path:"/zzz" = File_cache.Not_found_doc);
  Alcotest.(check int) "hit count" 1 (File_cache.hits cache);
  Alcotest.(check int) "miss count" 1 (File_cache.misses cache)

let test_cache_warm () =
  let cache = File_cache.create () in
  File_cache.add_document cache ~path:"/a" ~bytes:100;
  File_cache.add_document cache ~path:"/b" ~bytes:200;
  File_cache.warm cache;
  Alcotest.(check int) "bytes cached" 300 (File_cache.cached_bytes cache);
  (match File_cache.lookup cache ~path:"/b" with
  | File_cache.Hit _ -> ()
  | _ -> Alcotest.fail "warm lookup should hit")

let test_cache_lru_eviction () =
  let cache = File_cache.create ~capacity_bytes:250 () in
  File_cache.add_document cache ~path:"/a" ~bytes:100;
  File_cache.add_document cache ~path:"/b" ~bytes:100;
  File_cache.add_document cache ~path:"/c" ~bytes:100;
  ignore (File_cache.lookup cache ~path:"/a");
  ignore (File_cache.lookup cache ~path:"/b");
  (* /a is LRU; loading /c must evict it. *)
  ignore (File_cache.lookup cache ~path:"/c");
  Alcotest.(check bool) "capacity respected" true (File_cache.cached_bytes cache <= 250);
  (match File_cache.lookup cache ~path:"/a" with
  | File_cache.Miss _ -> ()
  | _ -> Alcotest.fail "/a should have been evicted")

let test_cache_lookup_cost () =
  Alcotest.(check bool) "hit cost" true
    (File_cache.lookup_cost (File_cache.Hit 1) = Costs.cache_hit);
  Alcotest.(check bool) "miss cost" true
    (File_cache.lookup_cost (File_cache.Miss 1) = Costs.cache_miss)

(* {1 Server rigs} *)

let make_rig mode =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy =
    match mode with
    | Stack.Softirq | Stack.Lrp -> Sched.Timeshare.make ()
    | Stack.Rc -> Sched.Multilevel.make ~root ()
  in
  let machine = Machine.create ~sim ~policy ~root () in
  let proc = Process.create machine ~name:"httpd" () in
  let stack = Stack.create ~machine ~mode ~owner:(Process.default_container proc) () in
  let cache = File_cache.create () in
  File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  File_cache.add_document cache ~path:"/cgi/run" ~bytes:0;
  File_cache.warm cache;
  (sim, root, machine, proc, stack, cache)

let run machine sim span = Machine.run_until machine (Simtime.add (Sim.now sim) span)

let test_event_server_serves () =
  let sim, _, machine, proc, stack, cache = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:4 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.sec 1);
  Alcotest.(check bool) "served many" true (Httpsim.Event_server.static_served server > 100);
  Alcotest.(check bool) "clients completed" true (Workload.Sclient.completed clients > 100);
  (* Accepts may exceed completions by the handful of in-flight
     connections at measurement end. *)
  Alcotest.(check bool) "no leaked conns" true
    (Httpsim.Event_server.accepts server - Workload.Sclient.completed clients <= 8)

let test_event_server_persistent () =
  let sim, _, machine, proc, stack, cache = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let clients =
    Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~persistent:true
      ~requests_per_conn:8 ~count:2 ()
  in
  Workload.Sclient.start clients;
  run machine sim (Simtime.sec 1);
  let served = Httpsim.Event_server.static_served server in
  Alcotest.(check bool) "served" true (served > 100);
  (* Persistent connections: far fewer accepts than requests. *)
  Alcotest.(check bool) "conn reuse" true (Httpsim.Event_server.accepts server * 4 < served)

let test_event_server_per_connection_containers () =
  let sim, root, machine, proc, stack, cache = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~policy:(Httpsim.Event_server.Per_connection { parent = root; priority_of = (fun _ -> 10) })
      ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:2 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.ms 500);
  Alcotest.(check bool) "served" true (Httpsim.Event_server.static_served server > 20);
  (* Per-connection containers are destroyed when connections close: the
     root should not accumulate children beyond the open set. *)
  Alcotest.(check bool) "containers reclaimed" true
    (List.length (Container.children root) < 10)

let test_cgi_fork_sandbox () =
  let sim, root, machine, proc, stack, cache = make_rig Stack.Rc in
  let cgi_parent =
    Container.create ~parent:root ~name:"cgi-parent"
      ~attrs:(Attrs.fixed_share ~share:0.3 ~cpu_limit:0.3 ())
      ()
  in
  let cgi =
    Httpsim.Cgi.create ~stack ~server_process:proc ~cgi_parent
      ~compute:(Simtime.ms 200) ()
  in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~dynamic_handler:(Httpsim.Cgi.handler cgi) ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let got_response = ref false in
  Stack.connect stack ~src:(Netsim.Ipaddr.v 10 0 0 5) ~port:80
    ~handlers:
      {
        Socket.null_handlers with
        Socket.on_established =
          (fun conn ->
            Stack.client_send stack conn (Http.request ~now:(Sim.now sim) ~path:"/cgi/run" ()));
        on_response = (fun _ _ -> got_response := true);
      }
    ();
  run machine sim (Simtime.sec 2);
  Alcotest.(check bool) "cgi response arrived" true !got_response;
  Alcotest.(check int) "one cgi completed" 1 (Httpsim.Cgi.completed cgi);
  Alcotest.(check int) "one process spawned" 1 (Httpsim.Cgi.processes_spawned cgi);
  (* The 200ms of compute were charged inside the sandbox. *)
  Alcotest.(check bool) "sandbox charged" true
    (Simtime.span_to_ns (Container.subtree_cpu cgi_parent) >= 200_000_000)

let test_cgi_persistent_pool () =
  let sim, _, machine, proc, stack, cache = make_rig Stack.Rc in
  let cgi =
    Httpsim.Cgi.create ~stack ~server_process:proc ~compute:(Simtime.ms 50)
      ~mode:(Httpsim.Cgi.Persistent_pool 2) ()
  in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~dynamic_handler:(Httpsim.Cgi.handler cgi) ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let clients =
    Workload.Sclient.create ~stack ~port:80 ~path:"/cgi/run" ~syn_timeout:(Simtime.sec 30)
      ~count:3 ()
  in
  Workload.Sclient.start clients;
  run machine sim (Simtime.sec 2);
  Alcotest.(check bool) "many jobs completed" true (Httpsim.Cgi.completed cgi > 10);
  Alcotest.(check int) "pool size respected" 2 (Httpsim.Cgi.processes_spawned cgi)

let test_forked_server_serves () =
  let sim, root, machine, proc, stack, cache = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Forked_server.create ~stack ~master:proc ~cache ~workers:4
      ~policy:(Httpsim.Event_server.Per_connection { parent = root; priority_of = (fun _ -> 10) })
      ~listens:[ listen ] ()
  in
  Httpsim.Forked_server.start server;
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:3 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.sec 1);
  Alcotest.(check bool) "served" true (Httpsim.Forked_server.served server > 50);
  Alcotest.(check bool) "workers return to pool" true
    (Httpsim.Forked_server.idle_workers server >= 1);
  Alcotest.(check int) "no stuck backlog" 0 (Httpsim.Forked_server.backlog server)

let test_forked_server_worker_limit () =
  (* More concurrent connections than workers: the master queues them and
     every request is still answered. *)
  let sim, _, machine, proc, stack, cache = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Forked_server.create ~stack ~master:proc ~cache ~workers:2 ~listens:[ listen ] ()
  in
  Httpsim.Forked_server.start server;
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:6 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.sec 1);
  Alcotest.(check bool) "all clients progress" true (Workload.Sclient.completed clients > 100);
  Alcotest.(check int) "no timeouts" 0 (Workload.Sclient.timeouts clients)

(* Regression: a dynamic request through the threaded server must reach
   the client — the worker hands the connection to the CGI engine and must
   not close it underneath. *)
let test_threaded_server_cgi_detach () =
  let sim, _, machine, proc, stack, cache = make_rig Stack.Rc in
  let cgi =
    Httpsim.Cgi.create ~stack ~server_process:proc ~compute:(Simtime.ms 20) ()
  in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Threaded_server.create ~stack ~process:proc ~cache ~workers:4
      ~dynamic_handler:(Httpsim.Cgi.handler cgi) ~listens:[ listen ] ()
  in
  Httpsim.Threaded_server.start server;
  let got = ref 0 in
  Stack.connect stack ~src:(Netsim.Ipaddr.v 10 0 0 9) ~port:80
    ~handlers:
      {
        Socket.null_handlers with
        Socket.on_established =
          (fun conn ->
            Stack.client_send stack conn (Http.request ~now:(Sim.now sim) ~path:"/cgi/run" ()));
        on_response = (fun _ _ -> incr got);
      }
    ();
  run machine sim (Simtime.ms 500);
  Alcotest.(check int) "cgi response delivered" 1 !got;
  Alcotest.(check int) "job completed" 1 (Httpsim.Cgi.completed cgi)

(* §4.8: "The server can use the resource container associated with a
   listening socket to set the priority of accepting new connections
   relative to servicing the existing ones."  Under overload, a
   low-priority listen keeps existing persistent clients fast at the cost
   of new-connection churn; a high-priority listen does the opposite. *)
let existing_latency_with_listen_priority priority =
  let sim, root, machine, proc, stack, cache = make_rig Stack.Rc in
  (* Existing clients (10.1/16) keep a normal-priority container; the
     catch-all listen socket for newcomers carries the priority under
     test. *)
  let existing_c =
    Container.create ~parent:root ~name:"existing" ~attrs:(Attrs.timeshare ~priority:10 ()) ()
  in
  let newcomers_c =
    Container.create ~parent:root ~name:"newcomers" ~attrs:(Attrs.timeshare ~priority ()) ()
  in
  let listens =
    [
      Socket.make_listen ~port:80
        ~filter:(Netsim.Filter.prefix ~template:(Netsim.Ipaddr.v 10 1 0 0) ~bits:16)
        ~container:existing_c ();
      Socket.make_listen ~port:80 ~container:newcomers_c ();
    ]
  in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~api:Httpsim.Event_server.Event_api ~policy:Httpsim.Event_server.Inherit_listen
      ~listens ()
  in
  ignore (Httpsim.Event_server.start server);
  (* Established workload: persistent clients already connected... *)
  let existing =
    Workload.Sclient.create ~stack ~name:"existing" ~port:80 ~path:"/doc/1k" ~persistent:true
      ~requests_per_conn:1_000_000 ~count:8 ()
  in
  Workload.Sclient.start existing;
  run machine sim (Simtime.ms 500);
  (* ...then a storm of connection-per-request newcomers. *)
  let churn =
    Workload.Sclient.create ~stack ~name:"churn" ~src_base:(Netsim.Ipaddr.v 10 2 0 1) ~port:80
      ~path:"/doc/1k" ~count:24 ()
  in
  Workload.Sclient.start churn;
  run machine sim (Simtime.ms 500);
  Workload.Sclient.reset_stats existing;
  run machine sim (Simtime.sec 2);
  Workload.Sclient.completed existing

let test_accept_vs_existing_priority () =
  let favoured = existing_latency_with_listen_priority 1 in
  let disfavoured = existing_latency_with_listen_priority 80 in
  Alcotest.(check bool)
    (Printf.sprintf
       "low-priority accepts protect existing clients' throughput (%d > 2x %d)" favoured
       disfavoured)
    true
    (favoured > 2 * disfavoured)

let test_unknown_document_404 () =
  let sim, _, machine, proc, stack, cache = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let got = ref None in
  Stack.connect stack ~src:(Netsim.Ipaddr.v 10 0 0 1) ~port:80
    ~handlers:
      {
        Socket.null_handlers with
        Socket.on_established =
          (fun conn ->
            Stack.client_send stack conn
              (Http.request ~now:(Sim.now sim) ~path:"/no/such/thing" ()));
        on_response = (fun _ p -> got := Some p.Netsim.Payload.bytes);
      }
    ();
  run machine sim (Simtime.ms 50);
  (* A short error body plus headers, not a hang or a crash. *)
  Alcotest.(check (option int)) "small error response" (Some (80 + Http.header_bytes)) !got

(* The semantic difference between the two event APIs (paper §5.5): with
   select() a poll round serves the whole ready batch; with the scalable
   event API one priority-ordered event is served per round, so a
   high-priority event is never stuck behind a batch. *)
let test_event_api_priority_ordering () =
  let sim, root, machine, proc, stack, cache = make_rig Stack.Rc in
  let hi = Container.create ~parent:root ~name:"hi" ~attrs:(Attrs.timeshare ~priority:90 ()) () in
  let lo = Container.create ~parent:root ~name:"lo" ~attrs:(Attrs.timeshare ~priority:10 ()) () in
  let hi_src = Netsim.Ipaddr.v 10 9 9 9 in
  let listens =
    [
      Socket.make_listen ~port:80 ~filter:(Netsim.Filter.host hi_src) ~container:hi ();
      Socket.make_listen ~port:80 ~container:lo ();
    ]
  in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~api:Httpsim.Event_server.Event_api ~policy:Httpsim.Event_server.Inherit_listen ~listens
      ()
  in
  ignore (Httpsim.Event_server.start server);
  let lo_clients =
    Workload.Sclient.create ~stack ~name:"lo" ~port:80 ~path:"/doc/1k" ~count:12 ()
  in
  let hi_client =
    Workload.Sclient.create ~stack ~name:"hi" ~src_base:hi_src ~port:80 ~path:"/doc/1k"
      ~jitter:(Simtime.ms 1) ~count:1 ()
  in
  Workload.Sclient.start lo_clients;
  Workload.Sclient.start hi_client;
  run machine sim (Simtime.sec 1);
  Workload.Sclient.reset_stats hi_client;
  Workload.Sclient.reset_stats lo_clients;
  run machine sim (Simtime.sec 2);
  let hi_lat = Engine.Stats.Summary.mean (Workload.Sclient.response_times hi_client) in
  let lo_lat = Engine.Stats.Summary.mean (Workload.Sclient.response_times lo_clients) in
  Alcotest.(check bool) "saturated by low class" true (lo_lat > 2. *. hi_lat);
  Alcotest.(check bool) "high stays near service time" true (hi_lat < 2.)

(* §4.8's first worked example: a long file transfer accumulates usage in
   its per-connection container, so threads serving other connections are
   preferred and small requests stay fast. *)
let test_long_transfer_does_not_starve () =
  let sim, root, machine, proc, stack, cache = make_rig Stack.Rc in
  File_cache.add_document cache ~path:"/big/4m" ~bytes:4_000_000;
  File_cache.warm cache;
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Threaded_server.create ~stack ~process:proc ~cache ~workers:8
      ~policy:(Httpsim.Event_server.Per_connection { parent = root; priority_of = (fun _ -> 10) })
      ~listens:[ listen ] ()
  in
  Httpsim.Threaded_server.start server;
  (* One heavy downloader (each response costs ~70ms of send-path CPU)
     against four small-file clients. *)
  let heavy =
    Workload.Sclient.create ~stack ~name:"heavy" ~src_base:(Netsim.Ipaddr.v 10 8 0 1) ~port:80
      ~path:"/big/4m" ~syn_timeout:(Simtime.sec 30) ~count:1 ()
  in
  let light =
    Workload.Sclient.create ~stack ~name:"light" ~port:80 ~path:"/doc/1k" ~count:4 ()
  in
  Workload.Sclient.start heavy;
  Workload.Sclient.start light;
  run machine sim (Simtime.sec 1);
  Workload.Sclient.reset_stats light;
  run machine sim (Simtime.sec 2);
  Alcotest.(check bool) "transfers are flowing" true (Workload.Sclient.completed heavy >= 5);
  let light_latency = Engine.Stats.Summary.mean (Workload.Sclient.response_times light) in
  Alcotest.(check bool) "small requests stay fast beside a 70ms-CPU transfer" true
    (light_latency < 5.)

let test_threaded_server_serves () =
  let sim, root, machine, proc, stack, cache = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Threaded_server.create ~stack ~process:proc ~cache ~workers:4
      ~policy:(Httpsim.Event_server.Per_connection { parent = root; priority_of = (fun _ -> 10) })
      ~listens:[ listen ] ()
  in
  Httpsim.Threaded_server.start server;
  let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:3 () in
  Workload.Sclient.start clients;
  run machine sim (Simtime.sec 1);
  Alcotest.(check bool) "served" true (Httpsim.Threaded_server.served server > 50);
  Alcotest.(check bool) "accepts tracked" true (Httpsim.Threaded_server.accepts server > 50)

let suite =
  [
    Alcotest.test_case "cost budgets (§5.3)" `Quick test_cost_budgets;
    Alcotest.test_case "SYN costs (fig 14)" `Quick test_syn_costs;
    Alcotest.test_case "primitives cheap (table 1)" `Quick test_primitives_cheap;
    Alcotest.test_case "http roundtrip" `Quick test_http_roundtrip;
    Alcotest.test_case "http dynamic detection" `Quick test_http_dynamic;
    Alcotest.test_case "http parse error" `Quick test_http_parse_error;
    Alcotest.test_case "http response size" `Quick test_http_response_size;
    Alcotest.test_case "docset interning" `Quick test_docset_interning;
    Alcotest.test_case "http doc ids" `Quick test_http_doc_ids;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache warm" `Quick test_cache_warm;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache lookup cost" `Quick test_cache_lookup_cost;
    Alcotest.test_case "event server serves" `Quick test_event_server_serves;
    Alcotest.test_case "event server persistent" `Quick test_event_server_persistent;
    Alcotest.test_case "per-connection containers" `Quick test_event_server_per_connection_containers;
    Alcotest.test_case "cgi fork sandbox" `Quick test_cgi_fork_sandbox;
    Alcotest.test_case "cgi persistent pool" `Quick test_cgi_persistent_pool;
    Alcotest.test_case "forked server" `Quick test_forked_server_serves;
    Alcotest.test_case "forked server queues beyond pool" `Quick test_forked_server_worker_limit;
    Alcotest.test_case "threaded server" `Quick test_threaded_server_serves;
    Alcotest.test_case "long transfer (§4.8)" `Quick test_long_transfer_does_not_starve;
    Alcotest.test_case "event API priority ordering" `Quick test_event_api_priority_ordering;
    Alcotest.test_case "threaded server CGI detach" `Quick test_threaded_server_cgi_detach;
    Alcotest.test_case "accept vs existing priority (§4.8)" `Quick
      test_accept_vs_existing_priority;
    Alcotest.test_case "unknown document 404" `Quick test_unknown_document_404;
  ]
