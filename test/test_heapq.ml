(* Unit and property tests for Engine.Heapq. *)

module Heapq = Engine.Heapq

let test_empty () =
  let q = Heapq.create () in
  Alcotest.(check bool) "empty" true (Heapq.is_empty q);
  Alcotest.(check int) "length" 0 (Heapq.length q);
  Alcotest.(check bool) "pop empty" true (Heapq.pop_min q = None);
  Alcotest.(check bool) "peek empty" true (Heapq.peek_min_prio q = None)

let test_ordering () =
  let q = Heapq.create () in
  List.iter (fun p -> ignore (Heapq.insert q ~prio:p p)) [ 5; 1; 4; 1; 3; 2 ];
  let drained = ref [] in
  let rec drain () =
    match Heapq.pop_min q with
    | Some (_, v) ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5 ] (List.rev !drained)

let test_fifo_ties () =
  let q = Heapq.create () in
  ignore (Heapq.insert q ~prio:7 "first");
  ignore (Heapq.insert q ~prio:7 "second");
  ignore (Heapq.insert q ~prio:7 "third");
  let pop () = match Heapq.pop_min q with Some (_, v) -> v | None -> "?" in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string))
    "insertion order at equal priority"
    [ "first"; "second"; "third" ]
    [ p1; p2; p3 ]

let test_cancel () =
  let q = Heapq.create () in
  let _a = Heapq.insert q ~prio:1 "a" in
  let b = Heapq.insert q ~prio:2 "b" in
  let _c = Heapq.insert q ~prio:3 "c" in
  Alcotest.(check bool) "cancel live" true (Heapq.cancel q b);
  Alcotest.(check bool) "cancel twice" false (Heapq.cancel q b);
  Alcotest.(check int) "length after cancel" 2 (Heapq.length q);
  Alcotest.(check bool) "a first" true (Heapq.pop_min q = Some (1, "a"));
  Alcotest.(check bool) "b skipped" true (Heapq.pop_min q = Some (3, "c"));
  Alcotest.(check bool) "drained" true (Heapq.pop_min q = None)

let test_cancel_min () =
  let q = Heapq.create () in
  let a = Heapq.insert q ~prio:1 "a" in
  ignore (Heapq.insert q ~prio:2 "b");
  ignore (Heapq.cancel q a);
  Alcotest.(check (option int)) "peek skips dead" (Some 2) (Heapq.peek_min_prio q)

let test_clear () =
  let q = Heapq.create () in
  for i = 0 to 99 do
    ignore (Heapq.insert q ~prio:i i)
  done;
  Heapq.clear q;
  Alcotest.(check bool) "cleared" true (Heapq.is_empty q);
  ignore (Heapq.insert q ~prio:1 1);
  Alcotest.(check int) "usable after clear" 1 (Heapq.length q)

let test_growth () =
  let q = Heapq.create () in
  for i = 1000 downto 1 do
    ignore (Heapq.insert q ~prio:i i)
  done;
  Alcotest.(check int) "all inserted" 1000 (Heapq.length q);
  Alcotest.(check (option int)) "min" (Some 1) (Heapq.peek_min_prio q)

let test_compaction_reclaims_dead () =
  (* Cancelling most of a large heap must shrink physical storage while
     preserving the survivors' pop order. *)
  let q = Heapq.create () in
  let handles = Array.init 2000 (fun i -> Heapq.insert q ~prio:i i) in
  for i = 0 to 1999 do
    if i mod 10 <> 0 then ignore (Heapq.cancel q handles.(i))
  done;
  Alcotest.(check int) "length counts live only" 200 (Heapq.length q);
  Alcotest.(check bool) "dead storage reclaimed" true
    (Heapq.physical_size q <= (2 * Heapq.length q) + 65);
  let rec drain acc =
    match Heapq.pop_min q with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "survivors in order"
    (List.init 200 (fun i -> i * 10))
    (drain [])

(* Model-based property: drive the heap with interleaved inserts, cancels
   and pops against a sorted-list model; pop order, length and the
   physical-storage bound must all hold at every step. *)
let prop_compaction_model =
  QCheck2.Test.make ~name:"heap matches model under insert/cancel/pop" ~count:100
    QCheck2.Gen.(list_size (int_range 1 400) (pair (int_range 0 5) (int_range 0 1000)))
    (fun ops ->
      let q = Heapq.create () in
      (* model: seq -> prio of live elements; seq gives FIFO among ties *)
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let handles = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun (op, p) ->
          (match op with
          | 0 | 1 | 2 ->
              let id = !seq in
              incr seq;
              let h = Heapq.insert q ~prio:p id in
              Hashtbl.replace model id p;
              handles := (id, h) :: !handles
          | 3 -> (
              (* cancel a pseudo-random live-or-dead handle *)
              match !handles with
              | [] -> ()
              | hs ->
                  let id, h = List.nth hs (p mod List.length hs) in
                  let was_live = Hashtbl.mem model id in
                  let did = Heapq.cancel q h in
                  if did <> was_live then failwith "cancel result mismatch";
                  Hashtbl.remove model id)
          | _ -> (
              let expect =
                Hashtbl.fold
                  (fun id prio best ->
                    match best with
                    | Some (bp, bid) when (bp, bid) <= (prio, id) -> best
                    | _ -> Some (prio, id))
                  model None
              in
              match (Heapq.pop_min q, expect) with
              | None, None -> ()
              | Some (gp, gid), Some (ep, eid) when gp = ep && gid = eid ->
                  Hashtbl.remove model gid
              | _ -> failwith "pop mismatch"));
          Heapq.length q = Hashtbl.length model
          && Heapq.physical_size q <= (2 * Heapq.length q) + 65)
        ops)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck2.Gen.(list (int_range (-1000) 1000))
    (fun xs ->
      let q = Heapq.create () in
      List.iter (fun x -> ignore (Heapq.insert q ~prio:x x)) xs;
      let rec drain acc =
        match Heapq.pop_min q with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let prop_cancel_removes =
  QCheck2.Test.make ~name:"cancelled elements never surface" ~count:200
    QCheck2.Gen.(list (pair (int_range 0 100) bool))
    (fun xs ->
      let q = Heapq.create () in
      let keep = ref [] in
      List.iter
        (fun (p, cancel) ->
          let h = Heapq.insert q ~prio:p (p, cancel) in
          if cancel then ignore (Heapq.cancel q h) else keep := p :: !keep)
        xs;
      let rec drain acc =
        match Heapq.pop_min q with
        | Some (_, (p, cancelled)) ->
            if cancelled then false else drain (p :: acc)
        | None -> List.sort compare acc = List.sort compare !keep
      in
      drain [])

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "min ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO among ties" `Quick test_fifo_ties;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancel at min" `Quick test_cancel_min;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "compaction reclaims dead" `Quick test_compaction_reclaims_dead;
    QCheck_alcotest.to_alcotest prop_compaction_model;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_cancel_removes;
  ]
