(* Tests for the Engine.Sim discrete-event driver and Tracelog/Series. *)

module Sim = Engine.Sim
module Simtime = Engine.Simtime

let test_empty_run () =
  let sim = Sim.create () in
  Sim.run sim;
  Alcotest.(check int) "clock stays at zero" 0 (Simtime.to_ns (Sim.now sim))

let test_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Sim.at sim (Simtime.of_ns 30) (record "c"));
  ignore (Sim.at sim (Simtime.of_ns 10) (record "a"));
  ignore (Sim.at sim (Simtime.of_ns 20) (record "b"));
  Sim.run sim;
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ] (List.rev !log)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.at sim (Simtime.of_ns 100) (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "schedule order at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore (Sim.after sim (Simtime.us 5) (fun () -> seen := Simtime.to_ns (Sim.now sim) :: !seen));
  ignore (Sim.after sim (Simtime.us 2) (fun () -> seen := Simtime.to_ns (Sim.now sim) :: !seen));
  Sim.run sim;
  Alcotest.(check (list int)) "clock at fire time" [ 2_000; 5_000 ] (List.rev !seen)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.after sim (Simtime.us 1) (fun () -> fired := true) in
  Alcotest.(check bool) "cancel succeeds" true (Sim.cancel sim ev);
  Alcotest.(check bool) "cancel twice fails" false (Sim.cancel sim ev);
  Sim.run sim;
  Alcotest.(check bool) "did not fire" false !fired

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.after sim (Simtime.us 1) (fun () ->
         log := "outer" :: !log;
         ignore (Sim.after sim (Simtime.us 1) (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested fires" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "clock" 2_000 (Simtime.to_ns (Sim.now sim))

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.at sim (Simtime.of_ns (i * 100)) (fun () -> incr count))
  done;
  Sim.run_until sim (Simtime.of_ns 500);
  Alcotest.(check int) "events up to horizon" 5 !count;
  Alcotest.(check int) "clock at horizon" 500 (Simtime.to_ns (Sim.now sim));
  Sim.run_until sim (Simtime.of_ns 2_000);
  Alcotest.(check int) "rest fire" 10 !count;
  Alcotest.(check int) "clock at second horizon" 2_000 (Simtime.to_ns (Sim.now sim))

let test_past_scheduling_rejected () =
  let sim = Sim.create () in
  ignore (Sim.at sim (Simtime.of_ns 100) (fun () -> ()));
  Sim.run sim;
  let raised =
    try
      ignore (Sim.at sim (Simtime.of_ns 50) (fun () -> ()));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "scheduling in the past raises" true raised

let test_after_negative_is_now () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.after sim (Simtime.span_of_ns (-5)) (fun () -> fired := true));
  Sim.run sim;
  Alcotest.(check bool) "fires immediately" true !fired

let test_every () =
  let sim = Sim.create () in
  let count = ref 0 in
  let timer = Sim.every sim (Simtime.us 10) (fun () -> incr count) in
  Sim.run_until sim (Simtime.of_ns 55_000);
  Alcotest.(check int) "five periods" 5 !count;
  ignore (Sim.cancel sim timer);
  Sim.run_until sim (Simtime.of_ns 100_000);
  Alcotest.(check int) "cancelled stops the series" 5 !count

let test_pending () =
  let sim = Sim.create () in
  Alcotest.(check int) "none" 0 (Sim.pending sim);
  let a = Sim.after sim (Simtime.us 1) (fun () -> ()) in
  ignore (Sim.after sim (Simtime.us 2) (fun () -> ()));
  Alcotest.(check int) "two" 2 (Sim.pending sim);
  ignore (Sim.cancel sim a);
  Alcotest.(check int) "one after cancel" 1 (Sim.pending sim)

let test_step () =
  let sim = Sim.create () in
  let log = ref 0 in
  ignore (Sim.after sim (Simtime.us 1) (fun () -> incr log));
  ignore (Sim.after sim (Simtime.us 2) (fun () -> incr log));
  Alcotest.(check bool) "step 1" true (Sim.step sim);
  Alcotest.(check int) "one fired" 1 !log;
  Alcotest.(check bool) "step 2" true (Sim.step sim);
  Alcotest.(check bool) "step empty" false (Sim.step sim)

let test_tracelog () =
  let module T = Engine.Tracelog in
  let tr = T.create ~enabled:true ~capacity:4 () in
  for i = 1 to 6 do
    T.emitf tr (Simtime.of_ns i) ~category:"cat" "event %d" i
  done;
  let entries = T.entries tr in
  Alcotest.(check int) "capacity bound" 4 (List.length entries);
  (match entries with
  | first :: _ ->
      Alcotest.(check string) "oldest retained" "event 3"
        (Engine.Trace_event.render first.T.event)
  | [] -> Alcotest.fail "no entries");
  Alcotest.(check int) "find by category" 4 (List.length (T.find tr ~category:"cat"));
  Alcotest.(check int) "find missing" 0 (List.length (T.find tr ~category:"nope"));
  T.set_enabled tr false;
  T.emit tr Simtime.zero ~category:"cat" "dropped";
  Alcotest.(check int) "disabled drops" 4 (List.length (T.entries tr));
  T.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (T.entries tr))

let test_series () =
  let module S = Engine.Series in
  let c1 = S.curve "one" and c2 = S.curve "two" in
  S.add_point c1 ~x:1. ~y:10.;
  S.add_point c1 ~x:2. ~y:20.;
  S.add_point c2 ~x:1. ~y:100.;
  Alcotest.(check (option (float 1e-9))) "y_at hit" (Some 20.) (S.y_at c1 2.);
  Alcotest.(check (option (float 1e-9))) "y_at miss" None (S.y_at c2 2.);
  let fig = S.figure ~title:"t" ~x_label:"x" ~y_label:"y" [ c1; c2 ] in
  let csv = S.figure_to_csv fig in
  Alcotest.(check bool) "csv header" true (String.length csv > 0 && String.sub csv 0 9 = "x,one,two");
  let table = S.table ~title:"tb" ~columns:[ "a"; "b" ] in
  S.add_row table [ "1"; "2" ];
  Alcotest.(check int) "rows" 1 (List.length (S.table_rows table));
  let raised =
    try
      S.add_row table [ "only-one" ];
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "row width checked" true raised

let test_figure_chart () =
  let module S = Engine.Series in
  let c = S.curve "only" in
  S.add_point c ~x:1. ~y:10.;
  S.add_point c ~x:2. ~y:20.;
  let fig = S.figure ~title:"t" ~x_label:"x" ~y_label:"y" [ c ] in
  let rendered = Format.asprintf "%a" S.pp_figure_chart fig in
  Alcotest.(check bool) "contains bars" true (String.contains rendered '#');
  (* The 20 bar must be about twice the 10 bar. *)
  let count_hashes line = String.fold_left (fun a ch -> if ch = '#' then a + 1 else a) 0 line in
  let lines = String.split_on_char '\n' rendered in
  let bars = List.filter (fun l -> String.contains l '#') lines in
  (match bars with
  | [ b10; b20 ] ->
      Alcotest.(check int) "proportional" (2 * count_hashes b10) (count_hashes b20)
  | _ -> Alcotest.fail "expected two bars")

let prop_sim_fires_sorted =
  QCheck2.Test.make ~name:"events fire in (time, insertion) order" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 0 1_000))
    (fun times ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iteri
        (fun i t -> ignore (Sim.at sim (Simtime.of_ns t) (fun () -> fired := (t, i) :: !fired)))
        times;
      Sim.run sim;
      let order = List.rev !fired in
      let sorted = List.stable_sort (fun (a, i) (b, j) -> if a = b then compare i j else compare a b)
          (List.mapi (fun i t -> (t, i)) times)
      in
      order = sorted)

let suite =
  [
    Alcotest.test_case "empty run" `Quick test_empty_run;
    Alcotest.test_case "timestamp ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO at same instant" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances to fire times" `Quick test_clock_advances;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "run_until horizon" `Quick test_run_until;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "negative delay fires now" `Quick test_after_negative_is_now;
    Alcotest.test_case "periodic timer" `Quick test_every;
    Alcotest.test_case "pending count" `Quick test_pending;
    Alcotest.test_case "single stepping" `Quick test_step;
    Alcotest.test_case "tracelog ring buffer" `Quick test_tracelog;
    Alcotest.test_case "series and tables" `Quick test_series;
    Alcotest.test_case "figure chart rendering" `Quick test_figure_chart;
    QCheck_alcotest.to_alcotest prop_sim_fires_sorted;
  ]
