(* Tests for the parallel sweep executor: input-order results, exception
   propagation, and the headline guarantee — a sweep's JSON report is
   byte-identical whether it ran on one domain or four. *)

module Sweep = Experiments.Harness.Sweep
module Exp_sweep = Experiments.Exp_sweep
module Simtime = Engine.Simtime

let test_map_order () =
  let points = Array.init 20 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) points in
  List.iter
    (fun jobs ->
      let got = Sweep.map ~jobs (fun i -> i * i) points in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        expect got)
    [ 1; 2; 4; 7 ]

let test_map_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Sweep.map ~jobs:4 (fun i -> i) [||]);
  Alcotest.(check (array int)) "single" [| 3 |] (Sweep.map ~jobs:4 (fun i -> i + 1) [| 2 |])

exception Boom of int

let test_map_exception () =
  let raised =
    try
      ignore (Sweep.map ~jobs:3 (fun i -> if i = 5 then raise (Boom i) else i) (Array.init 8 Fun.id));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "failure propagates" (Some 5) raised

let test_recommended_jobs () =
  Alcotest.(check bool) "at least one core" true (Sweep.recommended_jobs () >= 1)

(* Force the persistent worker pool into action even on a 1-core host
   (where the core-count cap would normally keep every map serial), and
   run several batches so the generation hand-off between batches is
   exercised, not just the first spawn. *)
let test_pool_oversubscribed_batches () =
  let points = Array.init 60 Fun.id in
  let expect = Array.map (fun i -> (i * 7) + 1 ) points in
  for round = 1 to 3 do
    let got = Sweep.map ~jobs:4 ~oversubscribe:true (fun i -> (i * 7) + 1) points in
    Alcotest.(check (array int))
      (Printf.sprintf "pooled round %d preserves order" round)
      expect got
  done

let test_pool_exception () =
  let raised =
    try
      ignore
        (Sweep.map ~jobs:3 ~oversubscribe:true
           (fun i -> if i = 5 then raise (Boom i) else i)
           (Array.init 8 Fun.id));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "failure propagates from the pool" (Some 5) raised

(* The determinism guarantee, end to end: the same miniature sweep run
   serially and run across four domains must render to the same bytes.
   This is what makes --jobs safe to default on for result generation. *)
let test_jobs_determinism () =
  let points = Exp_sweep.grid ~client_counts:[ 2 ] ~seeds:[ 1 ] () in
  let warmup = Simtime.ms 100 and measure = Simtime.ms 400 in
  let run jobs = Exp_sweep.report_string (Exp_sweep.run_grid ~warmup ~measure ~jobs points) in
  let serial = run 1 in
  let parallel = run 4 in
  Alcotest.(check string) "jobs=4 report == jobs=1 report" serial parallel;
  Alcotest.(check bool) "report is non-trivial" true (String.length serial > 100)

let suite =
  [
    Alcotest.test_case "map preserves input order" `Quick test_map_order;
    Alcotest.test_case "map edge cases" `Quick test_map_empty_and_single;
    Alcotest.test_case "map propagates exceptions" `Quick test_map_exception;
    Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs;
    Alcotest.test_case "worker pool across batches" `Quick test_pool_oversubscribed_batches;
    Alcotest.test_case "worker pool propagates exceptions" `Quick test_pool_exception;
    Alcotest.test_case "jobs=4 equals jobs=1 byte-for-byte" `Quick test_jobs_determinism;
  ]
