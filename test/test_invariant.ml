(* Tests for the conservation-law invariant checker: the registry itself,
   the machine/scheduler/stack/cache laws, and the strict-memory mode. *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Invariant = Engine.Invariant
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Machine = Procsim.Machine
module Process = Procsim.Process
module Socket = Netsim.Socket
module Stack = Netsim.Stack
module Ipaddr = Netsim.Ipaddr

(* Restore the process-wide strict-memory flag no matter how a test ends. *)
let with_strict_memory on f =
  let before = Usage.strict_memory_enabled () in
  Usage.set_strict_memory on;
  Fun.protect ~finally:(fun () -> Usage.set_strict_memory before) f

(* {1 Registry} *)

let test_registry_basics () =
  let t = Invariant.create () in
  let hits = ref 0 in
  Invariant.register t ~law:"always-ok" (fun () -> incr hits; Ok ());
  Invariant.register t ~law:"always-bad" (fun () -> Error "broken");
  Alcotest.(check (list string)) "names in order" [ "always-ok"; "always-bad" ]
    (Invariant.names t);
  let violations = Invariant.check t in
  Alcotest.(check int) "laws all ran" 1 !hits;
  Alcotest.(check int) "one violation" 1 (List.length violations);
  (match violations with
  | [ v ] ->
      Alcotest.(check string) "law name" "always-bad" v.Invariant.law;
      Alcotest.(check string) "detail" "broken" v.Invariant.detail
  | _ -> Alcotest.fail "expected exactly one violation");
  Alcotest.(check int) "checks counted" 1 (Invariant.checks_run t);
  Alcotest.(check int) "violations counted" 1 (Invariant.violations_seen t);
  Alcotest.(check bool) "check_exn raises" true
    (try Invariant.check_exn t; false with Invariant.Violation v -> v.Invariant.law = "always-bad")

let test_registry_arming () =
  let t = Invariant.create () in
  Alcotest.(check bool) "starts disarmed" false (Invariant.armed t);
  Invariant.arm t;
  Alcotest.(check bool) "armed" true (Invariant.armed t);
  Invariant.disarm t;
  Alcotest.(check bool) "disarmed" false (Invariant.armed t)

let test_raising_law_is_violation () =
  let t = Invariant.create () in
  Invariant.register t ~law:"total" (fun () -> failwith "partial check");
  match Invariant.check t with
  | [ v ] ->
      Alcotest.(check string) "law" "total" v.Invariant.law;
      Alcotest.(check bool) "detail mentions the exception" true
        (String.length v.Invariant.detail > 0)
  | _ -> Alcotest.fail "a raising law must report as a violation"

let test_helpers () =
  Alcotest.(check bool) "equal_int ok" true (Invariant.equal_int ~what:"x" 3 3 = Ok ());
  (match Invariant.equal_int ~what:"x" 3 5 with
  | Error msg -> Alcotest.(check bool) "delta in message" true
      (String.length msg > 0 && String.contains msg '2')
  | Ok () -> Alcotest.fail "expected mismatch");
  Alcotest.(check bool) "leq ok" true (Invariant.leq_int ~what:"q" 4 4 = Ok ());
  Alcotest.(check bool) "leq bad" true (Invariant.leq_int ~what:"q" 5 4 <> Ok ());
  Alcotest.(check bool) "non_negative ok" true (Invariant.non_negative ~what:"m" 0 = Ok ());
  Alcotest.(check bool) "non_negative bad" true (Invariant.non_negative ~what:"m" (-1) <> Ok ())

(* {1 Machine laws} *)

let make_machine () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let invariants = Invariant.create () in
  let policy = Sched.Multilevel.make ~invariants ~root () in
  let machine = Machine.create ~sim ~policy ~root ~invariants () in
  (sim, root, machine)

let test_cpu_conservation_holds () =
  let sim, root, machine = make_machine () in
  let a = Container.create ~parent:root ~name:"a" () in
  let b = Container.create ~parent:root ~name:"b" ~attrs:(Attrs.timeshare ~priority:30 ()) () in
  ignore (Machine.spawn machine ~name:"ta" ~container:a (fun () -> Machine.cpu (Simtime.ms 20)));
  ignore (Machine.spawn machine ~name:"tb" ~container:b (fun () -> Machine.cpu (Simtime.ms 30)));
  Machine.run_until machine (Simtime.add (Sim.now sim) (Simtime.ms 100));
  Alcotest.(check (list string)) "all laws hold on a busy machine" []
    (List.map (fun v -> v.Invariant.law) (Machine.check_invariants machine))

let test_mischarge_caught () =
  let sim, _root, machine = make_machine () in
  ignore
    (Machine.spawn machine ~name:"work" ~container:(Machine.system_container machine) (fun () ->
         Machine.cpu (Simtime.ms 5)));
  (* Interrupt work billed to a container outside the root's subtree:
     busy time advances, the root rollup does not. *)
  let detached = Container.create_detached ~name:"outside" () in
  ignore
    (Sim.after sim (Simtime.ms 2) (fun () ->
         Machine.steal_time machine ~cost:(Simtime.us 70) ~charge:(`Container detached)));
  Machine.run_until machine (Simtime.add (Sim.now sim) (Simtime.ms 10));
  match Machine.check_invariants machine with
  | [] -> Alcotest.fail "cpu.conservation must catch the mis-charge"
  | v :: _ -> Alcotest.(check string) "first broken law" "cpu.conservation" v.Invariant.law

let test_armed_machine_raises_at_quiesce () =
  let sim, _root, machine = make_machine () in
  Machine.arm_invariants machine;
  with_strict_memory false (fun () ->
      let detached = Container.create_detached ~name:"outside" () in
      ignore
        (Sim.after sim (Simtime.ms 1) (fun () ->
             Machine.steal_time machine ~cost:(Simtime.us 50) ~charge:(`Container detached)));
      Alcotest.(check bool) "run_until raises Violation" true
        (try
           Machine.run_until machine (Simtime.add (Sim.now sim) (Simtime.sec 1));
           false
         with Invariant.Violation v -> v.Invariant.law = "cpu.conservation"))

let test_armed_machine_checks_periodically () =
  let sim, root, machine = make_machine () in
  with_strict_memory false (fun () ->
      Machine.arm_invariants ~interval:(Simtime.ms 5) machine;
      ignore
        (Machine.spawn machine ~name:"spin" ~container:root (fun () ->
             for _ = 1 to 20 do
               Machine.cpu (Simtime.ms 2)
             done));
      Machine.run_until machine (Simtime.add (Sim.now sim) (Simtime.ms 100));
      let sweeps = Invariant.checks_run (Machine.invariants machine) in
      Alcotest.(check bool) "periodic sweeps ran" true (sweeps >= 10))

(* {1 Strict memory mode} *)

let test_memory_clamp_vs_raise () =
  let u = Usage.create () in
  with_strict_memory false (fun () ->
      Usage.charge_memory u 100;
      Usage.charge_memory u (-250);
      Alcotest.(check int) "saturates at zero when lenient" 0 (Usage.memory_bytes u));
  let u2 = Usage.create () in
  with_strict_memory true (fun () ->
      Usage.charge_memory u2 100;
      Alcotest.(check bool) "over-refund raises when strict" true
        (try Usage.charge_memory u2 (-250); false with Usage.Negative_memory _ -> true);
      Alcotest.(check int) "balance untouched by the failed charge" 100 (Usage.memory_bytes u2))

(* {1 Stack and cache law registration} *)

let test_subsystem_laws_registered () =
  let _sim, _root, machine = make_machine () in
  let proc = Process.create machine ~name:"srv" () in
  let stack = Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) () in
  ignore stack;
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.register_invariants cache (Machine.invariants machine);
  let names = Invariant.names (Machine.invariants machine) in
  List.iter
    (fun law ->
      Alcotest.(check bool) (law ^ " registered") true (List.mem law names))
    [
      "cpu.conservation"; "cpu.subtree-rollup"; "memory.non-negative";
      "sched.no-idle-starvation"; "sched.runq-counts"; "net.pending-consistency";
      "net.queue-bounds"; "net.memory-conservation"; "cache.bytes-consistency";
    ];
  (* A second stack on the same machine must not duplicate the laws. *)
  let stack2 = Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) () in
  ignore stack2;
  let count name = List.length (List.filter (String.equal name) (Invariant.names (Machine.invariants machine))) in
  Alcotest.(check int) "net laws registered once" 1 (count "net.memory-conservation");
  Alcotest.(check (list string)) "all laws hold on the fresh rig" []
    (List.map (fun v -> v.Invariant.law) (Machine.check_invariants machine))

let test_net_laws_hold_under_traffic () =
  let sim, _root, machine = make_machine () in
  let proc = Process.create machine ~name:"srv" () in
  let stack = Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) () in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.register_invariants cache (Machine.invariants machine);
  Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  Httpsim.File_cache.warm cache;
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  with_strict_memory false (fun () ->
      Machine.arm_invariants ~interval:(Simtime.ms 2) machine;
      let clients = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:3 () in
      Workload.Sclient.start clients;
      Machine.run_until machine (Simtime.add (Sim.now sim) (Simtime.ms 200));
      Alcotest.(check bool) "requests flowed" true (Workload.Sclient.completed clients > 10);
      Alcotest.(check int) "no violations across the run" 0
        (Invariant.violations_seen (Machine.invariants machine)))

let suite =
  [
    Alcotest.test_case "registry basics" `Quick test_registry_basics;
    Alcotest.test_case "registry arming" `Quick test_registry_arming;
    Alcotest.test_case "raising law is a violation" `Quick test_raising_law_is_violation;
    Alcotest.test_case "law-writing helpers" `Quick test_helpers;
    Alcotest.test_case "cpu conservation holds" `Quick test_cpu_conservation_holds;
    Alcotest.test_case "mis-charge caught" `Quick test_mischarge_caught;
    Alcotest.test_case "armed machine raises at quiesce" `Quick test_armed_machine_raises_at_quiesce;
    Alcotest.test_case "periodic sweeps" `Quick test_armed_machine_checks_periodically;
    Alcotest.test_case "memory clamp vs strict raise" `Quick test_memory_clamp_vs_raise;
    Alcotest.test_case "subsystem laws registered" `Quick test_subsystem_laws_registered;
    Alcotest.test_case "net laws hold under traffic" `Quick test_net_laws_hold_under_traffic;
  ]
