(* Tests for the seeded scenario fuzzer: fixed seeds stay clean in every
   stack mode, runs are deterministic, and a planted accounting bug is
   caught and replayable. *)

let test_fixed_seeds_clean () =
  let outcomes =
    Fuzz.run_batch ~modes:Fuzz.all_modes ~seeds:[ 1; 2; 3 ] ()
  in
  Alcotest.(check int) "nine runs" 9 (List.length outcomes);
  List.iter
    (fun o ->
      Alcotest.(check (option string))
        (Printf.sprintf "seed %d %s clean" o.Fuzz.seed (Fuzz.mode_name o.Fuzz.mode))
        None o.Fuzz.violation;
      Alcotest.(check bool) "invariant sweeps ran" true (o.Fuzz.checks > 5))
    outcomes

let test_determinism () =
  let a = Fuzz.run_seed ~mode:Netsim.Stack.Rc ~seed:7 () in
  let b = Fuzz.run_seed ~mode:Netsim.Stack.Rc ~seed:7 () in
  Alcotest.(check string) "same scenario" a.Fuzz.scenario b.Fuzz.scenario;
  Alcotest.(check int) "same completions" a.Fuzz.completed b.Fuzz.completed;
  Alcotest.(check int) "same packets" a.Fuzz.packets b.Fuzz.packets;
  Alcotest.(check int) "same establishments" a.Fuzz.established b.Fuzz.established;
  Alcotest.(check int) "same sweeps" a.Fuzz.checks b.Fuzz.checks

let test_injected_mischarge_caught () =
  let trace = Filename.temp_file "fuzz-inject" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists trace then Sys.remove trace)
    (fun () ->
      let o = Fuzz.run_seed ~inject:true ~trace_path:trace ~mode:Netsim.Stack.Rc ~seed:1 () in
      (match o.Fuzz.violation with
      | Some v ->
          Alcotest.(check bool) "cpu.conservation tripped" true
            (String.length v >= 26
            && String.sub v 0 26 = "invariant cpu.conservation")
      | None -> Alcotest.fail "planted mis-charge not caught");
      Alcotest.(check (option string)) "trace dumped" (Some trace) o.Fuzz.trace_file;
      Alcotest.(check bool) "trace non-empty JSONL" true
        (let ic = open_in trace in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> String.length (input_line ic) > 2));
      (* The printed replay line reproduces the run. *)
      Alcotest.(check bool) "replay command names the seed and mode" true
        (let cmd = Fuzz.replay_command ~inject:true ~mode:o.Fuzz.mode ~seed:o.Fuzz.seed () in
         let contains needle hay =
           let nl = String.length needle and hl = String.length hay in
           let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
           scan 0
         in
         contains "--seed 1" cmd && contains "--mode rc" cmd && contains "--inject" cmd))

let test_zipf_family () =
  (* The large-Zipf corpus family: thousands of documents churning an
     undersized arena cache under the armed cache.bytes-consistency and
     LRU-structure laws — clean, deterministic, and marked in the
     scenario line and replay command. *)
  let a = Fuzz.run_seed ~zipf:true ~mode:Netsim.Stack.Rc ~seed:3 () in
  Alcotest.(check (option string)) "zipf seed clean" None a.Fuzz.violation;
  Alcotest.(check bool) "outcome flagged zipf" true a.Fuzz.zipf;
  Alcotest.(check bool) "invariant sweeps ran" true (a.Fuzz.checks > 5);
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "scenario names the corpus" true (contains " zipf docs=" a.Fuzz.scenario);
  Alcotest.(check bool) "replay command carries --zipf" true
    (contains "--zipf" (Fuzz.replay_command ~zipf:true ~mode:a.Fuzz.mode ~seed:a.Fuzz.seed ()));
  let b = Fuzz.run_seed ~zipf:true ~mode:Netsim.Stack.Rc ~seed:3 () in
  Alcotest.(check string) "deterministic scenario" a.Fuzz.scenario b.Fuzz.scenario;
  Alcotest.(check int) "deterministic completions" a.Fuzz.completed b.Fuzz.completed;
  Alcotest.(check int) "deterministic sweeps" a.Fuzz.checks b.Fuzz.checks;
  Alcotest.check_raises "cluster family rejects zipf"
    (Invalid_argument "Fuzz.run_seed: the zipf corpus family is a single-rig scenario")
    (fun () -> ignore (Fuzz.run_seed ~zipf:true ~machines:2 ~mode:Netsim.Stack.Rc ~seed:1 ()))

let test_mode_helpers () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "mode name round-trips" true
        (Fuzz.mode_of_string (Fuzz.mode_name m) = Some m))
    Fuzz.all_modes;
  Alcotest.(check bool) "unknown mode rejected" true (Fuzz.mode_of_string "bogus" = None)

let suite =
  [
    Alcotest.test_case "fixed seeds clean in all modes" `Quick test_fixed_seeds_clean;
    Alcotest.test_case "deterministic replay" `Quick test_determinism;
    Alcotest.test_case "injected mis-charge caught" `Quick test_injected_mischarge_caught;
    Alcotest.test_case "zipf corpus family" `Quick test_zipf_family;
    Alcotest.test_case "mode helpers" `Quick test_mode_helpers;
  ]
