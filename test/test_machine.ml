(* Tests for Procsim.Machine: effect threads, dispatching, charging,
   interrupt time-stealing, and Procsim.Process. *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Machine = Procsim.Machine
module Process = Procsim.Process

let make_machine ?(policy = `Multilevel) () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let pol =
    match policy with
    | `Multilevel -> Sched.Multilevel.make ~root ()
    | `Timeshare -> Sched.Timeshare.make ()
  in
  let machine = Machine.create ~sim ~policy:pol ~root () in
  (sim, root, machine)

let leaf root name = Container.create ~parent:root ~name ~attrs:(Attrs.timeshare ()) ()

let test_thread_runs_and_charges () =
  let _, root, machine = make_machine () in
  let c = leaf root "worker" in
  let done_flag = ref false in
  ignore
    (Machine.spawn machine ~name:"w" ~container:c (fun () ->
         Machine.cpu (Simtime.ms 5);
         done_flag := true));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check bool) "body completed" true !done_flag;
  Alcotest.(check int) "cpu charged" 5_000_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage c)));
  Alcotest.(check int) "busy time" 5_000_000 (Simtime.span_to_ns (Machine.busy_time machine))

let test_kernel_user_split () =
  let _, root, machine = make_machine () in
  let c = leaf root "worker" in
  ignore
    (Machine.spawn machine ~name:"w" ~container:c (fun () ->
         Machine.cpu ~kernel:true (Simtime.ms 2);
         Machine.cpu ~kernel:false (Simtime.ms 3)));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check int) "kernel" 2_000_000
    (Simtime.span_to_ns (Usage.cpu_kernel (Container.usage c)));
  Alcotest.(check int) "user" 3_000_000 (Simtime.span_to_ns (Usage.cpu_user (Container.usage c)))

let test_wallclock_advances_with_cpu () =
  let sim, root, machine = make_machine () in
  let c = leaf root "worker" in
  let finished_at = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"w" ~container:c (fun () ->
         Machine.cpu (Simtime.ms 7);
         finished_at := Sim.now sim));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check int) "7ms of wall time" 7_000_000 (Simtime.to_ns !finished_at)

let test_two_threads_share () =
  let sim, root, machine = make_machine () in
  let a = leaf root "a" and b = leaf root "b" in
  let a_done = ref Simtime.zero and b_done = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"a" ~container:a (fun () ->
         Machine.cpu (Simtime.ms 10);
         a_done := Sim.now sim));
  ignore
    (Machine.spawn machine ~name:"b" ~container:b (fun () ->
         Machine.cpu (Simtime.ms 10);
         b_done := Sim.now sim));
  Machine.run_until machine (Simtime.of_ns 1_000_000_000);
  (* Both need 10ms of CPU; interleaved fairly both finish around 20ms. *)
  Alcotest.(check bool) "a finishes ~20ms" true
    (Simtime.to_ns !a_done >= 19_000_000 && Simtime.to_ns !a_done <= 21_000_000);
  Alcotest.(check bool) "b finishes ~20ms" true
    (Simtime.to_ns !b_done >= 19_000_000 && Simtime.to_ns !b_done <= 21_000_000)

let test_sleep () =
  let sim, root, machine = make_machine () in
  let c = leaf root "sleeper" in
  let woke = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"s" ~container:c (fun () ->
         Machine.sleep (Simtime.ms 3);
         woke := Sim.now sim));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check int) "slept 3ms" 3_000_000 (Simtime.to_ns !woke);
  Alcotest.(check int) "sleep consumes no cpu" 0
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage c)))

let test_waitq_signal () =
  let _, root, machine = make_machine () in
  let c = leaf root "c" in
  let wq = Machine.Waitq.create ~name:"test" machine in
  let log = ref [] in
  ignore
    (Machine.spawn machine ~name:"waiter" ~container:c (fun () ->
         log := "before" :: !log;
         Machine.Waitq.wait wq;
         log := "after" :: !log));
  ignore
    (Machine.spawn machine ~name:"signaller" ~container:c (fun () ->
         Machine.cpu (Simtime.ms 1);
         Machine.Waitq.signal wq));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check (list string)) "wait then wake" [ "before"; "after" ] (List.rev !log);
  Alcotest.(check int) "no waiters left" 0 (Machine.Waitq.waiters wq)

let test_waitq_broadcast () =
  let _, root, machine = make_machine () in
  let c = leaf root "c" in
  let wq = Machine.Waitq.create machine in
  let woken = ref 0 in
  for i = 1 to 3 do
    ignore
      (Machine.spawn machine ~name:(Printf.sprintf "w%d" i) ~container:c (fun () ->
           Machine.Waitq.wait wq;
           incr woken))
  done;
  ignore
    (Machine.spawn machine ~name:"b" ~container:c (fun () ->
         Machine.cpu (Simtime.us 10);
         Machine.Waitq.broadcast wq));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check int) "all woken" 3 !woken

let test_rebind_changes_charging () =
  let _, root, machine = make_machine () in
  let a = leaf root "a" and b = leaf root "b" in
  ignore
    (Machine.spawn machine ~name:"w" ~container:a (fun () ->
         Machine.cpu (Simtime.ms 2);
         Machine.rebind machine (Machine.self ()) b;
         Machine.cpu (Simtime.ms 3)));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check int) "a charged before rebind" 2_000_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage a)));
  Alcotest.(check int) "b charged after rebind" 3_000_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage b)))

let test_steal_time_extends_slice () =
  let sim, root, machine = make_machine () in
  let c = leaf root "victim" in
  let finished = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"v" ~container:c (fun () ->
         Machine.cpu (Simtime.ms 1);
         finished := Sim.now sim));
  (* Interrupt strikes mid-slice. *)
  ignore
    (Sim.at sim (Simtime.of_ns 500_000) (fun () ->
         Machine.steal_time machine ~cost:(Simtime.us 200) ~charge:`Current_or_system));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check int) "slice stretched by stolen time" 1_200_000 (Simtime.to_ns !finished);
  (* Victim is charged for its own 1ms work and for the stolen 200us. *)
  Alcotest.(check int) "victim charged interrupt" 1_200_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage c)))

let test_steal_time_while_idle () =
  let sim, root, machine = make_machine () in
  let c = leaf root "late" in
  ignore
    (Sim.at sim (Simtime.of_ns 0) (fun () ->
         Machine.steal_time machine ~cost:(Simtime.ms 2) ~charge:`Current_or_system));
  let started = ref Simtime.zero in
  ignore
    (Sim.at sim (Simtime.of_ns 1_000) (fun () ->
         ignore
           (Machine.spawn machine ~name:"l" ~container:c (fun () ->
                started := Sim.now sim;
                Machine.cpu (Simtime.us 1)))));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check bool) "dispatch delayed past irq busy period" true
    (Simtime.to_ns !started >= 2_000_000);
  (* Idle interrupt time is charged to the system (root) container. *)
  Alcotest.(check int) "system charged" 2_000_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage root)))

let test_steal_time_explicit_container () =
  let _, root, machine = make_machine () in
  let c = leaf root "target" in
  Machine.steal_time machine ~cost:(Simtime.us 5) ~charge:(`Container c);
  Alcotest.(check int) "explicit charge" 5_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage c)))

let test_yield_and_self () =
  let _, root, machine = make_machine () in
  let c = leaf root "c" in
  let name = ref "" in
  ignore
    (Machine.spawn machine ~name:"yielding" ~container:c (fun () ->
         Machine.yield ();
         name := Machine.thread_name (Machine.self ())));
  Machine.run_until machine (Simtime.of_ns 1_000_000);
  Alcotest.(check string) "self works after yield" "yielding" !name

let test_thread_exit_cleans_up () =
  let _, root, machine = make_machine () in
  let c = leaf root "c" in
  let thread = Machine.spawn machine ~name:"t" ~container:c (fun () -> Machine.cpu (Simtime.us 1)) in
  Machine.run_until machine (Simtime.of_ns 1_000_000);
  Alcotest.(check bool) "done" true (Machine.is_done thread);
  Alcotest.(check int) "binding released" 0 (Container.binding_count c);
  Alcotest.(check int) "nothing runnable" 0 (Machine.runnable_tasks machine)

let test_process_basics () =
  let _, _, machine = make_machine () in
  let proc = Process.create machine ~name:"app" () in
  Alcotest.(check bool) "default container exists" true
    (not (Container.is_destroyed (Process.default_container proc)));
  let seen = ref false in
  ignore (Process.spawn_thread proc ~name:"t" (fun () -> seen := true));
  Machine.run_until machine (Simtime.of_ns 1_000_000);
  Alcotest.(check bool) "thread ran" true !seen;
  Alcotest.(check int) "tracked" 1 (List.length (Process.threads proc))

let test_process_fork () =
  let _, _, machine = make_machine () in
  let parent = Process.create machine ~name:"parent" () in
  let root_of_parent = Container.parent (Process.default_container parent) in
  let d =
    Rescont.Ops.rc_get_handle (Process.descriptors parent) (Process.default_container parent)
  in
  let child_container = ref None in
  let child, _thread =
    Process.fork parent ~name:"child" (fun () ->
        child_container :=
          Some (Rescont.Binding.resource_binding (Machine.binding (Machine.self ()))))
  in
  Machine.run_until machine (Simtime.of_ns 1_000_000);
  Alcotest.(check bool) "pids differ" true (Process.pid child <> Process.pid parent);
  Alcotest.(check bool) "descriptor inherited" true
    (Rescont.Desc_table.lookup (Process.descriptors child) d == Process.default_container parent);
  Alcotest.(check bool) "child default container is fresh" true
    (Process.default_container child != Process.default_container parent);
  Alcotest.(check bool) "child container beside parent's" true
    (match (Container.parent (Process.default_container child), root_of_parent) with
    | Some a, Some b -> a == b
    | None, None -> true
    | (Some _ | None), _ -> false);
  Alcotest.(check bool) "child thread bound to its default" true
    (match !child_container with
    | Some c -> c == Process.default_container child
    | None -> false)

let test_quantum_preemption_interleaves () =
  let sim, root, machine = make_machine () in
  ignore sim;
  let a = leaf root "a" and b = leaf root "b" in
  let order = ref [] in
  let burn tag = fun () ->
    for _ = 1 to 3 do
      Machine.cpu (Simtime.ms 1);
      order := tag :: !order
    done
  in
  ignore (Machine.spawn machine ~name:"a" ~container:a (burn "a"));
  ignore (Machine.spawn machine ~name:"b" ~container:b (burn "b"));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  (* With 1ms quanta and fair WFQ, slices must alternate rather than run
     all of [a] before [b]. *)
  let seq = List.rev !order in
  Alcotest.(check int) "all slices" 6 (List.length seq);
  Alcotest.(check bool) "interleaved" true (seq <> [ "a"; "a"; "a"; "b"; "b"; "b" ])

let test_smp_parallel_progress () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let machine =
    Machine.create ~cpus:2 ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root ()
  in
  let mk name =
    let c = leaf root name in
    let finished = ref Simtime.zero in
    ignore
      (Machine.spawn machine ~name ~container:c (fun () ->
           Machine.cpu (Simtime.ms 10);
           finished := Sim.now sim));
    finished
  in
  let a = mk "a" and b = mk "b" in
  Machine.run_until machine (Simtime.of_ns 1_000_000_000);
  (* Two processors: both 10ms jobs finish at ~10ms instead of ~20ms. *)
  Alcotest.(check bool) "a parallel" true (Simtime.to_ns !a <= 11_000_000);
  Alcotest.(check bool) "b parallel" true (Simtime.to_ns !b <= 11_000_000);
  Alcotest.(check int) "total work accounted" 20_000_000
    (Simtime.span_to_ns (Machine.busy_time machine))

let test_smp_single_thread_no_speedup () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let machine =
    Machine.create ~cpus:4 ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root ()
  in
  let c = leaf root "solo" in
  let finished = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"solo" ~container:c (fun () ->
         Machine.cpu (Simtime.ms 10);
         finished := Sim.now sim));
  Machine.run_until machine (Simtime.of_ns 1_000_000_000);
  Alcotest.(check int) "one thread cannot use two processors" 10_000_000
    (Simtime.to_ns !finished)

let test_smp_irq_on_cpu0_only () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let machine =
    Machine.create ~cpus:2 ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root ()
  in
  (* A long interrupt storm parks processor 0; a thread spawned after it
     still runs immediately on processor 1. *)
  Machine.steal_time machine ~cost:(Simtime.ms 5) ~charge:`Current_or_system;
  let c = leaf root "c" in
  let finished = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"t" ~container:c (fun () ->
         Machine.cpu (Simtime.ms 1);
         finished := Sim.now sim));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check bool) "second processor unaffected by irq storm" true
    (Simtime.to_ns !finished <= 1_100_000)

let test_kill () =
  let sim, root, machine = make_machine () in
  let c = leaf root "victim" in
  let progressed = ref 0 in
  let thread =
    Machine.spawn machine ~name:"victim" ~container:c (fun () ->
        let rec loop () =
          Machine.cpu (Simtime.ms 1);
          incr progressed;
          loop ()
        in
        loop ())
  in
  ignore (Sim.at sim (Simtime.of_ns 5_500_000) (fun () -> Machine.kill machine thread));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check bool) "made some progress" true (!progressed >= 4);
  Alcotest.(check bool) "stopped after kill" true (!progressed <= 6);
  Alcotest.(check bool) "done" true (Machine.is_done thread);
  Alcotest.(check int) "binding released" 0 (Container.binding_count c);
  Machine.kill machine thread (* idempotent *)

let test_process_exit_all () =
  let _, _, machine = make_machine () in
  let proc = Process.create machine ~name:"doomed" () in
  let count = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Process.spawn_thread proc ~name:"w" (fun () ->
           let rec loop () =
             Machine.cpu (Simtime.ms 1);
             incr count;
             loop ()
           in
           loop ()))
  done;
  Machine.run_until machine (Simtime.of_ns 5_000_000);
  Process.exit_all proc;
  let at_exit = !count in
  Machine.run_until machine (Simtime.of_ns 50_000_000);
  Alcotest.(check bool) "no progress after exit" true (!count - at_exit <= 3);
  Alcotest.(check int) "threads gone" 0 (List.length (Process.threads proc));
  Alcotest.(check bool) "default container destroyed" true
    (Container.is_destroyed (Process.default_container proc))

let test_tracing () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let trace = Engine.Tracelog.create ~enabled:true () in
  let machine =
    Machine.create ~trace ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root ()
  in
  let a = leaf root "a" and b = leaf root "b" in
  ignore
    (Machine.spawn machine ~name:"traced" ~container:a (fun () ->
         Machine.cpu (Simtime.ms 1);
         Machine.rebind machine (Machine.self ()) b;
         Machine.cpu (Simtime.ms 1)));
  Machine.steal_time machine ~cost:(Simtime.us 10) ~charge:`Current_or_system;
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  let module T = Engine.Tracelog in
  Alcotest.(check bool) "spawn traced" true (T.find trace ~category:"spawn" <> []);
  Alcotest.(check bool) "dispatch traced" true (List.length (T.find trace ~category:"dispatch") >= 2);
  Alcotest.(check bool) "rebind traced" true (T.find trace ~category:"rebind" <> []);
  Alcotest.(check bool) "irq traced" true (T.find trace ~category:"irq" <> []);
  (* Disabled by default: a machine without an explicit trace records nothing. *)
  let _, root2, machine2 = make_machine () in
  ignore (Machine.spawn machine2 ~name:"quiet" ~container:(leaf root2 "q") (fun () -> ()));
  Machine.run_until machine2 (Simtime.of_ns 1_000_000);
  Alcotest.(check int) "silent by default" 0
    (List.length (Engine.Tracelog.entries (Machine.trace machine2)))

let test_waitq_fifo_order () =
  let _, root, machine = make_machine () in
  let c = leaf root "c" in
  let wq = Machine.Waitq.create machine in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (Machine.spawn machine ~name:(Printf.sprintf "w%d" i) ~container:c (fun () ->
           (* Deterministic arrival order into the wait queue. *)
           Machine.sleep (Simtime.us (i * 10));
           Machine.Waitq.wait wq;
           order := i :: !order))
  done;
  ignore
    (Machine.spawn machine ~name:"signaller" ~container:c (fun () ->
         Machine.sleep (Simtime.ms 1);
         Machine.Waitq.signal wq;
         Machine.sleep (Simtime.ms 1);
         Machine.Waitq.signal wq;
         Machine.sleep (Simtime.ms 1);
         Machine.Waitq.signal wq));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check (list int)) "longest waiter first" [ 1; 2; 3 ] (List.rev !order)

let test_kill_blocked_thread () =
  let _, root, machine = make_machine () in
  let c = leaf root "c" in
  let wq = Machine.Waitq.create machine in
  let resumed = ref false in
  let thread =
    Machine.spawn machine ~name:"blocked" ~container:c (fun () ->
        Machine.Waitq.wait wq;
        resumed := true)
  in
  Machine.run_until machine (Simtime.of_ns 1_000_000);
  Machine.kill machine thread;
  Machine.Waitq.signal wq;
  Machine.run_until machine (Simtime.of_ns 10_000_000);
  Alcotest.(check bool) "killed thread never resumes" false !resumed

(* --- Sharded (per-CPU run queue) machines ---------------------------- *)

let make_smp ?(cpus = 2) () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let machine =
    Machine.create ~cpus
      ~shard_policy:(fun _ -> Sched.Multilevel.make ~root ())
      ~sim
      ~policy:(Sched.Multilevel.make ~root ())
      ~root ()
  in
  (sim, root, machine)

let test_smp_on_idle_waits_for_all_cpus () =
  let sim, root, machine = make_smp ~cpus:2 () in
  let c = leaf root "worker" in
  let fired = ref [] in
  Machine.set_on_idle machine (fun () -> fired := Sim.now sim :: !fired);
  ignore
    (Machine.spawn machine ~name:"w" ~container:c (fun () -> Machine.cpu (Simtime.ms 10)));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  (* Processor 1 has nothing to run from t = 0, but the machine is not idle
     until processor 0's slice ends at 10ms: on_idle must never fire while
     any CPU is mid-slice. *)
  Alcotest.(check bool) "fired once truly idle" true (!fired <> []);
  List.iter
    (fun t ->
      Alcotest.(check bool) "never while another CPU is mid-slice" true
        (Simtime.to_ns t >= 10_000_000))
    !fired

let test_smp_per_cpu_utilization_bounded () =
  let _, root, machine = make_smp ~cpus:2 () in
  (* Overcommit: four always-runnable threads on two processors. *)
  for i = 1 to 4 do
    let c = leaf root (Printf.sprintf "c%d" i) in
    ignore
      (Machine.spawn machine ~name:(Printf.sprintf "t%d" i) ~container:c (fun () ->
           for _ = 1 to 40 do
             Machine.cpu (Simtime.ms 1)
           done))
  done;
  let horizon = Simtime.of_ns 50_000_000 in
  Machine.run_until machine horizon;
  for cpu = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "cpu %d utilization <= 1.0" cpu)
      true
      (Simtime.span_to_ns (Machine.busy_time_on machine cpu) <= Simtime.to_ns horizon)
  done;
  Alcotest.(check int) "aggregate view = per-CPU sum"
    (Simtime.span_to_ns (Machine.busy_time machine))
    (Simtime.span_to_ns (Machine.busy_time_on machine 0)
    + Simtime.span_to_ns (Machine.busy_time_on machine 1))

let test_smp_irq_steal_on_cpu1 () =
  let sim, root, machine = make_smp ~cpus:2 () in
  (* A steered interrupt burst holds processor 1 and charges its busy time
     there, not on processor 0. *)
  Machine.steal_time machine ~cpu:1 ~cost:(Simtime.ms 2) ~charge:`Current_or_system;
  Alcotest.(check int) "stolen time lands on cpu 1" 2_000_000
    (Simtime.span_to_ns (Machine.busy_time_on machine 1));
  Alcotest.(check int) "cpu 0 untouched" 0
    (Simtime.span_to_ns (Machine.busy_time_on machine 0));
  (* A thread pinned to the held processor waits out the burst; an unpinned
     one runs immediately on processor 0. *)
  let pinned_start = ref Simtime.zero and free_start = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~cpu:1 ~name:"pinned" ~container:(leaf root "p") (fun () ->
         pinned_start := Sim.now sim;
         Machine.cpu (Simtime.us 10)));
  ignore
    (Machine.spawn machine ~name:"free" ~container:(leaf root "f") (fun () ->
         free_start := Sim.now sim;
         Machine.cpu (Simtime.us 10)));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check bool) "pinned thread delayed past the irq hold" true
    (Simtime.to_ns !pinned_start >= 2_000_000);
  Alcotest.(check int) "unpinned thread unaffected" 0 (Simtime.to_ns !free_start)

let test_smp_kill_mid_slice () =
  let sim, root, machine = make_smp ~cpus:2 () in
  let a = leaf root "a" and b = leaf root "b" in
  let a_progress = ref 0 and b_done = ref Simtime.zero in
  let victim =
    Machine.spawn machine ~cpu:0 ~name:"victim" ~container:a (fun () ->
        let rec loop () =
          Machine.cpu (Simtime.ms 1);
          incr a_progress;
          loop ()
        in
        loop ())
  in
  ignore
    (Machine.spawn machine ~cpu:1 ~name:"worker" ~container:b (fun () ->
         Machine.cpu (Simtime.ms 10);
         b_done := Sim.now sim));
  ignore (Sim.at sim (Simtime.of_ns 3_500_000) (fun () -> Machine.kill machine victim));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check bool) "victim done" true (Machine.is_done victim);
  Alcotest.(check bool) "victim stopped mid-slice" true (!a_progress <= 4);
  Alcotest.(check int) "other processor keeps dispatching" 10_000_000
    (Simtime.to_ns !b_done);
  Alcotest.(check int) "binding released" 0 (Container.binding_count a)

let test_smp_rebind_on_cpu1 () =
  let _, root, machine = make_smp ~cpus:2 () in
  let a = leaf root "a" and b = leaf root "b" in
  ignore
    (Machine.spawn machine ~cpu:1 ~name:"w" ~container:a (fun () ->
         Machine.cpu (Simtime.ms 2);
         Machine.rebind machine (Machine.self ()) b;
         Machine.cpu (Simtime.ms 3)));
  Machine.run_until machine (Simtime.of_ns 100_000_000);
  Alcotest.(check int) "a charged before rebind" 2_000_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage a)));
  Alcotest.(check int) "b charged after rebind" 3_000_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage b)));
  Alcotest.(check int) "all busy time on cpu 1" 5_000_000
    (Simtime.span_to_ns (Machine.busy_time_on machine 1));
  Alcotest.(check int) "cpu 0 idle throughout" 0
    (Simtime.span_to_ns (Machine.busy_time_on machine 0))

(* Random mixes of pinned/unpinned, CPU-burning, sleeping threads at 1, 2
   and 4 processors, with the conservation laws armed: the per-CPU busy
   counters must partition the global [cpu.conservation] total exactly. *)
let prop_per_cpu_busy_partitions_total =
  QCheck2.Test.make ~name:"per-CPU busy times partition the global total" ~count:40
    QCheck2.Gen.(
      pair (int_range 0 2) (list_size (int_range 1 10) (pair (int_range 0 4) (int_range 1 8))))
    (fun (cpus_sel, jobs) ->
      let cpus = [| 1; 2; 4 |].(cpus_sel) in
      let sim = Sim.create () in
      let root = Container.create_root () in
      let machine =
        Machine.create ~cpus
          ~shard_policy:(fun _ -> Sched.Multilevel.make ~root ())
          ~sim
          ~policy:(Sched.Multilevel.make ~root ())
          ~root ()
      in
      Machine.arm_invariants machine;
      List.iteri
        (fun i (pin, ms) ->
          let c = leaf root (Printf.sprintf "c%d" i) in
          let cpu = if pin = 0 then None else Some ((pin - 1) mod cpus) in
          ignore
            (Machine.spawn machine ?cpu ~name:(Printf.sprintf "t%d" i) ~container:c
               (fun () ->
                 for _ = 1 to 3 do
                   Machine.cpu (Simtime.ms ms);
                   Machine.sleep (Simtime.ms 1)
                 done)))
        jobs;
      Machine.run_until machine (Simtime.of_ns 500_000_000);
      let sum = ref 0 in
      for i = 0 to cpus - 1 do
        sum := !sum + Simtime.span_to_ns (Machine.busy_time_on machine i)
      done;
      !sum = Simtime.span_to_ns (Machine.busy_time machine))

let suite =
  [
    Alcotest.test_case "thread runs and charges" `Quick test_thread_runs_and_charges;
    Alcotest.test_case "kernel/user split" `Quick test_kernel_user_split;
    Alcotest.test_case "wall clock advances" `Quick test_wallclock_advances_with_cpu;
    Alcotest.test_case "two threads share CPU" `Quick test_two_threads_share;
    Alcotest.test_case "sleep" `Quick test_sleep;
    Alcotest.test_case "waitq signal" `Quick test_waitq_signal;
    Alcotest.test_case "waitq broadcast" `Quick test_waitq_broadcast;
    Alcotest.test_case "rebind changes charging" `Quick test_rebind_changes_charging;
    Alcotest.test_case "steal_time extends slice" `Quick test_steal_time_extends_slice;
    Alcotest.test_case "steal_time while idle" `Quick test_steal_time_while_idle;
    Alcotest.test_case "steal_time explicit container" `Quick test_steal_time_explicit_container;
    Alcotest.test_case "yield and self" `Quick test_yield_and_self;
    Alcotest.test_case "thread exit cleanup" `Quick test_thread_exit_cleans_up;
    Alcotest.test_case "process basics" `Quick test_process_basics;
    Alcotest.test_case "process fork" `Quick test_process_fork;
    Alcotest.test_case "quantum interleaving" `Quick test_quantum_preemption_interleaves;
    Alcotest.test_case "SMP parallel progress" `Quick test_smp_parallel_progress;
    Alcotest.test_case "SMP no speedup for one thread" `Quick test_smp_single_thread_no_speedup;
    Alcotest.test_case "SMP interrupts on cpu 0" `Quick test_smp_irq_on_cpu0_only;
    Alcotest.test_case "SMP on_idle waits for all CPUs" `Quick test_smp_on_idle_waits_for_all_cpus;
    Alcotest.test_case "SMP per-CPU utilization bounded" `Quick test_smp_per_cpu_utilization_bounded;
    Alcotest.test_case "SMP irq steal on cpu 1" `Quick test_smp_irq_steal_on_cpu1;
    Alcotest.test_case "SMP kill mid-slice" `Quick test_smp_kill_mid_slice;
    Alcotest.test_case "SMP rebind on cpu 1" `Quick test_smp_rebind_on_cpu1;
    QCheck_alcotest.to_alcotest prop_per_cpu_busy_partitions_total;
    Alcotest.test_case "tracing" `Quick test_tracing;
    Alcotest.test_case "kill" `Quick test_kill;
    Alcotest.test_case "process exit_all" `Quick test_process_exit_all;
    Alcotest.test_case "waitq FIFO order" `Quick test_waitq_fifo_order;
    Alcotest.test_case "kill blocked thread" `Quick test_kill_blocked_thread;
  ]
