(* Test entry point: one Alcotest runner over every suite. *)

let () =
  Alcotest.run "resource_containers"
    [
      ("simtime", Test_simtime.suite);
      ("heapq", Test_heapq.suite);
      ("timer_wheel", Test_timer_wheel.suite);
      ("rng+dist", Test_rng_dist.suite);
      ("stats", Test_stats.suite);
      ("series", Test_series.suite);
      ("sim", Test_sim.suite);
      ("container", Test_container.suite);
      ("rescont", Test_rescont_rest.suite);
      ("access", Test_access.suite);
      ("billing", Test_billing.suite);
      ("sched", Test_sched.suite);
      ("machine", Test_machine.suite);
      ("disksim", Test_disksim.suite);
      ("netsim", Test_netsim.suite);
      ("pooling", Test_pooling.suite);
      ("soa", Test_soa.suite);
      ("file_cache", Test_file_cache.suite);
      ("httpsim", Test_httpsim.suite);
      ("workload", Test_workload.suite);
      ("invariant", Test_invariant.suite);
      ("fuzz", Test_fuzz.suite);
      ("sweep", Test_sweep.suite);
      ("observability", Test_observability.suite);
      ("integration", Test_integration.suite);
      ("cluster", Test_cluster.suite);
      ("shard", Test_shard.suite);
    ]
