(* Tests for Clustersim.Cluster: the multi-machine load-balanced rig and
   the cluster-wide usage rollup. *)

module Cluster = Clustersim.Cluster
module Simtime = Engine.Simtime
module Stats = Engine.Stats
module Rollup = Rescont.Rollup

let run_small ?(machines = 2) ?(cpus = 1) ?(policy = Cluster.Round_robin)
    ?(profile = Cluster.Poisson 2000.) ?(tenants = [ Cluster.tenant_spec "t0" ]) ?(seed = 7)
    ?(span = Simtime.ms 500) () =
  let c = Cluster.create ~machines ~cpus ~policy ~profile ~tenants ~seed () in
  Cluster.start c;
  Cluster.run_for c span;
  c

let test_smoke () =
  let c = run_small () in
  Alcotest.(check bool) "requests flowed" true (Cluster.issued c > 500);
  Alcotest.(check bool)
    "most requests completed" true
    (Cluster.completed c > Cluster.issued c * 8 / 10);
  Alcotest.(check int) "no refusals" 0 (Cluster.refused c);
  Alcotest.(check int) "no ring evictions" 0 (Cluster.evicted c);
  Alcotest.(check bool)
    "both machines served" true
    (Cluster.node_served c 0 > 0 && Cluster.node_served c 1 > 0);
  Alcotest.(check bool)
    "client sojourn sane (>300us one-way latency x2)" true
    (Stats.Summary.mean (Cluster.client_sojourn c) > 300e-6);
  Alcotest.(check bool)
    "server sojourn below client sojourn" true
    (Stats.Summary.mean (Cluster.server_sojourn c)
    < Stats.Summary.mean (Cluster.client_sojourn c));
  match Cluster.check_invariants c with
  | [] -> ()
  | v :: _ -> Alcotest.failf "invariant violated: %s: %s" v.Engine.Invariant.law v.Engine.Invariant.detail

let test_rr_even_split () =
  let c = run_small ~machines:4 ~policy:Cluster.Round_robin () in
  let served = Array.init 4 (Cluster.node_served c) in
  let total = Array.fold_left ( + ) 0 served in
  Array.iteri
    (fun i s ->
      let frac = float_of_int s /. float_of_int total in
      if frac < 0.15 || frac > 0.35 then
        Alcotest.failf "round-robin split uneven: node %d served %d of %d" i s total)
    served

let test_flow_hash_deterministic_and_covering () =
  let c1 = run_small ~machines:4 ~policy:Cluster.Flow_hash ~seed:11 () in
  let c2 = run_small ~machines:4 ~policy:Cluster.Flow_hash ~seed:11 () in
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "node %d served deterministically" i)
      (Cluster.node_served c1 i) (Cluster.node_served c2 i)
  done;
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d got a share" i)
      true
      (Cluster.node_served c1 i > 0)
  done

let test_replicate_dedups () =
  let c = run_small ~machines:3 ~policy:(Cluster.Replicate 2) () in
  Alcotest.(check bool) "completed once per logical request" true
    (Cluster.completed c <= Cluster.issued c);
  Alcotest.(check bool) "clone losers recorded" true (Cluster.dup_responses c > 0);
  (* Every served clone is either the winner or a recorded duplicate. *)
  let served = ref 0 in
  for i = 0 to 2 do
    served := !served + Cluster.node_served c i
  done;
  Alcotest.(check bool) "served >= completed + dups" true
    (!served >= Cluster.completed c + Cluster.dup_responses c)

let test_hold_builds_concurrency () =
  let c =
    Cluster.create ~machines:2 ~profile:(Cluster.Poisson 2000.) ~hold:(Simtime.ms 200)
      ~seed:3 ()
  in
  Cluster.start c;
  Cluster.run_for c (Simtime.ms 600);
  (* Steady state holds ~ rate x hold = 400 connections open. *)
  Alcotest.(check bool)
    (Printf.sprintf "held connections accumulate (peak %d)" (Cluster.peak_concurrent c))
    true
    (Cluster.peak_concurrent c > 250);
  Alcotest.(check int) "no refusals under hold" 0 (Cluster.refused c)

let test_tenant_rollup_accumulates () =
  let tenants = [ Cluster.tenant_spec "gold" ~weight:3; Cluster.tenant_spec "bronze" ] in
  let c = run_small ~machines:2 ~tenants () in
  Alcotest.(check int) "two groups" 2 (Cluster.tenant_count c);
  let gold = Cluster.tenant_group c 0 and bronze = Cluster.tenant_group c 1 in
  Alcotest.(check bool) "gold billed cpu" true (Rollup.cpu_ns gold > 0);
  Alcotest.(check bool) "bronze billed cpu" true (Rollup.cpu_ns bronze > 0);
  (* 3:1 arrival weights should show up in cluster-wide CPU at coarse
     grain. *)
  let ratio = float_of_int (Rollup.cpu_ns gold) /. float_of_int (Rollup.cpu_ns bronze) in
  Alcotest.(check bool)
    (Printf.sprintf "gold/bronze cpu ratio %.2f reflects 3:1 weights" ratio)
    true
    (ratio > 1.8 && ratio < 5.0);
  Alcotest.(check bool) "rx billed" true (Rollup.rx_bytes gold > 0);
  Alcotest.(check bool) "tx billed" true (Rollup.tx_bytes gold > 0);
  match Cluster.rollup_law c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rollup law: %s" e

let test_armed_run () =
  let c =
    Cluster.create ~machines:2 ~cpus:2 ~profile:(Cluster.Poisson 3000.) ~seed:5 ()
  in
  Cluster.arm_invariants ~interval:(Simtime.ms 20) c;
  Cluster.start c;
  (* Armed sweeps raise on any law violation, including the rollup law,
     across every machine's registry. *)
  Cluster.run_for c (Simtime.ms 300);
  Alcotest.(check bool) "work happened under armed laws" true (Cluster.completed c > 300)

let test_spike_profile () =
  let c =
    Cluster.create ~machines:2
      ~profile:
        (Cluster.Spike
           { base = 500.; peak = 8000.; at = Simtime.ms 200; until = Simtime.ms 400 })
      ~seed:9 ()
  in
  Cluster.start c;
  Cluster.run_for c (Simtime.ms 200) (* base *);
  let before = Cluster.issued c in
  Cluster.run_for c (Simtime.ms 200) (* peak *);
  let during = Cluster.issued c - before in
  Alcotest.(check bool)
    (Printf.sprintf "spike raises arrivals (%d then %d)" before during)
    true
    (during > before * 4)

(* The rollup conservation law under a seeded grid of balancer policies x
   machine counts: sum of per-machine tenant usage must equal the cluster
   rollup at every quiesce point (satellite 4; the same grid the fuzzer
   drives via --machines). *)
let prop_rollup_law =
  QCheck2.Test.make ~name:"cluster rollup law across policies x machines" ~count:12
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 0 3) (int_range 0 1000))
    (fun (machines, policy_ix, seed) ->
      let policy =
        match policy_ix with
        | 0 -> Cluster.Round_robin
        | 1 -> Cluster.Least_conns
        | 2 -> Cluster.Flow_hash
        | _ -> Cluster.Replicate 2
      in
      let tenants =
        [ Cluster.tenant_spec "a" ~weight:2; Cluster.tenant_spec "b" ] in
      let c =
        Cluster.create ~machines ~policy ~profile:(Cluster.Poisson 1500.) ~tenants ~seed ()
      in
      Cluster.start c;
      let ok = ref true in
      for _ = 1 to 4 do
        Cluster.run_for c (Simtime.ms 50);
        (match Cluster.rollup_law c with Ok () -> () | Error _ -> ok := false);
        if Cluster.check_invariants c <> [] then ok := false
      done;
      !ok && Cluster.completed c > 0)

(* ---------------- sharded determinism ---------------- *)

(* Everything observable about a run, floats bit-cast so "equal" means
   bit-identical, not approximately-equal: the sharded executor promises
   shards=N reproduces shards=1 exactly. *)
let fingerprint c =
  let summary s =
    if Stats.Summary.count s = 0 then "empty"
    else
      Printf.sprintf "n=%d mean=%Lx min=%Lx max=%Lx" (Stats.Summary.count s)
        (Int64.bits_of_float (Stats.Summary.mean s))
        (Int64.bits_of_float (Stats.Summary.min s))
        (Int64.bits_of_float (Stats.Summary.max s))
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "issued=%d completed=%d refused=%d dup=%d evicted=%d peak=%d conc=%d "
       (Cluster.issued c) (Cluster.completed c) (Cluster.refused c)
       (Cluster.dup_responses c) (Cluster.evicted c) (Cluster.peak_concurrent c)
       (Cluster.concurrent c));
  for i = 0 to Cluster.machines c - 1 do
    Buffer.add_string b
      (Printf.sprintf "served%d=%d busy%d=%d " i (Cluster.node_served c i) i
         (Simtime.span_to_ns (Procsim.Machine.busy_time (Cluster.node_machine c i))))
  done;
  for k = 0 to Cluster.tenant_count c - 1 do
    let g = Cluster.tenant_group c k in
    Buffer.add_string b
      (Printf.sprintf "t%d.cpu=%d t%d.rx=%d t%d.tx=%d " k (Rollup.cpu_ns g) k
         (Rollup.rx_bytes g) k (Rollup.tx_bytes g))
  done;
  Buffer.add_string b (Printf.sprintf "client[%s] " (summary (Cluster.client_sojourn c)));
  Buffer.add_string b (Printf.sprintf "server[%s] " (summary (Cluster.server_sojourn c)));
  Buffer.add_string b (Printf.sprintf "now=%d" (Simtime.to_ns (Cluster.now c)));
  Buffer.contents b

let sharded_run ?(machines = 4) ?(policy = Cluster.Round_robin) ?window ?(seed = 7)
    ?(rate = 1500.) ~shards ~domains () =
  let tenants = [ Cluster.tenant_spec "gold" ~weight:3; Cluster.tenant_spec "bronze" ] in
  let c =
    Cluster.create ~machines ~shards ~domains ~policy ~profile:(Cluster.Poisson rate)
      ~hold:(Simtime.ms 20) ?window ~tenants ~seed ()
  in
  Cluster.start c;
  (* Two run_for calls so the truncated-final-window path is exercised
     twice and windows never straddle a call boundary. *)
  Cluster.run_for c (Simtime.ms 130);
  Cluster.run_for c (Simtime.ms 70);
  c

let test_shards_byte_identical () =
  let base = fingerprint (sharded_run ~shards:1 ~domains:1 ()) in
  (* domains:4 forces real cross-domain execution even on a 1-core host. *)
  let sharded = fingerprint (sharded_run ~shards:4 ~domains:4 ()) in
  Alcotest.(check string) "shards=4/domains=4 == shards=1" base sharded;
  let two = fingerprint (sharded_run ~shards:2 ~domains:2 ()) in
  Alcotest.(check string) "shards=2/domains=2 == shards=1" base two

let test_shards_identical_tiny_window () =
  (* A window much smaller than the default lookahead is still
     conservative (it only has to be <= the dispatch latency): the run
     crosses thousands of barriers and must still be bit-identical. *)
  let w = Simtime.us 10 in
  let base = fingerprint (sharded_run ~window:w ~shards:1 ~domains:1 ()) in
  let sharded = fingerprint (sharded_run ~window:w ~shards:2 ~domains:2 ()) in
  Alcotest.(check string) "10us windows: shards=2 == shards=1" base sharded

let test_sync_mode_zero_window () =
  (* window=0 selects the synchronous pre-sharding semantics: still a
     working cluster... *)
  let c =
    Cluster.create ~machines:2 ~window:Simtime.span_zero
      ~profile:(Cluster.Poisson 2000.) ~seed:7 ()
  in
  Alcotest.(check int) "zero lookahead recorded" 0 (Simtime.span_to_ns (Cluster.lookahead c));
  Cluster.start c;
  Cluster.run_for c (Simtime.ms 300);
  Alcotest.(check bool) "sync mode serves" true (Cluster.completed c > 300);
  (* ...but cannot be sharded: zero lookahead has no conservative window. *)
  Alcotest.check_raises "shards>1 with zero window refused"
    (Invalid_argument
       "Cluster.create: a zero window (no lookahead) degenerates to the synchronous \
        protocol and requires shards = 1")
    (fun () ->
      ignore (Cluster.create ~machines:2 ~shards:2 ~window:Simtime.span_zero ()))

let test_empty_machine_no_stall () =
  (* At 20 arrivals/s over 200 ms some machines see no traffic at all;
     their shards must still advance with the windows (an empty wheel is a
     pure clock advance, not a stall). *)
  let c =
    Cluster.create ~machines:4 ~shards:4 ~domains:4 ~profile:(Cluster.Poisson 20.)
      ~seed:3 ()
  in
  Cluster.start c;
  Cluster.run_for c (Simtime.ms 200);
  Alcotest.(check int) "balancer clock at horizon" 200_000_000
    (Simtime.to_ns (Cluster.now c));
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "machine %d clock at horizon" i)
      200_000_000
      (Simtime.to_ns (Procsim.Machine.now (Cluster.node_machine c i)))
  done

(* Satellite: the usage-rollup property under sharding — same seeded
   scenario at shards=1 and shards=4 must produce identical tenant rollup
   totals and identical violation counts (and the law must hold in both). *)
let prop_sharded_rollup =
  QCheck2.Test.make ~name:"cluster.usage-rollup: shards=4 == shards=1" ~count:6
    QCheck2.Gen.(pair (int_range 0 2) (int_range 0 1000))
    (fun (policy_ix, seed) ->
      let policy =
        match policy_ix with
        | 0 -> Cluster.Round_robin
        | 1 -> Cluster.Least_conns
        | _ -> Cluster.Flow_hash
      in
      let totals shards domains =
        let c = sharded_run ~machines:4 ~policy ~seed ~rate:1200. ~shards ~domains () in
        let per_tenant =
          List.init (Cluster.tenant_count c) (fun k ->
              let g = Cluster.tenant_group c k in
              (Rollup.cpu_ns g, Rollup.rx_bytes g, Rollup.tx_bytes g))
        in
        let law_ok = match Cluster.rollup_law c with Ok () -> true | Error _ -> false in
        (per_tenant, law_ok, List.length (Cluster.check_invariants c))
      in
      let t1, ok1, v1 = totals 1 1 in
      let t4, ok4, v4 = totals 4 4 in
      t1 = t4 && ok1 && ok4 && v1 = 0 && v4 = 0)

let suite =
  [
    Alcotest.test_case "smoke: requests flow and complete" `Quick test_smoke;
    Alcotest.test_case "round-robin splits evenly" `Quick test_rr_even_split;
    Alcotest.test_case "flow-hash deterministic + covering" `Quick
      test_flow_hash_deterministic_and_covering;
    Alcotest.test_case "replicate dedups clone responses" `Quick test_replicate_dedups;
    Alcotest.test_case "hold builds concurrency" `Quick test_hold_builds_concurrency;
    Alcotest.test_case "tenant rollup accumulates by weight" `Quick
      test_tenant_rollup_accumulates;
    Alcotest.test_case "armed invariants over a busy cluster" `Quick test_armed_run;
    Alcotest.test_case "spike profile raises arrivals" `Quick test_spike_profile;
    QCheck_alcotest.to_alcotest prop_rollup_law;
    Alcotest.test_case "shards=N byte-identical to shards=1" `Quick
      test_shards_byte_identical;
    Alcotest.test_case "tiny 10us windows stay identical" `Quick
      test_shards_identical_tiny_window;
    Alcotest.test_case "zero window = sync mode, shards=1 only" `Quick
      test_sync_mode_zero_window;
    Alcotest.test_case "idle machines advance with the windows" `Quick
      test_empty_machine_no_stall;
    QCheck_alcotest.to_alcotest prop_sharded_rollup;
  ]
