(* Tests for the PR-5 zero-allocation packet path plumbing:

   - the port-indexed demux table against the reference fold
     [Stack.demux_reference] on random listen/unlisten/SYN sequences,
     including equal-specificity ties and overlapping prefixes;
   - the pooled work-item free list in lockstep with a naive
     [Queue.t]-of-ids reference (no double free, no reuse of in-flight
     items, conservation of the lifecycle counters);
   - the slot-indexed connection registry against a plain list;
   - the reap-of-all-live-connections regression: no rebuild, no
     allocation. *)

module Sim = Engine.Sim
module Simtime = Engine.Simtime
module Machine = Procsim.Machine
module Process = Procsim.Process
module Container = Rescont.Container
module Socket = Netsim.Socket
module Stack = Netsim.Stack
module Filter = Netsim.Filter
module Ipaddr = Netsim.Ipaddr
module Workpool = Netsim.Workpool
module Conn_table = Netsim.Conn_table

type rig = { sim : Sim.t; machine : Machine.t; stack : Stack.t }

let make_rig mode =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Multilevel.make ~root () in
  let machine = Machine.create ~sim ~policy ~root () in
  let proc = Process.create machine ~name:"srv" () in
  let stack = Stack.create ~machine ~mode ~owner:(Process.default_container proc) () in
  { sim; machine; stack }

let run rig span = Machine.run_until rig.machine (Simtime.add (Sim.now rig.sim) span)

(* {1 Demux table vs reference fold} *)

(* Overlapping prefixes, duplicated filters (equal-specificity ties that
   only the listen-id tie-break can order), a host filter inside every
   prefix, and a complement. *)
let filter_pool =
  [|
    Filter.any;
    Filter.prefix ~template:(Ipaddr.v 10 0 0 0) ~bits:8;
    Filter.prefix ~template:(Ipaddr.v 10 1 0 0) ~bits:16;
    Filter.prefix ~template:(Ipaddr.v 10 1 0 0) ~bits:16;
    Filter.prefix ~template:(Ipaddr.v 10 0 0 0) ~bits:16;
    Filter.prefix ~template:(Ipaddr.v 10 1 2 0) ~bits:24;
    Filter.host (Ipaddr.v 10 1 2 3);
    Filter.complement (Filter.prefix ~template:(Ipaddr.v 10 0 0 0) ~bits:8);
    Filter.complement Filter.any;
  |]

let probe_srcs =
  [|
    Ipaddr.v 10 1 2 3;
    Ipaddr.v 10 1 2 9;
    Ipaddr.v 10 1 9 9;
    Ipaddr.v 10 0 0 7;
    Ipaddr.v 10 9 9 9;
    Ipaddr.v 11 1 2 3;
    Ipaddr.v 0 0 0 0;
  |]

let listen_id_opt = function None -> None | Some l -> Some l.Socket.listen_id

let prop_demux_matches_reference =
  QCheck2.Test.make ~name:"demux table equals reference fold" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (triple (int_bound 5) (int_bound 97) (int_bound 97)))
    (fun ops ->
      let rig = make_rig Stack.Softirq in
      let added = ref [] in
      let check_probes () =
        Array.iter
          (fun src ->
            List.iter
              (fun port ->
                let fast = listen_id_opt (Stack.demux_lookup rig.stack ~port ~src) in
                let slow = listen_id_opt (Stack.demux_reference rig.stack ~port ~src) in
                if fast <> slow then
                  QCheck2.Test.fail_reportf
                    "port %d src %s: table %s, reference %s" port (Ipaddr.to_string src)
                    (match fast with Some i -> string_of_int i | None -> "none")
                    (match slow with Some i -> string_of_int i | None -> "none"))
              [ 80; 81; 82 ])
          probe_srcs
      in
      List.iter
        (fun (op, a, b) ->
          (match (op, !added) with
          | (0 | 1 | 2 | 3), _ ->
              (* Add outnumbers remove so tables actually fill up. *)
              let port = 80 + (a mod 2) in
              let filter = filter_pool.(b mod Array.length filter_pool) in
              let l = Socket.make_listen ~port ~filter () in
              Stack.add_listen rig.stack l;
              added := l :: !added
          | _, [] -> ()
          | _, listens ->
              let l = List.nth listens (a mod List.length listens) in
              Stack.remove_listen rig.stack l;
              added := List.filter (fun l' -> l' != l) !added);
          check_probes ())
        ops;
      true)

(* A SYN through the full stack must land on the socket the reference
   fold picks — the table is what [syn_arrival] actually consults. *)
let test_demux_tie_breaks_to_earliest_bound () =
  let rig = make_rig Stack.Softirq in
  let f = Filter.prefix ~template:(Ipaddr.v 10 1 0 0) ~bits:16 in
  let first = Socket.make_listen ~port:80 ~filter:f () in
  let second = Socket.make_listen ~port:80 ~filter:f () in
  let catch_all = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack second;
  Stack.add_listen rig.stack first;
  Stack.add_listen rig.stack catch_all;
  let src = Ipaddr.v 10 1 5 5 in
  let got = listen_id_opt (Stack.demux_lookup rig.stack ~port:80 ~src) in
  Alcotest.(check (option int))
    "equal specificity resolves to the lowest listen id"
    (Some (min first.Socket.listen_id second.Socket.listen_id))
    got;
  Stack.connect rig.stack ~src ~port:80 ~handlers:Socket.null_handlers ();
  run rig (Simtime.ms 5);
  Alcotest.(check int) "SYN queued on the winning socket" 1
    (Queue.length
       (if first.Socket.listen_id < second.Socket.listen_id then first.Socket.syn_queue
        else second.Socket.syn_queue))

(* {1 Work-item pool lockstep} *)

(* The reference tracks item identity by a stamp this test assigns at
   acquire time; the pool must never hand out an item that is currently
   in flight, and the queues must be FIFO per queue. *)
let prop_workpool_lockstep =
  QCheck2.Test.make ~name:"work pool lockstep with queue reference" ~count:300
    QCheck2.Gen.(list_size (int_range 1 120) (triple (int_bound 3) (int_bound 997) (int_bound 2)))
    (fun ops ->
      let pool = Workpool.create () in
      let queues = Array.init 3 (fun _ -> Workpool.queue_create pool) in
      let ref_queues : int Queue.t array = Array.init 3 (fun _ -> Queue.create ()) in
      let stamps : (int * Workpool.item) list ref = ref [] in
      let next_stamp = ref 0 in
      let in_service = ref [] in
      let consistent what =
        let allocated, free, service, queued = Workpool.stats pool in
        if free + service + queued <> allocated then
          QCheck2.Test.fail_reportf "%s: %d free + %d in-service + %d queued <> %d allocated"
            what free service queued allocated;
        Array.iteri
          (fun i q ->
            if not (Workpool.queue_validate q) then
              QCheck2.Test.fail_reportf "%s: queue %d fails validation" what i;
            if Workpool.queue_length q <> Queue.length ref_queues.(i) then
              QCheck2.Test.fail_reportf "%s: queue %d length %d, reference %d" what i
                (Workpool.queue_length q)
                (Queue.length ref_queues.(i)))
          queues
      in
      List.iter
        (fun (op, a, qi) ->
          (match (op, !in_service) with
          | 0, _ ->
              let item = Workpool.acquire pool in
              (* An acquired item must not be one currently in flight. *)
              List.iter
                (fun (_, live) ->
                  if live == item then QCheck2.Test.fail_report "acquire returned an in-flight item")
                !stamps;
              incr next_stamp;
              stamps := (!next_stamp, item) :: !stamps;
              in_service := !next_stamp :: !in_service
          | 1, [] -> ()
          | 1, live ->
              let stamp = List.nth live (a mod List.length live) in
              let item = List.assoc stamp !stamps in
              Workpool.release pool item;
              stamps := List.remove_assoc stamp !stamps;
              in_service := List.filter (fun s -> s <> stamp) !in_service
          | 2, [] -> ()
          | 2, live ->
              let stamp = List.nth live (a mod List.length live) in
              let item = List.assoc stamp !stamps in
              Workpool.push queues.(qi) item;
              Queue.push stamp ref_queues.(qi);
              in_service := List.filter (fun s -> s <> stamp) !in_service
          | _, _ -> (
              match (Workpool.pop queues.(qi), Queue.take_opt ref_queues.(qi)) with
              | None, None -> ()
              | Some item, Some stamp ->
                  if not (List.assoc stamp !stamps == item) then
                    QCheck2.Test.fail_reportf "queue %d popped the wrong item" qi;
                  in_service := stamp :: !in_service
              | Some _, None -> QCheck2.Test.fail_reportf "queue %d popped, reference empty" qi
              | None, Some _ -> QCheck2.Test.fail_reportf "queue %d empty, reference not" qi));
          consistent "after op")
        ops;
      true)

let test_workpool_misuse_raises () =
  let pool = Workpool.create () in
  let q = Workpool.queue_create pool in
  let item = Workpool.acquire pool in
  Workpool.release pool item;
  (try
     Workpool.release pool item;
     Alcotest.fail "double free must raise"
   with Invalid_argument _ -> ());
  let item = Workpool.acquire pool in
  Workpool.push q item;
  (try
     Workpool.release pool item;
     Alcotest.fail "releasing a queued item must raise"
   with Invalid_argument _ -> ());
  (try
     Workpool.push q item;
     Alcotest.fail "pushing a queued item must raise"
   with Invalid_argument _ -> ());
  (match Workpool.pop q with
  | Some popped -> Alcotest.(check bool) "same record back" true (popped == item)
  | None -> Alcotest.fail "queued item lost");
  Workpool.release pool item;
  (* The second acquire reused the freed record, so only one was ever
     allocated — and it is parked again. *)
  Alcotest.(check (pair int int))
    "the one allocated item is parked"
    (1, 1)
    (let allocated, free, _, _ = Workpool.stats pool in
     (allocated, free))

(* {1 Connection registry vs list reference} *)

let fresh_conn =
  let n = ref 0 in
  fun () ->
    incr n;
    Socket.make_conn
      ~src:(Ipaddr.v 10 0 (!n / 256) (!n mod 256))
      ~src_port:0 ~client:Socket.null_handlers ~now:Simtime.zero

let prop_conn_table_matches_list =
  QCheck2.Test.make ~name:"conn table lockstep with list reference" ~count:300
    QCheck2.Gen.(list_size (int_range 1 150) (pair (int_bound 5) (int_bound 997)))
    (fun ops ->
      let table = Conn_table.create ~capacity:2 () in
      let reference = ref [] in
      let check what =
        if Conn_table.length table <> List.length !reference then
          QCheck2.Test.fail_reportf "%s: length %d, reference %d" what
            (Conn_table.length table) (List.length !reference);
        List.iter
          (fun c ->
            if not (Conn_table.mem table c) then
              QCheck2.Test.fail_reportf "%s: reference conn missing from table" what)
          !reference;
        let seen = Conn_table.fold table ~init:0 (fun acc c ->
            if not (List.memq c !reference) then
              QCheck2.Test.fail_reportf "%s: table holds a conn not in the reference" what;
            acc + 1)
        in
        if seen <> List.length !reference then
          QCheck2.Test.fail_reportf "%s: fold visited %d conns, reference %d" what seen
            (List.length !reference)
      in
      List.iter
        (fun (op, a) ->
          (match (op, !reference) with
          | (0 | 1 | 2), _ ->
              let c = fresh_conn () in
              Conn_table.add table c;
              reference := c :: !reference
          | 3, c :: _ when a mod 7 = 0 ->
              (* Removing twice must report false the second time. *)
              ignore (Conn_table.remove table c);
              reference := List.filter (fun c' -> c' != c) !reference;
              if Conn_table.remove table c then
                QCheck2.Test.fail_report "second remove returned true"
          | 3, live when live <> [] ->
              let c = List.nth live (a mod List.length live) in
              if not (Conn_table.remove table c) then
                QCheck2.Test.fail_report "remove of a live conn returned false";
              reference := List.filter (fun c' -> c' != c) !reference
          | 4, live when live <> [] ->
              let c = List.nth live (a mod List.length live) in
              c.Socket.state <- Socket.Closed
          | _, _ ->
              let closed = List.length (List.filter (fun c -> c.Socket.state = Socket.Closed) !reference) in
              let removed = Conn_table.reap_closed table in
              if removed <> closed then
                QCheck2.Test.fail_reportf "reap removed %d, reference had %d closed" removed closed;
              reference := List.filter (fun c -> c.Socket.state <> Socket.Closed) !reference);
          check "after op")
        ops;
      true)

(* {1 Reap is incremental: all-live reap rebuilds nothing} *)

let establish_many rig ~count =
  let listen = Socket.make_listen ~port:80 ~backlog:256 () in
  Stack.add_listen rig.stack listen;
  let established = ref 0 in
  for i = 0 to count - 1 do
    Stack.connect rig.stack
      ~src:(Ipaddr.v 10 2 (i / 256) (i mod 256))
      ~port:80
      ~handlers:
        { Socket.null_handlers with Socket.on_established = (fun _ -> incr established) }
      ()
  done;
  run rig (Simtime.ms 100);
  !established

let test_reap_all_live_allocates_nothing () =
  let rig = make_rig Stack.Softirq in
  let established = establish_many rig ~count:100 in
  Alcotest.(check bool) "population established" true (established >= 90);
  let before = Stack.tracked_conns rig.stack in
  Alcotest.(check bool) "registry populated" true (before >= 90);
  (* Warm the float boxes [Gc.minor_words] itself returns. *)
  ignore (Gc.minor_words ());
  let w0 = Gc.minor_words () in
  let removed = Stack.reap rig.stack in
  let w1 = Gc.minor_words () in
  Alcotest.(check int) "nothing to reap" 0 removed;
  Alcotest.(check int) "registry untouched" before (Stack.tracked_conns rig.stack);
  (* The old list prune rebuilt a [before]-long spine (~3 words per conn);
     the slot sweep allocates a counter and the measurement's own float
     boxes, nothing proportional to the population. *)
  Alcotest.(check bool)
    (Printf.sprintf "reap allocated %.0f minor words" (w1 -. w0))
    true
    (w1 -. w0 < 64.)

(* {1 Pool quiescence through the stack} *)

let test_pool_quiesces_after_burst () =
  let rig = make_rig Stack.Rc in
  let established = establish_many rig ~count:50 in
  Alcotest.(check bool) "handshakes completed" true (established >= 45);
  run rig (Simtime.ms 50);
  let allocated, free, in_service, queued = Stack.pool_stats rig.stack in
  Alcotest.(check int) "no in-flight items at rest" 0 (in_service + queued);
  Alcotest.(check int) "every item parked on the free list" allocated free;
  Alcotest.(check bool) "pool grew at most to the burst peak" true (allocated <= 151)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_demux_matches_reference;
    Alcotest.test_case "demux equal-specificity tie break" `Quick
      test_demux_tie_breaks_to_earliest_bound;
    QCheck_alcotest.to_alcotest prop_workpool_lockstep;
    Alcotest.test_case "work pool misuse raises" `Quick test_workpool_misuse_raises;
    QCheck_alcotest.to_alcotest prop_conn_table_matches_list;
    Alcotest.test_case "reap of all-live conns allocates nothing" `Quick
      test_reap_all_live_allocates_nothing;
    Alcotest.test_case "pool quiesces after a burst" `Quick test_pool_quiesces_after_burst;
  ]
