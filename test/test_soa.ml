(* Tests for the PR-6 struct-of-arrays hot state:

   - generation-stamped [Conn_table] handles: stale rejection across slot
     reuse, the documented 16-bit wraparound aliasing point, and growth
     past the initial capacity;
   - the per-slot buffered-rx mirror;
   - QCheck lockstep of the arena-backed [Usage] against the record-based
     [Usage_ref] executable spec, including the saturate-vs-raise
     negative-memory rule. *)

module Simtime = Engine.Simtime
module Socket = Netsim.Socket
module Ipaddr = Netsim.Ipaddr
module Conn_table = Netsim.Conn_table
module Usage = Rescont.Usage
module Usage_ref = Rescont.Usage_ref

let fresh_conn =
  let n = ref 0 in
  fun () ->
    incr n;
    Socket.make_conn
      ~src:(Ipaddr.v 10 3 (!n / 256 mod 256) (!n mod 256))
      ~src_port:0 ~client:Socket.null_handlers ~now:Simtime.zero

(* {1 Handle staleness across slot churn} *)

(* With capacity 1 every add reuses slot 0, so the slot's generation
   advances by exactly one per remove.  A handle issued at generation 0
   must stay stale well past 2^16 reuses: the original 16-bit stamp
   wrapped there, which is reachable churn for a single hot slot once a
   cluster drives 10^5-10^6 connections through the table.  (Regression:
   with 16-bit stamps this loop aliased at occupant 65536.) *)
let test_handle_stale_past_16bit () =
  let table = Conn_table.create ~capacity:1 () in
  let c0 = fresh_conn () in
  Conn_table.add table c0;
  let h0 = Conn_table.handle table c0 in
  (match Conn_table.find table h0 with
  | Some c -> Alcotest.(check bool) "fresh handle resolves to its conn" true (c == c0)
  | None -> Alcotest.fail "fresh handle did not resolve");
  ignore (Conn_table.remove table c0);
  Alcotest.(check bool) "handle stale after remove" true (Conn_table.find table h0 = None);
  Alcotest.(check bool)
    "handle of an untracked conn is null" true
    (Conn_table.handle table c0 = Conn_table.null_handle);
  let reuses = 2 * 65536 in
  for i = 1 to reuses do
    let c = fresh_conn () in
    Conn_table.add table c;
    if c.Socket.track_slot <> 0 then
      Alcotest.failf "churn %d: expected slot 0 reuse, got slot %d" i c.Socket.track_slot;
    (match Conn_table.find table h0 with
    | None -> ()
    | Some _ -> Alcotest.failf "stale handle resolved after %d slot reuses" i);
    ignore (Conn_table.remove table c)
  done

(* The wraparound contract itself: generations are [generation_bits] wide,
   so aliasing needs 2^generation_bits reuses of one slot.  The bound must
   be far beyond any reachable churn (the cluster experiments turn over
   ~10^6 connections spread across all slots). *)
let test_generation_width () =
  Alcotest.(check bool)
    (Printf.sprintf "generation field is %d bits (>= 28)" Conn_table.generation_bits)
    true
    (Conn_table.generation_bits >= 28)

(* Cluster-scale churn: drive 3*10^5 connections through a small table
   (every slot reused thousands of times), holding on to one handle per
   departed occupant from a sample of generations.  No stale handle may
   ever resolve, and the live population must stay consistent. *)
let test_cluster_scale_churn () =
  let table = Conn_table.create ~capacity:64 () in
  let live = Queue.create () in
  let stale = ref [] in
  let churned = ref 0 in
  let target = 300_000 in
  while !churned < target do
    (* Fill to a plateau of 128 live conns, then drain half. *)
    while Queue.length live < 128 do
      let c = fresh_conn () in
      Conn_table.add table c;
      Queue.add (c, Conn_table.handle table c) live
    done;
    for _ = 1 to 64 do
      let c, h = Queue.pop live in
      ignore (Conn_table.remove table c);
      incr churned;
      (* Keep a sparse sample of dead handles alive across the whole run. *)
      if !churned land 1023 = 0 then stale := h :: !stale
    done;
    (match Conn_table.find table Conn_table.null_handle with
    | None -> ()
    | Some _ -> Alcotest.fail "null handle resolved");
    List.iter
      (fun h ->
        match Conn_table.find table h with
        | None -> ()
        | Some _ -> Alcotest.failf "stale handle resolved after %d churns" !churned)
      !stale
  done;
  Alcotest.(check int) "live population tracked" (Queue.length live) (Conn_table.length table);
  Queue.iter
    (fun (c, h) ->
      match Conn_table.find table h with
      | Some c' when c' == c -> ()
      | Some _ | None -> Alcotest.fail "live handle lost during churn")
    live

let test_growth_keeps_handles () =
  let table = Conn_table.create ~capacity:2 () in
  let n = 100 in
  let conns = Array.init n (fun _ -> fresh_conn ()) in
  Array.iter (fun c -> Conn_table.add table c) conns;
  let handles = Array.map (fun c -> Conn_table.handle table c) conns in
  Alcotest.(check int) "all tracked across growth" n (Conn_table.length table);
  Array.iteri
    (fun i c ->
      match Conn_table.find table handles.(i) with
      | Some c' when c' == c -> ()
      | Some _ | None -> Alcotest.failf "handle %d broken by growth" i)
    conns;
  (* Vacate the even slots; their handles go stale while odd handles keep
     resolving, and new occupants of the reused slots do not revive them. *)
  Array.iteri (fun i c -> if i mod 2 = 0 then ignore (Conn_table.remove table c)) conns;
  let fresh = Array.init (n / 2) (fun _ -> fresh_conn ()) in
  Array.iter (fun c -> Conn_table.add table c) fresh;
  Array.iteri
    (fun i _ ->
      let resolved = Conn_table.find table handles.(i) in
      if i mod 2 = 0 then begin
        match resolved with
        | None -> ()
        | Some _ -> Alcotest.failf "stale handle %d resolved after slot reuse" i
      end
      else
        match resolved with
        | Some c' when c' == conns.(i) -> ()
        | Some _ | None -> Alcotest.failf "live handle %d lost" i)
    conns

(* {1 Buffered-rx mirror} *)

let test_rx_mirror () =
  let table = Conn_table.create ~capacity:2 () in
  let a = fresh_conn () and b = fresh_conn () in
  Conn_table.add table a;
  Conn_table.add table b;
  Conn_table.rx_add table a 100;
  Conn_table.rx_add table b 50;
  Conn_table.rx_add table a 25;
  Alcotest.(check int) "per-conn mirror" 125 (Conn_table.rx_of table a);
  Alcotest.(check int) "slot-order total" 175 (Conn_table.rx_total table);
  Conn_table.rx_add table a (-125);
  Alcotest.(check int) "drain to zero" 0 (Conn_table.rx_of table a);
  Conn_table.rx_add table b 10;
  ignore (Conn_table.remove table b);
  Alcotest.(check int) "vacating a slot zeroes its mirror" 0 (Conn_table.rx_total table);
  Alcotest.(check int) "untracked conn reads 0" 0 (Conn_table.rx_of table b);
  let c = fresh_conn () in
  Conn_table.add table c;
  Alcotest.(check int) "reused slot starts at 0" 0 (Conn_table.rx_of table c)

(* {1 Usage arena vs record spec} *)

let prop_usage_lockstep =
  QCheck2.Test.make ~name:"usage arena lockstep with record spec" ~count:300
    QCheck2.Gen.(list_size (int_range 1 80) (triple (int_bound 6) (int_bound 9) (int_bound 997)))
    (fun ops ->
      let u = Usage.create () in
      let r = Usage_ref.create () in
      let prev_strict = Usage.strict_memory_enabled () in
      Fun.protect ~finally:(fun () -> Usage.set_strict_memory prev_strict) @@ fun () ->
      let agree what a b =
        if a <> b then QCheck2.Test.fail_reportf "%s: arena %d, spec %d" what a b
      in
      List.iter
        (fun (op, a, b) ->
          (match op with
          | 0 ->
              let kernel = a land 1 = 1 in
              let span = Simtime.span_of_ns b in
              Usage.charge_cpu u ~kernel span;
              Usage_ref.charge_cpu r ~kernel span
          | 1 ->
              Usage.charge_rx u ~packets:a ~bytes:b;
              Usage_ref.charge_rx r ~packets:a ~bytes:b
          | 2 ->
              Usage.charge_tx u ~packets:a ~bytes:b;
              Usage_ref.charge_tx r ~packets:a ~bytes:b
          | 3 ->
              (* Mixed-sign deltas probe the negative-memory rule; the two
                 implementations must agree on saturate vs raise and on
                 the exception payload. *)
              let delta = b - 400 in
              let strict = a land 1 = 1 in
              Usage.set_strict_memory strict;
              let outcome_u =
                try
                  Usage.charge_memory u delta;
                  None
                with Usage.Negative_memory { have; delta } -> Some (have, delta)
              in
              let outcome_r =
                try
                  Usage_ref.charge_memory r ~strict delta;
                  None
                with Usage_ref.Negative_memory { have; delta } -> Some (have, delta)
              in
              if outcome_u <> outcome_r then
                QCheck2.Test.fail_reportf "negative-memory rule disagrees (delta %d, strict %b)"
                  delta strict
          | 4 ->
              let span = Simtime.span_of_ns (10 * a) in
              Usage.charge_disk u ~bytes:b span;
              Usage_ref.charge_disk r ~bytes:b span
          | 5 ->
              if a land 1 = 1 then begin
                Usage.incr_kernel_objects u;
                Usage_ref.incr_kernel_objects r
              end
              else begin
                Usage.decr_kernel_objects u;
                Usage_ref.decr_kernel_objects r
              end
          | _ ->
              Usage.reset u;
              Usage_ref.reset r);
          agree "cpu_user"
            (Simtime.span_to_ns (Usage.cpu_user u))
            (Simtime.span_to_ns (Usage_ref.cpu_user r));
          agree "cpu_kernel"
            (Simtime.span_to_ns (Usage.cpu_kernel u))
            (Simtime.span_to_ns (Usage_ref.cpu_kernel r));
          agree "cpu_total"
            (Simtime.span_to_ns (Usage.cpu_total u))
            (Simtime.span_to_ns (Usage_ref.cpu_total r));
          (* The allocation-free scalar readers must agree with the spec's
             span-based accessors. *)
          agree "cpu_ns scalar" (Usage.cpu_ns u) (Simtime.span_to_ns (Usage_ref.cpu_total r));
          agree "cpu_user_ns scalar" (Usage.cpu_user_ns u)
            (Simtime.span_to_ns (Usage_ref.cpu_user r));
          agree "cpu_kernel_ns scalar" (Usage.cpu_kernel_ns u)
            (Simtime.span_to_ns (Usage_ref.cpu_kernel r));
          agree "rx_packets" (Usage.rx_packets u) (Usage_ref.rx_packets r);
          agree "rx_bytes" (Usage.rx_bytes u) (Usage_ref.rx_bytes r);
          agree "tx_packets" (Usage.tx_packets u) (Usage_ref.tx_packets r);
          agree "tx_bytes" (Usage.tx_bytes u) (Usage_ref.tx_bytes r);
          agree "memory_bytes" (Usage.memory_bytes u) (Usage_ref.memory_bytes r);
          agree "mem_bytes scalar" (Usage.mem_bytes u) (Usage_ref.memory_bytes r);
          agree "kernel_objects" (Usage.kernel_objects u) (Usage_ref.kernel_objects r);
          agree "disk_reads" (Usage.disk_reads u) (Usage_ref.disk_reads r);
          agree "disk_bytes" (Usage.disk_bytes u) (Usage_ref.disk_bytes r);
          agree "disk_ns scalar" (Usage.disk_ns u) (Simtime.span_to_ns (Usage_ref.disk_time r)))
        ops;
      true)

let suite =
  [
    Alcotest.test_case "conn handle stale past 2^16 slot reuses" `Quick
      test_handle_stale_past_16bit;
    Alcotest.test_case "conn handle generation width" `Quick test_generation_width;
    Alcotest.test_case "conn handle churn at cluster scale" `Quick test_cluster_scale_churn;
    Alcotest.test_case "conn handles survive growth; stale rejected" `Quick
      test_growth_keeps_handles;
    Alcotest.test_case "buffered-rx mirror" `Quick test_rx_mirror;
    QCheck_alcotest.to_alcotest prop_usage_lockstep;
  ]
