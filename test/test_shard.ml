(* Tests for Engine.Shard: the conservative time-window barrier executor.
   The cluster-level determinism properties (shards=N byte-identical to
   shards=1) live in test_cluster.ml; here we pin the executor itself —
   window sequencing, mailbox drain, the boundary-tie rule, domain-count
   independence and failure propagation. *)

module Shard = Engine.Shard
module Sim = Engine.Sim
module Simtime = Engine.Simtime

let test_intbox_growth () =
  let b = Shard.Intbox.create () in
  (* 100 triples = 300 ints: forces several doublings past the initial
     capacity of 64. *)
  for i = 0 to 99 do
    Shard.Intbox.push3 b i (i * 7) (i * 13)
  done;
  Alcotest.(check int) "length" 300 (Shard.Intbox.length b);
  for i = 0 to 99 do
    Alcotest.(check int) "a" i (Shard.Intbox.get b (3 * i));
    Alcotest.(check int) "b" (i * 7) (Shard.Intbox.get b ((3 * i) + 1));
    Alcotest.(check int) "c" (i * 13) (Shard.Intbox.get b ((3 * i) + 2))
  done;
  Shard.Intbox.clear b;
  Alcotest.(check int) "cleared" 0 (Shard.Intbox.length b);
  Shard.Intbox.push2 b 42 43;
  Alcotest.(check int) "reusable after clear" 2 (Shard.Intbox.length b);
  Alcotest.check_raises "bounds" (Invalid_argument "Shard.Intbox.get: out of bounds")
    (fun () -> ignore (Shard.Intbox.get b 2))

let test_domain_clamping () =
  let t = Shard.create ~shards:3 ~domains:8 () in
  Alcotest.(check int) "domains clamped to shards" 3 (Shard.domains t);
  let t = Shard.create ~shards:64 () in
  Alcotest.(check bool)
    "default domains capped at the host's recommendation" true
    (Shard.domains t <= Domain.recommended_domain_count ());
  Alcotest.check_raises "shards >= 1" (Invalid_argument "Shard.create: shards must be >= 1")
    (fun () -> ignore (Shard.create ~shards:0 ()))

(* One run of a toy sharded simulation: [shards] sims, each with a
   periodic local event; every local event posts a cross-shard message to
   the next shard via a mailbox, drained at the barrier.  Returns the
   global event log assembled in canonical (shard-order) form at each
   barrier — the observable that must not depend on the domain count. *)
let toy_run ~shards ~domains =
  let sims = Array.init shards (fun _ -> Sim.create ()) in
  let boxes = Array.init shards (fun _ -> Shard.Intbox.create ()) in
  let logs = Array.init shards (fun _ -> Buffer.create 256) in
  let global = Buffer.create 1024 in
  let window = 100 in
  Array.iteri
    (fun s sim ->
      let rec tick () =
        let now_ns = Simtime.to_ns (Sim.now sim) in
        Buffer.add_string logs.(s) (Printf.sprintf "L%d@%d;" s now_ns);
        (* Cross-shard message to the next shard, delivered one full
           window later: always conservative. *)
        Shard.Intbox.push2 boxes.((s + 1) mod shards) (now_ns + window) s;
        if now_ns < 1000 then Sim.post sim (Simtime.span_of_ns (35 + (7 * s))) tick
      in
      Sim.post_at sim (Simtime.of_ns (10 + s)) tick)
    sims;
  let exec = Shard.create ~shards ~domains () in
  let cursor = ref 0 in
  let next () =
    if !cursor >= 1200 then None
    else begin
      cursor := !cursor + window;
      Some !cursor
    end
  in
  let work s h = Sim.run_until sims.(s) (Simtime.of_ns h) in
  let exchange h =
    Array.iteri
      (fun s box ->
        let len = Shard.Intbox.length box in
        let i = ref 0 in
        while !i < len do
          let at = Shard.Intbox.get box !i in
          let from = Shard.Intbox.get box (!i + 1) in
          Sim.post_at sims.(s) (Simtime.of_ns at) (fun () ->
              Buffer.add_string logs.(s)
                (Printf.sprintf "M%d->%d@%d;" from s at));
          i := !i + 2
        done;
        Shard.Intbox.clear box)
      boxes;
    Array.iteri
      (fun s log ->
        Buffer.add_string global (Printf.sprintf "[%d|%d]" s h);
        Buffer.add_buffer global log;
        Buffer.clear log)
      logs
  in
  Shard.run_windows exec ~next ~work ~exchange;
  (Buffer.contents global, Array.map Sim.now sims)

let test_domain_count_independence () =
  let log1, clocks1 = toy_run ~shards:4 ~domains:1 in
  (* domains:4 forces real cross-domain execution even on a small host
     (Shard.create only caps the default). *)
  let log4, clocks4 = toy_run ~shards:4 ~domains:4 in
  Alcotest.(check string) "event logs identical across domain counts" log1 log4;
  Array.iteri
    (fun s c ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d clock at horizon" s)
        (Simtime.to_ns clocks1.(s))
        (Simtime.to_ns c))
    clocks4;
  Alcotest.(check bool) "something happened" true (String.length log1 > 100)

let test_empty_shard_advances () =
  (* A shard with no events must not stall the windows: run_until is a
     pure clock advance on an empty sim, and the barrier schedule is a
     function of simulated time alone. *)
  let sims = [| Sim.create (); Sim.create () |] in
  let fired = ref 0 in
  Sim.post_at sims.(0) (Simtime.of_ns 50) (fun () -> incr fired);
  let exec = Shard.create ~shards:2 ~domains:1 () in
  let cursor = ref 0 in
  let next () = if !cursor >= 300 then None else (cursor := !cursor + 100; Some !cursor) in
  let work s h = Sim.run_until sims.(s) (Simtime.of_ns h) in
  Shard.run_windows exec ~next ~work ~exchange:(fun _ -> ());
  Alcotest.(check int) "event fired" 1 !fired;
  Alcotest.(check int) "busy shard at horizon" 300 (Simtime.to_ns (Sim.now sims.(0)));
  Alcotest.(check int) "empty shard at horizon" 300 (Simtime.to_ns (Sim.now sims.(1)))

let test_boundary_tie_local_first () =
  (* Two events at the same nanosecond, one scheduled locally during the
     window, one posted by the barrier: the local one fires inside its
     window (run_until is horizon-inclusive), the barrier message lands in
     the next window.  This "local first" rule is what the cluster's
     protocol relies on being identical at every shard count. *)
  let sim = Sim.create () in
  let log = ref [] in
  Sim.post_at sim (Simtime.of_ns 100) (fun () -> log := "local@100" :: !log);
  let exec = Shard.create ~shards:1 ~domains:1 () in
  let windows = ref [ 100; 200 ] in
  let next () =
    match !windows with [] -> None | h :: rest -> windows := rest; Some h
  in
  let work _ h = Sim.run_until sim (Simtime.of_ns h) in
  let posted = ref false in
  let exchange _ =
    if not !posted then begin
      posted := true;
      (* The barrier delivers a message stamped exactly at the window end:
         legal (not in the past) and it must sort after the local event. *)
      Sim.post_at sim (Simtime.of_ns 100) (fun () -> log := "msg@100" :: !log)
    end
  in
  Shard.run_windows exec ~next ~work ~exchange;
  Alcotest.(check (list string))
    "local event before barrier message at the same stamp" [ "local@100"; "msg@100" ]
    (List.rev !log)

let test_worker_exception_propagates () =
  (* A failure on a worker domain's shard must surface on the caller, and
     the executor must have joined its domains (a second run works). *)
  let boom h = Failure (Printf.sprintf "window %d exploded" h) in
  let run () =
    let exec = Shard.create ~shards:4 ~domains:4 () in
    let cursor = ref 0 in
    let next () = if !cursor >= 500 then None else (cursor := !cursor + 100; Some !cursor) in
    let work s h = if s = 2 && h = 300 then raise (boom h) in
    Shard.run_windows exec ~next ~work ~exchange:(fun _ -> ())
  in
  Alcotest.check_raises "worker failure re-raised on caller" (boom 300) run;
  Alcotest.check_raises "executor reusable after failure" (boom 300) run

let test_prepare_runs_everywhere () =
  let count = Atomic.make 0 in
  let exec = Shard.create ~shards:4 ~domains:4 () in
  let cursor = ref 0 in
  let next () = if !cursor >= 200 then None else (cursor := !cursor + 100; Some !cursor) in
  Shard.run_windows exec
    ~prepare:(fun () -> Atomic.incr count)
    ~next
    ~work:(fun _ _ -> ())
    ~exchange:(fun _ -> ());
  Alcotest.(check int) "prepare ran once per domain" 4 (Atomic.get count)

let suite =
  [
    Alcotest.test_case "intbox: growth, reuse, bounds" `Quick test_intbox_growth;
    Alcotest.test_case "create clamps domains" `Quick test_domain_clamping;
    Alcotest.test_case "domain-count independence (4 domains vs 1)" `Quick
      test_domain_count_independence;
    Alcotest.test_case "empty shard advances with the windows" `Quick
      test_empty_shard_advances;
    Alcotest.test_case "boundary tie: local event before barrier message" `Quick
      test_boundary_tie_local_first;
    Alcotest.test_case "worker exception propagates to caller" `Quick
      test_worker_exception_propagates;
    Alcotest.test_case "prepare runs on every domain" `Quick test_prepare_runs_everywhere;
  ]
