(* Tests for Engine.Rng and Engine.Dist. *)

module Rng = Engine.Rng
module Dist = Engine.Dist

let test_determinism () =
  let a = Rng.create ~seed:123 and b = Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_split_independent () =
  let parent = Rng.create ~seed:9 in
  let child = Rng.split parent in
  let x = Rng.bits64 child in
  let parent' = Rng.create ~seed:9 in
  let child' = Rng.split parent' in
  Alcotest.(check int64) "split deterministic" x (Rng.bits64 child')

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_int_invalid () =
  let rng = Rng.create ~seed:5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    if v < 0. || v >= 3.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_uniformity_rough () =
  let rng = Rng.create ~seed:31 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < n / 20 || c > n / 5 then
        Alcotest.failf "bucket %d wildly off: %d" i c)
    buckets

let mean_of samples = Array.fold_left ( +. ) 0. samples /. float_of_int (Array.length samples)

let sample_n dist rng n = Array.init n (fun _ -> Dist.sample dist rng)

let test_constant () =
  let rng = Rng.create ~seed:1 in
  let d = Dist.constant 4.2 in
  Alcotest.(check (float 1e-9)) "sample" 4.2 (Dist.sample d rng);
  Alcotest.(check (float 1e-9)) "mean" 4.2 (Dist.mean d)

let test_uniform () =
  let rng = Rng.create ~seed:2 in
  let d = Dist.uniform ~lo:2. ~hi:4. in
  let samples = sample_n d rng 20_000 in
  Array.iter (fun v -> if v < 2. || v > 4. then Alcotest.fail "uniform out of range") samples;
  Alcotest.(check (float 0.05)) "empirical mean" 3. (mean_of samples);
  Alcotest.(check (float 1e-9)) "analytic mean" 3. (Dist.mean d)

let test_exponential () =
  let rng = Rng.create ~seed:3 in
  let d = Dist.exponential ~mean:5. in
  let samples = sample_n d rng 50_000 in
  Array.iter (fun v -> if v < 0. then Alcotest.fail "negative exponential") samples;
  Alcotest.(check (float 0.2)) "empirical mean" 5. (mean_of samples)

let test_pareto () =
  let rng = Rng.create ~seed:4 in
  let d = Dist.pareto ~shape:2.5 ~scale:1. in
  let samples = sample_n d rng 50_000 in
  Array.iter (fun v -> if v < 1. then Alcotest.fail "pareto below scale") samples;
  (* analytic mean = shape*scale/(shape-1) = 2.5/1.5 *)
  Alcotest.(check (float 0.1)) "analytic mean" (2.5 /. 1.5) (Dist.mean d);
  Alcotest.(check (float 0.15)) "empirical mean" (2.5 /. 1.5) (mean_of samples)

let test_pareto_infinite_mean () =
  let d = Dist.pareto ~shape:0.9 ~scale:1. in
  Alcotest.(check bool) "infinite mean" true (Float.is_integer (Dist.mean d) = false && Dist.mean d = infinity)

let test_zipf () =
  let rng = Rng.create ~seed:6 in
  let d = Dist.zipf ~n:10 ~s:1.0 in
  let counts = Array.make 11 0 in
  for _ = 1 to 50_000 do
    let rank = int_of_float (Dist.sample d rng) in
    if rank < 1 || rank > 10 then Alcotest.fail "zipf rank out of range";
    counts.(rank) <- counts.(rank) + 1
  done;
  Alcotest.(check bool) "rank 1 most popular" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank 2 beats rank 5" true (counts.(2) > counts.(5))

let test_empirical () =
  let rng = Rng.create ~seed:7 in
  let d = Dist.empirical [| (1., 10.); (3., 20.) |] in
  let samples = sample_n d rng 40_000 in
  let tens = Array.fold_left (fun acc v -> if v = 10. then acc + 1 else acc) 0 samples in
  let frac = float_of_int tens /. 40_000. in
  Alcotest.(check (float 0.02)) "weights respected" 0.25 frac;
  Alcotest.(check (float 1e-9)) "mean" 17.5 (Dist.mean d)

let test_zipf_mean_monotone_in_s () =
  (* A steeper Zipf exponent concentrates mass on low ranks: the mean rank
     must fall as s grows. *)
  let mean s = Dist.mean (Dist.zipf ~n:100 ~s) in
  Alcotest.(check bool) "mean falls with s" true
    (mean 0.5 > mean 1.0 && mean 1.0 > mean 2.0)

let test_invalid_args () =
  Alcotest.check_raises "uniform hi<lo" (Invalid_argument "Dist.uniform: hi < lo") (fun () ->
      ignore (Dist.uniform ~lo:2. ~hi:1.));
  Alcotest.check_raises "exponential mean<=0"
    (Invalid_argument "Dist.exponential: mean must be positive") (fun () ->
      ignore (Dist.exponential ~mean:0.));
  Alcotest.check_raises "empirical empty" (Invalid_argument "Dist.empirical: empty") (fun () ->
      ignore (Dist.empirical [||]))

let test_sample_int () =
  let rng = Rng.create ~seed:8 in
  Alcotest.(check int) "rounds" 4 (Dist.sample_int (Dist.constant 4.4) rng);
  Alcotest.(check int) "clamps" 0 (Dist.sample_int (Dist.constant (-3.)) rng)

(* {1 The alias-method sampler (DESIGN.md §15)} *)

(* The Vose table build is correct iff the probability each index is
   returned — its own column's acceptance mass plus the rejection mass of
   every column aliased to it — equals its normalized weight, exactly. *)
let prop_alias_implies_pmf =
  QCheck2.Test.make ~name:"alias table implies the normalized pmf" ~count:300
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 1000))
    (fun weights ->
      let cells =
        Array.of_list (List.mapi (fun i w -> (float_of_int w, float_of_int i)) weights)
      in
      let d = Dist.categorical_alias cells in
      let pmf = Option.get (Dist.pmf d) in
      let implied = Option.get (Dist.alias_probabilities d) in
      Array.iteri
        (fun i p ->
          if Float.abs (p -. implied.(i)) > 1e-9 then
            QCheck2.Test.fail_reportf "index %d: pmf %.12g, implied %.12g" i p implied.(i))
        pmf;
      true)

(* Chi-squared sanity at the production scale: 2e5 alias draws from
   Zipf(0.9) over 1e5 ranks, binned geometrically (so every bin has a
   healthy expected count), against the exact pmf.  The 1e-4 critical
   value for 16 degrees of freedom is ~44.5; a broken table build or a
   biased redirect blows through that by orders of magnitude. *)
let test_zipf_alias_chi_squared () =
  let n = 100_000 and draws = 200_000 in
  let d = Dist.zipf ~n ~s:0.9 in
  let pmf = Option.get (Dist.pmf d) in
  let bins = 17 in
  let bin_of i =
    let rec log2 v acc = if v <= 1 then acc else log2 (v / 2) (acc + 1) in
    min (bins - 1) (log2 (i + 1) 0)
  in
  let expected = Array.make bins 0. in
  Array.iteri (fun i p -> expected.(bin_of i) <- expected.(bin_of i) +. p) pmf;
  let observed = Array.make bins 0 in
  let rng = Rng.create ~seed:17 in
  for _ = 1 to draws do
    let i = Dist.sample_index d rng in
    if i < 0 || i >= n then Alcotest.fail "alias index out of range";
    observed.(bin_of i) <- observed.(bin_of i) + 1
  done;
  let chi2 = ref 0. in
  for b = 0 to bins - 1 do
    let e = expected.(b) *. float_of_int draws in
    if e > 0. then begin
      let diff = float_of_int observed.(b) -. e in
      chi2 := !chi2 +. (diff *. diff /. e)
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "chi-squared %.1f within the df=16 critical value" !chi2)
    true (!chi2 < 44.5)

(* The alias sampler and its CDF-inversion spec draw the same
   distribution: identical analytic means, and both empirical means land
   on it (s = 3 keeps the variance small so 5e4 draws converge; the mean
   is ~1.37 with a standard error of ~0.009, so 0.1 is a >10-sigma
   margin on fixed seeds). *)
let test_alias_vs_cdf_agree () =
  let alias = Dist.zipf ~n:1000 ~s:3.0 and cdf = Dist.zipf_cdf ~n:1000 ~s:3.0 in
  Alcotest.(check (float 1e-9)) "analytic means equal" (Dist.mean cdf) (Dist.mean alias);
  let empirical d seed =
    let rng = Rng.create ~seed in
    mean_of (sample_n d rng 50_000)
  in
  Alcotest.(check (float 0.1)) "alias empirical mean" (Dist.mean alias) (empirical alias 21);
  Alcotest.(check (float 0.1)) "cdf empirical mean" (Dist.mean cdf) (empirical cdf 22)

let test_zipf_zero_exponent_uniform () =
  (* s = 0 is the uniform categorical — the flash crowd's worst case. *)
  let d = Dist.zipf ~n:50 ~s:0. in
  let pmf = Option.get (Dist.pmf d) in
  Array.iter (fun p -> Alcotest.(check (float 1e-12)) "uniform pmf" 0.02 p) pmf

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "rng split" `Quick test_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_int_bounds;
    Alcotest.test_case "rng int invalid" `Quick test_int_invalid;
    Alcotest.test_case "rng float bounds" `Quick test_float_bounds;
    Alcotest.test_case "rng rough uniformity" `Slow test_uniformity_rough;
    Alcotest.test_case "dist constant" `Quick test_constant;
    Alcotest.test_case "dist uniform" `Quick test_uniform;
    Alcotest.test_case "dist exponential" `Slow test_exponential;
    Alcotest.test_case "dist pareto" `Slow test_pareto;
    Alcotest.test_case "dist pareto infinite mean" `Quick test_pareto_infinite_mean;
    Alcotest.test_case "dist zipf" `Slow test_zipf;
    Alcotest.test_case "dist empirical" `Quick test_empirical;
    Alcotest.test_case "zipf mean monotone" `Quick test_zipf_mean_monotone_in_s;
    Alcotest.test_case "dist invalid args" `Quick test_invalid_args;
    Alcotest.test_case "dist sample_int" `Quick test_sample_int;
    QCheck_alcotest.to_alcotest prop_alias_implies_pmf;
    Alcotest.test_case "zipf alias chi-squared at 1e5 ranks" `Slow test_zipf_alias_chi_squared;
    Alcotest.test_case "alias vs cdf spec agree" `Quick test_alias_vs_cdf_agree;
    Alcotest.test_case "zipf s=0 is uniform" `Quick test_zipf_zero_exponent_uniform;
  ]
