(* Tests for Rescont.Container: hierarchy, lifetime, accounting rules. *)

module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Simtime = Engine.Simtime

let fixed share = Attrs.fixed_share ~share ()
let ts priority = Attrs.timeshare ~priority ()

let test_root () =
  let root = Container.create_root () in
  Alcotest.(check bool) "is_root" true (Container.is_root root);
  Alcotest.(check bool) "is_leaf" true (Container.is_leaf root);
  Alcotest.(check int) "depth" 0 (Container.depth root);
  Alcotest.(check (float 1e-9)) "guarantee" 1.0 (Container.guaranteed_fraction root)

let test_create_child () =
  let root = Container.create_root () in
  let child = Container.create ~parent:root ~name:"web" ~attrs:(fixed 0.5) () in
  Alcotest.(check bool) "parent set" true
    (match Container.parent child with Some p -> p == root | None -> false);
  Alcotest.(check int) "root has child" 1 (List.length (Container.children root));
  Alcotest.(check bool) "root no longer leaf" false (Container.is_leaf root);
  Alcotest.(check int) "depth" 1 (Container.depth child);
  Alcotest.(check (float 1e-9)) "guarantee product" 0.5 (Container.guaranteed_fraction child);
  let grand = Container.create ~parent:child ~attrs:(fixed 0.4) () in
  Alcotest.(check (float 1e-9)) "nested guarantee" 0.2 (Container.guaranteed_fraction grand)

let test_timeshare_cannot_have_children () =
  let root = Container.create_root () in
  let tsc = Container.create ~parent:root ~attrs:(ts 10) () in
  let raised =
    try
      ignore (Container.create ~parent:tsc ());
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "timeshare parent rejected" true raised

let test_share_oversubscription () =
  let root = Container.create_root () in
  ignore (Container.create ~parent:root ~attrs:(fixed 0.7) ());
  ignore (Container.create ~parent:root ~attrs:(fixed 0.3) ());
  let raised =
    try
      ignore (Container.create ~parent:root ~attrs:(fixed 0.1) ());
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "over 1.0 rejected" true raised;
  (* Timeshare children are fine: they carry no share. *)
  ignore (Container.create ~parent:root ~attrs:(ts 10) ())

let test_set_parent () =
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~name:"a" ~attrs:(fixed 0.5) () in
  let b = Container.create ~parent:root ~name:"b" ~attrs:(fixed 0.2) () in
  Container.set_parent b (Some a);
  Alcotest.(check bool) "reparented" true
    (match Container.parent b with Some p -> p == a | None -> false);
  Alcotest.(check int) "root children" 1 (List.length (Container.children root));
  Container.set_parent b None;
  Alcotest.(check bool) "detached" true (Container.parent b = None)

let test_set_parent_cycle () =
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let b = Container.create ~parent:a ~attrs:(fixed 0.5) () in
  let raised =
    try
      Container.set_parent a (Some b);
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "cycle rejected" true raised;
  let raised_self =
    try
      Container.set_parent a (Some a);
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "self-parent rejected" true raised_self

let test_destroy_detaches_children () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let child = Container.create ~parent ~attrs:(fixed 0.5) () in
  Container.destroy parent;
  Alcotest.(check bool) "child orphaned (§4.6)" true (Container.parent child = None);
  Alcotest.(check bool) "parent destroyed" true (Container.is_destroyed parent);
  Alcotest.(check bool) "child alive" false (Container.is_destroyed child);
  Alcotest.(check int) "unlinked from root" 0 (List.length (Container.children root))

let test_refcounting () =
  let root = Container.create_root () in
  let c = Container.create ~parent:root ~attrs:(ts 10) () in
  Container.retain c;
  Container.release c;
  Alcotest.(check bool) "still alive with one ref" false (Container.is_destroyed c);
  Container.release c;
  Alcotest.(check bool) "destroyed at zero refs" true (Container.is_destroyed c)

let test_refcount_with_bindings () =
  let root = Container.create_root () in
  let c = Container.create ~parent:root ~attrs:(ts 10) () in
  Container.incr_bindings c;
  Container.release c;
  Alcotest.(check bool) "binding keeps alive" false (Container.is_destroyed c);
  Container.decr_bindings c;
  Alcotest.(check bool) "destroyed when binding drops" true (Container.is_destroyed c)

let test_binding_requires_leaf () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  ignore (Container.create ~parent ~attrs:(ts 10) ());
  let raised =
    try
      Container.incr_bindings parent;
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "interior node binding rejected" true raised

let test_children_blocked_under_bound_container () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  Container.incr_bindings parent;
  let raised =
    try
      ignore (Container.create ~parent ());
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "no children under a bound container" true raised

let test_use_after_destroy () =
  let root = Container.create_root () in
  let c = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  Container.destroy c;
  let raised =
    try
      ignore (Container.create ~parent:c ());
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "destroyed parent rejected" true raised

let test_charge_propagation () =
  let root = Container.create_root () in
  let mid = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let leaf = Container.create ~parent:mid ~attrs:(ts 10) () in
  Container.charge_cpu leaf ~kernel:false (Simtime.us 100);
  Container.charge_cpu leaf ~kernel:true (Simtime.us 50);
  Alcotest.(check int) "leaf own usage" 150_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage leaf)));
  Alcotest.(check int) "leaf user split" 100_000
    (Simtime.span_to_ns (Usage.cpu_user (Container.usage leaf)));
  Alcotest.(check int) "mid subtree" 150_000 (Simtime.span_to_ns (Container.subtree_cpu mid));
  Alcotest.(check int) "root subtree" 150_000 (Simtime.span_to_ns (Container.subtree_cpu root));
  Alcotest.(check int) "mid own usage untouched" 0
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage mid)))

let test_effective_cpu_limit () =
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:0.5 ~cpu_limit:0.4 ()) () in
  let b = Container.create ~parent:a ~attrs:(Attrs.fixed_share ~share:0.9 ~cpu_limit:0.8 ()) () in
  let c = Container.create ~parent:b ~attrs:(ts 10) () in
  Alcotest.(check (float 1e-9)) "tightest ancestor limit" 0.4 (Container.effective_cpu_limit c);
  Alcotest.(check (float 1e-9)) "unlimited root" 1.0 (Container.effective_cpu_limit root)

let test_iter_subtree () =
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  ignore (Container.create ~parent:a ~attrs:(ts 1) ());
  ignore (Container.create ~parent:a ~attrs:(ts 1) ());
  let count = ref 0 in
  Container.iter_subtree (fun _ -> incr count) root;
  Alcotest.(check int) "pre-order visit count" 4 !count

let test_has_ancestor () =
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let b = Container.create ~parent:a ~attrs:(ts 10) () in
  Alcotest.(check bool) "self" true (Container.has_ancestor b ~ancestor:b);
  Alcotest.(check bool) "parent" true (Container.has_ancestor b ~ancestor:a);
  Alcotest.(check bool) "root" true (Container.has_ancestor b ~ancestor:root);
  Alcotest.(check bool) "not descendant" false (Container.has_ancestor a ~ancestor:b);
  Alcotest.(check bool) "root_of" true (Container.root_of b == root)

let test_set_attrs_rules () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  ignore (Container.create ~parent ~attrs:(ts 10) ());
  let raised =
    try
      Container.set_attrs parent (ts 5);
      false
    with Container.Error _ -> true
  in
  Alcotest.(check bool) "cannot become timeshare with children" true raised;
  Container.set_attrs parent (fixed 0.9);
  Alcotest.(check bool) "share update ok" true
    (match (Container.attrs parent).Attrs.sched_class with
    | Attrs.Fixed_share s -> s = 0.9
    | Attrs.Timeshare -> false)

(* {1 Ancestor-chain cache invalidation}

   Charges walk a cached flat ancestor array; these tests pin down that the
   cache is rebuilt whenever the parent chain changes, so charges roll up
   to the *current* ancestors only. *)

let ns_of span = Simtime.span_to_ns span
let cpu c = ns_of (Container.subtree_cpu c)

let test_reparent_redirects_charges () =
  let root_a = Container.create_root () in
  let pa = Container.create ~parent:root_a ~name:"pa" ~attrs:(fixed 0.5) () in
  let pb = Container.create ~parent:root_a ~name:"pb" ~attrs:(fixed 0.5) () in
  let c = Container.create ~parent:pa ~name:"c" ~attrs:(ts 10) () in
  Container.charge_cpu c ~kernel:false (Simtime.us 10);
  Alcotest.(check int) "pa sees first charge" 10_000 (cpu pa);
  Alcotest.(check int) "pb sees nothing yet" 0 (cpu pb);
  Container.set_parent c (Some pb);
  Container.charge_cpu c ~kernel:false (Simtime.us 5);
  Alcotest.(check int) "pa frozen after re-parent" 10_000 (cpu pa);
  Alcotest.(check int) "pb gets post-move charge" 5_000 (cpu pb);
  Alcotest.(check int) "own usage keeps accumulating" 15_000
    (ns_of (Usage.cpu_total (Container.usage c)));
  Alcotest.(check int) "root sees both" 15_000 (cpu root_a);
  Alcotest.(check int) "depth rebuilt" 2 (Container.depth c)

let test_reparent_invalidates_descendants () =
  (* Moving an interior node must invalidate the cached chains of its
     whole subtree, not just its own. *)
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~name:"a" ~attrs:(fixed 0.4) () in
  let b = Container.create ~parent:a ~name:"b" ~attrs:(fixed 0.5) () in
  let leaf = Container.create ~parent:b ~name:"leaf" ~attrs:(ts 10) () in
  (* Prime every cache on the path. *)
  Container.charge_cpu leaf ~kernel:false (Simtime.us 1);
  Alcotest.(check int) "depth before" 3 (Container.depth leaf);
  Alcotest.(check (float 1e-9)) "guarantee before" 0.2 (Container.guaranteed_fraction leaf);
  let root2 = Container.create_root () in
  Container.set_parent b (Some root2);
  Container.charge_cpu leaf ~kernel:false (Simtime.us 7);
  Alcotest.(check int) "old chain frozen at a" 1_000 (cpu a);
  Alcotest.(check int) "old root frozen" 1_000 (cpu root);
  Alcotest.(check int) "new root collects" 7_000 (cpu root2);
  Alcotest.(check int) "grandchild depth rebuilt" 2 (Container.depth leaf);
  Alcotest.(check (float 1e-9)) "guarantee follows new chain" 0.5
    (Container.guaranteed_fraction leaf);
  Alcotest.(check bool) "root_of follows new chain" true (Container.root_of leaf == root2)

let test_destroy_orphans_charging () =
  let root = Container.create_root () in
  let p = Container.create ~parent:root ~name:"p" ~attrs:(fixed 0.5) () in
  let c = Container.create ~parent:p ~name:"c" ~attrs:(ts 10) () in
  Container.charge_cpu c ~kernel:false (Simtime.us 3);
  Container.destroy p;
  Alcotest.(check bool) "orphaned" true (Container.parent c = None);
  Container.charge_cpu c ~kernel:false (Simtime.us 4);
  Alcotest.(check int) "destroyed parent keeps only pre-destroy history" 3_000 (cpu p);
  Alcotest.(check int) "root likewise" 3_000 (cpu root);
  Alcotest.(check int) "orphan accumulates alone" 7_000 (cpu c);
  Alcotest.(check int) "orphan depth" 0 (Container.depth c)

let test_children_insertion_order () =
  let root = Container.create_root () in
  let names = [ "a"; "b"; "c"; "d" ] in
  let kids =
    List.map (fun n -> Container.create ~parent:root ~name:n ~attrs:(ts 10) ()) names
  in
  Alcotest.(check (list string)) "insertion order preserved" names
    (List.map Container.name (Container.children root));
  Container.set_parent (List.nth kids 1) None;
  Alcotest.(check (list string)) "order stable across removal" [ "a"; "c"; "d" ]
    (List.map Container.name (Container.children root));
  let e = Container.create ~parent:root ~name:"e" ~attrs:(ts 10) () in
  ignore e;
  Alcotest.(check (list string)) "append goes last" [ "a"; "c"; "d"; "e" ]
    (List.map Container.name (Container.children root))

let test_topology_generation () =
  let g0 = Container.topology_generation () in
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  Alcotest.(check int) "creation does not bump topology" g0
    (Container.topology_generation ());
  Container.set_parent a None;
  Alcotest.(check bool) "detach bumps topology" true (Container.topology_generation () > g0);
  let g1 = Container.topology_generation () in
  Container.destroy a;
  Alcotest.(check bool) "destroy bumps topology" true (Container.topology_generation () > g1)

(* Property: after an arbitrary sequence of re-parents across a small
   forest, depth/guarantee/ancestry agree with a fresh recursive walk. *)
let prop_chain_matches_recursion =
  QCheck2.Test.make ~name:"cached chain always matches the parent links" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 0 5) (int_range 0 5)))
    (fun moves ->
      let root = Container.create_root () in
      let groups =
        Array.init 3 (fun i ->
            Container.create ~parent:root ~name:(Printf.sprintf "g%d" i)
              ~attrs:(fixed 0.25) ())
      in
      let leaves =
        Array.init 6 (fun i ->
            Container.create ~parent:groups.(i mod 3) ~name:(Printf.sprintf "l%d" i)
              ~attrs:(ts 10) ())
      in
      List.iter
        (fun (li, gi) ->
          match Container.set_parent leaves.(li) (Some groups.(gi mod 3)) with
          | () -> ()
          | exception Container.Error _ -> ())
        moves;
      Array.for_all
        (fun leaf ->
          let rec walk_depth c = match Container.parent c with None -> 0 | Some p -> 1 + walk_depth p in
          let chain = Container.ancestry leaf in
          Container.depth leaf = walk_depth leaf
          && Array.length chain = walk_depth leaf + 1
          && chain.(0) == leaf
          && Container.root_of leaf == root)
        leaves)

(* Property: creating any sequence of fixed shares under one parent never
   exceeds 1.0 committed. *)
let prop_no_oversubscription =
  QCheck2.Test.make ~name:"fixed shares never oversubscribe" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.05 0.6))
    (fun shares ->
      let root = Container.create_root () in
      let committed = ref 0. in
      List.iter
        (fun share ->
          match Container.create ~parent:root ~attrs:(fixed share) () with
          | _ -> committed := !committed +. share
          | exception Container.Error _ -> ())
        shares;
      !committed <= 1.0 +. 1e-6)

let suite =
  [
    Alcotest.test_case "root container" `Quick test_root;
    Alcotest.test_case "child creation" `Quick test_create_child;
    Alcotest.test_case "timeshare cannot have children" `Quick test_timeshare_cannot_have_children;
    Alcotest.test_case "share oversubscription" `Quick test_share_oversubscription;
    Alcotest.test_case "set_parent" `Quick test_set_parent;
    Alcotest.test_case "cycles rejected" `Quick test_set_parent_cycle;
    Alcotest.test_case "destroy detaches children" `Quick test_destroy_detaches_children;
    Alcotest.test_case "reference counting" `Quick test_refcounting;
    Alcotest.test_case "bindings keep alive" `Quick test_refcount_with_bindings;
    Alcotest.test_case "leaf-only binding" `Quick test_binding_requires_leaf;
    Alcotest.test_case "no children under bound container" `Quick
      test_children_blocked_under_bound_container;
    Alcotest.test_case "use after destroy" `Quick test_use_after_destroy;
    Alcotest.test_case "charge propagation" `Quick test_charge_propagation;
    Alcotest.test_case "effective cpu limit" `Quick test_effective_cpu_limit;
    Alcotest.test_case "iter_subtree" `Quick test_iter_subtree;
    Alcotest.test_case "has_ancestor" `Quick test_has_ancestor;
    Alcotest.test_case "set_attrs rules" `Quick test_set_attrs_rules;
    Alcotest.test_case "re-parent redirects charges" `Quick test_reparent_redirects_charges;
    Alcotest.test_case "re-parent invalidates descendants" `Quick
      test_reparent_invalidates_descendants;
    Alcotest.test_case "destroy orphans charging" `Quick test_destroy_orphans_charging;
    Alcotest.test_case "children insertion order" `Quick test_children_insertion_order;
    Alcotest.test_case "topology generation" `Quick test_topology_generation;
    QCheck_alcotest.to_alcotest prop_chain_matches_recursion;
    QCheck_alcotest.to_alcotest prop_no_oversubscription;
  ]
