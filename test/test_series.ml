(* Tests for Engine.Series lookup semantics. *)

module S = Engine.Series

(* Regression: [y_at] used exact float equality, so abscissae produced by
   arithmetic (0.1 +. 0.2) failed to find points stored at the literal
   value (0.3). *)
let test_y_at_computed_abscissa () =
  let c = S.curve "c" in
  S.add_point c ~x:0.3 ~y:42.;
  Alcotest.(check (option (float 1e-9)))
    "0.1 +. 0.2 finds the point at 0.3" (Some 42.)
    (S.y_at c (0.1 +. 0.2))

let test_y_at_exact_hit () =
  let c = S.curve "c" in
  S.add_point c ~x:1. ~y:10.;
  S.add_point c ~x:2. ~y:20.;
  Alcotest.(check (option (float 1e-9))) "exact x" (Some 10.) (S.y_at c 1.);
  Alcotest.(check (option (float 1e-9))) "other exact x" (Some 20.) (S.y_at c 2.)

let test_y_at_clear_miss () =
  let c = S.curve "c" in
  S.add_point c ~x:1. ~y:10.;
  Alcotest.(check (option (float 1e-9))) "far-away x misses" None (S.y_at c 1.5);
  Alcotest.(check (option (float 1e-9))) "empty curve misses" None (S.y_at (S.curve "e") 0.)

let test_y_at_large_magnitude () =
  let c = S.curve "c" in
  S.add_point c ~x:1e12 ~y:7.;
  (* The tolerance scales with |x|, so a 1-ulp-ish perturbation at large
     magnitude still matches... *)
  Alcotest.(check (option (float 1e-9))) "relative tolerance" (Some 7.)
    (S.y_at c (1e12 +. 0.0001));
  (* ...while a genuinely different abscissa does not. *)
  Alcotest.(check (option (float 1e-9))) "still discriminates" None (S.y_at c (1e12 +. 1e6))

let suite =
  [
    Alcotest.test_case "y_at computed abscissa" `Quick test_y_at_computed_abscissa;
    Alcotest.test_case "y_at exact hit" `Quick test_y_at_exact_hit;
    Alcotest.test_case "y_at clear miss" `Quick test_y_at_clear_miss;
    Alcotest.test_case "y_at large magnitude" `Quick test_y_at_large_magnitude;
  ]
