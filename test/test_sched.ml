(* Tests for the Sched library: Decay, Runq and the four policies. *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Binding = Rescont.Binding
module Task = Sched.Task
module Decay = Sched.Decay
module Runq = Sched.Runq

let fixed share = Attrs.fixed_share ~share ()
let ts priority = Attrs.timeshare ~priority ()

(* {1 Decay} *)

let test_decay_accumulates () =
  let d = Decay.create ~tau:(Simtime.sec 1) in
  Decay.add d ~now:Simtime.zero (Simtime.ms 10);
  Alcotest.(check (float 1.)) "initial" 10e6 (Decay.read d ~now:Simtime.zero)

let test_decay_halves () =
  let d = Decay.create ~tau:(Simtime.sec 1) in
  Decay.add d ~now:Simtime.zero (Simtime.ms 10);
  let later = Simtime.add Simtime.zero (Simtime.sec 1) in
  let v = Decay.read d ~now:later in
  Alcotest.(check (float 1e4)) "1/e after tau" (10e6 /. Float.exp 1.) v

let test_decay_monotone_without_charges () =
  let d = Decay.create ~tau:(Simtime.ms 100) in
  Decay.add d ~now:Simtime.zero (Simtime.ms 5);
  let v1 = Decay.read d ~now:(Simtime.of_ns 50_000_000) in
  let v2 = Decay.read d ~now:(Simtime.of_ns 100_000_000) in
  Alcotest.(check bool) "decreasing" true (v2 < v1);
  Decay.reset d;
  Alcotest.(check (float 1e-9)) "reset" 0. (Decay.read d ~now:(Simtime.of_ns 200_000_000))

(* {1 Runq} *)

let setup_leaves n =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
  (root, parent, List.init n (fun i -> Container.create ~parent ~name:(Printf.sprintf "l%d" i) ()))

let task_on container name = Task.create ~name (Binding.create ~now:Simtime.zero container)

let test_runq_basic () =
  let _, _, leaves = setup_leaves 2 in
  let a = List.nth leaves 0 and b = List.nth leaves 1 in
  let q = Runq.create () in
  let t1 = task_on a "t1" and t2 = task_on a "t2" and t3 = task_on b "t3" in
  Runq.enqueue q t1;
  Runq.enqueue q t2;
  Runq.enqueue q t3;
  Runq.enqueue q t1 (* idempotent *);
  let front_is q c t = match Runq.front q c with Some x -> Task.equal x t | None -> false in
  Alcotest.(check int) "count" 3 (Runq.count q);
  Alcotest.(check bool) "front a" true (front_is q a t1);
  Runq.rotate q a;
  Alcotest.(check bool) "rotated" true (front_is q a t2);
  Runq.dequeue q t2;
  Alcotest.(check bool) "after dequeue" true (front_is q a t1);
  Runq.dequeue q t2 (* idempotent *);
  Alcotest.(check int) "count after" 2 (Runq.count q)

let test_runq_requeue_moves () =
  let _, _, leaves = setup_leaves 2 in
  let a = List.nth leaves 0 and b = List.nth leaves 1 in
  let q = Runq.create () in
  let t = task_on a "t" in
  Runq.enqueue q t;
  Binding.set_resource_binding t.Task.binding ~now:Simtime.zero b;
  Runq.requeue q t;
  Alcotest.(check bool) "left a" false (Runq.container_has_work q a);
  Alcotest.(check bool) "joined b" true
    (match Runq.front q b with Some x -> Task.equal x t | None -> false)

let test_runq_subtree () =
  let root, parent, leaves = setup_leaves 1 in
  let q = Runq.create () in
  Alcotest.(check bool) "empty subtree" false (Runq.subtree_has_work q root);
  Runq.enqueue q (task_on (List.hd leaves) "t");
  Alcotest.(check bool) "leaf work visible at root" true (Runq.subtree_has_work q root);
  Alcotest.(check bool) "and at parent" true (Runq.subtree_has_work q parent)

(* {1 Policy harness}

   Run a policy directly (no machine): repeatedly pick, charge a fixed
   slice to the picked task's container, and count slices per container. *)
let run_policy policy tasks ~slices =
  let counts = Hashtbl.create 8 in
  List.iter policy.Sched.Policy.enqueue tasks;
  let slice = Simtime.ms 1 in
  for i = 0 to slices - 1 do
    let now = Simtime.of_ns (i * 1_000_000) in
    match policy.Sched.Policy.pick ~now with
    | Some task ->
        let c = Task.container task in
        let cid = Container.id c in
        Hashtbl.replace counts cid (1 + Option.value ~default:0 (Hashtbl.find_opt counts cid));
        Container.charge_cpu c ~kernel:false slice;
        policy.Sched.Policy.charge ~container:c ~now slice
    | None -> ()
  done;
  fun container -> Option.value ~default:0 (Hashtbl.find_opt counts (Container.id container))

let test_timeshare_equal_sharing () =
  let _, parent, leaves = setup_leaves 2 in
  ignore parent;
  let a = List.nth leaves 0 and b = List.nth leaves 1 in
  let policy = Sched.Timeshare.make () in
  let count = run_policy policy [ task_on a "a"; task_on b "b" ] ~slices:1000 in
  Alcotest.(check bool) "roughly equal" true (abs (count a - count b) < 50)

let test_timeshare_priority_weighting () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
  let hi = Container.create ~parent ~attrs:(ts 30) () in
  let lo = Container.create ~parent ~attrs:(ts 10) () in
  let policy = Sched.Timeshare.make () in
  let count = run_policy policy [ task_on hi "hi"; task_on lo "lo" ] ~slices:1000 in
  let ratio = float_of_int (count hi) /. float_of_int (max 1 (count lo)) in
  Alcotest.(check bool) "3:1 weighting" true (ratio > 2.5 && ratio < 3.5)

let test_timeshare_idle_class () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
  let regular = Container.create ~parent ~attrs:(ts 10) () in
  let idle = Container.create ~parent ~attrs:(ts 0) () in
  let policy = Sched.Timeshare.make () in
  let count = run_policy policy [ task_on regular "r"; task_on idle "i" ] ~slices:200 in
  Alcotest.(check int) "idle starved while regular runnable" 0 (count idle);
  Alcotest.(check int) "regular takes all" 200 (count regular)

let test_timeshare_idle_runs_alone () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
  let idle = Container.create ~parent ~attrs:(ts 0) () in
  let policy = Sched.Timeshare.make () in
  let count = run_policy policy [ task_on idle "i" ] ~slices:10 in
  Alcotest.(check int) "idle class runs when alone" 10 (count idle)

let test_multilevel_fixed_shares () =
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~attrs:(fixed 0.7) () in
  let b = Container.create ~parent:root ~attrs:(fixed 0.3) () in
  let policy = Sched.Multilevel.make ~root () in
  let count = run_policy policy [ task_on a "a"; task_on b "b" ] ~slices:1000 in
  Alcotest.(check bool) "70/30 split" true (abs (count a - 700) < 30 && abs (count b - 300) < 30)

let test_multilevel_hierarchy () =
  let root = Container.create_root () in
  let left = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let right = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let l1 = Container.create ~parent:left ~attrs:(ts 10) () in
  let l2 = Container.create ~parent:left ~attrs:(ts 10) () in
  let r1 = Container.create ~parent:right ~attrs:(ts 10) () in
  let policy = Sched.Multilevel.make ~root () in
  let count =
    run_policy policy [ task_on l1 "l1"; task_on l2 "l2"; task_on r1 "r1" ] ~slices:1000
  in
  Alcotest.(check bool) "r1 gets its parent's whole half" true (abs (count r1 - 500) < 40);
  Alcotest.(check bool) "l1/l2 split the other half" true
    (abs (count l1 - 250) < 40 && abs (count l2 - 250) < 40)

let test_multilevel_work_conserving () =
  let root = Container.create_root () in
  let a = Container.create ~parent:root ~attrs:(fixed 0.9) () in
  let b = Container.create ~parent:root ~attrs:(fixed 0.1) () in
  ignore a;
  let policy = Sched.Multilevel.make ~root () in
  (* Only [b] has work: it gets the whole CPU despite its 10% guarantee. *)
  let count = run_policy policy [ task_on b "b" ] ~slices:100 in
  Alcotest.(check int) "work conserving" 100 (count b)

let test_multilevel_cpu_limit () =
  let root = Container.create_root () in
  let capped =
    Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:0.3 ~cpu_limit:0.3 ()) ()
  in
  let free = Container.create ~parent:root ~attrs:(ts 10) () in
  let policy = Sched.Multilevel.make ~window:(Simtime.ms 100) ~root () in
  let count = run_policy policy [ task_on capped "c"; task_on free "f" ] ~slices:1000 in
  Alcotest.(check bool) "cap enforced" true (abs (count capped - 300) < 40)

let test_multilevel_limit_leaves_cpu_idle () =
  let root = Container.create_root () in
  let capped =
    Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:0.2 ~cpu_limit:0.2 ()) ()
  in
  let policy = Sched.Multilevel.make ~window:(Simtime.ms 100) ~root () in
  let count = run_policy policy [ task_on capped "c" ] ~slices:1000 in
  (* Even alone, a hard limit caps consumption (20 of each 100 slices). *)
  Alcotest.(check bool) "throttled alone" true (count capped <= 220);
  (* Mid-window on a freshly throttled rig, pick yields nothing and
     next_release points at the next window boundary. *)
  let root3 = Container.create_root () in
  let capped3 =
    Container.create ~parent:root3 ~attrs:(Attrs.fixed_share ~share:0.2 ~cpu_limit:0.2 ()) ()
  in
  let policy3 = Sched.Multilevel.make ~window:(Simtime.ms 100) ~root:root3 () in
  let count3 = run_policy policy3 [ task_on capped3 "c3" ] ~slices:50 in
  Alcotest.(check bool) "20 slices then throttled" true (count3 capped3 <= 22);
  (match policy3.Sched.Policy.pick ~now:(Simtime.of_ns 50_000_000) with
  | Some _ -> Alcotest.fail "should be throttled mid-window"
  | None -> ());
  (match policy3.Sched.Policy.next_release ~now:(Simtime.of_ns 50_000_000) with
  | Some t -> Alcotest.(check int) "next window boundary" 100_000_000 (Simtime.to_ns t)
  | None -> Alcotest.fail "release not scheduled")

let test_multilevel_idle_class () =
  let root = Container.create_root () in
  let regular = Container.create ~parent:root ~attrs:(ts 10) () in
  let idle = Container.create ~parent:root ~attrs:(ts 0) () in
  let policy = Sched.Multilevel.make ~root () in
  let count = run_policy policy [ task_on regular "r"; task_on idle "i" ] ~slices:100 in
  Alcotest.(check int) "idle starved" 0 (count idle);
  (* A fresh rig where only the idle-class container has work. *)
  let root2 = Container.create_root () in
  let idle2 = Container.create ~parent:root2 ~attrs:(ts 0) () in
  let policy2 = Sched.Multilevel.make ~root:root2 () in
  let count2 = run_policy policy2 [ task_on idle2 "i2" ] ~slices:10 in
  Alcotest.(check int) "idle alone runs" 10 (count2 idle2)

let test_lottery_proportional () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
  let hi = Container.create ~parent ~attrs:(ts 30) () in
  let lo = Container.create ~parent ~attrs:(ts 10) () in
  let policy = Sched.Lottery.make ~rng:(Engine.Rng.create ~seed:99) () in
  let count = run_policy policy [ task_on hi "hi"; task_on lo "lo" ] ~slices:4000 in
  let ratio = float_of_int (count hi) /. float_of_int (max 1 (count lo)) in
  Alcotest.(check bool) "about 3:1" true (ratio > 2.4 && ratio < 3.8)

let test_stride_proportional () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
  let hi = Container.create ~parent ~attrs:(ts 30) () in
  let lo = Container.create ~parent ~attrs:(ts 10) () in
  let policy = Sched.Stride.make () in
  let count = run_policy policy [ task_on hi "hi"; task_on lo "lo" ] ~slices:1000 in
  Alcotest.(check bool) "exactly 3:1 (deterministic)" true
    (abs (count hi - 750) <= 10 && abs (count lo - 250) <= 10)

let test_timeshare_combined_scheduler_binding () =
  (* A thread multiplexed over a heavy and a light container is scheduled
     by the combined usage of its scheduler-binding set (§4.3): even when
     currently bound to a fresh container, its history counts against it. *)
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
  let heavy = Container.create ~parent ~name:"heavy" ~attrs:(ts 10) () in
  let fresh_a = Container.create ~parent ~name:"fresh-a" ~attrs:(ts 10) () in
  let fresh_b = Container.create ~parent ~name:"fresh-b" ~attrs:(ts 10) () in
  let policy = Sched.Timeshare.make () in
  (* The multiplexed task historically served [heavy]... *)
  let mux_binding = Rescont.Binding.create ~now:Simtime.zero heavy in
  let now = Simtime.of_ns 1_000 in
  policy.Sched.Policy.charge ~container:heavy ~now (Simtime.ms 50);
  (* ...then rebinds to a fresh container, keeping heavy in its set. *)
  Rescont.Binding.set_resource_binding mux_binding ~now fresh_a;
  let mux = Task.create ~name:"mux" mux_binding in
  let clean = task_on fresh_b "clean" in
  policy.Sched.Policy.enqueue mux;
  policy.Sched.Policy.enqueue clean;
  (match policy.Sched.Policy.pick ~now with
  | Some picked ->
      Alcotest.(check string) "clean task wins over multiplexed history" "clean"
        picked.Task.name
  | None -> Alcotest.fail "nothing picked");
  (* After an explicit scheduler-binding reset, history is forgiven. *)
  Rescont.Binding.reset_scheduler_binding mux_binding ~now;
  (match policy.Sched.Policy.pick ~now with
  | Some picked ->
      (* Both are now clean; the winner is simply deterministic. *)
      Alcotest.(check bool) "pick still works" true
        (picked.Task.name = "clean" || picked.Task.name = "mux")
  | None -> Alcotest.fail "nothing picked after reset")

let test_policies_empty_pick () =
  let root = Container.create_root () in
  List.iter
    (fun policy ->
      Alcotest.(check bool)
        (policy.Sched.Policy.name ^ " empty pick")
        true
        (policy.Sched.Policy.pick ~now:Simtime.zero = None))
    [
      Sched.Timeshare.make ();
      Sched.Multilevel.make ~root ();
      Sched.Lottery.make ~rng:(Engine.Rng.create ~seed:1) ();
      Sched.Stride.make ();
    ]

let test_round_robin_within_container () =
  let _, _, leaves = setup_leaves 1 in
  let a = List.hd leaves in
  let t1 = task_on a "t1" and t2 = task_on a "t2" in
  let policy = Sched.Timeshare.make () in
  policy.Sched.Policy.enqueue t1;
  policy.Sched.Policy.enqueue t2;
  let first = policy.Sched.Policy.pick ~now:Simtime.zero in
  policy.Sched.Policy.charge ~container:a ~now:Simtime.zero (Simtime.ms 1);
  let second = policy.Sched.Policy.pick ~now:(Simtime.of_ns 1) in
  Alcotest.(check bool) "alternation" true
    (match (first, second) with
    | Some x, Some y -> not (Task.equal x y)
    | _ -> false)

(* Property: for any valid fixed-share split over busy containers, the
   multilevel scheduler delivers shares proportional to the split. *)
let prop_multilevel_proportional =
  QCheck2.Test.make ~name:"multilevel respects random fixed shares" ~count:30
    QCheck2.Gen.(list_size (int_range 2 5) (int_range 1 10))
    (fun weights ->
      let total = float_of_int (List.fold_left ( + ) 0 weights) in
      let shares = List.map (fun w -> float_of_int w /. total) weights in
      let root = Container.create_root () in
      let containers =
        List.map (fun share -> Container.create ~parent:root ~attrs:(fixed share) ()) shares
      in
      let policy = Sched.Multilevel.make ~root () in
      let slices = 2000 in
      let count = run_policy policy (List.map (fun c -> task_on c "t") containers) ~slices in
      List.for_all2
        (fun c share ->
          let got = float_of_int (count c) /. float_of_int slices in
          Float.abs (got -. share) < 0.05)
        containers shares)

(* Property: the stride scheduler's allocation error never exceeds one
   slice per container (the classic stride bound, loosely checked). *)
let prop_stride_accuracy =
  QCheck2.Test.make ~name:"stride allocation accuracy" ~count:30
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 20))
    (fun (wa, wb) ->
      let root = Container.create_root () in
      let parent = Container.create ~parent:root ~attrs:(fixed 1.0) () in
      let a = Container.create ~parent ~attrs:(ts wa) () in
      let b = Container.create ~parent ~attrs:(ts wb) () in
      let policy = Sched.Stride.make () in
      let slices = 500 in
      let count = run_policy policy [ task_on a "a"; task_on b "b" ] ~slices in
      let expect_a = float_of_int (slices * wa) /. float_of_int (wa + wb) in
      Float.abs (float_of_int (count a) -. expect_a) <= 3.)

(* Property: in a random two-level fixed-share hierarchy with every leaf
   busy, each leaf's share is the product of shares on its path. *)
let prop_multilevel_hierarchy_product =
  QCheck2.Test.make ~name:"nested shares multiply" ~count:20
    QCheck2.Gen.(pair (int_range 1 5) (int_range 1 5))
    (fun (wa, wb) ->
      let total = float_of_int (wa + wb) in
      let sa = float_of_int wa /. total and sb = float_of_int wb /. total in
      let root = Container.create_root () in
      let a = Container.create ~parent:root ~attrs:(fixed sa) () in
      let b = Container.create ~parent:root ~attrs:(fixed sb) () in
      let a1 = Container.create ~parent:a ~attrs:(fixed 0.5) () in
      let a2 = Container.create ~parent:a ~attrs:(fixed 0.5) () in
      let b1 = Container.create ~parent:b ~attrs:(fixed 1.0) () in
      let policy = Sched.Multilevel.make ~root () in
      let slices = 2000 in
      let count =
        run_policy policy
          [ task_on a1 "a1"; task_on a2 "a2"; task_on b1 "b1" ]
          ~slices
      in
      let close c expected =
        Float.abs ((float_of_int (count c) /. float_of_int slices) -. expected) < 0.06
      in
      close a1 (sa /. 2.) && close a2 (sa /. 2.) && close b1 sb
      && Float.abs (Container.guaranteed_fraction a1 -. (sa /. 2.)) < 1e-9)

let test_runq_lazy_reenqueue () =
  (* Dequeue-then-re-enqueue must not resurrect the stale queue entry:
     the re-enqueued task goes to the back, and front order stays FIFO. *)
  let _, _, leaves = setup_leaves 1 in
  let a = List.hd leaves in
  let q = Runq.create () in
  let t1 = task_on a "t1" and t2 = task_on a "t2" in
  Runq.enqueue q t1;
  Runq.enqueue q t2;
  Runq.dequeue q t1;
  Runq.enqueue q t1;
  let front () = match Runq.front q a with Some t -> t.Task.name | None -> "-" in
  Alcotest.(check string) "t2 now first" "t2" (front ());
  Runq.rotate q a;
  Alcotest.(check string) "t1 behind it" "t1" (front ());
  Runq.rotate q a;
  Alcotest.(check string) "back to t2" "t2" (front ());
  Alcotest.(check int) "count" 2 (Runq.count q);
  (* Heavy churn triggers in-place queue compaction without losing order. *)
  for _ = 1 to 100 do
    Runq.dequeue q t2;
    Runq.enqueue q t2
  done;
  Alcotest.(check string) "t1 survived churn in front" "t1" (front ());
  Alcotest.(check int) "count stable" 2 (Runq.count q)

(* {1 Multilevel vs. its executable specification}

   [Sched.Multilevel] is an incremental rewrite of [Sched.Multilevel_ref];
   this property drives both instances over the same randomized workload —
   enqueues, dequeues, re-parenting, picks and charges — and demands that
   every pick returns the same task. *)
let prop_multilevel_matches_reference =
  QCheck2.Test.make ~name:"multilevel matches reference pick-for-pick" ~count:25
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Engine.Rng.create ~seed in
      let root = Container.create_root () in
      let ngroups = 2 + Engine.Rng.int rng 3 in
      let groups =
        List.init ngroups (fun i ->
            let cpu_limit = if Engine.Rng.int rng 4 = 0 then Some 0.4 else None in
            Container.create ~parent:root
              ~name:(Printf.sprintf "g%d" i)
              ~attrs:(Attrs.fixed_share ~share:(1. /. float_of_int (ngroups + 1)) ?cpu_limit ())
              ())
      in
      let prio () = List.nth [ 0; 1; 5; 10; 30 ] (Engine.Rng.int rng 5) in
      let leaves =
        List.concat_map
          (fun g ->
            List.init
              (1 + Engine.Rng.int rng 3)
              (fun i ->
                Container.create ~parent:g ~name:(Printf.sprintf "l%d" i)
                  ~attrs:(ts (prio ())) ()))
          groups
        @ List.init
            (1 + Engine.Rng.int rng 2)
            (fun i ->
              Container.create ~parent:root ~name:(Printf.sprintf "r%d" i)
                ~attrs:(ts (prio ())) ())
      in
      let tasks =
        List.concat_map
          (fun leaf ->
            List.init (1 + Engine.Rng.int rng 2) (fun i ->
                task_on leaf (Printf.sprintf "%s.t%d" (Container.name leaf) i)))
          leaves
      in
      let opt = Sched.Multilevel.make ~root () in
      let refp = Sched.Multilevel_ref.make ~root () in
      let leaves_arr = Array.of_list leaves in
      let groups_arr = Array.of_list groups in
      let tasks_arr = Array.of_list tasks in
      List.iter
        (fun t ->
          opt.Sched.Policy.enqueue t;
          refp.Sched.Policy.enqueue t)
        tasks;
      let now = ref Simtime.zero in
      let ok = ref true in
      for step = 1 to 400 do
        now := Simtime.add !now (Simtime.ns (100_000 + Engine.Rng.int rng 2_000_000));
        (match Engine.Rng.int rng 10 with
        | 0 ->
            let t = tasks_arr.(Engine.Rng.int rng (Array.length tasks_arr)) in
            opt.Sched.Policy.dequeue t;
            refp.Sched.Policy.dequeue t
        | 1 ->
            let t = tasks_arr.(Engine.Rng.int rng (Array.length tasks_arr)) in
            opt.Sched.Policy.enqueue t;
            refp.Sched.Policy.enqueue t
        | 2 -> (
            (* Re-shape the tree under both schedulers' feet. *)
            let leaf = leaves_arr.(Engine.Rng.int rng (Array.length leaves_arr)) in
            let g = groups_arr.(Engine.Rng.int rng (Array.length groups_arr)) in
            try Container.set_parent leaf (Some g) with Container.Error _ -> ())
        | _ ->
            let po = opt.Sched.Policy.pick ~now:!now in
            let pr = refp.Sched.Policy.pick ~now:!now in
            (match (po, pr) with
            | None, None -> ()
            | Some a, Some b when Task.equal a b -> ()
            | _ ->
                let name = function Some t -> t.Task.name | None -> "<none>" in
                ok := false;
                Alcotest.failf "step %d: optimized picked %s, reference picked %s" step
                  (name po) (name pr));
            (match po with
            | Some task ->
                let c = Task.container task in
                let span = Simtime.ns (10_000 + Engine.Rng.int rng 500_000) in
                opt.Sched.Policy.charge ~container:c ~now:!now span;
                refp.Sched.Policy.charge ~container:c ~now:!now span
            | None -> ()))
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "decay accumulates" `Quick test_decay_accumulates;
    Alcotest.test_case "decay halves at tau" `Quick test_decay_halves;
    Alcotest.test_case "decay monotone" `Quick test_decay_monotone_without_charges;
    Alcotest.test_case "runq basics" `Quick test_runq_basic;
    Alcotest.test_case "runq requeue" `Quick test_runq_requeue_moves;
    Alcotest.test_case "runq subtree" `Quick test_runq_subtree;
    Alcotest.test_case "runq lazy re-enqueue" `Quick test_runq_lazy_reenqueue;
    Alcotest.test_case "timeshare equal sharing" `Quick test_timeshare_equal_sharing;
    Alcotest.test_case "timeshare priority weights" `Quick test_timeshare_priority_weighting;
    Alcotest.test_case "timeshare idle class" `Quick test_timeshare_idle_class;
    Alcotest.test_case "timeshare idle alone" `Quick test_timeshare_idle_runs_alone;
    Alcotest.test_case "multilevel fixed shares" `Quick test_multilevel_fixed_shares;
    Alcotest.test_case "multilevel hierarchy" `Quick test_multilevel_hierarchy;
    Alcotest.test_case "multilevel work conserving" `Quick test_multilevel_work_conserving;
    Alcotest.test_case "multilevel cpu limit" `Quick test_multilevel_cpu_limit;
    Alcotest.test_case "multilevel limit idles cpu" `Quick test_multilevel_limit_leaves_cpu_idle;
    Alcotest.test_case "multilevel idle class" `Quick test_multilevel_idle_class;
    Alcotest.test_case "lottery proportional" `Quick test_lottery_proportional;
    Alcotest.test_case "stride proportional" `Quick test_stride_proportional;
    Alcotest.test_case "combined scheduler binding" `Quick
      test_timeshare_combined_scheduler_binding;
    Alcotest.test_case "empty pick" `Quick test_policies_empty_pick;
    Alcotest.test_case "round robin within container" `Quick test_round_robin_within_container;
    QCheck_alcotest.to_alcotest prop_multilevel_proportional;
    QCheck_alcotest.to_alcotest prop_multilevel_hierarchy_product;
    QCheck_alcotest.to_alcotest prop_stride_accuracy;
    QCheck_alcotest.to_alcotest prop_multilevel_matches_reference;
  ]
