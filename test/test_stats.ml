(* Tests for Engine.Stats. *)

module Stats = Engine.Stats
module Simtime = Engine.Simtime

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" 2.5 (Stats.Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 15. (Stats.Summary.total s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 1e-9)) "mean of empty" 0. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance of empty" 0. (Stats.Summary.variance s)

let test_summary_merge () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  let both = Stats.Summary.create () in
  List.iter
    (fun x ->
      Stats.Summary.add (if x < 4. then a else b) x;
      Stats.Summary.add both x)
    [ 1.; 2.; 3.; 4.; 5.; 6. ];
  let merged = Stats.Summary.merge a b in
  Alcotest.(check int) "count" (Stats.Summary.count both) (Stats.Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Stats.Summary.mean both) (Stats.Summary.mean merged);
  Alcotest.(check (float 1e-6))
    "variance" (Stats.Summary.variance both) (Stats.Summary.variance merged)

let test_summary_merge_empty () =
  let a = Stats.Summary.create () and b = Stats.Summary.create () in
  Stats.Summary.add b 7.;
  let merged = Stats.Summary.merge a b in
  Alcotest.(check int) "count" 1 (Stats.Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" 7. (Stats.Summary.mean merged)

let test_reservoir_small () =
  let r = Stats.Reservoir.create ~capacity:100 (Engine.Rng.create ~seed:1) in
  List.iter (Stats.Reservoir.add r) [ 10.; 20.; 30.; 40. ];
  Alcotest.(check (float 1e-9)) "median" 25. (Stats.Reservoir.median r);
  Alcotest.(check (float 1e-9)) "p0" 10. (Stats.Reservoir.percentile r 0.);
  Alcotest.(check (float 1e-9)) "p100" 40. (Stats.Reservoir.percentile r 1.)

let test_reservoir_overflow () =
  let r = Stats.Reservoir.create ~capacity:64 (Engine.Rng.create ~seed:2) in
  for i = 1 to 10_000 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check int) "count tracks stream" 10_000 (Stats.Reservoir.count r);
  let median = Stats.Reservoir.median r in
  (* The reservoir is a uniform sample: the median estimate should land
     roughly mid-stream. *)
  Alcotest.(check bool) "median plausible" true (median > 2_000. && median < 8_000.)

let test_reservoir_errors () =
  let r = Stats.Reservoir.create (Engine.Rng.create ~seed:3) in
  Alcotest.check_raises "empty" (Invalid_argument "Reservoir.percentile: empty") (fun () ->
      ignore (Stats.Reservoir.percentile r 0.5));
  Stats.Reservoir.add r 1.;
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Reservoir.percentile: fraction out of range") (fun () ->
      ignore (Stats.Reservoir.percentile r 1.5))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -5.; 25. ];
  let counts = Stats.Histogram.bucket_counts h in
  Alcotest.(check int) "total" 6 (Stats.Histogram.count h);
  Alcotest.(check int) "first bucket gets underflow" 2 counts.(0);
  Alcotest.(check int) "bucket 1" 2 counts.(1);
  Alcotest.(check int) "last bucket gets overflow" 2 counts.(9)

let test_rate () =
  let r = Stats.Rate.create () in
  Stats.Rate.mark r (Simtime.of_ns 100);
  Stats.Rate.mark r ~weight:2 (Simtime.of_ns 200);
  Stats.Rate.mark r (Simtime.of_ns 1_000_000_000);
  Alcotest.(check int) "count" 4 (Stats.Rate.count r);
  Alcotest.(check (float 1e-9)) "rate over 2s" 2. (Stats.Rate.rate_over r (Simtime.sec 2));
  Alcotest.(check (float 1e-9)) "windowed"
    3_000_000.
    (Stats.Rate.rate_between r (Simtime.of_ns 0) (Simtime.of_ns 1_000))

(* Regression: [rate_over] used to divide the all-time mark count by the
   window span, ignoring timestamps entirely.  A 1-second window over marks
   ten seconds apart must only see the recent one. *)
let test_rate_window_aware () =
  let r = Stats.Rate.create () in
  Stats.Rate.mark r (Simtime.of_ns 0);
  Stats.Rate.mark r (Simtime.of_ns 10_000_000_000);
  Alcotest.(check int) "all-time count still 2" 2 (Stats.Rate.count r);
  Alcotest.(check (float 1e-9)) "1s window sees only the recent mark" 1.
    (Stats.Rate.rate_over r (Simtime.sec 1));
  Alcotest.(check (float 1e-9)) "wide window sees both" 0.1
    (Stats.Rate.rate_over r (Simtime.sec 20))

(* Regression: [marks] used to grow without bound.  The ring buffer keeps a
   fixed number of recent marks while the all-time count keeps counting. *)
let test_rate_bounded_memory () =
  let r = Stats.Rate.create ~capacity:8 () in
  for i = 1 to 100 do
    Stats.Rate.mark r (Simtime.of_ns (i * 1_000))
  done;
  Alcotest.(check int) "retention capped at capacity" 8 (Stats.Rate.retained r);
  Alcotest.(check int) "all-time count unaffected" 100 (Stats.Rate.count r);
  Alcotest.(check int) "overwritten marks counted" 92 (Stats.Rate.dropped r);
  (match Stats.Rate.covered_since r with
  | Some t -> Alcotest.(check int) "coverage starts at oldest retained" 93_000 (Simtime.to_ns t)
  | None -> Alcotest.fail "saturated ring must report partial coverage")

(* Regression: when marks arrive faster than capacity-per-window — the
   window "saturates" the ring — [rate_over] used to divide the retained
   weight by the full window, flattening the reported rate at
   capacity/window (8 marks/s here) no matter how fast marks really came.
   Marks 1µs apart are a true rate of 10^6/s; the saturated query must
   report the rate over the span the ring covers, not the floor. *)
let test_rate_window_saturation () =
  let r = Stats.Rate.create ~capacity:8 () in
  for i = 1 to 100 do
    Stats.Rate.mark r (Simtime.of_ns (i * 1_000))
  done;
  Alcotest.(check (float 1.)) "saturated 1s window reports the true rate" 1e6
    (Stats.Rate.rate_over r (Simtime.sec 1));
  (* A window the ring fully covers is still computed exactly: the last
     5µs hold marks 96..100. *)
  Alcotest.(check (float 1e-6)) "covered window stays exact" 1e6
    (Stats.Rate.rate_over r (Simtime.us 5));
  (* Unsaturated ring: behaviour unchanged even for huge windows. *)
  let fresh = Stats.Rate.create ~capacity:8 () in
  Stats.Rate.mark fresh (Simtime.of_ns 0);
  Stats.Rate.mark fresh (Simtime.of_ns 10_000_000_000);
  Alcotest.(check (float 1e-9)) "unsaturated wide window unchanged" 0.1
    (Stats.Rate.rate_over fresh (Simtime.sec 20))

(* The S-client surfaces ring saturation instead of silently undercounting
   completions in a measurement window. *)
let test_rate_covered_since_none () =
  let r = Stats.Rate.create ~capacity:8 () in
  Stats.Rate.mark r (Simtime.of_ns 5);
  Alcotest.(check bool) "no drops -> full coverage" true (Stats.Rate.covered_since r = None);
  Alcotest.(check int) "no drops counted" 0 (Stats.Rate.dropped r)

let prop_summary_mean_bounded =
  QCheck2.Test.make ~name:"summary mean within [min,max]" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-6 && m <= Stats.Summary.max s +. 1e-6)

let suite =
  [
    Alcotest.test_case "summary basic" `Quick test_summary_basic;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "summary merge empty" `Quick test_summary_merge_empty;
    Alcotest.test_case "reservoir small" `Quick test_reservoir_small;
    Alcotest.test_case "reservoir overflow" `Quick test_reservoir_overflow;
    Alcotest.test_case "reservoir errors" `Quick test_reservoir_errors;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "rate" `Quick test_rate;
    Alcotest.test_case "rate window aware" `Quick test_rate_window_aware;
    Alcotest.test_case "rate bounded memory" `Quick test_rate_bounded_memory;
    Alcotest.test_case "rate window saturation" `Quick test_rate_window_saturation;
    Alcotest.test_case "rate coverage accessors" `Quick test_rate_covered_since_none;
    QCheck_alcotest.to_alcotest prop_summary_mean_bounded;
  ]
