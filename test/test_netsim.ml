(* Tests for Netsim: addresses, filters, payloads, sockets and the stack. *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Machine = Procsim.Machine
module Process = Procsim.Process
module Ipaddr = Netsim.Ipaddr
module Filter = Netsim.Filter
module Payload = Netsim.Payload
module Socket = Netsim.Socket
module Stack = Netsim.Stack

(* {1 Ipaddr} *)

let test_ipaddr_roundtrip () =
  let a = Ipaddr.v 10 1 2 3 in
  Alcotest.(check string) "to_string" "10.1.2.3" (Ipaddr.to_string a);
  Alcotest.(check bool) "of_string" true (Ipaddr.equal a (Ipaddr.of_string "10.1.2.3"));
  Alcotest.(check bool) "inequality" false (Ipaddr.equal a (Ipaddr.v 10 1 2 4))

let test_ipaddr_invalid () =
  let invalid s = try ignore (Ipaddr.of_string s); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "too few octets" true (invalid "10.1.2");
  Alcotest.(check bool) "garbage" true (invalid "a.b.c.d");
  Alcotest.(check bool) "octet range" true
    (try ignore (Ipaddr.v 256 0 0 0); false with Invalid_argument _ -> true)

(* {1 Flow hash sign}

   The avalanche mix behind RSS steering multiplies by two odd constants;
   for src_port >= 23 the products overflow into OCaml's 63-bit sign bit,
   so a mix without a final mask is negative for most real ports — and
   [mod] of a negative hash yields a negative CPU / ring index.  The fix
   masks as the LAST step of [Stack.flow_hash]; this test drives the hash
   with inputs whose unmasked mix is provably negative and pins
   non-negativity plus steering range. *)

let test_flow_hash_nonnegative () =
  (* Replicate the mix WITHOUT the final mask to certify the inputs are
     adversarial (sign bit set), then check the exported hash. *)
  let unmasked src port =
    let h = Ipaddr.hash src lxor ((port + 1) * 0x9E3779B1) in
    let h = h lxor (h lsr 16) in
    let h = h * 0x45D9F3B in
    h lxor (h lsr 13)
  in
  let adversarial = ref 0 in
  let cases = ref 0 in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let src = Ipaddr.v 10 a b 7 in
      List.iter
        (fun port ->
          incr cases;
          if unmasked src port < 0 then incr adversarial;
          let h = Stack.flow_hash src port in
          if h < 0 then
            Alcotest.failf "flow_hash %s:%d negative (%d)" (Ipaddr.to_string src) port h;
          List.iter
            (fun ncpus ->
              let cpu = h mod ncpus in
              if cpu < 0 || cpu >= ncpus then
                Alcotest.failf "steer %s:%d at %d cpus out of range (%d)"
                  (Ipaddr.to_string src) port ncpus cpu)
            [ 2; 3; 4; 7; 16 ])
        [ 0; 1; 22; 23; 80; 1024; 49152; 65535; 1 lsl 30; max_int lsr 8 ]
    done
  done;
  (* The grid must actually exercise the overflow: a large fraction of
     ports >= 23 set the sign bit in the unmasked mix. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d grid points have a negative unmasked mix" !adversarial !cases)
    true
    (!adversarial > !cases / 4)

let test_ipaddr_prefix () =
  let base = Ipaddr.v 192 168 66 0 in
  Alcotest.(check bool) "inside /24" true
    (Ipaddr.in_prefix (Ipaddr.v 192 168 66 200) ~template:base ~bits:24);
  Alcotest.(check bool) "outside /24" false
    (Ipaddr.in_prefix (Ipaddr.v 192 168 67 1) ~template:base ~bits:24);
  Alcotest.(check bool) "/0 matches all" true
    (Ipaddr.in_prefix (Ipaddr.v 8 8 8 8) ~template:base ~bits:0);
  Alcotest.(check bool) "/32 exact" false
    (Ipaddr.in_prefix (Ipaddr.v 192 168 66 1) ~template:base ~bits:32);
  Alcotest.(check bool) "high-bit addresses" true
    (Ipaddr.in_prefix (Ipaddr.v 224 0 0 5) ~template:(Ipaddr.v 224 0 0 0) ~bits:4)

let test_ipaddr_offset () =
  let base = Ipaddr.v 10 0 0 250 in
  Alcotest.(check string) "carries into next octet" "10.0.1.4"
    (Ipaddr.to_string (Ipaddr.offset base 10))

(* {1 Filter} *)

let test_filter_matching () =
  let flood = Filter.prefix ~template:(Ipaddr.v 192 168 66 0) ~bits:24 in
  Alcotest.(check bool) "prefix hit" true (Filter.matches flood (Ipaddr.v 192 168 66 9));
  Alcotest.(check bool) "prefix miss" false (Filter.matches flood (Ipaddr.v 10 0 0 1));
  Alcotest.(check bool) "any matches" true (Filter.matches Filter.any (Ipaddr.v 1 2 3 4));
  let host = Filter.host (Ipaddr.v 10 9 9 9) in
  Alcotest.(check bool) "host hit" true (Filter.matches host (Ipaddr.v 10 9 9 9));
  Alcotest.(check bool) "host miss" false (Filter.matches host (Ipaddr.v 10 9 9 8))

let test_filter_complement () =
  let flood = Filter.prefix ~template:(Ipaddr.v 192 168 66 0) ~bits:24 in
  let except = Filter.complement flood in
  Alcotest.(check bool) "complement inverts" true (Filter.matches except (Ipaddr.v 10 0 0 1));
  Alcotest.(check bool) "complement excludes" false
    (Filter.matches except (Ipaddr.v 192 168 66 1));
  Alcotest.(check bool) "double complement" true
    (Filter.matches (Filter.complement except) (Ipaddr.v 192 168 66 1))

let test_filter_specificity () =
  let any = Filter.any in
  let p24 = Filter.prefix ~template:(Ipaddr.v 10 0 0 0) ~bits:24 in
  let host = Filter.host (Ipaddr.v 10 0 0 1) in
  Alcotest.(check bool) "host > /24" true (Filter.specificity host > Filter.specificity p24);
  Alcotest.(check bool) "/24 > any" true (Filter.specificity p24 > Filter.specificity any);
  Alcotest.(check bool) "complement ranks below positive" true
    (Filter.specificity (Filter.complement p24) < Filter.specificity p24);
  let sorted = List.sort Filter.compare_specificity [ any; host; p24 ] in
  Alcotest.(check bool) "sort most specific first" true (List.hd sorted == host)

let prop_complement_is_negation =
  QCheck2.Test.make ~name:"complement is pointwise negation" ~count:300
    QCheck2.Gen.(pair (int_range 0 32) (pair (int_bound 255) (int_bound 255)))
    (fun (bits, (a, b)) ->
      let f = Filter.prefix ~template:(Ipaddr.v 192 168 0 0) ~bits in
      let addr = Ipaddr.v 192 a b 7 in
      Filter.matches (Filter.complement f) addr = not (Filter.matches f addr))

(* {1 Payload} *)

let test_payload () =
  let p = Payload.make ~tag:"x" ~bytes:3000 Simtime.zero in
  Alcotest.(check int) "packets" 3 (Payload.packet_count ~mtu:1460 p);
  Alcotest.(check int) "zero bytes still one packet" 1
    (Payload.packet_count ~mtu:1460 (Payload.make ~bytes:0 Simtime.zero));
  Alcotest.(check bool) "negative rejected" true
    (try ignore (Payload.make ~bytes:(-1) Simtime.zero); false
     with Invalid_argument _ -> true)

(* {1 Stack rig} *)

type rig = {
  sim : Sim.t;
  root : Container.t;
  machine : Machine.t;
  owner : Container.t;
  stack : Stack.t;
}

let make_rig mode =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Multilevel.make ~root () in
  let machine = Machine.create ~sim ~policy ~root () in
  let proc = Process.create machine ~name:"srv" () in
  let owner = Process.default_container proc in
  let stack = Stack.create ~machine ~mode ~owner () in
  { sim; root; machine; owner; stack }

let run rig span = Machine.run_until rig.machine (Simtime.add (Sim.now rig.sim) span)

let quiet_handlers = Socket.null_handlers

let connect_one ?(src = Ipaddr.v 10 0 0 1) ?(port = 80) rig ~on_established =
  Stack.connect rig.stack ~src ~port
    ~handlers:{ quiet_handlers with Socket.on_established }
    ()

let test_handshake_establishes () =
  List.iter
    (fun mode ->
      let rig = make_rig mode in
      let listen = Socket.make_listen ~port:80 () in
      Stack.add_listen rig.stack listen;
      let established = ref None in
      connect_one rig ~on_established:(fun conn -> established := Some conn);
      run rig (Simtime.ms 50);
      Alcotest.(check bool) "established" true (!established <> None);
      Alcotest.(check bool) "in accept queue" true (Socket.accept_ready listen);
      Alcotest.(check int) "stats" 1 (Stack.stats rig.stack).Stack.conns_established)
    [ Stack.Softirq; Stack.Lrp; Stack.Rc ]

let test_no_listener_refused () =
  let rig = make_rig Stack.Softirq in
  let refused = ref false in
  Stack.connect rig.stack ~src:(Ipaddr.v 10 0 0 1) ~port:81
    ~handlers:{ quiet_handlers with Socket.on_refused = (fun () -> refused := true) }
    ();
  run rig (Simtime.ms 10);
  Alcotest.(check bool) "refused" true !refused

let test_filter_demux_most_specific () =
  let rig = make_rig Stack.Rc in
  let special_src = Ipaddr.v 10 9 9 9 in
  let c_special = Container.create ~parent:rig.root ~name:"special" () in
  let l_special =
    Socket.make_listen ~port:80 ~filter:(Filter.host special_src) ~container:c_special ()
  in
  let l_any = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack l_any;
  Stack.add_listen rig.stack l_special;
  connect_one rig ~src:special_src ~on_established:(fun _ -> ());
  connect_one rig ~src:(Ipaddr.v 10 0 0 7) ~on_established:(fun _ -> ());
  run rig (Simtime.ms 50);
  Alcotest.(check bool) "special socket got its client" true (Socket.accept_ready l_special);
  Alcotest.(check bool) "any socket got the other" true (Socket.accept_ready l_any);
  (match Stack.accept rig.stack l_special with
  | Some conn -> Alcotest.(check bool) "right source" true (Ipaddr.equal conn.Socket.src special_src)
  | None -> Alcotest.fail "no conn on special listen")

let test_request_response_roundtrip () =
  let rig = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack listen;
  let response = ref None in
  Stack.connect rig.stack ~src:(Ipaddr.v 10 0 0 1) ~port:80
    ~handlers:
      {
        quiet_handlers with
        Socket.on_established =
          (fun conn ->
            Stack.client_send rig.stack conn
              (Payload.make ~tag:"req" ~bytes:200 (Sim.now rig.sim)));
        on_response = (fun _ p -> response := Some p.Payload.tag);
      }
    ();
  (* Server side: a thread accepting and echoing. *)
  ignore
    (Machine.spawn rig.machine ~name:"server" ~container:rig.owner (fun () ->
         let rec wait_conn () =
           match Stack.accept rig.stack listen with
           | Some conn -> conn
           | None ->
               Machine.sleep (Simtime.ms 1);
               wait_conn ()
         in
         let conn = wait_conn () in
         let rec wait_req () =
           match Stack.recv rig.stack conn with
           | Some p -> p
           | None ->
               Machine.sleep (Simtime.ms 1);
               wait_req ()
         in
         let _req = wait_req () in
         Stack.send rig.stack conn (Payload.make ~tag:"resp" ~bytes:1024 (Sim.now rig.sim));
         Stack.close rig.stack conn));
  run rig (Simtime.ms 100);
  Alcotest.(check (option string)) "response delivered" (Some "resp") !response

let test_client_close_surfaces () =
  let rig = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack listen;
  let the_conn = ref None in
  connect_one rig ~on_established:(fun conn -> the_conn := Some conn);
  run rig (Simtime.ms 10);
  (match !the_conn with
  | Some conn ->
      Stack.client_close rig.stack conn;
      run rig (Simtime.ms 10);
      Alcotest.(check bool) "close_wait" true (conn.Socket.state = Socket.Close_wait);
      Alcotest.(check bool) "readable for app" true (Socket.readable conn)
  | None -> Alcotest.fail "no conn")

let test_syn_queue_eviction () =
  let rig = make_rig Stack.Softirq in
  let listen = Socket.make_listen ~port:80 ~syn_backlog:4 () in
  Stack.add_listen rig.stack listen;
  for _ = 1 to 10 do
    Stack.inject_syn rig.stack ~src:(Ipaddr.v 192 168 66 1) ~port:80
  done;
  run rig (Simtime.ms 10);
  Alcotest.(check bool) "drops counted" true ((Stack.stats rig.stack).Stack.syn_queue_drops >= 6);
  Alcotest.(check bool) "queue bounded" true (Queue.length listen.Socket.syn_queue <= 4)

let test_syn_drop_notification () =
  let rig = make_rig Stack.Softirq in
  let listen = Socket.make_listen ~port:80 ~syn_backlog:2 () in
  Stack.add_listen rig.stack listen;
  let reported = ref [] in
  Stack.set_on_syn_drop rig.stack (fun _l src -> reported := Ipaddr.to_string src :: !reported);
  for i = 1 to 5 do
    Stack.inject_syn rig.stack ~src:(Ipaddr.v 192 168 66 i) ~port:80
  done;
  run rig (Simtime.ms 10);
  Alcotest.(check bool) "application notified of drops (§5.7)" true (List.length !reported >= 3)

let test_early_discard_in_rc () =
  let rig = make_rig Stack.Rc in
  let idle = Container.create ~parent:rig.root ~name:"idle" ~attrs:(Attrs.timeshare ~priority:0 ()) () in
  let listen = Socket.make_listen ~port:80 ~container:idle () in
  Stack.add_listen rig.stack listen;
  (* Keep the machine busy so idle-class packets are never processed. *)
  let busy = Container.create ~parent:rig.root ~name:"busy" () in
  ignore
    (Machine.spawn rig.machine ~name:"burner" ~container:busy (fun () ->
         let rec burn () =
           Machine.cpu (Simtime.ms 1);
           burn ()
         in
         burn ()));
  for _ = 1 to 200 do
    Stack.inject_syn rig.stack ~src:(Ipaddr.v 192 168 66 1) ~port:80
  done;
  run rig (Simtime.ms 20);
  let stats = Stack.stats rig.stack in
  Alcotest.(check bool) "early discards happened" true (stats.Stack.rx_queue_drops > 100);
  (* The flood consumed essentially no CPU beyond interrupts: the burner
     got all but the interrupt overhead. *)
  let busy_cpu = Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.usage busy)) in
  Alcotest.(check bool) "burner kept the CPU" true (busy_cpu > 18_000_000)

let test_idle_class_processed_when_idle () =
  let rig = make_rig Stack.Rc in
  let idle = Container.create ~parent:rig.root ~name:"idle" ~attrs:(Attrs.timeshare ~priority:0 ()) () in
  let listen = Socket.make_listen ~port:80 ~container:idle () in
  Stack.add_listen rig.stack listen;
  Stack.inject_syn rig.stack ~src:(Ipaddr.v 192 168 66 1) ~port:80;
  run rig (Simtime.ms 50);
  (* Machine is otherwise idle: the SYN is eventually processed. *)
  Alcotest.(check bool) "processed at idle" true
    ((Stack.stats rig.stack).Stack.packets_processed >= 1)

let test_softirq_steals_from_current () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Timeshare.make () in
  let machine = Machine.create ~sim ~policy ~root () in
  let proc = Process.create machine ~name:"srv" () in
  let owner = Process.default_container proc in
  let stack =
    Stack.create ~machine ~mode:Stack.Softirq ~softirq_charge:Stack.Charge_current ~owner ()
  in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen stack listen;
  let victim = Container.create ~parent:root ~name:"victim" ~attrs:(Attrs.timeshare ()) () in
  let finished = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"v" ~container:victim (fun () ->
         Machine.cpu (Simtime.ms 1);
         finished := Sim.now sim));
  ignore (Sim.at sim (Simtime.of_ns 200_000) (fun () ->
      Stack.inject_syn stack ~src:(Ipaddr.v 1 2 3 4) ~port:80));
  Machine.run_until machine (Simtime.of_ns 50_000_000);
  (* SYN processing (~98.9us) stole wall time from the victim's slice and
     was charged to it. *)
  Alcotest.(check bool) "slice stretched" true (Simtime.to_ns !finished > 1_050_000);
  Alcotest.(check bool) "victim charged" true
    (Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.usage victim)) > 1_050_000)

let test_socket_buffer_memory () =
  let rig = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack listen;
  let the_conn = ref None in
  connect_one rig ~on_established:(fun conn -> the_conn := Some conn);
  run rig (Simtime.ms 10);
  let conn = match !the_conn with Some c -> c | None -> Alcotest.fail "no conn" in
  Stack.client_send rig.stack conn (Payload.make ~tag:"r" ~bytes:500 (Sim.now rig.sim));
  run rig (Simtime.ms 10);
  (* The buffered request occupies the owner's socket-buffer memory until
     the application reads it (§4.4). *)
  Alcotest.(check int) "memory charged while buffered" 500
    (Rescont.Usage.memory_bytes (Container.usage rig.owner));
  ignore (Stack.recv rig.stack conn);
  Alcotest.(check int) "memory released on read" 0
    (Rescont.Usage.memory_bytes (Container.usage rig.owner))

let test_memory_limit_drops () =
  let rig = make_rig Stack.Rc in
  let limited =
    Container.create ~parent:rig.root ~name:"limited"
      ~attrs:(Attrs.timeshare ~memory_limit:1_000 ())
      ()
  in
  let listen = Socket.make_listen ~port:80 ~container:limited () in
  Stack.add_listen rig.stack listen;
  let the_conn = ref None in
  connect_one rig ~on_established:(fun conn -> the_conn := Some conn);
  run rig (Simtime.ms 10);
  let conn = match !the_conn with Some c -> c | None -> Alcotest.fail "no conn" in
  Socket.bind_container conn limited;
  (* Nobody reads: the first 500B message buffers; the second would exceed
     the 1000B limit and is dropped. *)
  Stack.client_send rig.stack conn (Payload.make ~tag:"a" ~bytes:600 (Sim.now rig.sim));
  run rig (Simtime.ms 10);
  Stack.client_send rig.stack conn (Payload.make ~tag:"b" ~bytes:600 (Sim.now rig.sim));
  run rig (Simtime.ms 10);
  Alcotest.(check int) "only first buffered" 600
    (Rescont.Usage.memory_bytes (Container.usage limited));
  Alcotest.(check int) "drop counted" 1 (Stack.stats rig.stack).Stack.rx_queue_drops;
  (* Reading frees the budget; a retry then fits. *)
  ignore (Stack.recv rig.stack conn);
  Stack.client_send rig.stack conn (Payload.make ~tag:"c" ~bytes:600 (Sim.now rig.sim));
  run rig (Simtime.ms 10);
  Alcotest.(check int) "retry accepted after read" 600
    (Rescont.Usage.memory_bytes (Container.usage limited))

(* Regression: closing a connection with unread buffered data must credit
   the buffered bytes back, or the owning container's memory accounting
   leaks a little with every abandoned connection. *)
let test_close_refunds_buffered_rx () =
  let rig = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack listen;
  let the_conn = ref None in
  connect_one rig ~on_established:(fun conn -> the_conn := Some conn);
  run rig (Simtime.ms 10);
  let conn = match !the_conn with Some c -> c | None -> Alcotest.fail "no conn" in
  Stack.client_send rig.stack conn (Payload.make ~tag:"r" ~bytes:700 (Sim.now rig.sim));
  run rig (Simtime.ms 10);
  Alcotest.(check int) "memory charged while buffered" 700
    (Rescont.Usage.memory_bytes (Container.usage rig.owner));
  (* Server closes without ever reading the request. *)
  ignore
    (Machine.spawn rig.machine ~name:"closer" ~container:rig.owner (fun () ->
         Stack.close rig.stack conn));
  run rig (Simtime.ms 10);
  Alcotest.(check int) "buffered rx refunded on close" 0
    (Rescont.Usage.memory_bytes (Container.usage rig.owner));
  Alcotest.(check int) "whole subtree balances" 0
    (Rescont.Usage.memory_bytes (Container.subtree_usage rig.root))

(* Regression: SYN-queue entries that die by timeout (not eviction) must be
   counted as drops and reported through on_syn_drop. *)
let test_syn_timeout_counted () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root () in
  let proc = Process.create machine ~name:"srv" () in
  let owner = Process.default_container proc in
  let stack =
    Stack.create ~machine ~mode:Stack.Softirq ~syn_timeout:(Simtime.ms 100) ~owner ()
  in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen stack listen;
  let reported = ref [] in
  Stack.set_on_syn_drop stack (fun _l src -> reported := Ipaddr.to_string src :: !reported);
  Stack.inject_syn stack ~src:(Ipaddr.v 192 168 66 1) ~port:80;
  Machine.run_until machine (Simtime.of_ns 200_000_000);
  (* Expired entries are reaped lazily, on the next SYN for the listener. *)
  Alcotest.(check int) "nothing dropped yet" 0 (Stack.stats stack).Stack.syn_queue_drops;
  Stack.inject_syn stack ~src:(Ipaddr.v 10 0 0 2) ~port:80;
  Machine.run_until machine (Simtime.of_ns 400_000_000);
  Alcotest.(check int) "timeout counted as stack drop" 1
    (Stack.stats stack).Stack.syn_queue_drops;
  Alcotest.(check int) "timeout counted on the listener" 1 listen.Socket.syn_drops;
  Alcotest.(check (list string)) "callback fired with the timed-out source"
    [ "192.168.66.1" ] !reported

let test_add_service_covers () =
  let rig = make_rig Stack.Rc in
  let guest = Container.create ~parent:rig.root ~name:"guest" ~attrs:(Attrs.fixed_share ~share:0.5 ()) () in
  let gleaf = Container.create ~parent:guest ~name:"gleaf" () in
  Stack.add_service rig.stack ~name:"guest-netisr" ~home:gleaf
    ~covers:(fun c -> Container.has_ancestor c ~ancestor:guest);
  let listen = Socket.make_listen ~port:80 ~container:gleaf () in
  Stack.add_listen rig.stack listen;
  let established = ref false in
  connect_one rig ~on_established:(fun _ -> established := true);
  run rig (Simtime.ms 50);
  Alcotest.(check bool) "guest service handled the handshake" true !established

(* Property: after any pattern of sends and reads, the owner's buffered
   socket memory equals exactly the bytes still unread. *)
let prop_memory_balance =
  QCheck2.Test.make ~name:"socket buffer memory balances" ~count:40
    QCheck2.Gen.(list_size (int_range 1 20) (pair (int_range 1 1400) bool))
    (fun ops ->
      let rig = make_rig Stack.Rc in
      let listen = Socket.make_listen ~port:80 () in
      Stack.add_listen rig.stack listen;
      let the_conn = ref None in
      connect_one rig ~on_established:(fun conn -> the_conn := Some conn);
      run rig (Simtime.ms 10);
      match !the_conn with
      | None -> false
      | Some conn ->
          let outstanding = ref 0 in
          List.iter
            (fun (bytes, read_after) ->
              Stack.client_send rig.stack conn (Payload.make ~bytes (Sim.now rig.sim));
              run rig (Simtime.ms 5);
              outstanding := !outstanding + bytes;
              if read_after then
                match Stack.recv rig.stack conn with
                | Some p -> outstanding := !outstanding - p.Payload.bytes
                | None -> ())
            ops;
          Rescont.Usage.memory_bytes (Container.usage rig.owner) = !outstanding)

(* Regression: when several listen sockets tie on filter specificity, demux
   must pick the same socket (the earliest-bound one) no matter what order
   the sockets were registered in — [List.sort] instability used to make the
   winner depend on insertion order. *)
let test_demux_tie_break_order_independent () =
  let src = Ipaddr.v 10 77 0 9 in
  let filter () = Filter.prefix ~template:(Ipaddr.v 10 77 0 0) ~bits:24 in
  let winner insertion_order =
    let rig = make_rig Stack.Rc in
    (* Creation order fixes listen ids: first < second. *)
    let first = Socket.make_listen ~port:80 ~filter:(filter ()) () in
    let second = Socket.make_listen ~port:80 ~filter:(filter ()) () in
    List.iter (Stack.add_listen rig.stack)
      (match insertion_order with `First_then_second -> [ first; second ] | `Reversed -> [ second; first ]);
    connect_one rig ~src ~on_established:(fun _ -> ());
    run rig (Simtime.ms 20);
    (Socket.accept_ready first, Socket.accept_ready second)
  in
  Alcotest.(check (pair bool bool)) "earliest-bound socket wins (in order)" (true, false)
    (winner `First_then_second);
  Alcotest.(check (pair bool bool)) "earliest-bound socket wins (reversed)" (true, false)
    (winner `Reversed)

(* The most-specific-match rule itself must also be insertion-order
   independent: a /32 host filter beats the wildcard whichever was added
   first. *)
let test_demux_specificity_both_orders () =
  let special = Ipaddr.v 10 9 9 9 in
  List.iter
    (fun reversed ->
      let rig = make_rig Stack.Rc in
      let l_host = Socket.make_listen ~port:80 ~filter:(Filter.host special) () in
      let l_any = Socket.make_listen ~port:80 () in
      List.iter (Stack.add_listen rig.stack)
        (if reversed then [ l_any; l_host ] else [ l_host; l_any ]);
      connect_one rig ~src:special ~on_established:(fun _ -> ());
      connect_one rig ~src:(Ipaddr.v 10 0 0 7) ~on_established:(fun _ -> ());
      run rig (Simtime.ms 20);
      Alcotest.(check bool) "host socket got the special client" true
        (Socket.accept_ready l_host);
      Alcotest.(check bool) "wildcard got the other" true (Socket.accept_ready l_any))
    [ false; true ]

(* Regression: the per-container queue and last-served tables must not
   grow with container churn — each teardown prunes both (§4.6: containers
   are transient, per-connection in the extreme). *)
let test_tables_bounded_under_container_churn () =
  let rig = make_rig Stack.Rc in
  for i = 1 to 10_000 do
    let c = Container.create ~parent:rig.root ~name:(Printf.sprintf "churn%d" i) () in
    let l = Socket.make_listen ~port:80 ~container:c () in
    Stack.add_listen rig.stack l;
    (* A SYN for the container queues deferred work against it. *)
    Stack.inject_syn rig.stack ~src:(Ipaddr.offset (Ipaddr.v 10 50 0 1) (i mod 1024)) ~port:80;
    run rig (Simtime.us 30);
    Stack.remove_listen rig.stack l;
    Container.destroy c
  done;
  run rig (Simtime.ms 10);
  Alcotest.(check bool) "queue table bounded by live containers" true
    (Stack.queue_table_size rig.stack <= 4);
  Alcotest.(check bool) "stamp table bounded by live containers" true
    (Stack.stamp_table_size rig.stack <= 4);
  Alcotest.(check int) "no deferred work points at dead containers" 0
    (Stack.pending_work rig.stack)

(* Regression (found by the scenario fuzzer): data buffered before a
   connection is rebound must move its memory charge with the binding, or
   draining and closing afterwards refunds the new container for bytes it
   was never charged — a negative balance. *)
let test_rebind_moves_buffered_charge () =
  let strict_before = Rescont.Usage.strict_memory_enabled () in
  Rescont.Usage.set_strict_memory true;
  Fun.protect
    ~finally:(fun () -> Rescont.Usage.set_strict_memory strict_before)
    (fun () ->
      let rig = make_rig Stack.Rc in
      let listen = Socket.make_listen ~port:80 () in
      Stack.add_listen rig.stack listen;
      let the_conn = ref None in
      connect_one rig ~on_established:(fun conn -> the_conn := Some conn);
      run rig (Simtime.ms 10);
      let conn = match !the_conn with Some c -> c | None -> Alcotest.fail "no conn" in
      Stack.client_send rig.stack conn (Payload.make ~tag:"r" ~bytes:500 (Sim.now rig.sim));
      run rig (Simtime.ms 10);
      Alcotest.(check int) "charged to the pre-bind owner" 500
        (Rescont.Usage.memory_bytes (Container.usage rig.owner));
      (* The server accepts and gives the connection its own container —
         the per-connection policy. *)
      let per_conn = Container.create ~parent:rig.root ~name:"conn-1" () in
      Socket.bind_container conn per_conn;
      Alcotest.(check int) "charge moved off the old owner" 0
        (Rescont.Usage.memory_bytes (Container.usage rig.owner));
      Alcotest.(check int) "charge moved onto the new container" 500
        (Rescont.Usage.memory_bytes (Container.usage per_conn));
      (* Drain then close: both refunds must hit the rebound container
         without driving any balance negative (strict mode would raise). *)
      ignore (Stack.recv rig.stack conn);
      Alcotest.(check int) "drain refunds the new container" 0
        (Rescont.Usage.memory_bytes (Container.usage per_conn));
      Stack.client_send rig.stack conn (Payload.make ~tag:"s" ~bytes:300 (Sim.now rig.sim));
      run rig (Simtime.ms 10);
      ignore
        (Machine.spawn rig.machine ~name:"closer" ~container:rig.owner (fun () ->
             Stack.close rig.stack conn));
      run rig (Simtime.ms 10);
      Alcotest.(check int) "close refunds the rebound container too" 0
        (Rescont.Usage.memory_bytes (Container.usage per_conn));
      Alcotest.(check int) "whole subtree balances" 0
        (Rescont.Usage.memory_bytes (Container.subtree_usage rig.root)))

(* Every half-open connection that dies — evicted on overflow or timed out
   — is dropped {e exactly once}: the listener's counter, the stack-wide
   counter and the §5.7 notification callback all agree, and they equal
   injected minus still-pending. *)
let prop_syn_drops_exactly_once =
  QCheck2.Test.make ~name:"evict/purge drop exactly once" ~count:30
    QCheck2.Gen.(pair (int_range 1 8) (int_range 0 40))
    (fun (syn_backlog, n) ->
      let sim = Sim.create () in
      let root = Container.create_root () in
      let policy = Sched.Multilevel.make ~root () in
      let machine = Machine.create ~sim ~policy ~root () in
      let proc = Process.create machine ~name:"srv" () in
      let stack =
        Stack.create ~machine ~mode:Stack.Softirq ~syn_timeout:(Simtime.ms 50)
          ~owner:(Process.default_container proc) ()
      in
      let listen = Socket.make_listen ~port:80 ~syn_backlog () in
      Stack.add_listen stack listen;
      let notified = ref 0 in
      Stack.set_on_syn_drop stack (fun _ _ -> incr notified);
      let run span = Machine.run_until machine (Simtime.add (Sim.now sim) span) in
      for i = 0 to n - 1 do
        Stack.inject_syn stack ~src:(Ipaddr.offset (Ipaddr.v 192 168 66 1) i) ~port:80
      done;
      run (Simtime.ms 10);
      (* Let the survivors time out, then one trailing SYN makes the stack
         purge the queue. *)
      run (Simtime.ms 60);
      Stack.inject_syn stack ~src:(Ipaddr.v 192 168 67 1) ~port:80;
      run (Simtime.ms 10);
      let injected = n + 1 in
      let live =
        Queue.fold
          (fun acc c -> if c.Socket.state = Socket.Syn_rcvd then acc + 1 else acc)
          0 listen.Socket.syn_queue
      in
      let drops = (Stack.stats stack).Stack.syn_queue_drops in
      drops = listen.Socket.syn_drops && drops = !notified && drops = injected - live)

let test_remove_listen () =
  let rig = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack listen;
  Stack.remove_listen rig.stack listen;
  let refused = ref false in
  Stack.connect rig.stack ~src:(Ipaddr.v 10 0 0 1) ~port:80
    ~handlers:{ quiet_handlers with Socket.on_refused = (fun () -> refused := true) }
    ();
  run rig (Simtime.ms 10);
  Alcotest.(check bool) "closed listen refuses" true !refused;
  Alcotest.(check int) "no listens left" 0 (List.length (Stack.listens rig.stack))

let test_link_serialisation () =
  let rig = make_rig Stack.Rc in
  let listen = Socket.make_listen ~port:80 () in
  Stack.add_listen rig.stack listen;
  (* A 1.25 MB message at 100 Mbps takes ~100 ms on the wire (plus ~21 ms
     of send-path CPU); a tiny message sent right after must not overtake
     it (per-connection FIFO). *)
  let t0 = ref Simtime.zero in
  let big_at = ref Simtime.zero and small_at = ref Simtime.zero in
  let observed = ref [] in
  Stack.connect rig.stack ~src:(Ipaddr.v 10 0 0 2) ~port:80
    ~handlers:
      {
        quiet_handlers with
        Socket.on_established =
          (fun conn ->
            ignore
              (Machine.spawn rig.machine ~name:"sender" ~container:rig.owner (fun () ->
                   t0 := Sim.now rig.sim;
                   Stack.send rig.stack conn (Payload.make ~tag:"big" ~bytes:1_250_000 !t0);
                   Stack.send rig.stack conn (Payload.make ~tag:"small" ~bytes:100 !t0))));
        on_response =
          (fun _ p ->
            observed := p.Payload.tag :: !observed;
            if p.Payload.tag = "big" then big_at := Sim.now rig.sim
            else small_at := Sim.now rig.sim);
      }
    ();
  run rig (Simtime.ms 400);
  Alcotest.(check (list string)) "delivery order" [ "big"; "small" ] (List.rev !observed);
  let big_ms = Simtime.span_to_ms_f (Simtime.diff !big_at !t0) in
  Alcotest.(check bool) "1.25MB takes ~100ms wire + ~21ms CPU" true
    (big_ms > 95. && big_ms < 140.);
  Alcotest.(check bool) "small does not overtake" true Simtime.(!small_at >= !big_at)

(* LRP charges the receiving process even when a connection is bound to a
   container; RC charges the bound container — §3.2 vs §4.7. *)
let test_lrp_vs_rc_charging () =
  let charged_to_conn mode =
    let rig = make_rig mode in
    let c = Container.create ~parent:rig.root ~name:"conn-c" () in
    let listen = Socket.make_listen ~port:80 ~container:c () in
    Stack.add_listen rig.stack listen;
    let the_conn = ref None in
    connect_one rig ~on_established:(fun conn -> the_conn := Some conn);
    run rig (Simtime.ms 20);
    (match !the_conn with
    | Some conn ->
        Socket.bind_container conn c;
        Stack.client_send rig.stack conn (Payload.make ~bytes:500 (Sim.now rig.sim))
    | None -> Alcotest.fail "no conn");
    run rig (Simtime.ms 20);
    Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.usage c)) > 0
  in
  Alcotest.(check bool) "RC charges the bound container" true (charged_to_conn Stack.Rc);
  Alcotest.(check bool) "LRP charges the process instead" false (charged_to_conn Stack.Lrp)

let test_pp_tree () =
  let rig = make_rig Stack.Rc in
  let child = Container.create ~parent:rig.root ~name:"leafy" () in
  Container.charge_cpu child ~kernel:false (Simtime.ms 1);
  let rendered = Format.asprintf "%a" Container.pp_tree rig.root in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    m = 0 || scan 0
  in
  Alcotest.(check bool) "mentions child" true (contains rendered "leafy");
  Alcotest.(check bool) "mentions root" true (contains rendered "root")

let test_net_routing () =
  let rig_a = make_rig Stack.Rc in
  (* Second machine sharing the same event engine. *)
  let root_b = Container.create_root () in
  let machine_b =
    Machine.create ~sim:rig_a.sim ~policy:(Sched.Multilevel.make ~root:root_b ()) ~root:root_b
      ()
  in
  let proc_b = Process.create machine_b ~name:"b" () in
  let stack_b =
    Stack.create ~machine:machine_b ~mode:Stack.Rc ~owner:(Process.default_container proc_b) ()
  in
  let addr_a = Ipaddr.v 172 16 0 1 and addr_b = Ipaddr.v 172 16 0 2 in
  let net = Netsim.Net.create ~sim:rig_a.sim () in
  Netsim.Net.attach net ~addr:addr_a rig_a.stack;
  Netsim.Net.attach net ~addr:addr_b stack_b;
  Alcotest.(check int) "two machines" 2 (List.length (Netsim.Net.machines net));
  Alcotest.(check bool) "duplicate rejected" true
    (try Netsim.Net.attach net ~addr:addr_a stack_b; false with Invalid_argument _ -> true);
  let listen_b = Socket.make_listen ~port:80 () in
  Stack.add_listen stack_b listen_b;
  let established = ref false and refused = ref false in
  Netsim.Net.connect net ~src:addr_a ~dst:addr_b ~port:80
    ~handlers:
      { quiet_handlers with Socket.on_established = (fun _ -> established := true) }
    ();
  Netsim.Net.connect net ~src:addr_a ~dst:(Ipaddr.v 172 16 0 99) ~port:80
    ~handlers:{ quiet_handlers with Socket.on_refused = (fun () -> refused := true) }
    ();
  run rig_a (Simtime.ms 50);
  Machine.run_until machine_b (Simtime.add (Sim.now rig_a.sim) (Simtime.ms 50));
  Alcotest.(check bool) "cross-machine handshake" true !established;
  Alcotest.(check bool) "unknown host refused" true !refused

let suite =
  [
    Alcotest.test_case "ipaddr roundtrip" `Quick test_ipaddr_roundtrip;
    Alcotest.test_case "ipaddr invalid" `Quick test_ipaddr_invalid;
    Alcotest.test_case "ipaddr prefix" `Quick test_ipaddr_prefix;
    Alcotest.test_case "flow hash non-negative" `Quick test_flow_hash_nonnegative;
    Alcotest.test_case "ipaddr offset" `Quick test_ipaddr_offset;
    Alcotest.test_case "filter matching" `Quick test_filter_matching;
    Alcotest.test_case "filter complement" `Quick test_filter_complement;
    Alcotest.test_case "filter specificity" `Quick test_filter_specificity;
    QCheck_alcotest.to_alcotest prop_complement_is_negation;
    Alcotest.test_case "payload" `Quick test_payload;
    Alcotest.test_case "handshake all modes" `Quick test_handshake_establishes;
    Alcotest.test_case "no listener refused" `Quick test_no_listener_refused;
    Alcotest.test_case "filter demux" `Quick test_filter_demux_most_specific;
    Alcotest.test_case "request/response roundtrip" `Quick test_request_response_roundtrip;
    Alcotest.test_case "client close surfaces" `Quick test_client_close_surfaces;
    Alcotest.test_case "syn queue eviction" `Quick test_syn_queue_eviction;
    Alcotest.test_case "syn drop notification" `Quick test_syn_drop_notification;
    Alcotest.test_case "RC early discard" `Quick test_early_discard_in_rc;
    Alcotest.test_case "idle class processed at idle" `Quick test_idle_class_processed_when_idle;
    Alcotest.test_case "softirq steals from current" `Quick test_softirq_steals_from_current;
    Alcotest.test_case "socket buffer memory" `Quick test_socket_buffer_memory;
    Alcotest.test_case "memory limit drops" `Quick test_memory_limit_drops;
    Alcotest.test_case "close refunds buffered rx" `Quick test_close_refunds_buffered_rx;
    Alcotest.test_case "demux tie-break order independent" `Quick
      test_demux_tie_break_order_independent;
    Alcotest.test_case "demux specificity both orders" `Quick test_demux_specificity_both_orders;
    Alcotest.test_case "tables bounded under churn" `Slow test_tables_bounded_under_container_churn;
    Alcotest.test_case "rebind moves buffered charge" `Quick test_rebind_moves_buffered_charge;
    QCheck_alcotest.to_alcotest prop_syn_drops_exactly_once;
    Alcotest.test_case "SYN timeout counted" `Quick test_syn_timeout_counted;
    Alcotest.test_case "add_service coverage" `Quick test_add_service_covers;
    Alcotest.test_case "remove listen" `Quick test_remove_listen;
    Alcotest.test_case "link serialisation + FIFO" `Quick test_link_serialisation;
    Alcotest.test_case "LRP vs RC charging" `Quick test_lrp_vs_rc_charging;
    Alcotest.test_case "container tree dump" `Quick test_pp_tree;
    Alcotest.test_case "net routing fabric" `Quick test_net_routing;
    QCheck_alcotest.to_alcotest prop_memory_balance;
  ]
