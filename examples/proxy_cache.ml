(* A caching Web proxy in front of an origin server (paper §2: "most of
   the issues also apply to other servers, such as ... proxy servers").

   Two simulated machines share one event engine: an origin server and a
   proxy.  The proxy serves a Zipf-popular document set from a small local
   cache and fetches misses from the origin over the simulated network.
   Premium clients (a filtered /24) are bound to a high-priority container
   on the proxy, so their requests — including the proxy-side processing
   of their upstream fetches — win under overload.

   Modelling note: the proxy's upstream connection uses the origin stack's
   client interface; the proxy charges its own receive-path CPU for the
   fetched bytes explicitly on its fetcher thread, bound to the container
   of the class that caused the fetch.

   Run with: dune exec examples/proxy_cache.exe *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Machine = Procsim.Machine
module Process = Procsim.Process
module Socket = Netsim.Socket
module Stack = Netsim.Stack
module Ipaddr = Netsim.Ipaddr
module Payload = Netsim.Payload
module Http = Httpsim.Http
module Costs = Httpsim.Costs

let doc_count = 150
let doc_bytes = 8_192
let premium_src = Ipaddr.v 10 99 0 1

(* One simulated machine: its own CPU, scheduler and container tree. *)
let make_machine sim name =
  let root = Container.create_root () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root () in
  let proc = Process.create machine ~name () in
  let stack = Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) () in
  (root, machine, proc, stack)

type pending = { path : string; waiters : Socket.conn list; container : Container.t }

let origin_addr = Ipaddr.v 172 16 0 1
let proxy_addr = Ipaddr.v 172 16 0 2

let () =
  let sim = Sim.create () in
  let net = Netsim.Net.create ~sim () in

  (* Origin machine: a plain RC event-driven server with everything cached. *)
  let _origin_root, origin_machine, origin_proc, origin_stack = make_machine sim "origin" in
  Netsim.Net.attach net ~addr:origin_addr origin_stack;
  let origin_cache = Httpsim.File_cache.create () in
  for i = 1 to doc_count do
    Httpsim.File_cache.add_document origin_cache
      ~path:(Printf.sprintf "/doc/d%d" i)
      ~bytes:doc_bytes
  done;
  Httpsim.File_cache.warm origin_cache;
  let origin_listen = Socket.make_listen ~port:80 () in
  let origin_server =
    Httpsim.Event_server.create ~stack:origin_stack ~process:origin_proc ~cache:origin_cache
      ~listens:[ origin_listen ] ()
  in
  ignore (Httpsim.Event_server.start origin_server);

  (* Proxy machine: premium and standard client classes, a small cache. *)
  let proxy_root, proxy_machine, proxy_proc, proxy_stack = make_machine sim "proxy" in
  Netsim.Net.attach net ~addr:proxy_addr proxy_stack;
  let premium =
    Container.create ~parent:proxy_root ~name:"premium"
      ~attrs:(Attrs.timeshare ~priority:50 ())
      ()
  and standard =
    Container.create ~parent:proxy_root ~name:"standard"
      ~attrs:(Attrs.timeshare ~priority:10 ())
      ()
  in
  let proxy_listens =
    [
      Socket.make_listen ~port:8080
        ~filter:(Netsim.Filter.prefix ~template:premium_src ~bits:24)
        ~container:premium ();
      Socket.make_listen ~port:8080 ~container:standard ();
    ]
  in
  List.iter (Stack.add_listen proxy_stack) proxy_listens;
  (* A small proxy cache: ~1/4 of the document set fits. *)
  let proxy_cache = Httpsim.File_cache.create ~capacity_bytes:(40 * doc_bytes) () in
  for i = 1 to doc_count do
    Httpsim.File_cache.add_document proxy_cache
      ~path:(Printf.sprintf "/doc/d%d" i)
      ~bytes:doc_bytes
  done;

  let proxy_wq = Machine.Waitq.create ~name:"proxy" proxy_machine in
  Stack.add_on_event proxy_stack (fun () -> Machine.Waitq.signal proxy_wq);
  let conns : Socket.conn list ref = ref [] in
  let fetches : (string, pending) Hashtbl.t = Hashtbl.create 32 in
  let completions : (pending * Payload.t) Queue.t = Queue.create () in
  let upstream_fetches = ref 0 in
  let hits = ref 0 and misses = ref 0 in

  let class_of conn =
    match conn.Socket.container with Some c -> c | None -> standard
  in
  let respond conn path =
    Machine.cpu ~kernel:true (Simtime.span_add Costs.write_syscall Costs.request_misc);
    Stack.send proxy_stack conn
      (Http.response ~now:(Sim.now sim) (Http.meta_of_path path) ~body_bytes:doc_bytes);
    Machine.cpu ~kernel:true Costs.close_syscall;
    Stack.close proxy_stack conn;
    conns := List.filter (fun c -> c.Socket.conn_id <> conn.Socket.conn_id) !conns
  in
  (* Start an upstream fetch on behalf of a class container. *)
  let start_fetch pending =
    incr upstream_fetches;
    Hashtbl.replace fetches pending.path pending;
    (* Routed over the fabric, like any other host-to-host connection. *)
    Netsim.Net.connect net ~src:proxy_addr ~dst:origin_addr ~port:80
      ~handlers:
        {
          Socket.null_handlers with
          Socket.on_established =
            (fun upstream ->
              Stack.client_send origin_stack upstream
                (Http.request ~now:(Sim.now sim) ~path:pending.path ()));
          on_response =
            (fun _upstream payload ->
              match Hashtbl.find_opt fetches pending.path with
              | Some p ->
                  Hashtbl.remove fetches pending.path;
                  Queue.push (p, payload) completions;
                  Machine.Waitq.signal proxy_wq
              | None -> ());
        }
      ()
  in
  (* Proxy main loop, one work item per iteration in container-priority
     order (the scalable-event-API style of §5.5): a premium request never
     waits behind a batch of standard work. *)
  let prio c = (Container.attrs c).Attrs.priority in
  let do_completion pending payload self =
    Machine.rebind proxy_machine (self ()) pending.container;
    let packets = Payload.packet_count ~mtu:1460 payload in
    Machine.cpu ~kernel:true
      (Simtime.span_scale (float_of_int packets)
         (Stack.costs proxy_stack).Netsim.Stack.data_rx_process);
    ignore (Httpsim.File_cache.lookup proxy_cache ~path:pending.path);
    List.iter (fun conn -> respond conn pending.path) pending.waiters
  in
  let do_accept listen =
    match Stack.accept proxy_stack listen with
    | Some conn ->
        Machine.cpu ~kernel:true (Simtime.span_add Costs.accept_syscall Costs.conn_setup_misc);
        (* Bind the connection to its class container (Inherit_listen). *)
        (match listen.Socket.listen_container with
        | Some c -> Socket.bind_container conn c
        | None -> ());
        conns := !conns @ [ conn ]
    | None -> ()
  in
  let do_request conn self =
    match Stack.recv proxy_stack conn with
    | None ->
        if conn.Socket.state = Socket.Close_wait || conn.Socket.state = Socket.Closed then
          conns := List.filter (fun c -> c.Socket.conn_id <> conn.Socket.conn_id) !conns
    | Some payload -> (
        let klass = class_of conn in
        Machine.rebind proxy_machine (self ()) klass;
        Machine.cpu ~kernel:true Costs.read_parse;
        let meta = Http.parse payload in
        let path = meta.Http.path in
        match Httpsim.File_cache.lookup proxy_cache ~path with
        | Httpsim.File_cache.Hit _ ->
            incr hits;
            Machine.cpu ~kernel:true Costs.cache_hit;
            respond conn path
        | Httpsim.File_cache.Miss _ | Httpsim.File_cache.Not_found_doc -> (
            incr misses;
            Machine.cpu ~kernel:true Costs.cache_hit;
            match Hashtbl.find_opt fetches path with
            | Some pending ->
                Hashtbl.replace fetches path
                  { pending with waiters = conn :: pending.waiters }
            | None -> start_fetch { path; waiters = [ conn ]; container = klass }))
  in
  let proxy_body () =
    let self () = Machine.self () in
    let rec loop () =
      let candidates =
        (match Queue.peek_opt completions with
        | Some (pending, _) ->
            [ (prio pending.container, fun () ->
                  match Queue.take_opt completions with
                  | Some (p, payload) -> do_completion p payload self
                  | None -> ()) ]
        | None -> [])
        @ List.filter_map
            (fun listen ->
              if Socket.accept_ready listen then
                match listen.Socket.listen_container with
                | Some c -> Some (prio c, fun () -> do_accept listen)
                | None -> Some (0, fun () -> do_accept listen)
              else None)
            proxy_listens
        @ List.filter_map
            (fun conn ->
              if Socket.readable conn then
                Some (prio (class_of conn), fun () -> do_request conn self)
              else None)
            !conns
      in
      match List.stable_sort (fun (a, _) (b, _) -> compare b a) candidates with
      | (_, work) :: _ ->
          work ();
          loop ()
      | [] ->
          Machine.Waitq.wait proxy_wq;
          loop ()
    in
    loop ()
  in
  ignore (Process.spawn_thread proxy_proc ~name:"proxy-loop" proxy_body);

  (* Client populations against the proxy. *)
  let mix =
    List.init doc_count (fun i ->
        (1. /. float_of_int (i + 1), Printf.sprintf "/doc/d%d" (i + 1)))
  in
  let vip =
    Workload.Sclient.create ~stack:proxy_stack ~name:"vip" ~src_base:premium_src ~port:8080
      ~path_mix:mix ~jitter:(Simtime.ms 1) ~seed:3 ~count:3 ()
  in
  let crowd =
    Workload.Sclient.create ~stack:proxy_stack ~name:"crowd" ~src_base:(Ipaddr.v 10 1 0 1)
      ~port:8080 ~path_mix:mix ~jitter:(Simtime.ms 1) ~seed:7 ~count:24 ()
  in
  Workload.Sclient.start vip;
  Workload.Sclient.start crowd;

  Machine.run_until proxy_machine (Simtime.add Simtime.zero (Simtime.sec 3));
  Workload.Sclient.reset_stats vip;
  Workload.Sclient.reset_stats crowd;
  let fetches0 = !upstream_fetches in
  let window = Simtime.sec 8 in
  Machine.run_until proxy_machine (Simtime.add (Sim.now sim) window);

  let secs = Simtime.span_to_sec_f window in
  Format.printf "Caching proxy in front of an origin server (Zipf document mix):@.";
  Format.printf "  proxy hit ratio         : %.0f%% (%d hits / %d misses)@."
    (100. *. float_of_int !hits /. float_of_int (max 1 (!hits + !misses)))
    !hits !misses;
  Format.printf "  upstream fetches        : %.0f/s (origin offloaded)@."
    (float_of_int (!upstream_fetches - fetches0) /. secs);
  Format.printf "  premium  (3 clients)    : %4.0f req/s, mean %5.2f ms@."
    (float_of_int (Workload.Sclient.completed vip) /. secs)
    (Engine.Stats.Summary.mean (Workload.Sclient.response_times vip));
  Format.printf "  standard (24 clients)   : %4.0f req/s, mean %5.2f ms@."
    (float_of_int (Workload.Sclient.completed crowd) /. secs)
    (Engine.Stats.Summary.mean (Workload.Sclient.response_times crowd));
  Format.printf "  origin CPU consumed     : %a (proxy absorbed the popular head)@."
    Simtime.pp_span
    (Machine.busy_time origin_machine)
