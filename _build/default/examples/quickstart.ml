(* Quickstart: the resource-container API in isolation.

   Builds a small container hierarchy on a simulated machine, runs three
   CPU-bound threads under the prototype's multi-level scheduler — one of
   them sandboxed by a CPU limit — and prints the resulting accounting.

   Run with: dune exec examples/quickstart.exe *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Machine = Procsim.Machine

let () =
  (* 1. A machine: event engine + root container + the RC scheduler. *)
  let sim = Engine.Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Multilevel.make ~root () in
  let machine = Machine.create ~sim ~policy ~root () in

  (* 2. A hierarchy: a guaranteed database, a best-effort web class, and a
        batch job capped at 10% of the machine. *)
  let database =
    Container.create ~parent:root ~name:"database" ~attrs:(Attrs.fixed_share ~share:0.5 ()) ()
  in
  let web =
    Container.create ~parent:root ~name:"web" ~attrs:(Attrs.timeshare ~priority:20 ()) ()
  in
  let batch =
    Container.create ~parent:root ~name:"batch"
      ~attrs:(Attrs.timeshare ~priority:5 ~cpu_limit:0.10 ())
      ()
  in

  (* 3. One CPU-hungry thread per container. *)
  let burn container =
    ignore
      (Machine.spawn machine ~name:(Container.name container) ~container (fun () ->
           let rec loop () =
             Machine.cpu (Simtime.ms 5);
             loop ()
           in
           loop ()))
  in
  List.iter burn [ database; web; batch ];

  (* 4. A thread that rebinds itself halfway through — the paper's central
        move: the binding, not the thread, owns the consumption. *)
  ignore
    (Machine.spawn machine ~name:"migrator" ~container:web (fun () ->
         Machine.cpu (Simtime.ms 50);
         Machine.rebind machine (Machine.self ()) database;
         Machine.cpu (Simtime.ms 50)));

  (* 5. Run two simulated seconds and read the accounting back. *)
  let horizon = Simtime.sec 2 in
  Machine.run_until machine (Simtime.add Simtime.zero horizon);
  Format.printf "After %a of simulated time:@." Simtime.pp_span horizon;
  List.iter
    (fun c ->
      Format.printf "  %-9s guarantee=%.0f%%  consumed=%a (%.1f%% of machine)@."
        (Container.name c)
        (100. *. Container.guaranteed_fraction c)
        Simtime.pp_span
        (Usage.cpu_total (Container.usage c))
        (100. *. Simtime.ratio (Usage.cpu_total (Container.usage c)) horizon))
    [ database; web; batch ];
  Format.printf "  (the batch job's 10%% CPU limit held; the migrator's first 50ms went to@.";
  Format.printf "   'web', its second 50ms to 'database' — bindings, not threads, are charged)@."
