(* A resource sandbox around CGI processing (paper §5.6).

   Static requests compete with runaway CGI requests that each burn two
   seconds of CPU.  Without containers the CGI processes take over the
   machine; with a capped CGI-parent container, static service barely
   notices them.  This example runs both configurations back to back.

   Run with: dune exec examples/cgi_sandbox.exe *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Stack = Netsim.Stack
module Machine = Procsim.Machine
module Process = Procsim.Process

let run ~sandbox =
  let sim = Engine.Sim.create () in
  let root = Container.create_root () in
  let policy =
    if sandbox then Sched.Multilevel.make ~root () else Sched.Timeshare.make ()
  in
  let machine = Machine.create ~sim ~policy ~root () in
  let proc = Process.create machine ~name:"httpd" () in
  let mode = if sandbox then Stack.Rc else Stack.Softirq in
  let stack = Stack.create ~machine ~mode ~owner:(Process.default_container proc) () in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  Httpsim.File_cache.add_document cache ~path:"/cgi/run" ~bytes:0;
  Httpsim.File_cache.warm cache;
  let cgi_parent =
    if sandbox then
      Some
        (Container.create ~parent:root ~name:"cgi-sandbox"
           ~attrs:(Attrs.fixed_share ~share:0.2 ~cpu_limit:0.2 ())
           ())
    else None
  in
  let cgi = Httpsim.Cgi.create ~stack ~server_process:proc ?cgi_parent () in
  let listen = Socket.make_listen ~port:80 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~dynamic_handler:(Httpsim.Cgi.handler cgi) ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let static = Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:24 () in
  let cgi_load =
    Workload.Sclient.create ~stack ~src_base:(Netsim.Ipaddr.v 10 2 0 1) ~port:80
      ~path:"/cgi/run" ~syn_timeout:(Simtime.sec 60) ~count:4 ()
  in
  Workload.Sclient.start static;
  Workload.Sclient.start cgi_load;
  Machine.run_until machine (Simtime.add Simtime.zero (Simtime.sec 4));
  Workload.Sclient.reset_stats static;
  let cgi_cpu0 = Httpsim.Cgi.cpu_charged cgi in
  let window = Simtime.sec 10 in
  Machine.run_until machine (Simtime.add (Engine.Sim.now sim) window);
  let tput = float_of_int (Workload.Sclient.completed static) /. Simtime.span_to_sec_f window in
  let cgi_share =
    Simtime.ratio (Simtime.span_sub (Httpsim.Cgi.cpu_charged cgi) cgi_cpu0) window
  in
  (tput, cgi_share)

let () =
  Format.printf "Static load (24 clients) vs 4 runaway CGI requests (2s CPU each):@.";
  let tput_open, share_open = run ~sandbox:false in
  Format.printf "  unmodified kernel  : static %4.0f req/s, CGI eats %4.1f%% of the CPU@."
    tput_open (100. *. share_open);
  let tput_boxed, share_boxed = run ~sandbox:true in
  Format.printf "  with a 20%% sandbox : static %4.0f req/s, CGI held to %4.1f%%@." tput_boxed
    (100. *. share_boxed)
