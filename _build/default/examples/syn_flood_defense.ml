(* Adaptive SYN-flood defence (paper §5.7, automated).

   The server starts with a single ordinary listen socket.  The modified
   kernel notifies the application whenever a SYN is dropped on queue
   overflow; the application watches these notifications, infers the
   attacker's /24, and installs a filtered listen socket bound to a
   priority-0 container — after which the flood costs only interrupt +
   demultiplex time and service recovers.

   Run with: dune exec examples/syn_flood_defense.exe *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Filter = Netsim.Filter
module Ipaddr = Netsim.Ipaddr
module Stack = Netsim.Stack
module Machine = Procsim.Machine
module Process = Procsim.Process

let () =
  let sim = Engine.Sim.create () in
  let root = Container.create_root () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root () in
  let proc = Process.create machine ~name:"httpd" () in
  let stack = Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) () in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  Httpsim.File_cache.warm cache;

  let main_listen = Socket.make_listen ~port:80 ~syn_backlog:256 () in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache ~listens:[ main_listen ] ()
  in
  ignore (Httpsim.Event_server.start server);

  (* The adaptive defence: count drop notifications per /24; blacklist a
     prefix once it passes a threshold. *)
  let drop_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let blacklisted = ref [] in
  let defence_installed_at = ref None in
  Stack.set_on_syn_drop stack (fun _listen src ->
      let prefix = Ipaddr.to_string src |> String.split_on_char '.' in
      let key = String.concat "." (List.filteri (fun i _ -> i < 3) prefix) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt drop_counts key) in
      Hashtbl.replace drop_counts key n;
      if n = 200 && not (List.mem key !blacklisted) then begin
        blacklisted := key :: !blacklisted;
        defence_installed_at := Some (Engine.Sim.now sim);
        let template = Ipaddr.of_string (key ^ ".0") in
        let attackers =
          Container.create ~parent:root
            ~name:("attackers-" ^ key)
            ~attrs:(Attrs.timeshare ~priority:0 ())
            ()
        in
        Stack.add_listen stack
          (Socket.make_listen ~port:80
             ~filter:(Filter.prefix ~template ~bits:24)
             ~container:attackers ~syn_backlog:64 ())
      end);

  let good =
    Workload.Sclient.create ~stack ~name:"good" ~port:80 ~path:"/doc/1k" ~count:16 ()
  in
  Workload.Sclient.start good;
  let flood =
    Workload.Synflood.create ~stack ~src_base:(Ipaddr.v 192 168 66 1) ~rate_per_sec:30_000.
      ~port:80 ()
  in

  let sample label span =
    Workload.Sclient.reset_stats good;
    Machine.run_until machine (Simtime.add (Engine.Sim.now sim) span);
    Format.printf "  %-28s %6.0f req/s@." label
      (float_of_int (Workload.Sclient.completed good) /. Simtime.span_to_sec_f span)
  in
  Format.printf "Adaptive SYN-flood defence (30,000 bogus SYNs/sec from 192.168.66.0/24):@.";
  Machine.run_until machine (Simtime.add (Engine.Sim.now sim) (Simtime.sec 1));
  sample "before the attack" (Simtime.sec 2);
  Workload.Synflood.start flood;
  sample "attack, defence cold" (Simtime.sec 2);
  (* Give clients stuck in 3s retransmit backoff a moment to recover. *)
  Machine.run_until machine (Simtime.add (Engine.Sim.now sim) (Simtime.sec 4));
  sample "attack, defence active" (Simtime.sec 4);
  (match !defence_installed_at with
  | Some t -> Format.printf "  (filter installed at t=%a after ~200 drop notifications)@." Simtime.pp t
  | None -> Format.printf "  (defence never triggered)@.");
  Format.printf "  flood SYNs sent: %d; early discards: %d@." (Workload.Synflood.sent flood)
    (Stack.stats stack).Stack.rx_queue_drops
