examples/billing_report.mli:
