examples/syn_flood_defense.ml: Engine Format Hashtbl Httpsim List Netsim Option Procsim Rescont Sched String Workload
