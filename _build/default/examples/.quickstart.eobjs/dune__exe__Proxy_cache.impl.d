examples/proxy_cache.ml: Engine Format Hashtbl Httpsim List Netsim Printf Procsim Queue Rescont Sched Workload
