examples/virtual_hosting.ml: Engine Format Httpsim List Netsim Procsim Rescont Sched Workload
