examples/quickstart.ml: Engine Format List Procsim Rescont Sched
