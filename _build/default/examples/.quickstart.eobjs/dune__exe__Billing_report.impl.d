examples/billing_report.ml: Disksim Engine Format Httpsim List Netsim Printf Procsim Rescont Sched Workload
