examples/virtual_hosting.mli:
