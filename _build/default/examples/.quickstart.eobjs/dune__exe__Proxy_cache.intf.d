examples/proxy_cache.mli:
