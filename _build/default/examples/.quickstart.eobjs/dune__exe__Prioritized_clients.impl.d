examples/prioritized_clients.ml: Engine Format Httpsim Netsim Procsim Rescont Sched Workload
