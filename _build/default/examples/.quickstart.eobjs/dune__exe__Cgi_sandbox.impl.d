examples/cgi_sandbox.ml: Engine Format Httpsim Netsim Procsim Rescont Sched Workload
