examples/quickstart.mli:
