examples/prioritized_clients.mli:
