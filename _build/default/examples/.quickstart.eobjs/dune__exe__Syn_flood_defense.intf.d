examples/syn_flood_defense.mli:
