examples/cgi_sandbox.mli:
