(* Rent-A-Server virtual hosting (paper §5.8).

   Three guest Web servers share one machine under top-level fixed-share
   containers (50/30/20).  Guest loads are deliberately unequal — the
   third guest is hammered — yet consumption tracks the allocations, and
   each guest independently re-divides its own slice between static
   serving and a CGI sandbox.

   Run with: dune exec examples/virtual_hosting.exe *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Stack = Netsim.Stack
module Machine = Procsim.Machine
module Process = Procsim.Process

let () =
  let sim = Engine.Sim.create () in
  let root = Container.create_root () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root () in
  let sysproc = Process.create machine ~name:"system" () in
  let stack =
    Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container sysproc) ()
  in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  Httpsim.File_cache.add_document cache ~path:"/cgi/run" ~bytes:0;
  Httpsim.File_cache.warm cache;

  let make_guest index (name, share, static_clients) =
    let guest = Container.create ~parent:root ~name ~attrs:(Attrs.fixed_share ~share ()) () in
    let cgi_parent =
      Container.create ~parent:guest ~name:(name ^ "/cgi")
        ~attrs:(Attrs.fixed_share ~share:0.4 ~cpu_limit:0.4 ())
        ()
    in
    let proc = Process.create machine ~container_parent:guest ~name () in
    Stack.add_service stack ~name:(name ^ "-netisr") ~home:(Process.default_container proc)
      ~covers:(fun c -> Container.has_ancestor c ~ancestor:guest);
    let port = 8001 + index in
    let listen = Socket.make_listen ~port ~container:(Process.default_container proc) () in
    let cgi =
      Httpsim.Cgi.create ~stack ~server_process:proc ~cgi_parent ~compute:(Simtime.ms 500) ()
    in
    let server =
      Httpsim.Event_server.create ~stack ~process:proc ~cache
        ~policy:Httpsim.Event_server.Inherit_listen ~dynamic_handler:(Httpsim.Cgi.handler cgi)
        ~listens:[ listen ] ()
    in
    ignore (Httpsim.Event_server.start server);
    let static =
      Workload.Sclient.create ~stack ~name:(name ^ "-static")
        ~src_base:(Netsim.Ipaddr.v 10 (50 + index) 0 1)
        ~port ~path:"/doc/1k" ~count:static_clients ()
    in
    let dynamic =
      Workload.Sclient.create ~stack ~name:(name ^ "-cgi")
        ~src_base:(Netsim.Ipaddr.v 10 (60 + index) 0 1)
        ~port ~path:"/cgi/run" ~syn_timeout:(Simtime.sec 30) ~count:1 ()
    in
    Workload.Sclient.start static;
    Workload.Sclient.start dynamic;
    (name, share, guest, cgi_parent, static)
  in
  let guests =
    List.mapi make_guest
      [ ("alpha.example", 0.5, 8); ("beta.example", 0.3, 8); ("gamma.example", 0.2, 40) ]
  in

  Machine.run_until machine (Simtime.add Simtime.zero (Simtime.sec 3));
  let marks = List.map (fun (_, _, g, _, s) -> Workload.Sclient.reset_stats s;
                         Container.subtree_cpu g) guests in
  let window = Simtime.sec 10 in
  Machine.run_until machine (Simtime.add (Engine.Sim.now sim) window);

  Format.printf "Three guests, fixed shares 50/30/20, gamma overloaded (40 clients):@.";
  List.iter2
    (fun (name, share, guest, cgi_parent, static) cpu0 ->
      let used = Simtime.span_sub (Container.subtree_cpu guest) cpu0 in
      Format.printf
        "  %-14s allocated %2.0f%%  consumed %4.1f%%  static %4.0f req/s  (cgi limited to 40%% of guest: %4.1f%%)@."
        name (100. *. share)
        (100. *. Simtime.ratio used window)
        (float_of_int (Workload.Sclient.completed static) /. Simtime.span_to_sec_f window)
        (100. *. Simtime.ratio (Container.subtree_cpu cgi_parent) (Container.subtree_cpu guest)))
    guests marks;
  Format.printf "  gamma cannot steal from alpha/beta no matter how hard it is driven.@."
