(* Two-class quality of service for a Web server (paper §5.5).

   Premium clients (a known address) get a filtered listen socket bound to
   a high-priority container; everyone else lands in a low-priority
   container.  The event-driven server orders its work by container
   priority and the kernel processes premium packets first.

   Run with: dune exec examples/prioritized_clients.exe *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Filter = Netsim.Filter
module Ipaddr = Netsim.Ipaddr
module Stack = Netsim.Stack
module Machine = Procsim.Machine
module Process = Procsim.Process

let premium_src = Ipaddr.v 10 9 9 9

let () =
  let sim = Engine.Sim.create () in
  let root = Container.create_root () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root () in
  let proc = Process.create machine ~name:"httpd" () in
  let stack = Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container proc) () in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
  Httpsim.File_cache.warm cache;

  (* Containers per client class, and filtered listen sockets (§4.8). *)
  let premium =
    Container.create ~parent:root ~name:"premium" ~attrs:(Attrs.timeshare ~priority:100 ()) ()
  in
  let standard =
    Container.create ~parent:root ~name:"standard" ~attrs:(Attrs.timeshare ~priority:10 ()) ()
  in
  let listens =
    [
      Socket.make_listen ~port:80 ~filter:(Filter.host premium_src) ~container:premium ();
      Socket.make_listen ~port:80 ~container:standard ();
    ]
  in
  let server =
    Httpsim.Event_server.create ~stack ~process:proc ~cache
      ~api:Httpsim.Event_server.Event_api ~policy:Httpsim.Event_server.Inherit_listen ~listens
      ()
  in
  ignore (Httpsim.Event_server.start server);

  (* One premium client against 25 standard clients saturating the box. *)
  let vip =
    Workload.Sclient.create ~stack ~name:"vip" ~src_base:premium_src ~port:80 ~path:"/doc/1k"
      ~jitter:(Simtime.ms 2) ~count:1 ()
  in
  let crowd =
    Workload.Sclient.create ~stack ~name:"crowd" ~src_base:(Ipaddr.v 10 1 0 1) ~port:80
      ~path:"/doc/1k" ~jitter:(Simtime.ms 2) ~count:25 ()
  in
  Workload.Sclient.start vip;
  Workload.Sclient.start crowd;

  Machine.run_until machine (Simtime.add Simtime.zero (Simtime.sec 2));
  Workload.Sclient.reset_stats vip;
  Workload.Sclient.reset_stats crowd;
  Machine.run_until machine (Simtime.add Simtime.zero (Simtime.sec 6));

  let mean clients = Engine.Stats.Summary.mean (Workload.Sclient.response_times clients) in
  Format.printf "Saturated server, 1 premium client vs 25 standard clients:@.";
  Format.printf "  premium  : %5d requests, mean response %6.2f ms@."
    (Workload.Sclient.completed vip) (mean vip);
  Format.printf "  standard : %5d requests, mean response %6.2f ms@."
    (Workload.Sclient.completed crowd) (mean crowd);
  Format.printf "  kernel CPU charged to premium class: %a; standard class: %a@."
    Simtime.pp_span
    (Rescont.Usage.cpu_total (Container.usage premium))
    Simtime.pp_span
    (Rescont.Usage.cpu_total (Container.usage standard))
