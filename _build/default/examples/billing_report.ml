(* Metering and billing with resource containers (paper §4.8).

   "Because resource containers enable precise accounting for the costs of
   an activity, they may be useful to administrators simply for sending
   accurate bills to customers, and for use in capacity planning."

   Three hosted customers share one machine under fixed-share containers;
   their workloads differ wildly (one static-heavy, one CGI-heavy, one
   miss-heavy hitting the disk).  A billing meter closes an invoice cycle
   every 5 simulated seconds and prices each customer's actual CPU,
   network, and disk consumption.

   Run with: dune exec examples/billing_report.exe *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Billing = Rescont.Billing
module Machine = Procsim.Machine
module Process = Procsim.Process
module Socket = Netsim.Socket
module Stack = Netsim.Stack

let () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root () in
  let sysproc = Process.create machine ~name:"system" () in
  let stack =
    Stack.create ~machine ~mode:Stack.Rc ~owner:(Process.default_container sysproc) ()
  in
  let disk = Disksim.Disk.create ~machine () in
  let meter = Billing.create ~now:(Sim.now sim) () in

  let make_customer index (name, share, workload) =
    let guest = Container.create ~parent:root ~name ~attrs:(Attrs.fixed_share ~share ()) () in
    Billing.track meter ~customer:name guest;
    let proc = Process.create machine ~container_parent:guest ~name () in
    Stack.add_service stack ~name:(name ^ "-netisr") ~home:(Process.default_container proc)
      ~covers:(fun c -> Container.has_ancestor c ~ancestor:guest);
    let port = 9001 + index in
    let listen = Socket.make_listen ~port ~container:(Process.default_container proc) () in
    let cache =
      (* Small cache so the miss-heavy customer actually hits the disk. *)
      Httpsim.File_cache.create ~capacity_bytes:(64 * 1024) ()
    in
    Httpsim.File_cache.add_document cache ~path:"/doc/1k" ~bytes:1024;
    for i = 1 to 50 do
      Httpsim.File_cache.add_document cache ~path:(Printf.sprintf "/big/%d" i) ~bytes:65536
    done;
    Httpsim.File_cache.warm cache;
    let cgi_parent =
      Container.create ~parent:guest ~name:(name ^ "-cgi")
        ~attrs:(Attrs.fixed_share ~share:0.5 ~cpu_limit:0.5 ())
        ()
    in
    let cgi =
      Httpsim.Cgi.create ~stack ~server_process:proc ~cgi_parent ~compute:(Simtime.ms 20) ~mode:(Httpsim.Cgi.Persistent_pool 2) ()
    in
    let server =
      Httpsim.Threaded_server.create ~stack ~process:proc ~cache ~disk ~workers:8
        ~policy:Httpsim.Event_server.Inherit_listen
        ~dynamic_handler:(Httpsim.Cgi.handler cgi) ~listens:[ listen ] ()
    in
    Httpsim.Threaded_server.start server;
    let path_mix =
      match workload with
      | `Static_heavy -> [ (1.0, "/doc/1k") ]
      | `Cgi_heavy -> [ (0.99, "/doc/1k"); (0.01, "/cgi/run") ]
      | `Disk_heavy -> List.init 50 (fun i -> (1.0, Printf.sprintf "/big/%d" (i + 1)))
    in
    let clients =
      Workload.Sclient.create ~stack ~name
        ~src_base:(Netsim.Ipaddr.v 10 (70 + index) 0 1)
        ~port ~path_mix ~syn_timeout:(Simtime.sec 30) ~count:8 ()
    in
    Workload.Sclient.start clients
  in
  List.iteri make_customer
    [
      ("static.example", 0.4, `Static_heavy);
      ("apps.example", 0.35, `Cgi_heavy);
      ("archive.example", 0.25, `Disk_heavy);
    ];

  Format.printf "Three hosted customers, invoiced every 5 simulated seconds:@.@.";
  for _cycle = 1 to 3 do
    Machine.run_until machine (Simtime.add (Sim.now sim) (Simtime.sec 5));
    let invoice = Billing.close_cycle meter ~now:(Sim.now sim) in
    Format.printf "%a@." Engine.Series.pp_table (Billing.invoice_table invoice)
  done;
  Format.printf
    "Each line prices the customer's whole container subtree: static serving,@.";
  Format.printf "CGI sandboxes, kernel network processing, and disk transfers.@."
