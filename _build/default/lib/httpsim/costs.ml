module Simtime = Engine.Simtime

let net = Netsim.Stack.default_costs
let accept_syscall = Simtime.us 30
let conn_setup_misc = Simtime.us 26
let read_parse = Simtime.us 25
let cache_hit = Simtime.us 8
let cache_miss = Simtime.ms 3
let write_syscall = Simtime.us 15
let request_misc = Simtime.us 4
let close_syscall = Simtime.us 10
let select_base = Simtime.us 5
let select_per_fd = Simtime.ns 2_000
let event_api_base = Simtime.us 2
let event_api_per_event = Simtime.us 1
let fork = Simtime.us 300
let ipc_descriptor_pass = Simtime.us 20
let cgi_dispatch = Simtime.us 50
let cgi_compute_default = Simtime.sec 2

let sum = List.fold_left Simtime.span_add Simtime.span_zero
let per_packet_overhead = sum [ net.Netsim.Stack.irq_per_packet; net.Netsim.Stack.demux ]

let persistent_request_total =
  sum
    [
      per_packet_overhead;
      net.Netsim.Stack.data_rx_process;
      read_parse;
      cache_hit;
      write_syscall;
      request_misc;
      net.Netsim.Stack.tx_per_packet;
    ]

let nonpersistent_request_total =
  sum
    [
      persistent_request_total;
      per_packet_overhead;
      net.Netsim.Stack.syn_process;
      per_packet_overhead;
      net.Netsim.Stack.ack_process;
      accept_syscall;
      conn_setup_misc;
      close_syscall;
      net.Netsim.Stack.fin_process;
      net.Netsim.Stack.conn_teardown;
    ]

let unfiltered_syn_total = sum [ per_packet_overhead; net.Netsim.Stack.syn_process ]
let filtered_syn_total = per_packet_overhead
