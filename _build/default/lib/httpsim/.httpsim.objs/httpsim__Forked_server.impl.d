lib/httpsim/forked_server.ml: Costs Disksim Engine Event_server File_cache List Netsim Printf Procsim Rescont Serve
