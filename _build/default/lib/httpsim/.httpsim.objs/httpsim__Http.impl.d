lib/httpsim/http.ml: Netsim Printf String
