lib/httpsim/threaded_server.ml: Costs Disksim Engine Event_server File_cache Http List Netsim Printf Procsim Rescont Serve
