lib/httpsim/file_cache.mli: Engine
