lib/httpsim/serve.mli: Disksim File_cache Http Netsim
