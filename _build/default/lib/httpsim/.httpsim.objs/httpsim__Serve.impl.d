lib/httpsim/serve.ml: Costs Disksim Engine File_cache Http Netsim Procsim Rescont
