lib/httpsim/cgi.ml: Costs Engine Http List Netsim Printf Procsim Queue Rescont
