lib/httpsim/http.mli: Engine Netsim
