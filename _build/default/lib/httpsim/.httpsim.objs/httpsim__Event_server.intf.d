lib/httpsim/event_server.mli: Disksim File_cache Http Netsim Procsim Rescont
