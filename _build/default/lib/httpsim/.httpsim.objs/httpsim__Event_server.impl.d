lib/httpsim/event_server.ml: Costs Disksim Engine File_cache Http List Netsim Printf Procsim Rescont Serve
