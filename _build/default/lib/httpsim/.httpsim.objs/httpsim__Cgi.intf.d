lib/httpsim/cgi.mli: Engine Http Netsim Procsim Rescont
