lib/httpsim/costs.ml: Engine List Netsim
