lib/httpsim/threaded_server.mli: Disksim Event_server File_cache Http Netsim Procsim
