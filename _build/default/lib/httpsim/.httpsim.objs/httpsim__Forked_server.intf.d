lib/httpsim/forked_server.mli: Disksim Event_server File_cache Netsim Procsim
