lib/httpsim/costs.mli: Engine Netsim
