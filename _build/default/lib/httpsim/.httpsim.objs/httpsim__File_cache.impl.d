lib/httpsim/file_cache.ml: Costs Hashtbl List
