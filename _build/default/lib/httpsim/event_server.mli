(** The single-process event-driven Web server (paper §2, Fig. 2; derived
    conceptually from the thttpd-based server of §5.2).

    One thread multiplexes every connection.  Per iteration it polls for
    events — with either the classic [select()] model, whose kernel cost is
    linear in the size of the whole interest set, or the scalable event API
    of citation [5], whose cost depends only on ready events — then accepts
    new connections and serves ready requests.

    Container usage is configurable per the paper's experiments:
    - [No_containers]: the unmodified application; an optional user-level
      preference function models the §5.5 attempt to favour some clients
      purely in application code.
    - [Inherit_listen]: accepted connections are bound to their listening
      socket's container (two-class prioritisation via filters, §5.5/§5.7).
    - [Per_connection]: a fresh container per connection, child of a given
      parent, as in §5.4's overhead test.

    When containers are in use, the server thread rebinds its resource
    binding to the connection's container while working on it, charging
    each rebind at the paper's Table 1 cost, and orders its work by
    container priority. *)

type api = Select | Event_api

type policy =
  | No_containers
  | Inherit_listen
  | Per_connection of {
      parent : Rescont.Container.t;
      priority_of : Netsim.Socket.conn -> int;
    }

type t

val create :
  stack:Netsim.Stack.t ->
  process:Procsim.Process.t ->
  cache:File_cache.t ->
  ?disk:Disksim.Disk.t ->
  ?api:api ->
  ?policy:policy ->
  ?user_preference:(Netsim.Socket.conn -> int) ->
  ?dynamic_handler:(Netsim.Socket.conn -> Http.meta -> unit) ->
  listens:Netsim.Socket.listen list ->
  unit ->
  t
(** Defaults: [Select], [No_containers], no preference, no dynamic handler
    (requests for dynamic resources get 404-like small responses). *)

val start : t -> Procsim.Machine.thread
(** Spawn the server's thread.  Call once. *)

val static_served : t -> int
(** Static requests fully responded to. *)

val open_conns : t -> int
val accepts : t -> int
val poll_rounds : t -> int
val process : t -> Procsim.Process.t
