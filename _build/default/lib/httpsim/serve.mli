(** The static-document response path shared by every server model.

    Looks the document up in the cache, charges the lookup; on a miss with
    a disk attached, performs a blocking disk read charged to the calling
    thread's current resource binding (the thread sleeps without consuming
    CPU while the transfer runs); charges the write path; transmits the
    response.  Returns [true] when the server should close the connection
    (HTTP/1.0 semantics). *)

val static :
  stack:Netsim.Stack.t ->
  cache:File_cache.t ->
  ?disk:Disksim.Disk.t ->
  Netsim.Socket.conn ->
  Http.meta ->
  bool

val parse_request : Netsim.Payload.t -> Http.meta
(** [read()] + parse, charging {!Costs.read_parse}.  Must run on a machine
    thread. *)
