(** Message-level HTTP: requests and responses as payload tags.

    The simulator never moves bytes, so an HTTP request is its metadata —
    path and persistence — encoded into the {!Netsim.Payload} tag, and a
    response is a payload sized by the document plus header overhead. *)

type meta = { path : string; keep_alive : bool }

val request : now:Engine.Simtime.t -> ?keep_alive:bool -> path:string -> unit -> Netsim.Payload.t
(** A request message (~250 bytes on the wire, like a short GET). *)

val parse : Netsim.Payload.t -> meta
(** Decode a request payload.  @raise Invalid_argument on a payload that
    was not built by {!request}. *)

val response : now:Engine.Simtime.t -> meta -> body_bytes:int -> Netsim.Payload.t
(** A response message: body plus ~200 bytes of headers; the tag carries
    the request path so clients can correlate. *)

val is_dynamic : meta -> bool
(** Requests under "/cgi" resolve to dynamic resources. *)

val request_bytes : int
val header_bytes : int
