(** The single-process multi-threaded Web server (paper §2 Fig. 3, §4.8
    Fig. 9): a pool of kernel threads, each dedicated to one connection at
    a time.

    With the [Per_connection] policy, each accepted connection gets a fresh
    resource container and the serving thread binds to it for the life of
    the connection — the paper's first worked example of container use:
    heavy connections accumulate usage and their threads' priority decays,
    favouring the others. *)

type t

val create :
  stack:Netsim.Stack.t ->
  process:Procsim.Process.t ->
  cache:File_cache.t ->
  ?disk:Disksim.Disk.t ->
  ?workers:int ->
  ?policy:Event_server.policy ->
  ?dynamic_handler:(Netsim.Socket.conn -> Http.meta -> unit) ->
  listens:Netsim.Socket.listen list ->
  unit ->
  t
(** Default: 16 worker threads, [No_containers]. *)

val start : t -> unit
(** Spawn the worker threads.  Call once. *)

val served : t -> int
val accepts : t -> int
val active_workers : t -> int
