(** The process-per-connection Web server with a master process (paper §2,
    Fig. 1 — the NCSA-httpd model).

    A master process accepts connections and hands each to one of a pool
    of pre-forked worker processes over an IPC channel (costing
    {!Costs.ipc_descriptor_pass}); the worker serves the connection to
    completion and returns to the pool.  Connections that arrive while all
    workers are busy queue inside the master.

    With the [Per_connection] policy, the master creates a container per
    connection and passes it to the worker along with the connection
    (paying the Table 1 move cost) — the §4.8 pattern of moving an
    activity between protection domains while keeping one resource
    principal. *)

type t

val create :
  stack:Netsim.Stack.t ->
  master:Procsim.Process.t ->
  cache:File_cache.t ->
  ?disk:Disksim.Disk.t ->
  ?workers:int ->
  ?policy:Event_server.policy ->
  listens:Netsim.Socket.listen list ->
  unit ->
  t
(** Default: 8 pre-forked workers, [No_containers]. *)

val start : t -> unit
(** Fork the workers and spawn the master's accept loop.  Call once. *)

val served : t -> int
val accepts : t -> int
val idle_workers : t -> int
val backlog : t -> int
(** Accepted connections waiting for a free worker. *)
