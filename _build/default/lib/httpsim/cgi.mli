(** Dynamic-resource (CGI) processing (paper §2, §5.6).

    Requests for dynamic resources are handled by auxiliary processes: the
    classic CGI interface forks a process per request; FastCGI-style
    persistent workers avoid the fork.  Each request consumes a fixed
    amount of CPU (defaults to the ~2 s of §5.6), then the worker sends
    the response and closes the connection.

    With [cgi_parent] set, a fresh resource container is created per CGI
    request as a child of that parent and passed to the worker process,
    which binds its thread to it — the "resource sandbox" construction of
    §5.6: capping [cgi_parent]'s [cpu_limit] caps all CGI work. *)

type mode = Fork_per_request | Persistent_pool of int

type t

val create :
  stack:Netsim.Stack.t ->
  server_process:Procsim.Process.t ->
  ?cgi_parent:Rescont.Container.t ->
  ?compute:Engine.Simtime.span ->
  ?response_bytes:int ->
  ?mode:mode ->
  unit ->
  t
(** Defaults: no containers, {!Costs.cgi_compute_default} of CPU per
    request, 1 KB responses, [Fork_per_request]. *)

val handler : t -> Netsim.Socket.conn -> Http.meta -> unit
(** The [dynamic_handler] to plug into {!Event_server.create}.  Must run on
    the server thread: it charges dispatch (and fork) costs there, then
    hands the connection to a worker process. *)

val active : t -> int
(** Requests currently being computed (or queued for a worker). *)

val completed : t -> int
val processes_spawned : t -> int

val cpu_charged : t -> Engine.Simtime.span
(** Total CPU charged so far to the resource principals that carried CGI
    work: per-request containers when [cgi_parent] is set, the CGI
    processes' default containers otherwise.  Sampled twice, this yields
    the CGI CPU share of Fig. 13. *)
