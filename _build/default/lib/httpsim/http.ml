module Payload = Netsim.Payload

type meta = { path : string; keep_alive : bool }

let request_bytes = 250
let header_bytes = 200

let request ~now ?(keep_alive = false) ~path () =
  let tag = Printf.sprintf "GET %s HTTP/%s" path (if keep_alive then "1.1" else "1.0") in
  Payload.make ~tag ~bytes:request_bytes now

let parse payload =
  match String.split_on_char ' ' payload.Payload.tag with
  | [ "GET"; path; version ] ->
      { path; keep_alive = String.equal version "HTTP/1.1" }
  | _ -> invalid_arg (Printf.sprintf "Http.parse: not a request: %S" payload.Payload.tag)

let response ~now meta ~body_bytes =
  Payload.make ~tag:("200 " ^ meta.path) ~bytes:(body_bytes + header_bytes) now

let is_dynamic meta =
  String.length meta.path >= 4 && String.equal (String.sub meta.path 0 4) "/cgi"
