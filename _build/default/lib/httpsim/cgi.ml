module Simtime = Engine.Simtime
module Machine = Procsim.Machine
module Process = Procsim.Process
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Ops = Rescont.Ops
module Socket = Netsim.Socket
module Stack = Netsim.Stack

type mode = Fork_per_request | Persistent_pool of int

type job = { conn : Socket.conn; meta : Http.meta; container : Container.t option }

type t = {
  stack : Stack.t;
  server_process : Process.t;
  cgi_parent : Container.t option;
  compute : Simtime.span;
  response_bytes : int;
  mode : mode;
  mutable active : int;
  mutable completed : int;
  mutable spawned : int;
  jobs : job Queue.t;
  mutable pool_wq : Machine.Waitq.t option;
  mutable pool_started : bool;
  mutable principals : Container.t list; (* every container CGI work was charged to *)
}

let machine t = Stack.machine t.stack

let track_principal t c =
  if not (List.exists (fun x -> Container.id x = Container.id c) t.principals) then
    t.principals <- c :: t.principals

let run_job t job =
  (match job.container with
  | Some c ->
      Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
      Machine.rebind (machine t) (Machine.self ()) c
  | None -> ());
  Machine.cpu ~kernel:false t.compute;
  Machine.cpu ~kernel:true Costs.write_syscall;
  Stack.send t.stack job.conn
    (Http.response ~now:(Machine.now (machine t)) job.meta ~body_bytes:t.response_bytes);
  Machine.cpu ~kernel:true Costs.close_syscall;
  Stack.close t.stack job.conn;
  (match job.container with Some c -> Container.release c | None -> ());
  t.active <- t.active - 1;
  t.completed <- t.completed + 1

let pool_worker t wq () =
  let rec loop () =
    match Queue.take_opt t.jobs with
    | Some job ->
        run_job t job;
        (* Return to the worker's own principal between jobs. *)
        loop ()
    | None ->
        Machine.Waitq.wait wq;
        loop ()
  in
  loop ()

let ensure_pool t size =
  if not t.pool_started then begin
    t.pool_started <- true;
    let wq = Machine.Waitq.create ~name:"fastcgi" (machine t) in
    t.pool_wq <- Some wq;
    for i = 1 to size do
      let proc, _thread =
        Process.fork t.server_process ~name:(Printf.sprintf "fcgi-%d" i) (pool_worker t wq)
      in
      track_principal t (Process.default_container proc);
      t.spawned <- t.spawned + 1
    done
  end

let create ~stack ~server_process ?cgi_parent ?(compute = Costs.cgi_compute_default)
    ?(response_bytes = 1024) ?(mode = Fork_per_request) () =
  {
    stack;
    server_process;
    cgi_parent;
    compute;
    response_bytes;
    mode;
    active = 0;
    completed = 0;
    spawned = 0;
    jobs = Queue.create ();
    pool_wq = None;
    pool_started = false;
    principals = [];
  }

(* Runs on the server thread: dispatch cost there, then hand off. *)
let handler t conn meta =
  Machine.cpu ~kernel:true Costs.cgi_dispatch;
  let container =
    match t.cgi_parent with
    | None -> None
    | Some parent ->
        Machine.cpu ~kernel:true Ops.Cost.create;
        let c =
          Container.create ~parent
            ~name:(Printf.sprintf "cgi-req-%d" conn.Socket.conn_id)
            ~attrs:(Attrs.timeshare ()) ()
        in
        (* Passing the container to the CGI process (paper §4.8). *)
        Machine.cpu ~kernel:true Ops.Cost.move_between_processes;
        track_principal t c;
        Some c
  in
  let job = { conn; meta; container } in
  t.active <- t.active + 1;
  match t.mode with
  | Fork_per_request ->
      Machine.cpu ~kernel:true Costs.fork;
      t.spawned <- t.spawned + 1;
      let proc, _thread =
        Process.fork t.server_process
          ~name:(Printf.sprintf "cgi-%d" conn.Socket.conn_id)
          (fun () -> run_job t job)
      in
      track_principal t (Process.default_container proc)
  | Persistent_pool size ->
      ensure_pool t size;
      Queue.push job t.jobs;
      (match t.pool_wq with Some wq -> Machine.Waitq.signal wq | None -> ())

(* Total CPU charged to CGI work so far: per-request containers (RC) plus
   the CGI processes' own principals (classic systems). *)
let cpu_charged t =
  List.fold_left
    (fun acc c -> Engine.Simtime.span_add acc (Rescont.Usage.cpu_total (Container.usage c)))
    Engine.Simtime.span_zero t.principals

let active t = t.active
let completed t = t.completed
let processes_spawned t = t.spawned
