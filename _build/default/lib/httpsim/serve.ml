module Simtime = Engine.Simtime
module Machine = Procsim.Machine

let parse_request payload =
  Machine.cpu ~kernel:true Costs.read_parse;
  Http.parse payload

let static ~stack ~cache ?disk conn meta =
  let outcome = File_cache.lookup cache ~path:meta.Http.path in
  let body_bytes =
    match (outcome, disk) with
    | File_cache.Hit bytes, _ ->
        Machine.cpu ~kernel:true Costs.cache_hit;
        bytes
    | File_cache.Miss bytes, Some disk ->
        (* Cache-fill from disk: request setup costs CPU, the transfer
           itself costs disk time charged to the current binding. *)
        Machine.cpu ~kernel:true Costs.cache_hit;
        let container =
          Rescont.Binding.resource_binding (Machine.binding (Machine.self ()))
        in
        Disksim.Disk.read disk ~container ~bytes;
        bytes
    | File_cache.Miss bytes, None ->
        (* No disk model attached: the legacy fixed miss penalty. *)
        Machine.cpu ~kernel:true Costs.cache_miss;
        bytes
    | File_cache.Not_found_doc, _ ->
        Machine.cpu ~kernel:true Costs.cache_hit;
        80
  in
  Machine.cpu ~kernel:true (Simtime.span_add Costs.write_syscall Costs.request_misc);
  Netsim.Stack.send stack conn
    (Http.response ~now:(Machine.now (Netsim.Stack.machine stack)) meta ~body_bytes);
  not meta.Http.keep_alive
