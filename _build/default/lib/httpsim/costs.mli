(** The calibrated CPU cost model (paper §5.2–§5.3).

    The paper's server — a 500 MHz Alpha 21164 running Digital UNIX — spent
    about 338 µs of CPU per connection-per-request HTTP transaction for a
    cached 1 KB document, and about 105 µs per request over a persistent
    connection (§5.3: 2 954 and 9 487 requests/second at saturation).
    The constants below split those budgets over the simulated kernel
    network path ({!net}, shared with {!Netsim.Stack}) and the
    application-visible system calls, such that:

    - persistent-request total = data rx + read/parse + cache hit + write +
      misc + response tx ≈ 105 µs;
    - connection-per-request total adds SYN, ACK, accept, connection setup,
      close and teardown ≈ 338 µs;
    - an unfiltered SYN costs ≈ 99 µs at interrupt level in the unmodified
      kernel (saturation at ≈ 10 100 SYNs/s, Fig. 14)
    - a filtered (early-demux) SYN costs ≈ 3.9 µs (≈ 73 % residual capacity
      at 70 000 SYNs/s, Fig. 14).

    Tests in [test_costs.ml] pin these derived totals. *)

val net : Netsim.Stack.costs
(** Kernel network-path costs (equal to {!Netsim.Stack.default_costs}). *)

(** {1 Application-level system call costs} *)

val accept_syscall : Engine.Simtime.span
val conn_setup_misc : Engine.Simtime.span
(** Descriptor allocation, PCB setup and other per-connection overheads. *)

val read_parse : Engine.Simtime.span
(** [read()] plus HTTP request parsing. *)

val cache_hit : Engine.Simtime.span
val cache_miss : Engine.Simtime.span  (** Disk read for an uncached document. *)

val write_syscall : Engine.Simtime.span

val request_misc : Engine.Simtime.span
(** Logging and bookkeeping per request. *)

val close_syscall : Engine.Simtime.span

(** {1 Event-notification costs (paper §5.5)} *)

val select_base : Engine.Simtime.span
val select_per_fd : Engine.Simtime.span
(** Each [select()] scans the whole interest set: cost =
    [select_base + select_per_fd * nfds] — the inherent linear overhead the
    paper attributes to the select() API. *)

val event_api_base : Engine.Simtime.span
val event_api_per_event : Engine.Simtime.span
(** The scalable event API of citation [5]: cost depends only on the number
    of {e ready} events. *)

(** {1 Process and CGI costs (paper §5.6)} *)

val fork : Engine.Simtime.span

val ipc_descriptor_pass : Engine.Simtime.span
(** Handing a connection (and optionally its container) from the master
    process to a pre-forked worker over a UNIX-domain socket. *)

val cgi_dispatch : Engine.Simtime.span
(** Marshalling a request to a CGI process over the CGI/FastCGI interface. *)

val cgi_compute_default : Engine.Simtime.span
(** CPU consumed by one CGI request in §5.6: about 2 seconds. *)

(** {1 Derived per-request budgets (§5.3)} *)

val persistent_request_total : Engine.Simtime.span
(** ≈ 105 µs: every cost on the path of one request on a warm persistent
    connection (excluding event-notification overhead, which depends on
    load). *)

val nonpersistent_request_total : Engine.Simtime.span
(** ≈ 338 µs: [persistent_request_total] plus connection setup/teardown. *)

val unfiltered_syn_total : Engine.Simtime.span
(** Interrupt-level cost of one SYN in the unmodified kernel. *)

val filtered_syn_total : Engine.Simtime.span
(** Interrupt+demux cost of a SYN steered to an idle-class container. *)
