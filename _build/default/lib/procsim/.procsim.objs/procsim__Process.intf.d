lib/procsim/process.mli: Format Machine Rescont
