lib/procsim/process.ml: Format List Machine Printf Rescont
