lib/procsim/machine.ml: Array Effect Engine Hashtbl List Rescont Sched
