lib/procsim/machine.mli: Engine Rescont Sched
