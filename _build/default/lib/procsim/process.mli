(** Processes: protection domains over the simulated machine.

    A process bundles a default resource container (created at [fork],
    paper §4.6), a container descriptor table (inherited across [fork]),
    and a set of threads.  Protection is not simulated — only the resource
    management consequences of the process structure matter here. *)

type t

val create :
  Machine.t ->
  ?container_parent:Rescont.Container.t ->
  ?container_attrs:Rescont.Attrs.t ->
  name:string ->
  unit ->
  t
(** Create a process with a fresh default container.  The container is a
    child of [container_parent] (default: the machine root). *)

val pid : t -> int
val name : t -> string
val machine : t -> Machine.t
val default_container : t -> Rescont.Container.t
val descriptors : t -> Rescont.Desc_table.t
val threads : t -> Machine.thread list

val spawn_thread :
  t -> ?container:Rescont.Container.t -> name:string -> (unit -> unit) -> Machine.thread
(** Spawn a thread bound initially to [container] (default: the process's
    default container). *)

val fork :
  t -> ?container_attrs:Rescont.Attrs.t -> name:string -> (unit -> unit) -> t * Machine.thread
(** [fork parent ~name body] models [fork()]: the child process receives a
    copy of the parent's container descriptor table (each descriptor
    re-referenced), a fresh default container created beside the parent's,
    and one thread running [body] bound to that default container. *)

val exit_all : t -> unit
(** Process exit: kill every thread, close all container descriptors and
    release the default container. *)

val pp : Format.formatter -> t -> unit
