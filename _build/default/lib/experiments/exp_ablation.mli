(** Ablations over design choices the paper calls out.

    - {b Scheduler family}: the container hierarchy can be driven by
      different proportional-share policies (the prototype's multi-level
      scheduler, classic decay-usage, lottery [48], stride [47]).  Three
      CPU-bound containers with 3:2:1 priorities should converge to 50 /
      33 / 17 % under any proportional policy; this table shows how close
      each gets.
    - {b Scheduler-binding pruning} (§4.3): a thread multiplexed over many
      containers accretes scheduler-binding entries; the kernel prunes
      stale ones.  The table compares set sizes with and without pruning.
    - {b Softirq charging} (§3.1): charging interrupt-level protocol
      processing to "the unlucky process" vs "no process at all" changes
      who wins under CGI competition (the Fig. 13 skew). *)

val scheduler_family_table :
  ?measure:Engine.Simtime.span -> unit -> Engine.Series.table

val binding_prune_table : ?containers:int -> unit -> Engine.Series.table

val quantum_table :
  ?warmup:Engine.Simtime.span -> ?measure:Engine.Simtime.span -> unit -> Engine.Series.table
(** Baseline behaviour under 0.1 / 1 / 10 ms scheduling quanta. *)

val smp_scaling_table :
  ?warmup:Engine.Simtime.span -> ?measure:Engine.Simtime.span -> unit -> Engine.Series.table
(** Extension beyond the paper: the Fig. 3 multi-threaded server on 1, 2
    and 4 simulated processors. *)

val softirq_charging_table :
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?concurrent_cgi:int ->
  unit ->
  Engine.Series.table
