(** Table 1 — cost of resource container primitives (paper §5.4).

    The paper invoked each new system call 10 000 times and reported the
    mean warm-cache cost on a 500 MHz Alpha.  This module repeats that
    methodology against this library's in-process implementations of the
    same primitives, and reports both: the paper's number is also what the
    simulated kernel charges when applications invoke a primitive.

    (The Bechamel harness in [bench/main.ml] measures the same operations
    with proper statistical rigour; this module is the quick, paper-
    faithful version usable from tests and the CLI.) *)

type row = {
  operation : string;
  paper_us : float;
  measured_ns : float;  (** mean wall-clock cost of our implementation *)
}

val rows : ?iterations:int -> unit -> row list
(** Default 10 000 iterations per primitive, as in the paper. *)

val table : ?iterations:int -> unit -> Engine.Series.table

val max_primitive_vs_request : unit -> float
(** max(paper cost of any primitive) / (non-persistent request cost) —
    the paper's point is that this ratio is tiny. *)
