module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Machine = Procsim.Machine
module Socket = Netsim.Socket

(* {1 Scheduler family} *)

(* Three CPU-bound threads in containers with priorities 30 / 20 / 10. *)
let shares_under policy_of ?(measure = Simtime.sec 10) () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy = policy_of root in
  let machine = Machine.create ~sim ~policy ~root () in
  let priorities = [ 30; 20; 10 ] in
  let containers =
    List.mapi
      (fun i priority ->
        Container.create ~parent:root
          ~name:(Printf.sprintf "burner-%d" i)
          ~attrs:(Attrs.timeshare ~priority ())
          ())
      priorities
  in
  List.iter
    (fun container ->
      ignore
        (Machine.spawn machine ~name:(Container.name container) ~container (fun () ->
             let rec burn () =
               Machine.cpu (Simtime.ms 10);
               burn ()
             in
             burn ())))
    containers;
  Machine.run_until machine (Simtime.add Simtime.zero measure);
  List.map
    (fun container ->
      Simtime.ratio (Usage.cpu_total (Container.usage container)) measure)
    containers

let scheduler_family_table ?measure () =
  let policies =
    [
      ("multilevel (prototype)", fun root -> Sched.Multilevel.make ~root ());
      ("timeshare (decay-usage)", fun _root -> Sched.Timeshare.make ());
      ("lottery", fun _root -> Sched.Lottery.make ~rng:(Engine.Rng.create ~seed:1) ());
      ("stride", fun _root -> Sched.Stride.make ());
    ]
  in
  let t =
    Engine.Series.table
      ~title:"Ablation: CPU shares of 3:2:1-priority containers under each scheduler"
      ~columns:[ "scheduler"; "prio 30 (ideal 50%)"; "prio 20 (ideal 33%)"; "prio 10 (ideal 17%)" ]
  in
  List.iter
    (fun (label, make) ->
      match shares_under make ?measure () with
      | [ a; b; c ] ->
          Engine.Series.add_row t
            [
              label;
              Printf.sprintf "%.1f%%" (100. *. a);
              Printf.sprintf "%.1f%%" (100. *. b);
              Printf.sprintf "%.1f%%" (100. *. c);
            ]
      | _ -> assert false)
    policies;
  t

(* {1 Scheduler-binding pruning} *)

let binding_sizes ~prune ~containers () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Multilevel.make ~root () in
  let prune_interval = if prune then Simtime.ms 100 else Simtime.sec 3600 in
  let machine =
    Machine.create ~prune_interval ~prune_age:(Simtime.ms 500) ~sim ~policy ~root ()
  in
  let leaves =
    List.init containers (fun i ->
        Container.create ~parent:root ~name:(Printf.sprintf "mux-%d" i) ())
  in
  let peak = ref 0 and final = ref 0 in
  let thread =
    Machine.spawn machine ~name:"mux"
      ~container:(List.nth leaves 0)
      (fun () ->
        (* Touch every container once, then settle on the first one and
           keep running so the binding stays live. *)
        List.iter
          (fun leaf ->
            Machine.rebind machine (Machine.self ()) leaf;
            Machine.cpu (Simtime.us 100))
          leaves;
        peak := Rescont.Binding.size (Machine.binding (Machine.self ()));
        Machine.rebind machine (Machine.self ()) (List.nth leaves 0);
        let rec settle () =
          Machine.cpu (Simtime.ms 10);
          settle ()
        in
        settle ())
  in
  ignore
    (Sim.at sim (Simtime.add Simtime.zero (Simtime.ms 4_900)) (fun () ->
         final := Rescont.Binding.size (Machine.binding thread)));
  Machine.run_until machine (Simtime.add Simtime.zero (Simtime.sec 5));
  (!peak, !final)

let binding_prune_table ?(containers = 32) () =
  let t =
    Engine.Series.table
      ~title:
        (Printf.sprintf
           "Ablation: scheduler-binding set of a thread multiplexed over %d containers"
           containers)
      ~columns:[ "pruning"; "peak set size"; "set size after settling on one container" ]
  in
  let with_peak, with_final = binding_sizes ~prune:true ~containers () in
  let wo_peak, wo_final = binding_sizes ~prune:false ~containers () in
  Engine.Series.add_row t
    [ "enabled (100ms interval, 500ms age)"; string_of_int with_peak; string_of_int with_final ];
  Engine.Series.add_row t [ "disabled"; string_of_int wo_peak; string_of_int wo_final ];
  t

(* {1 Quantum sensitivity} *)

(* Request latency as the scheduling quantum varies, with a CPU-bound
   batch job sharing the machine: the server's short bursts wait behind the
   batch job's slices, so response time tracks the quantum directly. *)
let quantum_point ~quantum ?(warmup = Simtime.sec 1) ?(measure = Simtime.sec 3) () =
  let rig = Harness.make_rig ~quantum Harness.Rc_sys in
  let batch =
    Container.create ~parent:rig.Harness.root ~name:"batch"
      ~attrs:(Attrs.timeshare ~priority:10 ())
      ()
  in
  ignore
    (Machine.spawn rig.Harness.machine ~name:"batch" ~container:batch (fun () ->
         let rec burn () =
           Machine.cpu (Simtime.sec 1);
           burn ()
         in
         burn ()));
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Httpsim.Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let load =
    Workload.Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port
      ~path:Harness.doc_path ~jitter:(Simtime.ms 1) ~count:4 ()
  in
  Workload.Sclient.start load;
  Harness.run_for rig warmup;
  Workload.Sclient.reset_stats load;
  Harness.run_for rig measure;
  ( float_of_int (Workload.Sclient.completed load) /. Simtime.span_to_sec_f measure,
    Engine.Stats.Summary.mean (Workload.Sclient.response_times load) )

let quantum_table ?warmup ?measure () =
  let t =
    Engine.Series.table
      ~title:"Ablation: scheduling quantum (RC kernel, 4 clients vs a CPU-bound batch job)"
      ~columns:[ "quantum"; "throughput (req/s)"; "mean latency (ms)" ]
  in
  List.iter
    (fun quantum ->
      let tput, lat = quantum_point ~quantum ?warmup ?measure () in
      Engine.Series.add_row t
        [
          Format.asprintf "%a" Simtime.pp_span quantum;
          Printf.sprintf "%.0f" tput;
          Printf.sprintf "%.2f" lat;
        ])
    [ Simtime.us 100; Simtime.ms 1; Simtime.ms 10 ];
  t

(* {1 Multiprocessor scaling} *)

(* The multi-threaded server model (paper §2, Fig. 3) on 1..4 processors:
   the thread pool exploits extra processors; the paper's experiments are
   all uniprocessor, so this is an extension. *)
let smp_throughput ~cpus ?(warmup = Simtime.sec 2) ?(measure = Simtime.sec 4) () =
  let rig = Harness.make_rig ~cpus Harness.Rc_sys in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Httpsim.Threaded_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~workers:(8 * cpus) ~listens:[ listen ] ()
  in
  Httpsim.Threaded_server.start server;
  let load =
    Workload.Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port
      ~path:Harness.doc_path ~count:(48 * cpus) ()
  in
  Workload.Sclient.start load;
  Harness.run_for rig warmup;
  Workload.Sclient.reset_stats load;
  Harness.run_for rig measure;
  float_of_int (Workload.Sclient.completed load) /. Simtime.span_to_sec_f measure

let smp_scaling_table ?warmup ?measure () =
  let t =
    Engine.Series.table
      ~title:"Extension: multi-threaded server scaling with processors (RC kernel)"
      ~columns:[ "processors"; "throughput (req/s)"; "speedup" ]
  in
  let base = ref 0. in
  List.iter
    (fun cpus ->
      let tput = smp_throughput ~cpus ?warmup ?measure () in
      if cpus = 1 then base := tput;
      Engine.Series.add_row t
        [
          string_of_int cpus;
          Printf.sprintf "%.0f" tput;
          Printf.sprintf "%.2fx" (tput /. Float.max 1. !base);
        ])
    [ 1; 2; 4 ];
  t

(* {1 Softirq charging} *)

let server_share_with ~softirq_charge ?(warmup = Simtime.sec 5) ?(measure = Simtime.sec 10)
    ?(concurrent_cgi = 4) () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Timeshare.make () in
  let machine = Machine.create ~sim ~policy ~root () in
  let server_proc = Procsim.Process.create machine ~name:"httpd" () in
  let stack =
    Netsim.Stack.create ~machine ~mode:Netsim.Stack.Softirq ~softirq_charge
      ~owner:(Procsim.Process.default_container server_proc) ()
  in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.add_document cache ~path:Harness.doc_path ~bytes:1024;
  Httpsim.File_cache.add_document cache ~path:Harness.cgi_path ~bytes:0;
  Httpsim.File_cache.warm cache;
  let cgi = Httpsim.Cgi.create ~stack ~server_process:server_proc () in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Httpsim.Event_server.create ~stack ~process:server_proc ~cache
      ~dynamic_handler:(Httpsim.Cgi.handler cgi) ~listens:[ listen ] ()
  in
  ignore (Httpsim.Event_server.start server);
  let static =
    Workload.Sclient.create ~stack ~port:Harness.default_port ~path:Harness.doc_path ~count:24
      ()
  in
  let cgi_clients =
    Workload.Sclient.create ~stack ~src_base:(Netsim.Ipaddr.v 10 2 0 1)
      ~port:Harness.default_port ~path:Harness.cgi_path ~syn_timeout:(Simtime.sec 60)
      ~count:concurrent_cgi ()
  in
  Workload.Sclient.start static;
  Workload.Sclient.start cgi_clients;
  Machine.run_until machine (Simtime.add (Sim.now sim) warmup);
  Workload.Sclient.reset_stats static;
  let server_container = Procsim.Process.default_container server_proc in
  let cpu0 = Container.subtree_cpu server_container in
  Machine.run_until machine (Simtime.add (Sim.now sim) measure);
  let share =
    Simtime.ratio (Simtime.span_sub (Container.subtree_cpu server_container) cpu0) measure
  in
  let tput =
    float_of_int (Workload.Sclient.completed static) /. Simtime.span_to_sec_f measure
  in
  (share, tput)

let softirq_charging_table ?warmup ?measure ?(concurrent_cgi = 4) () =
  let t =
    Engine.Series.table
      ~title:
        (Printf.sprintf
           "Ablation: softirq charging policy vs server CPU share (%d competing CGI, fair \
            share %.0f%%)"
           concurrent_cgi
           (100. /. float_of_int (concurrent_cgi + 1)))
      ~columns:
        [ "softirq time charged to"; "server CPU share (as charged)"; "static req/s" ]
  in
  let share_system, tput_system =
    server_share_with ~softirq_charge:Netsim.Stack.Charge_system ?warmup ?measure
      ~concurrent_cgi ()
  in
  let share_current, tput_current =
    server_share_with ~softirq_charge:Netsim.Stack.Charge_current ?warmup ?measure
      ~concurrent_cgi ()
  in
  Engine.Series.add_row t
    [
      "no process at all (system)";
      Printf.sprintf "%.1f%%" (100. *. share_system);
      Printf.sprintf "%.0f" tput_system;
    ];
  Engine.Series.add_row t
    [
      "the unlucky current process";
      Printf.sprintf "%.1f%%" (100. *. share_current);
      Printf.sprintf "%.0f" tput_current;
    ];
  t
