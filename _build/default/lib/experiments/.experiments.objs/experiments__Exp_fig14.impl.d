lib/experiments/exp_fig14.ml: Engine Harness Httpsim List Netsim Rescont Workload
