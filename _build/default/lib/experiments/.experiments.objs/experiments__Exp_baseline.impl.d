lib/experiments/exp_baseline.ml: Engine Harness Httpsim Netsim Printf Procsim Workload
