lib/experiments/exp_virtual.ml: Engine Harness Httpsim List Netsim Printf Procsim Rescont Workload
