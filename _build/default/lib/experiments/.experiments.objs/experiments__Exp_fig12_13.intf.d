lib/experiments/exp_fig12_13.mli: Engine
