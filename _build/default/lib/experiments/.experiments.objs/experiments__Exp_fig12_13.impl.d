lib/experiments/exp_fig12_13.ml: Engine Harness Httpsim List Netsim Printf Rescont Workload
