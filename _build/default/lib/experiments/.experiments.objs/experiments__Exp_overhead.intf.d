lib/experiments/exp_overhead.mli: Engine
