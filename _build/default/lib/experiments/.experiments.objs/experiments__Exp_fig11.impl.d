lib/experiments/exp_fig11.ml: Engine Harness Httpsim List Netsim Rescont Workload
