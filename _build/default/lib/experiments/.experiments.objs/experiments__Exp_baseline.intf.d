lib/experiments/exp_baseline.mli: Engine
