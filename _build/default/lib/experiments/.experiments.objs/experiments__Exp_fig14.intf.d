lib/experiments/exp_fig14.mli: Engine
