lib/experiments/exp_table1.ml: Array Engine Httpsim List Printf Rescont Sys
