lib/experiments/exp_disk.ml: Disksim Engine Harness Httpsim List Netsim Printf Rescont Workload
