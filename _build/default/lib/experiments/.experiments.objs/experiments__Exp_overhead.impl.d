lib/experiments/exp_overhead.ml: Engine Harness Httpsim Netsim Printf Procsim Rescont Workload
