lib/experiments/exp_latency.mli: Engine Harness
