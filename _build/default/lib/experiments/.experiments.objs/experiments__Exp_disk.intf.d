lib/experiments/exp_disk.mli: Engine
