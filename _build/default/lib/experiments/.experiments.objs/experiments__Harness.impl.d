lib/experiments/harness.ml: Engine Httpsim Netsim Procsim Rescont Sched
