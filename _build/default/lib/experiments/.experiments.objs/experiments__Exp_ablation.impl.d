lib/experiments/exp_ablation.ml: Engine Float Format Harness Httpsim List Netsim Printf Procsim Rescont Sched Workload
