lib/experiments/exp_virtual.mli: Engine
