lib/experiments/exp_latency.ml: Engine Harness Httpsim List Netsim Printf Workload
