lib/experiments/harness.mli: Engine Httpsim Netsim Procsim Rescont
