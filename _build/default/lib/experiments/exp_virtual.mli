(** §5.8 — isolation of virtual servers (Rent-A-Server).

    Three guest Web servers run on one machine, each rooted in a top-level
    container with a fixed CPU share (50 / 30 / 20 %).  Each guest serves
    its own port with its own server process and CGI back-ends, under
    deliberately unequal client load.  The paper reports that the CPU
    consumed by each guest exactly matched its allocation; this experiment
    makes that quantitative, and also shows each guest re-dividing its own
    allocation internally (a per-guest CGI sandbox). *)

type guest_result = {
  name : string;
  allocated_share : float;
  measured_share : float;
  static_throughput : float;
  cgi_share_within_guest : float;  (** CGI CPU over total guest CPU. *)
}

val run :
  ?shares:float list ->
  ?clients_per_guest:int list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  unit ->
  guest_result list
(** Defaults: shares [0.5; 0.3; 0.2], client counts [16; 16; 16] (all
    saturating, so measured share should equal allocation). *)

val table : unit -> Engine.Series.table
