module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Machine = Procsim.Machine
module Socket = Netsim.Socket
module Event_server = Httpsim.Event_server

type result = {
  persistent : bool;
  throughput : float;
  cpu_per_request_us : float;
  mean_latency_ms : float;
}

let run ?(clients = 32) ?(warmup = Simtime.sec 2) ?(measure = Simtime.sec 5) ~persistent () =
  let rig = Harness.make_rig Harness.Unmodified in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~api:Event_server.Select ~listens:[ listen ] ()
  in
  ignore (Event_server.start server);
  let load =
    Workload.Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port
      ~path:Harness.doc_path ~persistent ~count:clients ()
  in
  Workload.Sclient.start load;
  Harness.run_for rig warmup;
  Workload.Sclient.reset_stats load;
  let busy0 = Machine.busy_time rig.Harness.machine in
  Harness.run_for rig measure;
  let requests = Workload.Sclient.completed load in
  let busy = Simtime.span_sub (Machine.busy_time rig.Harness.machine) busy0 in
  let throughput = float_of_int requests /. Simtime.span_to_sec_f measure in
  let cpu_per_request_us =
    if requests = 0 then 0. else Simtime.span_to_us_f busy /. float_of_int requests
  in
  let mean_latency_ms = Engine.Stats.Summary.mean (Workload.Sclient.response_times load) in
  { persistent; throughput; cpu_per_request_us; mean_latency_ms }

let table () =
  let t =
    Engine.Series.table ~title:"Baseline throughput (paper §5.3, unmodified kernel, 1KB cached)"
      ~columns:
        [ "connection mode"; "throughput (req/s)"; "paper (req/s)"; "CPU/request (us)";
          "paper (us)"; "mean latency (ms)" ]
  in
  let row r =
    Engine.Series.add_row t
      [
        (if r.persistent then "persistent (HTTP/1.1)" else "connection per request");
        Printf.sprintf "%.0f" r.throughput;
        (if r.persistent then "9487" else "2954");
        Printf.sprintf "%.1f" r.cpu_per_request_us;
        (if r.persistent then "105" else "338");
        Printf.sprintf "%.2f" r.mean_latency_ms;
      ]
  in
  row (run ~persistent:false ());
  row (run ~persistent:true ());
  t
