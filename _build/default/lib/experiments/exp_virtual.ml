module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Process = Procsim.Process
module Socket = Netsim.Socket
module Event_server = Httpsim.Event_server
module Cgi = Httpsim.Cgi
module Sclient = Workload.Sclient

type guest_result = {
  name : string;
  allocated_share : float;
  measured_share : float;
  static_throughput : float;
  cgi_share_within_guest : float;
}

type guest = {
  g_name : string;
  g_share : float;
  g_container : Container.t;
  g_cgi_parent : Container.t;
  g_clients : Sclient.t;
  g_cgi_clients : Sclient.t;
}

let run ?(shares = [ 0.5; 0.3; 0.2 ]) ?(clients_per_guest = [ 16; 16; 16 ])
    ?(warmup = Simtime.sec 5) ?(measure = Simtime.sec 15) () =
  if List.length shares <> List.length clients_per_guest then
    invalid_arg "Exp_virtual.run: shares and client counts differ in length";
  let rig = Harness.make_rig Harness.Rc_sys in
  let make_guest index share clients =
    let g_name = Printf.sprintf "guest-%d" (index + 1) in
    (* Top-level fixed-share container: the guest's whole allocation. *)
    let g_container =
      Container.create ~parent:rig.Harness.root ~name:g_name
        ~attrs:(Attrs.fixed_share ~share ())
        ()
    in
    (* The guest re-divides its allocation: half for CGI at most. *)
    let g_cgi_parent =
      Container.create ~parent:g_container ~name:(g_name ^ "-cgi")
        ~attrs:(Attrs.fixed_share ~share:0.5 ~cpu_limit:0.5 ())
        ()
    in
    let proc =
      Process.create rig.Harness.machine ~container_parent:g_container ~name:g_name ()
    in
    (* Each guest server process gets its own network kernel thread
       (paper §5.1: "a per-process kernel thread"). *)
    Netsim.Stack.add_service rig.Harness.stack ~name:(g_name ^ "-netisr")
      ~home:(Process.default_container proc)
      ~covers:(fun c -> Container.has_ancestor c ~ancestor:g_container);
    let port = 8001 + index in
    let listen =
      Socket.make_listen ~port ~container:(Process.default_container proc) ()
    in
    let cgi =
      Cgi.create ~stack:rig.Harness.stack ~server_process:proc ~cgi_parent:g_cgi_parent ()
    in
    let server =
      Event_server.create ~stack:rig.Harness.stack ~process:proc ~cache:rig.Harness.cache
        ~api:Event_server.Select ~policy:Event_server.Inherit_listen
        ~dynamic_handler:(Cgi.handler cgi) ~listens:[ listen ] ()
    in
    ignore (Event_server.start server);
    let g_clients =
      Sclient.create ~stack:rig.Harness.stack ~name:(g_name ^ "-static")
        ~src_base:(Netsim.Ipaddr.v 10 (30 + index) 0 1)
        ~port ~path:Harness.doc_path ~count:clients ()
    in
    let g_cgi_clients =
      Sclient.create ~stack:rig.Harness.stack ~name:(g_name ^ "-cgi")
        ~src_base:(Netsim.Ipaddr.v 10 (40 + index) 0 1)
        ~port ~path:Harness.cgi_path ~syn_timeout:(Simtime.sec 60) ~count:2 ()
    in
    Sclient.start g_clients;
    Sclient.start g_cgi_clients;
    { g_name; g_share = share; g_container; g_cgi_parent; g_clients; g_cgi_clients }
  in
  let guests = List.mapi (fun i (s, c) -> make_guest i s c)
      (List.combine shares clients_per_guest)
  in
  Harness.run_for rig warmup;
  let marks =
    List.map
      (fun g ->
        Sclient.reset_stats g.g_clients;
        (Container.subtree_cpu g.g_container, Container.subtree_cpu g.g_cgi_parent))
      guests
  in
  Harness.run_for rig measure;
  List.map2
    (fun g (cpu0, cgi0) ->
      let guest_cpu = Simtime.span_sub (Container.subtree_cpu g.g_container) cpu0 in
      let cgi_cpu = Simtime.span_sub (Container.subtree_cpu g.g_cgi_parent) cgi0 in
      {
        name = g.g_name;
        allocated_share = g.g_share;
        measured_share = Simtime.ratio guest_cpu measure;
        static_throughput =
          float_of_int (Sclient.completed g.g_clients) /. Simtime.span_to_sec_f measure;
        cgi_share_within_guest = Simtime.ratio cgi_cpu (Simtime.span_max guest_cpu (Simtime.ns 1));
      })
    guests marks

let table () =
  let results = run () in
  let t =
    Engine.Series.table ~title:"§5.8: isolation of virtual servers (guest CPU vs allocation)"
      ~columns:
        [ "guest"; "allocated CPU share"; "measured CPU share"; "static req/s";
          "CGI share within guest" ]
  in
  List.iter
    (fun r ->
      Engine.Series.add_row t
        [
          r.name;
          Printf.sprintf "%.1f%%" (100. *. r.allocated_share);
          Printf.sprintf "%.1f%%" (100. *. r.measured_share);
          Printf.sprintf "%.0f" r.static_throughput;
          Printf.sprintf "%.1f%%" (100. *. r.cgi_share_within_guest);
        ])
    results;
  t
