(** Disk-bandwidth extension experiments (paper §4.4).

    The paper claims resource containers generalise beyond CPU: "the use
    of other system resources such as physical memory, disk bandwidth and
    socket buffers can be conveniently controlled by resource containers".
    These experiments exercise the disk substrate:

    - {b Architecture under a cold cache}: a Zipf-popular document set
      larger than the file cache forces disk reads.  The single-threaded
      event-driven server blocks on every miss (no overlap), while the
      multi-threaded server overlaps misses with other requests — the
      classic architectural trade-off from §2 that the warm-cache
      experiments hide.
    - {b Disk-bandwidth isolation}: two client classes with different
      container priorities issue miss-heavy workloads; the disk queue is
      drained in container-priority order, so the premium class sees
      far lower response times at equal demand. *)

type arch_point = { architecture : string; throughput : float; mean_latency_ms : float }

val architecture_run :
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  [ `Event_driven | `Multi_threaded ] ->
  arch_point

val architecture_table : unit -> Engine.Series.table

val pool_table :
  ?workers_list:int list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  unit ->
  Engine.Series.table
(** Worker-pool sizing: throughput of the threaded server over a
    miss-heavy workload as the pool grows — more threads overlap more
    blocking disk reads, until the spindle saturates. *)

type isolation_point = {
  premium_latency_ms : float;
  standard_latency_ms : float;
  premium_disk_share : float;  (** premium fraction of disk-busy time *)
}

val isolation_run :
  ?warmup:Engine.Simtime.span -> ?measure:Engine.Simtime.span -> unit -> isolation_point

val isolation_table : unit -> Engine.Series.table
