(** §5.3 — baseline throughput of the event-driven server on the
    unmodified kernel, for cached 1 KB documents.

    Paper: 2 954 requests/s with one connection per request (338 µs of CPU
    per request) and 9 487 requests/s over persistent connections (105 µs
    per request), both CPU-saturated. *)

type result = {
  persistent : bool;
  throughput : float;  (** requests per second at saturation *)
  cpu_per_request_us : float;  (** measured busy CPU divided by requests *)
  mean_latency_ms : float;
}

val run : ?clients:int -> ?warmup:Engine.Simtime.span -> ?measure:Engine.Simtime.span ->
  persistent:bool -> unit -> result

val table : unit -> Engine.Series.table
(** Both rows, with the paper's numbers alongside. *)
