module Simtime = Engine.Simtime
module Container = Rescont.Container
module Socket = Netsim.Socket
module Event_server = Httpsim.Event_server
module Sclient = Workload.Sclient

type result = {
  without_containers : float;
  with_containers : float;
  relative_change : float;
}

let throughput ?(clients = 48) ?(warmup = Simtime.sec 2) ?(measure = Simtime.sec 5)
    ~per_connection () =
  let rig = Harness.make_rig Harness.Rc_sys in
  let policy =
    if per_connection then
      Event_server.Per_connection { parent = rig.Harness.root; priority_of = (fun _ -> 10) }
    else Event_server.No_containers
  in
  (* The listen socket carries the server's container so that accepting new
     connections keeps its normal precedence relative to serving existing
     ones (paper §4.8). *)
  let listen =
    Socket.make_listen ~port:Harness.default_port
      ~container:(Procsim.Process.default_container rig.Harness.server_proc) ()
  in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~api:Event_server.Select ~policy ~listens:[ listen ] ()
  in
  ignore (Event_server.start server);
  let load =
    Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port ~path:Harness.doc_path
      ~count:clients ()
  in
  Workload.Sclient.start load;
  Harness.run_for rig warmup;
  Sclient.reset_stats load;
  Harness.run_for rig measure;
  float_of_int (Sclient.completed load) /. Simtime.span_to_sec_f measure

let run ?clients ?warmup ?measure () =
  let without_containers = throughput ?clients ?warmup ?measure ~per_connection:false () in
  let with_containers = throughput ?clients ?warmup ?measure ~per_connection:true () in
  {
    without_containers;
    with_containers;
    relative_change = (with_containers -. without_containers) /. without_containers;
  }

let table () =
  let r = run () in
  let t =
    Engine.Series.table
      ~title:"§5.4: overhead of a per-request resource container (RC kernel)"
      ~columns:[ "configuration"; "throughput (req/s)"; "relative" ]
  in
  Engine.Series.add_row t
    [ "no per-request containers"; Printf.sprintf "%.0f" r.without_containers; "100%" ];
  Engine.Series.add_row t
    [
      "container per request";
      Printf.sprintf "%.0f" r.with_containers;
      Printf.sprintf "%+.2f%%" (100. *. r.relative_change);
    ];
  t
