(** §5.4 — overhead of using resource containers.

    The paper verifies that creating a new resource container for every
    HTTP request leaves server throughput "effectively unchanged".  This
    experiment runs the RC system with and without per-connection
    containers and reports both throughputs and the relative difference. *)

type result = {
  without_containers : float;
  with_containers : float;
  relative_change : float;  (** (with - without) / without *)
}

val run :
  ?clients:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  unit ->
  result

val table : unit -> Engine.Series.table
