module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Socket = Netsim.Socket
module Disk = Disksim.Disk
module Sclient = Workload.Sclient

(* A Zipf-popular document set that does not fit the cache: 200 documents
   of 64 KB against a 4 MB cache (~60 resident), so the popular head hits
   and the tail misses to disk. *)
let doc_count = 200
let doc_bytes = 65_536

let make_cache () =
  let cache = Httpsim.File_cache.create ~capacity_bytes:(4 * 1024 * 1024) () in
  for i = 1 to doc_count do
    Httpsim.File_cache.add_document cache
      ~path:(Printf.sprintf "/doc/d%d" i)
      ~bytes:doc_bytes
  done;
  cache

let zipf_mix () =
  List.init doc_count (fun i ->
      let rank = float_of_int (i + 1) in
      (1. /. rank, Printf.sprintf "/doc/d%d" (i + 1)))

type arch_point = { architecture : string; throughput : float; mean_latency_ms : float }

let architecture_run ?(warmup = Simtime.sec 3) ?(measure = Simtime.sec 10) arch =
  let rig = Harness.make_rig Harness.Rc_sys in
  let cache = make_cache () in
  let disk = Disk.create ~machine:rig.Harness.machine () in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let architecture =
    match arch with
    | `Event_driven ->
        let server =
          Httpsim.Event_server.create ~stack:rig.Harness.stack
            ~process:rig.Harness.server_proc ~cache ~disk ~listens:[ listen ] ()
        in
        ignore (Httpsim.Event_server.start server);
        "event-driven (1 thread)"
    | `Multi_threaded ->
        let server =
          Httpsim.Threaded_server.create ~stack:rig.Harness.stack
            ~process:rig.Harness.server_proc ~cache ~disk ~workers:16 ~listens:[ listen ] ()
        in
        Httpsim.Threaded_server.start server;
        "multi-threaded (16 threads)"
  in
  let clients =
    Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port ~path_mix:(zipf_mix ())
      ~syn_timeout:(Simtime.sec 30) ~count:16 ()
  in
  Sclient.start clients;
  Harness.run_for rig warmup;
  Sclient.reset_stats clients;
  Harness.run_for rig measure;
  {
    architecture;
    throughput = float_of_int (Sclient.completed clients) /. Simtime.span_to_sec_f measure;
    mean_latency_ms = Engine.Stats.Summary.mean (Sclient.response_times clients);
  }

let architecture_table () =
  let t =
    Engine.Series.table
      ~title:"Disk extension: server architecture under a cold cache (Zipf documents)"
      ~columns:[ "architecture"; "throughput (req/s)"; "mean latency (ms)" ]
  in
  List.iter
    (fun arch ->
      let p = architecture_run arch in
      Engine.Series.add_row t
        [
          p.architecture;
          Printf.sprintf "%.0f" p.throughput;
          Printf.sprintf "%.1f" p.mean_latency_ms;
        ])
    [ `Event_driven; `Multi_threaded ];
  t

(* Worker-pool sizing: with blocking disk reads, throughput rises with
   the pool until enough requests overlap the spindle, then flattens. *)
let pool_sweep ?(workers_list = [ 1; 2; 4; 8; 16; 32 ]) ?(warmup = Simtime.sec 3)
    ?(measure = Simtime.sec 8) () =
  let point workers =
    let rig = Harness.make_rig Harness.Rc_sys in
    let cache = make_cache () in
    let disk = Disk.create ~machine:rig.Harness.machine () in
    let listen = Socket.make_listen ~port:Harness.default_port () in
    let server =
      Httpsim.Threaded_server.create ~stack:rig.Harness.stack
        ~process:rig.Harness.server_proc ~cache ~disk ~workers ~listens:[ listen ] ()
    in
    Httpsim.Threaded_server.start server;
    let clients =
      Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port
        ~path_mix:(zipf_mix ()) ~syn_timeout:(Simtime.sec 30) ~count:32 ()
    in
    Sclient.start clients;
    Harness.run_for rig warmup;
    Sclient.reset_stats clients;
    Harness.run_for rig measure;
    float_of_int (Sclient.completed clients) /. Simtime.span_to_sec_f measure
  in
  List.map (fun w -> (w, point w)) workers_list

let pool_table ?workers_list ?warmup ?measure () =
  let t =
    Engine.Series.table
      ~title:"Disk extension: worker-pool sizing (blocking reads, 32 clients)"
      ~columns:[ "worker threads"; "throughput (req/s)" ]
  in
  List.iter
    (fun (w, tput) ->
      Engine.Series.add_row t [ string_of_int w; Printf.sprintf "%.0f" tput ])
    (pool_sweep ?workers_list ?warmup ?measure ());
  t

type isolation_point = {
  premium_latency_ms : float;
  standard_latency_ms : float;
  premium_disk_share : float;
}

let isolation_run ?(warmup = Simtime.sec 3) ?(measure = Simtime.sec 10) () =
  let rig = Harness.make_rig Harness.Rc_sys in
  let cache = make_cache () in
  let disk = Disk.create ~machine:rig.Harness.machine () in
  let premium =
    Container.create ~parent:rig.Harness.root ~name:"disk-premium"
      ~attrs:(Attrs.timeshare ~priority:50 ())
      ()
  and standard =
    Container.create ~parent:rig.Harness.root ~name:"disk-standard"
      ~attrs:(Attrs.timeshare ~priority:10 ())
      ()
  in
  let premium_src = Netsim.Ipaddr.v 10 9 9 9 in
  let listens =
    [
      Socket.make_listen ~port:Harness.default_port
        ~filter:(Netsim.Filter.prefix ~template:premium_src ~bits:24)
        ~container:premium ();
      Socket.make_listen ~port:Harness.default_port ~container:standard ();
    ]
  in
  (* The threaded server overlaps disk reads, so the disk queue (not the
     CPU) is where the classes compete. *)
  let server =
    Httpsim.Threaded_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache ~disk ~workers:16 ~policy:Httpsim.Event_server.Inherit_listen ~listens ()
  in
  Httpsim.Threaded_server.start server;
  let vip =
    Sclient.create ~stack:rig.Harness.stack ~name:"vip" ~src_base:premium_src
      ~port:Harness.default_port ~path_mix:(zipf_mix ()) ~syn_timeout:(Simtime.sec 30)
      ~jitter:(Simtime.ms 1) ~seed:3 ~count:4 ()
  in
  let crowd =
    Sclient.create ~stack:rig.Harness.stack ~name:"crowd" ~src_base:(Netsim.Ipaddr.v 10 1 0 1)
      ~port:Harness.default_port ~path_mix:(zipf_mix ()) ~syn_timeout:(Simtime.sec 30)
      ~jitter:(Simtime.ms 1) ~seed:5 ~count:12 ()
  in
  Sclient.start vip;
  Sclient.start crowd;
  Harness.run_for rig warmup;
  Sclient.reset_stats vip;
  Sclient.reset_stats crowd;
  let premium_disk0 = Usage.disk_time (Container.usage premium) in
  let total_disk0 = Disk.busy_time disk in
  Harness.run_for rig measure;
  let premium_disk =
    Simtime.span_sub (Usage.disk_time (Container.usage premium)) premium_disk0
  in
  let total_disk = Simtime.span_sub (Disk.busy_time disk) total_disk0 in
  {
    premium_latency_ms = Engine.Stats.Summary.mean (Sclient.response_times vip);
    standard_latency_ms = Engine.Stats.Summary.mean (Sclient.response_times crowd);
    premium_disk_share = Simtime.ratio premium_disk (Simtime.span_max total_disk (Simtime.ns 1));
  }

let isolation_table () =
  let p = isolation_run () in
  let t =
    Engine.Series.table
      ~title:"Disk extension: container-priority disk scheduling (miss-heavy load)"
      ~columns:[ "client class"; "mean latency (ms)"; "share of disk time" ]
  in
  Engine.Series.add_row t
    [
      "premium (priority 50, 4 clients)";
      Printf.sprintf "%.1f" p.premium_latency_ms;
      Printf.sprintf "%.1f%%" (100. *. p.premium_disk_share);
    ];
  Engine.Series.add_row t
    [
      "standard (priority 10, 12 clients)";
      Printf.sprintf "%.1f" p.standard_latency_ms;
      "rest";
    ];
  t
