module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Binding = Rescont.Binding
module Desc_table = Rescont.Desc_table
module Ops = Rescont.Ops

type row = { operation : string; paper_us : float; measured_ns : float }

let time_loop iterations f =
  let start = Sys.time () in
  for i = 0 to iterations - 1 do
    f i
  done;
  let elapsed = Sys.time () -. start in
  elapsed *. 1e9 /. float_of_int iterations

(* Mirrors the paper's Table 1 row by row, against our implementations. *)
let rows ?(iterations = 10_000) () =
  let root = Container.create_root () in
  let parent =
    Container.create ~parent:root ~name:"bench-parent" ~attrs:(Attrs.fixed_share ~share:1.0 ())
      ()
  in
  (* create / destroy: create a batch, then destroy it, timed separately. *)
  let pool = Array.make iterations root in
  let create_ns =
    time_loop iterations (fun i -> pool.(i) <- Container.create_detached ~name:"c" ())
  in
  let destroy_ns = time_loop iterations (fun i -> Container.destroy pool.(i)) in
  (* change thread's resource binding: flip a binding between two leaves. *)
  let leaf_a = Container.create ~parent ~name:"leaf-a" () in
  let leaf_b = Container.create ~parent ~name:"leaf-b" () in
  let binding = Binding.create ~now:Simtime.zero leaf_a in
  let rebind_ns =
    time_loop iterations (fun i ->
        Binding.set_resource_binding binding ~now:(Simtime.of_ns i)
          (if i land 1 = 0 then leaf_b else leaf_a))
  in
  (* obtain container resource usage *)
  let table = Desc_table.create () in
  let d = Ops.rc_get_handle table leaf_a in
  let usage_ns = time_loop iterations (fun _ -> ignore (Ops.rc_get_usage table d)) in
  (* set/get container attributes *)
  let attrs_lo = Attrs.timeshare ~priority:5 () and attrs_hi = Attrs.timeshare ~priority:9 () in
  let attrs_ns =
    time_loop iterations (fun i ->
        Ops.rc_set_attrs table d (if i land 1 = 0 then attrs_hi else attrs_lo);
        ignore (Ops.rc_get_attrs table d))
  in
  (* move container between processes (send + receiver close) *)
  let other = Desc_table.create () in
  let move_ns =
    time_loop iterations (fun _ ->
        let d' = Ops.rc_transfer ~src:table ~dst:other d in
        Desc_table.close other d')
  in
  (* obtain handle for existing container *)
  let handle_ns =
    time_loop iterations (fun _ ->
        let d' = Ops.rc_get_handle table leaf_b in
        Desc_table.close table d')
  in
  [
    { operation = "create resource container"; paper_us = 2.36; measured_ns = create_ns };
    { operation = "destroy resource container"; paper_us = 2.10; measured_ns = destroy_ns };
    { operation = "change thread's resource binding"; paper_us = 1.04; measured_ns = rebind_ns };
    { operation = "obtain container resource usage"; paper_us = 2.04; measured_ns = usage_ns };
    { operation = "set/get container attributes"; paper_us = 2.10; measured_ns = attrs_ns };
    { operation = "move container between processes"; paper_us = 3.15; measured_ns = move_ns };
    { operation = "obtain handle for existing container"; paper_us = 1.90;
      measured_ns = handle_ns };
  ]

let table ?iterations () =
  let t =
    Engine.Series.table ~title:"Table 1: cost of resource container primitives"
      ~columns:[ "operation"; "paper (us)"; "this library (ns/op)" ]
  in
  List.iter
    (fun r ->
      Engine.Series.add_row t
        [ r.operation; Printf.sprintf "%.2f" r.paper_us; Printf.sprintf "%.0f" r.measured_ns ])
    (rows ?iterations ());
  t

let max_primitive_vs_request () =
  let worst =
    List.fold_left
      (fun acc (_, c) -> max acc (Simtime.span_to_us_f c))
      0. Ops.Cost.all
  in
  worst /. Simtime.span_to_us_f Httpsim.Costs.nonpersistent_request_total
