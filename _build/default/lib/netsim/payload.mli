(** Application messages carried by the simulated network.

    The simulator is message-grained rather than byte-grained: one payload
    models one application-level message (an HTTP request or response).
    [bytes] drives transmission cost and packet count; [tag] lets the
    application encode what the message means; [created] timestamps the
    message for latency measurement. *)

type t = { bytes : int; tag : string; created : Engine.Simtime.t }

val make : ?tag:string -> bytes:int -> Engine.Simtime.t -> t
(** @raise Invalid_argument on negative [bytes]. *)

val packet_count : mtu:int -> t -> int
(** Number of network packets needed to carry the payload (at least 1). *)

val pp : Format.formatter -> t -> unit
