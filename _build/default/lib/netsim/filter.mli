(** The new [sockaddr] namespace of paper §4.8.

    A filter extends a listening address with a set of foreign addresses:
    a template address plus a CIDR mask.  [bind()]-ing several sockets to
    the same ⟨local address, port⟩ with different filters lets the kernel
    steer connection requests from chosen clients to chosen sockets — and
    hence, via socket→container bindings, to chosen resource containers,
    before the application ever sees the connection.  The paper also
    suggests complement filters ("accept everything except …"), which this
    implementation supports. *)

type t

val any : t
(** Matches every source address (template 0.0.0.0/0). *)

val prefix : template:Ipaddr.t -> bits:int -> t
(** Match sources inside the CIDR prefix.
    @raise Invalid_argument if [bits] is outside [0, 32]. *)

val host : Ipaddr.t -> t
(** Match exactly one source host (/32). *)

val complement : t -> t
(** Match exactly the sources the argument does not match. *)

val matches : t -> Ipaddr.t -> bool

val specificity : t -> int
(** Longest-prefix-match rank: higher wins when several filters match.
    A /32 host filter ranks 32, [any] ranks 0; a complement filter ranks
    like its base but strictly below every non-complement filter of equal
    prefix length (most-specific positive match wins). *)

val compare_specificity : t -> t -> int
(** Orders by decreasing specificity (for sorting candidate sockets). *)

val pp : Format.formatter -> t -> unit
