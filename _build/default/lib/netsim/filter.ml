type t = { template : Ipaddr.t; bits : int; negate : bool }

let any = { template = Ipaddr.v 0 0 0 0; bits = 0; negate = false }

let prefix ~template ~bits =
  if bits < 0 || bits > 32 then invalid_arg "Filter.prefix: bits outside [0,32]";
  { template; bits; negate = false }

let host addr = { template = addr; bits = 32; negate = false }
let complement t = { t with negate = not t.negate }

let matches t addr =
  let base = Ipaddr.in_prefix addr ~template:t.template ~bits:t.bits in
  if t.negate then not base else base

(* Positive filters rank [2 * bits + 1] and complements [2 * bits], so a
   positive match at a given prefix length always beats a complement at the
   same length, and any longer prefix beats any shorter one. *)
let specificity t = (2 * t.bits) + if t.negate then 0 else 1
let compare_specificity a b = compare (specificity b) (specificity a)

let pp ppf t =
  Format.fprintf ppf "%s%a/%d" (if t.negate then "!" else "") Ipaddr.pp t.template t.bits
