lib/netsim/stack.mli: Engine Ipaddr Payload Procsim Rescont Socket
