lib/netsim/net.mli: Engine Ipaddr Socket Stack
