lib/netsim/ipaddr.ml: Format Int32 Printf String
