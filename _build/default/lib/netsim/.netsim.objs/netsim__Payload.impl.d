lib/netsim/payload.ml: Engine Format
