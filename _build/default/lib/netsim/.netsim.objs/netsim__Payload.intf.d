lib/netsim/payload.mli: Engine Format
