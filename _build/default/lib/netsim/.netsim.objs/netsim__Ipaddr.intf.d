lib/netsim/ipaddr.mli: Format
