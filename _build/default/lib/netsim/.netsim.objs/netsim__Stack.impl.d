lib/netsim/stack.ml: Engine Filter Float Hashtbl Ipaddr List Payload Procsim Queue Rescont Socket
