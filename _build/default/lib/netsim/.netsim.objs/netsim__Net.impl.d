lib/netsim/net.ml: Engine Ipaddr List Printf Socket Stack
