lib/netsim/filter.mli: Format Ipaddr
