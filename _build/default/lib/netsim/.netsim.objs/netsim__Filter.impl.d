lib/netsim/filter.ml: Format Ipaddr
