lib/netsim/socket.mli: Engine Filter Ipaddr Payload Queue Rescont
