lib/netsim/socket.ml: Engine Filter Ipaddr Payload Queue Rescont
