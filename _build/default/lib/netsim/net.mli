(** A routing fabric connecting several simulated machines' stacks.

    Each {!Stack.t} models one machine's kernel; the fabric maps server
    addresses to stacks so that applications on one machine can open
    connections to another (e.g. a proxy fetching from an origin server)
    through ordinary address-based routing rather than by holding the
    remote stack directly. *)

type t

val create : sim:Engine.Sim.t -> unit -> t

val attach : t -> addr:Ipaddr.t -> Stack.t -> unit
(** Bind a machine address to its stack.
    @raise Invalid_argument if the address is already attached. *)

val lookup : t -> Ipaddr.t -> Stack.t option

val machines : t -> (Ipaddr.t * Stack.t) list
(** Attached machines in attachment order. *)

val connect :
  t ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  ?src_port:int ->
  port:int ->
  handlers:Socket.client_handlers ->
  unit ->
  unit
(** Open a connection from [src] to port [port] on the machine at [dst].
    An unknown destination behaves like an unreachable host: the
    [on_refused] handler fires after a routing delay. *)
