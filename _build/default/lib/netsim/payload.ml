type t = { bytes : int; tag : string; created : Engine.Simtime.t }

let make ?(tag = "") ~bytes created =
  if bytes < 0 then invalid_arg "Payload.make: negative size";
  { bytes; tag; created }

let packet_count ~mtu t =
  if mtu <= 0 then invalid_arg "Payload.packet_count: mtu must be positive";
  max 1 ((t.bytes + mtu - 1) / mtu)

let pp ppf t = Format.fprintf ppf "%s (%dB)" t.tag t.bytes
