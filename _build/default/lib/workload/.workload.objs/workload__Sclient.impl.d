lib/workload/sclient.ml: Array Engine Httpsim List Netsim Procsim
