lib/workload/synflood.ml: Engine Netsim Procsim
