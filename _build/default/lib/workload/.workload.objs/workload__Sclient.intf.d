lib/workload/sclient.mli: Engine Netsim
