lib/workload/synflood.mli: Engine Netsim
