(** An open-loop SYN-flood attacker (paper §5.7).

    Injects bogus SYN packets — spoofed sources inside a configurable
    prefix, handshakes never completed — at a fixed aggregate rate.
    Inter-arrival times are deterministic by default or exponential with an
    RNG, and the source address cycles through the prefix. *)

type t

val create :
  stack:Netsim.Stack.t ->
  ?src_base:Netsim.Ipaddr.t ->
  ?src_count:int ->
  ?port:int ->
  ?rng:Engine.Rng.t ->
  rate_per_sec:float ->
  unit ->
  t
(** Defaults: sources 192.168.66.1 + i for i < [src_count] (default 256,
    a /24), port 80, deterministic spacing.  Pass [rng] for Poisson
    arrivals.  @raise Invalid_argument on a non-positive rate. *)

val start : t -> unit
val stop : t -> unit
val sent : t -> int

val source_prefix : t -> Netsim.Ipaddr.t * int
(** The attacker's address block as (base, prefix-bits) — what a defender
    would learn from SYN-drop notifications and filter on. *)
