type t = {
  name : string;
  enqueue : Task.t -> unit;
  dequeue : Task.t -> unit;
  requeue : Task.t -> unit;
  pick : now:Engine.Simtime.t -> Task.t option;
  charge : container:Rescont.Container.t -> now:Engine.Simtime.t -> Engine.Simtime.span -> unit;
  next_release : now:Engine.Simtime.t -> Engine.Simtime.t option;
  runnable_count : unit -> int;
}
