(** Lottery scheduling (Waldspurger & Weihl, OSDI '94 — paper citation
    [48]), as an alternative proportional-share policy for the ablation
    experiments.

    Each container with runnable work holds tickets equal to its numeric
    priority (minimum 1); a uniformly random ticket selects the next
    container.  Idle-class containers receive a ticket only when no
    regular container has work.  Hierarchy and CPU limits are ignored —
    this is the flat policy of the original paper. *)

val make : rng:Engine.Rng.t -> unit -> Policy.t
