module Container = Rescont.Container

type t = {
  queues : (int, Task.t Queue.t * Container.t) Hashtbl.t; (* container id -> queue *)
  where : (int, int) Hashtbl.t; (* task id -> container id it is queued under *)
}

let create () = { queues = Hashtbl.create 64; where = Hashtbl.create 64 }

let queue_for t container =
  let cid = Container.id container in
  match Hashtbl.find_opt t.queues cid with
  | Some (q, _) -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues cid (q, container);
      q

let mem t task = Hashtbl.mem t.where task.Task.id

let enqueue t task =
  if not (mem t task) then begin
    let container = Task.container task in
    Queue.push task (queue_for t container);
    Hashtbl.replace t.where task.Task.id (Container.id container)
  end

let remove_from_queue q task =
  let keep = Queue.create () in
  Queue.iter (fun x -> if not (Task.equal x task) then Queue.push x keep) q;
  Queue.clear q;
  Queue.transfer keep q

let dequeue t task =
  match Hashtbl.find_opt t.where task.Task.id with
  | None -> ()
  | Some cid ->
      Hashtbl.remove t.where task.Task.id;
      (match Hashtbl.find_opt t.queues cid with
      | Some (q, _) -> remove_from_queue q task
      | None -> ())

let requeue t task =
  dequeue t task;
  enqueue t task

let count t = Hashtbl.length t.where

let front t container =
  match Hashtbl.find_opt t.queues (Container.id container) with
  | Some (q, _) -> Queue.peek_opt q
  | None -> None

let rotate t container =
  match Hashtbl.find_opt t.queues (Container.id container) with
  | Some (q, _) when Queue.length q > 1 ->
      let head = Queue.pop q in
      Queue.push head q
  | Some _ | None -> ()

let container_has_work t container =
  match Hashtbl.find_opt t.queues (Container.id container) with
  | Some (q, _) -> not (Queue.is_empty q)
  | None -> false

let rec subtree_has_work t container =
  container_has_work t container
  || List.exists (subtree_has_work t) (Container.children container)

let containers_with_work t =
  Hashtbl.fold (fun _ (q, c) acc -> if Queue.is_empty q then acc else c :: acc) t.queues []
