lib/sched/timeshare.mli: Engine Policy
