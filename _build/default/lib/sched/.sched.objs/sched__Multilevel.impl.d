lib/sched/multilevel.ml: Engine Float Hashtbl List Policy Rescont Runq
