lib/sched/timeshare.ml: Decay Engine Hashtbl List Policy Rescont Runq Task
