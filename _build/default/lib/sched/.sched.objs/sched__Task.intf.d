lib/sched/task.mli: Format Rescont
