lib/sched/decay.mli: Engine
