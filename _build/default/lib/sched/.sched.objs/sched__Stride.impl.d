lib/sched/stride.ml: Engine Float Hashtbl List Policy Rescont Runq
