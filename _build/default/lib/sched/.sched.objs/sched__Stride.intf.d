lib/sched/stride.mli: Policy
