lib/sched/policy.ml: Engine Rescont Task
