lib/sched/task.ml: Format Rescont
