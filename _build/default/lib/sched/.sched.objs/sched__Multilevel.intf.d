lib/sched/multilevel.mli: Engine Policy Rescont
