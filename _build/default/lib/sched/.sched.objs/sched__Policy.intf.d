lib/sched/policy.mli: Engine Rescont Task
