lib/sched/lottery.mli: Engine Policy
