lib/sched/lottery.ml: Engine List Policy Rescont Runq
