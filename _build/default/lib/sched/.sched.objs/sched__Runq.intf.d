lib/sched/runq.mli: Rescont Task
