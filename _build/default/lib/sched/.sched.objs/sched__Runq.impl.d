lib/sched/runq.ml: Hashtbl List Queue Rescont Task
