lib/sched/decay.ml: Engine
