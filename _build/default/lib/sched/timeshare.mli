(** The classical UNIX-style time-sharing scheduler (decay-usage).

    This models the {e unmodified} Digital UNIX scheduler of the paper's
    baseline systems: resource principals (containers — one per process in
    the classic configuration) are scheduled by numeric priority modified
    by a time-decayed measure of recent CPU usage (paper §4.3).  Principals
    with equal priority therefore converge to equal CPU shares; interrupt
    misaccounting (charges to the "unlucky" current principal) directly
    skews those shares, which is the effect Figure 13 measures.

    Idle-class containers (numeric priority 0) run only when nothing else
    is runnable.  CPU limits and fixed shares are not supported — the
    unmodified kernel has no such controls. *)

val make : ?tau:Engine.Simtime.span -> unit -> Policy.t
(** [tau] is the usage-decay time constant (default 1 s). *)
