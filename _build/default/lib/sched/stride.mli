(** Stride scheduling (Waldspurger '95 — paper citation [47]): the
    deterministic counterpart of lottery scheduling, for the ablation
    experiments.

    Each container's stride is inversely proportional to its tickets
    (numeric priority); the container with the smallest pass value runs and
    its pass advances by its stride scaled by the slice actually consumed.
    Flat (no hierarchy or limits), like the original algorithm. *)

val make : unit -> Policy.t
