module Container = Rescont.Container
module Attrs = Rescont.Attrs

type cstate = { mutable pass : float }

let make () =
  let runq = Runq.create () in
  let states : (int, cstate) Hashtbl.t = Hashtbl.create 64 in
  let state_of container =
    let cid = Container.id container in
    match Hashtbl.find_opt states cid with
    | Some s -> s
    | None ->
        let s = { pass = 0. } in
        Hashtbl.replace states cid s;
        s
  in
  let tickets container = float_of_int (max 1 (Container.attrs container).Attrs.priority) in
  let pick ~now:_ =
    let with_work = Runq.containers_with_work runq in
    let regular, idle =
      List.partition (fun c -> not (Attrs.is_idle_class (Container.attrs c))) with_work
    in
    let pool = if regular <> [] then regular else idle in
    match pool with
    | [] -> None
    | _ :: _ ->
        (* Late joiners start at the minimum pass so they cannot monopolise. *)
        let floor_pass =
          List.fold_left (fun acc c -> Float.min acc (state_of c).pass) infinity pool
        in
        List.iter
          (fun c ->
            let s = state_of c in
            if s.pass < floor_pass then s.pass <- floor_pass)
          pool;
        let best =
          List.fold_left
            (fun acc c ->
              match acc with
              | None -> Some c
              | Some b -> if (state_of c).pass < (state_of b).pass then Some c else acc)
            None pool
        in
        (match best with None -> None | Some c -> Runq.front runq c)
  in
  let charge ~container ~now:_ span =
    let s = state_of container in
    s.pass <- s.pass +. (float_of_int (Engine.Simtime.span_to_ns span) /. tickets container);
    Runq.rotate runq container
  in
  {
    Policy.name = "stride";
    enqueue = Runq.enqueue runq;
    dequeue = Runq.dequeue runq;
    requeue = Runq.requeue runq;
    pick;
    charge;
    next_release = (fun ~now:_ -> None);
    runnable_count = (fun () -> Runq.count runq);
  }
