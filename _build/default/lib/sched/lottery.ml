module Container = Rescont.Container
module Attrs = Rescont.Attrs

let make ~rng () =
  let runq = Runq.create () in
  let tickets container = max 1 (Container.attrs container).Attrs.priority in
  let pick ~now:_ =
    let with_work = Runq.containers_with_work runq in
    let regular, idle =
      List.partition (fun c -> not (Attrs.is_idle_class (Container.attrs c))) with_work
    in
    let pool = if regular <> [] then regular else idle in
    match pool with
    | [] -> None
    | _ :: _ ->
        let total = List.fold_left (fun acc c -> acc + tickets c) 0 pool in
        let winner = Engine.Rng.int rng total in
        let rec find acc = function
          | [] -> None
          | c :: rest ->
              let acc = acc + tickets c in
              if winner < acc then Runq.front runq c else find acc rest
        in
        find 0 pool
  in
  let charge ~container ~now:_ _span = Runq.rotate runq container in
  {
    Policy.name = "lottery";
    enqueue = Runq.enqueue runq;
    dequeue = Runq.dequeue runq;
    requeue = Runq.requeue runq;
    pick;
    charge;
    next_release = (fun ~now:_ -> None);
    runnable_count = (fun () -> Runq.count runq);
  }
