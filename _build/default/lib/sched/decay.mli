(** Exponentially time-decayed CPU-usage accumulator.

    The traditional UNIX scheduler modifies numeric priorities by a
    time-decayed measure of recent CPU usage (paper §4.3); this module is
    that measure.  Decay is applied lazily at read/update time, so idle
    principals cost nothing. *)

type t

val create : tau:Engine.Simtime.span -> t
(** [tau] is the exponential time constant: usage recorded [tau] ago counts
    for 1/e of its original weight.  @raise Invalid_argument if [tau] is
    not positive. *)

val add : t -> now:Engine.Simtime.t -> Engine.Simtime.span -> unit
(** Record consumption at time [now]. *)

val read : t -> now:Engine.Simtime.t -> float
(** Current decayed value, in nanoseconds of recent CPU. *)

val reset : t -> unit
