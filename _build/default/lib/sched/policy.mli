(** The interface between the CPU dispatcher and a scheduling policy.

    The dispatcher tells the policy which tasks are runnable, asks it to
    pick the next task to receive a time slice, and reports every charged
    slice — including slices charged to a container other than the running
    task's (interrupt misaccounting in the unmodified kernel model).  A
    policy is a record of closures so schedulers can be swapped per
    experiment without functorising the dispatcher. *)

type t = {
  name : string;
  enqueue : Task.t -> unit;
      (** The task became runnable.  Idempotent for an already-queued task. *)
  dequeue : Task.t -> unit;
      (** The task blocked or exited.  Idempotent for an unknown task. *)
  requeue : Task.t -> unit;
      (** The task's resource binding changed while runnable; move it to the
          queue of its new container. *)
  pick : now:Engine.Simtime.t -> Task.t option;
      (** Choose the task to run next; the task stays queued (it is picked
          again as long as it remains runnable).  [None] when no runnable
          task is currently eligible — possibly because every runnable task
          is throttled by a CPU limit; see [next_release]. *)
  charge : container:Rescont.Container.t -> now:Engine.Simtime.t -> Engine.Simtime.span -> unit;
      (** Account consumed CPU against [container]'s scheduling state (the
          dispatcher separately updates {!Rescont.Usage}). *)
  next_release : now:Engine.Simtime.t -> Engine.Simtime.t option;
      (** When [pick] returned [None] while throttled tasks exist: the
          earliest future instant at which a throttled task may become
          eligible again, so the dispatcher can arm a timer. *)
  runnable_count : unit -> int;
}
