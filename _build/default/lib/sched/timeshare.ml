module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs

type cstate = { decay : Decay.t }

let make ?(tau = Simtime.sec 1) () =
  let runq = Runq.create () in
  let states : (int, cstate) Hashtbl.t = Hashtbl.create 64 in
  let state_of container =
    let cid = Container.id container in
    match Hashtbl.find_opt states cid with
    | Some s -> s
    | None ->
        let s = { decay = Decay.create ~tau } in
        Hashtbl.replace states cid s;
        s
  in
  (* Lower badness runs first: recent usage divided by priority weight.
     For the thread actually at the head of a container's queue, the usage
     is the {e combined} decayed usage of the thread's whole scheduler
     binding, and the priority the best among those containers — a thread
     multiplexed over several activities is scheduled by the set, not by
     whichever container it happens to be bound to right now (§4.3). *)
  let badness_of_task ~now task =
    let containers = Task.scheduler_containers task in
    let usage =
      List.fold_left (fun acc c -> acc +. Decay.read (state_of c).decay ~now) 0. containers
    in
    let priority =
      List.fold_left (fun acc c -> max acc (Container.attrs c).Attrs.priority) 0 containers
    in
    usage /. float_of_int (max 1 priority)
  in
  let pick ~now =
    let with_work = Runq.containers_with_work runq in
    let regular, idle =
      List.partition (fun c -> not (Attrs.is_idle_class (Container.attrs c))) with_work
    in
    let candidates = if regular <> [] then regular else idle in
    let best =
      List.fold_left
        (fun acc c ->
          match Runq.front runq c with
          | None -> acc
          | Some task -> (
              let b = badness_of_task ~now task in
              match acc with
              | Some (_, best_bad) when best_bad <= b -> acc
              | Some _ | None -> Some (task, b)))
        None candidates
    in
    match best with None -> None | Some (task, _) -> Some task
  in
  let charge ~container ~now span =
    Decay.add (state_of container).decay ~now span;
    Runq.rotate runq container
  in
  {
    Policy.name = "timeshare";
    enqueue = Runq.enqueue runq;
    dequeue = Runq.dequeue runq;
    requeue = Runq.requeue runq;
    pick;
    charge;
    next_release = (fun ~now:_ -> None);
    runnable_count = (fun () -> Runq.count runq);
  }
