type t = { id : int; name : string; binding : Rescont.Binding.t; kernel : bool }

let next_id = ref 0

let create ?(kernel = false) ~name binding =
  incr next_id;
  { id = !next_id; name; binding; kernel }

let container t = Rescont.Binding.resource_binding t.binding
let scheduler_containers t = Rescont.Binding.scheduler_binding t.binding
let equal a b = a.id = b.id
let pp ppf t = Format.fprintf ppf "task#%d(%s)" t.id t.name
