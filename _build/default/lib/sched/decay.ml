module Simtime = Engine.Simtime

type t = { tau_ns : float; mutable value : float; mutable last : Simtime.t }

let create ~tau =
  let tau_ns = float_of_int (Simtime.span_to_ns tau) in
  if tau_ns <= 0. then invalid_arg "Decay.create: tau must be positive";
  { tau_ns; value = 0.; last = Simtime.zero }

let settle t ~now =
  let elapsed = float_of_int (Simtime.span_to_ns (Simtime.diff now t.last)) in
  if elapsed > 0. then begin
    t.value <- t.value *. exp (-.elapsed /. t.tau_ns);
    t.last <- now
  end

let add t ~now span =
  settle t ~now;
  t.value <- t.value +. float_of_int (Simtime.span_to_ns span)

let read t ~now =
  settle t ~now;
  t.value

let reset t = t.value <- 0.
