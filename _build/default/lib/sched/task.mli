(** The unit the CPU scheduler dispatches: one kernel-visible thread.

    A task carries the thread's container bindings (its identity as a
    resource principal); everything else about threads (continuations,
    blocking state) lives in {!Procsim}. *)

type t = {
  id : int;
  name : string;
  binding : Rescont.Binding.t;
  kernel : bool;  (** [true] for kernel threads, e.g. per-process network threads. *)
}

val create : ?kernel:bool -> name:string -> Rescont.Binding.t -> t
val container : t -> Rescont.Container.t
(** The task's current resource binding. *)

val scheduler_containers : t -> Rescont.Container.t list
(** The task's scheduler-binding set, most recently used first. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
