(** Lightweight in-simulation tracing.

    Subsystems emit timestamped, categorised events; tests and debugging
    sessions subscribe or dump them.  Tracing defaults to disabled and then
    costs one branch per call site. *)

type t

type entry = { time : Simtime.t; category : string; message : string }

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds retained entries; the oldest are dropped first. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> Simtime.t -> category:string -> string -> unit
(** Record an entry (no-op when disabled). *)

val emitf :
  t -> Simtime.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted emission; the format arguments are only evaluated when
    tracing is enabled. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val find : t -> category:string -> entry list
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
