type t = { mutable clock : Simtime.t; queue : (unit -> unit) Heapq.t }

type event_body = { mutable cancelled : bool; mutable handle : Heapq.handle option }
type event = event_body

let create () = { clock = Simtime.zero; queue = Heapq.create () }
let now t = t.clock

let at t time f =
  if Simtime.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Sim.at: %a is before current time %a" Simtime.pp time Simtime.pp t.clock);
  let body = { cancelled = false; handle = None } in
  let handle = Heapq.insert t.queue ~prio:(Simtime.to_ns time) f in
  body.handle <- Some handle;
  body

let after t span f =
  let span = Simtime.span_max span Simtime.span_zero in
  at t (Simtime.add t.clock span) f

let cancel t event =
  if event.cancelled then false
  else begin
    event.cancelled <- true;
    match event.handle with None -> false | Some h -> Heapq.cancel t.queue h
  end

let pending t = Heapq.length t.queue

let fire t prio f =
  t.clock <- Simtime.of_ns prio;
  f ()

let step t =
  match Heapq.pop_min t.queue with
  | None -> false
  | Some (prio, f) ->
      fire t prio f;
      true

let run_until t horizon =
  let rec loop () =
    match Heapq.peek_min_prio t.queue with
    | Some prio when Simtime.(of_ns prio <= horizon) -> (
        match Heapq.pop_min t.queue with
        | Some (p, f) ->
            fire t p f;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  if Simtime.(horizon > t.clock) then t.clock <- horizon

let run t = while step t do () done

let every t period f =
  if not (Simtime.span_is_positive period) then invalid_arg "Sim.every: period must be positive";
  let body = { cancelled = false; handle = None } in
  let rec arm () =
    if not body.cancelled then begin
      let h =
        Heapq.insert t.queue
          ~prio:(Simtime.to_ns (Simtime.add t.clock period))
          (fun () ->
            if not body.cancelled then begin
              f ();
              arm ()
            end)
      in
      body.handle <- Some h
    end
  in
  arm ();
  body
