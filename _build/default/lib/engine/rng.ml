(* splitmix64 (Steele, Lea & Flood 2014).  State is a single 64-bit word
   advanced by the golden-gamma; output is a finalizing hash of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed64 = bits64 t in
  { state = mix seed64 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits avoids modulo bias. *)
  let mask = Int64.shift_right_logical (bits64 t) 2 in
  let v = Int64.to_int mask in
  let bucket = max_int / bound * bound in
  if v < bucket then v mod bound
  else
    (* Extremely rare; loop via recursion. *)
    let rec retry () =
      let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
      if v < bucket then v mod bound else retry ()
    in
    retry ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L
