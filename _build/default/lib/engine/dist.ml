type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Pareto of float * float
  | Zipf of { values : float array; cdf : float array }
  | Empirical of { values : float array; cdf : float array }

let constant v = Constant v

let uniform ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  Uniform (lo, hi)

let exponential ~mean =
  if mean <= 0. then invalid_arg "Dist.exponential: mean must be positive";
  Exponential mean

let pareto ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.pareto: parameters must be positive";
  Pareto (shape, scale)

let normalized_cdf weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist: total weight must be positive";
  let acc = ref 0. in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let values = Array.init n (fun i -> float_of_int (i + 1)) in
  Zipf { values; cdf = normalized_cdf weights }

let empirical pairs =
  if Array.length pairs = 0 then invalid_arg "Dist.empirical: empty";
  let weights = Array.map fst pairs and values = Array.map snd pairs in
  Empirical { values; cdf = normalized_cdf weights }

(* Smallest index whose cdf value is >= u. *)
let cdf_index cdf u =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cdf - 1)

let sample t rng =
  match t with
  | Constant v -> v
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential mean ->
      let u = 1. -. Rng.float rng 1. in
      -.mean *. log u
  | Pareto (shape, scale) ->
      let u = 1. -. Rng.float rng 1. in
      scale /. (u ** (1. /. shape))
  | Zipf { values; cdf } | Empirical { values; cdf } ->
      values.(cdf_index cdf (Rng.float rng 1.))

let sample_int t rng =
  let v = sample t rng in
  if v <= 0. then 0 else int_of_float (Float.round v)

let mean = function
  | Constant v -> v
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Exponential m -> m
  | Pareto (shape, scale) -> if shape <= 1. then infinity else shape *. scale /. (shape -. 1.)
  | Zipf { values; cdf } | Empirical { values; cdf } ->
      let acc = ref 0. and prev = ref 0. in
      Array.iteri
        (fun i c ->
          acc := !acc +. ((c -. !prev) *. values.(i));
          prev := c)
        cdf;
      !acc
