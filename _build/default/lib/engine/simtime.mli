(** Simulated time.

    All simulated clocks in the repository use a single representation: an
    integer count of nanoseconds since the start of the simulation.  On a
    64-bit platform this covers ~292 years of simulated time, far beyond any
    experiment in the paper.  Wrapping the integer in an abstract type
    prevents accidental mixing of times, durations and plain counters. *)

type t
(** An absolute instant in simulated time. *)

type span
(** A duration (difference between two instants).  Spans may be negative as
    intermediate values but most API points expect non-negative spans. *)

val zero : t
(** The simulation epoch. *)

val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff a b] is the span from [b] to [a]; positive when [a] is later. *)

val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span
val sec_f : float -> span
(** Span constructors.  [sec_f] rounds to the nearest nanosecond. *)

val span_zero : span
val span_add : span -> span -> span
val span_sub : span -> span -> span
val span_min : span -> span -> span
val span_max : span -> span -> span
val span_scale : float -> span -> span
val span_compare : span -> span -> int
val span_is_positive : span -> bool
(** [span_is_positive d] is [true] iff [d] is strictly greater than zero. *)

val to_ns : t -> int
val of_ns : int -> t
val span_to_ns : span -> int
val span_of_ns : int -> span

val to_sec_f : t -> float
val span_to_sec_f : span -> float
val span_to_us_f : span -> float
val span_to_ms_f : span -> float

val ratio : span -> span -> float
(** [ratio num den] is [num / den] as a float; [0.] when [den] is zero. *)

val pp : Format.formatter -> t -> unit
val pp_span : Format.formatter -> span -> unit
(** Human-readable printers choosing an appropriate unit. *)
