type t = int
type span = int

let zero = 0
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let equal (a : t) b = Stdlib.( = ) a b
let compare (a : t) b = Stdlib.compare a b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b
let add t d = t + d
let diff a b = a - b
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let sec_f s = int_of_float (Float.round (s *. 1e9))
let span_zero = 0
let span_add a b = a + b
let span_sub a b = a - b
let span_min (a : span) (b : span) = Stdlib.min a b
let span_max (a : span) (b : span) = Stdlib.max a b
let span_scale f d = int_of_float (Float.round (f *. float_of_int d))
let span_compare (a : span) b = Stdlib.compare a b
let span_is_positive d = Stdlib.( > ) d 0
let to_ns t = t
let of_ns n = n
let span_to_ns d = d
let span_of_ns n = n
let to_sec_f t = float_of_int t /. 1e9
let span_to_sec_f d = float_of_int d /. 1e9
let span_to_us_f d = float_of_int d /. 1e3
let span_to_ms_f d = float_of_int d /. 1e6
let ratio num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let pp_value ppf v =
  let abs = Stdlib.abs v in
  if abs >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (float_of_int v /. 1e9)
  else if abs >= 1_000_000 then Format.fprintf ppf "%.3fms" (float_of_int v /. 1e6)
  else if abs >= 1_000 then Format.fprintf ppf "%.3fus" (float_of_int v /. 1e3)
  else Format.fprintf ppf "%dns" v

let pp = pp_value
let pp_span = pp_value
