(* A classic array-backed binary heap.  Each inserted element gets a node
   record; cancellation marks the node dead and decrements [live], and dead
   nodes are discarded when they reach the top.  This keeps cancel O(1) at
   the cost of dead nodes lingering in the array, which is fine for the
   simulator (cancellations are rare relative to insertions). *)

type 'a node = { prio : int; seq : int; value : 'a; mutable alive : bool }
type handle = H : 'a node -> handle

type 'a t = {
  mutable arr : 'a node option array;
  mutable size : int; (* slots used in [arr], live or dead *)
  mutable live : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 64 None; size = 0; live = 0; next_seq = 0 }
let length q = q.live
let is_empty q = q.live = 0

let node_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q =
  let arr = Array.make (2 * Array.length q.arr) None in
  Array.blit q.arr 0 arr 0 q.size;
  q.arr <- arr

let get q i =
  match q.arr.(i) with
  | Some n -> n
  | None -> assert false

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let np = get q parent and ni = get q i in
    if node_lt ni np then begin
      q.arr.(parent) <- Some ni;
      q.arr.(i) <- Some np;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && node_lt (get q l) (get q !smallest) then smallest := l;
  if r < q.size && node_lt (get q r) (get q !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = get q i in
    q.arr.(i) <- q.arr.(!smallest);
    q.arr.(!smallest) <- Some tmp;
    sift_down q !smallest
  end

let insert q ~prio value =
  let node = { prio; seq = q.next_seq; value; alive = true } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.arr then grow q;
  q.arr.(q.size) <- Some node;
  q.size <- q.size + 1;
  q.live <- q.live + 1;
  sift_up q (q.size - 1);
  H node

let cancel q (H node) =
  if node.alive then begin
    node.alive <- false;
    q.live <- q.live - 1;
    true
  end
  else false

let remove_top q =
  let top = get q 0 in
  q.size <- q.size - 1;
  q.arr.(0) <- q.arr.(q.size);
  q.arr.(q.size) <- None;
  if q.size > 0 then sift_down q 0;
  top

(* Discard dead nodes at the top until a live one (or nothing) remains. *)
let rec skim q = if q.size > 0 && not (get q 0).alive then (ignore (remove_top q); skim q)

let pop_min q =
  skim q;
  if q.size = 0 then None
  else begin
    let top = remove_top q in
    top.alive <- false;
    q.live <- q.live - 1;
    Some (top.prio, top.value)
  end

let peek_min_prio q =
  skim q;
  if q.size = 0 then None else Some (get q 0).prio

let clear q =
  Array.fill q.arr 0 q.size None;
  q.size <- 0;
  q.live <- 0
