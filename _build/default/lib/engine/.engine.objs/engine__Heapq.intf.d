lib/engine/heapq.mli:
