lib/engine/stats.mli: Format Rng Simtime
