lib/engine/rng.mli:
