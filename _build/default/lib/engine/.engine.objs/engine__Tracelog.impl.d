lib/engine/tracelog.ml: Array Format List Simtime String
