lib/engine/dist.ml: Array Float Rng
