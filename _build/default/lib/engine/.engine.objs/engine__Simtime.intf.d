lib/engine/simtime.mli: Format
