lib/engine/stats.ml: Array Format List Rng Simtime Stdlib String
