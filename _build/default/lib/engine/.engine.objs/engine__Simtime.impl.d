lib/engine/simtime.ml: Float Format Stdlib
