lib/engine/tracelog.mli: Format Simtime
