lib/engine/sim.ml: Format Heapq Simtime
