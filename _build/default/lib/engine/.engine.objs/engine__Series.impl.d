lib/engine/series.ml: Buffer Float Format List Printf String
