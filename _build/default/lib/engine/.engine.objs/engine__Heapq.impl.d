lib/engine/heapq.ml: Array
