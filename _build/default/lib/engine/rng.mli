(** Deterministic pseudo-random number generation.

    The simulator never uses [Stdlib.Random]: every stochastic component
    takes an explicit [Rng.t], so a run is a pure function of its seeds and
    experiments are exactly reproducible.  The generator is splitmix64,
    which is small, fast and statistically adequate for workload
    generation. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent generator; used to give each workload source its
    own stream so adding a source does not perturb the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
