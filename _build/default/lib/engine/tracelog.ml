type entry = { time : Simtime.t; category : string; message : string }

type t = {
  mutable on : bool;
  capacity : int;
  buffer : entry option array;
  mutable head : int; (* next write slot *)
  mutable count : int;
}

let create ?(enabled = false) ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Tracelog.create: capacity must be positive";
  { on = enabled; capacity; buffer = Array.make capacity None; head = 0; count = 0 }

let enabled t = t.on
let set_enabled t v = t.on <- v

let emit t time ~category message =
  if t.on then begin
    t.buffer.(t.head) <- Some { time; category; message };
    t.head <- (t.head + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let emitf t time ~category fmt =
  Format.kasprintf
    (fun message -> emit t time ~category message)
    fmt

let entries t =
  let result = ref [] in
  let start = (t.head - t.count + t.capacity) mod t.capacity in
  for i = t.count - 1 downto 0 do
    match t.buffer.((start + i) mod t.capacity) with
    | Some e -> result := e :: !result
    | None -> ()
  done;
  !result

let find t ~category = List.filter (fun e -> String.equal e.category category) (entries t)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.head <- 0;
  t.count <- 0

let pp_entry ppf e = Format.fprintf ppf "[%a] %s: %s" Simtime.pp e.time e.category e.message
