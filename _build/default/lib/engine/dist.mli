(** Sampling from the distributions used by the workload generators. *)

type t
(** A distribution over non-negative floats. *)

val constant : float -> t
val uniform : lo:float -> hi:float -> t

val exponential : mean:float -> t
(** Memoryless inter-arrival times; used for open-loop (Poisson) packet
    sources such as the SYN flooders. *)

val pareto : shape:float -> scale:float -> t
(** Heavy-tailed; Web object sizes are classically Pareto-distributed. *)

val zipf : n:int -> s:float -> t
(** Zipf over ranks [1..n] with exponent [s] (returned as a float rank);
    used for document popularity.  Sampling is O(log n) by inverting the
    precomputed CDF. *)

val empirical : (float * float) array -> t
(** [empirical [| (w1, v1); ... |]] samples value [vi] with probability
    proportional to weight [wi].  @raise Invalid_argument on empty or
    non-positive total weight. *)

val sample : t -> Rng.t -> float
val sample_int : t -> Rng.t -> int
(** [sample_int] rounds the sample to the nearest integer, clamped at 0. *)

val mean : t -> float
(** Analytic mean where available; for [zipf] and [empirical] the exact
    finite mean is computed. *)
