lib/disksim/disk.mli: Engine Procsim Rescont
