lib/disksim/disk.ml: Engine Float Hashtbl Procsim Queue Rescont
