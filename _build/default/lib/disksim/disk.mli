(** A simulated disk with container-aware request scheduling.

    Paper §4.4: resource containers are a mechanism for charging {e any}
    resource to the right activity; disk bandwidth allocation is one of
    the complementary policies it enables.  This module provides the
    substrate: a single-spindle disk (seek + rotational overhead per
    request, then sequential transfer) whose request queue is drained in
    container-priority order with weighted fair queueing among equals —
    the same discipline the network stack uses for packets.

    Requests are asynchronous at the kernel level ({!submit}) with a
    blocking wrapper for machine threads ({!read}).  Service time is
    {e disk} time: it charges the container's disk counters, not CPU. *)

type t

val create :
  ?seek_time:Engine.Simtime.span ->
  ?transfer_rate_mb_s:float ->
  machine:Procsim.Machine.t ->
  unit ->
  t
(** Defaults: 8 ms average positioning time and 20 MB/s media rate —
    a late-1990s SCSI disk, matching the paper's hardware era. *)

val submit :
  t -> container:Rescont.Container.t -> bytes:int -> (unit -> unit) -> unit
(** Queue a read of [bytes] on behalf of [container]; the callback fires
    at completion.  @raise Invalid_argument on negative sizes. *)

val read : t -> container:Rescont.Container.t -> bytes:int -> unit
(** Blocking read for machine threads: the calling thread sleeps (without
    consuming CPU) until the transfer completes. *)

val service_time : t -> bytes:int -> Engine.Simtime.span
(** Seek plus transfer time for one request of the given size. *)

val queue_depth : t -> int
(** Requests queued or in service. *)

val busy_time : t -> Engine.Simtime.span
(** Total disk-busy time so far. *)

val completed : t -> int
