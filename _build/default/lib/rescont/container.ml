module Simtime = Engine.Simtime

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type t = {
  id : int;
  name : string;
  mutable parent : t option;
  mutable children : t list;
  mutable attrs : Attrs.t;
  usage : Usage.t;
  subtree_usage : Usage.t; (* this container plus all descendants, ever *)
  mutable refs : int;
  mutable bindings : int;
  mutable destroyed : bool;
  root : bool;
}

let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

let id t = t.id
let name t = t.name
let parent t = t.parent
let children t = t.children
let is_leaf t = t.children = []
let is_root t = t.root
let is_destroyed t = t.destroyed
let attrs t = t.attrs
let usage t = t.usage
let binding_count t = t.bindings
let ref_count t = t.refs

let rec depth t = match t.parent with None -> 0 | Some p -> 1 + depth p
let rec root_of t = match t.parent with None -> t | Some p -> root_of p

let rec iter_subtree f t =
  f t;
  List.iter (iter_subtree f) t.children

let check_alive t = if t.destroyed then error "container %s (#%d) is destroyed" t.name t.id

let share_of c = match c.attrs.Attrs.sched_class with Attrs.Fixed_share s -> s | Attrs.Timeshare -> 0.

(* Children may only hang off fixed-share containers, and the fixed shares
   of the children of one parent must not over-subscribe it. *)
let check_can_adopt parent extra_share =
  check_alive parent;
  (match parent.attrs.Attrs.sched_class with
  | Attrs.Fixed_share _ -> ()
  | Attrs.Timeshare ->
      error "container %s is timeshare-class and cannot have children (prototype restriction)"
        parent.name);
  if parent.bindings > 0 then
    error "container %s has thread bindings; threads bind only to leaves" parent.name;
  let committed = List.fold_left (fun acc c -> acc +. share_of c) 0. parent.children in
  if committed +. extra_share > 1. +. 1e-9 then
    error "fixed shares under %s would exceed 1.0 (%.3f committed + %.3f new)" parent.name
      committed extra_share

let make ?name ?(attrs = Attrs.default) ~parent ~root () =
  (match Attrs.validate attrs with Ok () -> () | Error msg -> error "invalid attributes: %s" msg);
  let id = fresh_id () in
  let name = match name with Some n -> n | None -> Printf.sprintf "container-%d" id in
  let t =
    {
      id;
      name;
      parent;
      children = [];
      attrs;
      usage = Usage.create ();
      subtree_usage = Usage.create ();
      refs = 1;
      bindings = 0;
      destroyed = false;
      root;
    }
  in
  (match parent with
  | Some p ->
      check_can_adopt p (share_of t);
      p.children <- p.children @ [ t ]
  | None -> ());
  t

let create_root () =
  make ~name:"root" ~attrs:(Attrs.fixed_share ~share:1.0 ()) ~parent:None ~root:true ()

let create ?name ?attrs ~parent () = make ?name ?attrs ~parent:(Some parent) ~root:false ()
let create_detached ?name ?attrs () = make ?name ?attrs ~parent:None ~root:false ()

let detach t =
  match t.parent with
  | None -> ()
  | Some p ->
      p.children <- List.filter (fun c -> c.id <> t.id) p.children;
      t.parent <- None

let rec is_ancestor ~candidate t =
  t.id = candidate.id
  || match t.parent with None -> false | Some p -> is_ancestor ~candidate p

let has_ancestor t ~ancestor = is_ancestor ~candidate:ancestor t

let set_parent t new_parent =
  check_alive t;
  (match new_parent with
  | Some p ->
      check_alive p;
      if is_ancestor ~candidate:t p then error "re-parenting %s under %s creates a cycle" t.name p.name
  | None -> ());
  detach t;
  match new_parent with
  | None -> ()
  | Some p ->
      check_can_adopt p (share_of t);
      p.children <- p.children @ [ t ];
      t.parent <- Some p

let set_attrs t attrs =
  check_alive t;
  (match Attrs.validate attrs with Ok () -> () | Error msg -> error "invalid attributes: %s" msg);
  (match (attrs.Attrs.sched_class, t.children) with
  | Attrs.Timeshare, _ :: _ ->
      error "container %s has children and must stay fixed-share" t.name
  | (Attrs.Fixed_share _ | Attrs.Timeshare), _ -> ());
  (* Re-check sibling share budget with the new share value. *)
  (match (t.parent, attrs.Attrs.sched_class) with
  | Some p, Attrs.Fixed_share s ->
      let committed =
        List.fold_left (fun acc c -> if c.id = t.id then acc else acc +. share_of c) 0. p.children
      in
      if committed +. s > 1. +. 1e-9 then
        error "fixed shares under %s would exceed 1.0" p.name
  | (Some _ | None), (Attrs.Fixed_share _ | Attrs.Timeshare) -> ());
  t.attrs <- attrs

(* Charges land on the container's own usage and roll up into the subtree
   usage of the container and every ancestor, so hierarchical accounting
   survives the destruction of children (§4.5). *)
let ascend t f =
  let rec bump node =
    f node.subtree_usage;
    match node.parent with None -> () | Some p -> bump p
  in
  bump t

let charge_cpu t ~kernel span =
  Usage.charge_cpu t.usage ~kernel span;
  ascend t (fun u -> Usage.charge_cpu u ~kernel span)

let charge_rx t ~packets ~bytes =
  Usage.charge_rx t.usage ~packets ~bytes;
  ascend t (fun u -> Usage.charge_rx u ~packets ~bytes)

let charge_tx t ~packets ~bytes =
  Usage.charge_tx t.usage ~packets ~bytes;
  ascend t (fun u -> Usage.charge_tx u ~packets ~bytes)

let charge_memory t delta =
  Usage.charge_memory t.usage delta;
  ascend t (fun u -> Usage.charge_memory u delta)

let charge_disk t ~bytes span =
  Usage.charge_disk t.usage ~bytes span;
  ascend t (fun u -> Usage.charge_disk u ~bytes span)

let subtree_usage t = t.subtree_usage
let subtree_cpu t = Usage.cpu_total t.subtree_usage

let rec guaranteed_fraction t =
  let parent_fraction = match t.parent with None -> 1.0 | Some p -> guaranteed_fraction p in
  match t.attrs.Attrs.sched_class with
  | Attrs.Fixed_share s -> s *. parent_fraction
  | Attrs.Timeshare -> parent_fraction

let rec effective_cpu_limit t =
  let own = match t.attrs.Attrs.cpu_limit with Some l -> l | None -> 1.0 in
  match t.parent with None -> own | Some p -> Float.min own (effective_cpu_limit p)

let destroy t =
  if not t.destroyed then begin
    (* §4.6: when a parent is destroyed, its children get "no parent". *)
    List.iter (fun c -> c.parent <- None) t.children;
    t.children <- [];
    detach t;
    t.destroyed <- true
  end

let retain t =
  check_alive t;
  t.refs <- t.refs + 1

let maybe_collect t = if t.refs <= 0 && t.bindings <= 0 && not t.root then destroy t

let release t =
  if not t.destroyed then begin
    t.refs <- t.refs - 1;
    maybe_collect t
  end

let incr_bindings t =
  check_alive t;
  if not (is_leaf t) then error "thread binding requires a leaf container (%s has children)" t.name;
  t.bindings <- t.bindings + 1

let decr_bindings t =
  t.bindings <- t.bindings - 1;
  maybe_collect t

let pp ppf t =
  Format.fprintf ppf "#%d %s [%a]%s" t.id t.name Attrs.pp t.attrs
    (if t.destroyed then " (destroyed)" else "")

let pp_tree ppf t =
  let rec walk indent node =
    Format.fprintf ppf "%s%s [%a] cpu=%a subtree=%a@." indent node.name Attrs.pp node.attrs
      Simtime.pp_span (Usage.cpu_total node.usage) Simtime.pp_span
      (Usage.cpu_total node.subtree_usage);
    List.iter (walk (indent ^ "  ")) node.children
  in
  walk "" t
