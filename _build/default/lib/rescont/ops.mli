(** The resource-container system-call surface (paper §4.6, Table 1).

    These are the operations the prototype added to Digital UNIX, expressed
    over a process's descriptor table.  Each operation has an associated
    simulated kernel cost in {!Cost}, taken directly from the paper's
    Table 1, which the simulated kernel charges when an application invokes
    the operation; the benchmark harness also measures the real wall-clock
    cost of these OCaml implementations. *)

type desc = Desc_table.desc

val rc_create :
  Desc_table.t -> parent:Container.t -> ?name:string -> ?attrs:Attrs.t -> unit -> desc
(** Create a new resource container and install a descriptor for it. *)

val rc_release : Desc_table.t -> desc -> unit
(** Close the descriptor; the container is destroyed once no descriptors
    or thread bindings remain.  @raise Not_found if not open. *)

val rc_destroy : Desc_table.t -> desc -> unit
(** Close the descriptor and force container destruction (the prototype's
    explicit destroy, measured in Table 1). *)

val rc_set_parent : Desc_table.t -> desc -> parent:desc option -> unit
(** Change the container's parent; [None] sets "no parent". *)

val rc_get_attrs : Desc_table.t -> desc -> Attrs.t
val rc_set_attrs : Desc_table.t -> desc -> Attrs.t -> unit

val rc_get_usage : Desc_table.t -> desc -> Usage.snapshot
(** "Obtain container resource usage". *)

val rc_bind_thread : Desc_table.t -> Binding.t -> now:Engine.Simtime.t -> desc -> unit
(** "Binding a thread to a container": set the thread's resource binding to
    the container behind [desc]. *)

val rc_transfer : src:Desc_table.t -> dst:Desc_table.t -> desc -> desc
(** "Move container between processes". *)

val rc_get_handle : Desc_table.t -> Container.t -> desc
(** "Obtain handle for existing container" (e.g. one received over IPC). *)

(** Simulated kernel cost of each primitive, from the paper's Table 1
    (500 MHz Alpha 21164, warm cache). *)
module Cost : sig
  val create : Engine.Simtime.span (* 2.36 us *)
  val destroy : Engine.Simtime.span (* 2.10 us *)
  val rebind_thread : Engine.Simtime.span (* 1.04 us *)
  val get_usage : Engine.Simtime.span (* 2.04 us *)
  val set_get_attrs : Engine.Simtime.span (* 2.10 us *)
  val move_between_processes : Engine.Simtime.span (* 3.15 us *)
  val get_handle : Engine.Simtime.span (* 1.90 us *)

  val all : (string * Engine.Simtime.span) list
  (** Labelled list in the paper's Table 1 row order. *)
end
