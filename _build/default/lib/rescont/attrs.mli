(** Container attributes (paper §4.1, §4.6).

    Attributes carry the scheduling parameters, resource limits and network
    QoS values of a resource container.  They are plain data: policies in
    {!Sched} and {!Netsim} interpret them. *)

type sched_class =
  | Fixed_share of float
      (** Guaranteed fraction of the parent's CPU allocation, in [0, 1].
          The prototype ensures fixed-share guarantees over multi-second
          timescales; only fixed-share containers may have children
          (paper §5.1). *)
  | Timeshare
      (** Share the parent's residual CPU with sibling timeshare containers
          under decay-usage scheduling, weighted by {!field:priority}. *)

type t = {
  sched_class : sched_class;
  priority : int;
      (** Numeric priority for timeshare scheduling and for the ordering of
          kernel protocol processing (paper §4.7).  Higher is better.
          Priority 0 is idle-class: such a container is only serviced when
          nothing else is runnable — the SYN-flood defence of §4.8 binds the
          attacker's listen socket to a priority-0 container. *)
  cpu_limit : float option;
      (** Maximum fraction of the whole machine's CPU this container and its
          descendants may consume ("resource sandbox", §4.8/§5.6).  [None]
          means unlimited. *)
  memory_limit : int option;  (** Bytes of memory the subtree may hold. *)
  net_priority : int option;
      (** Network QoS value; defaults to {!field:priority} when [None]. *)
}

val default : t
(** Timeshare, priority 10, no limits — the attributes of the default
    container created for a new process. *)

val timeshare : ?priority:int -> ?cpu_limit:float -> ?memory_limit:int -> unit -> t
val fixed_share : share:float -> ?cpu_limit:float -> ?memory_limit:int -> unit -> t
(** Constructors validating their arguments.
    @raise Invalid_argument on shares or limits outside [0, 1], or negative
    priorities. *)

val with_priority : t -> int -> t
val with_cpu_limit : t -> float option -> t
val effective_net_priority : t -> int
val is_idle_class : t -> bool
(** [is_idle_class a] is [true] when the numeric priority is 0. *)

val validate : t -> (unit, string) result
val pp : Format.formatter -> t -> unit
