type desc = Desc_table.desc

let rc_create table ~parent ?name ?attrs () =
  let container = Container.create ?name ?attrs ~parent () in
  let d = Desc_table.install table container in
  (* [create] took the creation reference and [install] retained again; the
     descriptor is the only reference the application holds. *)
  Container.release container;
  d

let rc_release table d = Desc_table.close table d

let rc_destroy table d =
  let c = Desc_table.lookup table d in
  Desc_table.close table d;
  Container.destroy c

let rc_set_parent table d ~parent =
  let c = Desc_table.lookup table d in
  let p = match parent with None -> None | Some pd -> Some (Desc_table.lookup table pd) in
  Container.set_parent c p

let rc_get_attrs table d = Container.attrs (Desc_table.lookup table d)
let rc_set_attrs table d attrs = Container.set_attrs (Desc_table.lookup table d) attrs
let rc_get_usage table d = Usage.snapshot (Container.usage (Desc_table.lookup table d))

let rc_bind_thread table binding ~now d =
  Binding.set_resource_binding binding ~now (Desc_table.lookup table d)

let rc_transfer ~src ~dst d = Desc_table.transfer ~src ~dst d
let rc_get_handle table container = Desc_table.install table container

module Cost = struct
  module Simtime = Engine.Simtime

  let create = Simtime.ns 2_360
  let destroy = Simtime.ns 2_100
  let rebind_thread = Simtime.ns 1_040
  let get_usage = Simtime.ns 2_040
  let set_get_attrs = Simtime.ns 2_100
  let move_between_processes = Simtime.ns 3_150
  let get_handle = Simtime.ns 1_900

  let all =
    [
      ("create resource container", create);
      ("destroy resource container", destroy);
      ("change thread's resource binding", rebind_thread);
      ("obtain container resource usage", get_usage);
      ("set/get container attributes", set_get_attrs);
      ("move container between processes", move_between_processes);
      ("obtain handle for existing container", get_handle);
    ]
end
