type uid = int
type right = Observe | Modify | Manage

exception Denied of string

let denied fmt = Format.kasprintf (fun s -> raise (Denied s)) fmt

type entry = {
  e_owner : uid;
  mutable world_observe : bool;
  mutable grants : (uid * right) list;
}

type t = { entries : (int, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 32 }

let entry_of t container =
  match Hashtbl.find_opt t.entries (Container.id container) with
  | Some e -> e
  | None -> { e_owner = 0; world_observe = false; grants = [] }

let register t ~owner container =
  Hashtbl.replace t.entries (Container.id container)
    { e_owner = owner; world_observe = false; grants = [] }

let owner t container = (entry_of t container).e_owner

let check t ~as_uid container right =
  if as_uid = 0 then true
  else
    let e = entry_of t container in
    e.e_owner = as_uid
    || (right = Observe && e.world_observe)
    || List.mem (as_uid, right) e.grants

let require t ~as_uid container right =
  if not (check t ~as_uid container right) then
    denied "uid %d lacks %s on container %s" as_uid
      (match right with Observe -> "observe" | Modify -> "modify" | Manage -> "manage")
      (Container.name container)

let require_owner t ~as_uid container what =
  if as_uid <> 0 && (entry_of t container).e_owner <> as_uid then
    denied "uid %d is not the owner of %s (%s)" as_uid (Container.name container) what

let persistent_entry t container =
  let cid = Container.id container in
  match Hashtbl.find_opt t.entries cid with
  | Some e -> e
  | None ->
      let e = { e_owner = 0; world_observe = false; grants = [] } in
      Hashtbl.replace t.entries cid e;
      e

let grant t ~as_uid container ~to_uid right =
  require_owner t ~as_uid container "grant";
  let e = persistent_entry t container in
  if not (List.mem (to_uid, right) e.grants) then e.grants <- (to_uid, right) :: e.grants

let revoke t ~as_uid container ~to_uid right =
  require_owner t ~as_uid container "revoke";
  let e = persistent_entry t container in
  e.grants <- List.filter (fun g -> g <> (to_uid, right)) e.grants

let set_world_observe t ~as_uid container value =
  require_owner t ~as_uid container "world-observe";
  (persistent_entry t container).world_observe <- value

let create_child t ~as_uid ~parent ?name ?attrs () =
  require t ~as_uid parent Manage;
  let child = Container.create ?name ?attrs ~parent () in
  register t ~owner:as_uid child;
  child

let set_attrs t ~as_uid container attrs =
  require t ~as_uid container Modify;
  Container.set_attrs container attrs

let get_attrs t ~as_uid container =
  require t ~as_uid container Observe;
  Container.attrs container

let get_usage t ~as_uid container =
  require t ~as_uid container Observe;
  Usage.snapshot (Container.usage container)

let set_parent t ~as_uid container ~parent =
  require t ~as_uid container Manage;
  (match Container.parent container with
  | Some old_parent -> require t ~as_uid old_parent Manage
  | None -> ());
  (match parent with Some p -> require t ~as_uid p Manage | None -> ());
  Container.set_parent container parent

let bind_thread t ~as_uid binding ~now container =
  require t ~as_uid container Modify;
  Binding.set_resource_binding binding ~now container

let destroy t ~as_uid container =
  require t ~as_uid container Manage;
  Container.destroy container;
  Hashtbl.remove t.entries (Container.id container)
