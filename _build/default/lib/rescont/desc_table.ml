type desc = int
type t = { slots : (desc, Container.t) Hashtbl.t }

let create () = { slots = Hashtbl.create 16 }

let lowest_free t =
  let rec scan d = if Hashtbl.mem t.slots d then scan (d + 1) else d in
  scan 0

let install t container =
  Container.retain container;
  let d = lowest_free t in
  Hashtbl.replace t.slots d container;
  d

let lookup t d = match Hashtbl.find_opt t.slots d with Some c -> c | None -> raise Not_found
let lookup_opt t d = Hashtbl.find_opt t.slots d

let close t d =
  match Hashtbl.find_opt t.slots d with
  | None -> raise Not_found
  | Some c ->
      Hashtbl.remove t.slots d;
      Container.release c

let transfer ~src ~dst d =
  let c = lookup src d in
  install dst c

let inherit_all t =
  let child = create () in
  Hashtbl.iter
    (fun d c ->
      Container.retain c;
      Hashtbl.replace child.slots d c)
    t.slots;
  child

let descriptors t = Hashtbl.fold (fun d _ acc -> d :: acc) t.slots [] |> List.sort compare
let count t = Hashtbl.length t.slots

let close_all t =
  let ds = descriptors t in
  List.iter (fun d -> close t d) ds
