(** Access control for containers and their attributes.

    Paper §4.1: "A practical implementation would require an access
    control model for containers and their attributes; space does not
    permit a discussion of this issue."  This module supplies the missing
    piece as a small capability/ACL hybrid in the UNIX spirit:

    - every container has an {e owner} user id;
    - rights are {!Observe} (read attributes and usage), {!Modify}
      (set attributes, bind threads and sockets) and {!Manage} (create
      children, re-parent, destroy, pass to another process);
    - the owner holds all rights; other users hold whatever the owner
      granted them, plus a world-observe bit; uid 0 bypasses all checks;
    - a child container's creator must hold {!Manage} on the parent, and
      the child is owned by its creator.

    The checked operation wrappers mirror {!Ops} and raise {!Denied}
    before delegating. *)

type uid = int

type right = Observe | Modify | Manage

exception Denied of string

type t
(** An access-control table covering any number of containers. *)

val create : unit -> t

val register : t -> owner:uid -> Container.t -> unit
(** Declare ownership of a container.  Containers never registered are
    treated as owned by uid 0 (the system). *)

val owner : t -> Container.t -> uid

val grant : t -> as_uid:uid -> Container.t -> to_uid:uid -> right -> unit
(** Owner (or uid 0) extends a right to another user.
    @raise Denied otherwise. *)

val revoke : t -> as_uid:uid -> Container.t -> to_uid:uid -> right -> unit

val set_world_observe : t -> as_uid:uid -> Container.t -> bool -> unit
(** Let every user read this container's attributes and usage. *)

val check : t -> as_uid:uid -> Container.t -> right -> bool
val require : t -> as_uid:uid -> Container.t -> right -> unit
(** @raise Denied when [check] is false. *)

(** {1 Checked operations (the §4.6 surface, permission-checked)} *)

val create_child :
  t ->
  as_uid:uid ->
  parent:Container.t ->
  ?name:string ->
  ?attrs:Attrs.t ->
  unit ->
  Container.t
(** Requires [Manage] on [parent]; the child is owned by [as_uid]. *)

val set_attrs : t -> as_uid:uid -> Container.t -> Attrs.t -> unit
val get_attrs : t -> as_uid:uid -> Container.t -> Attrs.t
val get_usage : t -> as_uid:uid -> Container.t -> Usage.snapshot

val set_parent : t -> as_uid:uid -> Container.t -> parent:Container.t option -> unit
(** Requires [Manage] on the container, on the old parent (if any) and on
    the new parent (if any). *)

val bind_thread : t -> as_uid:uid -> Binding.t -> now:Engine.Simtime.t -> Container.t -> unit
(** Requires [Modify] on the target container. *)

val destroy : t -> as_uid:uid -> Container.t -> unit
(** Requires [Manage]. *)
