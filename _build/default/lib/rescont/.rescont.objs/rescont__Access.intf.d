lib/rescont/access.mli: Attrs Binding Container Engine Usage
