lib/rescont/billing.mli: Container Engine
