lib/rescont/desc_table.mli: Container
