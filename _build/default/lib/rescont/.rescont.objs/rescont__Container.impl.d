lib/rescont/container.ml: Attrs Engine Float Format List Printf Usage
