lib/rescont/ops.mli: Attrs Binding Container Desc_table Engine Usage
