lib/rescont/container.mli: Attrs Engine Format Usage
