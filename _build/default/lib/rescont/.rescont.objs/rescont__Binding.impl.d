lib/rescont/binding.ml: Container Engine List
