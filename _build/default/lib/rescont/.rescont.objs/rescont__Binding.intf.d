lib/rescont/binding.mli: Container Engine
