lib/rescont/desc_table.ml: Container Hashtbl List
