lib/rescont/access.ml: Binding Container Format Hashtbl List Usage
