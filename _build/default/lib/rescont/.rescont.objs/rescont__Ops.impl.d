lib/rescont/ops.ml: Binding Container Desc_table Engine Usage
