lib/rescont/attrs.ml: Format Printf
