lib/rescont/attrs.mli: Format
