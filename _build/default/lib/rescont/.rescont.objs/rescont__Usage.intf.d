lib/rescont/usage.mli: Engine Format
