lib/rescont/usage.ml: Engine Format
