lib/rescont/billing.ml: Container Engine Format List Printf String Usage
