(** Per-process container descriptor tables (paper §4.6).

    Containers are visible to applications as file-descriptor-like handles:
    small integers local to a process, inherited across [fork], passable
    between processes (the sender keeps access), and released with
    [close]. Each open descriptor holds one reference on its container. *)

type t
type desc = int

val create : unit -> t

val install : t -> Container.t -> desc
(** Allocate the lowest free descriptor for the container, retaining it.
    The same container may be installed more than once (multiple
    descriptors, multiple references), as with [dup]. *)

val lookup : t -> desc -> Container.t
(** @raise Not_found if the descriptor is not open. *)

val lookup_opt : t -> desc -> Container.t option

val close : t -> desc -> unit
(** Release the descriptor's reference (§4.6 "container release").
    @raise Not_found if not open. *)

val transfer : src:t -> dst:t -> desc -> desc
(** Pass a container to another process: the receiver gets a new
    descriptor and reference; the sender's descriptor remains open
    (§4.6 "sharing containers between processes").
    @raise Not_found if [desc] is not open in [src]. *)

val inherit_all : t -> t
(** A copy of the table, as seen by a child after [fork]; every inherited
    descriptor adds a reference. *)

val descriptors : t -> desc list
(** Open descriptors in ascending order. *)

val count : t -> int
val close_all : t -> unit
