type sched_class = Fixed_share of float | Timeshare

type t = {
  sched_class : sched_class;
  priority : int;
  cpu_limit : float option;
  memory_limit : int option;
  net_priority : int option;
}

let default =
  { sched_class = Timeshare; priority = 10; cpu_limit = None; memory_limit = None;
    net_priority = None }

let check_fraction what = function
  | Some f when f < 0. || f > 1. -> invalid_arg (Printf.sprintf "Attrs: %s outside [0,1]" what)
  | Some _ | None -> ()

let timeshare ?(priority = 10) ?cpu_limit ?memory_limit () =
  if priority < 0 then invalid_arg "Attrs.timeshare: negative priority";
  check_fraction "cpu_limit" cpu_limit;
  { default with sched_class = Timeshare; priority; cpu_limit; memory_limit }

let fixed_share ~share ?cpu_limit ?memory_limit () =
  check_fraction "share" (Some share);
  check_fraction "cpu_limit" cpu_limit;
  { default with sched_class = Fixed_share share; cpu_limit; memory_limit }

let with_priority t priority =
  if priority < 0 then invalid_arg "Attrs.with_priority: negative priority";
  { t with priority }

let with_cpu_limit t cpu_limit =
  check_fraction "cpu_limit" cpu_limit;
  { t with cpu_limit }

let effective_net_priority t =
  match t.net_priority with Some p -> p | None -> t.priority

let is_idle_class t = t.priority = 0

let validate t =
  let fraction what v =
    match v with
    | Some f when f < 0. || f > 1. -> Error (Printf.sprintf "%s outside [0,1]" what)
    | Some _ | None -> Ok ()
  in
  if t.priority < 0 then Error "negative priority"
  else
    match t.sched_class with
    | Fixed_share share when share < 0. || share > 1. -> Error "share outside [0,1]"
    | Fixed_share _ | Timeshare -> (
        match fraction "cpu_limit" t.cpu_limit with
        | Error _ as e -> e
        | Ok () -> (
            match t.memory_limit with
            | Some m when m < 0 -> Error "negative memory_limit"
            | Some _ | None -> Ok ()))

let pp ppf t =
  let class_str =
    match t.sched_class with
    | Fixed_share s -> Printf.sprintf "fixed-share(%.2f)" s
    | Timeshare -> "timeshare"
  in
  let limit_str = match t.cpu_limit with Some l -> Printf.sprintf " cpu<=%.2f" l | None -> "" in
  Format.fprintf ppf "%s prio=%d%s" class_str t.priority limit_str
