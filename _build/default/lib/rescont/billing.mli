(** Usage metering and billing (paper §4.8).

    "Because resource containers enable precise accounting for the costs
    of an activity, they may be useful to administrators simply for
    sending accurate bills to customers, and for use in capacity
    planning."

    A meter tracks any set of labelled containers (typically the top-level
    container of each customer).  Each billing cycle reads the {e subtree}
    usage of every tracked container, bills the delta since the previous
    cycle against a rate card, and returns invoices. *)

type rate_card = {
  per_cpu_second : float;
  per_gb_transferred : float;  (** received + transmitted bytes *)
  per_disk_second : float;
  per_million_packets : float;
}

val default_rates : rate_card
(** 0.05 per CPU-second, 0.09 per GB, 0.02 per disk-second, 0.10 per
    million packets — arbitrary currency units. *)

type line = {
  customer : string;
  cpu : Engine.Simtime.span;
  bytes : int;  (** rx + tx *)
  packets : int;
  disk : Engine.Simtime.span;
  amount : float;
}

type invoice = {
  cycle : int;
  period_start : Engine.Simtime.t;
  period_end : Engine.Simtime.t;
  lines : line list;
  total : float;
}

type t

val create : ?rates:rate_card -> now:Engine.Simtime.t -> unit -> t

val track : t -> customer:string -> Container.t -> unit
(** Meter the container's subtree under the given label.
    @raise Invalid_argument on a duplicate label. *)

val close_cycle : t -> now:Engine.Simtime.t -> invoice
(** Bill everything consumed since the last cycle (or since [create]).
    Lines appear in tracking order. *)

val cycles_closed : t -> int
val amount_of : line -> float
val invoice_table : invoice -> Engine.Series.table
