(* Integration tests: fast versions of the paper's experiments asserting
   the qualitative results the reproduction must preserve.  Marked `Slow
   where the simulated windows are long. *)

module Simtime = Engine.Simtime

let test_baseline_calibration () =
  let r =
    Experiments.Exp_baseline.run ~clients:24 ~warmup:(Simtime.sec 1) ~measure:(Simtime.sec 2)
      ~persistent:false ()
  in
  (* Paper: 2954 req/s, 338us per request.  Within 5%. *)
  Alcotest.(check bool) "throughput near 2954" true
    (r.Experiments.Exp_baseline.throughput > 2800. && r.Experiments.Exp_baseline.throughput < 3100.);
  Alcotest.(check bool) "cpu/request near 338us" true
    (r.Experiments.Exp_baseline.cpu_per_request_us > 320.
    && r.Experiments.Exp_baseline.cpu_per_request_us < 360.)

let test_baseline_persistent () =
  let r =
    Experiments.Exp_baseline.run ~clients:24 ~warmup:(Simtime.sec 1) ~measure:(Simtime.sec 2)
      ~persistent:true ()
  in
  (* Paper: 9487 req/s.  Within 8%. *)
  Alcotest.(check bool) "throughput near 9487" true
    (r.Experiments.Exp_baseline.throughput > 8700. && r.Experiments.Exp_baseline.throughput < 10000.)

let t_high variant n =
  Experiments.Exp_fig11.t_high ~warmup:(Simtime.sec 1) ~measure:(Simtime.sec 2) variant
    ~low_clients:n

let test_fig11_shape () =
  (* Unmodified: T_high explodes with load.  Containers: nearly flat. *)
  let unmod_0 = t_high Experiments.Exp_fig11.Without_containers 0 in
  let unmod_20 = t_high Experiments.Exp_fig11.Without_containers 20 in
  let rc_sel_20 = t_high Experiments.Exp_fig11.Containers_select 20 in
  let rc_ev_20 = t_high Experiments.Exp_fig11.Containers_event_api 20 in
  Alcotest.(check bool) "unmod grows >4x" true (unmod_20 > 4. *. unmod_0);
  Alcotest.(check bool) "rc/select well below unmod" true (rc_sel_20 < unmod_20 /. 2.);
  Alcotest.(check bool) "rc/event api below 2ms" true (rc_ev_20 < 2.);
  Alcotest.(check bool) "ordering holds" true (rc_ev_20 <= rc_sel_20 +. 0.3)

let fig12_point variant n =
  Experiments.Exp_fig12_13.run ~static_clients:16 ~warmup:(Simtime.sec 3)
    ~measure:(Simtime.sec 6) variant ~concurrent_cgi:n

let test_fig12_13_shape () =
  let unmod = fig12_point Experiments.Exp_fig12_13.Unmod 4 in
  let lrp = fig12_point Experiments.Exp_fig12_13.Lrp 4 in
  let rc30 = fig12_point Experiments.Exp_fig12_13.(Rc_capped 0.30) 4 in
  let rc10 = fig12_point Experiments.Exp_fig12_13.(Rc_capped 0.10) 4 in
  let tput p = p.Experiments.Exp_fig12_13.static_throughput in
  let share p = p.Experiments.Exp_fig12_13.cgi_cpu_share in
  (* Fig 12 ordering: RC10 > RC30 > Unmod > LRP. *)
  Alcotest.(check bool) "rc10 > rc30" true (tput rc10 > tput rc30);
  Alcotest.(check bool) "rc30 > unmod" true (tput rc30 > tput unmod);
  Alcotest.(check bool) "unmod > lrp (misaccounting favours server)" true
    (tput unmod > tput lrp);
  (* Fig 13: caps enforced almost exactly; LRP gives CGI its full fair
     share (4/5); unmodified gives it less. *)
  Alcotest.(check (float 0.03)) "30% cap" 0.30 (share rc30);
  Alcotest.(check (float 0.03)) "10% cap" 0.10 (share rc10);
  Alcotest.(check bool) "lrp fair share ~80%" true (share lrp > 0.72 && share lrp < 0.85);
  Alcotest.(check bool) "unmod below lrp" true (share unmod < share lrp)

let flood variant rate =
  Experiments.Exp_fig14.throughput ~good_clients:16 ~warmup:(Simtime.sec 1)
    ~measure:(Simtime.sec 2) variant ~syn_rate:rate

let test_fig14_shape () =
  let unmod_0 = flood Experiments.Exp_fig14.Unmod_flood 0. in
  let unmod_10k = flood Experiments.Exp_fig14.Unmod_flood 10_000. in
  let rc_70k = flood Experiments.Exp_fig14.Rc_filtered 70_000. in
  let rc_0 = flood Experiments.Exp_fig14.Rc_filtered 0. in
  Alcotest.(check bool) "unmodified collapses at 10k SYN/s" true (unmod_10k < 0.05 *. unmod_0);
  (* Paper: ~73% of maximum at 70k SYN/s. *)
  let residual = rc_70k /. rc_0 in
  Alcotest.(check bool) "RC residual ~73%" true (residual > 0.65 && residual < 0.82)

let test_virtual_isolation () =
  let results =
    Experiments.Exp_virtual.run ~warmup:(Simtime.sec 2) ~measure:(Simtime.sec 6) ()
  in
  List.iter
    (fun r ->
      Alcotest.(check (float 0.03))
        (r.Experiments.Exp_virtual.name ^ " share matches allocation")
        r.Experiments.Exp_virtual.allocated_share r.Experiments.Exp_virtual.measured_share)
    results

let test_overhead_negligible () =
  let r =
    Experiments.Exp_overhead.run ~clients:32 ~warmup:(Simtime.sec 1) ~measure:(Simtime.sec 2) ()
  in
  (* Paper §5.4: "throughput remained effectively unchanged". *)
  Alcotest.(check bool) "under 4% overhead" true
    (Float.abs r.Experiments.Exp_overhead.relative_change < 0.04)

let test_table1_rows () =
  let rows = Experiments.Exp_table1.rows ~iterations:2_000 () in
  Alcotest.(check int) "seven rows" 7 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Experiments.Exp_table1.operation ^ " measured")
        true
        (r.Experiments.Exp_table1.measured_ns >= 0.
        && r.Experiments.Exp_table1.measured_ns < 1e6))
    rows

let test_scheduler_ablation () =
  let table =
    Experiments.Exp_ablation.scheduler_family_table ~measure:(Simtime.sec 2) ()
  in
  Alcotest.(check int) "four schedulers" 4 (List.length (Engine.Series.table_rows table))

let test_disk_extension_shapes () =
  let event =
    Experiments.Exp_disk.architecture_run ~warmup:(Simtime.sec 2) ~measure:(Simtime.sec 5)
      `Event_driven
  in
  let threaded =
    Experiments.Exp_disk.architecture_run ~warmup:(Simtime.sec 2) ~measure:(Simtime.sec 5)
      `Multi_threaded
  in
  (* Overlapping disk I/O must beat blocking on it. *)
  Alcotest.(check bool) "threads overlap disk I/O" true
    (threaded.Experiments.Exp_disk.throughput > 1.2 *. event.Experiments.Exp_disk.throughput);
  let iso =
    Experiments.Exp_disk.isolation_run ~warmup:(Simtime.sec 2) ~measure:(Simtime.sec 5) ()
  in
  Alcotest.(check bool) "premium class sees far lower latency" true
    (iso.Experiments.Exp_disk.premium_latency_ms
    < iso.Experiments.Exp_disk.standard_latency_ms /. 5.)

let test_determinism () =
  (* The whole simulation must be reproducible: two identical runs give
     identical results. *)
  let once () =
    Experiments.Exp_baseline.run ~clients:8 ~warmup:(Simtime.ms 500)
      ~measure:(Simtime.sec 1) ~persistent:false ()
  in
  let a = once () and b = once () in
  Alcotest.(check (float 1e-9))
    "identical throughput" a.Experiments.Exp_baseline.throughput
    b.Experiments.Exp_baseline.throughput

let suite =
  [
    Alcotest.test_case "baseline calibration (§5.3)" `Slow test_baseline_calibration;
    Alcotest.test_case "baseline persistent (§5.3)" `Slow test_baseline_persistent;
    Alcotest.test_case "fig 11 shape" `Slow test_fig11_shape;
    Alcotest.test_case "fig 12/13 shape" `Slow test_fig12_13_shape;
    Alcotest.test_case "fig 14 shape" `Slow test_fig14_shape;
    Alcotest.test_case "virtual server isolation (§5.8)" `Slow test_virtual_isolation;
    Alcotest.test_case "container overhead (§5.4)" `Slow test_overhead_negligible;
    Alcotest.test_case "table 1 measurement" `Quick test_table1_rows;
    Alcotest.test_case "scheduler ablation" `Slow test_scheduler_ablation;
    Alcotest.test_case "disk extension shapes" `Slow test_disk_extension_shapes;
    Alcotest.test_case "determinism" `Slow test_determinism;
  ]
