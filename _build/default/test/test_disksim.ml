(* Tests for Disksim.Disk: service times, scheduling order, fairness,
   blocking reads and usage accounting. *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Machine = Procsim.Machine
module Disk = Disksim.Disk

let make_rig () =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let machine = Machine.create ~sim ~policy:(Sched.Multilevel.make ~root ()) ~root () in
  let disk = Disk.create ~machine () in
  (sim, root, machine, disk)

let run machine sim span = Machine.run_until machine (Simtime.add (Sim.now sim) span)

let test_service_time () =
  let _, _, _, disk = make_rig () in
  (* 8ms seek + 1MB at 20MB/s = 50ms. *)
  Alcotest.(check int) "1MB" 58_000_000
    (Simtime.span_to_ns (Disk.service_time disk ~bytes:1_000_000));
  Alcotest.(check int) "zero bytes still seeks" 8_000_000
    (Simtime.span_to_ns (Disk.service_time disk ~bytes:0))

let test_completion_and_accounting () =
  let sim, root, machine, disk = make_rig () in
  let c = Container.create ~parent:root ~name:"reader" () in
  let completed_at = ref Simtime.zero in
  Disk.submit disk ~container:c ~bytes:2_000_000 (fun () -> completed_at := Sim.now sim);
  run machine sim (Simtime.sec 1);
  (* 8ms + 100ms transfer. *)
  Alcotest.(check int) "completion time" 108_000_000 (Simtime.to_ns !completed_at);
  Alcotest.(check int) "disk reads charged" 1 (Usage.disk_reads (Container.usage c));
  Alcotest.(check int) "disk bytes charged" 2_000_000 (Usage.disk_bytes (Container.usage c));
  Alcotest.(check int) "disk time charged" 108_000_000
    (Simtime.span_to_ns (Usage.disk_time (Container.usage c)));
  Alcotest.(check int) "no cpu consumed" 0
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage c)));
  Alcotest.(check int) "disk busy" 108_000_000 (Simtime.span_to_ns (Disk.busy_time disk));
  Alcotest.(check int) "completed" 1 (Disk.completed disk)

let test_priority_order () =
  let sim, root, machine, disk = make_rig () in
  let low = Container.create ~parent:root ~name:"low" ~attrs:(Attrs.timeshare ~priority:1 ()) () in
  let high =
    Container.create ~parent:root ~name:"high" ~attrs:(Attrs.timeshare ~priority:50 ()) ()
  in
  let order = ref [] in
  (* Three low requests queued first, then a high one: the disk finishes
     its current transfer, then serves the high request next. *)
  for i = 1 to 3 do
    Disk.submit disk ~container:low ~bytes:100_000 (fun () ->
        order := Printf.sprintf "low%d" i :: !order)
  done;
  Disk.submit disk ~container:high ~bytes:100_000 (fun () -> order := "high" :: !order);
  run machine sim (Simtime.sec 1);
  (match List.rev !order with
  | first :: second :: _ ->
      Alcotest.(check string) "first was already in service" "low1" first;
      Alcotest.(check string) "high jumps the queue" "high" second
  | _ -> Alcotest.fail "not enough completions");
  Alcotest.(check int) "all done" 4 (Disk.completed disk)

let test_equal_priority_round_robin () =
  let sim, root, machine, disk = make_rig () in
  let a = Container.create ~parent:root ~name:"a" () in
  let b = Container.create ~parent:root ~name:"b" () in
  let order = ref [] in
  for i = 1 to 3 do
    Disk.submit disk ~container:a ~bytes:10_000 (fun () ->
        order := Printf.sprintf "a%d" i :: !order);
    Disk.submit disk ~container:b ~bytes:10_000 (fun () ->
        order := Printf.sprintf "b%d" i :: !order)
  done;
  run machine sim (Simtime.sec 1);
  (* Interleaved, not a-a-a then b-b-b. *)
  let seq = List.rev !order in
  Alcotest.(check bool) "interleaved service" true
    (seq <> [ "a1"; "a2"; "a3"; "b1"; "b2"; "b3" ]);
  Alcotest.(check int) "all served" 6 (List.length seq)

let test_blocking_read () =
  let sim, root, machine, disk = make_rig () in
  let c = Container.create ~parent:root ~name:"worker" () in
  let resumed_at = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"reader" ~container:c (fun () ->
         Machine.cpu (Simtime.ms 1);
         Disk.read disk ~container:c ~bytes:1_000_000;
         resumed_at := Sim.now sim;
         Machine.cpu (Simtime.ms 1)));
  run machine sim (Simtime.sec 1);
  (* 1ms of CPU, then 58ms of disk: resumes at 59ms. *)
  Alcotest.(check int) "thread slept across the transfer" 59_000_000
    (Simtime.to_ns !resumed_at);
  Alcotest.(check int) "cpu is only the compute" 2_000_000
    (Simtime.span_to_ns (Usage.cpu_total (Container.usage c)))

let test_disk_overlaps_cpu () =
  let sim, root, machine, disk = make_rig () in
  let io = Container.create ~parent:root ~name:"io" () in
  let cpu = Container.create ~parent:root ~name:"cpu" () in
  ignore
    (Machine.spawn machine ~name:"reader" ~container:io (fun () ->
         Disk.read disk ~container:io ~bytes:2_000_000));
  let burned = ref Simtime.zero in
  ignore
    (Machine.spawn machine ~name:"burner" ~container:cpu (fun () ->
         Machine.cpu (Simtime.ms 100);
         burned := Sim.now sim));
  run machine sim (Simtime.sec 1);
  (* The burner gets the whole CPU while the reader waits on the disk. *)
  Alcotest.(check bool) "cpu work unimpeded by disk" true
    (Simtime.to_ns !burned <= 101_000_000)

let test_invalid () =
  let _, root, _, disk = make_rig () in
  let c = Container.create ~parent:root () in
  Alcotest.(check bool) "negative size rejected" true
    (try Disk.submit disk ~container:c ~bytes:(-1) (fun () -> ()); false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "service time" `Quick test_service_time;
    Alcotest.test_case "completion and accounting" `Quick test_completion_and_accounting;
    Alcotest.test_case "priority order" `Quick test_priority_order;
    Alcotest.test_case "equal priority round robin" `Quick test_equal_priority_round_robin;
    Alcotest.test_case "blocking read" `Quick test_blocking_read;
    Alcotest.test_case "disk overlaps cpu" `Quick test_disk_overlaps_cpu;
    Alcotest.test_case "invalid sizes" `Quick test_invalid;
  ]
