(* Tests for Rescont.Access — the access-control model §4.1 calls for. *)

module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Access = Rescont.Access
module Binding = Rescont.Binding
module Simtime = Engine.Simtime

let alice = 100
let bob = 200

let setup () =
  let root = Container.create_root () in
  let acl = Access.create () in
  Access.register acl ~owner:0 root;
  let shared =
    Container.create ~parent:root ~name:"shared" ~attrs:(Attrs.fixed_share ~share:0.8 ()) ()
  in
  Access.register acl ~owner:alice shared;
  (root, acl, shared)

let denies f = try f (); false with Access.Denied _ -> true

let test_owner_rights () =
  let _, acl, shared = setup () in
  Alcotest.(check bool) "owner observes" true (Access.check acl ~as_uid:alice shared Access.Observe);
  Alcotest.(check bool) "owner modifies" true (Access.check acl ~as_uid:alice shared Access.Modify);
  Alcotest.(check bool) "owner manages" true (Access.check acl ~as_uid:alice shared Access.Manage);
  Alcotest.(check bool) "stranger denied" false (Access.check acl ~as_uid:bob shared Access.Observe);
  Alcotest.(check int) "owner recorded" alice (Access.owner acl shared)

let test_root_bypass () =
  let _, acl, shared = setup () in
  Alcotest.(check bool) "uid 0 manages anything" true
    (Access.check acl ~as_uid:0 shared Access.Manage)

let test_unregistered_defaults_to_system () =
  let root, acl, _ = setup () in
  let orphan = Container.create ~parent:root ~attrs:(Attrs.timeshare ()) () in
  Alcotest.(check int) "system-owned" 0 (Access.owner acl orphan);
  Alcotest.(check bool) "stranger denied" false
    (Access.check acl ~as_uid:bob orphan Access.Observe)

let test_grant_revoke () =
  let _, acl, shared = setup () in
  Access.grant acl ~as_uid:alice shared ~to_uid:bob Access.Observe;
  Alcotest.(check bool) "granted" true (Access.check acl ~as_uid:bob shared Access.Observe);
  Alcotest.(check bool) "only that right" false
    (Access.check acl ~as_uid:bob shared Access.Modify);
  Access.revoke acl ~as_uid:alice shared ~to_uid:bob Access.Observe;
  Alcotest.(check bool) "revoked" false (Access.check acl ~as_uid:bob shared Access.Observe);
  Alcotest.(check bool) "non-owner cannot grant" true
    (denies (fun () -> Access.grant acl ~as_uid:bob shared ~to_uid:bob Access.Manage))

let test_world_observe () =
  let _, acl, shared = setup () in
  Access.set_world_observe acl ~as_uid:alice shared true;
  Alcotest.(check bool) "anyone observes" true (Access.check acl ~as_uid:bob shared Access.Observe);
  Alcotest.(check bool) "still cannot modify" true
    (denies (fun () -> Access.set_attrs acl ~as_uid:bob shared (Attrs.timeshare ())))

let test_checked_operations () =
  let _, acl, shared = setup () in
  (* Alice creates a child she owns; Bob cannot. *)
  let child = Access.create_child acl ~as_uid:alice ~parent:shared ~name:"child" () in
  Alcotest.(check int) "child owned by creator" alice (Access.owner acl child);
  Alcotest.(check bool) "bob cannot create" true
    (denies (fun () -> ignore (Access.create_child acl ~as_uid:bob ~parent:shared ())));
  (* Observation and modification respect rights. *)
  Alcotest.(check bool) "bob cannot read usage" true
    (denies (fun () -> ignore (Access.get_usage acl ~as_uid:bob child)));
  Access.grant acl ~as_uid:alice child ~to_uid:bob Access.Observe;
  ignore (Access.get_usage acl ~as_uid:bob child);
  ignore (Access.get_attrs acl ~as_uid:bob child);
  (* Thread binding needs Modify. *)
  let binding = Binding.create ~now:Simtime.zero child in
  Alcotest.(check bool) "bob cannot bind" true
    (denies (fun () -> Access.bind_thread acl ~as_uid:bob binding ~now:Simtime.zero child));
  Access.grant acl ~as_uid:alice child ~to_uid:bob Access.Modify;
  Access.bind_thread acl ~as_uid:bob binding ~now:Simtime.zero child;
  (* Destroy needs Manage. *)
  Alcotest.(check bool) "bob cannot destroy" true
    (denies (fun () -> Access.destroy acl ~as_uid:bob child));
  Binding.drop binding;
  Access.destroy acl ~as_uid:alice child;
  Alcotest.(check bool) "destroyed" true (Container.is_destroyed child)

let test_set_parent_needs_both_sides () =
  let root, acl, shared = setup () in
  ignore root;
  let child = Access.create_child acl ~as_uid:alice ~parent:shared ~name:"c"
      ~attrs:(Attrs.fixed_share ~share:0.1 ()) () in
  let other =
    Access.create_child acl ~as_uid:alice ~parent:shared ~name:"other"
      ~attrs:(Attrs.fixed_share ~share:0.5 ()) ()
  in
  (* Bob holds Manage on the child but not on the parents: still denied. *)
  Access.grant acl ~as_uid:alice child ~to_uid:bob Access.Manage;
  Alcotest.(check bool) "needs manage on parents too" true
    (denies (fun () -> Access.set_parent acl ~as_uid:bob child ~parent:(Some other)));
  Access.grant acl ~as_uid:alice shared ~to_uid:bob Access.Manage;
  Access.grant acl ~as_uid:alice other ~to_uid:bob Access.Manage;
  Access.set_parent acl ~as_uid:bob child ~parent:(Some other);
  Alcotest.(check bool) "reparented" true
    (match Container.parent child with Some p -> p == other | None -> false)

let suite =
  [
    Alcotest.test_case "owner rights" `Quick test_owner_rights;
    Alcotest.test_case "uid 0 bypass" `Quick test_root_bypass;
    Alcotest.test_case "unregistered containers" `Quick test_unregistered_defaults_to_system;
    Alcotest.test_case "grant and revoke" `Quick test_grant_revoke;
    Alcotest.test_case "world observe" `Quick test_world_observe;
    Alcotest.test_case "checked operations" `Quick test_checked_operations;
    Alcotest.test_case "set_parent needs both sides" `Quick test_set_parent_needs_both_sides;
  ]
