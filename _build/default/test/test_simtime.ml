(* Unit and property tests for Engine.Simtime. *)

module Simtime = Engine.Simtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_units () =
  check_int "us" 1_000 (Simtime.span_to_ns (Simtime.us 1));
  check_int "ms" 1_000_000 (Simtime.span_to_ns (Simtime.ms 1));
  check_int "sec" 1_000_000_000 (Simtime.span_to_ns (Simtime.sec 1));
  check_int "sec_f rounds" 1_500_000_000 (Simtime.span_to_ns (Simtime.sec_f 1.5));
  check_int "ns identity" 42 (Simtime.span_to_ns (Simtime.ns 42))

let test_arithmetic () =
  let t = Simtime.add Simtime.zero (Simtime.ms 5) in
  check_int "add" 5_000_000 (Simtime.to_ns t);
  let d = Simtime.diff t Simtime.zero in
  check_int "diff" 5_000_000 (Simtime.span_to_ns d);
  check_int "span_add" 3 (Simtime.span_to_ns (Simtime.span_add (Simtime.ns 1) (Simtime.ns 2)));
  check_int "span_sub" (-1)
    (Simtime.span_to_ns (Simtime.span_sub (Simtime.ns 1) (Simtime.ns 2)));
  check_int "span_scale" 500 (Simtime.span_to_ns (Simtime.span_scale 0.5 (Simtime.us 1)))

let test_ordering () =
  let a = Simtime.of_ns 10 and b = Simtime.of_ns 20 in
  check_bool "lt" true Simtime.(a < b);
  check_bool "le" true Simtime.(a <= a);
  check_bool "gt" true Simtime.(b > a);
  check_bool "ge" true Simtime.(b >= b);
  check_bool "equal" false (Simtime.equal a b);
  check_int "compare" (-1) (Simtime.compare a b);
  check_int "min" 10 (Simtime.to_ns (Simtime.min a b));
  check_int "max" 20 (Simtime.to_ns (Simtime.max a b))

let test_conversions () =
  Alcotest.(check (float 1e-9)) "sec_f" 1.5 (Simtime.to_sec_f (Simtime.of_ns 1_500_000_000));
  Alcotest.(check (float 1e-9)) "ms_f" 2.5 (Simtime.span_to_ms_f (Simtime.span_of_ns 2_500_000));
  Alcotest.(check (float 1e-9)) "us_f" 3.5 (Simtime.span_to_us_f (Simtime.span_of_ns 3_500));
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Simtime.ratio (Simtime.ms 5) (Simtime.ms 10));
  Alcotest.(check (float 1e-9)) "ratio by zero" 0. (Simtime.ratio (Simtime.ms 5) Simtime.span_zero)

let test_span_predicates () =
  check_bool "positive" true (Simtime.span_is_positive (Simtime.ns 1));
  check_bool "zero not positive" false (Simtime.span_is_positive Simtime.span_zero);
  check_bool "negative not positive" false (Simtime.span_is_positive (Simtime.ns (-1)));
  check_int "span_min" 1 (Simtime.span_to_ns (Simtime.span_min (Simtime.ns 1) (Simtime.ns 2)));
  check_int "span_max" 2 (Simtime.span_to_ns (Simtime.span_max (Simtime.ns 1) (Simtime.ns 2)))

let test_pp () =
  let str pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "ns" "999ns" (str Simtime.pp_span (Simtime.ns 999));
  Alcotest.(check string) "us" "1.500us" (str Simtime.pp_span (Simtime.ns 1_500));
  Alcotest.(check string) "ms" "2.000ms" (str Simtime.pp_span (Simtime.ms 2));
  Alcotest.(check string) "s" "3.000s" (str Simtime.pp_span (Simtime.sec 3))

let prop_add_diff_roundtrip =
  QCheck2.Test.make ~name:"add/diff round-trip" ~count:500
    QCheck2.Gen.(pair (int_range 0 1_000_000_000) (int_range (-1_000_000) 1_000_000))
    (fun (base, delta) ->
      let t = Simtime.of_ns base in
      let t' = Simtime.add t (Simtime.span_of_ns delta) in
      Simtime.span_to_ns (Simtime.diff t' t) = delta)

let suite =
  [
    Alcotest.test_case "unit constructors" `Quick test_units;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "span predicates" `Quick test_span_predicates;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_add_diff_roundtrip;
  ]
