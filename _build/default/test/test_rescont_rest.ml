(* Tests for Rescont.Attrs, Usage, Binding, Desc_table and Ops. *)

module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Container = Rescont.Container
module Binding = Rescont.Binding
module Desc_table = Rescont.Desc_table
module Ops = Rescont.Ops
module Simtime = Engine.Simtime

(* {1 Attrs} *)

let test_attrs_constructors () =
  let a = Attrs.timeshare ~priority:5 ~cpu_limit:0.5 () in
  Alcotest.(check int) "priority" 5 a.Attrs.priority;
  Alcotest.(check bool) "class" true (a.Attrs.sched_class = Attrs.Timeshare);
  let f = Attrs.fixed_share ~share:0.3 () in
  Alcotest.(check bool) "fixed" true (f.Attrs.sched_class = Attrs.Fixed_share 0.3)

let test_attrs_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad share" true (invalid (fun () -> Attrs.fixed_share ~share:1.5 ()));
  Alcotest.(check bool) "bad limit" true
    (invalid (fun () -> Attrs.timeshare ~cpu_limit:(-0.1) ()));
  Alcotest.(check bool) "bad priority" true (invalid (fun () -> Attrs.timeshare ~priority:(-1) ()));
  Alcotest.(check bool) "validate ok" true (Attrs.validate Attrs.default = Ok ())

let test_attrs_helpers () =
  let a = Attrs.timeshare ~priority:0 () in
  Alcotest.(check bool) "idle class" true (Attrs.is_idle_class a);
  Alcotest.(check bool) "non idle" false (Attrs.is_idle_class Attrs.default);
  Alcotest.(check int) "net priority defaults to priority" 10
    (Attrs.effective_net_priority Attrs.default);
  let b = Attrs.with_priority Attrs.default 3 in
  Alcotest.(check int) "with_priority" 3 b.Attrs.priority;
  let c = Attrs.with_cpu_limit Attrs.default (Some 0.2) in
  Alcotest.(check bool) "with_cpu_limit" true (c.Attrs.cpu_limit = Some 0.2)

(* {1 Usage} *)

let test_usage_counters () =
  let u = Usage.create () in
  Usage.charge_cpu u ~kernel:false (Simtime.us 10);
  Usage.charge_cpu u ~kernel:true (Simtime.us 4);
  Usage.charge_rx u ~packets:3 ~bytes:1500;
  Usage.charge_tx u ~packets:1 ~bytes:999;
  Usage.charge_memory u 4096;
  Usage.charge_memory u (-1024);
  Usage.incr_kernel_objects u;
  Usage.incr_kernel_objects u;
  Usage.decr_kernel_objects u;
  Alcotest.(check int) "cpu total" 14_000 (Simtime.span_to_ns (Usage.cpu_total u));
  Alcotest.(check int) "cpu kernel" 4_000 (Simtime.span_to_ns (Usage.cpu_kernel u));
  Alcotest.(check int) "rx packets" 3 (Usage.rx_packets u);
  Alcotest.(check int) "rx bytes" 1500 (Usage.rx_bytes u);
  Alcotest.(check int) "tx packets" 1 (Usage.tx_packets u);
  Alcotest.(check int) "memory" 3072 (Usage.memory_bytes u);
  Alcotest.(check int) "kernel objects" 1 (Usage.kernel_objects u)

let test_usage_snapshot_and_reset () =
  let u = Usage.create () in
  Usage.charge_cpu u ~kernel:false (Simtime.us 7);
  let snap = Usage.snapshot u in
  Usage.charge_cpu u ~kernel:false (Simtime.us 7);
  Alcotest.(check int) "snapshot immutable" 7_000 (Simtime.span_to_ns snap.Usage.cpu_total);
  Usage.reset u;
  Alcotest.(check int) "reset" 0 (Simtime.span_to_ns (Usage.cpu_total u))

(* {1 Binding} *)

let make_leaves () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:1.0 ()) () in
  let a = Container.create ~parent ~name:"a" () in
  let b = Container.create ~parent ~name:"b" () in
  let c = Container.create ~parent ~name:"c" () in
  (a, b, c)

let test_binding_create () =
  let a, _, _ = make_leaves () in
  let binding = Binding.create ~now:Simtime.zero a in
  Alcotest.(check int) "thread binding counted" 1 (Container.binding_count a);
  Alcotest.(check bool) "resource binding" true (Binding.resource_binding binding == a);
  Alcotest.(check int) "scheduler set" 1 (Binding.size binding)

let test_binding_rebind () =
  let a, b, _ = make_leaves () in
  let binding = Binding.create ~now:Simtime.zero a in
  Binding.set_resource_binding binding ~now:(Simtime.of_ns 10) b;
  Alcotest.(check bool) "rebound" true (Binding.resource_binding binding == b);
  Alcotest.(check int) "old count dropped" 0 (Container.binding_count a);
  Alcotest.(check int) "new count" 1 (Container.binding_count b);
  Alcotest.(check int) "scheduler set grows" 2 (Binding.size binding);
  (* Most recently used first. *)
  match Binding.scheduler_binding binding with
  | first :: _ -> Alcotest.(check string) "MRU order" "b" (Container.name first)
  | [] -> Alcotest.fail "empty scheduler binding"

let test_binding_prune () =
  let a, b, c = make_leaves () in
  let binding = Binding.create ~now:Simtime.zero a in
  Binding.set_resource_binding binding ~now:(Simtime.of_ns 100) b;
  Binding.set_resource_binding binding ~now:(Simtime.of_ns 200) c;
  Alcotest.(check int) "three entries" 3 (Binding.size binding);
  let removed =
    Binding.prune binding ~now:(Simtime.of_ns 1_000) ~max_age:(Simtime.span_of_ns 500)
  in
  (* a (age 1000) and b (age 900) exceed 500; c is the resource binding and
     is never pruned even though stale. *)
  Alcotest.(check int) "two pruned" 2 removed;
  Alcotest.(check int) "one left" 1 (Binding.size binding);
  let removed2 =
    Binding.prune binding ~now:(Simtime.of_ns 10_000) ~max_age:(Simtime.span_of_ns 1)
  in
  Alcotest.(check int) "resource binding survives" 0 removed2

let test_binding_reset () =
  let a, b, _ = make_leaves () in
  let binding = Binding.create ~now:Simtime.zero a in
  Binding.set_resource_binding binding ~now:(Simtime.of_ns 1) b;
  Binding.reset_scheduler_binding binding ~now:(Simtime.of_ns 2);
  Alcotest.(check int) "reset to singleton" 1 (Binding.size binding);
  Alcotest.(check bool) "keeps resource binding" true
    (List.hd (Binding.scheduler_binding binding) == b)

let test_binding_drop () =
  let a, _, _ = make_leaves () in
  let binding = Binding.create ~now:Simtime.zero a in
  Binding.drop binding;
  Alcotest.(check int) "binding count released" 0 (Container.binding_count a);
  Binding.drop binding (* idempotent *)

let test_binding_touch_refreshes () =
  let a, b, _ = make_leaves () in
  let binding = Binding.create ~now:Simtime.zero a in
  Binding.set_resource_binding binding ~now:(Simtime.of_ns 10) b;
  Binding.set_resource_binding binding ~now:(Simtime.of_ns 20) a;
  Binding.touch binding ~now:(Simtime.of_ns 1_000);
  let removed =
    Binding.prune binding ~now:(Simtime.of_ns 1_100) ~max_age:(Simtime.span_of_ns 500)
  in
  Alcotest.(check int) "b pruned, a touched" 1 removed

(* {1 Desc_table} *)

let test_desc_table_basic () =
  let a, b, _ = make_leaves () in
  let table = Desc_table.create () in
  let da = Desc_table.install table a in
  let db = Desc_table.install table b in
  Alcotest.(check int) "lowest free" 0 da;
  Alcotest.(check int) "next" 1 db;
  Alcotest.(check bool) "lookup" true (Desc_table.lookup table da == a);
  Desc_table.close table da;
  let dc = Desc_table.install table a in
  Alcotest.(check int) "slot reused" 0 dc;
  Alcotest.(check (list int)) "descriptors" [ 0; 1 ] (Desc_table.descriptors table)

let test_desc_table_refcounts () =
  let root = Container.create_root () in
  let c = Container.create ~parent:root ~attrs:(Attrs.timeshare ()) () in
  let table = Desc_table.create () in
  let d = Desc_table.install table c in
  Container.release c (* drop creation ref; descriptor still holds one *);
  Alcotest.(check bool) "alive via descriptor" false (Container.is_destroyed c);
  Desc_table.close table d;
  Alcotest.(check bool) "destroyed on close" true (Container.is_destroyed c)

let test_desc_table_transfer_and_inherit () =
  let a, _, _ = make_leaves () in
  let src = Desc_table.create () in
  let d = Desc_table.install src a in
  let dst = Desc_table.create () in
  let d' = Desc_table.transfer ~src ~dst d in
  Alcotest.(check bool) "receiver sees container" true (Desc_table.lookup dst d' == a);
  Alcotest.(check bool) "sender keeps access (§4.6)" true (Desc_table.lookup src d == a);
  let child = Desc_table.inherit_all src in
  Alcotest.(check int) "inherited" (Desc_table.count src) (Desc_table.count child);
  Alcotest.(check bool) "same container" true (Desc_table.lookup child d == a);
  Desc_table.close_all child;
  Alcotest.(check int) "closed all" 0 (Desc_table.count child)

let test_desc_table_missing () =
  let table = Desc_table.create () in
  Alcotest.(check bool) "lookup_opt none" true (Desc_table.lookup_opt table 5 = None);
  Alcotest.check_raises "lookup raises" Not_found (fun () ->
      ignore (Desc_table.lookup table 5));
  Alcotest.check_raises "close raises" Not_found (fun () -> Desc_table.close table 5)

(* {1 Ops} *)

let test_ops_lifecycle () =
  let root = Container.create_root () in
  let table = Desc_table.create () in
  let d = Ops.rc_create table ~parent:root ~name:"op" ~attrs:(Attrs.timeshare ()) () in
  let c = Desc_table.lookup table d in
  Alcotest.(check int) "only descriptor ref" 1 (Container.ref_count c);
  Ops.rc_set_attrs table d (Attrs.timeshare ~priority:42 ());
  Alcotest.(check int) "attrs set" 42 (Ops.rc_get_attrs table d).Attrs.priority;
  Container.charge_cpu c ~kernel:true (Simtime.us 5);
  let usage = Ops.rc_get_usage table d in
  Alcotest.(check int) "usage visible" 5_000 (Simtime.span_to_ns usage.Usage.cpu_total);
  Ops.rc_release table d;
  Alcotest.(check bool) "destroyed on release" true (Container.is_destroyed c)

let test_ops_bind_thread () =
  let root = Container.create_root () in
  let table = Desc_table.create () in
  let d = Ops.rc_create table ~parent:root () in
  let d2 = Ops.rc_create table ~parent:root () in
  let binding = Binding.create ~now:Simtime.zero (Desc_table.lookup table d) in
  Ops.rc_bind_thread table binding ~now:(Simtime.of_ns 5) d2;
  Alcotest.(check bool) "bound to d2's container" true
    (Binding.resource_binding binding == Desc_table.lookup table d2)

let test_ops_set_parent () =
  let root = Container.create_root () in
  let table = Desc_table.create () in
  let dp = Ops.rc_create table ~parent:root ~attrs:(Attrs.fixed_share ~share:0.5 ()) () in
  let dc = Ops.rc_create table ~parent:root ~attrs:(Attrs.fixed_share ~share:0.2 ()) () in
  Ops.rc_set_parent table dc ~parent:(Some dp);
  Alcotest.(check bool) "reparented" true
    (match Container.parent (Desc_table.lookup table dc) with
    | Some p -> p == Desc_table.lookup table dp
    | None -> false);
  Ops.rc_set_parent table dc ~parent:None;
  Alcotest.(check bool) "no parent" true (Container.parent (Desc_table.lookup table dc) = None)

let test_ops_costs_table () =
  Alcotest.(check int) "seven primitives" 7 (List.length Ops.Cost.all);
  List.iter
    (fun (_, cost) ->
      Alcotest.(check bool) "primitive cheap vs request" true
        (Simtime.span_compare cost Httpsim.Costs.nonpersistent_request_total < 0))
    Ops.Cost.all

(* Model-based property: Desc_table behaves like a Map from the lowest
   free integers to containers under a random op sequence. *)
let prop_desc_table_model =
  let open QCheck2 in
  Test.make ~name:"desc table matches a map model" ~count:100
    Gen.(list_size (int_range 1 60) (int_range 0 2))
    (fun ops ->
      let root = Container.create_root () in
      let parent = Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:1.0 ()) () in
      let table = Desc_table.create () in
      let model : (int, Container.t) Hashtbl.t = Hashtbl.create 16 in
      let lowest_free () =
        let rec scan d = if Hashtbl.mem model d then scan (d + 1) else d in
        scan 0
      in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              (* install *)
              let c = Container.create ~parent () in
              let expected = lowest_free () in
              let d = Desc_table.install table c in
              if d <> expected then ok := false;
              Hashtbl.replace model d c
          | 1 -> (
              (* close the smallest open descriptor, if any *)
              match Hashtbl.fold (fun d _ acc -> min d acc) model max_int with
              | d when d <> max_int ->
                  Desc_table.close table d;
                  Hashtbl.remove model d
              | _ -> ())
          | _ ->
              (* consistency check of counts and lookups *)
              if Desc_table.count table <> Hashtbl.length model then ok := false;
              Hashtbl.iter
                (fun d c ->
                  match Desc_table.lookup_opt table d with
                  | Some c' when c' == c -> ()
                  | Some _ | None -> ok := false)
                model)
        ops;
      !ok
      && Desc_table.count table = Hashtbl.length model
      && List.sort compare (Hashtbl.fold (fun d _ acc -> d :: acc) model [])
         = Desc_table.descriptors table)

let suite =
  [
    Alcotest.test_case "attrs constructors" `Quick test_attrs_constructors;
    Alcotest.test_case "attrs validation" `Quick test_attrs_validation;
    Alcotest.test_case "attrs helpers" `Quick test_attrs_helpers;
    Alcotest.test_case "usage counters" `Quick test_usage_counters;
    Alcotest.test_case "usage snapshot/reset" `Quick test_usage_snapshot_and_reset;
    Alcotest.test_case "binding create" `Quick test_binding_create;
    Alcotest.test_case "binding rebind" `Quick test_binding_rebind;
    Alcotest.test_case "binding prune" `Quick test_binding_prune;
    Alcotest.test_case "binding reset" `Quick test_binding_reset;
    Alcotest.test_case "binding drop" `Quick test_binding_drop;
    Alcotest.test_case "binding touch" `Quick test_binding_touch_refreshes;
    Alcotest.test_case "desc table basics" `Quick test_desc_table_basic;
    Alcotest.test_case "desc table refcounts" `Quick test_desc_table_refcounts;
    Alcotest.test_case "desc table transfer/inherit" `Quick test_desc_table_transfer_and_inherit;
    Alcotest.test_case "desc table missing" `Quick test_desc_table_missing;
    Alcotest.test_case "ops lifecycle" `Quick test_ops_lifecycle;
    Alcotest.test_case "ops bind thread" `Quick test_ops_bind_thread;
    Alcotest.test_case "ops set parent" `Quick test_ops_set_parent;
    Alcotest.test_case "ops cost table" `Quick test_ops_costs_table;
    QCheck_alcotest.to_alcotest prop_desc_table_model;
  ]
