test/test_container.ml: Alcotest Engine List QCheck2 QCheck_alcotest Rescont
