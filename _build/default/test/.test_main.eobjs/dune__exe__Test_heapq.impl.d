test/test_heapq.ml: Alcotest Engine List QCheck2 QCheck_alcotest
