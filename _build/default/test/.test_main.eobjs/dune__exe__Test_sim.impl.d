test/test_sim.ml: Alcotest Engine Format List QCheck2 QCheck_alcotest String
