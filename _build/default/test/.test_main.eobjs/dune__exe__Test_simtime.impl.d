test/test_simtime.ml: Alcotest Engine Format QCheck2 QCheck_alcotest
