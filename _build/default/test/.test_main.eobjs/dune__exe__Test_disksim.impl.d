test/test_disksim.ml: Alcotest Disksim Engine List Printf Procsim Rescont Sched
