test/test_sched.ml: Alcotest Engine Float Hashtbl List Option Printf QCheck2 QCheck_alcotest Rescont Sched
