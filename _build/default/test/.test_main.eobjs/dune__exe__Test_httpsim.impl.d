test/test_httpsim.ml: Alcotest Engine Experiments Httpsim List Netsim Printf Procsim Rescont Sched Workload
