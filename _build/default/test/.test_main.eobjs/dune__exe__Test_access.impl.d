test/test_access.ml: Alcotest Engine Rescont
