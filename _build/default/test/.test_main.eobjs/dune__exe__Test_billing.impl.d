test/test_billing.ml: Alcotest Engine List Rescont String
