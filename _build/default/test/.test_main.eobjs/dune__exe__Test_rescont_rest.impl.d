test/test_rescont_rest.ml: Alcotest Engine Gen Hashtbl Httpsim List QCheck2 QCheck_alcotest Rescont Test
