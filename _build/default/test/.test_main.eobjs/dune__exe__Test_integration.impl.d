test/test_integration.ml: Alcotest Engine Experiments Float List
