test/test_stats.ml: Alcotest Array Engine List QCheck2 QCheck_alcotest
