test/test_workload.ml: Alcotest Engine Httpsim List Netsim Procsim Queue Rescont Sched Workload
