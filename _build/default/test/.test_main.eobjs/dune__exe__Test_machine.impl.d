test/test_machine.ml: Alcotest Engine List Printf Procsim Rescont Sched
