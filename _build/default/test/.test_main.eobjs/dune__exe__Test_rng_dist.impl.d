test/test_rng_dist.ml: Alcotest Array Engine Float
