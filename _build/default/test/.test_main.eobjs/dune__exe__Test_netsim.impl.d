test/test_netsim.ml: Alcotest Engine Format List Netsim Procsim QCheck2 QCheck_alcotest Queue Rescont Sched String
