(* Tests for Rescont.Billing and the subtree usage rollups it reads. *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage
module Billing = Rescont.Billing

let fixed share = Attrs.fixed_share ~share ()

let test_subtree_rollup_all_dimensions () =
  let root = Container.create_root () in
  let mid = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let leaf = Container.create ~parent:mid () in
  Container.charge_cpu leaf ~kernel:true (Simtime.ms 3);
  Container.charge_rx leaf ~packets:2 ~bytes:1000;
  Container.charge_tx leaf ~packets:1 ~bytes:500;
  Container.charge_disk leaf ~bytes:4096 (Simtime.ms 9);
  Container.charge_memory leaf 256;
  let up = Container.subtree_usage mid in
  Alcotest.(check int) "cpu rolls up" 3_000_000 (Simtime.span_to_ns (Usage.cpu_total up));
  Alcotest.(check int) "rx rolls up" 1000 (Usage.rx_bytes up);
  Alcotest.(check int) "tx rolls up" 500 (Usage.tx_bytes up);
  Alcotest.(check int) "disk rolls up" 9_000_000 (Simtime.span_to_ns (Usage.disk_time up));
  Alcotest.(check int) "memory rolls up" 256 (Usage.memory_bytes up);
  (* Own usage of the interior node stays clean. *)
  Alcotest.(check int) "mid own usage untouched" 0 (Usage.rx_bytes (Container.usage mid));
  (* The root sees everything too. *)
  Alcotest.(check int) "root subtree rx" 1000 (Usage.rx_bytes (Container.subtree_usage root));
  Alcotest.(check int) "root subtree tx" 500 (Usage.tx_bytes (Container.subtree_usage root))

let test_rollup_survives_destruction () =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let child = Container.create ~parent () in
  Container.charge_cpu child ~kernel:false (Simtime.ms 7);
  Container.destroy child;
  Alcotest.(check int) "history survives child destruction" 7_000_000
    (Simtime.span_to_ns (Container.subtree_cpu parent))

let test_billing_cycle () =
  let root = Container.create_root () in
  let guest_a = Container.create ~parent:root ~name:"a" ~attrs:(fixed 0.5) () in
  let guest_b = Container.create ~parent:root ~name:"b" ~attrs:(fixed 0.5) () in
  let conn = Container.create ~parent:guest_a () in
  let meter = Billing.create ~now:Simtime.zero () in
  Billing.track meter ~customer:"alice" guest_a;
  Billing.track meter ~customer:"bob" guest_b;
  (* Alice's connection consumes; Bob idles. *)
  Container.charge_cpu conn ~kernel:true (Simtime.sec 2);
  Container.charge_rx conn ~packets:1_000_000 ~bytes:1_000_000_000;
  Container.charge_disk conn ~bytes:0 (Simtime.sec 10);
  let invoice = Billing.close_cycle meter ~now:(Simtime.of_ns 60_000_000_000) in
  Alcotest.(check int) "cycle number" 1 invoice.Billing.cycle;
  Alcotest.(check int) "two lines" 2 (List.length invoice.Billing.lines);
  let line name =
    List.find (fun l -> String.equal l.Billing.customer name) invoice.Billing.lines
  in
  (* Alice: 2 cpu-s x .05 + 1 GB x .09 + 10 disk-s x .02 + 1M pkts x .10
     = 0.10 + 0.09 + 0.20 + 0.10 = 0.49. *)
  Alcotest.(check (float 1e-9)) "alice amount" 0.49 (Billing.amount_of (line "alice"));
  Alcotest.(check (float 1e-9)) "bob amount" 0. (Billing.amount_of (line "bob"));
  Alcotest.(check (float 1e-9)) "total" 0.49 invoice.Billing.total;
  (* Second cycle bills only the delta. *)
  Container.charge_cpu conn ~kernel:true (Simtime.sec 1);
  let invoice2 = Billing.close_cycle meter ~now:(Simtime.of_ns 120_000_000_000) in
  Alcotest.(check (float 1e-9)) "delta billed" 0.05 invoice2.Billing.total;
  Alcotest.(check int) "cycles closed" 2 (Billing.cycles_closed meter)

let test_billing_duplicate_label () =
  let root = Container.create_root () in
  let g = Container.create ~parent:root ~attrs:(fixed 0.5) () in
  let meter = Billing.create ~now:Simtime.zero () in
  Billing.track meter ~customer:"x" g;
  Alcotest.(check bool) "duplicate rejected" true
    (try Billing.track meter ~customer:"x" g; false with Invalid_argument _ -> true)

let test_invoice_table_renders () =
  let root = Container.create_root () in
  let g = Container.create ~parent:root ~name:"g" ~attrs:(fixed 0.5) () in
  let meter = Billing.create ~now:Simtime.zero () in
  Billing.track meter ~customer:"g" g;
  Container.charge_cpu g ~kernel:false (Simtime.ms 10);
  let invoice = Billing.close_cycle meter ~now:(Simtime.of_ns 1_000_000_000) in
  let table = Billing.invoice_table invoice in
  (* One customer line plus the TOTAL row. *)
  Alcotest.(check int) "rows" 2 (List.length (Engine.Series.table_rows table))

let test_empty_cycle () =
  let meter = Billing.create ~now:Simtime.zero () in
  let invoice = Billing.close_cycle meter ~now:(Simtime.of_ns 1_000) in
  Alcotest.(check int) "no lines" 0 (List.length invoice.Billing.lines);
  Alcotest.(check (float 1e-9)) "zero total" 0. invoice.Billing.total

let suite =
  [
    Alcotest.test_case "subtree rollup, all dimensions" `Quick test_subtree_rollup_all_dimensions;
    Alcotest.test_case "rollup survives destruction" `Quick test_rollup_survives_destruction;
    Alcotest.test_case "billing cycles" `Quick test_billing_cycle;
    Alcotest.test_case "duplicate labels" `Quick test_billing_duplicate_label;
    Alcotest.test_case "invoice rendering" `Quick test_invoice_table_renders;
    Alcotest.test_case "empty cycle" `Quick test_empty_cycle;
  ]
