(* rc_sim — command-line driver for the Resource Containers reproduction.

   One subcommand per reproduced table/figure, plus [all].  The [--fast]
   flag shrinks sweeps and windows for quick runs; [--csv] emits
   machine-readable output for figures. *)

open Cmdliner
module Simtime = Engine.Simtime

let chart_mode = ref false

let print_figure ~csv fig =
  if csv then print_string (Engine.Series.figure_to_csv fig)
  else if !chart_mode then Format.printf "%a@." Engine.Series.pp_figure_chart fig
  else Format.printf "%a@." Engine.Series.pp_figure fig

let print_table ~csv table =
  if csv then print_string (Engine.Series.table_to_csv table)
  else Format.printf "%a@." Engine.Series.pp_table table

let fast_flag =
  let doc = "Shrink sweeps and measurement windows for a quick run." in
  Arg.(value & flag & info [ "fast" ] ~doc)

let csv_flag =
  let doc = "Emit CSV instead of aligned tables." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let chart_flag =
  let doc = "Render figures as ASCII bar charts." in
  Arg.(value & flag & info [ "chart" ] ~doc)

let jobs_flag =
  let doc =
    "Fan independent experiment points across $(docv) domains (0 = one per \
     recommended core).  Results are identical for any value."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc ~docv:"N")

let resolve_jobs jobs =
  if jobs = 0 then Experiments.Harness.Sweep.recommended_jobs () else max 1 jobs

let trace_out_flag =
  let doc = "Write the run's kernel trace as JSON lines to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let metrics_out_flag =
  let doc = "Write an end-of-run metrics snapshot as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

let run_baseline _jobs fast csv =
  let measure = if fast then Simtime.sec 2 else Simtime.sec 5 in
  let t =
    Engine.Series.table ~title:"Baseline throughput (paper §5.3, unmodified kernel, 1KB cached)"
      ~columns:
        [ "connection mode"; "throughput (req/s)"; "paper (req/s)"; "CPU/request (us)";
          "paper (us)" ]
  in
  List.iter
    (fun persistent ->
      let r = Experiments.Exp_baseline.run ~measure ~persistent () in
      Engine.Series.add_row t
        [
          (if persistent then "persistent (HTTP/1.1)" else "connection per request");
          Printf.sprintf "%.0f" r.Experiments.Exp_baseline.throughput;
          (if persistent then "9487" else "2954");
          Printf.sprintf "%.1f" r.Experiments.Exp_baseline.cpu_per_request_us;
          (if persistent then "105" else "338");
        ])
    [ false; true ];
  print_table ~csv t

let run_table1 _jobs _fast csv = print_table ~csv (Experiments.Exp_table1.table ())

let run_fig11 jobs fast csv =
  let low_counts = if fast then [ 0; 10; 20; 35 ] else [ 0; 5; 10; 15; 20; 25; 30; 35 ] in
  let measure = if fast then Simtime.sec 3 else Simtime.sec 5 in
  print_figure ~csv (Experiments.Exp_fig11.figure ~low_counts ~measure ~jobs ())

let fig12_13 jobs fast =
  let cgi_counts = if fast then [ 0; 2; 4 ] else [ 0; 1; 2; 3; 4; 5 ] in
  let measure = if fast then Simtime.sec 10 else Simtime.sec 15 in
  Experiments.Exp_fig12_13.figures ~cgi_counts ~measure ~jobs ()

let run_fig12 jobs fast csv = print_figure ~csv (fst (fig12_13 jobs fast))
let run_fig13 jobs fast csv = print_figure ~csv (snd (fig12_13 jobs fast))

let run_fig14 jobs fast csv =
  let rates =
    if fast then [ 0.; 10_000.; 40_000.; 70_000. ]
    else [ 0.; 5_000.; 10_000.; 20_000.; 30_000.; 40_000.; 50_000.; 60_000.; 70_000. ]
  in
  let measure = if fast then Simtime.sec 3 else Simtime.sec 5 in
  print_figure ~csv (Experiments.Exp_fig14.figure ~rates ~measure ~jobs ())

let run_virtual _jobs _fast csv = print_table ~csv (Experiments.Exp_virtual.table ())
let run_overhead _jobs _fast csv = print_table ~csv (Experiments.Exp_overhead.table ())

let run_disk _jobs fast csv =
  print_table ~csv (Experiments.Exp_disk.architecture_table ());
  print_table ~csv
    (Experiments.Exp_disk.pool_table
       ?workers_list:(if fast then Some [ 1; 4; 16 ] else None)
       ());
  print_table ~csv (Experiments.Exp_disk.isolation_table ())

let run_latency jobs fast csv =
  let client_counts = if fast then [ 1; 4; 16; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let measure = if fast then Simtime.sec 2 else Simtime.sec 4 in
  print_figure ~csv
    (Experiments.Exp_latency.figure ~client_counts ~measure ~jobs Experiments.Harness.Unmodified)

(* A small traced scenario: two client classes on the RC kernel, tracing
   enabled; prints the tail of the kernel trace. *)
let run_trace _jobs _fast _csv =
  let module Container = Rescont.Container in
  let module Machine = Procsim.Machine in
  let module Harness = Experiments.Harness in
  if not (Harness.observing ()) then Harness.observe ~capacity:64 ();
  let rig = Harness.make_rig Harness.Rc_sys in
  let machine = rig.Harness.machine in
  let stack = rig.Harness.stack in
  let hi =
    Container.create ~parent:rig.Harness.root ~name:"premium"
      ~attrs:(Rescont.Attrs.timeshare ~priority:90 ())
      ()
  in
  let listens =
    [
      Netsim.Socket.make_listen ~port:80 ~filter:(Netsim.Filter.host (Netsim.Ipaddr.v 10 9 9 9))
        ~container:hi ();
      Netsim.Socket.make_listen ~port:80 ();
    ]
  in
  let server =
    Httpsim.Event_server.create ~stack ~process:rig.Harness.server_proc ~cache:rig.Harness.cache
      ~policy:Httpsim.Event_server.Inherit_listen ~listens ()
  in
  ignore (Httpsim.Event_server.start server);
  let clients =
    Workload.Sclient.create ~stack ~port:80 ~path:"/doc/1k" ~count:2 ()
  in
  let vip =
    Workload.Sclient.create ~stack ~name:"vip" ~src_base:(Netsim.Ipaddr.v 10 9 9 9) ~port:80
      ~path:"/doc/1k" ~count:1 ()
  in
  Workload.Sclient.start clients;
  Workload.Sclient.start vip;
  Machine.run_until machine (Engine.Simtime.add Engine.Simtime.zero (Engine.Simtime.ms 10));
  Format.printf "Kernel trace of the first 10 simulated milliseconds (most recent events):@.";
  List.iter
    (fun e -> Format.printf "  %a@." Engine.Tracelog.pp_entry e)
    (Engine.Tracelog.entries (Machine.trace machine))

let run_smp _jobs fast csv =
  let warmup = if fast then Simtime.ms 500 else Simtime.sec 1 in
  let measure = if fast then Simtime.sec 1 else Simtime.sec 4 in
  print_table ~csv (Experiments.Exp_smp.livelock_table ~warmup ~measure ());
  print_table ~csv
    (Experiments.Exp_smp.hot_table
       ~measure:(if fast then Simtime.sec 1 else Simtime.sec 2)
       ())

let run_ablation _jobs fast csv =
  let measure = if fast then Simtime.sec 3 else Simtime.sec 10 in
  print_table ~csv (Experiments.Exp_ablation.scheduler_family_table ~measure ());
  print_table ~csv (Experiments.Exp_ablation.binding_prune_table ());
  print_table ~csv (Experiments.Exp_ablation.quantum_table ());
  print_table ~csv (Experiments.Exp_ablation.smp_scaling_table ());
  print_table ~csv (Experiments.Exp_ablation.softirq_charging_table ())

let run_all jobs fast csv =
  run_baseline jobs fast csv;
  run_table1 jobs fast csv;
  run_fig11 jobs fast csv;
  let f12, f13 = fig12_13 jobs fast in
  print_figure ~csv f12;
  print_figure ~csv f13;
  run_fig14 jobs fast csv;
  run_virtual jobs fast csv;
  run_overhead jobs fast csv;
  run_disk jobs fast csv;
  run_latency jobs fast csv;
  run_ablation jobs fast csv

(* The sweep experiment: the CLI face of the parallel executor.  The JSON
   report is byte-identical for every --jobs value. *)
let run_sweep jobs fast json_out =
  let jobs = resolve_jobs jobs in
  let points =
    if fast then Experiments.Exp_sweep.grid ~client_counts:[ 4 ] ~seeds:[ 1 ] ()
    else Experiments.Exp_sweep.grid ()
  in
  let warmup = if fast then Simtime.ms 500 else Simtime.sec 1 in
  let measure = if fast then Simtime.sec 1 else Simtime.sec 2 in
  let results = Experiments.Exp_sweep.run_grid ~warmup ~measure ~jobs points in
  let doc = Experiments.Exp_sweep.report_string results in
  match json_out with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc doc);
      Format.printf "sweep: %d point(s), %d job(s), report written to %s@."
        (Array.length points) jobs path
  | None -> print_string doc

(* Cluster scale-out: the multi-machine balancer rig, gated against the
   M/G/1-PS closed form.  --check runs the 10^5-concurrent-connection gate
   configuration and fails the command if the oracle error exceeds 5%. *)
let run_cluster fast csv check machines shards json_out =
  let module C = Experiments.Exp_cluster in
  let machines =
    match machines with Some m -> m | None -> if fast then 2 else 4
  in
  if shards < 1 then begin
    Format.eprintf "cluster: --shards must be >= 1@.";
    Stdlib.exit 2
  end;
  let rhos = if fast then [ 0.3; 0.6 ] else [ 0.3; 0.5; 0.7 ] in
  let warmup = if fast then Simtime.ms 500 else Simtime.sec 2 in
  let measure = if fast then Simtime.sec 2 else Simtime.sec 6 in
  let curve = C.oracle_curve ~machines ~shards ~rhos ~warmup ~measure () in
  print_table ~csv (C.oracle_table curve);
  let gate =
    if check then begin
      let g = C.gate_point ~shards () in
      Format.printf
        "gate: %d machines, %d peak concurrent conns, measured %.3f ms vs predicted \
         %.3f ms (err %.1f%%)@."
        g.C.op_machines g.C.op_concurrent g.C.op_measured_ms g.C.op_predicted_ms
        g.C.op_err_pct;
      Some g
    end
    else None
  in
  (match json_out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Engine.Jsonx.to_string (C.oracle_json ?gate curve)));
      Format.printf "cluster: oracle points written to %s@." path
  | None -> ());
  let clone_measure = if fast then Simtime.sec 2 else Simtime.sec 4 in
  print_table ~csv (C.clone_table (C.clone_pair ~measure:clone_measure ()));
  print_table ~csv
    (C.qos_table ~measure:(if fast then Simtime.sec 2 else Simtime.sec 4) ());
  print_table ~csv (C.tenant_table ~measure:(if fast then Simtime.sec 1 else Simtime.sec 3) ());
  match gate with
  | Some g ->
      if g.C.op_err_pct > 5.0 then begin
        Format.printf "cluster: GATE FAILED — oracle error %.1f%% > 5%%@." g.C.op_err_pct;
        Stdlib.exit 1
      end;
      if g.C.op_concurrent < 100_000 then begin
        Format.printf "cluster: GATE FAILED — peak concurrency %d < 100000@."
          g.C.op_concurrent;
        Stdlib.exit 1
      end;
      Format.printf "cluster: gate passed@."
  | None -> ()

let cluster_cmd =
  let check_flag =
    let doc =
      "Also run the acceptance gate: 8 machines, clients holding connections so \
       >= 10^5 are concurrently open, M/G/1-PS prediction within 5%."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let json_out_arg =
    let doc = "Write the oracle points as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~doc ~docv:"FILE")
  in
  let machines_arg =
    let doc = "Machines in the oracle-curve cluster (default: 2 with --fast, else 4)." in
    Arg.(value & opt (some int) None & info [ "machines" ] ~doc ~docv:"N")
  in
  let shards_arg =
    let doc =
      "Execute the oracle and gate clusters across $(docv) event-core shards \
       (parallel across domains when the host has them).  Results are \
       byte-identical for every value — that is the contract CI's determinism \
       stage checks by comparing --json-out files.  This command takes no --jobs: \
       sharding is the only parallelism here, so the two cannot oversubscribe \
       each other."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~doc ~docv:"N")
  in
  let doc = "Run the cluster scale-out experiments (balancer + PS oracle)." in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const run_cluster $ fast_flag $ csv_flag $ check_flag $ machines_arg $ shards_arg
      $ json_out_arg)

let sweep_cmd =
  let json_out_arg =
    let doc = "Write the JSON report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~doc ~docv:"FILE")
  in
  let doc = "Run the multi-point throughput sweep (parallel with --jobs)." in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run_sweep $ jobs_flag $ fast_flag $ json_out_arg)

(* The Zipf corpus experiment (ROADMAP item 4): heavy-tailed popularity
   over 10^5-10^6 documents, cache eviction against the disk model, and a
   uniform flash crowd, with the machine invariants (including
   cache.bytes-consistency over the arena) armed throughout. *)
let run_zipf fast csv docs s json_out =
  let module Z = Experiments.Exp_zipf in
  let docs = match docs with Some d -> d | None -> if fast then 20_000 else 100_000 in
  if docs < 1 then begin
    Format.eprintf "zipf: --docs must be >= 1@.";
    Stdlib.exit 2
  end;
  let exponents =
    match s with Some v -> [ v ] | None -> if fast then [ 0.9 ] else Z.default_exponents
  in
  let warmup = if fast then Simtime.ms 500 else Simtime.sec 1 in
  let measure = if fast then Simtime.sec 1 else Simtime.sec 2 in
  let points = Z.run ~docs ~exponents ~warmup ~measure ~spike_measure:measure () in
  print_table ~csv (Z.table points);
  match json_out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Engine.Jsonx.to_string (Z.json ~docs points)));
      Format.printf "zipf: %d docs, %d point(s), QoS table written to %s@." docs
        (List.length points) path
  | None -> ()

let zipf_cmd =
  let docs_arg =
    let doc = "Corpus size in documents (default: 20000 with --fast, else 100000)." in
    Arg.(value & opt (some int) None & info [ "docs" ] ~doc ~docv:"N")
  in
  let s_arg =
    let doc = "Run only this Zipf exponent (default: the 0.6/0.9/1.1 sweep)." in
    Arg.(value & opt (some float) None & info [ "s" ] ~doc ~docv:"S")
  in
  let json_out_arg =
    let doc = "Write the QoS table as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~doc ~docv:"FILE")
  in
  let doc = "Run the Zipf-corpus flash-crowd experiment (item 4 scenario)." in
  Cmd.v (Cmd.info "zipf" ~doc)
    Term.(const run_zipf $ fast_flag $ csv_flag $ docs_arg $ s_arg $ json_out_arg)

(* Conservation-law fuzzing: run seeded random scenarios with every
   invariant armed.  Exit status 0 means every law held on every run (or,
   under --inject, that the planted bug was caught on every run). *)
let run_fuzz jobs seeds seed mode cpus machines shards zipf inject trace_out =
  let jobs = resolve_jobs jobs in
  if cpus < 1 then begin
    Format.eprintf "fuzz: --cpus must be >= 1@.";
    Stdlib.exit 2
  end;
  if machines < 1 then begin
    Format.eprintf "fuzz: --machines must be >= 1@.";
    Stdlib.exit 2
  end;
  if zipf && machines > 1 then begin
    Format.eprintf "fuzz: --zipf is a single-rig scenario family (drop --machines)@.";
    Stdlib.exit 2
  end;
  if shards < 1 then begin
    Format.eprintf "fuzz: --shards must be >= 1@.";
    Stdlib.exit 2
  end;
  if jobs > 1 && shards > 1 then begin
    (* Both flags claim the host's domains: --jobs runs whole scenarios on
       worker domains, --shards splits each scenario across domains.
       Composing them oversubscribes every core without buying anything
       (outcomes are identical either way), so refuse rather than
       silently thrash. *)
    Format.eprintf
      "fuzz: --jobs %d and --shards %d both parallelise across domains; use one or \
       the other (scenario outcomes are identical under both)@."
      jobs shards;
    Stdlib.exit 2
  end;
  let modes =
    if mode = "all" then Fuzz.all_modes
    else
      match Fuzz.mode_of_string mode with
      | Some m -> [ m ]
      | None ->
          Format.eprintf "fuzz: unknown --mode %S (want all, softirq, lrp or rc)@." mode;
          Stdlib.exit 2
  in
  let inject =
    match inject with
    | None -> false
    | Some "mischarge" -> true
    | Some other ->
        Format.eprintf "fuzz: unknown --inject %S (only 'mischarge' is defined)@." other;
        Stdlib.exit 2
  in
  let seed_list =
    match seed with Some s -> [ s ] | None -> List.init seeds (fun i -> i + 1)
  in
  let outcomes =
    match (seed_list, modes) with
    | [ s ], [ m ] ->
        (* Single replay: honour --trace-out for the violation dump. *)
        let o =
          Fuzz.run_seed ~inject ~cpus ~machines ~shards ~zipf ?trace_path:trace_out
            ~mode:m ~seed:s ()
        in
        Format.printf "%a@." Fuzz.pp_outcome o;
        [ o ]
    | _ when jobs > 1 ->
        (* Each (mode, seed) scenario is a pure function of its pair, so
           the batch fans across domains; outcomes print in batch order
           once all runs finish. *)
        let pairs =
          Array.of_list
            (List.concat_map (fun m -> List.map (fun s -> (m, s)) seed_list) modes)
        in
        let outcomes =
          Experiments.Harness.Sweep.map ~jobs
            (fun (m, s) -> Fuzz.run_seed ~inject ~cpus ~machines ~zipf ~mode:m ~seed:s ())
            pairs
        in
        Array.iter (fun o -> Format.printf "%a@." Fuzz.pp_outcome o) outcomes;
        Array.to_list outcomes
    | _ ->
        Fuzz.run_batch ~inject ~cpus ~machines ~shards ~zipf
          ~log:(fun o -> Format.printf "%a@." Fuzz.pp_outcome o)
          ~modes ~seeds:seed_list ()
  in
  let violations = List.filter (fun o -> o.Fuzz.violation <> None) outcomes in
  let total = List.length outcomes and bad = List.length violations in
  if inject then
    if bad = total then
      Format.printf "fuzz: injected mis-charge caught on all %d run(s)@." total
    else begin
      Format.printf "fuzz: injected mis-charge MISSED on %d of %d run(s)@." (total - bad) total;
      Stdlib.exit 1
    end
  else begin
    Format.printf "fuzz: %d run(s), %d violation(s)@." total bad;
    if bad > 0 then Stdlib.exit 1
  end

let fuzz_cmd =
  let seeds_arg =
    let doc = "Run seeds 1..$(docv) (ignored when --seed is given)." in
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc ~docv:"N")
  in
  let seed_arg =
    let doc = "Run exactly this seed." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc ~docv:"SEED")
  in
  let mode_arg =
    let doc = "Stack mode to fuzz: $(b,all), $(b,softirq), $(b,lrp) or $(b,rc)." in
    Arg.(value & opt string "all" & info [ "mode" ] ~doc ~docv:"MODE")
  in
  let cpus_arg =
    let doc =
      "Run every scenario on an SMP machine with $(docv) processors (per-CPU run \
       queues and RSS packet steering); the generated workload is identical at \
       every CPU count."
    in
    Arg.(value & opt int 1 & info [ "cpus" ] ~doc ~docv:"N")
  in
  let machines_arg =
    let doc =
      "Fuzz cluster scenarios: $(docv) machines behind the load balancer (random \
       policy, tenants and arrival profile) with the cluster usage-rollup law \
       armed on every machine."
    in
    Arg.(value & opt int 1 & info [ "machines" ] ~doc ~docv:"N")
  in
  let shards_arg =
    let doc =
      "Execute each cluster scenario across $(docv) event-core shards (requires \
       --machines > 1 to matter).  Outcomes are byte-identical at every shard \
       count — a differing outcome IS a determinism bug.  Mutually exclusive \
       with --jobs > 1: both parallelise across the host's domains (--jobs at \
       the scenario grain, --shards inside one scenario), and composing them \
       would oversubscribe every core, so the command refuses the combination."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~doc ~docv:"N")
  in
  let inject_arg =
    let doc =
      "Plant a known accounting bug ($(b,mischarge)); every run must then be caught \
       by the cpu.conservation law or the command fails."
    in
    Arg.(value & opt (some string) None & info [ "inject" ] ~doc ~docv:"BUG")
  in
  let zipf_arg =
    let doc =
      "Force the large-Zipf corpus scenario family: thousands of documents against \
       a small cache, clients on a Zipf popularity mix, churning the cache \
       eviction path under the armed cache.bytes-consistency law (single-rig \
       only)."
    in
    Arg.(value & flag & info [ "zipf" ] ~doc)
  in
  let doc = "Fuzz random scenarios under the conservation-law invariants." in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run_fuzz $ jobs_flag $ seeds_arg $ seed_arg $ mode_arg $ cpus_arg
      $ machines_arg $ shards_arg $ zipf_arg $ inject_arg $ trace_out_flag)

let term_of f =
  let apply jobs fast csv chart trace_out metrics_out =
    chart_mode := chart;
    if trace_out <> None || metrics_out <> None then Experiments.Harness.observe ();
    f (resolve_jobs jobs) fast csv;
    (* Export the observability of the last rig the run built. *)
    match Experiments.Harness.last_rig () with
    | Some rig -> Experiments.Harness.export ?trace_out ?metrics_out rig
    | None -> ()
  in
  Term.(
    const apply $ jobs_flag $ fast_flag $ csv_flag $ chart_flag $ trace_out_flag
    $ metrics_out_flag)

let subcommand name doc f = Cmd.v (Cmd.info name ~doc) (term_of f)

let cmds =
  [
    subcommand "baseline" "Reproduce §5.3 baseline throughput." run_baseline;
    subcommand "table1" "Reproduce Table 1 primitive costs." run_table1;
    subcommand "fig11" "Reproduce Figure 11 (prioritised clients)." run_fig11;
    subcommand "fig12" "Reproduce Figure 12 (CGI vs static throughput)." run_fig12;
    subcommand "fig13" "Reproduce Figure 13 (CGI CPU share)." run_fig13;
    subcommand "fig14" "Reproduce Figure 14 (SYN-flood immunity)." run_fig14;
    subcommand "virtual" "Reproduce §5.8 virtual-server isolation." run_virtual;
    subcommand "overhead" "Reproduce §5.4 per-request container overhead." run_overhead;
    subcommand "disk" "Run the §4.4 disk-bandwidth extension experiments." run_disk;
    subcommand "latency" "Run the latency-vs-load extension sweep." run_latency;
    subcommand "trace" "Dump a kernel trace of a small RC scenario." run_trace;
    subcommand "ablation" "Run the design-choice ablations." run_ablation;
    subcommand "smp" "Run the SMP steering/fixed-share extension experiments." run_smp;
    cluster_cmd;
    sweep_cmd;
    zipf_cmd;
    fuzz_cmd;
    subcommand "all" "Run every experiment." run_all;
  ]

let () =
  let doc = "Reproduction of 'Resource Containers' (Banga, Druschel & Mogul, OSDI '99)" in
  (* With no subcommand, run the traced demo scenario — so
     [rc_sim --trace-out t.jsonl --metrics-out m.json] exports something
     useful out of the box. *)
  exit (Cmd.eval (Cmd.group ~default:(term_of run_trace) (Cmd.info "rc_sim" ~doc) cmds))
