(* Reference implementation of the multilevel scheduler — the original
   list-and-sort formulation, kept verbatim as the executable
   specification of the policy's semantics.

   [Multilevel] is an incremental reimplementation of exactly this
   behaviour (same pick sequence, same virtual-time arithmetic, same
   window accounting); the equivalence property test in
   [test/test_sched.ml] drives both over randomized workloads and demands
   identical pick sequences.  This module is also benchmarked alongside
   the optimized one so every BENCH_*.json records the speedup against
   the original algorithm.

   Do not optimise this module: its value is being obviously faithful to
   the original, not being fast.  The only deliberate departure is
   [subtree_has_work], inlined here as the original recursive tree walk
   because [Runq] now answers that query from incremental counters. *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs

type cstate = {
  mutable vt : float; (* weight-normalised service received *)
  mutable last_weight : float; (* weight in effect when last picked *)
  mutable win_id : int;
  mutable win_used : int; (* ns consumed by the subtree in current window *)
  mutable last_round : int; (* as a child: last pick round it was eligible *)
  mutable node_round : int; (* as a parent: pick round counter *)
  mutable node_vnow : float; (* as a parent: virtual clock (max served vt) *)
}

let make ?(window = Simtime.ms 100) ~root () =
  let window_ns = Simtime.span_to_ns window in
  if window_ns <= 0 then invalid_arg "Multilevel_ref.make: window must be positive";
  let runq = Runq.create () in
  (* The original O(subtree) work test, preserved as part of the spec. *)
  let rec subtree_has_work c =
    Runq.container_has_work runq c || List.exists subtree_has_work (Container.children c)
  in
  let states : (int, cstate) Hashtbl.t = Hashtbl.create 64 in
  let state_of container =
    let cid = Container.id container in
    match Hashtbl.find_opt states cid with
    | Some s -> s
    | None ->
        let s =
          { vt = 0.; last_weight = 1.; win_id = -1; win_used = 0; last_round = 0;
            node_round = 0; node_vnow = 0. }
        in
        Hashtbl.replace states cid s;
        s
  in
  let win_index now = Simtime.to_ns now / window_ns in
  let win_used ~now container =
    let s = state_of container in
    let idx = win_index now in
    if s.win_id <> idx then begin
      s.win_id <- idx;
      s.win_used <- 0
    end;
    s.win_used
  in
  let throttled ~now container =
    match (Container.attrs container).Attrs.cpu_limit with
    | None -> false
    | Some limit -> float_of_int (win_used ~now container) >= limit *. float_of_int window_ns
  in
  let is_idle_ts container =
    let attrs = Container.attrs container in
    match attrs.Attrs.sched_class with
    | Attrs.Timeshare -> Attrs.is_idle_class attrs
    | Attrs.Fixed_share _ -> false
  in
  let share_of container =
    match (Container.attrs container).Attrs.sched_class with
    | Attrs.Fixed_share s -> s
    | Attrs.Timeshare -> 0.
  in
  (* Weight of each eligible child of one parent: fixed-share children carry
     their share; timeshare children split the residual in proportion to
     numeric priority. *)
  let weights eligible =
    let fixed, ts =
      List.partition
        (fun c ->
          match (Container.attrs c).Attrs.sched_class with
          | Attrs.Fixed_share _ -> true
          | Attrs.Timeshare -> false)
        eligible
    in
    let fixed_sum = List.fold_left (fun acc c -> acc +. share_of c) 0. fixed in
    let residual = Float.max 0.02 (1. -. fixed_sum) in
    let prio c = float_of_int (max 1 (Container.attrs c).Attrs.priority) in
    let ts_prio_sum = List.fold_left (fun acc c -> acc +. prio c) 0. ts in
    fun c ->
      match (Container.attrs c).Attrs.sched_class with
      | Attrs.Fixed_share s -> Float.max 1e-3 s
      | Attrs.Timeshare -> residual *. prio c /. Float.max 1e-9 ts_prio_sum
  in
  let rec pick_node ~now ~include_idle node =
    if throttled ~now node then None
    else begin
      let children_with_work =
        List.filter (fun c -> subtree_has_work c) (Container.children node)
      in
      match children_with_work with
      | [] -> Runq.front runq node
      | _ :: _ ->
          let eligible =
            List.filter
              (fun c -> (include_idle || not (is_idle_ts c)) && not (throttled ~now c))
              children_with_work
          in
          let weight_of = weights eligible in
          (* Start-time fair queueing arrival rule: a child that was not
             eligible in the previous round (fresh container, or waking
             after idleness) starts at the node's virtual clock — it is
             neither penalised for history nor allowed to replay it. *)
          let ns = state_of node in
          ns.node_round <- ns.node_round + 1;
          List.iter
            (fun c ->
              let s = state_of c in
              if s.last_round < ns.node_round - 1 && s.vt < ns.node_vnow then
                s.vt <- ns.node_vnow;
              s.last_round <- ns.node_round)
            eligible;
          let in_vt_order =
            List.sort
              (fun a b ->
                match compare (state_of a).vt (state_of b).vt with
                | 0 -> compare (Container.id a) (Container.id b)
                | n -> n)
              eligible
          in
          let rec try_children = function
            | [] -> None
            | child :: rest -> (
                match pick_node ~now ~include_idle child with
                | Some task ->
                    let cs = state_of child in
                    cs.last_weight <- weight_of child;
                    ns.node_vnow <- Float.max ns.node_vnow cs.vt;
                    Some task
                | None -> try_children rest)
          in
          try_children in_vt_order
    end
  in
  let pick ~now =
    match pick_node ~now ~include_idle:false root with
    | Some task -> Some task
    | None -> pick_node ~now ~include_idle:true root
  in
  let charge ~container ~now span =
    let span_ns = Simtime.span_to_ns span in
    let rec ascend node =
      let s = state_of node in
      ignore (win_used ~now node);
      s.win_used <- s.win_used + span_ns;
      (match Container.parent node with
      | Some _ -> s.vt <- s.vt +. (float_of_int span_ns /. Float.max 1e-9 s.last_weight)
      | None -> ());
      match Container.parent node with Some p -> ascend p | None -> ()
    in
    ascend container;
    Runq.rotate runq container
  in
  let next_release ~now =
    if Runq.count runq = 0 then None
    else
      match pick ~now with
      | Some _ -> None
      | None ->
          (* Runnable tasks exist but all are throttled: eligibility can
             only change at the next window boundary. *)
          Some (Simtime.of_ns ((win_index now + 1) * window_ns))
  in
  {
    Policy.name = "multilevel-ref";
    enqueue = Runq.enqueue runq;
    dequeue = Runq.dequeue runq;
    requeue = Runq.requeue runq;
    pick;
    charge;
    next_release;
    runnable_count = (fun () -> Runq.count runq);
  }
