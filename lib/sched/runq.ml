module Container = Rescont.Container

(* Queues use lazy deletion over flat ring buffers: each per-container
   queue is a pair of parallel arrays (tasks and enqueue stamps), and an
   entry is live only while the task's own intrusive membership fields
   ([rq_owner]/[rq_cid]/[rq_stamp] on {!Task.t}) still match it.  Dequeue
   is therefore O(1) field stores; stale entries are skipped when they
   reach the front and bulk-compacted if they ever dominate a ring.

   Membership lives on the task rather than in a hash table, so the
   per-packet enqueue/dequeue cycle does no hashing and no allocation.
   A task can only carry one queue's fields; the rare second queue (the
   scheduler equivalence tests enqueue one task into an optimised and a
   reference policy at once) falls back to a per-queue [overflow] table
   with the exact same semantics.

   [counts] holds, per container, the number of live tasks queued anywhere
   in its subtree, maintained incrementally along the cached ancestor chain
   on enqueue/dequeue — so [subtree_has_work] is an O(1) lookup instead of
   a recursive walk.  Each ring caches its container's chain of count
   refs, keyed on the physical identity of [Container.ancestry] (which is
   rebuilt exactly when the topology above the container changes), so the
   common bump is a straight array walk with no table lookups.  The counts
   are keyed on the container topology generation and rebuilt from the
   queues when the tree is re-shaped. *)

type cq = {
  mutable tasks : Task.t array; (* ring buffer, capacity always a power of two *)
  mutable stamps : int array; (* enqueue stamp of the parallel [tasks] entry *)
  mutable head : int;
  mutable len : int; (* ring entries, live or stale *)
  container : Container.t;
  mutable live : int;
  mutable chain : int ref array; (* cached subtree count refs along the ancestry *)
  mutable chain_key : Container.t array; (* the ancestry array [chain] was built from *)
}

type t = {
  id : int; (* matches Task.rq_owner for tasks this queue tracks intrusively *)
  queues : (int, cq) Hashtbl.t; (* container id -> queue *)
  overflow : (int, int * int) Hashtbl.t; (* task id -> (container id, stamp) *)
  counts : (int, int ref) Hashtbl.t; (* container id -> live tasks in subtree *)
  mutable total : int; (* live tasks across all queues *)
  mutable next_stamp : int;
  mutable topo_gen : int;
}

(* Queue ids only ever participate in equality tests against
   [Task.rq_owner]; nothing may depend on their absolute values. *)
let next_rqid = Atomic.make 0

let dummy_task : Task.t = Obj.magic 0

let create () =
  {
    id = Atomic.fetch_and_add next_rqid 1;
    queues = Hashtbl.create 64;
    overflow = Hashtbl.create 8;
    counts = Hashtbl.create 64;
    total = 0;
    next_stamp = 0;
    topo_gen = Container.topology_generation ();
  }

let subtree_count_ref t container =
  let cid = Container.id container in
  match Hashtbl.find t.counts cid with
  | r -> r
  | exception Not_found ->
      let r = ref 0 in
      Hashtbl.replace t.counts cid r;
      r

(* The count refs keep their identity across topology rebuilds, so the
   cached chains here and the multilevel scheduler's child index stay
   valid; only the ancestry ARRAY changes identity, which is exactly the
   event that invalidates a ring's cached chain. *)
let refresh_chain t cq =
  let ancestry = Container.ancestry cq.container in
  if not (cq.chain_key == ancestry) then begin
    cq.chain <- Array.map (fun c -> subtree_count_ref t c) ancestry;
    cq.chain_key <- ancestry
  end

let bump_cq t cq delta =
  refresh_chain t cq;
  let chain = cq.chain in
  for i = 0 to Array.length chain - 1 do
    let r = Array.unsafe_get chain i in
    r := !r + delta
  done

let bump_chain t container delta =
  let chain = Container.ancestry container in
  for i = 0 to Array.length chain - 1 do
    let r = subtree_count_ref t (Array.unsafe_get chain i) in
    r := !r + delta
  done

let rebuild_counts t =
  Hashtbl.iter (fun _ r -> r := 0) t.counts;
  Hashtbl.iter (fun _ cq -> if cq.live > 0 then bump_chain t cq.container cq.live) t.queues

let sync t =
  let g = Container.topology_generation () in
  if g <> t.topo_gen then begin
    t.topo_gen <- g;
    rebuild_counts t
  end

let queue_for t container =
  let cid = Container.id container in
  match Hashtbl.find t.queues cid with
  | cq -> cq
  | exception Not_found ->
      let cq =
        {
          tasks = Array.make 8 dummy_task;
          stamps = Array.make 8 0;
          head = 0;
          len = 0;
          container;
          live = 0;
          chain = [||];
          chain_key = [||];
        }
      in
      Hashtbl.replace t.queues cid cq;
      cq

let owns t (task : Task.t) = task.Task.rq_owner = t.id

let mem t (task : Task.t) = owns t task || Hashtbl.mem t.overflow task.Task.id

(* Liveness of a ring entry: the fast path is three field compares on the
   task itself; overflow membership is consulted only for tasks owned by
   another queue. *)
let entry_live t cid (task : Task.t) stamp =
  if task.Task.rq_owner = t.id then task.Task.rq_cid = cid && task.Task.rq_stamp = stamp
  else
    match Hashtbl.find t.overflow task.Task.id with
    | c, s -> c = cid && s = stamp
    | exception Not_found -> false

let ring_push cq task stamp =
  let cap = Array.length cq.tasks in
  if cq.len = cap then begin
    let ncap = cap * 2 in
    let nt = Array.make ncap dummy_task in
    let ns = Array.make ncap 0 in
    for i = 0 to cq.len - 1 do
      let j = (cq.head + i) land (cap - 1) in
      nt.(i) <- cq.tasks.(j);
      ns.(i) <- cq.stamps.(j)
    done;
    cq.tasks <- nt;
    cq.stamps <- ns;
    cq.head <- 0
  end;
  let i = (cq.head + cq.len) land (Array.length cq.tasks - 1) in
  cq.tasks.(i) <- task;
  cq.stamps.(i) <- stamp;
  cq.len <- cq.len + 1

(* Drop stale entries sitting at the front, releasing their task pointers
   so the ring never pins a dequeued task. *)
let skim t cid cq =
  let continue = ref true in
  while !continue && cq.len > 0 do
    let i = cq.head land (Array.length cq.tasks - 1) in
    let task = cq.tasks.(i) in
    if entry_live t cid task cq.stamps.(i) then continue := false
    else begin
      cq.tasks.(i) <- dummy_task;
      cq.head <- cq.head + 1;
      cq.len <- cq.len - 1
    end
  done

(* Fresh arrays rather than in-place: compaction runs only when stale
   entries outnumber live ones, and copying sidesteps the read-after-
   overwrite hazard of sliding a wrapped ring over itself. *)
let compact_cq t cid cq =
  let cap = Array.length cq.tasks in
  let nt = Array.make cap dummy_task in
  let ns = Array.make cap 0 in
  let j = ref 0 in
  for i = 0 to cq.len - 1 do
    let src = (cq.head + i) land (cap - 1) in
    let task = cq.tasks.(src) in
    if entry_live t cid task cq.stamps.(src) then begin
      nt.(!j) <- task;
      ns.(!j) <- cq.stamps.(src);
      incr j
    end
  done;
  cq.tasks <- nt;
  cq.stamps <- ns;
  cq.head <- 0;
  cq.len <- !j

let enqueue t (task : Task.t) =
  if not (mem t task) then begin
    sync t;
    let container = Task.container task in
    let cid = Container.id container in
    let cq = queue_for t container in
    let stamp = t.next_stamp in
    t.next_stamp <- stamp + 1;
    ring_push cq task stamp;
    if task.Task.rq_owner < 0 then begin
      task.Task.rq_owner <- t.id;
      task.Task.rq_cid <- cid;
      task.Task.rq_stamp <- stamp
    end
    else Hashtbl.replace t.overflow task.Task.id (cid, stamp);
    cq.live <- cq.live + 1;
    t.total <- t.total + 1;
    bump_cq t cq 1;
    if cq.len > 8 + (2 * cq.live) then compact_cq t cid cq
  end

let dequeue t (task : Task.t) =
  let cid =
    if owns t task then begin
      let cid = task.Task.rq_cid in
      task.Task.rq_owner <- -1;
      task.Task.rq_cid <- -1;
      cid
    end
    else
      match Hashtbl.find t.overflow task.Task.id with
      | cid, _stamp ->
          Hashtbl.remove t.overflow task.Task.id;
          cid
      | exception Not_found -> -1
  in
  if cid >= 0 then begin
    sync t;
    match Hashtbl.find t.queues cid with
    | cq ->
        cq.live <- cq.live - 1;
        t.total <- t.total - 1;
        bump_cq t cq (-1)
    | exception Not_found -> ()
  end

let requeue t task =
  dequeue t task;
  enqueue t task

let count t = t.total

let front t container =
  let cid = Container.id container in
  match Hashtbl.find t.queues cid with
  | exception Not_found -> None
  | cq when cq.live > 0 ->
      skim t cid cq;
      if cq.len > 0 then Some cq.tasks.(cq.head land (Array.length cq.tasks - 1)) else None
  | _ -> None

let rotate t container =
  let cid = Container.id container in
  match Hashtbl.find t.queues cid with
  | exception Not_found -> ()
  | cq when cq.live > 1 ->
      skim t cid cq;
      if cq.len > 0 then begin
        let cap = Array.length cq.tasks in
        let i = cq.head land (cap - 1) in
        let task = cq.tasks.(i) in
        let stamp = cq.stamps.(i) in
        cq.tasks.(i) <- dummy_task;
        cq.head <- cq.head + 1;
        cq.len <- cq.len - 1;
        ring_push cq task stamp
      end
  | _ -> ()

let container_has_work t container =
  match Hashtbl.find t.queues (Container.id container) with
  | cq -> cq.live > 0
  | exception Not_found -> false

let subtree_has_work t container =
  sync t;
  match Hashtbl.find t.counts (Container.id container) with
  | r -> !r > 0
  | exception Not_found -> false

let containers_with_work t =
  Hashtbl.fold (fun _ cq acc -> if cq.live > 0 then cq.container :: acc else acc) t.queues []

(* Visit every container with live queued work, in the same traversal
   order [containers_with_work] uses, without building the list. *)
let iter_busy t f = Hashtbl.iter (fun _ cq -> if cq.live > 0 then f cq.container) t.queues

(* Re-derive every maintained count from the ring contents and compare:
   the incremental bookkeeping ([live], [total], [counts] and the
   task-resident membership fields) must agree with a from-scratch
   recomputation at any event boundary. *)
let validate t =
  sync t;
  let mismatch = ref None in
  let total = ref 0 in
  Hashtbl.iter
    (fun cid cq ->
      let live = ref 0 in
      let cap = Array.length cq.tasks in
      for i = 0 to cq.len - 1 do
        let j = (cq.head + i) land (cap - 1) in
        if entry_live t cid cq.tasks.(j) cq.stamps.(j) then incr live
      done;
      total := !total + !live;
      if !mismatch = None && cq.live <> !live then
        mismatch :=
          Some
            (Printf.sprintf "queue %s: live=%d but %d ring entries are live"
               (Container.name cq.container) cq.live !live))
    t.queues;
  if !mismatch = None && t.total <> !total then
    mismatch := Some (Printf.sprintf "total=%d but queues hold %d live entries" t.total !total);
  Hashtbl.iter
    (fun task_id (cid, _stamp) ->
      if !mismatch = None && not (Hashtbl.mem t.queues cid) then
        mismatch :=
          Some (Printf.sprintf "overflow task#%d mapped to container #%d with no queue" task_id cid))
    t.overflow;
  (match !mismatch with
  | Some _ -> ()
  | None ->
      (* Subtree occupancy: rebuild the ancestor-chain sums and compare
         with the incrementally maintained counters. *)
      let fresh = Hashtbl.create 16 in
      Hashtbl.iter
        (fun _ cq ->
          if cq.live > 0 then begin
            let chain = Container.ancestry cq.container in
            for i = 0 to Array.length chain - 1 do
              let cid = Container.id (Array.unsafe_get chain i) in
              let n = match Hashtbl.find_opt fresh cid with Some n -> n | None -> 0 in
              Hashtbl.replace fresh cid (n + cq.live)
            done
          end)
        t.queues;
      Hashtbl.iter
        (fun cid r ->
          let expected = match Hashtbl.find_opt fresh cid with Some n -> n | None -> 0 in
          if !mismatch = None && !r <> expected then
            mismatch :=
              Some
                (Printf.sprintf "subtree count for container #%d: cached %d, recomputed %d" cid
                   !r expected))
        t.counts;
      Hashtbl.iter
        (fun cid n ->
          if !mismatch = None && not (Hashtbl.mem t.counts cid) then
            mismatch :=
              Some (Printf.sprintf "container #%d has %d queued in subtree but no counter" cid n))
        fresh);
  match !mismatch with None -> Ok () | Some msg -> Error msg
