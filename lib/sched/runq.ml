module Container = Rescont.Container

(* Queues use lazy deletion: [where] is the source of truth for membership
   (task id -> container id + enqueue stamp), and a queue entry is live only
   while [where] still matches its stamp.  Dequeue is therefore O(1); stale
   entries are skipped when they reach the front and bulk-compacted if they
   ever dominate a queue.

   [counts] holds, per container, the number of live tasks queued anywhere
   in its subtree, maintained incrementally along the cached ancestor chain
   on enqueue/dequeue — so [subtree_has_work] is an O(1) lookup instead of
   a recursive walk.  The counts are keyed on the container topology
   generation and rebuilt from the queues when the tree is re-shaped. *)

type entry = { task : Task.t; stamp : int }
type cq = { q : entry Queue.t; container : Container.t; mutable live : int }

type t = {
  queues : (int, cq) Hashtbl.t; (* container id -> queue *)
  where : (int, int * int) Hashtbl.t; (* task id -> (container id, stamp) *)
  counts : (int, int ref) Hashtbl.t; (* container id -> live tasks in subtree *)
  mutable next_stamp : int;
  mutable topo_gen : int;
}

let create () =
  {
    queues = Hashtbl.create 64;
    where = Hashtbl.create 64;
    counts = Hashtbl.create 64;
    next_stamp = 0;
    topo_gen = Container.topology_generation ();
  }

let subtree_count_ref t container =
  let cid = Container.id container in
  match Hashtbl.find t.counts cid with
  | r -> r
  | exception Not_found ->
      let r = ref 0 in
      Hashtbl.replace t.counts cid r;
      r

let bump_chain t container delta =
  let chain = Container.ancestry container in
  for i = 0 to Array.length chain - 1 do
    let r = subtree_count_ref t (Array.unsafe_get chain i) in
    r := !r + delta
  done

(* The refs keep their identity across a rebuild, so cached pointers into
   [counts] (e.g. the multilevel scheduler's per-parent child index) stay
   valid. *)
let rebuild_counts t =
  Hashtbl.iter (fun _ r -> r := 0) t.counts;
  Hashtbl.iter (fun _ cq -> if cq.live > 0 then bump_chain t cq.container cq.live) t.queues

let sync t =
  let g = Container.topology_generation () in
  if g <> t.topo_gen then begin
    t.topo_gen <- g;
    rebuild_counts t
  end

let queue_for t container =
  let cid = Container.id container in
  match Hashtbl.find t.queues cid with
  | cq -> cq
  | exception Not_found ->
      let cq = { q = Queue.create (); container; live = 0 } in
      Hashtbl.replace t.queues cid cq;
      cq

let mem t task = Hashtbl.mem t.where task.Task.id

let entry_live t cid e =
  match Hashtbl.find t.where e.task.Task.id with
  | c, s -> c = cid && s = e.stamp
  | exception Not_found -> false

(* Drop stale entries sitting at the front. *)
let rec skim t cid cq =
  match Queue.peek cq.q with
  | e when not (entry_live t cid e) ->
      ignore (Queue.pop cq.q);
      skim t cid cq
  | _ -> ()
  | exception Queue.Empty -> ()

let compact_cq t cid cq =
  let keep = Queue.create () in
  Queue.iter (fun e -> if entry_live t cid e then Queue.push e keep) cq.q;
  Queue.clear cq.q;
  Queue.transfer keep cq.q

let enqueue t task =
  if not (mem t task) then begin
    sync t;
    let container = Task.container task in
    let cid = Container.id container in
    let cq = queue_for t container in
    let stamp = t.next_stamp in
    t.next_stamp <- stamp + 1;
    Queue.push { task; stamp } cq.q;
    Hashtbl.replace t.where task.Task.id (cid, stamp);
    cq.live <- cq.live + 1;
    bump_chain t container 1;
    if Queue.length cq.q > 8 + (2 * cq.live) then compact_cq t cid cq
  end

let dequeue t task =
  match Hashtbl.find t.where task.Task.id with
  | exception Not_found -> ()
  | cid, _stamp -> (
      sync t;
      Hashtbl.remove t.where task.Task.id;
      match Hashtbl.find t.queues cid with
      | cq ->
          cq.live <- cq.live - 1;
          bump_chain t cq.container (-1)
      | exception Not_found -> ())

let requeue t task =
  dequeue t task;
  enqueue t task

let count t = Hashtbl.length t.where

let front t container =
  let cid = Container.id container in
  match Hashtbl.find t.queues cid with
  | exception Not_found -> None
  | cq when cq.live > 0 -> (
      skim t cid cq;
      match Queue.peek cq.q with e -> Some e.task | exception Queue.Empty -> None)
  | _ -> None

let rotate t container =
  let cid = Container.id container in
  match Hashtbl.find t.queues cid with
  | exception Not_found -> ()
  | cq when cq.live > 1 -> (
      skim t cid cq;
      match Queue.take cq.q with head -> Queue.push head cq.q | exception Queue.Empty -> ())
  | _ -> ()

let container_has_work t container =
  match Hashtbl.find t.queues (Container.id container) with
  | cq -> cq.live > 0
  | exception Not_found -> false

let subtree_has_work t container =
  sync t;
  match Hashtbl.find t.counts (Container.id container) with
  | r -> !r > 0
  | exception Not_found -> false

let containers_with_work t =
  Hashtbl.fold (fun _ cq acc -> if cq.live > 0 then cq.container :: acc else acc) t.queues []

(* Visit every container with live queued work, in the same traversal
   order [containers_with_work] uses, without building the list. *)
let iter_busy t f = Hashtbl.iter (fun _ cq -> if cq.live > 0 then f cq.container) t.queues

(* Re-derive every maintained count from the membership table and compare:
   the incremental bookkeeping ([live], [counts], [where]) must agree with
   a from-scratch recomputation at any event boundary. *)
let validate t =
  sync t;
  let live_by_cid = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _task (cid, _stamp) ->
      let n = match Hashtbl.find_opt live_by_cid cid with Some n -> n | None -> 0 in
      Hashtbl.replace live_by_cid cid (n + 1))
    t.where;
  let mismatch = ref None in
  Hashtbl.iter
    (fun cid cq ->
      let expected = match Hashtbl.find_opt live_by_cid cid with Some n -> n | None -> 0 in
      if !mismatch = None && cq.live <> expected then
        mismatch :=
          Some
            (Printf.sprintf "queue %s: live=%d but %d tasks mapped to it"
               (Container.name cq.container) cq.live expected))
    t.queues;
  Hashtbl.iter
    (fun cid n ->
      if !mismatch = None && not (Hashtbl.mem t.queues cid) then
        mismatch := Some (Printf.sprintf "%d tasks mapped to container #%d with no queue" n cid))
    live_by_cid;
  (match !mismatch with
  | Some _ -> ()
  | None ->
      (* Subtree occupancy: rebuild the ancestor-chain sums and compare
         with the incrementally maintained counters. *)
      let fresh = Hashtbl.create 16 in
      Hashtbl.iter
        (fun _ cq ->
          if cq.live > 0 then begin
            let chain = Container.ancestry cq.container in
            for i = 0 to Array.length chain - 1 do
              let cid = Container.id (Array.unsafe_get chain i) in
              let n = match Hashtbl.find_opt fresh cid with Some n -> n | None -> 0 in
              Hashtbl.replace fresh cid (n + cq.live)
            done
          end)
        t.queues;
      Hashtbl.iter
        (fun cid r ->
          let expected = match Hashtbl.find_opt fresh cid with Some n -> n | None -> 0 in
          if !mismatch = None && !r <> expected then
            mismatch :=
              Some
                (Printf.sprintf "subtree count for container #%d: cached %d, recomputed %d" cid
                   !r expected))
        t.counts;
      Hashtbl.iter
        (fun cid n ->
          if !mismatch = None && not (Hashtbl.mem t.counts cid) then
            mismatch :=
              Some (Printf.sprintf "container #%d has %d queued in subtree but no counter" cid n))
        fresh);
  match !mismatch with None -> Ok () | Some msg -> Error msg
