module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Binding = Rescont.Binding

(* An all-float record gets the flat float representation, so writing the
   field stores an unboxed float — the pick path's scratch accumulators
   live in cells like this instead of [float ref]s, which would box on
   every store. *)
type fcell = { mutable fv : float }

let make ?(tau = Simtime.sec 1) () =
  let tau_ns = float_of_int (Simtime.span_to_ns tau) in
  if tau_ns <= 0. then invalid_arg "Timeshare.make: tau must be positive";
  let runq = Runq.create () in
  (* Per-container decay state as two flat arrays indexed by
     [Container.slot] (dense per-domain creation order, never reused):
     the decayed usage as settled at [dlast.(slot)] nanoseconds.  Same
     semantics as the [Decay] record module — which stays as the unit-
     tested reference — but the badness scan over a binding set becomes
     plain float-array reads instead of a hash probe plus record chase
     per member. *)
  let cap = ref 64 in
  let dval = ref (Array.make !cap 0.) in
  let dlast = ref (Array.make !cap 0) in
  let ensure slot =
    if slot >= !cap then begin
      let n = ref (!cap * 2) in
      while slot >= !n do
        n := !n * 2
      done;
      let nv = Array.make !n 0. and nl = Array.make !n 0 in
      Array.blit !dval 0 nv 0 !cap;
      Array.blit !dlast 0 nl 0 !cap;
      dval := nv;
      dlast := nl;
      cap := !n
    end
  in
  (* Decay.settle over the arrays: exponential decay of the stored value
     to [now_ns], idempotent within a timestamp. *)
  let settle slot now_ns =
    let last = Array.unsafe_get !dlast slot in
    if now_ns > last then begin
      let v = Array.unsafe_get !dval slot in
      Array.unsafe_set !dval slot (v *. exp (-.float_of_int (now_ns - last) /. tau_ns));
      Array.unsafe_set !dlast slot now_ns
    end
  in
  (* Lower badness runs first: recent usage divided by priority weight.
     For the thread actually at the head of a container's queue, the usage
     is the {e combined} decayed usage of the thread's whole scheduler
     binding, and the priority the best among those containers — a thread
     multiplexed over several activities is scheduled by the set, not by
     whichever container it happens to be bound to right now (§4.3).

     The scan runs once per dispatch, so it is written allocation-free:
     scratch cells hoisted out of the closures, a single pass over the
     run-queue's busy containers instead of materialised candidate lists,
     and the binding set folded in place rather than sorted.  Ties on
     badness resolve to the container visited last, exactly as the old
     list-building pick did (it consed the candidates up in visit order,
     reversing them, then kept the first minimum). *)
  let cur_now_ns = ref 0 in
  let usage_sum = { fv = 0. } in
  let prio_max = ref 0 in
  let add_binding_member c =
    let slot = Container.slot c in
    ensure slot;
    settle slot !cur_now_ns;
    usage_sum.fv <- usage_sum.fv +. Array.unsafe_get !dval slot;
    let p = (Container.attrs c).Attrs.priority in
    if p > !prio_max then prio_max := p
  in
  let badness_of_task task =
    usage_sum.fv <- 0.;
    prio_max := 0;
    Binding.iter_scheduler_containers task.Task.binding add_binding_member;
    usage_sum.fv /. float_of_int (max 1 !prio_max)
  in
  let best_regular = ref None in
  let best_regular_bad = { fv = 0. } in
  let best_idle = ref None in
  let best_idle_bad = { fv = 0. } in
  let consider container =
    match Runq.front runq container with
    | None -> ()
    | Some task ->
        let b = badness_of_task task in
        if Attrs.is_idle_class (Container.attrs container) then begin
          if !best_idle = None || b <= best_idle_bad.fv then begin
            best_idle := Some task;
            best_idle_bad.fv <- b
          end
        end
        else if !best_regular = None || b <= best_regular_bad.fv then begin
          best_regular := Some task;
          best_regular_bad.fv <- b
        end
  in
  let pick ~now =
    cur_now_ns := Simtime.to_ns now;
    best_regular := None;
    best_idle := None;
    Runq.iter_busy runq consider;
    match !best_regular with Some _ as r -> r | None -> !best_idle
  in
  let charge ~container ~now span =
    let slot = Container.slot container in
    ensure slot;
    settle slot (Simtime.to_ns now);
    let v = Array.unsafe_get !dval slot in
    Array.unsafe_set !dval slot (v +. float_of_int (Simtime.span_to_ns span));
    Runq.rotate runq container
  in
  {
    Policy.name = "timeshare";
    enqueue = Runq.enqueue runq;
    dequeue = Runq.dequeue runq;
    requeue = Runq.requeue runq;
    pick;
    charge;
    next_release = (fun ~now:_ -> None);
    runnable_count = (fun () -> Runq.count runq);
  }
