(** Per-container run queues shared by the scheduling policies.

    Runnable tasks queue FIFO under their current resource-binding
    container; policies choose a container, then this module supplies
    round-robin order within it.  A task whose binding changes while
    runnable is moved with {!requeue}. *)

type t

val create : unit -> t

val enqueue : t -> Task.t -> unit
(** Add under the task's current container; no-op if already queued. *)

val dequeue : t -> Task.t -> unit
(** Remove wherever it is queued; no-op if absent. *)

val requeue : t -> Task.t -> unit
(** [dequeue] then [enqueue] under the (possibly new) binding. *)

val mem : t -> Task.t -> bool
val count : t -> int

val front : t -> Rescont.Container.t -> Task.t option
(** Head of the container's queue. *)

val rotate : t -> Rescont.Container.t -> unit
(** Move the container's head task to the tail (round-robin step). *)

val container_has_work : t -> Rescont.Container.t -> bool

val subtree_has_work : t -> Rescont.Container.t -> bool
(** Does the container or any descendant have a queued task?  O(1): live
    per-subtree task counts are maintained incrementally on
    enqueue/dequeue and rebuilt only when the container tree is
    re-shaped. *)

val subtree_count_ref : t -> Rescont.Container.t -> int ref
(** The live-task counter backing {!subtree_has_work} for one container.
    The ref's identity is stable across topology rebuilds, so policies may
    cache it in per-node indexes and read it on the pick fast path.
    Callers must never write through it. *)

val sync : t -> unit
(** Revalidate the subtree counters against the current container
    topology (rebuilding them if containers were re-parented or
    destroyed).  Policies call this once per pick before trusting cached
    {!subtree_count_ref} values. *)

val containers_with_work : t -> Rescont.Container.t list
(** Distinct containers with non-empty queues, in no specified order. *)

val iter_busy : t -> (Rescont.Container.t -> unit) -> unit
(** [iter_busy t f] applies [f] to every container with live queued work,
    visiting in the same traversal order {!containers_with_work} builds
    its list from — but without allocating it.  The per-dispatch pick
    path of the timeshare policy runs on this. *)

val validate : t -> (unit, string) result
(** Conservation check: re-derives per-container live counts and subtree
    occupancy from the membership table and compares them with the
    incrementally maintained counters.  [Ok ()] iff they all agree.  Used
    as the [sched.runq-counts] invariant law. *)
