(** The unit the CPU scheduler dispatches: one kernel-visible thread.

    A task carries the thread's container bindings (its identity as a
    resource principal); everything else about threads (continuations,
    blocking state) lives in {!Procsim}. *)

type t = {
  id : int;
  name : string;
  binding : Rescont.Binding.t;
  kernel : bool;  (** [true] for kernel threads, e.g. per-process network threads. *)
  mutable rq_owner : int;
      (** Intrusive run-queue bookkeeping, owned by {!Runq}: the id of
          the run queue currently holding the task ([-1] when none).
          Membership checks read a task field instead of a hash table;
          a task queued in {e two} run queues at once (the scheduler
          equivalence tests do this) overflows into the second queue's
          side table. *)
  mutable rq_cid : int;  (** Container id the task is queued under; owned by {!Runq}. *)
  mutable rq_stamp : int;  (** Enqueue stamp for lazy deletion; owned by {!Runq}. *)
  mutable mslot : int;
      (** Thread-table slot on the machine running this task, [-1] when
          none; owned by [Procsim.Machine]. *)
  mutable home_cpu : int;
      (** Processor whose run-queue shard currently holds (or last held)
          the task; owned by [Procsim.Machine].  Always [0] on a machine
          with a single shared queue. *)
}

val create : ?kernel:bool -> name:string -> Rescont.Binding.t -> t
val container : t -> Rescont.Container.t
(** The task's current resource binding. *)

val scheduler_containers : t -> Rescont.Container.t list
(** The task's scheduler-binding set, most recently used first. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
