(** Reference (unoptimized) multilevel scheduler — the executable
    specification that {!Multilevel} must match pick-for-pick.

    Same semantics and interface as {!Multilevel.make}; it re-derives
    every decision from the container tree with list traversals and
    sorts.  Used by the equivalence property test and benchmarked
    alongside the optimized policy so the speedup stays measured. *)

val make : ?window:Engine.Simtime.span -> root:Rescont.Container.t -> unit -> Policy.t
(** [window] is the CPU-limit accounting window (default 100 ms). *)
