(* Incremental reimplementation of the multilevel scheduler.  The policy's
   semantics — virtual-time weighted fair queueing per node, the
   start-time arrival rule, idle-class demotion and windowed CPU limits —
   are specified by [Multilevel_ref], and the equivalence property test
   holds this module to the exact pick sequence of that reference.

   What changed is purely mechanical cost.  The original re-derived every
   decision from scratch: per pick and per node it allocated filtered
   lists, partitioned, folded weights, and ran an O(k log k) sort whose
   comparator did two hash-table lookups per comparison.  Here each
   interior node keeps an index of its children — container, scheduler
   state and the run-queue's live-subtree counter, cached as a flat
   array — so a pick is one allocation-free O(k) scan per node on the
   path down the tree: eligibility, weight sums and the arrival rule in
   one pass, then a min-scan instead of a sort (re-scanned only in the
   rare case that a chosen subtree turns out to be fully throttled).

   The child index is keyed on the physical identity of the container's
   memoized children list, so it rebuilds itself exactly when the child
   set changes; the run-queue counter refs survive topology rebuilds, so
   cached pointers stay valid. *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs

type cstate = {
  mutable vt : float; (* weight-normalised service received *)
  mutable last_weight : float; (* weight in effect when last picked *)
  mutable win_id : int;
  mutable win_used : int; (* ns consumed by the subtree in current window *)
  mutable last_round : int; (* as a child: last pick round it was eligible *)
  mutable tried_round : int; (* as a child: round in which retry already tried it *)
  mutable node_round : int; (* as a parent: pick round counter *)
  mutable node_vnow : float; (* as a parent: virtual clock (max served vt) *)
  mutable kids_key : Container.t list; (* children list the index was built from *)
  mutable kids : kid array; (* as a parent: index over children *)
  mutable scratch : kid array; (* eligible children of the current round *)
}

and kid = { kc : Container.t; ks : cstate; kcount : int ref }

let make ?(window = Simtime.ms 100) ?invariants ~root () =
  let window_ns = Simtime.span_to_ns window in
  if window_ns <= 0 then invalid_arg "Multilevel.make: window must be positive";
  let runq = Runq.create () in
  (match invariants with
  | Some registry ->
      Engine.Invariant.register registry ~law:"sched.runq-counts" (fun () -> Runq.validate runq)
  | None -> ());
  let states : (int, cstate) Hashtbl.t = Hashtbl.create 64 in
  let state_of container =
    let cid = Container.id container in
    match Hashtbl.find_opt states cid with
    | Some s -> s
    | None ->
        let s =
          { vt = 0.; last_weight = 1.; win_id = -1; win_used = 0; last_round = 0;
            tried_round = -1; node_round = 0; node_vnow = 0.; kids_key = []; kids = [||];
            scratch = [||] }
        in
        Hashtbl.replace states cid s;
        s
  in
  let win_index now = Simtime.to_ns now / window_ns in
  let win_used_s ~now s =
    let idx = win_index now in
    if s.win_id <> idx then begin
      s.win_id <- idx;
      s.win_used <- 0
    end;
    s.win_used
  in
  let throttled_s ~now container s =
    match (Container.attrs container).Attrs.cpu_limit with
    | None -> false
    | Some limit -> float_of_int (win_used_s ~now s) >= limit *. float_of_int window_ns
  in
  let is_idle_ts container =
    let attrs = Container.attrs container in
    match attrs.Attrs.sched_class with
    | Attrs.Timeshare -> Attrs.is_idle_class attrs
    | Attrs.Fixed_share _ -> false
  in
  (* Rebuild a node's child index iff its children list changed identity.
     Retry markers are cleared on rebuild: a re-parented child must not
     carry a marker stamped by another parent's round counter. *)
  let refresh_kids nstate node =
    let cs = Container.children node in
    if not (nstate.kids_key == cs) then begin
      let arr =
        Array.of_list
          (List.map
             (fun c ->
               let s = state_of c in
               s.tried_round <- -1;
               { kc = c; ks = s; kcount = Runq.subtree_count_ref runq c })
             cs)
      in
      nstate.kids <- arr;
      nstate.kids_key <- cs;
      let n = Array.length arr in
      if n > 0 && Array.length nstate.scratch < n then nstate.scratch <- Array.make n arr.(0)
    end
  in
  let rec pick_node ~now ~include_idle node nstate =
    if throttled_s ~now node nstate then None
    else begin
      refresh_kids nstate node;
      let kids = nstate.kids in
      let nkids = Array.length kids in
      let scratch = nstate.scratch in
      let any_work = ref false in
      let elig_n = ref 0 in
      let fixed_sum = ref 0. in
      let ts_prio_sum = ref 0. in
      (* One pass: children with queued subtree work, their eligibility
         (idle demotion, window throttle) and the weight sums of the
         eligible set — all in child order, as the reference does it. *)
      for i = 0 to nkids - 1 do
        let k = Array.unsafe_get kids i in
        if !(k.kcount) > 0 then begin
          any_work := true;
          if
            (include_idle || not (is_idle_ts k.kc)) && not (throttled_s ~now k.kc k.ks)
          then begin
            (match (Container.attrs k.kc).Attrs.sched_class with
            | Attrs.Fixed_share s -> fixed_sum := !fixed_sum +. s
            | Attrs.Timeshare ->
                ts_prio_sum :=
                  !ts_prio_sum +. float_of_int (max 1 (Container.attrs k.kc).Attrs.priority));
            Array.unsafe_set scratch !elig_n k;
            incr elig_n
          end
        end
      done;
      if not !any_work then Runq.front runq node
      else begin
        let round = nstate.node_round + 1 in
        nstate.node_round <- round;
        (* Start-time fair queueing arrival rule: a child that was not
           eligible in the previous round (fresh container, or waking
           after idleness) starts at the node's virtual clock — it is
           neither penalised for history nor allowed to replay it. *)
        for i = 0 to !elig_n - 1 do
          let s = (Array.unsafe_get scratch i).ks in
          if s.last_round < round - 1 && s.vt < nstate.node_vnow then s.vt <- nstate.node_vnow;
          s.last_round <- round
        done;
        let residual = Float.max 0.02 (1. -. !fixed_sum) in
        let ts_sum = Float.max 1e-9 !ts_prio_sum in
        let weight_of k =
          match (Container.attrs k.kc).Attrs.sched_class with
          | Attrs.Fixed_share s -> Float.max 1e-3 s
          | Attrs.Timeshare ->
              residual *. float_of_int (max 1 (Container.attrs k.kc).Attrs.priority) /. ts_sum
        in
        (* Min-scan over (vt, id) replaces the sort: descend into the
           lowest-vt eligible child; if its whole subtree yields nothing
           (deep throttling), mark it tried and rescan. *)
        let rec select () =
          let best = ref (-1) in
          for i = 0 to !elig_n - 1 do
            let k = Array.unsafe_get scratch i in
            if k.ks.tried_round <> round then
              if !best < 0 then best := i
              else
                let b = Array.unsafe_get scratch !best in
                if
                  k.ks.vt < b.ks.vt
                  || (k.ks.vt = b.ks.vt && Container.id k.kc < Container.id b.kc)
                then best := i
          done;
          if !best < 0 then None
          else begin
            let k = Array.unsafe_get scratch !best in
            k.ks.tried_round <- round;
            match pick_node ~now ~include_idle k.kc k.ks with
            | Some task ->
                k.ks.last_weight <- weight_of k;
                nstate.node_vnow <- Float.max nstate.node_vnow k.ks.vt;
                Some task
            | None -> select ()
          end
        in
        select ()
      end
    end
  in
  let root_state = state_of root in
  let pick ~now =
    Runq.sync runq;
    match pick_node ~now ~include_idle:false root root_state with
    | Some task -> Some task
    | None -> pick_node ~now ~include_idle:true root root_state
  in
  let charge ~container ~now span =
    let span_ns = Simtime.span_to_ns span in
    let chain = Container.ancestry container in
    let len = Array.length chain in
    for i = 0 to len - 1 do
      let s = state_of (Array.unsafe_get chain i) in
      ignore (win_used_s ~now s);
      s.win_used <- s.win_used + span_ns;
      if i < len - 1 then s.vt <- s.vt +. (float_of_int span_ns /. Float.max 1e-9 s.last_weight)
    done;
    Runq.rotate runq container
  in
  let next_release ~now =
    if Runq.count runq = 0 then None
    else
      match pick ~now with
      | Some _ -> None
      | None ->
          (* Runnable tasks exist but all are throttled: eligibility can
             only change at the next window boundary. *)
          Some (Simtime.of_ns ((win_index now + 1) * window_ns))
  in
  {
    Policy.name = "multilevel";
    enqueue = Runq.enqueue runq;
    dequeue = Runq.dequeue runq;
    requeue = Runq.requeue runq;
    pick;
    charge;
    next_release;
    runnable_count = (fun () -> Runq.count runq);
  }
