(* Incremental reimplementation of the multilevel scheduler.  The policy's
   semantics — virtual-time weighted fair queueing per node, the
   start-time arrival rule, idle-class demotion and windowed CPU limits —
   are specified by [Multilevel_ref], and the equivalence property test
   holds this module to the exact pick sequence of that reference.

   What changed is purely mechanical cost.  The original re-derived every
   decision from scratch: per pick and per node it allocated filtered
   lists, partitioned, folded weights, and ran an O(k log k) sort whose
   comparator did two hash-table lookups per comparison.  Here each
   interior node keeps an index of its children — container, scheduler
   state and the run-queue's live-subtree counter, cached as a flat
   array — so a pick is one allocation-free O(k) scan per node on the
   path down the tree: eligibility, weight sums and the arrival rule in
   one pass, then a min-scan instead of a sort (re-scanned only in the
   rare case that a chosen subtree turns out to be fully throttled).

   The child index is keyed on the physical identity of the container's
   memoized children list, so it rebuilds itself exactly when the child
   set changes; the run-queue counter refs survive topology rebuilds, so
   cached pointers stay valid. *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs

(* Per-pick float scratch, one record per node.  All-float records have
   the flat representation, so accumulating into these fields stores
   unboxed floats — a [float ref] would box on every [:=].  Safe as
   per-node (not per-call) state because a pick descends a tree: no node
   is ever re-entered within one pick. *)
type fscratch = {
  mutable a_fixed : float; (* sum of eligible fixed shares *)
  mutable a_ts : float; (* sum of eligible timeshare priorities *)
  mutable a_residual : float; (* residual weight for timeshare kids, this round *)
  mutable a_tssum : float; (* clamped a_ts, this round *)
}

type cstate = {
  mutable vt : float; (* weight-normalised service received *)
  mutable last_weight : float; (* weight in effect when last picked *)
  mutable win_id : int;
  mutable win_used : int; (* ns consumed by the subtree in current window *)
  mutable last_round : int; (* as a child: last pick round it was eligible *)
  mutable tried_round : int; (* as a child: round in which retry already tried it *)
  mutable node_round : int; (* as a parent: pick round counter *)
  mutable node_vnow : float; (* as a parent: virtual clock (max served vt) *)
  mutable kids_key : Container.t list; (* children list the index was built from *)
  mutable kids : kid array; (* as a parent: index over children *)
  mutable cchain : cstate array; (* charge path: states of self..top, cached *)
  mutable cchain_key : Container.t array; (* ancestry array the chain was built from *)
  mutable scratch : kid array; (* eligible children of the current round *)
  mutable s_elig : int; (* as a parent: eligible-child count, this round *)
  mutable s_any : bool; (* as a parent: any child subtree has queued work *)
  fs : fscratch; (* as a parent: float accumulators, this round *)
}

and kid = { kc : Container.t; ks : cstate; kcount : int ref }

let make ?(window = Simtime.ms 100) ?invariants ~root () =
  let window_ns = Simtime.span_to_ns window in
  if window_ns <= 0 then invalid_arg "Multilevel.make: window must be positive";
  let runq = Runq.create () in
  (match invariants with
  | Some registry ->
      Engine.Invariant.register registry ~law:"sched.runq-counts" (fun () -> Runq.validate runq)
  | None -> ());
  (* Scheduler state lives in a flat array indexed by [Container.slot] —
     dense per-domain creation order, never reused — so the hot lookup is
     a bounds check and an array load instead of a hash probe. *)
  let states : cstate option array ref = ref (Array.make 64 None) in
  let state_of container =
    let slot = Container.slot container in
    let arr =
      let a = !states in
      if slot < Array.length a then a
      else begin
        let n = Array.make (max (slot + 1) (2 * Array.length a)) None in
        Array.blit a 0 n 0 (Array.length a);
        states := n;
        n
      end
    in
    match Array.unsafe_get arr slot with
    | Some s -> s
    | None ->
        let s =
          { vt = 0.; last_weight = 1.; win_id = -1; win_used = 0; last_round = 0;
            tried_round = -1; node_round = 0; node_vnow = 0.; kids_key = []; kids = [||];
            cchain = [||]; cchain_key = [||];
            scratch = [||]; s_elig = 0; s_any = false;
            fs = { a_fixed = 0.; a_ts = 0.; a_residual = 0.; a_tssum = 0. } }
        in
        Array.unsafe_set arr slot (Some s);
        s
  in
  let win_index now = Simtime.to_ns now / window_ns in
  let win_used_s ~now s =
    let idx = win_index now in
    if s.win_id <> idx then begin
      s.win_id <- idx;
      s.win_used <- 0
    end;
    s.win_used
  in
  let throttled_s ~now container s =
    match (Container.attrs container).Attrs.cpu_limit with
    | None -> false
    | Some limit -> float_of_int (win_used_s ~now s) >= limit *. float_of_int window_ns
  in
  let is_idle_ts container =
    let attrs = Container.attrs container in
    match attrs.Attrs.sched_class with
    | Attrs.Timeshare -> Attrs.is_idle_class attrs
    | Attrs.Fixed_share _ -> false
  in
  (* Rebuild a node's child index iff its children list changed identity.
     Retry markers are cleared on rebuild: a re-parented child must not
     carry a marker stamped by another parent's round counter. *)
  let refresh_kids nstate node =
    let cs = Container.children node in
    if not (nstate.kids_key == cs) then begin
      let arr =
        Array.of_list
          (List.map
             (fun c ->
               let s = state_of c in
               s.tried_round <- -1;
               { kc = c; ks = s; kcount = Runq.subtree_count_ref runq c })
             cs)
      in
      nstate.kids <- arr;
      nstate.kids_key <- cs;
      let n = Array.length arr in
      if n > 0 && Array.length nstate.scratch < n then nstate.scratch <- Array.make n arr.(0)
    end
  in
  (* The pick path is written allocation-free: the per-round counters and
     weight sums live in the node's own scratch fields (never clobbered —
     a pick descends a tree, so no node is re-entered), and the retry
     scan is the mutually recursive [select_round] rather than a local
     closure, which would be allocated on every call. *)
  let rec pick_node ~now ~include_idle node nstate =
    if throttled_s ~now node nstate then None
    else begin
      refresh_kids nstate node;
      let kids = nstate.kids in
      let nkids = Array.length kids in
      let scratch = nstate.scratch in
      let fs = nstate.fs in
      nstate.s_any <- false;
      nstate.s_elig <- 0;
      fs.a_fixed <- 0.;
      fs.a_ts <- 0.;
      (* One pass: children with queued subtree work, their eligibility
         (idle demotion, window throttle) and the weight sums of the
         eligible set — all in child order, as the reference does it. *)
      for i = 0 to nkids - 1 do
        let k = Array.unsafe_get kids i in
        if !(k.kcount) > 0 then begin
          nstate.s_any <- true;
          if
            (include_idle || not (is_idle_ts k.kc)) && not (throttled_s ~now k.kc k.ks)
          then begin
            (match (Container.attrs k.kc).Attrs.sched_class with
            | Attrs.Fixed_share s -> fs.a_fixed <- fs.a_fixed +. s
            | Attrs.Timeshare ->
                fs.a_ts <-
                  fs.a_ts +. float_of_int (max 1 (Container.attrs k.kc).Attrs.priority));
            Array.unsafe_set scratch nstate.s_elig k;
            nstate.s_elig <- nstate.s_elig + 1
          end
        end
      done;
      if not nstate.s_any then Runq.front runq node
      else begin
        let round = nstate.node_round + 1 in
        nstate.node_round <- round;
        (* Start-time fair queueing arrival rule: a child that was not
           eligible in the previous round (fresh container, or waking
           after idleness) starts at the node's virtual clock — it is
           neither penalised for history nor allowed to replay it. *)
        for i = 0 to nstate.s_elig - 1 do
          let s = (Array.unsafe_get scratch i).ks in
          if s.last_round < round - 1 && s.vt < nstate.node_vnow then s.vt <- nstate.node_vnow;
          s.last_round <- round
        done;
        fs.a_residual <- Float.max 0.02 (1. -. fs.a_fixed);
        fs.a_tssum <- Float.max 1e-9 fs.a_ts;
        select_round ~now ~include_idle nstate round
      end
    end
  (* Min-scan over (vt, id) replaces the sort: descend into the lowest-vt
     eligible child; if its whole subtree yields nothing (deep
     throttling), mark it tried and rescan. *)
  and select_round ~now ~include_idle nstate round =
    let scratch = nstate.scratch in
    let best = ref (-1) in
    for i = 0 to nstate.s_elig - 1 do
      let k = Array.unsafe_get scratch i in
      if k.ks.tried_round <> round then
        if !best < 0 then best := i
        else
          let b = Array.unsafe_get scratch !best in
          if
            k.ks.vt < b.ks.vt
            || (k.ks.vt = b.ks.vt && Container.id k.kc < Container.id b.kc)
          then best := i
    done;
    if !best < 0 then None
    else begin
      let k = Array.unsafe_get scratch !best in
      k.ks.tried_round <- round;
      match pick_node ~now ~include_idle k.kc k.ks with
      | Some task ->
          (let fs = nstate.fs in
           k.ks.last_weight <-
             (match (Container.attrs k.kc).Attrs.sched_class with
             | Attrs.Fixed_share s -> Float.max 1e-3 s
             | Attrs.Timeshare ->
                 fs.a_residual
                 *. float_of_int (max 1 (Container.attrs k.kc).Attrs.priority)
                 /. fs.a_tssum));
          nstate.node_vnow <- Float.max nstate.node_vnow k.ks.vt;
          Some task
      | None -> select_round ~now ~include_idle nstate round
    end
  in
  let root_state = state_of root in
  let pick ~now =
    Runq.sync runq;
    match pick_node ~now ~include_idle:false root root_state with
    | Some task -> Some task
    | None -> pick_node ~now ~include_idle:true root root_state
  in
  (* The charge path runs once per slice for the dispatched container, so
     the ancestor state chain is cached flat on that container's own
     state, keyed on the physical identity of the memoized
     [Container.ancestry] array: steady state is a straight walk over a
     cstate array with zero lookups, rebuilt only after a re-parent. *)
  let charge ~container ~now span =
    let span_ns = Simtime.span_to_ns span in
    let s = state_of container in
    let ancestry = Container.ancestry container in
    if not (s.cchain_key == ancestry) then begin
      s.cchain <- Array.map state_of ancestry;
      s.cchain_key <- ancestry
    end;
    let chain = s.cchain in
    let len = Array.length chain in
    for i = 0 to len - 1 do
      let st = Array.unsafe_get chain i in
      ignore (win_used_s ~now st);
      st.win_used <- st.win_used + span_ns;
      if i < len - 1 then
        st.vt <- st.vt +. (float_of_int span_ns /. Float.max 1e-9 st.last_weight)
    done;
    Runq.rotate runq container
  in
  let next_release ~now =
    if Runq.count runq = 0 then None
    else
      match pick ~now with
      | Some _ -> None
      | None ->
          (* Runnable tasks exist but all are throttled: eligibility can
             only change at the next window boundary. *)
          Some (Simtime.of_ns ((win_index now + 1) * window_ns))
  in
  {
    Policy.name = "multilevel";
    enqueue = Runq.enqueue runq;
    dequeue = Runq.dequeue runq;
    requeue = Runq.requeue runq;
    pick;
    charge;
    next_release;
    runnable_count = (fun () -> Runq.count runq);
  }
