type t = {
  id : int;
  name : string;
  binding : Rescont.Binding.t;
  kernel : bool;
  mutable rq_owner : int;
  mutable rq_cid : int;
  mutable rq_stamp : int;
  mutable mslot : int;
  mutable home_cpu : int;
}

(* Atomic so parallel sweep domains can create tasks concurrently; nothing
   may depend on absolute id values, only on per-rig creation order. *)
let next_id = Atomic.make 0

let create ?(kernel = false) ~name binding =
  {
    id = Atomic.fetch_and_add next_id 1 + 1;
    name;
    binding;
    kernel;
    rq_owner = -1;
    rq_cid = -1;
    rq_stamp = 0;
    mslot = -1;
    home_cpu = 0;
  }

let container t = Rescont.Binding.resource_binding t.binding
let scheduler_containers t = Rescont.Binding.scheduler_binding t.binding
let equal a b = a.id = b.id
let pp ppf t = Format.fprintf ppf "task#%d(%s)" t.id t.name
