type t = { id : int; name : string; binding : Rescont.Binding.t; kernel : bool }

(* Atomic so parallel sweep domains can create tasks concurrently; nothing
   may depend on absolute id values, only on per-rig creation order. *)
let next_id = Atomic.make 0

let create ?(kernel = false) ~name binding =
  { id = Atomic.fetch_and_add next_id 1 + 1; name; binding; kernel }

let container t = Rescont.Binding.resource_binding t.binding
let scheduler_containers t = Rescont.Binding.scheduler_binding t.binding
let equal a b = a.id = b.id
let pp ppf t = Format.fprintf ppf "task#%d(%s)" t.id t.name
