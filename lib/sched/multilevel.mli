(** The prototype's multi-level scheduler (paper §5.1).

    Schedules the resource-container hierarchy directly:

    - {b fixed-share} containers receive their guaranteed fraction of the
      parent's allocation whenever they are runnable (weighted fair
      queueing over virtual time);
    - {b timeshare} containers share the parent's residual allocation with
      their timeshare siblings, weighted by numeric priority;
    - {b idle-class} containers (priority 0) run only when nothing else in
      the whole hierarchy is eligible;
    - {b CPU limits} ([cpu_limit] attribute) are enforced over an
      accounting window: once a container subtree has consumed its limit
      within the window, its tasks are ineligible until the window rolls
      over — the "resource sandbox" of §4.8/§5.6.

    Only leaf containers hold runnable tasks (threads bind to leaves,
    §5.1); interior nodes aggregate. *)

val make :
  ?window:Engine.Simtime.span ->
  ?invariants:Engine.Invariant.t ->
  root:Rescont.Container.t ->
  unit ->
  Policy.t
(** [window] is the CPU-limit accounting window (default 100 ms).
    [invariants], when given, receives the [sched.runq-counts] law
    ({!Runq.validate} over this policy's run queue). *)
