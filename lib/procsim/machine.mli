(** The simulated uniprocessor machine: threads, blocking, dispatching.

    Threads are OCaml effect-based coroutines, so simulated kernel and
    application code is written in direct style: [Machine.cpu] consumes
    simulated CPU, [Waitq.wait] blocks, and the dispatcher interleaves
    threads under the machine's scheduling policy in quanta, charging every
    consumed slice to the running thread's resource-binding container.

    Interrupt-level work (NIC interrupts, softirq protocol processing in
    the unmodified-kernel model) runs at strictly higher precedence than
    any thread: it {e steals} time from whatever slice is in progress — see
    {!steal_time} — which is exactly the behaviour that produces receive
    livelock under overload. *)

type t
type thread

val create :
  ?cpus:int ->
  ?shard_policy:(int -> Sched.Policy.t) ->
  ?rebalance_interval:Engine.Simtime.span ->
  ?quantum:Engine.Simtime.span ->
  ?prune_interval:Engine.Simtime.span ->
  ?prune_age:Engine.Simtime.span ->
  ?trace:Engine.Tracelog.t ->
  ?metrics:Engine.Metrics.t ->
  ?invariants:Engine.Invariant.t ->
  sim:Engine.Sim.t ->
  policy:Sched.Policy.t ->
  root:Rescont.Container.t ->
  unit ->
  t
(** [cpus] is the number of processors (default 1; every experiment in the
    paper runs on a uniprocessor).  Interrupt-level work is taken on
    processor 0 unless steered (see {!steal_time}).  [quantum] is the
    time-slice length (default 1 ms).  [prune_interval] / [prune_age]
    control the periodic pruning of scheduler-binding sets (paper §4.3;
    defaults 100 ms / 500 ms).

    [policy] serves processor 0.  With [shard_policy], processors
    [1 .. cpus-1] each get their own run-queue shard [shard_policy i] and
    the machine runs as a real SMP kernel: tasks are stamped with a home
    CPU at spawn (least-loaded shard, or the [?cpu] pin), an idle processor
    steals runnable work from other shards, and a periodic container-aware
    rebalance (every [rebalance_interval], default 5 ms) moves tasks from
    the deepest to the shallowest queue.  Migration only ever moves a task
    to a strictly less-loaded shard, so fixed-share guarantees cannot be
    diluted by it.  Without [shard_policy], all processors share [policy]
    — one global queue, the pre-SMP behaviour. *)

val sim : t -> Engine.Sim.t
val now : t -> Engine.Simtime.t
val root : t -> Rescont.Container.t

val system_container : t -> Rescont.Container.t
(** Where consumption "charged to no process at all" lands (the root). *)

val policy : t -> Sched.Policy.t
(** Processor 0's scheduling policy (the only one unless the machine was
    created with [shard_policy]). *)

val shard : t -> int -> Sched.Policy.t
(** The run-queue shard serving the given processor. *)

val sharded : t -> bool
(** [true] iff the machine runs distinct per-CPU run-queue shards. *)

val busy_time : t -> Engine.Simtime.span
(** Total CPU time consumed so far (slices + stolen interrupt time),
    summed over every processor — at [cpus > 1] this can exceed elapsed
    simulated time (it is bounded by [cpus ×] elapsed). *)

val busy_time_on : t -> int -> Engine.Simtime.span
(** CPU time consumed on one processor; never exceeds elapsed simulated
    time plus the in-flight committed slice.  The per-processor values sum
    to {!busy_time} (law [cpu.per-cpu-conservation]). *)

(** {1 Threads} *)

val spawn :
  t ->
  ?kernel:bool ->
  ?cpu:int ->
  name:string ->
  container:Rescont.Container.t ->
  (unit -> unit) ->
  thread
(** Create a thread whose first resource binding is [container] and make it
    runnable.  The body runs inside the machine's effect handler.  [cpu]
    pins the thread to a processor's shard (it is placed there and never
    migrated — used for per-CPU kernel threads); without it the thread
    starts on the least-loaded shard and may migrate.
    @raise Container.Error if [container] is not a leaf. *)

val thread_name : thread -> string
val thread_task : thread -> Sched.Task.t
val binding : thread -> Rescont.Binding.t
val is_done : thread -> bool

val rebind : t -> thread -> Rescont.Container.t -> unit
(** Change the thread's resource binding (the [rc_bind_thread] primitive).
    Settles any in-progress slice against the old container first. *)

val kill : t -> thread -> unit
(** Terminate the thread: its continuation is discarded, it leaves every
    queue, and its container bindings are released.  A thread currently on
    a processor completes the in-flight slice (that work is already
    committed) and is reaped at the slice boundary.  Idempotent. *)

val reset_scheduler_binding : t -> thread -> unit

(** {1 Effects — callable only from inside a thread body} *)

val cpu : ?kernel:bool -> Engine.Simtime.span -> unit
(** Consume simulated CPU.  The calling thread competes for the processor
    under the machine's policy; the call returns once the full span has
    been consumed and charged. *)

val sleep : Engine.Simtime.span -> unit
(** Block without consuming CPU. *)

val yield : unit -> unit
(** Return to the dispatcher; runs again when next picked. *)

val self : unit -> thread
(** The currently executing thread. *)

(** {1 Blocking} *)

module Waitq : sig
  type machine := t
  type t

  val create : ?name:string -> machine -> t

  val wait : t -> unit
  (** Block the calling thread until signalled (effect). *)

  val signal : t -> unit
  (** Wake the longest-waiting thread, if any. *)

  val broadcast : t -> unit
  val waiters : t -> int
end

(** {1 Interrupt-level work} *)

val steal_time :
  ?cpu:int ->
  t ->
  cost:Engine.Simtime.span ->
  charge:[ `Current_or_system | `Container of Rescont.Container.t ] ->
  unit
(** Execute interrupt-level work costing [cost] {e now} on processor [cpu]
    (default 0 — the classic single-interrupt-CPU kernel; a steered
    interrupt names the CPU its connection hashes to).  If a slice is in
    progress on that processor it is extended by [cost] (the running
    thread loses wall-clock time); otherwise that processor's dispatcher
    is pushed back by [cost].  The cost is charged to that processor's
    running thread's container ([`Current_or_system] — the unmodified
    kernel's misaccounting; the system container when idle) or to an
    explicit container. *)

val run_until : t -> Engine.Simtime.t -> unit
(** Drive the simulation to the horizon.  When the machine's invariant
    registry is armed, every conservation law is re-checked at the horizon
    (simulation quiesce); @raise Engine.Invariant.Violation on failure. *)

(** {1 Conservation-law invariants} *)

val invariants : t -> Engine.Invariant.t
(** The machine's invariant registry (fresh unless one was passed at
    creation).  The machine registers [cpu.conservation] (every nanosecond
    of {!busy_time} rolled up into the root's subtree usage),
    [cpu.per-cpu-conservation] (the per-processor busy counters partition
    the global sum and no processor exceeds its committed time horizon),
    [cpu.subtree-rollup], [memory.non-negative] (no container's memory
    balance below zero) and [sched.no-idle-starvation] (no non-idle
    runnable thread competing for a processor waits past a bound while an
    idle-class thread holds that processor — per-CPU on a sharded
    machine); the network stack, scheduler and caches sharing the machine
    register their own laws here. *)

val check_invariants : t -> Engine.Invariant.violation list
(** Run every registered law now (independent of arming). *)

val arm_invariants :
  ?interval:Engine.Simtime.span -> ?starvation_bound:Engine.Simtime.span -> t -> unit
(** Arm the registry: check every law every [interval] of simulated time
    (default 10 ms) and at every {!run_until} horizon, raising
    {!Engine.Invariant.Violation} on the first broken law.  Also switches
    {!Rescont.Usage.set_strict_memory} on process-wide, so double refunds
    raise at the charge site.  [starvation_bound] (default 100 ms) tunes
    [sched.no-idle-starvation]. *)

val set_on_idle : t -> (unit -> unit) -> unit
(** [on_idle] fires when the dispatcher finds no eligible task {e and}
    every processor slot is free — never while another CPU is mid-slice.
    The network stack uses it to run idle-class protocol processing
    (priority-0 containers, paper §4.8) only when the machine would
    otherwise idle.  The hook must not unconditionally wake a thread, or
    the dispatcher will spin. *)

val runnable_tasks : t -> int
(** Number of tasks currently queued across every shard.  Tasks occupying
    a processor are dequeued while they run, so from inside a running
    thread this counts the {e other} runnable tasks. *)

val runnable_tasks_on : t -> int -> int
(** Number of tasks queued in one processor's shard. *)

val cpus : t -> int

val trace : t -> Engine.Tracelog.t
(** The machine's trace log (disabled unless the log passed at creation was
    enabled).  Categories: "spawn", "dispatch", "preempt", "rebind", "kill",
    "irq", "migrate", "charge". *)

val metrics : t -> Engine.Metrics.t
(** The machine's metrics registry (fresh unless one was passed at
    creation).  The machine registers the [sched.*] and [machine.*]
    counters and gauges plus root-subtree [rc.root.*] gauges; other
    subsystems sharing the machine register their own instruments here. *)
