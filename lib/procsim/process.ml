module Container = Rescont.Container
module Desc_table = Rescont.Desc_table

type t = {
  pid : int;
  name : string;
  machine : Machine.t;
  default_container : Container.t;
  descriptors : Desc_table.t;
  mutable threads : Machine.thread list;
  container_parent : Container.t;
}

(* Atomic for parallel sweep domains; behaviour must not depend on the
   absolute pid, only on per-machine creation order. *)
let next_pid = Atomic.make 0

let make machine ~container_parent ~container_attrs ~descriptors ~name =
  let pid = Atomic.fetch_and_add next_pid 1 + 1 in
  let default_container =
    Container.create
      ~name:(Printf.sprintf "proc-%s-%d" name pid)
      ?attrs:container_attrs ~parent:container_parent ()
  in
  { pid; name; machine; default_container; descriptors; threads = []; container_parent }

let create machine ?container_parent ?container_attrs ~name () =
  let container_parent =
    match container_parent with Some c -> c | None -> Machine.root machine
  in
  make machine ~container_parent ~container_attrs ~descriptors:(Desc_table.create ()) ~name

let pid t = t.pid
let name t = t.name
let machine t = t.machine
let default_container t = t.default_container
let descriptors t = t.descriptors
let threads t = t.threads

let spawn_thread t ?container ~name body =
  let container = match container with Some c -> c | None -> t.default_container in
  let thread = Machine.spawn t.machine ~name ~container body in
  t.threads <- thread :: t.threads;
  thread

let fork t ?container_attrs ~name body =
  let child =
    make t.machine ~container_parent:t.container_parent ~container_attrs
      ~descriptors:(Desc_table.inherit_all t.descriptors) ~name
  in
  let thread = spawn_thread child ~name:(name ^ "-main") body in
  (child, thread)

let exit_all t =
  List.iter (Machine.kill t.machine) t.threads;
  t.threads <- [];
  Desc_table.close_all t.descriptors;
  Container.release t.default_container

let pp ppf t =
  Format.fprintf ppf "pid=%d %s (%d threads)" t.pid t.name (List.length t.threads)
