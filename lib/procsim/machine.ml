module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Binding = Rescont.Binding
module Attrs = Rescont.Attrs
module Task = Sched.Task

type state = Ready | Running | Blocked | Done

type thread = {
  task : Task.t;
  mutable state : state;
  mutable pending : int; (* ns of requested CPU still to consume *)
  mutable kernel_mode : bool; (* mode of the pending request *)
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable entry : (unit -> unit) option; (* body not yet started *)
  mutable ready_since : Simtime.t; (* when it last became runnable *)
}

(* One dispatch record per processor, allocated at machine creation and
   reused for every slice (a record, a [Some] box and an end-of-slice
   closure per dispatch otherwise add up to the single largest allocation
   stream in a run).  [d_thread] is only meaningful while the slot is
   occupied ([currents.(cpu)] is [Some]); between slices it retains the
   previous occupant, which pins nothing beyond the thread table. *)
type dispatch = {
  mutable d_thread : thread;
  d_cpu : int; (* which processor the slice runs on *)
  mutable d_work : int; (* ns of work in this slice *)
  mutable d_end_time : Simtime.t; (* wall-clock end, grows when time is stolen *)
  mutable d_end_event : Sim.event;
  mutable d_fin : unit -> unit; (* preallocated [finish_slice] thunk *)
}

(* The effect handlers, allocated once per machine.  [effc] used to build
   a fresh [Some (fun k -> ...)] closure on every perform — a steady
   per-request allocation stream on the packet path.  Each handler reads
   the performing thread from [exec] (always set while thread code runs)
   and any effect payload from scratch cells on [t], which [effc] fills
   before handing the handler back. *)
type handlers = {
  h_cpu : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_sleep : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_yield : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_wait : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_self : ((thread, unit) Effect.Deep.continuation -> unit) option;
}

type t = {
  sim : Sim.t;
  pol : Sched.Policy.t;
  root : Container.t;
  quantum : int;
  currents : dispatch option array; (* one slot per processor *)
  mutable dispatch_pool : dispatch array; (* the per-cpu reusable records *)
  mutable dispatch_some : dispatch option array; (* preallocated [Some pool.(cpu)] *)
  mutable exec : thread option; (* thread whose OCaml code is running *)
  mutable kick_pending : bool;
  mutable kick_fn : unit -> unit; (* preallocated: clears kick_pending, dispatches *)
  mutable dispatch_fn : unit -> unit; (* preallocated [dispatch_next] thunk *)
  mutable dummy_event : Sim.event; (* inert cancelled event; fresh dispatches start here *)
  mutable irq_busy_until : Simtime.t; (* interrupts run on processor 0 *)
  mutable busy : int; (* total ns consumed, all processors *)
  mutable threads : thread list;
  mutable tslots : thread array; (* indexed by [Task.mslot]; grows, never shrinks *)
  mutable tslot_used : int;
  mutable on_idle : unit -> unit;
  invariants : Engine.Invariant.t;
  mutable starvation_bound : int; (* ns a non-idle thread may wait while idle runs *)
  trace : Engine.Tracelog.t;
  metrics : Engine.Metrics.t;
  c_dispatches : Engine.Metrics.counter;
  c_preemptions : Engine.Metrics.counter;
  c_spawns : Engine.Metrics.counter;
  c_kills : Engine.Metrics.counter;
  c_rebinds : Engine.Metrics.counter;
  c_irq_steals : Engine.Metrics.counter;
  mutable handlers : handlers; (* installed by [create], before any thread runs *)
  mutable eff_sleep_ns : int; (* E_sleep payload, valid only inside [effc] *)
  mutable eff_wq : waitq option; (* E_wait payload, likewise *)
}

(* Wait queues participate in the effect type and in [t], so they live in
   the recursive group. *)
and waitq = { wq_name : string; wq_machine : t; mutable wq_waiters : thread list }

type _ Effect.t +=
  | E_cpu : { cost : int; kernel : bool } -> unit Effect.t
  | E_sleep : int -> unit Effect.t
  | E_yield : unit Effect.t
  | E_self : thread Effect.t
  | E_wait : waitq -> unit Effect.t

let sim m = m.sim
let now m = Sim.now m.sim
let root m = m.root
let system_container m = m.root
let policy m = m.pol
let busy_time m = Simtime.span_of_ns m.busy
let thread_name thread = thread.task.Task.name
let thread_task thread = thread.task
let binding thread = thread.task.Task.binding
let is_done thread = thread.state = Done

let trace m = m.trace
let metrics m = m.metrics

let tracing m = Engine.Tracelog.enabled m.trace
let tell m ev = Engine.Tracelog.event m.trace (now m) ev

let charge_to m container ~kernel span_ns =
  if span_ns > 0 then begin
    let span = Simtime.span_of_ns span_ns in
    Container.charge_cpu container ~kernel span;
    m.pol.Sched.Policy.charge ~container ~now:(now m) span;
    m.busy <- m.busy + span_ns;
    if tracing m then
      tell m
        (Engine.Trace_event.Charge
           {
             resource = Engine.Trace_event.Cpu;
             cid = Container.id container;
             container = Container.name container;
             amount = span_ns;
           })
  end

let cpus m = Array.length m.currents

let free_cpu m =
  let rec scan i =
    if i >= cpus m then None
    else match m.currents.(i) with None -> Some i | Some _ -> scan (i + 1)
  in
  scan 0

(* Run a suspended or fresh thread's code until its next effect. *)
let rec resume_thread m thread =
  let previous = m.exec in
  m.exec <- Some thread;
  (match (thread.entry, thread.cont) with
  | Some body, _ ->
      thread.entry <- None;
      start_body m thread body
  | None, Some k ->
      thread.cont <- None;
      Effect.Deep.continue k ()
  | None, None -> ());
  m.exec <- previous

and start_body m thread body =
  let open Effect.Deep in
  match_with body ()
    {
      retc =
        (fun () ->
          thread.state <- Done;
          m.pol.Sched.Policy.dequeue thread.task;
          Binding.drop thread.task.Task.binding);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) : ((a, unit) continuation -> unit) option ->
          (* The payload is stashed on [m] (or directly on the thread)
             here, and the matching preallocated handler — which runs
             immediately, before anything else can touch the scratch
             cells — picks it up.  [m.exec] is the performing thread. *)
          match eff with
          | E_cpu { cost; kernel } ->
              thread.pending <- max 0 cost;
              thread.kernel_mode <- kernel;
              m.handlers.h_cpu
          | E_sleep span_ns ->
              m.eff_sleep_ns <- span_ns;
              m.handlers.h_sleep
          | E_yield -> m.handlers.h_yield
          | E_wait wq ->
              m.eff_wq <- Some wq;
              m.handlers.h_wait
          | E_self -> m.handlers.h_self
          | _ -> None);
    }

and make_runnable m thread =
  if thread.state = Blocked then begin
    thread.state <- Ready;
    thread.ready_since <- now m;
    m.pol.Sched.Policy.enqueue thread.task;
    kick m
  end

and kick m =
  if not m.kick_pending then begin
    m.kick_pending <- true;
    Sim.post m.sim Simtime.span_zero m.kick_fn
  end

and kick_at m time = Sim.post_at m.sim time m.dispatch_fn

and dispatch_next m =
  match free_cpu m with
  | None -> ()
  | Some cpu ->
      if cpu = 0 && Simtime.(now m < m.irq_busy_until) then begin
        kick_at m m.irq_busy_until;
        (* Other processors may still dispatch. *)
        if cpus m > 1 then dispatch_on m ~from_cpu:1
      end
      else dispatch_on m ~from_cpu:cpu

and dispatch_on m ~from_cpu =
  let rec scan cpu =
    if cpu >= cpus m then ()
    else
      match m.currents.(cpu) with
      | Some _ -> scan (cpu + 1)
      | None ->
          if cpu = 0 && Simtime.(now m < m.irq_busy_until) then scan (cpu + 1)
          else begin
            match m.pol.Sched.Policy.pick ~now:(now m) with
            | None ->
                (match m.pol.Sched.Policy.next_release ~now:(now m) with
                | Some t when Simtime.(t > now m) -> kick_at m t
                | Some _ | None -> ());
                m.on_idle ()
            | Some task ->
                (* Thread lookup is an array load off the task's machine
                   slot (stamped at spawn); the identity check rejects a
                   task this machine never spawned. *)
                let s = task.Task.mslot in
                if
                  s < 0 || s >= m.tslot_used
                  || (Array.unsafe_get m.tslots s).task != task
                then begin
                  m.pol.Sched.Policy.dequeue task;
                  scan cpu
                end
                else begin
                  let thread = Array.unsafe_get m.tslots s in
                  if thread.pending <= 0 then begin
                    (* Nothing to burn: run the thread's code to its next
                       effect, then look again. *)
                    m.pol.Sched.Policy.dequeue thread.task;
                    resume_thread m thread;
                    scan cpu
                  end
                  else begin
                    start_slice m thread ~cpu;
                    scan (cpu + 1)
                  end
                end
          end
  in
  scan from_cpu

and start_slice m thread ~cpu =
  let work = min m.quantum thread.pending in
  Engine.Metrics.incr m.c_dispatches;
  if tracing m then begin
    let c = Binding.resource_binding thread.task.Task.binding in
    tell m
      (Engine.Trace_event.Dispatch
         {
           cpu;
           thread = thread.task.Task.name;
           cid = Container.id c;
           container = Container.name c;
           work_ns = work;
         })
  end;
  thread.state <- Running;
  (* A running task leaves the policy's queues so another processor cannot
     pick it concurrently; it re-enters at slice end. *)
  m.pol.Sched.Policy.dequeue thread.task;
  let d = m.dispatch_pool.(cpu) in
  d.d_thread <- thread;
  d.d_work <- work;
  d.d_end_time <- Simtime.add (now m) (Simtime.span_of_ns work);
  d.d_end_event <- Sim.at m.sim d.d_end_time d.d_fin;
  m.currents.(cpu) <- m.dispatch_some.(cpu)

and finish_slice m d =
  m.currents.(d.d_cpu) <- None;
  let thread = d.d_thread in
  let container = Binding.resource_binding thread.task.Task.binding in
  charge_to m container ~kernel:thread.kernel_mode d.d_work;
  Binding.touch thread.task.Task.binding ~now:(now m);
  if thread.state = Done then (* killed mid-slice *) ()
  else begin
    thread.pending <- thread.pending - d.d_work;
    if thread.pending <= 0 then begin
      thread.state <- Ready;
      resume_thread m thread
    end
    else begin
      Engine.Metrics.incr m.c_preemptions;
      if tracing m then
        tell m
          (Engine.Trace_event.Preempt
             { cpu = d.d_cpu; thread = thread.task.Task.name; remaining_ns = thread.pending });
      thread.state <- Ready;
      thread.ready_since <- now m;
      m.pol.Sched.Policy.enqueue thread.task
    end
  end;
  dispatch_next m

let create ?(cpus = 1) ?(quantum = Simtime.ms 1) ?(prune_interval = Simtime.ms 100)
    ?(prune_age = Simtime.ms 500) ?trace ?metrics ?invariants ~sim ~policy:pol ~root () =
  if cpus <= 0 then invalid_arg "Machine.create: cpus must be positive";
  let trace = match trace with Some t -> t | None -> Engine.Tracelog.create () in
  let metrics = match metrics with Some r -> r | None -> Engine.Metrics.create () in
  let invariants =
    match invariants with Some i -> i | None -> Engine.Invariant.create ()
  in
  let m =
    {
      sim;
      pol;
      root;
      quantum = Simtime.span_to_ns quantum;
      currents = Array.make cpus None;
      dispatch_pool = [||]; (* filled below, once [m] exists *)
      dispatch_some = [||];
      exec = None;
      kick_pending = false;
      kick_fn = ignore;
      dispatch_fn = ignore;
      dummy_event = (let e = Sim.after sim Simtime.span_zero (fun () -> ()) in
                     ignore (Sim.cancel sim e);
                     e);
      irq_busy_until = Simtime.zero;
      busy = 0;
      threads = [];
      tslots = [||];
      tslot_used = 0;
      on_idle = (fun () -> ());
      invariants;
      starvation_bound = Simtime.span_to_ns (Simtime.ms 100);
      trace;
      metrics;
      c_dispatches = Engine.Metrics.counter metrics "sched.dispatches";
      c_preemptions = Engine.Metrics.counter metrics "sched.preemptions";
      c_spawns = Engine.Metrics.counter metrics "machine.spawns";
      c_kills = Engine.Metrics.counter metrics "machine.kills";
      c_rebinds = Engine.Metrics.counter metrics "machine.rebinds";
      c_irq_steals = Engine.Metrics.counter metrics "machine.irq_steals";
      handlers = { h_cpu = None; h_sleep = None; h_yield = None; h_wait = None; h_self = None };
      eff_sleep_ns = 0;
      eff_wq = None;
    }
  in
  let exec_thread () =
    match m.exec with
    | Some thread -> thread
    | None -> invalid_arg "Machine: effect performed outside a machine thread"
  in
  m.handlers <-
    {
      h_cpu =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Ready;
            thread.ready_since <- now m;
            m.pol.Sched.Policy.enqueue thread.task;
            kick m);
      h_sleep =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Blocked;
            m.pol.Sched.Policy.dequeue thread.task;
            Sim.post m.sim (Simtime.span_of_ns m.eff_sleep_ns) (fun () ->
                make_runnable m thread));
      h_yield =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Ready;
            thread.ready_since <- now m;
            m.pol.Sched.Policy.enqueue thread.task;
            kick m);
      h_wait =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Blocked;
            m.pol.Sched.Policy.dequeue thread.task;
            match m.eff_wq with
            | Some wq ->
                m.eff_wq <- None;
                wq.wq_waiters <- wq.wq_waiters @ [ thread ]
            | None -> assert false);
      h_self = Some (fun k -> Effect.Deep.continue k (exec_thread ()));
    };
  m.kick_fn <-
    (fun () ->
      m.kick_pending <- false;
      dispatch_next m);
  m.dispatch_fn <- (fun () -> dispatch_next m);
  m.dispatch_pool <-
    Array.init cpus (fun cpu ->
        (* [d_thread] is written by [start_slice] before anyone reads it;
           the [Obj.magic] placeholder is never dereferenced (same pattern
           as the wheel's sentinel payload). *)
        let d =
          { d_thread = Obj.magic 0; d_cpu = cpu; d_work = 0; d_end_time = Simtime.zero;
            d_end_event = m.dummy_event; d_fin = ignore }
        in
        d.d_fin <- (fun () -> finish_slice m d);
        d);
  m.dispatch_some <- Array.map (fun d -> Some d) m.dispatch_pool;
  Engine.Metrics.gauge metrics "machine.busy_ns" (fun () -> float_of_int m.busy);
  Engine.Metrics.gauge metrics "machine.runnable_tasks" (fun () ->
      float_of_int (m.pol.Sched.Policy.runnable_count ()));
  Engine.Metrics.gauge metrics "rc.root.cpu_ns" (fun () ->
      float_of_int (Rescont.Usage.cpu_ns (Container.subtree_usage root)));
  Engine.Metrics.gauge metrics "rc.root.memory_bytes" (fun () ->
      float_of_int (Rescont.Usage.mem_bytes (Container.subtree_usage root)));
  (* Periodic pruning of scheduler-binding sets (paper §4.3). *)
  ignore
    (Sim.every sim prune_interval (fun () ->
         m.threads <- List.filter (fun thread -> thread.state <> Done) m.threads;
         List.iter
           (fun thread ->
             ignore
               (Binding.prune thread.task.Task.binding ~now:(now m) ~max_age:prune_age))
           m.threads));
  (* Conservation laws (paper §4.4: every consumed unit lands on exactly
     one container).  Registered always; they only run when the registry is
     checked, so the fast paths pay nothing. *)
  let module I = Engine.Invariant in
  I.register invariants ~law:"cpu.conservation" (fun () ->
      (* Every nanosecond the machine consumed must have rolled up into the
         root's subtree usage — a charge to a detached container increments
         [busy] without reaching the root and is caught here. *)
      I.equal_int ~what:"machine busy ns vs root-subtree cpu ns" m.busy
        (Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.subtree_usage root))));
  I.register invariants ~law:"cpu.subtree-rollup" (fun () ->
      (* Own usage summed over the live subtree can only fall short of the
         root's subtree aggregate by what destroyed containers consumed —
         never exceed it. *)
      let own = ref 0 in
      Container.iter_subtree
        (fun c -> own := !own + Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.usage c)))
        root;
      I.leq_int ~what:"live-subtree own cpu ns vs root-subtree aggregate ns" !own
        (Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.subtree_usage root))));
  I.register invariants ~law:"memory.non-negative" (fun () ->
      let bad = ref (Ok ()) in
      Container.iter_subtree
        (fun c ->
          match !bad with
          | Error _ -> ()
          | Ok () ->
              let own = Rescont.Usage.memory_bytes (Container.usage c) in
              let sub = Rescont.Usage.memory_bytes (Container.subtree_usage c) in
              if own < 0 then
                bad := I.non_negative ~what:(Container.name c ^ " memory_bytes") own
              else if sub < 0 then
                bad := I.non_negative ~what:(Container.name c ^ " subtree memory_bytes") sub)
        root;
      !bad);
  I.register invariants ~law:"sched.no-idle-starvation" (fun () ->
      let container_of th = Binding.resource_binding th.task.Task.binding in
      let idle_running =
        Array.exists
          (function
            | Some d -> Attrs.is_idle_class (Container.attrs (container_of d.d_thread))
            | None -> false)
          m.currents
      in
      if not idle_running then Ok ()
      else
        let now_ns = Simtime.to_ns (now m) in
        let starved =
          List.find_opt
            (fun th ->
              th.state = Ready
              && (not (Attrs.is_idle_class (Container.attrs (container_of th))))
              && now_ns - Simtime.to_ns th.ready_since > m.starvation_bound)
            m.threads
        in
        match starved with
        | None -> Ok ()
        | Some th ->
            Error
              (Printf.sprintf "thread %s (container %s) runnable for %d ns while idle-class runs"
                 th.task.Task.name
                 (Container.name (container_of th))
                 (now_ns - Simtime.to_ns th.ready_since)));
  m

let spawn m ?(kernel = false) ~name ~container body =
  Engine.Metrics.incr m.c_spawns;
  if tracing m then
    tell m
      (Engine.Trace_event.Spawn
         { thread = name; cid = Container.id container; container = Container.name container });
  let b = Binding.create ~now:(now m) container in
  let task = Task.create ~kernel ~name b in
  let thread =
    { task; state = Blocked; pending = 0; kernel_mode = kernel; cont = None; entry = Some body;
      ready_since = now m }
  in
  let slot = m.tslot_used in
  if slot >= Array.length m.tslots then begin
    let cap = max 64 (2 * Array.length m.tslots) in
    (* The placeholder is never dereferenced: only slots below
       [tslot_used] are read (same pattern as the dispatch pool). *)
    let grown = Array.make cap (Obj.magic 0 : thread) in
    Array.blit m.tslots 0 grown 0 (Array.length m.tslots);
    m.tslots <- grown
  end;
  task.Task.mslot <- slot;
  m.tslots.(slot) <- thread;
  m.tslot_used <- slot + 1;
  m.threads <- thread :: m.threads;
  thread.state <- Ready;
  m.pol.Sched.Policy.enqueue task;
  kick m;
  thread

let rebind m thread container =
  Engine.Metrics.incr m.c_rebinds;
  if tracing m then
    tell m
      (Engine.Trace_event.Rebind
         {
           thread = thread.task.Task.name;
           cid = Container.id container;
           container = Container.name container;
         });
  Binding.set_resource_binding thread.task.Task.binding ~now:(now m) container;
  match thread.state with
  | Ready -> m.pol.Sched.Policy.requeue thread.task
  | Running (* dequeued while on a processor *) | Blocked | Done -> ()

(* Terminate a thread: discard its continuation, remove it from queues and
   release its bindings.  A thread occupying a processor finishes the slice
   in flight (the work is already committed) and is reaped at slice end. *)
let kill m thread =
  match thread.state with
  | Done -> ()
  | Ready | Blocked | Running ->
      Engine.Metrics.incr m.c_kills;
      if tracing m then
        tell m (Engine.Trace_event.Kill { thread = thread.task.Task.name });
      thread.cont <- None;
      thread.entry <- None;
      thread.pending <- 0;
      thread.state <- Done;
      m.pol.Sched.Policy.dequeue thread.task;
      Binding.drop thread.task.Task.binding

let reset_scheduler_binding m thread =
  Binding.reset_scheduler_binding thread.task.Task.binding ~now:(now m)

let cpu ?(kernel = false) span =
  let cost = Simtime.span_to_ns span in
  if cost > 0 then Effect.perform (E_cpu { cost; kernel })

let sleep span =
  let span_ns = Simtime.span_to_ns span in
  if span_ns > 0 then Effect.perform (E_sleep span_ns)

let yield () = Effect.perform E_yield
let self () = Effect.perform E_self

module Waitq = struct
  type nonrec t = waitq

  let create ?(name = "waitq") m = { wq_name = name; wq_machine = m; wq_waiters = [] }
  let wait wq = Effect.perform (E_wait wq)

  let signal wq =
    match wq.wq_waiters with
    | [] -> ()
    | thread :: rest ->
        wq.wq_waiters <- rest;
        make_runnable wq.wq_machine thread

  let broadcast wq =
    let waiters = wq.wq_waiters in
    wq.wq_waiters <- [];
    List.iter (make_runnable wq.wq_machine) waiters

  let waiters wq = List.length wq.wq_waiters
end

(* Interrupts are taken on processor 0, as most 1990s kernels did. *)
let steal_time m ~cost ~charge =
  let cost_ns = Simtime.span_to_ns cost in
  if cost_ns > 0 then begin
    let victim =
      match charge with
      | `Container c -> c
      | `Current_or_system -> (
          match m.currents.(0) with
          | Some d -> Binding.resource_binding d.d_thread.task.Task.binding
          | None -> m.root)
    in
    charge_to m victim ~kernel:true cost_ns;
    Engine.Metrics.incr m.c_irq_steals;
    if tracing m then
      tell m
        (Engine.Trace_event.Irq_steal
           { cost_ns; cid = Container.id victim; container = Container.name victim });
    match m.currents.(0) with
    | Some d ->
        ignore (Sim.cancel m.sim d.d_end_event);
        d.d_end_time <- Simtime.add d.d_end_time cost;
        d.d_end_event <- Sim.at m.sim d.d_end_time d.d_fin
    | None ->
        m.irq_busy_until <- Simtime.add (Simtime.max m.irq_busy_until (now m)) cost
  end

let invariants m = m.invariants

let check_invariants m = Engine.Invariant.check m.invariants

let arm_invariants ?(interval = Simtime.ms 10) ?starvation_bound m =
  (match starvation_bound with
  | Some b -> m.starvation_bound <- Simtime.span_to_ns b
  | None -> ());
  Engine.Invariant.arm m.invariants;
  Rescont.Usage.set_strict_memory true;
  ignore (Sim.every m.sim interval (fun () -> Engine.Invariant.check_exn m.invariants))

let run_until m horizon =
  Sim.run_until m.sim horizon;
  (* Quiesce check: the horizon is an event boundary, so every law must
     hold exactly here. *)
  if Engine.Invariant.armed m.invariants then Engine.Invariant.check_exn m.invariants

let set_on_idle m f = m.on_idle <- f
let runnable_tasks m = m.pol.Sched.Policy.runnable_count ()
