module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Binding = Rescont.Binding
module Attrs = Rescont.Attrs
module Task = Sched.Task

type state = Ready | Running | Blocked | Done

type thread = {
  task : Task.t;
  mutable state : state;
  mutable pending : int; (* ns of requested CPU still to consume *)
  mutable kernel_mode : bool; (* mode of the pending request *)
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable entry : (unit -> unit) option; (* body not yet started *)
  mutable ready_since : Simtime.t; (* when it last became runnable *)
  pinned : bool; (* spawned with an explicit home CPU: never migrated *)
}

(* One dispatch record per processor, allocated at machine creation and
   reused for every slice (a record, a [Some] box and an end-of-slice
   closure per dispatch otherwise add up to the single largest allocation
   stream in a run).  [d_thread] is only meaningful while the slot is
   occupied ([currents.(cpu)] is [Some]); between slices it retains the
   previous occupant, which pins nothing beyond the thread table. *)
type dispatch = {
  mutable d_thread : thread;
  d_cpu : int; (* which processor the slice runs on *)
  mutable d_work : int; (* ns of work in this slice *)
  mutable d_end_time : Simtime.t; (* wall-clock end, grows when time is stolen *)
  mutable d_end_event : Sim.event;
  mutable d_fin : unit -> unit; (* preallocated [finish_slice] thunk *)
}

(* The effect handlers, allocated once per machine.  [effc] used to build
   a fresh [Some (fun k -> ...)] closure on every perform — a steady
   per-request allocation stream on the packet path.  Each handler reads
   the performing thread from [exec] (always set while thread code runs)
   and any effect payload from scratch cells on [t], which [effc] fills
   before handing the handler back. *)
type handlers = {
  h_cpu : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_sleep : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_yield : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_wait : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_self : ((thread, unit) Effect.Deep.continuation -> unit) option;
}

type t = {
  sim : Sim.t;
  pol : Sched.Policy.t; (* = shards.(0); kept as the public "the policy" view *)
  shards : Sched.Policy.t array; (* one run-queue shard per processor; all
                                    physically equal when the machine runs a
                                    single shared queue *)
  sharded : bool; (* true iff the shards are distinct policy instances *)
  root : Container.t;
  quantum : int;
  currents : dispatch option array; (* one slot per processor *)
  mutable dispatch_pool : dispatch array; (* the per-cpu reusable records *)
  mutable dispatch_some : dispatch option array; (* preallocated [Some pool.(cpu)] *)
  mutable exec : thread option; (* thread whose OCaml code is running *)
  mutable kick_pending : bool;
  mutable timed_kick : Simtime.t; (* earliest outstanding timed dispatch wake-up;
                                     in the past = none outstanding *)
  mutable kick_fn : unit -> unit; (* preallocated: clears kick_pending, dispatches *)
  mutable dispatch_fn : unit -> unit; (* preallocated [dispatch_next] thunk *)
  mutable dummy_event : Sim.event; (* inert cancelled event; fresh dispatches start here *)
  irq_busy_until : Simtime.t array; (* per-CPU: until when steered interrupt
                                       work keeps that processor from
                                       dispatching while otherwise idle *)
  mutable busy : int; (* total ns consumed, all processors *)
  busy_cpu : int array; (* ns consumed per processor; sums to [busy] *)
  mutable threads : thread list;
  mutable tslots : thread array; (* indexed by [Task.mslot]; grows, never shrinks *)
  mutable tslot_used : int;
  mutable on_idle : unit -> unit;
  invariants : Engine.Invariant.t;
  mutable starvation_bound : int; (* ns a non-idle thread may wait while idle runs *)
  trace : Engine.Tracelog.t;
  metrics : Engine.Metrics.t;
  c_dispatches : Engine.Metrics.counter;
  c_preemptions : Engine.Metrics.counter;
  c_spawns : Engine.Metrics.counter;
  c_kills : Engine.Metrics.counter;
  c_rebinds : Engine.Metrics.counter;
  c_irq_steals : Engine.Metrics.counter;
  c_migrations : Engine.Metrics.counter;
  mutable handlers : handlers; (* installed by [create], before any thread runs *)
  mutable eff_sleep_ns : int; (* E_sleep payload, valid only inside [effc] *)
  mutable eff_wq : waitq option; (* E_wait payload, likewise *)
}

(* Wait queues participate in the effect type and in [t], so they live in
   the recursive group. *)
and waitq = { wq_name : string; wq_machine : t; mutable wq_waiters : thread list }

type _ Effect.t +=
  | E_cpu : { cost : int; kernel : bool } -> unit Effect.t
  | E_sleep : int -> unit Effect.t
  | E_yield : unit Effect.t
  | E_self : thread Effect.t
  | E_wait : waitq -> unit Effect.t

let sim m = m.sim
let now m = Sim.now m.sim
let root m = m.root
let system_container m = m.root
let policy m = m.pol
let busy_time m = Simtime.span_of_ns m.busy

let busy_time_on m cpu =
  if cpu < 0 || cpu >= Array.length m.busy_cpu then
    invalid_arg "Machine.busy_time_on: no such processor";
  Simtime.span_of_ns m.busy_cpu.(cpu)

(* The shard whose run queue currently holds (or last held) the task.
   Every enqueue/dequeue/requeue for a task must go through its home shard:
   run-queue membership is intrusive (Sched.Runq stamps the task), so a
   dequeue against the wrong shard silently does nothing. *)
let home_pol m (thread : thread) = m.shards.(thread.task.Task.home_cpu)
let thread_name thread = thread.task.Task.name
let thread_task thread = thread.task
let binding thread = thread.task.Task.binding
let is_done thread = thread.state = Done

let trace m = m.trace
let metrics m = m.metrics

let tracing m = Engine.Tracelog.enabled m.trace
let tell m ev = Engine.Tracelog.event m.trace (now m) ev

let charge_to m container ~kernel ~cpu span_ns =
  if span_ns > 0 then begin
    let span = Simtime.span_of_ns span_ns in
    Container.charge_cpu container ~kernel span;
    m.shards.(cpu).Sched.Policy.charge ~container ~now:(now m) span;
    m.busy <- m.busy + span_ns;
    m.busy_cpu.(cpu) <- m.busy_cpu.(cpu) + span_ns;
    if tracing m then
      tell m
        (Engine.Trace_event.Charge
           {
             resource = Engine.Trace_event.Cpu;
             cid = Container.id container;
             container = Container.name container;
             amount = span_ns;
           })
  end

let cpus m = Array.length m.currents

(* The machine is idle only when no processor has a slice in flight AND
   no processor is held by steered interrupt work: a Ready kthread pinned
   to an irq-held CPU is committed future work, and signalling the idle
   hook over its head would re-wake (and re-block) its peers in an
   infinite same-instant loop. *)
let all_slots_free m =
  let n = Array.length m.currents in
  let t = Sim.now m.sim in
  let rec go i =
    i >= n
    || (match m.currents.(i) with
       | Some _ -> false
       | None -> Simtime.(t >= m.irq_busy_until.(i)) && go (i + 1))
  in
  go 0

(* Run a suspended or fresh thread's code until its next effect. *)
let rec resume_thread m thread =
  let previous = m.exec in
  m.exec <- Some thread;
  (match (thread.entry, thread.cont) with
  | Some body, _ ->
      thread.entry <- None;
      start_body m thread body
  | None, Some k ->
      thread.cont <- None;
      Effect.Deep.continue k ()
  | None, None -> ());
  m.exec <- previous

and start_body m thread body =
  let open Effect.Deep in
  match_with body ()
    {
      retc =
        (fun () ->
          thread.state <- Done;
          (home_pol m thread).Sched.Policy.dequeue thread.task;
          Binding.drop thread.task.Task.binding);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) : ((a, unit) continuation -> unit) option ->
          (* The payload is stashed on [m] (or directly on the thread)
             here, and the matching preallocated handler — which runs
             immediately, before anything else can touch the scratch
             cells — picks it up.  [m.exec] is the performing thread. *)
          match eff with
          | E_cpu { cost; kernel } ->
              thread.pending <- max 0 cost;
              thread.kernel_mode <- kernel;
              m.handlers.h_cpu
          | E_sleep span_ns ->
              m.eff_sleep_ns <- span_ns;
              m.handlers.h_sleep
          | E_yield -> m.handlers.h_yield
          | E_wait wq ->
              m.eff_wq <- Some wq;
              m.handlers.h_wait
          | E_self -> m.handlers.h_self
          | _ -> None);
    }

and make_runnable m thread =
  if thread.state = Blocked then begin
    thread.state <- Ready;
    thread.ready_since <- now m;
    (home_pol m thread).Sched.Policy.enqueue thread.task;
    kick m
  end

and kick m =
  if not m.kick_pending then begin
    m.kick_pending <- true;
    Sim.post m.sim Simtime.span_zero m.kick_fn
  end

(* Timed dispatch wake-ups (irq drain, throttle release).  On an SMP
   machine every dispatch pass may want one per processor, and a pass runs
   per posted event — posting unconditionally doubles the queued wake-ups
   per generation (K events at one drain instant each post K' more), an
   exponential event storm under sustained interrupt load.  One
   outstanding timed kick is enough: the pass it triggers re-examines
   every processor and re-posts the next-earliest wake-up.  Post only when
   none is outstanding ([timed_kick] in the past) or a strictly earlier
   one is needed; a superseded later event still fires and costs one
   harmless no-op pass.  The uniprocessor keeps the direct post — at most
   one wake-up per pass, and the historical event order is part of the
   machine's committed single-CPU behaviour. *)
and kick_at m time =
  if cpus m = 1 then Sim.post_at m.sim time m.dispatch_fn
  else if Simtime.(m.timed_kick <= now m) || Simtime.(time < m.timed_kick) then begin
    m.timed_kick <- time;
    Sim.post_at m.sim time m.dispatch_fn
  end

(* Pick the next runnable thread out of one policy shard.  Thread lookup
   is an array load off the task's machine slot (stamped at spawn); the
   identity check rejects a task this machine never spawned, which is then
   dropped from the queue and the pick retried. *)
and pick_thread m pol =
  match pol.Sched.Policy.pick ~now:(now m) with
  | None -> None
  | Some task ->
      let s = task.Task.mslot in
      if s < 0 || s >= m.tslot_used || (Array.unsafe_get m.tslots s).task != task
      then begin
        pol.Sched.Policy.dequeue task;
        pick_thread m pol
      end
      else Some (Array.unsafe_get m.tslots s)

(* Move a runnable thread between run-queue shards.  The thread can only
   gain service: it leaves a more-loaded queue for a strictly less-loaded
   one, so whatever share its container was guaranteed of the old
   processor it now gets at least of the new one. *)
and migrate m thread ~to_cpu =
  let task = thread.task in
  let from_cpu = task.Task.home_cpu in
  m.shards.(from_cpu).Sched.Policy.dequeue task;
  task.Task.home_cpu <- to_cpu;
  m.shards.(to_cpu).Sched.Policy.enqueue task;
  Engine.Metrics.incr m.c_migrations;
  if tracing m then
    tell m (Engine.Trace_event.Migrate { thread = task.Task.name; from_cpu; to_cpu })

(* Work stealing: an otherwise-idle processor pulls one runnable thread
   from another shard's queue rather than idling.  Pinned threads (per-CPU
   kernel threads) are never stolen. *)
and try_steal m ~cpu =
  let n = cpus m in
  let local = m.shards.(cpu) in
  let rec go k =
    if k >= n then None
    else
      let v = (cpu + k) mod n in
      let vpol = m.shards.(v) in
      if vpol == local then go (k + 1)
      else
        match pick_thread m vpol with
        | Some thread
          when (not thread.pinned) && thread.state = Ready
               && thread.task.Task.home_cpu <> cpu ->
            migrate m thread ~to_cpu:cpu;
            Some thread
        | Some _ | None -> go (k + 1)
  in
  go 1

and dispatch_next m =
  let n = cpus m in
  let rec scan cpu =
    if cpu >= n then begin
      (* Idle is a machine-wide condition: signal it only when no
         processor has a slice in flight, never while another CPU is
         mid-slice (the hook runs idle-class protocol processing, which
         must not compete with committed work). *)
      if all_slots_free m then m.on_idle ()
    end
    else
      match m.currents.(cpu) with
      | Some _ -> scan (cpu + 1)
      | None ->
          if Simtime.(now m < m.irq_busy_until.(cpu)) then begin
            (* Steered interrupt work holds this processor; try again when
               it drains.  Other processors may still dispatch. *)
            kick_at m m.irq_busy_until.(cpu);
            scan (cpu + 1)
          end
          else begin
            let pol = m.shards.(cpu) in
            let picked =
              match pick_thread m pol with
              | Some _ as r -> r
              | None -> if m.sharded then try_steal m ~cpu else None
            in
            match picked with
            | None ->
                (match pol.Sched.Policy.next_release ~now:(now m) with
                | Some t when Simtime.(t > now m) -> kick_at m t
                | Some _ | None -> ());
                scan (cpu + 1)
            | Some thread ->
                if thread.pending <= 0 then begin
                  (* Nothing to burn: run the thread's code to its next
                     effect, then look again. *)
                  (home_pol m thread).Sched.Policy.dequeue thread.task;
                  resume_thread m thread;
                  scan cpu
                end
                else begin
                  start_slice m thread ~cpu;
                  scan (cpu + 1)
                end
          end
  in
  scan 0

and start_slice m thread ~cpu =
  let work = min m.quantum thread.pending in
  Engine.Metrics.incr m.c_dispatches;
  if tracing m then begin
    let c = Binding.resource_binding thread.task.Task.binding in
    tell m
      (Engine.Trace_event.Dispatch
         {
           cpu;
           thread = thread.task.Task.name;
           cid = Container.id c;
           container = Container.name c;
           work_ns = work;
         })
  end;
  thread.state <- Running;
  (* A running task leaves the policy's queues so another processor cannot
     pick it concurrently; it re-enters at slice end. *)
  (home_pol m thread).Sched.Policy.dequeue thread.task;
  let d = m.dispatch_pool.(cpu) in
  d.d_thread <- thread;
  d.d_work <- work;
  d.d_end_time <- Simtime.add (now m) (Simtime.span_of_ns work);
  d.d_end_event <- Sim.at m.sim d.d_end_time d.d_fin;
  m.currents.(cpu) <- m.dispatch_some.(cpu)

and finish_slice m d =
  m.currents.(d.d_cpu) <- None;
  let thread = d.d_thread in
  let container = Binding.resource_binding thread.task.Task.binding in
  charge_to m container ~kernel:thread.kernel_mode ~cpu:d.d_cpu d.d_work;
  Binding.touch thread.task.Task.binding ~now:(now m);
  if thread.state = Done then (* killed mid-slice *) ()
  else begin
    thread.pending <- thread.pending - d.d_work;
    if thread.pending <= 0 then begin
      thread.state <- Ready;
      resume_thread m thread
    end
    else begin
      Engine.Metrics.incr m.c_preemptions;
      if tracing m then
        tell m
          (Engine.Trace_event.Preempt
             { cpu = d.d_cpu; thread = thread.task.Task.name; remaining_ns = thread.pending });
      thread.state <- Ready;
      thread.ready_since <- now m;
      (home_pol m thread).Sched.Policy.enqueue thread.task
    end
  end;
  dispatch_next m

(* Periodic container-aware rebalance: while the deepest and shallowest
   shards differ by at least two runnable tasks, move one unpinned task
   toward the shallow shard.  Only strictly-less-loaded destinations are
   chosen, so per-container fixed-share guarantees can only improve for
   the migrated task (see [migrate]). *)
let rebalance m =
  let n = cpus m in
  let moved = ref false in
  let halt = ref false in
  while not !halt do
    let imax = ref 0 and imin = ref 0 in
    for i = 1 to n - 1 do
      let c = m.shards.(i).Sched.Policy.runnable_count () in
      if c > m.shards.(!imax).Sched.Policy.runnable_count () then imax := i;
      if c < m.shards.(!imin).Sched.Policy.runnable_count () then imin := i
    done;
    let cmax = m.shards.(!imax).Sched.Policy.runnable_count ()
    and cmin = m.shards.(!imin).Sched.Policy.runnable_count () in
    if cmax - cmin < 2 then halt := true
    else
      match pick_thread m m.shards.(!imax) with
      | Some thread when (not thread.pinned) && thread.state = Ready ->
          migrate m thread ~to_cpu:!imin;
          moved := true
      | Some _ | None -> halt := true
  done;
  if !moved then kick m

let create ?(cpus = 1) ?shard_policy ?(rebalance_interval = Simtime.ms 5)
    ?(quantum = Simtime.ms 1) ?(prune_interval = Simtime.ms 100)
    ?(prune_age = Simtime.ms 500) ?trace ?metrics ?invariants ~sim ~policy:pol ~root () =
  if cpus <= 0 then invalid_arg "Machine.create: cpus must be positive";
  let trace = match trace with Some t -> t | None -> Engine.Tracelog.create () in
  let metrics = match metrics with Some r -> r | None -> Engine.Metrics.create () in
  let invariants =
    match invariants with Some i -> i | None -> Engine.Invariant.create ()
  in
  let shards =
    Array.init cpus (fun i ->
        if i = 0 then pol
        else match shard_policy with Some f -> f i | None -> pol)
  in
  let sharded = cpus > 1 && shard_policy <> None in
  let m =
    {
      sim;
      pol;
      shards;
      sharded;
      root;
      quantum = Simtime.span_to_ns quantum;
      currents = Array.make cpus None;
      dispatch_pool = [||]; (* filled below, once [m] exists *)
      dispatch_some = [||];
      exec = None;
      kick_pending = false;
      timed_kick = Simtime.zero;
      kick_fn = ignore;
      dispatch_fn = ignore;
      dummy_event = (let e = Sim.after sim Simtime.span_zero (fun () -> ()) in
                     ignore (Sim.cancel sim e);
                     e);
      irq_busy_until = Array.make cpus Simtime.zero;
      busy = 0;
      busy_cpu = Array.make cpus 0;
      threads = [];
      tslots = [||];
      tslot_used = 0;
      on_idle = (fun () -> ());
      invariants;
      starvation_bound = Simtime.span_to_ns (Simtime.ms 100);
      trace;
      metrics;
      c_dispatches = Engine.Metrics.counter metrics "sched.dispatches";
      c_preemptions = Engine.Metrics.counter metrics "sched.preemptions";
      c_spawns = Engine.Metrics.counter metrics "machine.spawns";
      c_kills = Engine.Metrics.counter metrics "machine.kills";
      c_rebinds = Engine.Metrics.counter metrics "machine.rebinds";
      c_irq_steals = Engine.Metrics.counter metrics "machine.irq_steals";
      c_migrations = Engine.Metrics.counter metrics "machine.migrations";
      handlers = { h_cpu = None; h_sleep = None; h_yield = None; h_wait = None; h_self = None };
      eff_sleep_ns = 0;
      eff_wq = None;
    }
  in
  let exec_thread () =
    match m.exec with
    | Some thread -> thread
    | None -> invalid_arg "Machine: effect performed outside a machine thread"
  in
  m.handlers <-
    {
      h_cpu =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Ready;
            thread.ready_since <- now m;
            (home_pol m thread).Sched.Policy.enqueue thread.task;
            kick m);
      h_sleep =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Blocked;
            (home_pol m thread).Sched.Policy.dequeue thread.task;
            Sim.post m.sim (Simtime.span_of_ns m.eff_sleep_ns) (fun () ->
                make_runnable m thread));
      h_yield =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Ready;
            thread.ready_since <- now m;
            (home_pol m thread).Sched.Policy.enqueue thread.task;
            kick m);
      h_wait =
        Some
          (fun k ->
            let thread = exec_thread () in
            thread.cont <- Some k;
            thread.state <- Blocked;
            (home_pol m thread).Sched.Policy.dequeue thread.task;
            match m.eff_wq with
            | Some wq ->
                m.eff_wq <- None;
                wq.wq_waiters <- wq.wq_waiters @ [ thread ]
            | None -> assert false);
      h_self = Some (fun k -> Effect.Deep.continue k (exec_thread ()));
    };
  m.kick_fn <-
    (fun () ->
      m.kick_pending <- false;
      dispatch_next m);
  m.dispatch_fn <- (fun () -> dispatch_next m);
  m.dispatch_pool <-
    Array.init cpus (fun cpu ->
        (* [d_thread] is written by [start_slice] before anyone reads it;
           the [Obj.magic] placeholder is never dereferenced (same pattern
           as the wheel's sentinel payload). *)
        let d =
          { d_thread = Obj.magic 0; d_cpu = cpu; d_work = 0; d_end_time = Simtime.zero;
            d_end_event = m.dummy_event; d_fin = ignore }
        in
        d.d_fin <- (fun () -> finish_slice m d);
        d);
  m.dispatch_some <- Array.map (fun d -> Some d) m.dispatch_pool;
  Engine.Metrics.gauge metrics "machine.busy_ns" (fun () -> float_of_int m.busy);
  let runnable_total () =
    if m.sharded then
      Array.fold_left (fun acc p -> acc + p.Sched.Policy.runnable_count ()) 0 m.shards
    else m.pol.Sched.Policy.runnable_count ()
  in
  Engine.Metrics.gauge metrics "machine.runnable_tasks" (fun () ->
      float_of_int (runnable_total ()));
  (* Per-CPU gauges only at cpus > 1, so uniprocessor metric snapshots are
     unchanged by the SMP work. *)
  if cpus > 1 then
    for i = 0 to cpus - 1 do
      Engine.Metrics.gauge metrics (Printf.sprintf "machine.busy_ns.cpu%d" i) (fun () ->
          float_of_int m.busy_cpu.(i))
    done;
  if sharded then
    ignore (Sim.every sim rebalance_interval (fun () -> rebalance m));
  Engine.Metrics.gauge metrics "rc.root.cpu_ns" (fun () ->
      float_of_int (Rescont.Usage.cpu_ns (Container.subtree_usage root)));
  Engine.Metrics.gauge metrics "rc.root.memory_bytes" (fun () ->
      float_of_int (Rescont.Usage.mem_bytes (Container.subtree_usage root)));
  (* Periodic pruning of scheduler-binding sets (paper §4.3). *)
  ignore
    (Sim.every sim prune_interval (fun () ->
         m.threads <- List.filter (fun thread -> thread.state <> Done) m.threads;
         List.iter
           (fun thread ->
             ignore
               (Binding.prune thread.task.Task.binding ~now:(now m) ~max_age:prune_age))
           m.threads));
  (* Conservation laws (paper §4.4: every consumed unit lands on exactly
     one container).  Registered always; they only run when the registry is
     checked, so the fast paths pay nothing. *)
  let module I = Engine.Invariant in
  I.register invariants ~law:"cpu.conservation" (fun () ->
      (* Every nanosecond the machine consumed must have rolled up into the
         root's subtree usage — a charge to a detached container increments
         [busy] without reaching the root and is caught here. *)
      I.equal_int ~what:"machine busy ns vs root-subtree cpu ns" m.busy
        (Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.subtree_usage root))));
  I.register invariants ~law:"cpu.per-cpu-conservation" (fun () ->
      (* The per-processor counters must partition the global sum, and no
         processor can have consumed more time than its committed horizon
         (now, extended by any in-flight slice or steered interrupt work —
         [steal_time] charges eagerly while pushing the end of the slice
         into the future). *)
      let sum = Array.fold_left ( + ) 0 m.busy_cpu in
      match I.equal_int ~what:"sum of per-cpu busy ns vs machine busy ns" sum m.busy with
      | Error _ as e -> e
      | Ok () ->
          let bad = ref (Ok ()) in
          for i = 0 to Array.length m.busy_cpu - 1 do
            match !bad with
            | Error _ -> ()
            | Ok () ->
                let horizon =
                  let h =
                    match m.currents.(i) with
                    | Some d -> Simtime.max d.d_end_time m.irq_busy_until.(i)
                    | None -> m.irq_busy_until.(i)
                  in
                  Simtime.to_ns (Simtime.max (now m) h)
                in
                if m.busy_cpu.(i) > horizon then
                  bad :=
                    Error
                      (Printf.sprintf "cpu%d busy %d ns exceeds committed horizon %d ns" i
                         m.busy_cpu.(i) horizon)
          done;
          !bad);
  I.register invariants ~law:"cpu.subtree-rollup" (fun () ->
      (* Own usage summed over the live subtree can only fall short of the
         root's subtree aggregate by what destroyed containers consumed —
         never exceed it. *)
      let own = ref 0 in
      Container.iter_subtree
        (fun c -> own := !own + Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.usage c)))
        root;
      I.leq_int ~what:"live-subtree own cpu ns vs root-subtree aggregate ns" !own
        (Simtime.span_to_ns (Rescont.Usage.cpu_total (Container.subtree_usage root))));
  I.register invariants ~law:"memory.non-negative" (fun () ->
      let bad = ref (Ok ()) in
      Container.iter_subtree
        (fun c ->
          match !bad with
          | Error _ -> ()
          | Ok () ->
              let own = Rescont.Usage.memory_bytes (Container.usage c) in
              let sub = Rescont.Usage.memory_bytes (Container.subtree_usage c) in
              if own < 0 then
                bad := I.non_negative ~what:(Container.name c ^ " memory_bytes") own
              else if sub < 0 then
                bad := I.non_negative ~what:(Container.name c ^ " subtree memory_bytes") sub)
        root;
      !bad);
  I.register invariants ~law:"sched.no-idle-starvation" (fun () ->
      (* Checked per processor: an idle-class thread holding cpu [i] only
         starves a non-idle thread that competes for cpu [i] — on a sharded
         machine that is a thread homed on the same shard (the scheduler
         prefers non-idle work within a shard; a backlog on a *different*
         saturated shard is ordinary queueing, not an idle-semantics
         violation).  With one shared queue every thread competes for every
         processor, which recovers the original global law. *)
      let container_of th = Binding.resource_binding th.task.Task.binding in
      let now_ns = Simtime.to_ns (now m) in
      let starved_on cpu =
        List.find_opt
          (fun th ->
            th.state = Ready
            && ((not m.sharded) || th.task.Task.home_cpu = cpu)
            && (not (Attrs.is_idle_class (Container.attrs (container_of th))))
            && now_ns - Simtime.to_ns th.ready_since > m.starvation_bound)
          m.threads
      in
      let bad = ref (Ok ()) in
      for cpu = 0 to Array.length m.currents - 1 do
        match !bad with
        | Error _ -> ()
        | Ok () -> (
            match m.currents.(cpu) with
            | Some d when Attrs.is_idle_class (Container.attrs (container_of d.d_thread))
              -> (
                match starved_on cpu with
                | None -> ()
                | Some th ->
                    bad :=
                      Error
                        (Printf.sprintf
                           "thread %s (container %s) runnable for %d ns while idle-class runs on cpu%d"
                           th.task.Task.name
                           (Container.name (container_of th))
                           (now_ns - Simtime.to_ns th.ready_since)
                           cpu))
            | Some _ | None -> ())
      done;
      !bad);
  m

(* Initial placement: the least-loaded shard, counting both queued tasks
   and an occupied processor slot; ties go to the lowest CPU.  On a
   single-queue machine everything lands on (the notional) CPU 0. *)
let place m =
  if not m.sharded then 0
  else begin
    let best = ref 0 and best_score = ref max_int in
    for i = 0 to cpus m - 1 do
      let score =
        m.shards.(i).Sched.Policy.runnable_count ()
        + (match m.currents.(i) with Some _ -> 1 | None -> 0)
      in
      if score < !best_score then begin
        best := i;
        best_score := score
      end
    done;
    !best
  end

let spawn m ?(kernel = false) ?cpu ~name ~container body =
  Engine.Metrics.incr m.c_spawns;
  if tracing m then
    tell m
      (Engine.Trace_event.Spawn
         { thread = name; cid = Container.id container; container = Container.name container });
  let b = Binding.create ~now:(now m) container in
  let task = Task.create ~kernel ~name b in
  let home, pinned =
    match cpu with
    | Some c ->
        if c < 0 || c >= cpus m then invalid_arg "Machine.spawn: no such processor";
        (c, true)
    | None -> (place m, false)
  in
  task.Task.home_cpu <- home;
  let thread =
    { task; state = Blocked; pending = 0; kernel_mode = kernel; cont = None; entry = Some body;
      ready_since = now m; pinned }
  in
  let slot = m.tslot_used in
  if slot >= Array.length m.tslots then begin
    let cap = max 64 (2 * Array.length m.tslots) in
    (* The placeholder is never dereferenced: only slots below
       [tslot_used] are read (same pattern as the dispatch pool). *)
    let grown = Array.make cap (Obj.magic 0 : thread) in
    Array.blit m.tslots 0 grown 0 (Array.length m.tslots);
    m.tslots <- grown
  end;
  task.Task.mslot <- slot;
  m.tslots.(slot) <- thread;
  m.tslot_used <- slot + 1;
  m.threads <- thread :: m.threads;
  thread.state <- Ready;
  m.shards.(home).Sched.Policy.enqueue task;
  kick m;
  thread

let rebind m thread container =
  Engine.Metrics.incr m.c_rebinds;
  if tracing m then
    tell m
      (Engine.Trace_event.Rebind
         {
           thread = thread.task.Task.name;
           cid = Container.id container;
           container = Container.name container;
         });
  Binding.set_resource_binding thread.task.Task.binding ~now:(now m) container;
  match thread.state with
  | Ready -> (home_pol m thread).Sched.Policy.requeue thread.task
  | Running (* dequeued while on a processor *) | Blocked | Done -> ()

(* Terminate a thread: discard its continuation, remove it from queues and
   release its bindings.  A thread occupying a processor finishes the slice
   in flight (the work is already committed) and is reaped at slice end. *)
let kill m thread =
  match thread.state with
  | Done -> ()
  | Ready | Blocked | Running ->
      Engine.Metrics.incr m.c_kills;
      if tracing m then
        tell m (Engine.Trace_event.Kill { thread = thread.task.Task.name });
      thread.cont <- None;
      thread.entry <- None;
      thread.pending <- 0;
      thread.state <- Done;
      (home_pol m thread).Sched.Policy.dequeue thread.task;
      Binding.drop thread.task.Task.binding

let reset_scheduler_binding m thread =
  Binding.reset_scheduler_binding thread.task.Task.binding ~now:(now m)

let cpu ?(kernel = false) span =
  let cost = Simtime.span_to_ns span in
  if cost > 0 then Effect.perform (E_cpu { cost; kernel })

let sleep span =
  let span_ns = Simtime.span_to_ns span in
  if span_ns > 0 then Effect.perform (E_sleep span_ns)

let yield () = Effect.perform E_yield
let self () = Effect.perform E_self

module Waitq = struct
  type nonrec t = waitq

  let create ?(name = "waitq") m = { wq_name = name; wq_machine = m; wq_waiters = [] }
  let wait wq = Effect.perform (E_wait wq)

  let signal wq =
    match wq.wq_waiters with
    | [] -> ()
    | thread :: rest ->
        wq.wq_waiters <- rest;
        make_runnable wq.wq_machine thread

  let broadcast wq =
    let waiters = wq.wq_waiters in
    wq.wq_waiters <- [];
    List.iter (make_runnable wq.wq_machine) waiters

  let waiters wq = List.length wq.wq_waiters
end

(* Interrupts are taken on processor 0 by default, as most 1990s kernels
   did; a steered interrupt ([cpu] from the NIC's RSS hash) runs — and
   charges, and steals wall-clock time — on the steered processor. *)
let steal_time ?(cpu = 0) m ~cost ~charge =
  let cost_ns = Simtime.span_to_ns cost in
  if cost_ns > 0 then begin
    if cpu < 0 || cpu >= cpus m then invalid_arg "Machine.steal_time: no such processor";
    let victim =
      match charge with
      | `Container c -> c
      | `Current_or_system -> (
          match m.currents.(cpu) with
          | Some d -> Binding.resource_binding d.d_thread.task.Task.binding
          | None -> m.root)
    in
    charge_to m victim ~kernel:true ~cpu cost_ns;
    Engine.Metrics.incr m.c_irq_steals;
    if tracing m then
      tell m
        (Engine.Trace_event.Irq_steal
           { cpu; cost_ns; cid = Container.id victim; container = Container.name victim });
    match m.currents.(cpu) with
    | Some d ->
        ignore (Sim.cancel m.sim d.d_end_event);
        d.d_end_time <- Simtime.add d.d_end_time cost;
        d.d_end_event <- Sim.at m.sim d.d_end_time d.d_fin
    | None ->
        m.irq_busy_until.(cpu) <-
          Simtime.add (Simtime.max m.irq_busy_until.(cpu) (now m)) cost
  end

let invariants m = m.invariants

let check_invariants m = Engine.Invariant.check m.invariants

let arm_invariants ?(interval = Simtime.ms 10) ?starvation_bound m =
  (match starvation_bound with
  | Some b -> m.starvation_bound <- Simtime.span_to_ns b
  | None -> ());
  Engine.Invariant.arm m.invariants;
  Rescont.Usage.set_strict_memory true;
  ignore (Sim.every m.sim interval (fun () -> Engine.Invariant.check_exn m.invariants))

let run_until m horizon =
  Sim.run_until m.sim horizon;
  (* Quiesce check: the horizon is an event boundary, so every law must
     hold exactly here. *)
  if Engine.Invariant.armed m.invariants then Engine.Invariant.check_exn m.invariants

let set_on_idle m f = m.on_idle <- f

let runnable_tasks m =
  if m.sharded then
    Array.fold_left (fun acc p -> acc + p.Sched.Policy.runnable_count ()) 0 m.shards
  else m.pol.Sched.Policy.runnable_count ()

let runnable_tasks_on m cpu =
  if cpu < 0 || cpu >= cpus m then invalid_arg "Machine.runnable_tasks_on: no such processor";
  m.shards.(cpu).Sched.Policy.runnable_count ()

let shard m cpu =
  if cpu < 0 || cpu >= cpus m then invalid_arg "Machine.shard: no such processor";
  m.shards.(cpu)

let sharded m = m.sharded
