module Simtime = Engine.Simtime

type rate_card = {
  per_cpu_second : float;
  per_gb_transferred : float;
  per_disk_second : float;
  per_million_packets : float;
}

let default_rates =
  {
    per_cpu_second = 0.05;
    per_gb_transferred = 0.09;
    per_disk_second = 0.02;
    per_million_packets = 0.10;
  }

type line = {
  customer : string;
  cpu : Simtime.span;
  bytes : int;
  packets : int;
  disk : Simtime.span;
  amount : float;
}

type invoice = {
  cycle : int;
  period_start : Simtime.t;
  period_end : Simtime.t;
  lines : line list;
  total : float;
}

(* The per-customer high-water marks are plain ints read through the
   usage arena's scalar accessors: closing a cycle polls every tracked
   container without allocating a snapshot record per customer. *)
type tracked = {
  label : string;
  container : Container.t;
  mutable last_cpu_ns : int;
  mutable last_rx_bytes : int;
  mutable last_tx_bytes : int;
  mutable last_rx_packets : int;
  mutable last_tx_packets : int;
  mutable last_disk_ns : int;
}

type t = {
  rates : rate_card;
  mutable tracked : tracked list; (* reverse tracking order *)
  mutable cycle : int;
  mutable period_start : Simtime.t;
}

let create ?(rates = default_rates) ~now () =
  { rates; tracked = []; cycle = 0; period_start = now }

let track t ~customer container =
  if List.exists (fun tr -> String.equal tr.label customer) t.tracked then
    invalid_arg (Printf.sprintf "Billing.track: duplicate customer %S" customer);
  let u = Container.subtree_usage container in
  t.tracked <-
    {
      label = customer;
      container;
      last_cpu_ns = Usage.cpu_ns u;
      last_rx_bytes = Usage.rx_bytes u;
      last_tx_bytes = Usage.tx_bytes u;
      last_rx_packets = Usage.rx_packets u;
      last_tx_packets = Usage.tx_packets u;
      last_disk_ns = Usage.disk_ns u;
    }
    :: t.tracked

let amount_of line = line.amount

let price rates ~cpu ~bytes ~packets ~disk =
  (Simtime.span_to_sec_f cpu *. rates.per_cpu_second)
  +. (float_of_int bytes /. 1e9 *. rates.per_gb_transferred)
  +. (Simtime.span_to_sec_f disk *. rates.per_disk_second)
  +. (float_of_int packets /. 1e6 *. rates.per_million_packets)

let close_cycle t ~now =
  t.cycle <- t.cycle + 1;
  let lines =
    List.rev_map
      (fun tr ->
        let u = Container.subtree_usage tr.container in
        let cpu_ns = Usage.cpu_ns u in
        let rx_bytes = Usage.rx_bytes u in
        let tx_bytes = Usage.tx_bytes u in
        let rx_packets = Usage.rx_packets u in
        let tx_packets = Usage.tx_packets u in
        let disk_ns = Usage.disk_ns u in
        let cpu = Simtime.span_of_ns (cpu_ns - tr.last_cpu_ns) in
        let bytes = rx_bytes - tr.last_rx_bytes + (tx_bytes - tr.last_tx_bytes) in
        let packets = rx_packets - tr.last_rx_packets + (tx_packets - tr.last_tx_packets) in
        let disk = Simtime.span_of_ns (disk_ns - tr.last_disk_ns) in
        tr.last_cpu_ns <- cpu_ns;
        tr.last_rx_bytes <- rx_bytes;
        tr.last_tx_bytes <- tx_bytes;
        tr.last_rx_packets <- rx_packets;
        tr.last_tx_packets <- tx_packets;
        tr.last_disk_ns <- disk_ns;
        { customer = tr.label; cpu; bytes; packets; disk;
          amount = price t.rates ~cpu ~bytes ~packets ~disk })
      t.tracked
  in
  let invoice =
    {
      cycle = t.cycle;
      period_start = t.period_start;
      period_end = now;
      lines;
      total = List.fold_left (fun acc l -> acc +. l.amount) 0. lines;
    }
  in
  t.period_start <- now;
  invoice

let cycles_closed t = t.cycle

let invoice_table (invoice : invoice) =
  let table =
    Engine.Series.table
      ~title:
        (Format.asprintf "Invoice #%d (%a .. %a)" invoice.cycle Simtime.pp invoice.period_start
           Simtime.pp invoice.period_end)
      ~columns:[ "customer"; "CPU"; "transferred"; "packets"; "disk"; "amount" ]
  in
  List.iter
    (fun l ->
      Engine.Series.add_row table
        [
          l.customer;
          Format.asprintf "%a" Simtime.pp_span l.cpu;
          Printf.sprintf "%.1f MB" (float_of_int l.bytes /. 1e6);
          string_of_int l.packets;
          Format.asprintf "%a" Simtime.pp_span l.disk;
          Printf.sprintf "%.4f" l.amount;
        ])
    invoice.lines;
  Engine.Series.add_row table [ "TOTAL"; ""; ""; ""; ""; Printf.sprintf "%.4f" invoice.total ];
  table
