module Simtime = Engine.Simtime

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type t = {
  id : int;
  name : string;
  mutable parent : t option;
  mutable children_rev : t list; (* newest child first; O(1) insertion *)
  mutable children_fwd : t list; (* memoized [List.rev children_rev] *)
  mutable children_dirty : bool;
  mutable ancestry : t array; (* [| self; parent; ...; top |]; [||] = stale *)
  mutable attrs : Attrs.t;
  usage : Usage.t;
  subtree_usage : Usage.t; (* this container plus all descendants, ever *)
  mutable refs : int;
  mutable bindings : int;
  mutable destroyed : bool;
  mutable destroy_hooks : (t -> unit) list; (* newest first; run once at destroy *)
  root : bool;
}

(* Id allocation is atomic so parallel sweep domains can build rigs
   concurrently.  No behaviour may depend on absolute id values — only on
   creation order within one rig — which the determinism tests check. *)
let next_id = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add next_id 1 + 1

(* Bumped whenever a parent link of an existing container changes (detach,
   re-parent, destroy).  Schedulers cache per-subtree aggregates keyed on
   this counter and rebuild them only when the tree actually moved.  A
   cross-domain bump only forces a spurious rebuild, never a stale read
   within the bumping domain. *)
let topology_gen = Atomic.make 0
let topology_generation () = Atomic.get topology_gen

let id t = t.id
let name t = t.name
let parent t = t.parent

(* Dense per-domain creation-order index (the container's own usage
   slot); schedulers key their flat per-container state arrays on it. *)
let slot t = Usage.slot t.usage

let children t =
  if t.children_dirty then begin
    t.children_fwd <- List.rev t.children_rev;
    t.children_dirty <- false
  end;
  t.children_fwd

let is_leaf t = t.children_rev = []
let is_root t = t.root
let is_destroyed t = t.destroyed
let attrs t = t.attrs
let usage t = t.usage
let binding_count t = t.bindings
let ref_count t = t.refs

(* The parent chain, cached flat so every charge is a plain array walk with
   no closure and no per-level allocation.  Invalidated (set to [||]) for a
   whole subtree whenever any parent link on the path changes. *)
let ancestry t =
  if Array.length t.ancestry = 0 then begin
    let rec count n node = match node.parent with None -> n | Some p -> count (n + 1) p in
    let len = count 1 t in
    let arr = Array.make len t in
    let rec fill i node =
      Array.unsafe_set arr i node;
      match node.parent with None -> () | Some p -> fill (i + 1) p
    in
    fill 0 t;
    t.ancestry <- arr
  end;
  t.ancestry

let rec invalidate_subtree t =
  t.ancestry <- [||];
  List.iter invalidate_subtree t.children_rev

let depth t = Array.length (ancestry t) - 1

let root_of t =
  let chain = ancestry t in
  chain.(Array.length chain - 1)

let iter_subtree f t =
  let rec walk node =
    f node;
    List.iter walk (children node)
  in
  walk t

let check_alive t = if t.destroyed then error "container %s (#%d) is destroyed" t.name t.id

let share_of c = match c.attrs.Attrs.sched_class with Attrs.Fixed_share s -> s | Attrs.Timeshare -> 0.

(* Children may only hang off fixed-share containers, and the fixed shares
   of the children of one parent must not over-subscribe it. *)
let check_can_adopt parent extra_share =
  check_alive parent;
  (match parent.attrs.Attrs.sched_class with
  | Attrs.Fixed_share _ -> ()
  | Attrs.Timeshare ->
      error "container %s is timeshare-class and cannot have children (prototype restriction)"
        parent.name);
  if parent.bindings > 0 then
    error "container %s has thread bindings; threads bind only to leaves" parent.name;
  let committed = List.fold_left (fun acc c -> acc +. share_of c) 0. (children parent) in
  if committed +. extra_share > 1. +. 1e-9 then
    error "fixed shares under %s would exceed 1.0 (%.3f committed + %.3f new)" parent.name
      committed extra_share

let add_child p c =
  p.children_rev <- c :: p.children_rev;
  p.children_dirty <- true

let make ?name ?(attrs = Attrs.default) ~parent ~root () =
  (match Attrs.validate attrs with Ok () -> () | Error msg -> error "invalid attributes: %s" msg);
  let id = fresh_id () in
  let name = match name with Some n -> n | None -> Printf.sprintf "container-%d" id in
  let t =
    {
      id;
      name;
      parent;
      children_rev = [];
      children_fwd = [];
      children_dirty = false;
      ancestry = [||];
      attrs;
      usage = Usage.create ();
      subtree_usage = Usage.create ();
      refs = 1;
      bindings = 0;
      destroyed = false;
      destroy_hooks = [];
      root;
    }
  in
  (match parent with
  | Some p ->
      check_can_adopt p (share_of t);
      add_child p t;
      Usage.set_chain_parent t.subtree_usage (Some p.subtree_usage)
  | None -> ());
  t

let create_root () =
  make ~name:"root" ~attrs:(Attrs.fixed_share ~share:1.0 ()) ~parent:None ~root:true ()

let create ?name ?attrs ~parent () = make ?name ?attrs ~parent:(Some parent) ~root:false ()
let create_detached ?name ?attrs () = make ?name ?attrs ~parent:None ~root:false ()

let detach t =
  match t.parent with
  | None -> ()
  | Some p ->
      p.children_rev <- List.filter (fun c -> c.id <> t.id) p.children_rev;
      p.children_dirty <- true;
      t.parent <- None;
      Usage.set_chain_parent t.subtree_usage None;
      Atomic.incr topology_gen;
      invalidate_subtree t

let is_ancestor ~candidate t =
  let chain = ancestry t in
  let rec scan i =
    i < Array.length chain && ((Array.unsafe_get chain i).id = candidate.id || scan (i + 1))
  in
  scan 0

let has_ancestor t ~ancestor = is_ancestor ~candidate:ancestor t

let set_parent t new_parent =
  check_alive t;
  (match new_parent with
  | Some p ->
      check_alive p;
      if is_ancestor ~candidate:t p then error "re-parenting %s under %s creates a cycle" t.name p.name
  | None -> ());
  detach t;
  match new_parent with
  | None -> ()
  | Some p ->
      check_can_adopt p (share_of t);
      add_child p t;
      t.parent <- Some p;
      Usage.set_chain_parent t.subtree_usage (Some p.subtree_usage);
      Atomic.incr topology_gen;
      invalidate_subtree t

let set_attrs t attrs =
  check_alive t;
  (match Attrs.validate attrs with Ok () -> () | Error msg -> error "invalid attributes: %s" msg);
  (match (attrs.Attrs.sched_class, t.children_rev) with
  | Attrs.Timeshare, _ :: _ ->
      error "container %s has children and must stay fixed-share" t.name
  | (Attrs.Fixed_share _ | Attrs.Timeshare), _ -> ());
  (* Re-check sibling share budget with the new share value. *)
  (match (t.parent, attrs.Attrs.sched_class) with
  | Some p, Attrs.Fixed_share s ->
      let committed =
        List.fold_left (fun acc c -> if c.id = t.id then acc else acc +. share_of c) 0. (children p)
      in
      if committed +. s > 1. +. 1e-9 then
        error "fixed shares under %s would exceed 1.0" p.name
  | (Some _ | None), (Attrs.Fixed_share _ | Attrs.Timeshare) -> ());
  t.attrs <- attrs

(* Charges land on the container's own usage and roll up into the subtree
   usage of the container and every ancestor, so hierarchical accounting
   survives the destruction of children (§4.5).  The roll-up is an index
   walk over the ledger arena's parent-slot array ([Usage.*_chain]),
   maintained eagerly at attach/detach/destroy — no record chasing, no
   closures, no allocation. *)

let charge_cpu t ~kernel span =
  Usage.charge_cpu t.usage ~kernel span;
  Usage.charge_cpu_chain t.subtree_usage ~kernel span

let charge_rx t ~packets ~bytes =
  Usage.charge_rx t.usage ~packets ~bytes;
  Usage.charge_rx_chain t.subtree_usage ~packets ~bytes

let charge_tx t ~packets ~bytes =
  Usage.charge_tx t.usage ~packets ~bytes;
  Usage.charge_tx_chain t.subtree_usage ~packets ~bytes

let charge_memory t delta =
  Usage.charge_memory t.usage delta;
  Usage.charge_memory_chain t.subtree_usage delta

let charge_disk t ~bytes span =
  Usage.charge_disk t.usage ~bytes span;
  Usage.charge_disk_chain t.subtree_usage ~bytes span

let subtree_usage t = t.subtree_usage
let subtree_cpu t = Usage.cpu_total t.subtree_usage

let guaranteed_fraction t =
  let chain = ancestry t in
  let acc = ref 1.0 in
  for i = Array.length chain - 1 downto 0 do
    match (Array.unsafe_get chain i).attrs.Attrs.sched_class with
    | Attrs.Fixed_share s -> acc := s *. !acc
    | Attrs.Timeshare -> ()
  done;
  !acc

let effective_cpu_limit t =
  let chain = ancestry t in
  let acc = ref 1.0 in
  for i = Array.length chain - 1 downto 0 do
    match (Array.unsafe_get chain i).attrs.Attrs.cpu_limit with
    | Some l -> acc := Float.min l !acc
    | None -> ()
  done;
  !acc

let destroy t =
  if not t.destroyed then begin
    (* §4.6: when a parent is destroyed, its children get "no parent". *)
    List.iter
      (fun c ->
        c.parent <- None;
        Usage.set_chain_parent c.subtree_usage None;
        invalidate_subtree c)
      t.children_rev;
    t.children_rev <- [];
    t.children_fwd <- [];
    t.children_dirty <- false;
    Atomic.incr topology_gen;
    detach t;
    t.destroyed <- true;
    (* Teardown notifications (kernel modules drop per-container state —
       deferred-processing queues, service stamps).  Hooks run exactly
       once, after the container is marked destroyed. *)
    let hooks = t.destroy_hooks in
    t.destroy_hooks <- [];
    List.iter (fun f -> f t) hooks
  end

let on_destroy t f =
  check_alive t;
  t.destroy_hooks <- f :: t.destroy_hooks

let retain t =
  check_alive t;
  t.refs <- t.refs + 1

let maybe_collect t = if t.refs <= 0 && t.bindings <= 0 && not t.root then destroy t

let release t =
  if not t.destroyed then begin
    t.refs <- t.refs - 1;
    maybe_collect t
  end

let incr_bindings t =
  check_alive t;
  if not (is_leaf t) then error "thread binding requires a leaf container (%s has children)" t.name;
  t.bindings <- t.bindings + 1

let decr_bindings t =
  t.bindings <- t.bindings - 1;
  maybe_collect t

let pp ppf t =
  Format.fprintf ppf "#%d %s [%a]%s" t.id t.name Attrs.pp t.attrs
    (if t.destroyed then " (destroyed)" else "")

let pp_tree ppf t =
  let rec walk indent node =
    Format.fprintf ppf "%s%s [%a] cpu=%a subtree=%a@." indent node.name Attrs.pp node.attrs
      Simtime.pp_span (Usage.cpu_total node.usage) Simtime.pp_span
      (Usage.cpu_total node.subtree_usage);
    List.iter (walk (indent ^ "  ")) (children node)
  in
  walk "" t
