(* Cluster-wide usage rollup.

   A tenant that spans machines owns one container per machine; the
   containers cannot share a hierarchy (each machine has its own ledger
   arena, and [Usage.set_chain_parent] refuses to link across arenas), so
   cluster-wide totals are aggregated here instead: each group enrolls one
   [Usage.t] per machine (the tenant's per-machine subtree usage) and a
   periodic [aggregate] folds the deltas since the previous reading into
   flat per-group counters, through the allocation-free scalar readers.

   The incremental path is exactly the kind of bookkeeping the invariant
   registry exists to check: [law] re-derives every group's totals from
   first principles (a fresh sum over the members' current readings) and
   compares them with the incrementally-maintained counters plus the
   not-yet-aggregated deltas.  A skipped member, a double-counted delta, a
   member enrolled without initialising its baseline, or a usage reset
   under the rollup's feet all surface as a violation of
   "cluster.usage-rollup". *)

type dims = {
  mutable cpu_ns : int;
  mutable mem_bytes : int;
  mutable rx_bytes : int;
  mutable tx_bytes : int;
  mutable disk_ns : int;
}

let dims_zero () = { cpu_ns = 0; mem_bytes = 0; rx_bytes = 0; tx_bytes = 0; disk_ns = 0 }

type member = { m_usage : Usage.t; m_prev : dims (* reading at the last aggregation *) }

type group = {
  g_name : string;
  mutable g_members : member list;
  g_total : dims; (* incremental cluster totals, as of the last aggregation *)
}

type t = { mutable groups : group list; mutable aggregations : int }

let create () = { groups = []; aggregations = 0 }

let group t ~name =
  let g = { g_name = name; g_members = []; g_total = dims_zero () } in
  t.groups <- t.groups @ [ g ];
  g

let group_name g = g.g_name
let groups t = t.groups

let read_into d usage =
  d.cpu_ns <- Usage.cpu_ns usage;
  d.mem_bytes <- Usage.mem_bytes usage;
  d.rx_bytes <- Usage.rx_bytes usage;
  d.tx_bytes <- Usage.tx_bytes usage;
  d.disk_ns <- Usage.disk_ns usage

let enroll g usage =
  (* Baseline at enrollment: only consumption from this point on rolls up
     into the group (a machine joining mid-run does not retroactively
     contribute its past usage). *)
  let prev = dims_zero () in
  read_into prev usage;
  g.g_members <- { m_usage = usage; m_prev = prev } :: g.g_members

(* Fold each member's delta since its last reading into the group totals
   and advance the baseline.  Allocation-free: scalar readers and mutable
   int fields only, so a cluster can afford a short rollup period. *)
let aggregate_group g =
  List.iter
    (fun m ->
      let u = m.m_usage and p = m.m_prev in
      let cpu = Usage.cpu_ns u in
      let mem = Usage.mem_bytes u in
      let rx = Usage.rx_bytes u in
      let tx = Usage.tx_bytes u in
      let disk = Usage.disk_ns u in
      g.g_total.cpu_ns <- g.g_total.cpu_ns + (cpu - p.cpu_ns);
      g.g_total.mem_bytes <- g.g_total.mem_bytes + (mem - p.mem_bytes);
      g.g_total.rx_bytes <- g.g_total.rx_bytes + (rx - p.rx_bytes);
      g.g_total.tx_bytes <- g.g_total.tx_bytes + (tx - p.tx_bytes);
      g.g_total.disk_ns <- g.g_total.disk_ns + (disk - p.disk_ns);
      p.cpu_ns <- cpu;
      p.mem_bytes <- mem;
      p.rx_bytes <- rx;
      p.tx_bytes <- tx;
      p.disk_ns <- disk)
    g.g_members

let aggregate t =
  List.iter aggregate_group t.groups;
  t.aggregations <- t.aggregations + 1

let aggregations t = t.aggregations
let cpu_ns g = g.g_total.cpu_ns
let mem_bytes g = g.g_total.mem_bytes
let rx_bytes g = g.g_total.rx_bytes
let tx_bytes g = g.g_total.tx_bytes
let disk_ns g = g.g_total.disk_ns

(* The conservation law.  For every group and dimension:

     rollup total + sum over members of (current - baseline)
       = sum over members of current

   The left side is the incrementally-maintained view (what the cluster
   reports between aggregations); the right is the re-derivation from the
   per-machine ledgers.  Equality certifies the baselines sum to the
   rollup total — the induction the incremental path is supposed to
   maintain. *)
let law t () =
  let check_group g =
    let sum f = List.fold_left (fun acc m -> acc + f m.m_usage) 0 g.g_members in
    let pending f prev_of =
      List.fold_left (fun acc m -> acc + (f m.m_usage - prev_of m.m_prev)) 0 g.g_members
    in
    let dim what total f prev_of =
      Engine.Invariant.equal_int
        ~what:(Printf.sprintf "group %s %s: rollup+pending vs ledger sum" g.g_name what)
        (total + pending f prev_of) (sum f)
    in
    let ( >>= ) r k = match r with Ok () -> k () | Error _ as e -> e in
    dim "cpu_ns" g.g_total.cpu_ns Usage.cpu_ns (fun p -> p.cpu_ns) >>= fun () ->
    dim "mem_bytes" g.g_total.mem_bytes Usage.mem_bytes (fun p -> p.mem_bytes) >>= fun () ->
    dim "rx_bytes" g.g_total.rx_bytes Usage.rx_bytes (fun p -> p.rx_bytes) >>= fun () ->
    dim "tx_bytes" g.g_total.tx_bytes Usage.tx_bytes (fun p -> p.tx_bytes) >>= fun () ->
    dim "disk_ns" g.g_total.disk_ns Usage.disk_ns (fun p -> p.disk_ns)
  in
  let rec all = function
    | [] -> Ok ()
    | g :: rest -> ( match check_group g with Ok () -> all rest | Error _ as e -> e)
  in
  all t.groups

let register t registry = Engine.Invariant.register registry ~law:"cluster.usage-rollup" (law t)
