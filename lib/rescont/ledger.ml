(* The struct-of-arrays accumulator arena behind {!Usage}.

   Every [Usage.create] in a domain takes one integer slot in that
   domain's arena; each accumulator (cpu ns, packets, bytes, memory, …)
   is a flat [int array] indexed by slot.  A charge is a handful of int
   stores into parallel arrays — no boxed record per container, no
   pointer chasing, and the accumulators of containers created together
   (a rig's tree, built in creation order) sit in adjacent cache lines.

   Hierarchical roll-up uses the [parent] array: {!Container} links each
   container's subtree-accumulator slot to its parent's, so charging a
   whole ancestor chain is an index walk [slot -> parent.(slot) -> …]
   over one int array instead of a walk over boxed records.

   Slots are never reclaimed: a destroyed container's accumulators stay
   readable (billing closes its last cycle against them) and the arena
   only ever grows — bounded by the number of containers ever created in
   the domain, two slots each, which even a long fuzz run keeps in the
   low megabytes.  The arena is domain-local (like the strict-memory
   flag) so parallel sweep domains never contend; cross-domain {e reads}
   of a finished rig's usage are safe because a [Usage.t] carries its
   arena pointer. *)

exception Negative_memory of { have : int; delta : int }

let () =
  Printexc.register_printer (function
    | Negative_memory { have; delta } ->
        Some (Printf.sprintf "Usage.Negative_memory (have %d B, delta %d B)" have delta)
    | _ -> None)

type t = {
  mutable cpu_user : int array; (* ns *)
  mutable cpu_kernel : int array; (* ns *)
  mutable rx_packets : int array;
  mutable rx_bytes : int array;
  mutable tx_packets : int array;
  mutable tx_bytes : int array;
  mutable memory_bytes : int array;
  mutable kernel_objects : int array;
  mutable disk_reads : int array;
  mutable disk_bytes : int array;
  mutable disk_time : int array; (* ns *)
  mutable parent : int array; (* slot of the parent's subtree accumulator; -1 = none *)
  mutable used : int;
}

let create_arena cap =
  {
    cpu_user = Array.make cap 0;
    cpu_kernel = Array.make cap 0;
    rx_packets = Array.make cap 0;
    rx_bytes = Array.make cap 0;
    tx_packets = Array.make cap 0;
    tx_bytes = Array.make cap 0;
    memory_bytes = Array.make cap 0;
    kernel_objects = Array.make cap 0;
    disk_reads = Array.make cap 0;
    disk_bytes = Array.make cap 0;
    disk_time = Array.make cap 0;
    parent = Array.make cap (-1);
    used = 0;
  }

let domain_arena : t Domain.DLS.key = Domain.DLS.new_key (fun () -> create_arena 256)
let get () = Domain.DLS.get domain_arena

(* Swap in a fresh arena for this domain.  Outstanding views stay valid
   — every [Usage.t] pins the arena it was allocated in — but any slot
   bloat accumulated by previous rigs stops being live major heap (a
   large dead arena of int arrays otherwise gets scanned on every major
   cycle, taxing everything that runs after it in the same process).
   Must only be called between rigs: live containers keep charging into
   their own (old) arena, but a container created after the renewal can
   never be attached under one created before it. *)
let renew () = Domain.DLS.set domain_arena (create_arena 256)

let grow t =
  let cap = Array.length t.cpu_user in
  let ncap = cap * 2 in
  let g a fill =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 cap;
    n
  in
  t.cpu_user <- g t.cpu_user 0;
  t.cpu_kernel <- g t.cpu_kernel 0;
  t.rx_packets <- g t.rx_packets 0;
  t.rx_bytes <- g t.rx_bytes 0;
  t.tx_packets <- g t.tx_packets 0;
  t.tx_bytes <- g t.tx_bytes 0;
  t.memory_bytes <- g t.memory_bytes 0;
  t.kernel_objects <- g t.kernel_objects 0;
  t.disk_reads <- g t.disk_reads 0;
  t.disk_bytes <- g t.disk_bytes 0;
  t.disk_time <- g t.disk_time 0;
  t.parent <- g t.parent (-1)

let alloc t =
  if t.used = Array.length t.cpu_user then grow t;
  let slot = t.used in
  t.used <- slot + 1;
  slot

let used t = t.used
let set_parent t ~slot ~parent = t.parent.(slot) <- parent
let parent t slot = t.parent.(slot)

(* {2 Per-slot charging} *)

let add_cpu t slot ~kernel ns =
  if kernel then t.cpu_kernel.(slot) <- t.cpu_kernel.(slot) + ns
  else t.cpu_user.(slot) <- t.cpu_user.(slot) + ns

let add_rx t slot ~packets ~bytes =
  t.rx_packets.(slot) <- t.rx_packets.(slot) + packets;
  t.rx_bytes.(slot) <- t.rx_bytes.(slot) + bytes

let add_tx t slot ~packets ~bytes =
  t.tx_packets.(slot) <- t.tx_packets.(slot) + packets;
  t.tx_bytes.(slot) <- t.tx_bytes.(slot) + bytes

(* Under armed invariants a refund that exceeds the balance is a hard
   accounting error; otherwise it saturates at zero, matching what a
   defensive kernel counter would do. *)
let add_memory t slot ~strict delta =
  let have = t.memory_bytes.(slot) in
  let balance = have + delta in
  if balance < 0 then
    if strict then raise (Negative_memory { have; delta }) else t.memory_bytes.(slot) <- 0
  else t.memory_bytes.(slot) <- balance

let add_disk t slot ~bytes ns =
  t.disk_reads.(slot) <- t.disk_reads.(slot) + 1;
  t.disk_bytes.(slot) <- t.disk_bytes.(slot) + bytes;
  t.disk_time.(slot) <- t.disk_time.(slot) + ns

let add_kernel_objects t slot delta = t.kernel_objects.(slot) <- t.kernel_objects.(slot) + delta

(* {2 Ancestor-chain charging}

   Start at [slot] and follow [parent] links to the top, applying the
   charge at every step — the container's own subtree accumulator first,
   then each ancestor's, in the same self-to-root order the old
   record-chain walk used (the strict-memory raise point depends on it). *)

let add_cpu_chain t slot ~kernel ns =
  if kernel then begin
    let a = t.cpu_kernel and p = t.parent in
    let i = ref slot in
    while !i >= 0 do
      Array.unsafe_set a !i (Array.unsafe_get a !i + ns);
      i := Array.unsafe_get p !i
    done
  end
  else begin
    let a = t.cpu_user and p = t.parent in
    let i = ref slot in
    while !i >= 0 do
      Array.unsafe_set a !i (Array.unsafe_get a !i + ns);
      i := Array.unsafe_get p !i
    done
  end

let add_rx_chain t slot ~packets ~bytes =
  let ap = t.rx_packets and ab = t.rx_bytes and p = t.parent in
  let i = ref slot in
  while !i >= 0 do
    Array.unsafe_set ap !i (Array.unsafe_get ap !i + packets);
    Array.unsafe_set ab !i (Array.unsafe_get ab !i + bytes);
    i := Array.unsafe_get p !i
  done

let add_tx_chain t slot ~packets ~bytes =
  let ap = t.tx_packets and ab = t.tx_bytes and p = t.parent in
  let i = ref slot in
  while !i >= 0 do
    Array.unsafe_set ap !i (Array.unsafe_get ap !i + packets);
    Array.unsafe_set ab !i (Array.unsafe_get ab !i + bytes);
    i := Array.unsafe_get p !i
  done

let add_memory_chain t slot ~strict delta =
  let i = ref slot in
  while !i >= 0 do
    add_memory t !i ~strict delta;
    i := t.parent.(!i)
  done

let add_disk_chain t slot ~bytes ns =
  let i = ref slot in
  while !i >= 0 do
    add_disk t !i ~bytes ns;
    i := t.parent.(!i)
  done

(* {2 Reading} *)

let cpu_user t slot = t.cpu_user.(slot)
let cpu_kernel t slot = t.cpu_kernel.(slot)
let rx_packets t slot = t.rx_packets.(slot)
let rx_bytes t slot = t.rx_bytes.(slot)
let tx_packets t slot = t.tx_packets.(slot)
let tx_bytes t slot = t.tx_bytes.(slot)
let memory_bytes t slot = t.memory_bytes.(slot)
let kernel_objects t slot = t.kernel_objects.(slot)
let disk_reads t slot = t.disk_reads.(slot)
let disk_bytes t slot = t.disk_bytes.(slot)
let disk_time t slot = t.disk_time.(slot)

let reset t slot =
  t.cpu_user.(slot) <- 0;
  t.cpu_kernel.(slot) <- 0;
  t.rx_packets.(slot) <- 0;
  t.rx_bytes.(slot) <- 0;
  t.tx_packets.(slot) <- 0;
  t.tx_bytes.(slot) <- 0;
  t.memory_bytes.(slot) <- 0;
  t.kernel_objects.(slot) <- 0;
  t.disk_reads.(slot) <- 0;
  t.disk_bytes.(slot) <- 0;
  t.disk_time.(slot) <- 0
