(** Per-container resource accounting (paper §4.1, §4.4).

    The kernel charges every unit of consumption — CPU slices, received and
    transmitted packets and bytes, memory, kernel objects — to exactly one
    container; ancestors accumulate subtree totals so hierarchical limits
    can be checked in O(depth). *)

type t

val create : unit -> t

(** {1 Charging} *)

val charge_cpu : t -> kernel:bool -> Engine.Simtime.span -> unit
(** Charge CPU time, classified as kernel- or user-mode. *)

val charge_rx : t -> packets:int -> bytes:int -> unit
val charge_tx : t -> packets:int -> bytes:int -> unit
val charge_memory : t -> int -> unit
(** Adjust current memory held by a (possibly negative) byte delta.  A
    delta that would drive the balance negative (a double refund) either
    saturates the balance at zero (default) or raises {!Negative_memory}
    when strict mode is on — see {!set_strict_memory}. *)

exception Negative_memory of { have : int; delta : int }

val set_strict_memory : bool -> unit
(** Enable/disable strict memory accounting process-wide.  Armed invariant
    registries switch this on so a double refund fails loudly at the
    charging site rather than silently saturating. *)

val strict_memory_enabled : unit -> bool

val incr_kernel_objects : t -> unit
val decr_kernel_objects : t -> unit
(** Sockets, PCBs, buffers owned by the container's activity. *)

val charge_disk : t -> bytes:int -> Engine.Simtime.span -> unit
(** Record one disk request: bytes transferred and disk-busy time. *)

(** {1 Reading} *)

val cpu_total : t -> Engine.Simtime.span
val cpu_user : t -> Engine.Simtime.span
val cpu_kernel : t -> Engine.Simtime.span
val rx_packets : t -> int
val rx_bytes : t -> int
val tx_packets : t -> int
val tx_bytes : t -> int
val memory_bytes : t -> int
val kernel_objects : t -> int
val disk_reads : t -> int
val disk_bytes : t -> int
val disk_time : t -> Engine.Simtime.span

type snapshot = {
  cpu_total : Engine.Simtime.span;
  cpu_user : Engine.Simtime.span;
  cpu_kernel : Engine.Simtime.span;
  rx_packets : int;
  rx_bytes : int;
  tx_packets : int;
  tx_bytes : int;
  memory_bytes : int;
  kernel_objects : int;
  disk_reads : int;
  disk_bytes : int;
  disk_time : Engine.Simtime.span;
}

val snapshot : t -> snapshot
(** An immutable copy, as returned to applications by the "obtain container
    resource usage" operation. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
