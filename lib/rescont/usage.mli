(** Per-container resource accounting (paper §4.1, §4.4).

    The kernel charges every unit of consumption — CPU slices, received and
    transmitted packets and bytes, memory, kernel objects — to exactly one
    container; ancestors accumulate subtree totals so hierarchical limits
    can be checked in O(depth).

    A usage is a slot in the calling domain's struct-of-arrays {!Ledger}
    arena — charges are int stores into flat arrays, and hierarchical
    roll-up is an index walk over the arena's parent-slot array.  The
    record-based reference semantics live in {!Usage_ref}, which a
    QCheck lockstep property holds this module to. *)

type t

val create : unit -> t

val slot : t -> int
(** The usage's arena slot: a small dense int, allocated in creation
    order within the domain — suitable as an array index for auxiliary
    per-container state (the schedulers index their flat state this
    way).  Slots are never reused. *)

val same_arena : t -> t -> bool
(** Whether two usages live in the same domain arena (and so may be
    chain-linked). *)

val renew_domain_arena : unit -> unit
(** Swap in a fresh, empty ledger arena for the calling domain.  Slots
    are never reused within an arena, so a harness that builds and
    tears down many rigs in one domain (the benchmark driver, a long
    sweep) accumulates dead-but-live slot columns; renewing between
    rigs lets the old arena be collected once its last view drops.
    Existing usages stay readable — each pins its own arena — but
    containers from different arenas cannot be chain-linked, so never
    call this while a rig is mid-flight. *)

(** {1 Charging} *)

val charge_cpu : t -> kernel:bool -> Engine.Simtime.span -> unit
(** Charge CPU time, classified as kernel- or user-mode. *)

val charge_rx : t -> packets:int -> bytes:int -> unit
val charge_tx : t -> packets:int -> bytes:int -> unit
val charge_memory : t -> int -> unit
(** Adjust current memory held by a (possibly negative) byte delta.  A
    delta that would drive the balance negative (a double refund) either
    saturates the balance at zero (default) or raises {!Negative_memory}
    when strict mode is on — see {!set_strict_memory}. *)

exception Negative_memory of { have : int; delta : int }

val set_strict_memory : bool -> unit
(** Enable/disable strict memory accounting process-wide.  Armed invariant
    registries switch this on so a double refund fails loudly at the
    charging site rather than silently saturating. *)

val strict_memory_enabled : unit -> bool

val incr_kernel_objects : t -> unit
val decr_kernel_objects : t -> unit
(** Sockets, PCBs, buffers owned by the container's activity. *)

val charge_disk : t -> bytes:int -> Engine.Simtime.span -> unit
(** Record one disk request: bytes transferred and disk-busy time. *)

(** {1 Hierarchical chain charging}

    Used by [Container] for subtree roll-up: apply the charge to this
    usage {e and} to every usage reachable by parent links, self first.
    The walk is an index chase over the arena's preallocated parent
    array — no per-level allocation, no record chasing. *)

val set_chain_parent : t -> t option -> unit
(** Link (or with [None] unlink) this usage's chain parent.
    @raise Invalid_argument if the two usages live in different domain
    arenas. *)

val charge_cpu_chain : t -> kernel:bool -> Engine.Simtime.span -> unit
val charge_rx_chain : t -> packets:int -> bytes:int -> unit
val charge_tx_chain : t -> packets:int -> bytes:int -> unit
val charge_memory_chain : t -> int -> unit
val charge_disk_chain : t -> bytes:int -> Engine.Simtime.span -> unit

(** {1 Reading} *)

(** Allocation-free scalar readout: plain [int] views (nanoseconds /
    bytes) with no [Simtime.span] round-trip and no snapshot record —
    what the metrics-export and billing paths poll every period. *)

val cpu_ns : t -> int
(** Total (user + kernel) CPU nanoseconds. *)

val cpu_user_ns : t -> int
val cpu_kernel_ns : t -> int

val mem_bytes : t -> int
(** Same value as {!memory_bytes}; named alongside the [_ns] scalar
    readers for the export path. *)

val disk_ns : t -> int

val cpu_total : t -> Engine.Simtime.span
val cpu_user : t -> Engine.Simtime.span
val cpu_kernel : t -> Engine.Simtime.span
val rx_packets : t -> int
val rx_bytes : t -> int
val tx_packets : t -> int
val tx_bytes : t -> int
val memory_bytes : t -> int
val kernel_objects : t -> int
val disk_reads : t -> int
val disk_bytes : t -> int
val disk_time : t -> Engine.Simtime.span

type snapshot = {
  cpu_total : Engine.Simtime.span;
  cpu_user : Engine.Simtime.span;
  cpu_kernel : Engine.Simtime.span;
  rx_packets : int;
  rx_bytes : int;
  tx_packets : int;
  tx_bytes : int;
  memory_bytes : int;
  kernel_objects : int;
  disk_reads : int;
  disk_bytes : int;
  disk_time : Engine.Simtime.span;
}

val snapshot : t -> snapshot
(** An immutable copy, as returned to applications by the "obtain container
    resource usage" operation. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
