(** Cluster-wide usage rollup for principals that span machines.

    A tenant owns one container per machine; machines have separate ledger
    arenas, so those containers cannot be chained into one hierarchy.  A
    rollup {e group} aggregates them instead: enroll each machine's
    [Usage.t] (typically [Container.subtree_usage] of the tenant's
    per-machine container) and call {!aggregate} periodically — deltas
    since the previous reading fold into flat per-group totals through the
    allocation-free scalar readers.

    The "cluster.usage-rollup" conservation law ({!law}, {!register})
    re-derives every group's totals by a fresh sum over the members'
    current ledger readings and compares with the incremental counters
    plus un-aggregated deltas: sum of per-machine tenant usage must equal
    the cluster rollup at every quiesce point. *)

type t
(** A rollup: a set of named groups (one per tenant). *)

type group

val create : unit -> t

val group : t -> name:string -> group
(** Add a named group (a tenant's cluster-wide totals). *)

val group_name : group -> string

val groups : t -> group list
(** In creation order. *)

val enroll : group -> Usage.t -> unit
(** Add one machine's usage to the group.  The current reading becomes the
    member's baseline: only consumption after enrollment rolls up. *)

val aggregate : t -> unit
(** Fold every member's delta since its last reading into its group's
    totals.  Allocation-free; run from a periodic simulation event. *)

val aggregations : t -> int
(** Number of {!aggregate} sweeps performed. *)

(** {1 Cluster totals (as of the last {!aggregate})} *)

val cpu_ns : group -> int
val mem_bytes : group -> int
val rx_bytes : group -> int
val tx_bytes : group -> int
val disk_ns : group -> int

(** {1 The conservation law} *)

val law : t -> unit -> (unit, string) result
(** Check every group: incremental totals plus pending deltas must equal a
    fresh sum over the member ledgers, in every dimension. *)

val register : t -> Engine.Invariant.t -> unit
(** Register {!law} as ["cluster.usage-rollup"] in an invariant registry. *)
