(** The resource container abstraction (paper §4.1–§4.5).

    A container is the operating system's resource principal: it logically
    holds all resources consumed on behalf of one independent activity.
    Containers form a hierarchy; a child's consumption is constrained by
    its parent's scheduling parameters.

    Prototype restrictions (paper §5.1), which this implementation
    enforces:
    - only fixed-share containers may have children;
    - threads may bind only to leaf containers, so a container that has
      live thread bindings cannot be given children. *)

type t

exception Error of string
(** Raised on violations of the structural rules above, over-subscribed
    fixed shares, cycles, or use of a destroyed container. *)

val create_root : unit -> t
(** The machine-wide root container: fixed share 1.0 of the whole CPU.  A
    simulated kernel creates exactly one. *)

val create : ?name:string -> ?attrs:Attrs.t -> parent:t -> unit -> t
(** Create a child container.  Defaults: {!Attrs.default}, a generated
    name.  @raise Error if [parent] is destroyed or not fixed-share, if
    [parent] has thread bindings, or if a fixed-share child would
    over-subscribe the parent (children's shares summing past 1). *)

val create_detached : ?name:string -> ?attrs:Attrs.t -> unit -> t
(** A container with "no parent" (§4.6 allows parentless containers, e.g.
    after the parent is destroyed). *)

(** {1 Structure} *)

val id : t -> int

val slot : t -> int
(** Dense per-domain creation-order index (the container's own
    {!Usage.slot}): small, never reused, suitable for indexing flat
    per-container state arrays.  Nothing may depend on absolute slot
    values — only on per-rig creation order, like {!id}. *)

val name : t -> string
val parent : t -> t option
val children : t -> t list
val is_leaf : t -> bool
val is_root : t -> bool
val is_destroyed : t -> bool
val depth : t -> int

val set_parent : t -> t option -> unit
(** Re-parent (§4.6 "set a container's parent").  @raise Error on cycles,
    destroyed endpoints, non-fixed-share parents, or over-subscription. *)

val iter_subtree : (t -> unit) -> t -> unit
(** Pre-order traversal of the container and its descendants. *)

val root_of : t -> t

val has_ancestor : t -> ancestor:t -> bool
(** [has_ancestor c ~ancestor] is [true] when [ancestor] lies on [c]'s
    parent chain, or equals [c]. *)

val ancestry : t -> t array
(** The cached parent chain [[| c; parent; ...; top |]] (self first, the
    chain's topmost container last).  O(1) when cached; rebuilt lazily
    after a re-parent.  Callers must treat the array as read-only — it is
    the cache itself, not a copy.  This is the closure-free fast path that
    charging and scheduling iterate. *)

val topology_generation : unit -> int
(** Global counter bumped whenever a parent link of an existing container
    changes (detach, re-parent, destroy).  Caches of per-subtree
    aggregates (e.g. run-queue work counts) key their validity on it. *)

(** {1 Attributes and usage} *)

val attrs : t -> Attrs.t

val set_attrs : t -> Attrs.t -> unit
(** @raise Error if the attributes are invalid, if changing the class away
    from fixed-share while children exist, or on over-subscription. *)

val usage : t -> Usage.t

val charge_cpu : t -> kernel:bool -> Engine.Simtime.span -> unit
(** Charge CPU to this container and propagate into every ancestor's
    subtree usage. *)

val charge_rx : t -> packets:int -> bytes:int -> unit
val charge_tx : t -> packets:int -> bytes:int -> unit
val charge_memory : t -> int -> unit
val charge_disk : t -> bytes:int -> Engine.Simtime.span -> unit
(** Like {!charge_cpu}, for the other resource dimensions: the charge
    lands on this container's own {!usage} and rolls up into the
    {!subtree_usage} of itself and every ancestor. *)

val subtree_usage : t -> Usage.t
(** Aggregate consumption of this container plus all its descendants —
    including destroyed ones; consumption history is never lost (§4.5).
    This is what hierarchical limits, §5.8 isolation measurements and
    billing read. *)

val subtree_cpu : t -> Engine.Simtime.span
(** [Usage.cpu_total (subtree_usage t)]. *)

val guaranteed_fraction : t -> float
(** Product of the fixed shares from the root down to this container;
    timeshare containers contribute their parent's guarantee (they hold no
    guarantee of their own). *)

val effective_cpu_limit : t -> float
(** The tightest [cpu_limit] along the path to the root (1.0 if none). *)

(** {1 Lifetime (§4.6)} *)

val retain : t -> unit
(** Add a descriptor reference. *)

val release : t -> unit
(** Drop a descriptor reference.  When no descriptors and no thread
    bindings remain, the container is destroyed: children are detached
    ("no parent") and it is unlinked from its own parent. *)

val incr_bindings : t -> unit
val decr_bindings : t -> unit
(** Thread-binding reference count, maintained by {!Binding}. *)

val binding_count : t -> int
val ref_count : t -> int

val destroy : t -> unit
(** Force destruction regardless of reference counts (used by the
    primitive-cost benchmarks; the kernel path uses {!release}). *)

val on_destroy : t -> (t -> unit) -> unit
(** Register a teardown hook, run exactly once when the container is
    destroyed (after it is marked destroyed and unlinked).  Kernel modules
    use this to drop per-container state — e.g. the network stack prunes a
    destroyed container's deferred-processing queue and service stamp.
    @raise Error if the container is already destroyed. *)

val pp : Format.formatter -> t -> unit

val pp_tree : Format.formatter -> t -> unit
(** Indented dump of the subtree with attributes and CPU consumption —
    what an administrator's inspection tool would show. *)
