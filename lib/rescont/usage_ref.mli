(** Record-based executable specification of {!Usage}.

    The boxed-record accumulator that predates the struct-of-arrays
    {!Ledger} arena, kept as the reference semantics (the
    [Multilevel_ref] pattern): a QCheck lockstep property drives this
    module and {!Usage} with identical random charge sequences and
    requires field-for-field agreement, including the
    saturate-vs-raise negative-memory rule.  Not used on any hot path. *)

type t

exception Negative_memory of { have : int; delta : int }

val create : unit -> t
val charge_cpu : t -> kernel:bool -> Engine.Simtime.span -> unit
val charge_rx : t -> packets:int -> bytes:int -> unit
val charge_tx : t -> packets:int -> bytes:int -> unit

val charge_memory : t -> strict:bool -> int -> unit
(** @raise Negative_memory when [strict] and the delta would drive the
    balance negative; saturates at zero otherwise. *)

val charge_disk : t -> bytes:int -> Engine.Simtime.span -> unit
val incr_kernel_objects : t -> unit
val decr_kernel_objects : t -> unit
val cpu_total : t -> Engine.Simtime.span
val cpu_user : t -> Engine.Simtime.span
val cpu_kernel : t -> Engine.Simtime.span
val rx_packets : t -> int
val rx_bytes : t -> int
val tx_packets : t -> int
val tx_bytes : t -> int
val memory_bytes : t -> int
val kernel_objects : t -> int
val disk_reads : t -> int
val disk_bytes : t -> int
val disk_time : t -> Engine.Simtime.span
val reset : t -> unit
