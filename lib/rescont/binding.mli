(** Thread ↔ container bindings (paper §4.2–§4.3).

    A thread's {e resource binding} is the single container its consumption
    is charged to right now; the application rebinds it as the thread
    switches between activities.  The {e scheduler binding} is the set of
    containers the thread has recently served; the CPU scheduler derives
    the thread's scheduling parameters from this whole set.  The kernel
    grows the set implicitly on every rebind, prunes entries not used
    recently, and lets the application reset it explicitly. *)

type t

val create : now:Engine.Simtime.t -> Container.t -> t
(** A fresh binding (e.g. for a new thread), initially bound to the given
    container — a new process's first thread is bound to the process's
    default container.  Counts as a thread binding on the container.
    @raise Container.Error if the container is not a leaf. *)

val resource_binding : t -> Container.t

val set_resource_binding : t -> now:Engine.Simtime.t -> Container.t -> unit
(** Rebind.  The new container joins the scheduler-binding set; the old one
    stays until pruned.  Thread-binding reference counts are maintained on
    both containers.  @raise Container.Error if the target is destroyed or
    not a leaf. *)

val scheduler_binding : t -> Container.t list
(** Containers currently in the scheduler binding, most recently used
    first.  Always contains the resource binding. *)

val iter_scheduler_containers : t -> (Container.t -> unit) -> unit
(** Apply a function to every container in the scheduler binding, in
    unspecified order and without allocating.  For order-independent
    aggregations (the timeshare scheduler's usage sum / priority max over
    a combined binding) on the per-dispatch path. *)

val touch : t -> now:Engine.Simtime.t -> unit
(** Record use of the current resource binding (called when the thread is
    charged), refreshing its recency in the scheduler-binding set. *)

val prune : t -> now:Engine.Simtime.t -> max_age:Engine.Simtime.span -> int
(** Drop set entries whose last use is older than [max_age]; the resource
    binding itself is never dropped.  Returns the number removed.  The
    kernel calls this periodically (§4.3). *)

val reset_scheduler_binding : t -> now:Engine.Simtime.t -> unit
(** Explicit reset to exactly the current resource binding (§4.3, §4.6). *)

val drop : t -> unit
(** Release the thread's bindings entirely (thread exit). *)

val size : t -> int
(** Number of containers in the scheduler-binding set. *)
