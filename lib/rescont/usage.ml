module Simtime = Engine.Simtime

exception Negative_memory = Ledger.Negative_memory

(* Under armed invariants a refund that exceeds the balance is a hard
   accounting error; otherwise it saturates at zero, matching what a
   defensive kernel counter would do.  The flag is domain-local so a fuzz
   run arming invariants inside one sweep domain cannot change the
   semantics of rigs running concurrently in other domains. *)
let strict_memory = Domain.DLS.new_key (fun () -> false)

let set_strict_memory on = Domain.DLS.set strict_memory on
let strict_memory_enabled () = Domain.DLS.get strict_memory

(* A usage is a slot in the domain's struct-of-arrays {!Ledger} arena:
   charges and reads index flat int arrays, and this record is the only
   per-container allocation accounting ever makes.  The record-based
   implementation these semantics are specified by is {!Usage_ref}. *)
type t = { arena : Ledger.t; slot : int }

let create () =
  let arena = Ledger.get () in
  { arena; slot = Ledger.alloc arena }

let slot t = t.slot
let same_arena a b = a.arena == b.arena
let renew_domain_arena = Ledger.renew

let set_chain_parent t parent =
  match parent with
  | None -> Ledger.set_parent t.arena ~slot:t.slot ~parent:(-1)
  | Some p ->
      if not (p.arena == t.arena) then
        invalid_arg "Usage.set_chain_parent: usages belong to different domain arenas";
      Ledger.set_parent t.arena ~slot:t.slot ~parent:p.slot

let charge_cpu t ~kernel span = Ledger.add_cpu t.arena t.slot ~kernel (Simtime.span_to_ns span)
let charge_rx t ~packets ~bytes = Ledger.add_rx t.arena t.slot ~packets ~bytes
let charge_tx t ~packets ~bytes = Ledger.add_tx t.arena t.slot ~packets ~bytes

let charge_memory t delta =
  Ledger.add_memory t.arena t.slot ~strict:(strict_memory_enabled ()) delta

let charge_disk t ~bytes span =
  Ledger.add_disk t.arena t.slot ~bytes (Simtime.span_to_ns span)

let incr_kernel_objects t = Ledger.add_kernel_objects t.arena t.slot 1
let decr_kernel_objects t = Ledger.add_kernel_objects t.arena t.slot (-1)

(* Chain variants walk the arena's parent-slot links (self first, then
   each ancestor) — used by [Container] for subtree roll-up. *)
let charge_cpu_chain t ~kernel span =
  Ledger.add_cpu_chain t.arena t.slot ~kernel (Simtime.span_to_ns span)

let charge_rx_chain t ~packets ~bytes = Ledger.add_rx_chain t.arena t.slot ~packets ~bytes
let charge_tx_chain t ~packets ~bytes = Ledger.add_tx_chain t.arena t.slot ~packets ~bytes

let charge_memory_chain t delta =
  Ledger.add_memory_chain t.arena t.slot ~strict:(strict_memory_enabled ()) delta

let charge_disk_chain t ~bytes span =
  Ledger.add_disk_chain t.arena t.slot ~bytes (Simtime.span_to_ns span)

(* {2 Reading — allocation-free scalar accessors} *)

let cpu_ns t = Ledger.cpu_user t.arena t.slot + Ledger.cpu_kernel t.arena t.slot
let cpu_user_ns t = Ledger.cpu_user t.arena t.slot
let cpu_kernel_ns t = Ledger.cpu_kernel t.arena t.slot
let mem_bytes t = Ledger.memory_bytes t.arena t.slot
let disk_ns t = Ledger.disk_time t.arena t.slot

let cpu_total t = Simtime.span_of_ns (cpu_ns t)
let cpu_user t = Simtime.span_of_ns (cpu_user_ns t)
let cpu_kernel t = Simtime.span_of_ns (cpu_kernel_ns t)
let rx_packets t = Ledger.rx_packets t.arena t.slot
let rx_bytes t = Ledger.rx_bytes t.arena t.slot
let tx_packets t = Ledger.tx_packets t.arena t.slot
let tx_bytes t = Ledger.tx_bytes t.arena t.slot
let memory_bytes t = mem_bytes t
let kernel_objects t = Ledger.kernel_objects t.arena t.slot
let disk_reads t = Ledger.disk_reads t.arena t.slot
let disk_bytes t = Ledger.disk_bytes t.arena t.slot
let disk_time t = Simtime.span_of_ns (disk_ns t)

type snapshot = {
  cpu_total : Simtime.span;
  cpu_user : Simtime.span;
  cpu_kernel : Simtime.span;
  rx_packets : int;
  rx_bytes : int;
  tx_packets : int;
  tx_bytes : int;
  memory_bytes : int;
  kernel_objects : int;
  disk_reads : int;
  disk_bytes : int;
  disk_time : Simtime.span;
}

let snapshot t =
  {
    cpu_total = cpu_total t;
    cpu_user = cpu_user t;
    cpu_kernel = cpu_kernel t;
    rx_packets = rx_packets t;
    rx_bytes = rx_bytes t;
    tx_packets = tx_packets t;
    tx_bytes = tx_bytes t;
    memory_bytes = memory_bytes t;
    kernel_objects = kernel_objects t;
    disk_reads = disk_reads t;
    disk_bytes = disk_bytes t;
    disk_time = disk_time t;
  }

let reset t = Ledger.reset t.arena t.slot

let pp ppf (t : t) =
  Format.fprintf ppf "cpu=%a (u=%a k=%a) rx=%d/%dB tx=%d/%dB mem=%dB objs=%d" Simtime.pp_span
    (cpu_total t) Simtime.pp_span (cpu_user t) Simtime.pp_span (cpu_kernel t) (rx_packets t)
    (rx_bytes t) (tx_packets t) (tx_bytes t) (memory_bytes t) (kernel_objects t)
