(** Struct-of-arrays accumulator arena behind {!Usage} — internal.

    One arena per domain; every {!Usage.create} takes one slot, every
    accumulator is a flat [int array] indexed by slot, and hierarchical
    roll-up walks the [parent] slot array instead of a chain of boxed
    records.  Use {!Usage} (and {!Container}'s charge operations) rather
    than this module directly; the record-based executable specification
    of these semantics is {!Usage_ref}, and a QCheck lockstep test holds
    the two to field-for-field agreement.

    Slots are never reclaimed — the arena grows monotonically with the
    number of containers ever created in the domain (two slots per
    container), which keeps destroyed containers' totals readable and
    the memory bound linear in lifetime container count. *)

type t

exception Negative_memory of { have : int; delta : int }

val get : unit -> t
(** The calling domain's arena. *)

val renew : unit -> unit
(** Swap in a fresh, empty arena for the calling domain.  Outstanding
    usages stay readable (each pins the arena it was allocated in), but
    slots stop being handed out of the old arena, so its growth stops
    being live heap once the last view drops.  Only call between rigs:
    a container created after the renewal cannot be attached under one
    created before it (different arenas refuse to chain-link). *)

val alloc : t -> int
(** Claim a fresh slot, all accumulators zero, no parent. *)

val used : t -> int
(** Number of slots allocated so far (exclusive upper bound on live slot
    indices). *)

val set_parent : t -> slot:int -> parent:int -> unit
(** Link [slot]'s chain to [parent] ([-1] to unlink); both slots must
    belong to [t]. *)

val parent : t -> int -> int

(** {1 Per-slot charging} *)

val add_cpu : t -> int -> kernel:bool -> int -> unit
val add_rx : t -> int -> packets:int -> bytes:int -> unit
val add_tx : t -> int -> packets:int -> bytes:int -> unit

val add_memory : t -> int -> strict:bool -> int -> unit
(** @raise Negative_memory when [strict] and the delta would drive the
    slot's balance negative; saturates at zero otherwise. *)

val add_disk : t -> int -> bytes:int -> int -> unit
val add_kernel_objects : t -> int -> int -> unit

(** {1 Ancestor-chain charging}

    Apply a charge at [slot] and at every slot reachable by [parent]
    links, self first — the index-walk form of "roll up into every
    ancestor's subtree usage". *)

val add_cpu_chain : t -> int -> kernel:bool -> int -> unit
val add_rx_chain : t -> int -> packets:int -> bytes:int -> unit
val add_tx_chain : t -> int -> packets:int -> bytes:int -> unit
val add_memory_chain : t -> int -> strict:bool -> int -> unit
val add_disk_chain : t -> int -> bytes:int -> int -> unit

(** {1 Reading} *)

val cpu_user : t -> int -> int
val cpu_kernel : t -> int -> int
val rx_packets : t -> int -> int
val rx_bytes : t -> int -> int
val tx_packets : t -> int -> int
val tx_bytes : t -> int -> int
val memory_bytes : t -> int -> int
val kernel_objects : t -> int -> int
val disk_reads : t -> int -> int
val disk_bytes : t -> int -> int
val disk_time : t -> int -> int
val reset : t -> int -> unit
