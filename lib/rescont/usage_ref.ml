(* Record-based reference implementation of {!Usage}: one mutable boxed
   record per accounting principal, charges as plain field updates.

   This was the production accumulator until the struct-of-arrays
   {!Ledger} arena replaced it; it survives as the executable
   specification (the [Multilevel_ref] pattern) — trivially auditable
   against the paper's §4.1/§4.4 semantics, and held in lockstep with
   the arena-backed {!Usage} by a QCheck property over random charge
   sequences, including the saturate-vs-raise negative-memory rule. *)

module Simtime = Engine.Simtime

exception Negative_memory of { have : int; delta : int }

type t = {
  mutable cpu_user : Simtime.span;
  mutable cpu_kernel : Simtime.span;
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable memory_bytes : int;
  mutable kernel_objects : int;
  mutable disk_reads : int;
  mutable disk_bytes : int;
  mutable disk_time : Simtime.span;
}

let create () =
  {
    cpu_user = Simtime.span_zero;
    cpu_kernel = Simtime.span_zero;
    rx_packets = 0;
    rx_bytes = 0;
    tx_packets = 0;
    tx_bytes = 0;
    memory_bytes = 0;
    kernel_objects = 0;
    disk_reads = 0;
    disk_bytes = 0;
    disk_time = Simtime.span_zero;
  }

let charge_cpu t ~kernel span =
  if kernel then t.cpu_kernel <- Simtime.span_add t.cpu_kernel span
  else t.cpu_user <- Simtime.span_add t.cpu_user span

let charge_rx t ~packets ~bytes =
  t.rx_packets <- t.rx_packets + packets;
  t.rx_bytes <- t.rx_bytes + bytes

let charge_tx t ~packets ~bytes =
  t.tx_packets <- t.tx_packets + packets;
  t.tx_bytes <- t.tx_bytes + bytes

let charge_memory t ~strict delta =
  let balance = t.memory_bytes + delta in
  if balance < 0 then
    if strict then raise (Negative_memory { have = t.memory_bytes; delta })
    else t.memory_bytes <- 0
  else t.memory_bytes <- balance

let charge_disk t ~bytes span =
  t.disk_reads <- t.disk_reads + 1;
  t.disk_bytes <- t.disk_bytes + bytes;
  t.disk_time <- Simtime.span_add t.disk_time span

let incr_kernel_objects t = t.kernel_objects <- t.kernel_objects + 1
let decr_kernel_objects t = t.kernel_objects <- t.kernel_objects - 1
let cpu_total t = Simtime.span_add t.cpu_user t.cpu_kernel
let cpu_user t = t.cpu_user
let cpu_kernel t = t.cpu_kernel
let rx_packets t = t.rx_packets
let rx_bytes t = t.rx_bytes
let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let memory_bytes t = t.memory_bytes
let kernel_objects t = t.kernel_objects
let disk_reads t = t.disk_reads
let disk_bytes t = t.disk_bytes
let disk_time t = t.disk_time

let reset (t : t) =
  t.cpu_user <- Simtime.span_zero;
  t.cpu_kernel <- Simtime.span_zero;
  t.rx_packets <- 0;
  t.rx_bytes <- 0;
  t.tx_packets <- 0;
  t.tx_bytes <- 0;
  t.memory_bytes <- 0;
  t.kernel_objects <- 0;
  t.disk_reads <- 0;
  t.disk_bytes <- 0;
  t.disk_time <- Simtime.span_zero
