module Simtime = Engine.Simtime

type entry = { container : Container.t; mutable last_used : Simtime.t }
type t = { mutable resource : Container.t; mutable sched_set : entry list; mutable live : bool }

let create ~now container =
  Container.incr_bindings container;
  { resource = container; sched_set = [ { container; last_used = now } ]; live = true }

let resource_binding t = t.resource

let find_entry t container =
  List.find_opt (fun e -> Container.id e.container = Container.id container) t.sched_set

let set_resource_binding t ~now container =
  if not t.live then invalid_arg "Binding: used after drop";
  if Container.id container <> Container.id t.resource then begin
    Container.incr_bindings container;
    Container.decr_bindings t.resource;
    t.resource <- container
  end;
  (match find_entry t container with
  | Some e -> e.last_used <- now
  | None -> t.sched_set <- { container; last_used = now } :: t.sched_set)

let scheduler_binding t =
  let sorted =
    List.sort (fun a b -> Simtime.compare b.last_used a.last_used) t.sched_set
  in
  List.map (fun e -> e.container) sorted

(* Recency-unordered view of the same set, for order-independent consumers
   (a sum or max over the set): no sort, no list, no allocation. *)
let iter_scheduler_containers t f =
  let rec go = function
    | [] -> ()
    | e :: rest ->
        f e.container;
        go rest
  in
  go t.sched_set

let touch t ~now =
  match find_entry t t.resource with
  | Some e -> e.last_used <- now
  | None -> t.sched_set <- { container = t.resource; last_used = now } :: t.sched_set

let prune t ~now ~max_age =
  let keep e =
    Container.id e.container = Container.id t.resource
    || Simtime.span_compare (Simtime.diff now e.last_used) max_age <= 0
  in
  let before = List.length t.sched_set in
  t.sched_set <- List.filter keep t.sched_set;
  before - List.length t.sched_set

let reset_scheduler_binding t ~now =
  t.sched_set <- [ { container = t.resource; last_used = now } ]

let drop t =
  if t.live then begin
    t.live <- false;
    Container.decr_bindings t.resource;
    t.sched_set <- []
  end

let size t = List.length t.sched_set
