(** SMP extension experiments (no counterpart in the paper, whose
    measurements are all uniprocessor): what RSS interrupt steering and
    per-processor run-queue shards buy on a multiprocessor. *)

(** {1 Interrupt livelock confined to one processor} *)

type livelock_point = {
  l_cpus : int;
  l_flood_cpu : int;  (** processor the attack flow steers to *)
  l_flood_cpu_busy : float;  (** busy fraction of that processor *)
  l_other_busy_max : float;  (** highest busy fraction among the others *)
  l_good_rps : float;  (** legitimate-client throughput *)
}

val livelock_run :
  ?good_clients:int ->
  ?syn_rate:float ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  cpus:int ->
  unit ->
  livelock_point
(** Unmodified kernel (softirq mode) under a single-source SYN flood
    (default 40k SYNs/s): every attack packet carries the same flow
    identity, so all its interrupt-level processing lands on one
    processor.  At [cpus = 1] this is the paper's receive livelock; at
    [cpus > 1] the flood saturates only its steered CPU and clients
    hashed elsewhere keep their throughput. *)

val livelock_table :
  ?cpus_list:int list ->
  ?good_clients:int ->
  ?syn_rate:float ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  unit ->
  Engine.Series.table
(** One {!livelock_run} row per processor count (default [1; 2; 4]). *)

(** {1 Fixed-share guarantees while one core is saturated} *)

type hot_point = {
  h_name : string;
  h_cpu : int;  (** processor the container's thread is pinned to *)
  h_guaranteed : float;  (** share of its processor; 0 = best effort *)
  h_measured : float;  (** achieved share of one processor's time *)
}

type hot_result = { h_points : hot_point list; h_hot_cpu_busy : float }

val hot_run :
  ?cpus:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  unit ->
  hot_result
(** RC kernel with one run-queue shard per processor (default 4).  A
    best-effort container saturates processor 0; fixed-share containers
    (50%, 25%) and a best-effort filler compete on processor 1.  The
    measured shares show the multilevel scheduler honouring the
    guarantees on processor 1 regardless of the saturated core.
    @raise Invalid_argument if [cpus < 2]. *)

val hot_table :
  ?cpus:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  unit ->
  Engine.Series.table
