(** Figure 11 — prioritised handling of clients (paper §5.5).

    One high-priority client and an increasing number of low-priority
    clients, all requesting the same cached 1 KB document over
    connection-per-request HTTP.  The y value is the mean response time
    seen by the high-priority client.

    Three systems:
    - ["Without containers"]: unmodified kernel; the application still
      tries to favour the high-priority client in user space (it orders its
      work by source address), but kernel processing is uncontrolled and
      FIFO, so T_high climbs sharply once the server saturates.
    - ["With containers/select()"]: RC kernel, two listen sockets separated
      by an address filter, bound to containers of priority 100 and 10;
      T_high rises only with the linear cost and batching of select().
    - ["With containers/new event API"]: same containers with the scalable
      event API (one priority-ordered event at a time); T_high stays nearly
      flat. *)

type variant = Without_containers | Containers_select | Containers_event_api

val variant_name : variant -> string

val t_high :
  ?backend:Engine.Sim.backend ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  variant ->
  low_clients:int ->
  float
(** Mean high-priority response time in milliseconds.  [backend] selects
    the event-queue backing store (for A/B benchmarking). *)

val figure :
  ?low_counts:int list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?jobs:int ->
  unit ->
  Engine.Series.figure
(** Default sweep: 0, 5, 10, 15, 20, 25, 30, 35 low-priority clients.
    [jobs] fans the (variant × count) grid across that many domains; the
    result is identical for any [jobs] (see {!Harness.Sweep}). *)
