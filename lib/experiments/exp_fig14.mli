(** Figure 14 — immunity against SYN-flooding (paper §5.7).

    Malicious clients blast bogus SYNs (spoofed sources in a /24, never
    completing the handshake) at the server's HTTP port while well-behaved
    clients fetch the cached 1 KB document.

    - ["Unmodified System"]: every bogus SYN costs full interrupt-level
      protocol processing (~99 µs) and pollutes the shared SYN queue;
      throughput collapses to zero around 10 000 SYNs/s.
    - ["LRP System"]: early demultiplexing bounds the interrupt-level cost,
      but without source-address filters the flood shares the one
      per-process queue with legitimate traffic (the paper notes LRP
      "cannot protect against such SYN floods").
    - ["With Resource Containers"]: the server binds a filtered listen
      socket covering the attacker's prefix to a container with numeric
      priority 0; bogus SYNs cost only interrupt + early demultiplexing
      (~3.9 µs) before being queued behind an idle-class container (and
      dropped for free once that queue fills).  At 70 000 SYNs/s the
      remaining throughput is ≈ 73 % of maximum. *)

type variant = Unmod_flood | Lrp_flood | Rc_filtered

val variant_name : variant -> string

val throughput :
  ?good_clients:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  variant ->
  syn_rate:float ->
  float
(** Well-behaved-client throughput (requests/s) under the given flood. *)

val figure :
  ?rates:float list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?jobs:int ->
  unit ->
  Engine.Series.figure
(** Default sweep: 0 to 70 000 SYNs/s in 10 000 steps.  [jobs] fans the
    grid across domains (see {!Harness.Sweep}). *)
