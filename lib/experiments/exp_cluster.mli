(** Cluster scale-out experiments: the multi-machine rig validated
    against the M/G/1-PS closed form, the replicated-dispatch (cloning)
    bound, the balancer-policy QoS scenario under a SYN-flooded machine,
    and the cluster-wide tenant rollup. *)

(** {1 The M/G/1-PS oracle}

    Each machine behind the flow-hash balancer is approximately an
    M/G/1-PS station (Poisson arrivals by Bernoulli thinning, worker
    pool at small quantum ~ processor sharing), so mean response time
    obeys the insensitive closed form [E[T] = T0 / (1 - rho)] with [T0]
    the near-zero-load mean sojourn and [rho] the measured utilisation. *)

type oracle_point = {
  op_machines : int;
  op_rate : float;  (** aggregate arrivals/s *)
  op_rho : float;  (** completion-weighted mean utilisation *)
  op_concurrent : int;  (** peak concurrent connections in the window *)
  op_completed : int;
  op_measured_ms : float;  (** mean in-server request sojourn *)
  op_predicted_ms : float;  (** [T0 / (1 - rho)], completion-weighted per machine *)
  op_err_pct : float;
}

type oracle_result = { o_t0_ms : float; o_points : oracle_point list }

type calibration = {
  cal_t0 : float;  (** mean in-sojourn demand, seconds *)
  cal_demand : float;  (** total CPU demand per request, seconds *)
}

val calibrate : ?seed:int -> unit -> calibration
(** A single machine at near-zero load: the mean in-server sojourn is the
    per-request in-sojourn demand [T0], and busy-time over completions is
    the total CPU demand per request (~0.9 ms at the default 400 us
    service) — what utilisation targeting divides by. *)

val oracle_point :
  ?machines:int ->
  ?shards:int ->
  ?domains:int ->
  ?window:Engine.Simtime.span ->
  ?rate:float ->
  ?hold:Engine.Simtime.span ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?seed:int ->
  t0:float ->
  unit ->
  oracle_point
(** One loaded run compared against the closed form.  Predictions are
    per-machine (the hash ring's shares are uneven) and averaged with
    completion weights.  [shards]/[domains]/[window] select sharded
    execution ({!Clustersim.Cluster.create}); the in-server sojourn the
    oracle compares is window-independent, and results are byte-identical
    at every shard count. *)

val oracle_curve :
  ?machines:int ->
  ?shards:int ->
  ?rhos:float list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?seed:int ->
  unit ->
  oracle_result
(** Calibrate once, then one point per target utilisation. *)

val gate_point :
  ?machines:int ->
  ?shards:int ->
  ?rate:float ->
  ?hold:Engine.Simtime.span ->
  ?seed:int ->
  ?cal:calibration ->
  unit ->
  oracle_point
(** The acceptance-gate configuration: clients hold connections for 10 s
    after their response, so 10.8k arrivals/s sustain >= 10^5 concurrent
    connections across 16 machines while each machine runs at ~0.62
    utilisation.  The caller asserts [op_err_pct <= 5] and
    [op_concurrent >= 100_000]. *)

(** {1 The 10^6-concurrent-connection run} *)

type mega_point = {
  mp_machines : int;
  mp_shards : int;
  mp_domains : int;
  mp_rate : float;  (** aggregate arrivals/s *)
  mp_hold_s : float;
  mp_sim_seconds : float;  (** simulated seconds executed (warmup + measure) *)
  mp_peak_concurrent : int;
  mp_issued : int;  (** in the measurement window *)
  mp_completed : int;
  mp_refused : int;
  mp_evicted : int;
}

val mega_point :
  ?machines:int ->
  ?shards:int ->
  ?domains:int ->
  ?rate:float ->
  ?hold:Engine.Simtime.span ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?window:Engine.Simtime.span ->
  ?seed:int ->
  unit ->
  mega_point
(** The scale demonstration: 52,000 arrivals/s each holding its connection
    for 20 s sustain ~1.04 million concurrent connections over 64
    machines, executed across 8 shards with a 2 ms dispatch window and
    2^21-entry in-flight rings.  Minutes of wall clock — bench-harness
    territory ([--mega]), not CI. *)

val oracle_table : oracle_result -> Engine.Series.table
val point_json : oracle_point -> Engine.Jsonx.t
val oracle_json : ?gate:oracle_point -> oracle_result -> Engine.Jsonx.t

(** {1 The cloning bound} *)

type clone_pair = {
  c_single_ms : float;  (** mean client sojourn, single dispatch *)
  c_replicated_ms : float;  (** mean client sojourn, 2 clones, first wins *)
  c_single_completed : int;
  c_replicated_completed : int;
  c_ratio : float;  (** replicated / single; the bound requires <= 1 *)
}

val clone_pair :
  ?machines:int ->
  ?rate:float ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?seed:int ->
  unit ->
  clone_pair
(** Single dispatch at rate [lambda] vs two clones per request at
    [lambda/2]: equal per-machine load, so the client-side sojourn
    difference is purely the first-response-wins effect —
    [E[min of 2 iid] <= E[single]]. *)

val clone_table : clone_pair -> Engine.Series.table

(** {1 Differentiated QoS under a flooded machine} *)

type qos_point = {
  q_policy : string;
  q_goodput : float;  (** completions/s *)
  q_sojourn_ms : float;  (** mean client sojourn *)
  q_flooded_share : float;  (** fraction of requests served by machine 0 *)
  q_syn_drops : int;  (** SYN-queue drops on machine 0 *)
}

val qos_run :
  ?machines:int ->
  ?rate:float ->
  ?flood_rate:float ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?seed:int ->
  policy:Clustersim.Cluster.policy ->
  unit ->
  qos_point
(** Machine 0 is SYN-flooded from inside tenant 0's prefix.  Half-open
    connections are tracked from SYN, so least-connections balancing sees
    the flood as load and routes around the machine; round-robin keeps
    feeding it. *)

val qos_table :
  ?machines:int ->
  ?rate:float ->
  ?flood_rate:float ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?seed:int ->
  unit ->
  Engine.Series.table
(** One {!qos_run} row per policy (round-robin, least-conns). *)

(** {1 Tenant rollup} *)

val tenant_table :
  ?machines:int ->
  ?rate:float ->
  ?measure:Engine.Simtime.span ->
  ?seed:int ->
  unit ->
  Engine.Series.table
(** Cluster-wide per-tenant usage via the rollup groups (3:1 arrival
    weights), with the "cluster.usage-rollup" law checked at the end.
    @raise Failure on a law violation. *)
