(** Zipf-corpus flash-crowd experiment (ROADMAP item 4, first scenario).

    A 10^5-10^6-document corpus with Zipf(s) popularity served from a
    cache holding ~1/8 of the corpus bytes, misses going to the disk
    model.  A premium tenant (source-prefix listen filter bound to a
    fixed-share 40% container) and a best-effort crowd run steadily; then a
    flash crowd arrives requesting documents uniformly — the LRU worst
    case.  The point records both phases for both classes plus the cache
    hit rate, showing RC holding the premium tenant's throughput and
    hit-rate QoS where the Unmodified server collapses.  Every point runs
    with the machine's invariant registry armed (including the cache's
    [cache.bytes-consistency] law over the arena). *)

type class_stats = { throughput : float; mean_ms : float }
type phase_stats = { premium : class_stats; crowd : class_stats; hit_rate : float }

type point = {
  system : Harness.system;
  docs : int;
  s : float;
  cache_frac : float;
  baseline : phase_stats;
  spike : phase_stats;
  checks : int;
}

val run_point :
  ?docs:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?spike_measure:Engine.Simtime.span ->
  s:float ->
  Harness.system ->
  point
(** One system at one exponent.  Defaults: 10^5 documents, 1 s cold-start
    warmup, 2 s per phase. *)

val default_exponents : float list
(** [0.6; 0.9; 1.1] — below, near, and above the classic web value. *)

val run :
  ?docs:int ->
  ?exponents:float list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?spike_measure:Engine.Simtime.span ->
  unit ->
  point list
(** The full grid: RC and Unmodified at each exponent. *)

val table : point list -> Engine.Series.table
val json : ?docs:int -> point list -> Engine.Jsonx.t
(** The QoS table as a JSON artifact (per system × exponent × phase). *)
