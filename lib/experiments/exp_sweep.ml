module Simtime = Engine.Simtime
module Jsonx = Engine.Jsonx
module Socket = Netsim.Socket
module Event_server = Httpsim.Event_server
module Sclient = Workload.Sclient

type point = { system : Harness.system; clients : int; seed : int }

type result = {
  point : point;
  throughput : float;
  mean_ms : float;
  p99_ms : float;
  completed : int;
}

let grid ?(systems = [ Harness.Unmodified; Harness.Lrp_sys; Harness.Rc_sys ])
    ?(client_counts = [ 4; 16 ]) ?(seeds = [ 1; 2 ]) () =
  Array.of_list
    (List.concat_map
       (fun system ->
         List.concat_map
           (fun clients -> List.map (fun seed -> { system; clients; seed }) seeds)
           client_counts)
       systems)

(* One grid point is a complete closed-loop run: all randomness (client
   think-time jitter) comes from the point's own seed, so the result is a
   pure function of the point — the property the jobs-determinism test
   leans on. *)
let run ?(cpus = 1) ?(warmup = Simtime.sec 1) ?(measure = Simtime.sec 2)
    { system; clients; seed } =
  let rig = Harness.make_rig ~cpus system in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~listens:[ listen ] ()
  in
  ignore (Event_server.start server);
  let load =
    Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port ~path:Harness.doc_path
      ~jitter:(Simtime.ms 1) ~seed ~count:clients ()
  in
  Sclient.start load;
  Harness.run_for rig warmup;
  Sclient.reset_stats load;
  Harness.run_for rig measure;
  let completed = Sclient.completed load in
  {
    point = { system; clients; seed };
    throughput = float_of_int completed /. Simtime.span_to_sec_f measure;
    mean_ms = Engine.Stats.Summary.mean (Sclient.response_times load);
    p99_ms = Sclient.response_percentile load 0.99;
    completed;
  }

let run_grid ?cpus ?warmup ?measure ?(jobs = 1) points =
  Harness.Sweep.map ~jobs (run ?cpus ?warmup ?measure) points

let result_to_json r =
  Jsonx.Obj
    [
      ("system", Jsonx.String (Harness.system_name r.point.system));
      ("clients", Jsonx.Int r.point.clients);
      ("seed", Jsonx.Int r.point.seed);
      ("throughput_rps", Jsonx.Float r.throughput);
      ("mean_ms", Jsonx.Float r.mean_ms);
      ("p99_ms", Jsonx.Float r.p99_ms);
      ("completed", Jsonx.Int r.completed);
    ]

(* The report must be byte-identical for any [jobs]: results are emitted
   in grid order and contain nothing environment-dependent (no wall-clock
   time, no job count, no hostname). *)
let report_json results =
  Jsonx.Obj
    [
      ("schema_version", Jsonx.Int 1);
      ("experiment", Jsonx.String "sweep");
      ("results", Jsonx.List (Array.to_list (Array.map result_to_json results)));
    ]

let report_string results = Jsonx.to_string (report_json results) ^ "\n"
