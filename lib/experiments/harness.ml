module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Machine = Procsim.Machine
module Process = Procsim.Process
module Stack = Netsim.Stack

type system = Unmodified | Lrp_sys | Rc_sys

let system_name = function
  | Unmodified -> "Unmodified"
  | Lrp_sys -> "LRP"
  | Rc_sys -> "RC"

type rig = {
  sim : Sim.t;
  root : Container.t;
  machine : Machine.t;
  server_proc : Process.t;
  stack : Stack.t;
  cache : Httpsim.File_cache.t;
}

let default_port = 80
let doc_path = "/doc/1k"
let cgi_path = "/cgi/run"

(* Observability plumbing: when [observe] has been called, every rig built
   afterwards gets an enabled trace log, and the most recent rig is
   remembered so CLI drivers can export after the experiment ran. *)
let observe_capacity = ref None
let last = ref None

let observe ?(capacity = 65536) () = observe_capacity := Some capacity
let observing () = !observe_capacity <> None
let last_rig () = !last

let make_rig ?(cpus = 1) ?(quantum = Simtime.ms 1) ?(limit_window = Simtime.ms 100)
    ?server_attrs system =
  let sim = Sim.create () in
  let root = Container.create_root () in
  let invariants = Engine.Invariant.create () in
  let policy =
    match system with
    | Unmodified | Lrp_sys -> Sched.Timeshare.make ()
    | Rc_sys -> Sched.Multilevel.make ~window:limit_window ~invariants ~root ()
  in
  let trace =
    match !observe_capacity with
    | Some capacity -> Some (Engine.Tracelog.create ~enabled:true ~capacity ())
    | None -> None
  in
  let machine = Machine.create ~cpus ~quantum ?trace ~sim ~policy ~root ~invariants () in
  let server_proc = Process.create machine ?container_attrs:server_attrs ~name:"httpd" () in
  let mode =
    match system with Unmodified -> Stack.Softirq | Lrp_sys -> Stack.Lrp | Rc_sys -> Stack.Rc
  in
  let stack =
    Stack.create ~machine ~mode ~owner:(Process.default_container server_proc) ()
  in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.register_metrics cache (Machine.metrics machine);
  Httpsim.File_cache.register_invariants cache (Machine.invariants machine);
  Httpsim.File_cache.add_document cache ~path:doc_path ~bytes:1024;
  Httpsim.File_cache.add_document cache ~path:"/doc/8k" ~bytes:8192;
  Httpsim.File_cache.add_document cache ~path:"/doc/64k" ~bytes:65536;
  Httpsim.File_cache.add_document cache ~path:cgi_path ~bytes:0;
  Httpsim.File_cache.warm cache;
  let rig = { sim; root; machine; server_proc; stack; cache } in
  last := Some rig;
  rig

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let export ?trace_out ?metrics_out rig =
  (match trace_out with
  | Some path -> write_file path (Engine.Tracelog.to_jsonl (Machine.trace rig.machine))
  | None -> ());
  match metrics_out with
  | Some path ->
      write_file path (Engine.Jsonx.to_string (Engine.Metrics.to_json (Machine.metrics rig.machine)) ^ "\n")
  | None -> ()

let run_for rig span = Machine.run_until rig.machine (Simtime.add (Sim.now rig.sim) span)

let measure_window rig ~warmup ~measure counter =
  run_for rig warmup;
  let start = counter () in
  run_for rig measure;
  let finish = counter () in
  (finish -. start) /. Simtime.span_to_sec_f measure

let cpu_share_between rig container ~t0 ~busy0 ~subtree0 =
  ignore busy0;
  let wall = Simtime.diff (Sim.now rig.sim) t0 in
  let used = Simtime.span_sub (Container.subtree_cpu container) subtree0 in
  Simtime.ratio used wall
