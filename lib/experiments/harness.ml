module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Machine = Procsim.Machine
module Process = Procsim.Process
module Stack = Netsim.Stack

type system = Unmodified | Lrp_sys | Rc_sys

let system_name = function
  | Unmodified -> "Unmodified"
  | Lrp_sys -> "LRP"
  | Rc_sys -> "RC"

type rig = {
  sim : Sim.t;
  root : Container.t;
  machine : Machine.t;
  server_proc : Process.t;
  stack : Stack.t;
  cache : Httpsim.File_cache.t;
}

let default_port = 80
let doc_path = "/doc/1k"
let cgi_path = "/cgi/run"

(* Observability plumbing: when [observe] has been called, every rig built
   afterwards gets an enabled trace log, and the most recent rig is
   remembered so CLI drivers can export after the experiment ran.  Atomic
   so rigs built inside sweep domains see the armed capacity; [last] is
   last-writer-wins, which is only meaningful under [~jobs:1] anyway. *)
let observe_capacity = Atomic.make None
let last = Atomic.make None

let observe ?(capacity = 65536) () = Atomic.set observe_capacity (Some capacity)
let observing () = Atomic.get observe_capacity <> None
let last_rig () = Atomic.get last

let make_rig ?backend ?(cpus = 1) ?(quantum = Simtime.ms 1) ?(limit_window = Simtime.ms 100)
    ?server_attrs system =
  let sim = Sim.create ?backend () in
  let root = Container.create_root () in
  let invariants = Engine.Invariant.create () in
  let policy =
    match system with
    | Unmodified | Lrp_sys -> Sched.Timeshare.make ()
    | Rc_sys -> Sched.Multilevel.make ~window:limit_window ~invariants ~root ()
  in
  let trace =
    match Atomic.get observe_capacity with
    | Some capacity -> Some (Engine.Tracelog.create ~enabled:true ~capacity ())
    | None -> None
  in
  let machine = Machine.create ~cpus ~quantum ?trace ~sim ~policy ~root ~invariants () in
  let server_proc = Process.create machine ?container_attrs:server_attrs ~name:"httpd" () in
  let mode =
    match system with Unmodified -> Stack.Softirq | Lrp_sys -> Stack.Lrp | Rc_sys -> Stack.Rc
  in
  let stack =
    Stack.create ~machine ~mode ~owner:(Process.default_container server_proc) ()
  in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.register_metrics cache (Machine.metrics machine);
  Httpsim.File_cache.register_invariants cache (Machine.invariants machine);
  Httpsim.File_cache.add_document cache ~path:doc_path ~bytes:1024;
  Httpsim.File_cache.add_document cache ~path:"/doc/8k" ~bytes:8192;
  Httpsim.File_cache.add_document cache ~path:"/doc/64k" ~bytes:65536;
  Httpsim.File_cache.add_document cache ~path:cgi_path ~bytes:0;
  Httpsim.File_cache.warm cache;
  let rig = { sim; root; machine; server_proc; stack; cache } in
  Atomic.set last (Some rig);
  rig

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let export ?trace_out ?metrics_out rig =
  (match trace_out with
  | Some path -> write_file path (Engine.Tracelog.to_jsonl (Machine.trace rig.machine))
  | None -> ());
  match metrics_out with
  | Some path ->
      write_file path (Engine.Jsonx.to_string (Engine.Metrics.to_json (Machine.metrics rig.machine)) ^ "\n")
  | None -> ()

let run_for rig span = Machine.run_until rig.machine (Simtime.add (Sim.now rig.sim) span)

let measure_window rig ~warmup ~measure counter =
  run_for rig warmup;
  let start = counter () in
  run_for rig measure;
  let finish = counter () in
  (finish -. start) /. Simtime.span_to_sec_f measure

let cpu_share_between rig container ~t0 ~busy0 ~subtree0 =
  ignore busy0;
  let wall = Simtime.diff (Sim.now rig.sim) t0 in
  let used = Simtime.span_sub (Container.subtree_cpu container) subtree0 in
  Simtime.ratio used wall

(* Parallel sweep executor.  Points are independent simulations, so the
   only sharing between domains is the atomic id counters above; each
   point must derive all randomness from its own seed, never from domain
   identity or global order, so that [map ~jobs:n] is a pure function of
   the input array — the determinism test diffs jobs=1 against jobs=4
   byte-for-byte. *)
module Sweep = struct
  let recommended_jobs () = Domain.recommended_domain_count ()

  let map ?(jobs = 1) f points =
    let n = Array.length points in
    if jobs <= 1 || n <= 1 then Array.map f points
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let rec pull () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n && Atomic.get failure = None then begin
            (match f points.(i) with
            | r -> results.(i) <- Some r
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                (* First failure wins; later points are abandoned. *)
                ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            pull ()
          end
        in
        pull ()
      in
      let domains =
        Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join domains;
      (match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Sweep.map: missing result (worker died?)")
        results
    end
end
