module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Container = Rescont.Container
module Machine = Procsim.Machine
module Process = Procsim.Process
module Stack = Netsim.Stack

type system = Unmodified | Lrp_sys | Rc_sys

let system_name = function
  | Unmodified -> "Unmodified"
  | Lrp_sys -> "LRP"
  | Rc_sys -> "RC"

type rig = {
  sim : Sim.t;
  root : Container.t;
  machine : Machine.t;
  server_proc : Process.t;
  stack : Stack.t;
  cache : Httpsim.File_cache.t;
}

let default_port = 80
let doc_path = "/doc/1k"
let cgi_path = "/cgi/run"

(* Observability plumbing: when [observe] has been called, every rig built
   afterwards gets an enabled trace log, and the most recent rig is
   remembered so CLI drivers can export after the experiment ran.  Atomic
   so rigs built inside sweep domains see the armed capacity; [last] is
   last-writer-wins, which is only meaningful under [~jobs:1] anyway. *)
let observe_capacity = Atomic.make None
let last = Atomic.make None

let observe ?(capacity = 65536) () = Atomic.set observe_capacity (Some capacity)
let observing () = Atomic.get observe_capacity <> None
let last_rig () = Atomic.get last

let make_rig ?backend ?(cpus = 1) ?(quantum = Simtime.ms 1) ?(limit_window = Simtime.ms 100)
    ?server_attrs system =
  let sim = Sim.create ?backend () in
  let root = Container.create_root () in
  let invariants = Engine.Invariant.create () in
  let make_policy _cpu =
    match system with
    | Unmodified | Lrp_sys -> Sched.Timeshare.make ()
    | Rc_sys -> Sched.Multilevel.make ~window:limit_window ~invariants ~root ()
  in
  let policy = make_policy 0 in
  let trace =
    match Atomic.get observe_capacity with
    | Some capacity -> Some (Engine.Tracelog.create ~enabled:true ~capacity ())
    | None -> None
  in
  (* A real SMP rig gets one run-queue shard per processor; the
     uniprocessor path is untouched (same policy value, same machine). *)
  let machine =
    if cpus > 1 then
      Machine.create ~cpus ~shard_policy:make_policy ~quantum ?trace ~sim ~policy ~root
        ~invariants ()
    else Machine.create ~cpus ~quantum ?trace ~sim ~policy ~root ~invariants ()
  in
  let server_proc = Process.create machine ?container_attrs:server_attrs ~name:"httpd" () in
  let mode =
    match system with Unmodified -> Stack.Softirq | Lrp_sys -> Stack.Lrp | Rc_sys -> Stack.Rc
  in
  let stack =
    Stack.create ~machine ~mode ~owner:(Process.default_container server_proc) ()
  in
  let cache = Httpsim.File_cache.create () in
  Httpsim.File_cache.register_metrics cache (Machine.metrics machine);
  Httpsim.File_cache.register_invariants cache (Machine.invariants machine);
  Httpsim.File_cache.add_document cache ~path:doc_path ~bytes:1024;
  Httpsim.File_cache.add_document cache ~path:"/doc/8k" ~bytes:8192;
  Httpsim.File_cache.add_document cache ~path:"/doc/64k" ~bytes:65536;
  Httpsim.File_cache.add_document cache ~path:cgi_path ~bytes:0;
  Httpsim.File_cache.warm cache;
  let rig = { sim; root; machine; server_proc; stack; cache } in
  Atomic.set last (Some rig);
  rig

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let export ?trace_out ?metrics_out rig =
  (match trace_out with
  | Some path -> write_file path (Engine.Tracelog.to_jsonl (Machine.trace rig.machine))
  | None -> ());
  match metrics_out with
  | Some path ->
      write_file path (Engine.Jsonx.to_string (Engine.Metrics.to_json (Machine.metrics rig.machine)) ^ "\n")
  | None -> ()

let run_for rig span = Machine.run_until rig.machine (Simtime.add (Sim.now rig.sim) span)

let measure_window rig ~warmup ~measure counter =
  run_for rig warmup;
  let start = counter () in
  run_for rig measure;
  let finish = counter () in
  (finish -. start) /. Simtime.span_to_sec_f measure

let cpu_share_between rig container ~t0 ~busy0 ~subtree0 =
  ignore busy0;
  let wall = Simtime.diff (Sim.now rig.sim) t0 in
  let used = Simtime.span_sub (Container.subtree_cpu container) subtree0 in
  Simtime.ratio used wall

(* Parallel sweep executor.  Points are independent simulations, so the
   only sharing between domains is the atomic id counters above; each
   point must derive all randomness from its own seed, never from domain
   identity or global order, so that [map ~jobs:n] is a pure function of
   the input array — the determinism test diffs jobs=1 against jobs=4
   byte-for-byte. *)
module Sweep = struct
  let recommended_jobs () = Domain.recommended_domain_count ()

  (* One batch of points being mapped.  [run i] executes point [i] and
     stores its result; it never raises (failures are captured inside the
     closure).  [next] hands out indices, [finished] counts executed
     ones; whoever executes the last point flips [complete] under the
     pool lock and broadcasts. *)
  type batch = {
    run : int -> unit;
    n : int;
    next : int Atomic.t;
    finished : int Atomic.t;
    mutable complete : bool;
  }

  (* Persistent worker-domain pool.  Spawning domains per [map] call was
     not the expensive part — running more busy domains than cores was:
     every minor collection is a stop-the-world rendezvous across all
     domains, so an oversubscribed sweep paid a scheduler round trip per
     GC (jobs=4 on one core ran 1.4x slower than jobs=1).  The pool caps
     live workers at [recommended_domain_count] and keeps them parked on
     a condition variable between batches, so repeated sweeps reuse warm
     domains and a 1-core host degrades to the plain serial loop. *)
  type pool = {
    mutex : Mutex.t;
    work_ready : Condition.t;
    batch_done : Condition.t;
    mutable current : batch option;
    mutable generation : int; (* bumped per submitted batch *)
    mutable workers : unit Domain.t list;
    mutable shutdown : bool;
    mutable exit_hooked : bool;
  }

  let pool =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      generation = 0;
      workers = [];
      shutdown = false;
      exit_hooked = false;
    }

  let drain batch =
    let rec pull () =
      let i = Atomic.fetch_and_add batch.next 1 in
      if i < batch.n then begin
        batch.run i;
        if 1 + Atomic.fetch_and_add batch.finished 1 = batch.n then begin
          Mutex.lock pool.mutex;
          batch.complete <- true;
          pool.current <- None;
          Condition.broadcast pool.batch_done;
          Mutex.unlock pool.mutex
        end;
        pull ()
      end
    in
    pull ()

  let rec worker_loop last_gen =
    Mutex.lock pool.mutex;
    while (not pool.shutdown) && (pool.generation = last_gen || pool.current = None) do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.shutdown then Mutex.unlock pool.mutex
    else begin
      let gen = pool.generation in
      let batch = Option.get pool.current in
      Mutex.unlock pool.mutex;
      drain batch;
      worker_loop gen
    end

  (* Called with the pool lock held. *)
  let ensure_workers want =
    if not pool.exit_hooked then begin
      pool.exit_hooked <- true;
      at_exit (fun () ->
          Mutex.lock pool.mutex;
          pool.shutdown <- true;
          Condition.broadcast pool.work_ready;
          let workers = pool.workers in
          pool.workers <- [];
          Mutex.unlock pool.mutex;
          List.iter Domain.join workers)
    end;
    let have = List.length pool.workers in
    if have < want then begin
      let gen = pool.generation in
      for _ = have + 1 to want do
        pool.workers <- Domain.spawn (fun () -> worker_loop gen) :: pool.workers
      done
    end

  let map ?(jobs = 1) ?(oversubscribe = false) f points =
    let n = Array.length points in
    let jobs = if oversubscribe then jobs else min jobs (recommended_jobs ()) in
    let want_workers = min (jobs - 1) (n - 1) in
    if want_workers <= 0 then Array.map f points
    else begin
      let results = Array.make n None in
      let failure = Atomic.make None in
      let run i =
        (* First failure wins; later points are abandoned. *)
        if Atomic.get failure = None then
          match f points.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      in
      let batch =
        { run; n; next = Atomic.make 0; finished = Atomic.make 0; complete = false }
      in
      Mutex.lock pool.mutex;
      if pool.current <> None then begin
        (* A batch is already in flight (nested map from inside a point):
           don't deadlock on the pool, just run this one serially. *)
        Mutex.unlock pool.mutex;
        Array.map f points
      end
      else begin
        ensure_workers want_workers;
        pool.current <- Some batch;
        pool.generation <- pool.generation + 1;
        Condition.broadcast pool.work_ready;
        Mutex.unlock pool.mutex;
        (* The submitting domain is a full participant — workers only add
           parallelism on top of it. *)
        drain batch;
        Mutex.lock pool.mutex;
        while not batch.complete do
          Condition.wait pool.batch_done pool.mutex
        done;
        Mutex.unlock pool.mutex;
        (match Atomic.get failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        Array.map
          (function
            | Some r -> r
            | None -> invalid_arg "Sweep.map: missing result (worker died?)")
          results
      end
    end
end
