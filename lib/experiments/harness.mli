(** Shared rig construction for the reproduction experiments.

    A rig is one simulated server machine: event engine, CPU dispatcher
    with the scheduling policy matching the system under test, network
    stack in the matching processing mode, a server process, and a warmed
    document cache.  The three system configurations correspond to the
    curves in the paper's evaluation:

    - [Unmodified]: classic decay-usage timeshare scheduler over process
      principals; softirq network processing (misaccounted, FIFO).
    - [Lrp_sys]: same scheduler; LRP network processing (charged to the
      receiving process).
    - [Rc_sys]: the prototype's multi-level container scheduler; RC network
      processing (per-container queues in priority order). *)

type system = Unmodified | Lrp_sys | Rc_sys

val system_name : system -> string

type rig = {
  sim : Engine.Sim.t;
  root : Rescont.Container.t;
  machine : Procsim.Machine.t;
  server_proc : Procsim.Process.t;
  stack : Netsim.Stack.t;
  cache : Httpsim.File_cache.t;
}

val make_rig :
  ?backend:Engine.Sim.backend ->
  ?cpus:int ->
  ?quantum:Engine.Simtime.span ->
  ?limit_window:Engine.Simtime.span ->
  ?server_attrs:Rescont.Attrs.t ->
  system ->
  rig
(** Build a rig.  The cache is pre-loaded with "/doc/1k" (1 024 bytes,
    warm) and a few other documents.  [server_attrs] sets the server
    process's default container attributes (default: fixed-share class
    with share 0 — i.e. a node that may own child containers but competes
    via the timeshare residual; see {!Sched.Multilevel}).  [backend]
    selects the event-queue backing store (default: the timer wheel). *)

val run_for : rig -> Engine.Simtime.span -> unit
(** Advance the simulation by a span. *)

val measure_window :
  rig -> warmup:Engine.Simtime.span -> measure:Engine.Simtime.span -> (unit -> float) -> float
(** [measure_window rig ~warmup ~measure counter] runs the warmup, samples
    [counter], runs the measurement window, and returns the counter delta
    divided by the window length in seconds (a rate). *)

val cpu_share_between :
  rig ->
  Rescont.Container.t ->
  t0:Engine.Simtime.t ->
  busy0:Engine.Simtime.span ->
  subtree0:Engine.Simtime.span ->
  float
(** Fraction of {e wall-clock} time the container's subtree consumed since
    the recorded starting point. *)

val default_port : int
val doc_path : string
val cgi_path : string

(** {1 Observability}

    Trace/metrics export for the CLI drivers: call {!observe} before
    building rigs, run the experiment, then {!export} the last rig. *)

val observe : ?capacity:int -> unit -> unit
(** Arm observability: every rig built afterwards gets an enabled trace log
    retaining up to [capacity] entries (default 65536). *)

val observing : unit -> bool

val last_rig : unit -> rig option
(** The most recently built rig, if any. *)

val export : ?trace_out:string -> ?metrics_out:string -> rig -> unit
(** Write the rig's trace as JSON lines to [trace_out] and a metrics
    snapshot as JSON to [metrics_out] (each omitted: not written). *)

(** {1 Parallel sweeps}

    Independent experiment points (client counts × seeds × stack modes)
    fanned across domains.  Results come back in input order regardless of
    [jobs], and every point derives its randomness from its own seed —
    never from domain identity — so the output is a pure function of the
    input array.  [map ~jobs:4] and [map ~jobs:1] produce identical
    results (checked byte-for-byte by the determinism test). *)
module Sweep : sig
  val recommended_jobs : unit -> int
  (** [Domain.recommended_domain_count ()]. *)

  val map : ?jobs:int -> ?oversubscribe:bool -> ('a -> 'b) -> 'a array -> 'b array
  (** [map ~jobs f points] applies [f] to every point, running up to
      [jobs] domains in parallel (default 1 = fully sequential).  The
      result array is in input order and is a pure function of the input
      whatever [jobs] is.  If any point raises, the first failure is
      re-raised after in-flight points finish and the remaining points
      are abandoned.

      Domains come from a persistent pool capped at
      {!recommended_jobs} — running more busy domains than cores makes
      every minor GC's stop-the-world rendezvous slower than the
      parallelism is worth, so extra [jobs] beyond the core count are
      ignored (on a 1-core host every sweep is serial).
      [oversubscribe] (default false, for tests of the pool machinery)
      lifts that cap. *)
end
