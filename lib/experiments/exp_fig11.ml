module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Filter = Netsim.Filter
module Ipaddr = Netsim.Ipaddr
module Event_server = Httpsim.Event_server
module Sclient = Workload.Sclient

type variant = Without_containers | Containers_select | Containers_event_api

let variant_name = function
  | Without_containers -> "Without containers"
  | Containers_select -> "With containers/select()"
  | Containers_event_api -> "With containers/new event API"

let high_src = Ipaddr.v 10 9 9 9
let low_base = Ipaddr.v 10 1 0 1

let t_high ?backend ?(warmup = Simtime.sec 2) ?(measure = Simtime.sec 4) variant ~low_clients =
  let system =
    match variant with
    | Without_containers -> Harness.Unmodified
    | Containers_select | Containers_event_api -> Harness.Rc_sys
  in
  let rig = Harness.make_rig ?backend system in
  let listens, policy, user_preference =
    match variant with
    | Without_containers ->
        (* One listen socket; the app can only prefer the high client in
           user space, by source address. *)
        let listen = Socket.make_listen ~port:Harness.default_port ~backlog:32 () in
        ( [ listen ],
          Event_server.No_containers,
          fun conn -> if Ipaddr.equal conn.Socket.src high_src then 1 else 0 )
    | Containers_select | Containers_event_api ->
        let high_container =
          Container.create ~parent:rig.Harness.root ~name:"high-class"
            ~attrs:(Attrs.timeshare ~priority:100 ())
            ()
        and low_container =
          Container.create ~parent:rig.Harness.root ~name:"low-class"
            ~attrs:(Attrs.timeshare ~priority:10 ())
            ()
        in
        let listen_high =
          Socket.make_listen ~port:Harness.default_port ~filter:(Filter.host high_src)
            ~backlog:32 ~container:high_container ()
        and listen_low =
          Socket.make_listen ~port:Harness.default_port ~backlog:32 ~container:low_container ()
        in
        ([ listen_high; listen_low ], Event_server.Inherit_listen, fun _ -> 0)
  in
  let api =
    match variant with
    | Containers_event_api -> Event_server.Event_api
    | Without_containers | Containers_select -> Event_server.Select
  in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~api ~policy ~user_preference ~listens ()
  in
  ignore (Event_server.start server);
  let jitter = Simtime.ms 2 in
  let high =
    Sclient.create ~stack:rig.Harness.stack ~name:"high" ~src_base:high_src
      ~port:Harness.default_port ~path:Harness.doc_path ~jitter ~seed:7 ~count:1 ()
  in
  let low =
    if low_clients > 0 then
      Some
        (Sclient.create ~stack:rig.Harness.stack ~name:"low" ~src_base:low_base
           ~port:Harness.default_port ~path:Harness.doc_path ~jitter ~seed:11
           ~count:low_clients ())
    else None
  in
  Sclient.start high;
  (match low with Some l -> Sclient.start l | None -> ());
  Harness.run_for rig warmup;
  Sclient.reset_stats high;
  Harness.run_for rig measure;
  Engine.Stats.Summary.mean (Sclient.response_times high)

let variants = [ Without_containers; Containers_select; Containers_event_api ]

let figure ?(low_counts = [ 0; 5; 10; 15; 20; 25; 30; 35 ]) ?warmup ?measure ?(jobs = 1) () =
  (* Every (variant, count) point is an independent simulation; flatten
     them into one array so [Sweep.map] can fan the whole grid out. *)
  let points =
    Array.of_list
      (List.concat_map (fun v -> List.map (fun n -> (v, n)) low_counts) variants)
  in
  let ys =
    Harness.Sweep.map ~jobs
      (fun (v, n) -> t_high ?warmup ?measure v ~low_clients:n)
      points
  in
  let per_variant = List.length low_counts in
  let curve_of i variant =
    let curve = Engine.Series.curve (variant_name variant) in
    List.iteri
      (fun k n ->
        Engine.Series.add_point curve ~x:(float_of_int n) ~y:ys.((i * per_variant) + k))
      low_counts;
    curve
  in
  Engine.Series.figure ~title:"Figure 11: T_high vs concurrent low-priority clients"
    ~x_label:"low-priority clients" ~y_label:"high-priority response time (ms)"
    (List.mapi curve_of variants)
