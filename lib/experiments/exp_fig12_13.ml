module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Event_server = Httpsim.Event_server
module Cgi = Httpsim.Cgi
module Sclient = Workload.Sclient

type variant = Unmod | Lrp | Rc_capped of float

let variant_name = function
  | Unmod -> "Unmodified System"
  | Lrp -> "LRP System"
  | Rc_capped f -> Printf.sprintf "RC System (%.0f%% cap)" (f *. 100.)

type point = { static_throughput : float; cgi_cpu_share : float }

let run ?(static_clients = 24) ?(warmup = Simtime.sec 5) ?(measure = Simtime.sec 15) variant
    ~concurrent_cgi =
  let system =
    match variant with
    | Unmod -> Harness.Unmodified
    | Lrp -> Harness.Lrp_sys
    | Rc_capped _ -> Harness.Rc_sys
  in
  let rig = Harness.make_rig system in
  let cgi_parent =
    match variant with
    | Rc_capped cap ->
        Some
          (Container.create ~parent:rig.Harness.root ~name:"cgi-parent"
             ~attrs:(Attrs.fixed_share ~share:cap ~cpu_limit:cap ())
             ())
    | Unmod | Lrp -> None
  in
  let cgi =
    Cgi.create ~stack:rig.Harness.stack ~server_process:rig.Harness.server_proc ?cgi_parent ()
  in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~api:Event_server.Select
      ~dynamic_handler:(Cgi.handler cgi) ~listens:[ listen ] ()
  in
  ignore (Event_server.start server);
  let static =
    Sclient.create ~stack:rig.Harness.stack ~name:"static" ~port:Harness.default_port
      ~path:Harness.doc_path ~count:static_clients ()
  in
  Sclient.start static;
  (if concurrent_cgi > 0 then
     let cgi_clients =
       Sclient.create ~stack:rig.Harness.stack ~name:"cgi-clients"
         ~src_base:(Netsim.Ipaddr.v 10 2 0 1) ~port:Harness.default_port
         ~path:Harness.cgi_path
         ~syn_timeout:(Simtime.sec 60) (* a CGI response takes many seconds *)
         ~count:concurrent_cgi ()
     in
     Sclient.start cgi_clients);
  Harness.run_for rig warmup;
  Sclient.reset_stats static;
  let cgi_cpu0 = Cgi.cpu_charged cgi in
  Harness.run_for rig measure;
  let static_throughput =
    float_of_int (Sclient.completed static) /. Simtime.span_to_sec_f measure
  in
  let cgi_cpu = Simtime.span_sub (Cgi.cpu_charged cgi) cgi_cpu0 in
  { static_throughput; cgi_cpu_share = Simtime.ratio cgi_cpu measure }

let variants = [ Unmod; Lrp; Rc_capped 0.30; Rc_capped 0.10 ]

let figures ?(cgi_counts = [ 0; 1; 2; 3; 4; 5 ]) ?warmup ?measure ?(jobs = 1) () =
  let tput_curves = List.map (fun v -> (v, Engine.Series.curve (variant_name v))) variants in
  let share_curves = List.map (fun v -> (v, Engine.Series.curve (variant_name v))) variants in
  let points =
    Array.of_list (List.concat_map (fun v -> List.map (fun n -> (v, n)) cgi_counts) variants)
  in
  let results =
    Harness.Sweep.map ~jobs (fun (v, n) -> run ?warmup ?measure v ~concurrent_cgi:n) points
  in
  Array.iteri
    (fun i (v, n) ->
      let p = results.(i) in
      let x = float_of_int n in
      Engine.Series.add_point (List.assoc v tput_curves) ~x ~y:p.static_throughput;
      Engine.Series.add_point (List.assoc v share_curves) ~x ~y:(100. *. p.cgi_cpu_share))
    points;
  ( Engine.Series.figure ~title:"Figure 12: static throughput with competing CGI requests"
      ~x_label:"concurrent CGI requests" ~y_label:"HTTP throughput (requests/sec)"
      (List.map snd tput_curves),
    Engine.Series.figure ~title:"Figure 13: CPU share of CGI processing"
      ~x_label:"concurrent CGI requests" ~y_label:"CPU share of CGI (%)"
      (List.map snd share_curves) )
