(* SMP extension experiments: what processor-confinement buys.

   Neither scenario exists in the paper (whose measurements are all
   uniprocessor); both test the multiprocessor claims its mechanisms
   imply.  [livelock_table] shows RSS interrupt steering confining a
   single-flow interrupt livelock to the one processor the flow hashes
   to, and [hot_table] shows per-processor run-queue shards preserving
   fixed-share guarantees on one CPU while another is saturated by a
   best-effort container. *)

module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Machine = Procsim.Machine
module Stack = Netsim.Stack
module Socket = Netsim.Socket
module Ipaddr = Netsim.Ipaddr
module Event_server = Httpsim.Event_server
module Sclient = Workload.Sclient
module Synflood = Workload.Synflood

(* --- Interrupt livelock confined to one processor ------------------- *)

type livelock_point = {
  l_cpus : int;
  l_flood_cpu : int;  (* processor the attack flow steers to *)
  l_flood_cpu_busy : float;  (* busy fraction of that processor *)
  l_other_busy_max : float;  (* highest busy fraction among the others *)
  l_good_rps : float;  (* legitimate-client throughput *)
}

let flood_src = Ipaddr.v 192 168 66 1

(* Unmodified kernel (softirq mode), a single-source SYN flood, and a
   population of legitimate clients.  All the attack packets carry the
   same flow identity, so RSS steers every one of them — and the
   interrupt-level protocol processing they trigger — to the same
   processor.  On a uniprocessor that is the whole machine: classic
   receive livelock.  With more processors the flood saturates only its
   steered CPU and the clients whose flows hash elsewhere never notice. *)
let livelock_run ?(good_clients = 16) ?(syn_rate = 40_000.) ?(warmup = Simtime.sec 1)
    ?(measure = Simtime.sec 4) ~cpus () =
  let rig = Harness.make_rig ~cpus Harness.Unmodified in
  let machine = rig.Harness.machine in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~api:Event_server.Select ~listens:[ listen ] ()
  in
  ignore (Event_server.start server);
  let good =
    Sclient.create ~stack:rig.Harness.stack ~name:"good" ~port:Harness.default_port
      ~path:Harness.doc_path ~count:good_clients ()
  in
  Sclient.start good;
  let flood =
    Synflood.create ~stack:rig.Harness.stack ~src_base:flood_src ~src_count:1
      ~port:Harness.default_port ~rate_per_sec:syn_rate ()
  in
  Synflood.start flood;
  Harness.run_for rig warmup;
  Sclient.reset_stats good;
  let busy0 = Array.init cpus (Machine.busy_time_on machine) in
  Harness.run_for rig measure;
  (* Interrupt charges book demand ahead of real time (the irq hold can
     extend past [now]), so under livelock the raw counter exceeds the
     measurement window.  Clamp to the physical bound: a processor cannot
     be more than 100% busy; the excess is queued demand. *)
  let busy_frac i =
    Float.min 1.0
      (Simtime.ratio (Simtime.span_sub (Machine.busy_time_on machine i) busy0.(i)) measure)
  in
  let flood_cpu = Stack.rss_steer rig.Harness.stack flood_src 0 in
  let other_max = ref 0. in
  for i = 0 to cpus - 1 do
    if i <> flood_cpu then other_max := Float.max !other_max (busy_frac i)
  done;
  {
    l_cpus = cpus;
    l_flood_cpu = flood_cpu;
    l_flood_cpu_busy = busy_frac flood_cpu;
    l_other_busy_max = !other_max;
    l_good_rps = float_of_int (Sclient.completed good) /. Simtime.span_to_sec_f measure;
  }

let livelock_table ?(cpus_list = [ 1; 2; 4 ]) ?good_clients ?syn_rate ?warmup ?measure () =
  let t =
    Engine.Series.table
      ~title:
        "Extension: single-flow interrupt livelock vs processor count (unmodified \
         kernel, RSS steering)"
      ~columns:
        [ "processors"; "flood CPU"; "flood CPU busy"; "other CPUs busy (max)";
          "good clients (req/s)" ]
  in
  List.iter
    (fun cpus ->
      let r = livelock_run ?good_clients ?syn_rate ?warmup ?measure ~cpus () in
      Engine.Series.add_row t
        [
          string_of_int r.l_cpus;
          string_of_int r.l_flood_cpu;
          Printf.sprintf "%.0f%%" (100. *. r.l_flood_cpu_busy);
          (if cpus = 1 then "-" else Printf.sprintf "%.0f%%" (100. *. r.l_other_busy_max));
          Printf.sprintf "%.0f" r.l_good_rps;
        ])
    cpus_list;
  t

(* --- Fixed-share guarantees while one core is saturated -------------- *)

type hot_point = {
  h_name : string;
  h_cpu : int;
  h_guaranteed : float;  (* share of its processor; 0 = best effort *)
  h_measured : float;  (* achieved share of one processor's time *)
}

type hot_result = { h_points : hot_point list; h_hot_cpu_busy : float }

(* An RC machine with one run-queue shard per processor.  A best-effort
   container saturates processor 0 with an always-runnable thread; two
   fixed-share containers and a best-effort filler, all pinned to
   processor 1, compete for that one.  The shares are per-shard
   guarantees: whatever the hot container does to its own processor, the
   multilevel scheduler on processor 1 must still deliver 50% / 25% to
   the guaranteed containers. *)
let hot_run ?(cpus = 4) ?(warmup = Simtime.ms 200) ?(measure = Simtime.sec 2) () =
  if cpus < 2 then invalid_arg "Exp_smp.hot_run: needs at least 2 processors";
  let rig = Harness.make_rig ~cpus Harness.Rc_sys in
  let machine = rig.Harness.machine in
  let root = rig.Harness.root in
  let mk name attrs = Container.create ~parent:root ~name ~attrs () in
  let hot = mk "hot" (Attrs.timeshare ~priority:30 ()) in
  let half = mk "fixed-half" (Attrs.fixed_share ~share:0.5 ()) in
  let quarter = mk "fixed-quarter" (Attrs.fixed_share ~share:0.25 ()) in
  let filler = mk "besteffort" (Attrs.timeshare ~priority:10 ()) in
  let spin ~cpu ~name container =
    ignore
      (Machine.spawn machine ~cpu ~name ~container (fun () ->
           while true do
             Machine.cpu (Simtime.us 500)
           done))
  in
  spin ~cpu:0 ~name:"hot-spin" hot;
  spin ~cpu:1 ~name:"half-spin" half;
  spin ~cpu:1 ~name:"quarter-spin" quarter;
  spin ~cpu:1 ~name:"filler-spin" filler;
  Harness.run_for rig warmup;
  let used0 = List.map (fun c -> (c, Container.subtree_cpu c)) [ hot; half; quarter; filler ] in
  let busy0 = Machine.busy_time_on machine 0 in
  Harness.run_for rig measure;
  let share c =
    let before = List.assq c used0 in
    Simtime.ratio (Simtime.span_sub (Container.subtree_cpu c) before) measure
  in
  {
    h_points =
      [
        { h_name = "hot"; h_cpu = 0; h_guaranteed = 0.; h_measured = share hot };
        { h_name = "fixed-half"; h_cpu = 1; h_guaranteed = 0.5; h_measured = share half };
        {
          h_name = "fixed-quarter";
          h_cpu = 1;
          h_guaranteed = 0.25;
          h_measured = share quarter;
        };
        { h_name = "besteffort"; h_cpu = 1; h_guaranteed = 0.; h_measured = share filler };
      ];
    h_hot_cpu_busy =
      Simtime.ratio (Simtime.span_sub (Machine.busy_time_on machine 0) busy0) measure;
  }

let hot_table ?cpus ?warmup ?measure () =
  let r = hot_run ?cpus ?warmup ?measure () in
  let t =
    Engine.Series.table
      ~title:
        (Printf.sprintf
           "Extension: fixed shares under a saturated core (RC kernel, hot core %.0f%% \
            busy)"
           (100. *. r.h_hot_cpu_busy))
      ~columns:[ "container"; "processor"; "guaranteed share"; "measured share" ]
  in
  List.iter
    (fun p ->
      Engine.Series.add_row t
        [
          p.h_name;
          string_of_int p.h_cpu;
          (if p.h_guaranteed = 0. then "best effort"
           else Printf.sprintf "%.0f%%" (100. *. p.h_guaranteed));
          Printf.sprintf "%.1f%%" (100. *. p.h_measured);
        ])
    r.h_points;
  t
