module Simtime = Engine.Simtime
module Socket = Netsim.Socket
module Event_server = Httpsim.Event_server
module Sclient = Workload.Sclient

type point = {
  clients : int;
  throughput : float;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
}

let run ?(warmup = Simtime.sec 2) ?(measure = Simtime.sec 4) ?(persistent = false) system
    ~clients =
  let rig = Harness.make_rig system in
  let listen = Socket.make_listen ~port:Harness.default_port () in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~listens:[ listen ] ()
  in
  ignore (Event_server.start server);
  let load =
    Sclient.create ~stack:rig.Harness.stack ~port:Harness.default_port ~path:Harness.doc_path
      ~persistent ~jitter:(Simtime.ms 1) ~count:clients ()
  in
  Sclient.start load;
  Harness.run_for rig warmup;
  Sclient.reset_stats load;
  Harness.run_for rig measure;
  {
    clients;
    throughput = float_of_int (Sclient.completed load) /. Simtime.span_to_sec_f measure;
    mean_ms = Engine.Stats.Summary.mean (Sclient.response_times load);
    p50_ms = Sclient.response_percentile load 0.5;
    p99_ms = Sclient.response_percentile load 0.99;
  }

let figure ?(client_counts = [ 1; 2; 4; 8; 16; 32; 64 ]) ?warmup ?measure ?persistent
    ?(jobs = 1) system =
  let tput = Engine.Series.curve "throughput (req/s)" in
  let mean = Engine.Series.curve "mean (ms)" in
  let p50 = Engine.Series.curve "p50 (ms)" in
  let p99 = Engine.Series.curve "p99 (ms)" in
  let results =
    Harness.Sweep.map ~jobs
      (fun clients -> run ?warmup ?measure ?persistent system ~clients)
      (Array.of_list client_counts)
  in
  Array.iter
    (fun p ->
      let x = float_of_int p.clients in
      Engine.Series.add_point tput ~x ~y:p.throughput;
      Engine.Series.add_point mean ~x ~y:p.mean_ms;
      Engine.Series.add_point p50 ~x ~y:p.p50_ms;
      Engine.Series.add_point p99 ~x ~y:p.p99_ms)
    results;
  Engine.Series.figure
    ~title:
      (Printf.sprintf "Extension: latency vs offered load (%s kernel, 1KB cached)"
         (Harness.system_name system))
    ~x_label:"closed-loop clients" ~y_label:"req/s | ms" [ tput; mean; p50; p99 ]
