(** Extension: the latency/throughput trade-off of the baseline server.

    The paper reports mean response times at fixed load points; this
    experiment sweeps the number of closed-loop clients and records
    throughput alongside mean, median and tail (p99) latency — the classic
    hockey-stick curve that shows where the §5.3 saturation points sit.
    Run under any of the three kernel configurations. *)

type point = {
  clients : int;
  throughput : float;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
}

val run :
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?persistent:bool ->
  Harness.system ->
  clients:int ->
  point

val figure :
  ?client_counts:int list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?persistent:bool ->
  ?jobs:int ->
  Harness.system ->
  Engine.Series.figure
(** Curves: throughput, mean, p50, p99 over the client sweep (default
    1, 2, 4, 8, 16, 32, 64).  [jobs] fans the sweep across domains (see
    {!Harness.Sweep}). *)
