(* Cluster experiments: the multi-machine rig validated against queueing
   closed forms, plus the balancer-policy scenarios.

   [oracle] is the correctness anchor for the whole cluster layer.  The
   worker-pool server approximates processor sharing (many workers, small
   quantum), arrivals are Poisson, and consistent hashing on the flow
   hash splits the stream by per-arrival Bernoulli thinning — so every
   machine is approximately an M/G/1-PS station, whose mean response time
   has the insensitive closed form

       E[T](rho) = T0 / (1 - rho)

   with T0 the mean in-sojourn demand (measured once at near-zero load)
   and rho the measured per-machine utilisation.  A simulator bug
   anywhere in the path — balancing, steering, queueing, charging, the
   scheduler — shows up as a deviation from the curve.  The gate point
   runs 10^5+ concurrent connections (clients hold connections open after
   their response) and must match within 5%.

   [clone_pair] checks the replicated-dispatch (cloning) bound: issuing
   every request to d machines and taking the first response can only
   help, provided the per-machine load is held equal — E[min of d iid
   sojourns] <= E[single sojourn].

   [qos_table] is the differentiated-QoS scenario: one machine is
   SYN-flooded; least-connections balancing sees the flooded machine's
   half-open connections (tracked from SYN, §5.7) and routes around it,
   while round-robin keeps feeding it. *)

module Simtime = Engine.Simtime
module Dist = Engine.Dist
module Stats = Engine.Stats
module Machine = Procsim.Machine
module Ipaddr = Netsim.Ipaddr
module Cluster = Clustersim.Cluster
module Synflood = Workload.Synflood

(* --- the M/G/1-PS oracle -------------------------------------------- *)

type oracle_point = {
  op_machines : int;
  op_rate : float;  (* aggregate arrivals/s *)
  op_rho : float;  (* completion-weighted mean utilisation *)
  op_concurrent : int;  (* peak concurrent connections in the window *)
  op_completed : int;
  op_measured_ms : float;  (* mean request sojourn in the server *)
  op_predicted_ms : float;  (* T0 / (1 - rho), completion-weighted *)
  op_err_pct : float;
}

let service_mean_us = 400.

let make_oracle_cluster ?(shards = 1) ?domains ?window ?ring_bits ~machines ~rate ~hold
    ~seed () =
  let policy = if machines = 1 then Cluster.Round_robin else Cluster.Flow_hash in
  Cluster.create ~machines ~shards ?domains ?window ?ring_bits ~policy
    ~profile:(Cluster.Poisson rate)
    ~service:(Dist.exponential ~mean:(service_mean_us *. 1000.))
    ~hold ~seed ()

type calibration = {
  cal_t0 : float;  (* mean in-sojourn demand, seconds *)
  cal_demand : float;  (* total CPU demand per request, seconds *)
}

(* Near-zero load: the mean sojourn IS the mean in-sojourn demand (the
   request's own parse + service + write + its share of kernel rx/tx
   work), with no contention to inflate it.  Total demand per request —
   including the handshake, accept and teardown work that happens outside
   the request's sojourn — comes from the busy-time counter and is what
   utilisation targeting needs: with the default 400 us service the
   simulated kernel spends ~0.9 ms of CPU per request end to end. *)
let calibrate ?(seed = 42) () =
  let c = make_oracle_cluster ~machines:1 ~rate:50. ~hold:Simtime.span_zero ~seed () in
  Cluster.start c;
  Cluster.run_for c (Simtime.sec 1);
  Cluster.reset_stats c;
  let busy0 = Machine.busy_time (Cluster.node_machine c 0) in
  Cluster.run_for c (Simtime.sec 4);
  let busy =
    Simtime.span_to_sec_f (Simtime.span_sub (Machine.busy_time (Cluster.node_machine c 0)) busy0)
  in
  {
    cal_t0 = Stats.Summary.mean (Cluster.server_sojourn c);
    cal_demand = busy /. float_of_int (Cluster.completed c);
  }

let oracle_point ?(machines = 4) ?shards ?domains ?window ?(rate = 5_600.)
    ?(hold = Simtime.span_zero) ?(warmup = Simtime.sec 2) ?(measure = Simtime.sec 6)
    ?(seed = 42) ~t0 () =
  let c = make_oracle_cluster ?shards ?domains ?window ~machines ~rate ~hold ~seed () in
  Cluster.start c;
  Cluster.run_for c warmup;
  Cluster.reset_stats c;
  let busy0 =
    Array.init machines (fun i -> Machine.busy_time (Cluster.node_machine c i))
  in
  Cluster.run_for c measure;
  let w = Simtime.span_to_sec_f measure in
  (* Per-machine prediction (the hash ring's shares are uneven, so each
     machine runs at its own rho), averaged with completion weights. *)
  let num = ref 0. and den = ref 0 and rho_num = ref 0. in
  for i = 0 to machines - 1 do
    let served = Cluster.node_served c i in
    if served > 0 then begin
      let busy =
        Simtime.span_to_sec_f
          (Simtime.span_sub (Machine.busy_time (Cluster.node_machine c i)) busy0.(i))
      in
      let rho = Float.min 0.99 (busy /. w) in
      num := !num +. (float_of_int served *. (t0 /. (1. -. rho)));
      rho_num := !rho_num +. (float_of_int served *. rho);
      den := !den + served
    end
  done;
  let predicted = !num /. float_of_int !den in
  let rho = !rho_num /. float_of_int !den in
  let measured = Stats.Summary.mean (Cluster.server_sojourn c) in
  {
    op_machines = machines;
    op_rate = rate;
    op_rho = rho;
    op_concurrent = Cluster.peak_concurrent c;
    op_completed = Cluster.completed c;
    op_measured_ms = measured *. 1e3;
    op_predicted_ms = predicted *. 1e3;
    op_err_pct = 100. *. Float.abs (measured -. predicted) /. predicted;
  }

type oracle_result = { o_t0_ms : float; o_points : oracle_point list }

(* The response-time curve: per-machine arrival rate chosen for target
   utilisations via the calibrated per-request demand, all at hold 0 (the
   gate point with its 10^5 held connections runs separately —
   [gate_point]). *)
let oracle_curve ?(machines = 4) ?shards ?(rhos = [ 0.3; 0.5; 0.7 ]) ?warmup ?measure
    ?seed () =
  let cal = calibrate ?seed () in
  let points =
    List.map
      (fun rho ->
        let rate = float_of_int machines *. rho /. cal.cal_demand in
        oracle_point ~machines ?shards ~rate ?warmup ?measure ?seed ~t0:cal.cal_t0 ())
      rhos
  in
  { o_t0_ms = cal.cal_t0 *. 1e3; o_points = points }

(* The acceptance gate: >= 10^5 concurrent connections (rate x hold), a
   moderate per-machine utilisation (~0.62 at ~0.9 ms demand per
   request), and the closed form within 5%. *)
let gate_point ?(machines = 16) ?shards ?(rate = 10_800.) ?(hold = Simtime.sec 10) ?seed
    ?cal () =
  let cal = match cal with Some c -> c | None -> calibrate ?seed () in
  oracle_point ~machines ?shards ~rate ~hold ~warmup:(Simtime.sec 11)
    ~measure:(Simtime.sec 8) ?seed ~t0:cal.cal_t0 ()

(* --- the 10^6-concurrent-connection run ------------------------------ *)

type mega_point = {
  mp_machines : int;
  mp_shards : int;
  mp_domains : int;
  mp_rate : float;  (* aggregate arrivals/s *)
  mp_hold_s : float;
  mp_sim_seconds : float;  (* simulated seconds executed (warmup + measure) *)
  mp_peak_concurrent : int;
  mp_issued : int;
  mp_completed : int;
  mp_refused : int;
  mp_evicted : int;
}

(* The scale demonstration: ~10^6 concurrent connections (rate x hold =
   52,000/s x 20 s = 1.04M held open in steady state) across 64 machines,
   executed sharded.  A 2 ms dispatch window keeps the barrier count in
   the thousands rather than the hundreds of thousands (the window is the
   modeled balancer->machine dispatch latency, so widening it is a
   scenario choice, not an approximation — determinism holds at any
   width).  ring_bits 21 because more than 2^20 requests are in flight
   over a hold period.  Wall-clock measurement is the caller's business
   (the bench harness wraps this); the point itself reports simulated
   scale. *)
let mega_point ?(machines = 64) ?(shards = 8) ?domains ?(rate = 52_000.)
    ?(hold = Simtime.sec 20) ?(warmup = Simtime.sec 21) ?(measure = Simtime.sec 6)
    ?(window = Simtime.ms 2) ?(seed = 2026) () =
  let c =
    make_oracle_cluster ~shards ?domains ~window ~ring_bits:21 ~machines ~rate ~hold ~seed
      ()
  in
  Cluster.start c;
  Cluster.run_for c warmup;
  Cluster.reset_stats c;
  Cluster.run_for c measure;
  {
    mp_machines = machines;
    mp_shards = Cluster.shards c;
    mp_domains = Cluster.domains c;
    mp_rate = rate;
    mp_hold_s = Simtime.span_to_sec_f hold;
    mp_sim_seconds = Simtime.span_to_sec_f (Simtime.span_add warmup measure);
    mp_peak_concurrent = Cluster.peak_concurrent c;
    mp_issued = Cluster.issued c;
    mp_completed = Cluster.completed c;
    mp_refused = Cluster.refused c;
    mp_evicted = Cluster.evicted c;
  }

let oracle_table { o_t0_ms; o_points } =
  let t =
    Engine.Series.table
      ~title:
        (Printf.sprintf
           "Cluster vs M/G/1-PS closed form (flow-hash balancing, T0 = %.3f ms)" o_t0_ms)
      ~columns:
        [ "machines"; "rate/s"; "rho"; "peak conns"; "completed"; "measured ms";
          "predicted ms"; "err" ]
  in
  List.iter
    (fun p ->
      Engine.Series.add_row t
        [
          string_of_int p.op_machines;
          Printf.sprintf "%.0f" p.op_rate;
          Printf.sprintf "%.2f" p.op_rho;
          string_of_int p.op_concurrent;
          string_of_int p.op_completed;
          Printf.sprintf "%.3f" p.op_measured_ms;
          Printf.sprintf "%.3f" p.op_predicted_ms;
          Printf.sprintf "%.1f%%" p.op_err_pct;
        ])
    o_points;
  t

let point_json p =
  Engine.Jsonx.Obj
    [
      ("machines", Engine.Jsonx.Int p.op_machines);
      ("rate_per_sec", Engine.Jsonx.Float p.op_rate);
      ("rho", Engine.Jsonx.Float p.op_rho);
      ("peak_concurrent", Engine.Jsonx.Int p.op_concurrent);
      ("completed", Engine.Jsonx.Int p.op_completed);
      ("measured_ms", Engine.Jsonx.Float p.op_measured_ms);
      ("predicted_ms", Engine.Jsonx.Float p.op_predicted_ms);
      ("err_pct", Engine.Jsonx.Float p.op_err_pct);
    ]

let oracle_json ?gate { o_t0_ms; o_points } =
  Engine.Jsonx.Obj
    ([ ("t0_ms", Engine.Jsonx.Float o_t0_ms);
       ("points", Engine.Jsonx.List (List.map point_json o_points)) ]
    @ match gate with Some g -> [ ("gate", point_json g) ] | None -> [])

(* --- the cloning bound ---------------------------------------------- *)

type clone_pair = {
  c_single_ms : float;  (* mean client sojourn, single dispatch *)
  c_replicated_ms : float;  (* mean client sojourn, 2 clones, first wins *)
  c_single_completed : int;
  c_replicated_completed : int;
  c_ratio : float;
}

(* Same per-machine replica load on both sides: single dispatch at rate
   lambda vs 2 clones per request at rate lambda/2 — each machine sees
   lambda/N connection arrivals either way, so any client-side sojourn
   difference is the cloning effect (min of two iid sojourns), not a load
   difference.  Network constants appear on both sides and cancel in the
   comparison. *)
let clone_pair ?(machines = 4) ?(rate = 2_400.) ?(warmup = Simtime.sec 1)
    ?(measure = Simtime.sec 4) ?(seed = 1_234) () =
  let run policy rate =
    let c =
      Cluster.create ~machines ~policy ~profile:(Cluster.Poisson rate)
        ~service:(Dist.exponential ~mean:(service_mean_us *. 1000.))
        ~seed ()
    in
    Cluster.start c;
    Cluster.run_for c warmup;
    Cluster.reset_stats c;
    Cluster.run_for c measure;
    (Stats.Summary.mean (Cluster.client_sojourn c), Cluster.completed c)
  in
  let single_ms, single_n = run Cluster.Round_robin rate in
  let rep_ms, rep_n = run (Cluster.Replicate 2) (rate /. 2.) in
  {
    c_single_ms = single_ms *. 1e3;
    c_replicated_ms = rep_ms *. 1e3;
    c_single_completed = single_n;
    c_replicated_completed = rep_n;
    c_ratio = rep_ms /. single_ms;
  }

let clone_table p =
  let t =
    Engine.Series.table
      ~title:
        "Replicated dispatch (2 clones, first response wins) vs single dispatch at \
         equal per-machine load"
      ~columns:[ "dispatch"; "completed"; "mean client sojourn ms" ]
  in
  Engine.Series.add_row t
    [ "single"; string_of_int p.c_single_completed; Printf.sprintf "%.3f" p.c_single_ms ];
  Engine.Series.add_row t
    [
      "2 clones";
      string_of_int p.c_replicated_completed;
      Printf.sprintf "%.3f  (%.2fx)" p.c_replicated_ms p.c_ratio;
    ];
  t

(* --- differentiated QoS under a flooded machine ---------------------- *)

type qos_point = {
  q_policy : string;
  q_goodput : float;  (* completions/s *)
  q_sojourn_ms : float;  (* mean client sojourn *)
  q_flooded_share : float;  (* fraction of requests served by the flooded machine *)
  q_syn_drops : int;  (* on the flooded machine *)
}

(* One machine SYN-flooded from inside a tenant's own prefix (so the
   attack matches the tenant listen and fills its SYN queue).  Tracked
   connections include half-open ones, so least-connections sees the
   flood as load and routes around the machine; round-robin keeps
   sending every Nth request into it. *)
let qos_run ?(machines = 4) ?(rate = 1_800.) ?(flood_rate = 30_000.)
    ?(warmup = Simtime.sec 1) ?(measure = Simtime.sec 4) ?(seed = 77) ~policy () =
  let c =
    Cluster.create ~machines ~policy ~profile:(Cluster.Poisson rate)
      ~service:(Dist.exponential ~mean:(service_mean_us *. 1000.))
      ~seed ()
  in
  let flood =
    Synflood.create
      ~stack:(Cluster.node_stack c 0)
      ~src_base:(Ipaddr.offset (Cluster.tenant_prefix c 0) 1)
      ~src_count:256 ~port:80 ~rate_per_sec:flood_rate ()
  in
  Cluster.start c;
  Synflood.start flood;
  Cluster.run_for c warmup;
  Cluster.reset_stats c;
  let served0 = Array.init machines (Cluster.node_served c) in
  Cluster.run_for c measure;
  Synflood.stop flood;
  let served =
    Array.init machines (fun i -> Cluster.node_served c i - served0.(i))
  in
  let total = Array.fold_left ( + ) 0 served in
  let name =
    match policy with
    | Cluster.Round_robin -> "round-robin"
    | Cluster.Least_conns -> "least-conns"
    | Cluster.Flow_hash -> "flow-hash"
    | Cluster.Replicate d -> Printf.sprintf "replicate-%d" d
  in
  {
    q_policy = name;
    q_goodput = float_of_int (Cluster.completed c) /. Simtime.span_to_sec_f measure;
    q_sojourn_ms = Stats.Summary.mean (Cluster.client_sojourn c) *. 1e3;
    q_flooded_share =
      (if total = 0 then 0. else float_of_int served.(0) /. float_of_int total);
    q_syn_drops = (Netsim.Stack.stats (Cluster.node_stack c 0)).Netsim.Stack.syn_queue_drops;
  }

let qos_table ?machines ?rate ?flood_rate ?warmup ?measure ?seed () =
  let t =
    Engine.Series.table
      ~title:"Balancer policy under a SYN-flooded machine (machine 0 attacked)"
      ~columns:
        [ "policy"; "goodput req/s"; "mean sojourn ms"; "flooded-machine share";
          "flooded SYN drops" ]
  in
  List.iter
    (fun policy ->
      let p = qos_run ?machines ?rate ?flood_rate ?warmup ?measure ?seed ~policy () in
      Engine.Series.add_row t
        [
          p.q_policy;
          Printf.sprintf "%.0f" p.q_goodput;
          Printf.sprintf "%.3f" p.q_sojourn_ms;
          Printf.sprintf "%.0f%%" (100. *. p.q_flooded_share);
          string_of_int p.q_syn_drops;
        ])
    [ Cluster.Round_robin; Cluster.Least_conns ];
  t

(* --- tenant rollup table -------------------------------------------- *)

let tenant_table ?(machines = 4) ?(rate = 4_000.) ?(measure = Simtime.sec 3)
    ?(seed = 5) () =
  let tenants =
    [
      Cluster.tenant_spec "gold" ~weight:3
        ~attrs:(Rescont.Attrs.timeshare ~priority:30 ());
      Cluster.tenant_spec "bronze" ~weight:1
        ~attrs:(Rescont.Attrs.timeshare ~priority:10 ());
    ]
  in
  let c =
    Cluster.create ~machines ~profile:(Cluster.Poisson rate) ~tenants ~seed ()
  in
  Cluster.start c;
  Cluster.run_for c measure;
  let t =
    Engine.Series.table
      ~title:
        (Printf.sprintf
           "Cluster-wide tenant rollup over %d machines (3:1 arrival weights)" machines)
      ~columns:[ "tenant"; "cpu ms"; "rx KB"; "tx KB" ]
  in
  for k = 0 to Cluster.tenant_count c - 1 do
    let g = Cluster.tenant_group c k in
    Engine.Series.add_row t
      [
        Cluster.tenant_name c k;
        Printf.sprintf "%.1f" (float_of_int (Rescont.Rollup.cpu_ns g) /. 1e6);
        Printf.sprintf "%.0f" (float_of_int (Rescont.Rollup.rx_bytes g) /. 1024.);
        Printf.sprintf "%.0f" (float_of_int (Rescont.Rollup.tx_bytes g) /. 1024.);
      ]
  done;
  (match Cluster.rollup_law c with
  | Ok () -> ()
  | Error e -> failwith ("cluster.usage-rollup violated: " ^ e));
  t
