module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Filter = Netsim.Filter
module Ipaddr = Netsim.Ipaddr
module Machine = Procsim.Machine
module Disk = Disksim.Disk
module File_cache = Httpsim.File_cache
module Docset = Httpsim.Docset
module Sclient = Workload.Sclient

(* ROADMAP item 4, first scenario: Zipf-distributed popularity over
   10^5-10^6 documents with cache/disk eviction interplay and a flash
   crowd.  A guaranteed (premium) tenant and a best-effort crowd share one
   server whose cache holds ~1/8 of the corpus; misses go to the spindle.
   Mid-run a flash crowd arrives requesting documents {e uniformly} — the
   worst case for an LRU cache, since every request drags a cold tail
   document through it.  Under [Unmodified] the flash crowd's requests are
   served at equal priority: they thrash the cache and queue the disk, and
   the premium tenant collapses with them.  Under [Rc_sys] the premium
   container's priority holds at the CPU and the (container-aware) disk
   queue, and because the crowd is closed-loop its request rate — and so
   its cache-thrash rate — is throttled by its own starvation: scheduling
   QoS begets cache QoS. *)

let premium_base = Ipaddr.v 10 9 9 1

(* Document sizes cycle 1-8 KB so byte accounting (and the
   cache.bytes-consistency law) sees heterogeneous entries. *)
let doc_bytes i = 1024 * (1 + (i land 7))

(* One global docset per process: paths are interned once and shared by
   every rig in the sweep (ids are global; residency is per-cache). *)
let docset = Hashtbl.create 8

let doc_ids docs =
  match Hashtbl.find_opt docset docs with
  | Some ids -> ids
  | None ->
      let ids = Array.init docs (fun i -> Docset.intern (Printf.sprintf "/zipf/%d" i)) in
      Hashtbl.replace docset docs ids;
      ids

let corpus_bytes docs =
  let total = ref 0 in
  for i = 0 to docs - 1 do
    total := !total + doc_bytes i
  done;
  !total

type class_stats = { throughput : float; mean_ms : float }
type phase_stats = { premium : class_stats; crowd : class_stats; hit_rate : float }

type point = {
  system : Harness.system;
  docs : int;
  s : float;
  cache_frac : float; (* cache capacity / corpus bytes *)
  baseline : phase_stats; (* steady Zipf traffic *)
  spike : phase_stats; (* with the uniform flash crowd *)
  checks : int; (* invariant sweeps that ran during the point *)
}

let run_point ?(docs = 100_000) ?(warmup = Simtime.sec 1) ?(measure = Simtime.sec 2)
    ?(spike_measure = Simtime.sec 2) ~s system =
  let rig = Harness.make_rig system in
  let ids = doc_ids docs in
  let capacity_bytes = max 4096 (corpus_bytes docs / 8) in
  let cache = File_cache.create ~capacity_bytes () in
  Array.iteri (fun i id -> File_cache.add_doc cache ~doc:id ~bytes:(doc_bytes i)) ids;
  File_cache.register_metrics cache (Machine.metrics rig.Harness.machine);
  File_cache.register_invariants cache (Machine.invariants rig.Harness.machine);
  Machine.arm_invariants ~interval:(Simtime.ms 50) rig.Harness.machine;
  let disk = Disk.create ~machine:rig.Harness.machine () in
  (* The premium tenant holds a fixed-share {e guarantee} (40% of the
     CPU), not just a higher priority: the crowd runs freely in the
     timeshare residual until the flash crowd arrives, at which point the
     guarantee is what the RC system defends. *)
  let premium_c =
    Container.create ~parent:rig.Harness.root ~name:"zipf-premium"
      ~attrs:(Attrs.fixed_share ~share:0.4 ())
      ()
  and crowd_c =
    Container.create ~parent:rig.Harness.root ~name:"zipf-crowd"
      ~attrs:(Attrs.timeshare ~priority:10 ())
      ()
  in
  let listens =
    [
      Socket.make_listen ~port:Harness.default_port
        ~filter:(Filter.prefix ~template:premium_base ~bits:24)
        ~container:premium_c ();
      Socket.make_listen ~port:Harness.default_port ~container:crowd_c ();
    ]
  in
  let policy =
    match system with
    | Harness.Unmodified | Harness.Lrp_sys -> Httpsim.Event_server.No_containers
    | Harness.Rc_sys -> Httpsim.Event_server.Inherit_listen
  in
  let server =
    Httpsim.Threaded_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache ~disk ~workers:16 ~policy ~listens ()
  in
  Httpsim.Threaded_server.start server;
  let popularity = Engine.Dist.zipf ~n:docs ~s in
  (* Zipf with s = 0 is exactly the uniform categorical — the flash
     crowd's cache-worst-case request stream. *)
  let uniform = Engine.Dist.zipf ~n:docs ~s:0. in
  let premium =
    Sclient.create ~stack:rig.Harness.stack ~name:"premium" ~src_base:premium_base
      ~port:Harness.default_port ~doc_mix:(popularity, ids) ~syn_timeout:(Simtime.sec 30)
      ~jitter:(Simtime.ms 1) ~seed:3 ~count:6 ()
  in
  let crowd =
    Sclient.create ~stack:rig.Harness.stack ~name:"crowd" ~src_base:(Ipaddr.v 10 1 0 1)
      ~port:Harness.default_port ~doc_mix:(popularity, ids) ~syn_timeout:(Simtime.sec 30)
      ~jitter:(Simtime.ms 1) ~seed:5 ~count:12 ()
  in
  let flash =
    Sclient.create ~stack:rig.Harness.stack ~name:"flash" ~src_base:(Ipaddr.v 10 2 0 1)
      ~port:Harness.default_port ~doc_mix:(uniform, ids) ~syn_timeout:(Simtime.sec 30)
      ~jitter:(Simtime.ms 1) ~seed:7 ~count:40 ()
  in
  Sclient.start premium;
  Sclient.start crowd;
  (* Cold start: the warmup traffic itself populates the cache with the
     popular head, the state the paper's warm-cache experiments assume. *)
  Harness.run_for rig warmup;
  let phase window =
    Sclient.reset_stats premium;
    Sclient.reset_stats crowd;
    let hits0 = File_cache.hits cache and misses0 = File_cache.misses cache in
    Harness.run_for rig window;
    let stats c =
      {
        throughput = float_of_int (Sclient.completed c) /. Simtime.span_to_sec_f window;
        mean_ms = Engine.Stats.Summary.mean (Sclient.response_times c);
      }
    in
    let lookups = File_cache.hits cache + File_cache.misses cache - hits0 - misses0 in
    {
      premium = stats premium;
      crowd = stats crowd;
      hit_rate =
        (if lookups = 0 then 0.
         else float_of_int (File_cache.hits cache - hits0) /. float_of_int lookups);
    }
  in
  let baseline = phase measure in
  Sclient.start flash;
  let spike = phase spike_measure in
  {
    system;
    docs;
    s;
    cache_frac = float_of_int capacity_bytes /. float_of_int (corpus_bytes docs);
    baseline;
    spike;
    checks = Engine.Invariant.checks_run (Machine.invariants rig.Harness.machine);
  }

let default_exponents = [ 0.6; 0.9; 1.1 ]
let systems = [ Harness.Rc_sys; Harness.Unmodified ]

let run ?docs ?(exponents = default_exponents) ?warmup ?measure ?spike_measure () =
  List.concat_map
    (fun system ->
      List.map (fun s -> run_point ?docs ?warmup ?measure ?spike_measure ~s system) exponents)
    systems

let table points =
  let t =
    Engine.Series.table
      ~title:
        "Zipf corpus under a uniform flash crowd: premium QoS vs cache thrash \
         (throughput req/s, latency ms)"
      ~columns:
        [
          "system";
          "s";
          "phase";
          "premium req/s";
          "premium ms";
          "crowd req/s";
          "cache hit rate";
        ]
  in
  List.iter
    (fun p ->
      let row phase ps =
        Engine.Series.add_row t
          [
            Harness.system_name p.system;
            Printf.sprintf "%.1f" p.s;
            phase;
            Printf.sprintf "%.0f" ps.premium.throughput;
            Printf.sprintf "%.2f" ps.premium.mean_ms;
            Printf.sprintf "%.0f" ps.crowd.throughput;
            Printf.sprintf "%.1f%%" (100. *. ps.hit_rate);
          ]
      in
      row "steady" p.baseline;
      row "flash crowd" p.spike)
    points;
  t

let json ?docs points =
  let open Engine.Jsonx in
  let phase ps =
    Obj
      [
        ("premium_req_per_sec", Float ps.premium.throughput);
        ("premium_mean_ms", Float ps.premium.mean_ms);
        ("crowd_req_per_sec", Float ps.crowd.throughput);
        ("crowd_mean_ms", Float ps.crowd.mean_ms);
        ("cache_hit_rate", Float ps.hit_rate);
      ]
  in
  Obj
    [
      ("schema_version", Int 1);
      ("experiment", String "zipf");
      ("docs", Int (match (docs, points) with Some d, _ -> d | None, p :: _ -> p.docs | None, [] -> 0));
      ( "qos",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("system", String (Harness.system_name p.system));
                   ("s", Float p.s);
                   ("docs", Int p.docs);
                   ("cache_frac", Float p.cache_frac);
                   ("invariant_checks", Int p.checks);
                   ("baseline", phase p.baseline);
                   ("spike", phase p.spike);
                 ])
             points) );
    ]
