(** Figures 12 and 13 — controlling the resource usage of CGI processing
    (paper §5.6).

    A static load saturates the server while an increasing number of
    concurrent CGI requests, each consuming ~2 s of CPU, compete for the
    machine.  Figure 12 reports the throughput the static requests still
    achieve; Figure 13 reports the CPU share consumed by CGI processing.

    Four systems:
    - ["Unmodified"]: CGI processes timeshare equally with the server, but
      interrupt misaccounting lets the server keep more than its fair
      share.
    - ["LRP"]: accounting is fixed, so the server falls to exactly
      1/(N+1) — static throughput drops {e further}.
    - ["RC (30% cap)"] and ["RC (10% cap)"]: each CGI request's container
      is a child of a CGI-parent container whose fixed share and CPU limit
      cap all CGI work; static throughput stays nearly constant and the
      caps are enforced almost exactly. *)

type variant = Unmod | Lrp | Rc_capped of float

val variant_name : variant -> string

type point = { static_throughput : float; cgi_cpu_share : float }

val run :
  ?static_clients:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  variant ->
  concurrent_cgi:int ->
  point

val figures :
  ?cgi_counts:int list ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?jobs:int ->
  unit ->
  Engine.Series.figure * Engine.Series.figure
(** (Figure 12, Figure 13) over the default sweep 0..5 concurrent CGI
    requests, with the four systems as curves.  [jobs] fans the grid
    across domains (see {!Harness.Sweep}). *)
