(** Extension: a multi-point throughput sweep built for the parallel
    executor ({!Harness.Sweep}).

    The grid crosses the three kernel configurations with client counts
    and workload seeds; every point is an independent closed-loop
    simulation whose randomness derives only from its own seed.  The JSON
    report is emitted in grid order with no environment-dependent fields,
    so [~jobs:n] produces byte-identical output for every [n] — the
    determinism test diffs [jobs=1] against [jobs=4] literally. *)

type point = { system : Harness.system; clients : int; seed : int }

type result = {
  point : point;
  throughput : float;  (** completed requests per second over the window *)
  mean_ms : float;
  p99_ms : float;
  completed : int;
}

val grid :
  ?systems:Harness.system list ->
  ?client_counts:int list ->
  ?seeds:int list ->
  unit ->
  point array
(** Deterministically ordered cross product (systems, outermost, then
    client counts, then seeds).  Defaults: all three systems × {4, 16}
    clients × seeds {1, 2}. *)

val run :
  ?cpus:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  point ->
  result
(** Run one point (default 1 s warmup, 2 s measurement).  [cpus]
    (default 1) runs the point's rig on an SMP machine with one run-queue
    shard per processor. *)

val run_grid :
  ?cpus:int ->
  ?warmup:Engine.Simtime.span ->
  ?measure:Engine.Simtime.span ->
  ?jobs:int ->
  point array ->
  result array
(** Run every point, fanned across [jobs] domains, results in grid
    order. *)

val report_json : result array -> Engine.Jsonx.t
val report_string : result array -> string
(** Compact one-line JSON document plus trailing newline. *)
