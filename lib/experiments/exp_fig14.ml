module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Socket = Netsim.Socket
module Filter = Netsim.Filter
module Ipaddr = Netsim.Ipaddr
module Event_server = Httpsim.Event_server
module Sclient = Workload.Sclient
module Synflood = Workload.Synflood

type variant = Unmod_flood | Lrp_flood | Rc_filtered

let variant_name = function
  | Unmod_flood -> "Unmodified System"
  | Lrp_flood -> "LRP System"
  | Rc_filtered -> "With Resource Containers"

let flood_base = Ipaddr.v 192 168 66 0

let throughput ?(good_clients = 24) ?(warmup = Simtime.sec 2) ?(measure = Simtime.sec 5)
    variant ~syn_rate =
  let system =
    match variant with
    | Unmod_flood -> Harness.Unmodified
    | Lrp_flood -> Harness.Lrp_sys
    | Rc_filtered -> Harness.Rc_sys
  in
  let rig = Harness.make_rig system in
  let listens =
    match variant with
    | Unmod_flood | Lrp_flood ->
        (* LRP has no source-address filtering (§5.7): one shared listen
           socket, flood and legitimate traffic in the same queue. *)
        [ Socket.make_listen ~port:Harness.default_port () ]
    | Rc_filtered ->
        (* The filter mechanism of §4.8: a listen socket covering the
           attacker's prefix, bound to a priority-0 container. *)
        let main_container =
          Container.create ~parent:rig.Harness.root ~name:"service"
            ~attrs:(Attrs.timeshare ~priority:10 ())
            ()
        and flood_container =
          Container.create ~parent:rig.Harness.root ~name:"attackers"
            ~attrs:(Attrs.timeshare ~priority:0 ())
            ()
        in
        [
          Socket.make_listen ~port:Harness.default_port
            ~filter:(Filter.prefix ~template:flood_base ~bits:24)
            ~container:flood_container ~syn_backlog:64 ();
          Socket.make_listen ~port:Harness.default_port ~container:main_container ();
        ]
  in
  let server =
    Event_server.create ~stack:rig.Harness.stack ~process:rig.Harness.server_proc
      ~cache:rig.Harness.cache ~api:Event_server.Select
      ~policy:
        (match variant with
        | Unmod_flood | Lrp_flood -> Event_server.No_containers
        | Rc_filtered -> Event_server.Inherit_listen)
      ~listens ()
  in
  ignore (Event_server.start server);
  let good =
    Sclient.create ~stack:rig.Harness.stack ~name:"good" ~port:Harness.default_port
      ~path:Harness.doc_path ~count:good_clients ()
  in
  Sclient.start good;
  (if syn_rate > 0. then begin
     let flood =
       Synflood.create ~stack:rig.Harness.stack ~src_base:(Ipaddr.offset flood_base 1)
         ~src_count:254 ~port:Harness.default_port ~rate_per_sec:syn_rate ()
     in
     Synflood.start flood
   end);
  Harness.run_for rig warmup;
  Sclient.reset_stats good;
  Harness.run_for rig measure;
  float_of_int (Sclient.completed good) /. Simtime.span_to_sec_f measure

let variants = [ Rc_filtered; Lrp_flood; Unmod_flood ]

let figure ?(rates = [ 0.; 10_000.; 20_000.; 30_000.; 40_000.; 50_000.; 60_000.; 70_000. ])
    ?warmup ?measure ?(jobs = 1) () =
  let points =
    Array.of_list (List.concat_map (fun v -> List.map (fun r -> (v, r)) rates) variants)
  in
  let ys =
    Harness.Sweep.map ~jobs
      (fun (v, rate) -> throughput ?warmup ?measure v ~syn_rate:rate)
      points
  in
  let per_variant = List.length rates in
  let curve_of i variant =
    let curve = Engine.Series.curve (variant_name variant) in
    List.iteri
      (fun k rate ->
        Engine.Series.add_point curve ~x:(rate /. 1000.) ~y:ys.((i * per_variant) + k))
      rates;
    curve
  in
  Engine.Series.figure ~title:"Figure 14: server behavior under SYN-flood attack"
    ~x_label:"SYN-flood rate (1000s of SYNs/sec)" ~y_label:"HTTP throughput (requests/sec)"
    (List.mapi curve_of variants)
