module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Stats = Engine.Stats
module Machine = Procsim.Machine
module Socket = Netsim.Socket
module Stack = Netsim.Stack
module Ipaddr = Netsim.Ipaddr
module Http = Httpsim.Http

type client = {
  index : int;
  src : Ipaddr.t;
  mutable attempt : int; (* invalidates callbacks of abandoned attempts *)
  mutable established : bool; (* current attempt reached establishment *)
  mutable issued : Simtime.t; (* when the current request was initiated *)
  mutable remaining : int; (* requests left on the current connection *)
  mutable handlers : Socket.client_handlers;
      (* one preallocated record per client, not one per attempt: the
         attempt number rides in the connection's ephemeral source port,
         so the shared callbacks can tell live events from stale ones *)
}

type t = {
  stack : Stack.t;
  name : string;
  port : int;
  doc : int; (* interned [path] *)
  doc_mix : (Engine.Dist.t * int array) option;
  persistent : bool;
  requests_per_conn : int;
  think_time : Simtime.span;
  jitter : Simtime.span;
  rng : Engine.Rng.t;
  syn_timeout : Simtime.span;
  retry_delay : Simtime.span;
  clients : client array;
  mutable running : bool;
  mutable started : bool;
  mutable completed : int;
  mutable refused : int;
  mutable timeouts : int;
  mutable latencies : Stats.Summary.t;
  mutable reservoir : Stats.Reservoir.t;
  mutable marks : Stats.Rate.t; (* completion timestamps, bounded ring *)
}

(* Big enough that no experiment in the suite wraps the ring (the busiest
   runs complete a few thousand requests per simulated second); unlike the
   unbounded list it used to be, memory stays O(1) over long soaks. *)
let marks_capacity = 1 lsl 16

let create ~stack ?(name = "clients") ?(src_base = Ipaddr.v 10 1 0 1) ?(port = 80)
    ?(path = "/doc/1k") ?path_mix ?doc_mix ?(persistent = false) ?(requests_per_conn = 64)
    ?(think_time = Simtime.span_zero) ?(jitter = Simtime.span_zero)
    ?(syn_timeout = Simtime.sec 3) ?(retry_delay = Simtime.ms 500) ?(seed = 42) ~count () =
  if count <= 0 then invalid_arg "Sclient.create: count must be positive";
  let clients =
    Array.init count (fun index ->
        {
          index;
          src = Ipaddr.offset src_base index;
          attempt = 0;
          established = false;
          issued = Simtime.zero;
          remaining = 0;
          handlers = Socket.null_handlers;
        })
  in
  (* Everything downstream works in interned doc ids; [path]/[path_mix]
     are the string compat view over [doc]/[doc_mix].  The empirical
     index distribution consumes the random stream exactly as it always
     has (one float draw per request), so existing seeds replay. *)
  let doc_mix =
    match (path_mix, doc_mix) with
    | Some _, Some _ -> invalid_arg "Sclient.create: both path_mix and doc_mix given"
    | None, mix -> mix
    | Some [], None -> invalid_arg "Sclient.create: empty path mix"
    | Some pairs, None ->
        let weights = Array.of_list (List.map fst pairs) in
        let docs =
          Array.of_list (List.map (fun (_, path) -> Httpsim.Docset.intern path) pairs)
        in
        let dist =
          Engine.Dist.empirical (Array.mapi (fun i w -> (w, float_of_int i)) weights)
        in
        Some (dist, docs)
  in
  (match doc_mix with
  | Some (_, [||]) -> invalid_arg "Sclient.create: empty doc mix"
  | Some _ | None -> ());
  {
    stack;
    name;
    port;
    doc = Httpsim.Docset.intern path;
    doc_mix;
    persistent;
    requests_per_conn;
    think_time;
    jitter;
    rng = Engine.Rng.create ~seed;
    syn_timeout;
    retry_delay;
    clients;
    running = false;
    started = false;
    completed = 0;
    refused = 0;
    timeouts = 0;
    latencies = Stats.Summary.create ();
    reservoir = Stats.Reservoir.create (Engine.Rng.create ~seed:(seed + 1));
    marks = Stats.Rate.create ~capacity:marks_capacity ();
  }

let sim t = Machine.sim (Stack.machine t.stack)
let now t = Sim.now (sim t)
let after t span f = Sim.post (sim t) span f

(* Think time with optional uniform jitter, de-phasing closed loops. *)
let think t =
  let extra =
    let jitter_ns = Simtime.span_to_ns t.jitter in
    if jitter_ns <= 0 then 0 else Engine.Rng.int t.rng (jitter_ns + 1)
  in
  Simtime.span_add t.think_time (Simtime.span_of_ns extra)

let record_response t client =
  t.completed <- t.completed + 1;
  Stats.Rate.mark t.marks (now t);
  let latency_ms = Simtime.span_to_ms_f (Simtime.diff (now t) client.issued) in
  Stats.Summary.add t.latencies latency_ms;
  Stats.Reservoir.add t.reservoir latency_ms

let pick_doc t =
  match t.doc_mix with
  | None -> t.doc
  | Some (dist, docs) -> docs.(Engine.Dist.sample_index dist t.rng)

let request_payload t ~created =
  Http.request_doc ~now:created ~keep_alive:t.persistent ~doc:(pick_doc t) ()

let rec initiate t client =
  if t.running then begin
    client.attempt <- client.attempt + 1;
    let attempt = client.attempt in
    client.established <- false;
    client.issued <- now t;
    client.remaining <- (if t.persistent then t.requests_per_conn else 1);
    (* The attempt number rides in the ephemeral source port (real clients
       vary it per connection), so the connection objects handed back to
       the shared per-client handlers identify the attempt they belong to
       without a fresh closure set per attempt. *)
    Stack.connect t.stack ~src:client.src ~src_port:attempt ~port:t.port
      ~handlers:client.handlers ();
    (* SYNs can vanish silently (queue overflow, idle-class early discard):
       retransmit like TCP after a timeout. *)
    after t t.syn_timeout (fun () ->
        if t.running && client.attempt = attempt && not client.established then begin
          t.timeouts <- t.timeouts + 1;
          initiate t client
        end)
  end

and send_request t client conn =
  client.issued <- now t;
  Stack.client_send t.stack conn (request_payload t ~created:client.issued)

(* The one handlers record this client ever uses.  A connection belongs to
   the current attempt iff its source port equals [client.attempt];
   events from an abandoned attempt's connection fail that test and are
   dropped, exactly as the old per-attempt closures' captured counter
   did.  Refusals carry no connection: one can only be in flight while
   the current attempt is unestablished, which the guard checks. *)
and make_handlers t client =
  {
    Socket.on_established =
      (fun conn ->
        if t.running && conn.Socket.src_port = client.attempt then begin
          client.established <- true;
          send_request t client conn
        end);
    on_refused =
      (fun () ->
        if t.running && not client.established then begin
          t.refused <- t.refused + 1;
          let attempt = client.attempt in
          after t t.retry_delay (fun () ->
              if t.running && client.attempt = attempt then initiate t client)
        end);
    on_response =
      (fun conn _payload ->
        if conn.Socket.src_port = client.attempt then begin
          record_response t client;
          client.remaining <- client.remaining - 1;
          let attempt = client.attempt in
          if t.persistent && client.remaining > 0 then
            after t (think t) (fun () ->
                if t.running && client.attempt = attempt then send_request t client conn)
          else if t.persistent then begin
            Stack.client_close t.stack conn;
            after t (think t) (fun () ->
                if t.running && client.attempt = attempt then initiate t client)
          end
          (* Non-persistent: the server closes the connection after the
             response, and the loop restarts from [on_closed]. *)
        end);
    on_closed =
      (fun conn ->
        if t.running && conn.Socket.src_port = client.attempt && not t.persistent then begin
          let attempt = client.attempt in
          after t (think t) (fun () ->
              if t.running && client.attempt = attempt then initiate t client)
        end);
  }

let start t =
  t.running <- true;
  if not t.started then begin
    t.started <- true;
    Array.iter
      (fun client ->
        if client.handlers == Socket.null_handlers then
          client.handlers <- make_handlers t client;
        initiate t client)
      t.clients
  end

let stop t = t.running <- false
let completed t = t.completed
let refused t = t.refused
let timeouts t = t.timeouts
let response_times t = t.latencies

let response_percentile t frac =
  if Stats.Reservoir.count t.reservoir = 0 then 0.
  else Stats.Reservoir.percentile t.reservoir frac

let reset_stats t =
  t.completed <- 0;
  t.refused <- 0;
  t.timeouts <- 0;
  t.marks <- Stats.Rate.create ~capacity:marks_capacity ();
  t.latencies <- Stats.Summary.create ();
  t.reservoir <- Stats.Reservoir.create (Engine.Rng.create ~seed:1)

let completions_in t t0 t1 =
  (* The marks ring is bounded; if completions ever arrive fast enough to
     wrap it inside the queried window (open-loop cluster rates can),
     counting only the retained marks would silently under-report.  Fail
     loudly instead: the caller must query a window the ring still covers
     (reset_stats at the window start guarantees that for the suite's
     measure windows). *)
  (match Stats.Rate.covered_since t.marks with
  | Some covered when Simtime.compare t0 covered < 0 ->
      invalid_arg
        (Printf.sprintf
           "Sclient.completions_in: %d completion marks dropped before the queried window; \
            reset_stats at the window start or raise the ring capacity"
           (Stats.Rate.dropped t.marks))
  | _ -> ());
  let lo = Simtime.to_ns t0 and hi = Simtime.to_ns t1 in
  Stats.Rate.fold_marks t.marks
    (fun acc ts w -> if ts >= lo && ts < hi then acc + w else acc)
    0

(* [name] is carried for diagnostics in traces. *)
let _ = fun t -> t.name
