(** S-Client-style closed-loop HTTP client populations (paper §5.2,
    citation [4]).

    Each simulated client runs a closed loop: open a connection (or reuse a
    persistent one), issue a request, wait for the response, think, repeat.
    Clients are event-driven (they live on the "infinitely fast" client
    machines), so any number of them cost the simulated server only their
    traffic.

    Connection attempts that die silently (SYN dropped by an overloaded or
    defended server) are retried after a TCP-like timeout, as the paper's
    S-Clients do. *)

type t

val create :
  stack:Netsim.Stack.t ->
  ?name:string ->
  ?src_base:Netsim.Ipaddr.t ->
  ?port:int ->
  ?path:string ->
  ?path_mix:(float * string) list ->
  ?doc_mix:Engine.Dist.t * int array ->
  ?persistent:bool ->
  ?requests_per_conn:int ->
  ?think_time:Engine.Simtime.span ->
  ?jitter:Engine.Simtime.span ->
  ?syn_timeout:Engine.Simtime.span ->
  ?retry_delay:Engine.Simtime.span ->
  ?seed:int ->
  count:int ->
  unit ->
  t
(** [count] clients with source addresses [src_base + i] (default base
    10.1.0.1), requesting [path] (default "/doc/1k") on [port] (default
    80).  [persistent] (default false) switches to HTTP/1.1 with
    [requests_per_conn] requests per connection (default 64).  Defaults:
    zero think time and jitter, 3 s SYN timeout, 500 ms retry delay.
    [jitter] adds a uniform random extra think time in [0, jitter],
    de-phasing otherwise deterministic closed loops; [seed] makes the
    jitter stream reproducible.  [path_mix], when given, overrides [path]
    with a weighted choice per request (e.g. a Zipf-popularity document
    set).  [doc_mix] is the scale form of the same thing: a finite
    categorical distribution (see {!Engine.Dist.sample_index}) over an
    array of interned {!Httpsim.Docset} ids — how a 10^6-document Zipf
    population is expressed without materializing weighted path pairs.
    Giving both mixes is an error. *)

val start : t -> unit
(** Begin all client loops (idempotent). *)

val stop : t -> unit
(** Stop initiating new requests; in-flight exchanges finish naturally. *)

val completed : t -> int
(** Total responses received. *)

val refused : t -> int
val timeouts : t -> int

val response_times : t -> Engine.Stats.Summary.t
(** Per-request latency (initiation to response) in milliseconds. *)

val response_percentile : t -> float -> float
(** Latency percentile estimate in milliseconds (reservoir-sampled);
    0. when no responses have been recorded.
    @raise Invalid_argument if the fraction is outside [0, 1]. *)

val reset_stats : t -> unit
(** Zero the counters and latency summary (end-of-warmup). *)

val completions_in : t -> Engine.Simtime.t -> Engine.Simtime.t -> int
(** Responses received within the half-open window (for steady-state
    throughput measurements).
    @raise Invalid_argument if completion marks inside the window have
    been dropped by the bounded ring (the count would silently
    under-report); call {!reset_stats} at the window start, or widen the
    ring, rather than trusting a partial count. *)
