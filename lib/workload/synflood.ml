module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Stack = Netsim.Stack
module Ipaddr = Netsim.Ipaddr

type t = {
  stack : Stack.t;
  src_base : Ipaddr.t;
  src_count : int;
  port : int;
  rng : Engine.Rng.t option;
  rate : float;
  mutable running : bool;
  mutable sent : int;
  mutable next_src : int;
}

let create ~stack ?(src_base = Ipaddr.v 192 168 66 1) ?(src_count = 256) ?(port = 80) ?rng
    ~rate_per_sec () =
  if rate_per_sec <= 0. then invalid_arg "Synflood.create: rate must be positive";
  if src_count <= 0 then invalid_arg "Synflood.create: src_count must be positive";
  { stack; src_base; src_count; port; rng; rate = rate_per_sec; running = false; sent = 0;
    next_src = 0 }

let sim t = Procsim.Machine.sim (Stack.machine t.stack)

let gap t =
  let mean_ns = 1e9 /. t.rate in
  match t.rng with
  | None -> Simtime.span_of_ns (int_of_float mean_ns)
  | Some rng ->
      let u = 1. -. Engine.Rng.float rng 1. in
      Simtime.span_of_ns (max 1 (int_of_float (-.mean_ns *. log u)))

let rec fire t =
  if t.running then begin
    let src = Ipaddr.offset t.src_base t.next_src in
    t.next_src <- (t.next_src + 1) mod t.src_count;
    Stack.inject_syn t.stack ~src ~port:t.port;
    t.sent <- t.sent + 1;
    Sim.post (sim t) (gap t) (fun () -> fire t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Sim.post (sim t) (gap t) (fun () -> fire t)
  end

let stop t = t.running <- false
let sent t = t.sent

(* The smallest power-of-two block covering the configured sources. *)
let source_prefix t =
  let rec bits_for n acc = if n <= 1 then acc else bits_for ((n + 1) / 2) (acc - 1) in
  (t.src_base, bits_for t.src_count 32)
