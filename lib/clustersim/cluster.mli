(** Cluster scale-out: N server machines behind one L4 load balancer,
    executed as ONE sharded deterministic simulation.

    Every machine is a full single-server rig — its own {!Procsim.Machine}
    (optionally SMP), container hierarchy, invariant registry and
    {!Netsim.Stack}.  Machine [i] runs in event core [i mod shards]; the
    balancer (the open-loop client population) runs in shard 0.  Shards
    advance in lockstep time windows under {!Engine.Shard}'s conservative
    barrier protocol: the window length equals the balancer→machine
    dispatch latency (a SYN's wire time by default), every cross-shard
    message travels through a per-node mailbox drained at the barrier in a
    canonical order, and therefore the run is a pure function of the seed
    — [shards = N] is byte-identical to [shards = 1], whatever the domain
    count, because the windowed mailbox protocol is the only execution
    path.  [~window:Engine.Simtime.span_zero] opts out into the
    pre-sharding synchronous semantics (direct injection, live least-conns
    counts) and is only legal at [shards = 1].

    An open-loop arrival process (Poisson or a step/spike profile) plays
    the client population: each logical request opens a connection to a
    machine chosen by the balancer policy, sends one request on
    establishment, holds the connection for [hold] after the response, and
    closes.  Holding is how the cluster reaches 10^5-10^6 concurrent
    connections at moderate arrival rates: the steady-state population is
    roughly [rate × hold].

    Tenants are resource principals that span machines: one container per
    machine (accepted connections bind to it via filter-matched listens,
    §4.6+§4.8) and a {!Rescont.Rollup} group aggregating the per-machine
    ledgers into cluster totals, certified by the "cluster.usage-rollup"
    law in the cluster-level registry — checked at rollup barriers and at
    every {!run_for} horizon.  Each machine's containers live in their own
    ledger arena, so concurrent shards never share accounting arrays. *)

type policy =
  | Round_robin
  | Least_conns
      (** fewest tracked connections; ties to the lowest index.  Under the
          windowed protocol the counts are the previous barrier's snapshot
          (stale by at most one window) — live counts would depend on the
          shard count; synchronous mode reads live counts. *)
  | Flow_hash
      (** consistent hashing on {!Netsim.Stack.flow_hash} — per-arrival
          Bernoulli thinning of the Poisson stream, so each machine sees a
          Poisson process (the property the PS oracle needs) *)
  | Replicate of int
      (** the cloning model: [d] clones per logical request on distinct
          consecutive machines; first response wins, later ones count as
          {!dup_responses} *)

type profile =
  | Poisson of float  (** arrivals per second *)
  | Spike of { base : float; peak : float; at : Engine.Simtime.span; until : Engine.Simtime.span }
      (** [base] arrivals/s, stepping to [peak] between [at] and [until]
          (offsets from {!start}) *)

type tenant_spec

val tenant_spec : ?weight:int -> ?attrs:Rescont.Attrs.t -> string -> tenant_spec
(** A tenant: [weight] (default 1) is its share of the arrival stream;
    [attrs] (default timeshare) the attributes of its per-machine
    containers. *)

type t

val create :
  ?backend:Engine.Sim.backend ->
  ?machines:int ->
  ?shards:int ->
  ?domains:int ->
  ?cpus:int ->
  ?mode:Netsim.Stack.mode ->
  ?policy:policy ->
  ?profile:profile ->
  ?service:Engine.Dist.t ->
  ?request_bytes:int ->
  ?response_bytes:int ->
  ?hold:Engine.Simtime.span ->
  ?workers:int ->
  ?quantum:Engine.Simtime.span ->
  ?rollup_period:Engine.Simtime.span ->
  ?ring_bits:int ->
  ?syn_backlog:int ->
  ?latency:Engine.Simtime.span ->
  ?window:Engine.Simtime.span ->
  ?tenants:tenant_spec list ->
  ?seed:int ->
  unit ->
  t
(** Defaults: 4 machines × 1 CPU, 1 shard, [Rc] mode, round-robin,
    Poisson 1000/s, exponential 400 µs service (sampled in nanoseconds of
    CPU burn), 256 B requests, 4 KB responses, zero hold, 32 workers per
    machine, 50 µs quantum (workers approximate processor sharing), 10 ms
    rollup period, 2^20-entry in-flight rings, one unit-weight tenant.

    [shards] partitions the machines over that many event cores
    (clamped to [machines]); [domains] caps how many OS domains run them
    (default: min of shards and the host's recommended domain count — see
    {!Engine.Shard.create}).  [latency] is each stack's one-way wire
    latency (default 150 µs); [window] overrides the dispatch window
    (default: a SYN's wire time, {!Netsim.Stack.syn_delivery_delay} — the
    largest conservative lookahead).  A larger window amortises barriers
    at the price of added dispatch latency; a zero window selects the
    synchronous single-core semantics and requires [shards = 1].

    The server on each machine is a worker pool over an edge-triggered
    ready queue ({!Netsim.Stack.set_on_readable}): O(1) per wakeup however
    many connections are open.
    @raise Invalid_argument on [shards > 1] with a zero window. *)

val start : t -> unit
(** Spawn the worker pools and begin the arrival process.  Call once;
    drive the cluster with {!run_for}. *)

val run_for : t -> Engine.Simtime.span -> unit
(** Advance the whole cluster by [span]: windowed barrier execution across
    the shards (parallel when [domains > 1]), then a horizon quiesce that
    checks every machine's invariant registry and the cluster-level laws.
    May be called repeatedly; windows never straddle a call boundary. *)

val stop_arrivals : t -> unit
(** Stop injecting new connections (existing ones drain normally). *)

val arm_invariants : ?interval:Engine.Simtime.span -> t -> unit
(** Arm every machine's registry for periodic sweeps and strict memory
    accounting (worker domains inherit the strict flag), plus the
    cluster-level law checks at rollup barriers. *)

val check_invariants : t -> Engine.Invariant.violation list
(** Run every machine's laws and the cluster-level laws once, collecting
    violations. *)

val rollup_law : t -> (unit, string) result
(** Check just the cluster usage-rollup conservation law. *)

(** {1 Introspection} *)

val sim : t -> Engine.Sim.t
(** Shard 0's event core (the balancer's).  At [shards = 1] this is the
    only one; cross-machine schedules (fuzz fault injection) must target
    [Machine.sim] of the victim machine instead. *)

val now : t -> Engine.Simtime.t
val machines : t -> int

val shards : t -> int
val domains : t -> int
(** Actual counts after clamping (see {!create}). *)

val lookahead : t -> Engine.Simtime.span
(** The dispatch window / conservative lookahead in force; zero means
    synchronous mode. *)

val node_machine : t -> int -> Procsim.Machine.t
val node_stack : t -> int -> Netsim.Stack.t
val node_root : t -> int -> Rescont.Container.t
val node_served : t -> int -> int

val concurrent : t -> int
(** Live (non-closed) connections across all machines, right now. *)

val peak_concurrent : t -> int
(** Largest {!concurrent} seen at a rollup tick since the last
    {!reset_stats}. *)

val busy_total : t -> Engine.Simtime.span
(** Sum of every machine's consumed CPU time. *)

val tenant_count : t -> int
val tenant_name : t -> int -> string
val tenant_group : t -> int -> Rescont.Rollup.group
val tenant_container : t -> tenant:int -> node:int -> Rescont.Container.t
val tenant_prefix : t -> int -> Netsim.Ipaddr.t
val rollup : t -> Rescont.Rollup.t

(** {1 Request accounting} *)

val issued : t -> int
(** Logical requests injected. *)

val completed : t -> int
(** Logical requests answered (clone responses deduplicated). *)

val refused : t -> int
(** Connection attempts refused (per clone, not per logical request). *)

val dup_responses : t -> int
(** Clone responses that arrived after their request was already won. *)

val evicted : t -> int
(** In-flight ring entries overwritten before completing (ring too small
    for the concurrency — raise [ring_bits]). *)

val client_sojourn : t -> Engine.Stats.Summary.t
(** Connect → first response, in seconds, per logical request. *)

val server_sojourn : t -> Engine.Stats.Summary.t
(** Request arrival at the NIC → response handed to the wire, in seconds,
    per served request (clones included) — the PS-oracle observable: the
    arrival instant is recovered from the request's send stamp plus its
    wire time, so network round trips are excluded while the whole
    in-server path (kernel rx processing, worker queueing, parse, service,
    write) is covered.  Accumulated per node and merged in node order, so
    the value is shard-count independent. *)

val reset_stats : t -> unit
(** Zero the request counters and distributions (measurement-window
    bracketing); machine busy-time counters are monotonic — snapshot them
    with {!busy_total} / {!node_machine} instead. *)
