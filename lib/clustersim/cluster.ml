(* Cluster scale-out: many server machines behind one L4 load balancer,
   executed as one sharded deterministic simulation.

   Every machine is a full PR-7 rig — its own [Procsim.Machine] (optionally
   SMP), container hierarchy, invariant registry and [Netsim.Stack] — and
   machine i's event core is the shard-(i mod shards) [Engine.Sim].  The
   balancer (the open-loop client population) runs in shard 0.  Shards
   advance in lockstep time windows under [Engine.Shard]'s conservative
   barrier protocol; the window length equals the balancer->machine
   dispatch latency (the SYN's wire time by default), which is exactly the
   lookahead that makes the protocol conservative:

   - The balancer never touches a machine directly.  An arrival is three
     ints (deliver_ns, seq, tenant index) pushed into the target node's
     dispatch mailbox; the barrier drains the mailboxes in node order and
     posts each SYN into the target machine's sim with
     [Stack.inject_connect_at] at deliver_ns >= the window end.
   - A machine never touches the balancer.  A response is two ints
     (time_ns, seq) pushed into the node's completion mailbox; the barrier
     merges all completion mailboxes by (time, node index, per-node FIFO)
     and applies them to the in-flight rings, counters and sojourn summary
     in that canonical order.

   Because this windowed mailbox protocol is the ONLY execution path (a
   shards=1 run uses the same mailboxes, the same barriers and the same
   drain orders), shards=N is byte-identical to shards=1 by construction:
   nothing observable depends on the shard count, the domain count, the
   wall clock or domain identity.  [~window:Simtime.span_zero] opts out
   into the synchronous pre-sharding semantics (direct injection, live
   least-conns counts) and is only legal at shards=1 — zero lookahead
   cannot be made conservative.

   Tenants are the paper's resource principals stretched across machines:
   each tenant owns one container per machine (filter-matched listens bind
   accepted connections to it, §4.6+§4.8) and a [Rescont.Rollup] group
   aggregates the per-machine ledgers into cluster-wide totals, certified
   by the "cluster.usage-rollup" conservation law in the cluster-level
   registry, checked at rollup barriers and at every [run_for] horizon.
   Each machine's containers live in their own ledger arena
   ([Usage.renew_domain_arena] per node), so two domains never write the
   same accounting arrays.

   The server application on each machine is a worker pool over an
   edge-triggered ready queue ([Stack.set_on_readable]): O(1) per wakeup,
   so a machine can hold 10^5+ open connections without the O(conns)
   select-style scan of the single-machine experiments.  Workers serve one
   request per connection (parse, a sampled service burn, respond) and
   leave the connection open; the client holds it for [hold] and then
   closes — that is how the cluster reaches 10^5-10^6 concurrent
   connections at moderate arrival rates. *)

module Sim = Engine.Sim
module Simtime = Engine.Simtime
module Rng = Engine.Rng
module Dist = Engine.Dist
module Stats = Engine.Stats
module Shard = Engine.Shard
module Machine = Procsim.Machine
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Rollup = Rescont.Rollup
module Stack = Netsim.Stack
module Socket = Netsim.Socket
module Ipaddr = Netsim.Ipaddr
module Filter = Netsim.Filter
module Costs = Httpsim.Costs

type policy = Round_robin | Least_conns | Flow_hash | Replicate of int

type profile =
  | Poisson of float
  | Spike of { base : float; peak : float; at : Simtime.span; until : Simtime.span }

type tenant_spec = { ts_name : string; ts_weight : int; ts_attrs : Attrs.t }

let tenant_spec ?(weight = 1) ?(attrs = Attrs.timeshare ()) name =
  if weight <= 0 then invalid_arg "Cluster.tenant_spec: weight must be positive";
  { ts_name = name; ts_weight = weight; ts_attrs = attrs }

type node = {
  index : int;
  machine : Machine.t;
  stack : Stack.t;
  root : Container.t;
  server_container : Container.t;
  node_rng : Rng.t;
  ready : Socket.conn Queue.t;
  wq : Machine.Waitq.t;
  mutable listens : Socket.listen array; (* one per tenant *)
  mutable handlers : Socket.client_handlers;
  mutable served : int; (* responses sent by this node *)
  mutable refused : int; (* refusals seen by this node's clients *)
  (* Per-node server sojourn summary, merged in node order on read: float
     accumulation happens in an order that is a function of the node
     alone, never of cross-machine event interleaving. *)
  mutable server_sojourn : Stats.Summary.t;
  (* Mailboxes (see the header).  Written by the domain running this
     node's shard during a window (complete_box) or by the balancer's
     domain (dispatch_box); drained by the barrier. *)
  dispatch_box : Shard.Intbox.t; (* deliver_ns, seq, tenant_ix *)
  complete_box : Shard.Intbox.t; (* time_ns, seq *)
}

type tenant = {
  spec : tenant_spec;
  prefix : Ipaddr.t; (* /16 client block; arrivals draw sources from it *)
  containers : Container.t array; (* one per node *)
  group : Rollup.group;
}

type t = {
  shard_sims : Sim.t array; (* machine i runs in shard i mod shards *)
  exec : Shard.t;
  window_ns : int; (* dispatch latency = window length; 0 = synchronous *)
  policy : policy;
  profile : profile;
  nodes : node array;
  tenants : tenant array;
  tenant_cum : int array; (* cumulative weights for the weighted pick *)
  weight_total : int;
  rollup : Rollup.t;
  cluster_laws : Engine.Invariant.t; (* cluster-level laws: usage-rollup *)
  arrival_rng : Rng.t;
  service : Dist.t; (* per-request CPU burn, in nanoseconds *)
  request_bytes : int;
  response_bytes : int;
  hold : Simtime.span; (* client-side linger after the response *)
  workers : int;
  port : int;
  rollup_period : Simtime.span;
  (* In-flight request rings, indexed by [seq land mask].  [issue_seq]
     detects eviction, [done_seq] dedups clone responses, [issue_ns] is
     the client-side issue stamp.  Balancer-side state: written only by
     shard-0 events and by the barrier. *)
  mask : int;
  issue_seq : int array;
  issue_ns : int array;
  done_seq : int array;
  mutable next_seq : int;
  mutable rr : int;
  (* Consistent-hash ring: sorted hash points and their owning nodes. *)
  ring_points : int array;
  ring_nodes : int array;
  (* Least-conns sees the previous barrier's connection counts (stale by
     at most one window) — live counts would race across shards and
     depend on the shard count.  Refreshed at every barrier. *)
  conns_snapshot : int array;
  merge_cursor : int array; (* scratch for the completion k-way merge *)
  mutable next_rollup_ns : int; (* next barrier that aggregates the rollup *)
  (* Cluster-wide counters and distributions. *)
  mutable issued : int;
  mutable completed : int; (* logical completions (clone-deduped) *)
  mutable dup_responses : int; (* later clones of an already-answered request *)
  mutable evicted : int; (* in-flight entries overwritten by ring reuse *)
  mutable peak_concurrent : int;
  mutable client_sojourn : Stats.Summary.t; (* connect -> response, seconds *)
  mutable started : bool;
  mutable arrivals_on : bool;
  mutable strict : bool; (* arm_invariants was called: workers need the DLS flag *)
  mutable t0_ns : int; (* profile epoch: simulation time at [start] *)
}

let sync t = t.window_ns = 0

(* Enough virtual nodes that arc-share imbalance is a few percent: with V
   vnodes per machine the share standard deviation is ~1/sqrt(V). *)
let ring_vnodes = 512

(* Full-avalanche mix for the virtual points.  [Stack.flow_hash] is NOT
   good enough here: its inputs per machine differ only in the small port
   operand, whose contribution stays in the low bits through the weak
   final multiply, so one machine's 512 points cluster into a few runs of
   the ring and arc shares end up 0.6x-1.5x even — enough to saturate one
   machine while the cluster-average utilisation looks moderate.  The
   arrival keys keep using [Stack.flow_hash] (they are wide and verified
   uniform); only the points need the stronger mixer. *)
let mix_point h =
  let h = h * 0x9E3779B1 in
  let h = h lxor (h lsr 29) in
  let h = h * 0x85EBCA6B in
  let h = h lxor (h lsr 32) in
  let h = h * 0xC2B2AE35 in
  let h = h lxor (h lsr 29) in
  h land max_int

let build_ring machines =
  let pts = Array.init (machines * ring_vnodes) (fun k ->
      let i = k / ring_vnodes and v = k mod ring_vnodes in
      (mix_point ((i lsl 16) lor v), i))
  in
  Array.sort compare pts;
  (Array.map fst pts, Array.map snd pts)

(* Smallest ring point >= h, wrapping to the first point past the top. *)
let ring_lookup t h =
  let pts = t.ring_points in
  let n = Array.length pts in
  if h > pts.(n - 1) then t.ring_nodes.(0)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if pts.(mid) >= h then hi := mid else lo := mid + 1
    done;
    t.ring_nodes.(!lo)
  end

let machines t = Array.length t.nodes
let shards t = Shard.shards t.exec
let domains t = Shard.domains t.exec
let lookahead t = Simtime.span_of_ns t.window_ns
let node_machine t i = t.nodes.(i).machine
let node_stack t i = t.nodes.(i).stack
let node_served t i = t.nodes.(i).served
let node_root t i = t.nodes.(i).root
let tenant_count t = Array.length t.tenants
let tenant_name t k = t.tenants.(k).spec.ts_name
let tenant_group t k = t.tenants.(k).group
let tenant_container t ~tenant ~node = t.tenants.(tenant).containers.(node)
let tenant_prefix t k = t.tenants.(k).prefix
let rollup t = t.rollup
let sim t = t.shard_sims.(0)
let now t = Sim.now t.shard_sims.(0)
let issued t = t.issued
let completed t = t.completed
let refused t = Array.fold_left (fun acc n -> acc + n.refused) 0 t.nodes
let dup_responses t = t.dup_responses
let evicted t = t.evicted
let peak_concurrent t = t.peak_concurrent
let client_sojourn t = t.client_sojourn

let server_sojourn t =
  Array.fold_left
    (fun acc n -> Stats.Summary.merge acc n.server_sojourn)
    (Stats.Summary.create ()) t.nodes

let concurrent t =
  Array.fold_left (fun acc n -> acc + Stack.tracked_conns n.stack) 0 t.nodes

let busy_total t =
  Array.fold_left
    (fun acc n -> Simtime.span_add acc (Machine.busy_time n.machine))
    Simtime.span_zero t.nodes

(* ---------------- the server application ---------------- *)

let serve_conn t node conn =
  if conn.Socket.state <> Socket.Closed then begin
    (* Bind the worker to the connection's container (rc_bind_thread) so
       parsing and the service burn are charged to the tenant. *)
    (match conn.Socket.container with
    | Some c ->
        Machine.cpu ~kernel:true Rescont.Ops.Cost.rebind_thread;
        Machine.rebind node.machine (Machine.self ()) c
    | None -> ());
    match Stack.recv node.stack conn with
    | Some req ->
        Machine.cpu Costs.read_parse;
        Machine.cpu (Simtime.ns (Dist.sample_int t.service node.node_rng));
        Machine.cpu Costs.write_syscall;
        Stack.send node.stack conn (Netsim.Payload.make ~bytes:t.response_bytes (Machine.now node.machine));
        node.served <- node.served + 1;
        (* Server-side sojourn: request hits the NIC -> response handed to
           the wire.  The arrival instant is recovered from the client's
           send stamp plus the wire time, so handshake round trips (pure
           network) stay out and the whole in-server path — kernel rx
           processing, worker queueing, parse, service, write — stays in.
           This is the PS-oracle observable. *)
        let arrived_ns =
          Simtime.to_ns req.Netsim.Payload.created
          + Simtime.span_to_ns (Stack.delivery_delay node.stack req)
        in
        let soj = Simtime.to_ns (Machine.now node.machine) - arrived_ns in
        Stats.Summary.add node.server_sojourn (float_of_int soj /. 1e9)
    | None ->
        (* EOF: the client closed after its hold; finish the passive close. *)
        if conn.Socket.state = Socket.Close_wait then begin
          Machine.cpu Costs.close_syscall;
          Stack.close node.stack conn
        end
  end

let drain_accepts t node =
  Array.iter
    (fun l ->
      let rec go () =
        match Stack.accept node.stack l with
        | Some conn ->
            Machine.cpu Costs.accept_syscall;
            Machine.cpu Costs.conn_setup_misc;
            (* The accepted connection inherits its listen's (tenant)
               container; [conn.container <> None] doubles as the
               "accepted" marker for the edge-triggered push below. *)
            Socket.bind_container conn
              (Socket.conn_container_or conn ~default:node.server_container);
            if Socket.readable conn then Queue.push conn node.ready;
            go ()
        | None -> ()
      in
      go ())
    node.listens;
  ignore t

let rec worker_body t node =
  drain_accepts t node;
  (match Queue.take_opt node.ready with
  | Some conn -> serve_conn t node conn
  | None -> Machine.Waitq.wait node.wq);
  worker_body t node

(* ---------------- completions (balancer side) ---------------- *)

(* Applied on the balancer's domain only: at the barrier merge (windowed)
   or directly from the response event (synchronous mode, where there is
   only one domain and one sim). *)
let apply_completion t ~time_ns ~seq =
  let i = seq land t.mask in
  if t.issue_seq.(i) = seq then
    if t.done_seq.(i) <> seq then begin
      t.done_seq.(i) <- seq;
      t.completed <- t.completed + 1;
      let soj = time_ns - t.issue_ns.(i) in
      Stats.Summary.add t.client_sojourn (float_of_int soj /. 1e9)
    end
    else t.dup_responses <- t.dup_responses + 1

(* ---------------- the client population / balancer ---------------- *)

(* The handlers run inside the node's own event core: they read only the
   node, immutable cluster parameters and [sync]-gated state, and write
   only the node's counters and mailboxes.  All times are the node
   machine's clock (identical to the balancer clock at shards=1; the only
   clock the node's domain may read at shards>1). *)
let make_handlers t node =
  let msim = Machine.sim node.machine in
  {
    Socket.on_established =
      (fun conn ->
        (* Request immediately; the hold happens after the response. *)
        Stack.client_send node.stack conn
          (Netsim.Payload.make ~bytes:t.request_bytes (Machine.now node.machine)));
    on_refused = (fun () -> node.refused <- node.refused + 1);
    on_response =
      (fun conn _payload ->
        let seq = conn.Socket.src_port in
        let time_ns = Simtime.to_ns (Machine.now node.machine) in
        if sync t then apply_completion t ~time_ns ~seq
        else Shard.Intbox.push2 node.complete_box time_ns seq;
        if Simtime.span_to_ns t.hold = 0 then Stack.client_close node.stack conn
        else
          Sim.post msim t.hold (fun () ->
              if conn.Socket.state = Socket.Established then
                Stack.client_close node.stack conn));
    on_closed = (fun _ -> ());
  }

let pick_tenant_ix t =
  let r = Rng.int t.arrival_rng t.weight_total in
  let k = ref 0 in
  while t.tenant_cum.(!k) <= r do
    incr k
  done;
  !k

let pick_node t ~src ~src_port =
  match t.policy with
  | Round_robin ->
      let i = t.rr in
      t.rr <- (i + 1) mod machines t;
      i
  | Least_conns ->
      let best = ref 0 and bestc = ref max_int in
      if sync t then
        Array.iter
          (fun n ->
            let c = Stack.tracked_conns n.stack in
            if c < !bestc then begin
              bestc := c;
              best := n.index
            end)
          t.nodes
      else
        Array.iteri
          (fun i c ->
            if c < !bestc then begin
              bestc := c;
              best := i
            end)
          t.conns_snapshot;
      !best
  | Flow_hash -> ring_lookup t (Stack.flow_hash src src_port)
  | Replicate _ -> assert false

(* Source address for (tenant, seq): an odd multiplier is a bijection mod
   2^16, so low bits vary for the flow hash.  Pure, so the dispatch
   mailbox carries only (deliver_ns, seq, tenant_ix) and the barrier
   recomputes the address. *)
let src_addr t ~tenant_ix ~seq =
  Ipaddr.offset t.tenants.(tenant_ix).prefix ((seq * 0x2545F491) land 0xFFFF)

let inject_one t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let tenant_ix = pick_tenant_ix t in
  let src = src_addr t ~tenant_ix ~seq in
  let src_port = seq in
  let i = seq land t.mask in
  if t.issue_seq.(i) >= 0 && t.done_seq.(i) <> t.issue_seq.(i) then
    t.evicted <- t.evicted + 1;
  t.issue_seq.(i) <- seq;
  t.issue_ns.(i) <- Simtime.to_ns (now t);
  t.done_seq.(i) <- min_int;
  t.issued <- t.issued + 1;
  let deliver_ns = Simtime.to_ns (now t) + t.window_ns in
  let send node =
    if sync t then
      Stack.inject_connect node.stack ~src ~src_port ~port:t.port ~handlers:node.handlers
    else Shard.Intbox.push3 node.dispatch_box deliver_ns seq tenant_ix
  in
  match t.policy with
  | Replicate d ->
      let d = max 1 (min d (machines t)) in
      let base = t.rr in
      t.rr <- (base + 1) mod machines t;
      for k = 0 to d - 1 do
        send t.nodes.((base + k) mod machines t)
      done
  | _ -> send t.nodes.(pick_node t ~src ~src_port)

let rate_at t =
  match t.profile with
  | Poisson r -> r
  | Spike s ->
      let dt = Simtime.to_ns (now t) - t.t0_ns in
      if dt >= Simtime.span_to_ns s.at && dt < Simtime.span_to_ns s.until then s.peak
      else s.base

(* ---------------- the window barrier ---------------- *)

(* Dispatch drain: node order, then mailbox (push) order within a node —
   both functions of simulated history alone.  Every SYN lands at
   deliver_ns >= the window end (conservative), so [inject_connect_at]
   never posts into a machine's past. *)
let drain_dispatch t =
  Array.iter
    (fun node ->
      let box = node.dispatch_box in
      let len = Shard.Intbox.length box in
      let i = ref 0 in
      while !i < len do
        let at = Simtime.of_ns (Shard.Intbox.get box !i) in
        let seq = Shard.Intbox.get box (!i + 1) in
        let tenant_ix = Shard.Intbox.get box (!i + 2) in
        let src = src_addr t ~tenant_ix ~seq in
        Stack.inject_connect_at node.stack ~at ~src ~src_port:seq ~port:t.port
          ~handlers:node.handlers;
        i := !i + 3
      done;
      Shard.Intbox.clear box)
    t.nodes

(* Completion drain: a k-way merge of the per-node mailboxes by
   (time_ns, node index, per-node FIFO).  At shards=1 the per-node boxes
   are already time-sorted (one sim fired them in order), so the merge
   reproduces the global completion order; at shards=N it reproduces the
   same order from the per-shard streams.  Strict [<] pins ties to the
   lowest node index. *)
let drain_completions t =
  let nodes = t.nodes in
  let n = Array.length nodes in
  let cursor = t.merge_cursor in
  Array.fill cursor 0 n 0;
  let rec loop () =
    let best = ref (-1) and best_t = ref max_int in
    for j = 0 to n - 1 do
      let box = nodes.(j).complete_box in
      if cursor.(j) < Shard.Intbox.length box then begin
        let tm = Shard.Intbox.get box cursor.(j) in
        if tm < !best_t then begin
          best_t := tm;
          best := j
        end
      end
    done;
    if !best >= 0 then begin
      let j = !best in
      let box = nodes.(j).complete_box in
      let seq = Shard.Intbox.get box (cursor.(j) + 1) in
      cursor.(j) <- cursor.(j) + 2;
      apply_completion t ~time_ns:!best_t ~seq;
      loop ()
    end
  in
  loop ();
  Array.iter (fun node -> Shard.Intbox.clear node.complete_box) nodes

let check_cluster_laws t =
  if Engine.Invariant.armed t.cluster_laws then Engine.Invariant.check_exn t.cluster_laws

(* Runs on the calling domain while every worker is parked at the
   barrier: safe to read and write any shard's state. *)
let barrier_exchange t wend_ns =
  drain_completions t;
  drain_dispatch t;
  Array.iteri
    (fun i node -> t.conns_snapshot.(i) <- Stack.tracked_conns node.stack)
    t.nodes;
  if wend_ns >= t.next_rollup_ns then begin
    Rollup.aggregate t.rollup;
    let c = Array.fold_left ( + ) 0 t.conns_snapshot in
    if c > t.peak_concurrent then t.peak_concurrent <- c;
    check_cluster_laws t;
    let period = Simtime.span_to_ns t.rollup_period in
    while t.next_rollup_ns <= wend_ns do
      t.next_rollup_ns <- t.next_rollup_ns + period
    done
  end

(* ---------------- construction ---------------- *)

let create ?backend ?(machines = 4) ?(shards = 1) ?domains ?(cpus = 1) ?(mode = Stack.Rc)
    ?(policy = Round_robin) ?(profile = Poisson 1000.) ?service ?(request_bytes = 256)
    ?(response_bytes = 4096) ?(hold = Simtime.span_zero) ?(workers = 32)
    ?(quantum = Simtime.us 50) ?(rollup_period = Simtime.ms 10) ?(ring_bits = 20)
    ?(syn_backlog = 1024) ?latency ?window ?(tenants = [ tenant_spec "tenant0" ])
    ?(seed = 1) () =
  if machines <= 0 then invalid_arg "Cluster.create: machines must be positive";
  if shards <= 0 then invalid_arg "Cluster.create: shards must be positive";
  if tenants = [] then invalid_arg "Cluster.create: at least one tenant";
  if List.length tenants > 64 then invalid_arg "Cluster.create: at most 64 tenants";
  (match policy with
  | Replicate d when d < 1 -> invalid_arg "Cluster.create: Replicate degree must be >= 1"
  | _ -> ());
  let shards = min shards machines in
  let service =
    match service with Some d -> d | None -> Dist.exponential ~mean:400_000. (* 400 µs *)
  in
  let shard_sims = Array.init shards (fun _ -> Sim.create ?backend ()) in
  let exec = Shard.create ?domains ~shards () in
  let rng = Rng.create ~seed in
  let arrival_rng = Rng.split rng in
  let specs = Array.of_list tenants in
  (* Node i's tenant containers, filled inside node i's arena block below
     (chain-linking a container to its parent requires the same arena, so
     every container of a machine must be created between that machine's
     arena renewal and the next). *)
  let per_node_tenant_containers = Array.make machines [||] in
  let nodes =
    Array.init machines (fun i ->
        (* Each machine's containers live in their own ledger arena: the
           whole rig (root, system, server, tenant containers — chained
           within one arena) is built between renewals, and no container
           is created after [create], so a shard's charging never writes
           another shard's accounting arrays. *)
        Rescont.Usage.renew_domain_arena ();
        let sim = shard_sims.(i mod shards) in
        let root = Container.create_root () in
        let invariants = Engine.Invariant.create () in
        let make_policy _cpu =
          match mode with
          | Stack.Rc -> Sched.Multilevel.make ~window:(Simtime.ms 100) ~invariants ~root ()
          | Stack.Softirq | Stack.Lrp -> Sched.Timeshare.make ()
        in
        let policy0 = make_policy 0 in
        let machine =
          if cpus > 1 then
            Machine.create ~cpus ~shard_policy:make_policy ~quantum ~invariants ~sim
              ~policy:policy0 ~root ()
          else Machine.create ~quantum ~invariants ~sim ~policy:policy0 ~root ()
        in
        let server_container =
          Container.create ~name:(Printf.sprintf "node%d.server" i) ~parent:root ()
        in
        let stack = Stack.create ?latency ~machine ~mode ~owner:server_container () in
        per_node_tenant_containers.(i) <-
          Array.map
            (fun spec ->
              Container.create ~name:spec.ts_name ~attrs:spec.ts_attrs ~parent:root ())
            specs;
        {
          index = i;
          machine;
          stack;
          root;
          server_container;
          node_rng = Rng.split rng;
          ready = Queue.create ();
          wq = Machine.Waitq.create ~name:(Printf.sprintf "node%d.ready" i) machine;
          listens = [||];
          handlers = Socket.null_handlers;
          served = 0;
          refused = 0;
          server_sojourn = Stats.Summary.create ();
          dispatch_box = Shard.Intbox.create ();
          complete_box = Shard.Intbox.create ();
        })
  in
  (* The dispatch window (= dispatch latency = the protocol's lookahead).
     Default: the SYN's wire time on the access link — the minimum
     balancer->machine delivery delay, i.e. the largest window that is
     still conservative under the default latency.  An explicit [window]
     trades dispatch latency for barrier amortisation; zero degenerates
     to the synchronous single-sim semantics and needs shards=1. *)
  let window_ns =
    match window with
    | Some w ->
        let ns = Simtime.span_to_ns w in
        if ns < 0 then invalid_arg "Cluster.create: window must be >= 0";
        ns
    | None -> Simtime.span_to_ns (Stack.syn_delivery_delay nodes.(0).stack)
  in
  if window_ns = 0 && shards > 1 then
    invalid_arg
      "Cluster.create: a zero window (no lookahead) degenerates to the synchronous \
       protocol and requires shards = 1";
  let rollup = Rollup.create () in
  let cluster_laws = Engine.Invariant.create () in
  Rollup.register rollup cluster_laws;
  let tenant_arr =
    Array.mapi
      (fun k spec ->
        let prefix = Ipaddr.v 10 (40 + k) 0 0 in
        let containers = Array.map (fun per_node -> per_node.(k)) per_node_tenant_containers in
        let group = Rollup.group rollup ~name:spec.ts_name in
        Array.iter (fun c -> Rollup.enroll group (Container.usage c)) containers;
        { spec; prefix; containers; group })
      specs
  in
  let weight_total = Array.fold_left (fun a tn -> a + tn.spec.ts_weight) 0 tenant_arr in
  let tenant_cum =
    let acc = ref 0 in
    Array.map
      (fun tn ->
        acc := !acc + tn.spec.ts_weight;
        !acc)
      tenant_arr
  in
  let ring_points, ring_nodes = build_ring machines in
  let mask = (1 lsl ring_bits) - 1 in
  let t =
    {
      shard_sims;
      exec;
      window_ns;
      policy;
      profile;
      nodes;
      tenants = tenant_arr;
      tenant_cum;
      weight_total;
      rollup;
      cluster_laws;
      arrival_rng;
      service;
      request_bytes;
      response_bytes;
      hold;
      workers;
      port = 80;
      rollup_period;
      mask;
      issue_seq = Array.make (mask + 1) (-1);
      issue_ns = Array.make (mask + 1) 0;
      done_seq = Array.make (mask + 1) min_int;
      next_seq = 0;
      rr = 0;
      ring_points;
      ring_nodes;
      conns_snapshot = Array.make machines 0;
      merge_cursor = Array.make machines 0;
      next_rollup_ns = max_int;
      issued = 0;
      completed = 0;
      dup_responses = 0;
      evicted = 0;
      peak_concurrent = 0;
      client_sojourn = Stats.Summary.create ();
      started = false;
      arrivals_on = true;
      strict = false;
      t0_ns = 0;
    }
  in
  (* Tenant listens: port 80 shared, filter-demuxed on the tenant's /16,
     bound to that tenant's per-machine container (§4.6 + §4.8). *)
  Array.iter
    (fun node ->
      node.handlers <- make_handlers t node;
      node.listens <-
        Array.map
          (fun tn ->
            let l =
              Socket.make_listen
                ~filter:(Filter.prefix ~template:tn.prefix ~bits:16)
                ~backlog:4096 ~syn_backlog
                ~container:tn.containers.(node.index)
                ~port:t.port ()
            in
            Stack.add_listen node.stack l;
            l)
          tenant_arr;
      Stack.add_on_event node.stack (fun () -> Machine.Waitq.signal node.wq);
      Stack.set_on_readable node.stack (fun conn ->
          (* Only accepted connections go on the ready list; a request that
             lands before the accept is picked up by the readable check in
             [drain_accepts]. *)
          if conn.Socket.container <> None then begin
            Queue.push conn node.ready;
            Machine.Waitq.signal node.wq
          end))
    nodes;
  t

let start t =
  if t.started then invalid_arg "Cluster.start: already started";
  t.started <- true;
  t.t0_ns <- Simtime.to_ns (now t);
  Array.iter
    (fun node ->
      for w = 1 to t.workers do
        ignore
          (Machine.spawn node.machine
             ~name:(Printf.sprintf "node%d.worker%d" node.index w)
             ~container:node.server_container
             (fun () -> worker_body t node))
      done)
    t.nodes;
  (* One closure for the whole arrival process: it reschedules itself at
     exponential gaps from the profile's current rate, inside shard 0. *)
  let rec tick () =
    if t.arrivals_on then begin
      inject_one t;
      let u = 1.0 -. Rng.float t.arrival_rng 1.0 in
      let gap_ns = int_of_float (-1e9 /. rate_at t *. log u) in
      Sim.post t.shard_sims.(0) (Simtime.ns (max 1 gap_ns)) tick
    end
  in
  Sim.post t.shard_sims.(0) (Simtime.ns 1) tick;
  if sync t then
    let (_ : Sim.event) =
      Sim.every t.shard_sims.(0) t.rollup_period (fun () ->
          Rollup.aggregate t.rollup;
          let c = concurrent t in
          if c > t.peak_concurrent then t.peak_concurrent <- c)
    in
    ()
  else t.next_rollup_ns <- t.t0_ns + Simtime.span_to_ns t.rollup_period

let stop_arrivals t = t.arrivals_on <- false

let run_for t span =
  let start_ns = Simtime.to_ns (now t) in
  let horizon_ns = start_ns + Simtime.span_to_ns span in
  let horizon = Simtime.of_ns horizon_ns in
  if not (sync t) then begin
    let cursor = ref start_ns in
    let next () =
      if !cursor >= horizon_ns then None
      else begin
        let wend = min horizon_ns (!cursor + t.window_ns) in
        cursor := wend;
        Some wend
      end
    in
    (* Windows advance each shard's sim directly; the machines' armed
       quiesce re-checks happen once at the horizon below, not at every
       window (the periodic [Sim.every] sweeps still run inside windows
       at their own cadence). *)
    let work s h = Sim.run_until t.shard_sims.(s) (Simtime.of_ns h) in
    let prepare () = Rescont.Usage.set_strict_memory t.strict in
    Shard.run_windows ~prepare t.exec ~next ~work
      ~exchange:(fun h -> barrier_exchange t h)
  end;
  (* Horizon quiesce: every machine's run_until is now a no-op clock
     advance (synchronous mode: the actual run) plus its registry's
     quiesce check; then the cluster-level laws get the final word. *)
  Array.iter (fun n -> Machine.run_until n.machine horizon) t.nodes;
  check_cluster_laws t

let arm_invariants ?interval t =
  t.strict <- true;
  Engine.Invariant.arm t.cluster_laws;
  Array.iter
    (fun n ->
      match interval with
      | Some interval -> Machine.arm_invariants ~interval n.machine
      | None -> Machine.arm_invariants n.machine)
    t.nodes

let check_invariants t =
  Array.fold_left (fun acc n -> acc @ Machine.check_invariants n.machine) [] t.nodes
  @ Engine.Invariant.check t.cluster_laws

let rollup_law t = Rollup.law t.rollup ()

let reset_stats t =
  t.issued <- 0;
  t.completed <- 0;
  t.dup_responses <- 0;
  t.evicted <- 0;
  t.peak_concurrent <- concurrent t;
  t.client_sojourn <- Stats.Summary.create ();
  Array.iter
    (fun n ->
      n.served <- 0;
      n.refused <- 0;
      n.server_sojourn <- Stats.Summary.create ())
    t.nodes
