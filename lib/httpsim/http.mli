(** Message-level HTTP: requests and responses as payload tags.

    The simulator never moves bytes, so an HTTP request is its metadata —
    path and persistence — encoded into the {!Netsim.Payload} tag, and a
    response is a payload sized by the document plus header overhead.
    Request metadata carries both the path and its interned {!Docset} id;
    the id is what the serving hot path uses (an O(1) cache probe), the
    path is the compat view for traces and filters. *)

type meta = { path : string; doc : int; keep_alive : bool }

val request : now:Engine.Simtime.t -> ?keep_alive:bool -> path:string -> unit -> Netsim.Payload.t
(** A request message (~250 bytes on the wire, like a short GET). *)

val request_doc : now:Engine.Simtime.t -> ?keep_alive:bool -> doc:int -> unit -> Netsim.Payload.t
(** {!request} by interned doc id — the workload hot path; no string
    hashing, one per-domain array probe.
    @raise Invalid_argument on an id {!Docset.intern} never returned. *)

val meta_of_path : ?keep_alive:bool -> string -> meta
(** Metadata for a path (interning it); for tests and examples that build
    responses without going through {!parse}. *)

val parse : Netsim.Payload.t -> meta
(** Decode a request payload.  @raise Invalid_argument on a payload that
    was not built by {!request}. *)

val response : now:Engine.Simtime.t -> meta -> body_bytes:int -> Netsim.Payload.t
(** A response message: body plus ~200 bytes of headers; the tag carries
    the request path so clients can correlate. *)

val is_dynamic : meta -> bool
(** Requests under "/cgi" resolve to dynamic resources. *)

val request_bytes : int
val header_bytes : int
