type entry = { bytes : int; mutable cached : bool; mutable last_used : int }

type t = {
  capacity : int;
  docs : (string, entry) Hashtbl.t;
  mutable order : string list; (* registration order, for [warm] *)
  mutable cached_bytes : int;
  mutable clock : int;
  hits : Engine.Metrics.counter;
  misses : Engine.Metrics.counter;
}

let create ?(capacity_bytes = 64 * 1024 * 1024) () =
  if capacity_bytes <= 0 then invalid_arg "File_cache.create: capacity must be positive";
  {
    capacity = capacity_bytes;
    docs = Hashtbl.create 256;
    order = [];
    cached_bytes = 0;
    clock = 0;
    hits = Engine.Metrics.make_counter "cache.hits";
    misses = Engine.Metrics.make_counter "cache.misses";
  }

let register_metrics t registry =
  Engine.Metrics.register_counter registry t.hits;
  Engine.Metrics.register_counter registry t.misses;
  Engine.Metrics.gauge registry "cache.cached_bytes" (fun () -> float_of_int t.cached_bytes)

let register_invariants t registry =
  Engine.Invariant.register registry ~law:"cache.bytes-consistency" (fun () ->
      let actual =
        Hashtbl.fold (fun _ e acc -> if e.cached then acc + e.bytes else acc) t.docs 0
      in
      match Engine.Invariant.equal_int ~what:"cache cached_bytes" actual t.cached_bytes with
      | Error _ as e -> e
      | Ok () -> (
          match Engine.Invariant.non_negative ~what:"cache cached_bytes" t.cached_bytes with
          | Error _ as e -> e
          | Ok () -> Engine.Invariant.leq_int ~what:"cache cached_bytes" t.cached_bytes t.capacity))

let add_document t ~path ~bytes =
  if bytes < 0 then invalid_arg "File_cache.add_document: negative size";
  if not (Hashtbl.mem t.docs path) then begin
    Hashtbl.replace t.docs path { bytes; cached = false; last_used = 0 };
    t.order <- t.order @ [ path ]
  end

let document_size t ~path =
  match Hashtbl.find_opt t.docs path with Some e -> Some e.bytes | None -> None

type outcome = Hit of int | Miss of int | Not_found_doc

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun path e acc ->
        if not e.cached then acc
        else
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | Some _ | None -> Some (path, e))
      t.docs None
  in
  match victim with
  | None -> false
  | Some (_, e) ->
      e.cached <- false;
      t.cached_bytes <- t.cached_bytes - e.bytes;
      true

let load t e =
  let rec make_room () =
    if t.cached_bytes + e.bytes > t.capacity then if evict_lru t then make_room ()
  in
  if e.bytes <= t.capacity then begin
    make_room ();
    e.cached <- true;
    t.cached_bytes <- t.cached_bytes + e.bytes
  end

let lookup t ~path =
  t.clock <- t.clock + 1;
  (* Exception-style find: this probe runs once per request, and
     [find_opt]'s [Some] box was measurable next to it. *)
  match Hashtbl.find t.docs path with
  | exception Not_found -> Not_found_doc
  | e ->
      e.last_used <- t.clock;
      if e.cached then begin
        Engine.Metrics.incr t.hits;
        Hit e.bytes
      end
      else begin
        Engine.Metrics.incr t.misses;
        load t e;
        Miss e.bytes
      end

let lookup_cost = function
  | Hit _ | Not_found_doc -> Costs.cache_hit
  | Miss _ -> Costs.cache_miss

let warm t =
  List.iter
    (fun path ->
      match Hashtbl.find_opt t.docs path with
      | Some e when not e.cached -> load t e
      | Some _ | None -> ())
    t.order

let hits t = Engine.Metrics.counter_value t.hits
let misses t = Engine.Metrics.counter_value t.misses
let cached_bytes t = t.cached_bytes
