(* Struct-of-arrays document cache with an intrusive LRU list.

   The pre-PR cache was a string-keyed hashtable whose eviction folded the
   whole table per victim — O(n) per miss — and registered documents with a
   quadratic list append.  At the seed's 4 documents that was invisible; a
   Zipf working set of 10^5-10^6 documents lives or dies on it.  Layout
   follows the PR 6 Ledger/Conn_table idiom: every per-document field is a
   flat int array indexed by a dense per-cache slot, and recency is
   structural — a doubly-linked list threaded through [prev]/[next] index
   arrays (head = MRU, tail = LRU) — so lookup, touch, and eviction are all
   O(1) and allocation-free.

   Slots are per-cache and dense in registration order; the global
   {!Docset} id is translated on entry via [index].  Nothing may depend on
   global-id order (interning order can vary between runs when parallel
   domains race to intern): warm order, eviction order, and the invariant
   fold all iterate slots, which are deterministic per cache.

   {!File_cache_ref} is the executable spec: the historic hashtable
   implementation with clock-stamp LRU, lockstepped in QCheck.  The two
   agree because every stamp the spec writes is unique except for warm
   loads, which both sides define as stamped lookups in registration
   order. *)

let nil = -1 (* list end *)
let absent = -2 (* [prev] value of a slot not in the resident list *)

type t = {
  capacity : int;
  mutable index : int array; (* global doc id -> slot, [nil] if unregistered *)
  mutable doc : int array; (* slot -> global doc id *)
  mutable size : int array; (* slot -> document bytes *)
  mutable last_used : int array; (* slot -> clock stamp of last lookup *)
  mutable prev : int array; (* slot -> more-recent neighbour | nil | absent *)
  mutable next : int array; (* slot -> less-recent neighbour | nil *)
  mutable head : int; (* most recently used resident slot, or nil *)
  mutable tail : int; (* least recently used resident slot, or nil *)
  mutable used : int; (* registered slots: 0..used-1 are live *)
  mutable resident : int;
  mutable cached_bytes : int;
  mutable clock : int;
  hits : Engine.Metrics.counter;
  misses : Engine.Metrics.counter;
}

let create ?(capacity_bytes = 64 * 1024 * 1024) () =
  if capacity_bytes <= 0 then invalid_arg "File_cache.create: capacity must be positive";
  {
    capacity = capacity_bytes;
    index = Array.make 256 nil;
    doc = Array.make 256 nil;
    size = Array.make 256 0;
    last_used = Array.make 256 0;
    prev = Array.make 256 absent;
    next = Array.make 256 nil;
    head = nil;
    tail = nil;
    used = 0;
    resident = 0;
    cached_bytes = 0;
    clock = 0;
    hits = Engine.Metrics.make_counter "cache.hits";
    misses = Engine.Metrics.make_counter "cache.misses";
  }

let register_metrics t registry =
  Engine.Metrics.register_counter registry t.hits;
  Engine.Metrics.register_counter registry t.misses;
  Engine.Metrics.gauge registry "cache.cached_bytes" (fun () -> float_of_int t.cached_bytes)

let resident t s = Array.unsafe_get t.prev s <> absent

(* {2 Intrusive list plumbing}

   [link_front]/[unlink] maintain only the list; [load]/[evict_lru] own the
   residency counters, so a touch (unlink + relink) never churns them. *)

let link_front t s =
  t.prev.(s) <- nil;
  t.next.(s) <- t.head;
  if t.head <> nil then t.prev.(t.head) <- s;
  t.head <- s;
  if t.tail = nil then t.tail <- s

let unlink t s =
  let p = t.prev.(s) and n = t.next.(s) in
  if p <> nil then t.next.(p) <- n else t.head <- n;
  if n <> nil then t.prev.(n) <- p else t.tail <- p;
  t.prev.(s) <- absent;
  t.next.(s) <- nil

let evict_lru t =
  match t.tail with
  | s when s = nil -> false
  | s ->
      unlink t s;
      t.resident <- t.resident - 1;
      t.cached_bytes <- t.cached_bytes - t.size.(s);
      true

let load t s =
  let bytes = t.size.(s) in
  if bytes <= t.capacity then begin
    while t.cached_bytes + bytes > t.capacity && evict_lru t do
      ()
    done;
    link_front t s;
    t.resident <- t.resident + 1;
    t.cached_bytes <- t.cached_bytes + bytes
  end

(* {2 Registration} *)

let grow_to arr len fill =
  let bigger = Array.make (max len (2 * Array.length arr)) fill in
  Array.blit arr 0 bigger 0 (Array.length arr);
  bigger

let ensure_doc t doc =
  if doc >= Array.length t.index then t.index <- grow_to t.index (doc + 1) nil

let ensure_slot t =
  if t.used >= Array.length t.doc then begin
    let n = 2 * Array.length t.doc in
    t.doc <- grow_to t.doc n nil;
    t.size <- grow_to t.size n 0;
    t.last_used <- grow_to t.last_used n 0;
    t.prev <- grow_to t.prev n absent;
    t.next <- grow_to t.next n nil
  end

let add_doc t ~doc ~bytes =
  if bytes < 0 then invalid_arg "File_cache.add_doc: negative size";
  if doc < 0 then invalid_arg "File_cache.add_doc: negative doc id";
  ensure_doc t doc;
  if t.index.(doc) = nil then begin
    ensure_slot t;
    let s = t.used in
    t.used <- s + 1;
    t.index.(doc) <- s;
    t.doc.(s) <- doc;
    t.size.(s) <- bytes;
    t.last_used.(s) <- 0;
    t.prev.(s) <- absent;
    t.next.(s) <- nil
  end

let add_document t ~path ~bytes = add_doc t ~doc:(Docset.intern path) ~bytes

let slot_of_doc t doc =
  if doc < 0 || doc >= Array.length t.index then nil else t.index.(doc)

let document_size t ~path =
  match slot_of_doc t (Docset.find_id path) with s when s = nil -> None | s -> Some t.size.(s)

(* {2 The hot path} *)

type outcome = Hit of int | Miss of int | Not_found_doc

let lookup_doc t ~doc =
  t.clock <- t.clock + 1;
  let s = slot_of_doc t doc in
  if s = nil then Not_found_doc
  else begin
    Array.unsafe_set t.last_used s t.clock;
    if resident t s then begin
      if t.head <> s then begin
        unlink t s;
        link_front t s
      end;
      Engine.Metrics.incr t.hits;
      Hit (Array.unsafe_get t.size s)
    end
    else begin
      Engine.Metrics.incr t.misses;
      load t s;
      Miss (Array.unsafe_get t.size s)
    end
  end

let lookup t ~path = lookup_doc t ~doc:(Docset.find_id path)

let lookup_cost = function
  | Hit _ | Not_found_doc -> Costs.cache_hit
  | Miss _ -> Costs.cache_miss

(* Warm loads are stamped lookups in registration order (minus the
   hit/miss counters): both this and the spec define them so, keeping
   structural LRU equal to clock LRU after a warm that follows traffic. *)
let warm t =
  for s = 0 to t.used - 1 do
    if (not (resident t s)) && t.size.(s) <= t.capacity then begin
      t.clock <- t.clock + 1;
      t.last_used.(s) <- t.clock;
      load t s
    end
  done

let is_cached t ~path =
  match slot_of_doc t (Docset.find_id path) with s when s = nil -> false | s -> resident t s

let hits t = Engine.Metrics.counter_value t.hits
let misses t = Engine.Metrics.counter_value t.misses
let cached_bytes t = t.cached_bytes
let registered t = t.used

let register_invariants t registry =
  Engine.Invariant.register registry ~law:"cache.bytes-consistency" (fun () ->
      let actual = ref 0 and count = ref 0 in
      for s = 0 to t.used - 1 do
        if resident t s then begin
          actual := !actual + t.size.(s);
          incr count
        end
      done;
      match Engine.Invariant.equal_int ~what:"cache cached_bytes" !actual t.cached_bytes with
      | Error _ as e -> e
      | Ok () -> (
          match Engine.Invariant.equal_int ~what:"cache resident count" !count t.resident with
          | Error _ as e -> e
          | Ok () -> (
              match Engine.Invariant.non_negative ~what:"cache cached_bytes" t.cached_bytes with
              | Error _ as e -> e
              | Ok () -> (
                  match
                    Engine.Invariant.leq_int ~what:"cache cached_bytes" t.cached_bytes
                      t.capacity
                  with
                  | Error _ as e -> e
                  | Ok () ->
                      (* The LRU list must thread exactly the resident
                         slots: walk from head, checking back-links, and
                         land on tail in [resident] steps. *)
                      let steps = ref 0 and s = ref t.head and ok = ref true in
                      let last = ref nil in
                      while !ok && !s <> nil && !steps <= t.resident do
                        if t.prev.(!s) <> !last then ok := false
                        else begin
                          last := !s;
                          s := t.next.(!s);
                          incr steps
                        end
                      done;
                      if (not !ok) || !s <> nil || !last <> t.tail then
                        Error
                          (Printf.sprintf
                             "cache LRU list corrupt: walked %d of %d resident slots \
                              (head %d, tail %d)"
                             !steps t.resident t.head t.tail)
                      else Engine.Invariant.equal_int ~what:"cache LRU list length" !steps
                             t.resident))))
