(** Global document-id interning: paths to dense ints, once.

    The request hot path used to hash a heap-allocated path string per
    message; with a million-document working set that is the dominant
    per-request cost.  [Docset] assigns each distinct path a small dense
    int once, and everything downstream ({!Http} metas, {!File_cache}
    lookups, the S-client popularity mixes) carries the int.  Paths remain
    available as a compat view for traces and existing string call sites.

    The table is process-global and safe to use from any domain: interning
    is mutex-serialized (cold path), [path_of] is lock-free.  Ids are
    assigned in interning order, which may vary between runs that intern
    from parallel domains — callers must never let id {e order} affect
    simulation outcomes (per-cache state uses its own dense slots). *)

val intern : string -> int
(** The id for [path], allocating one on first sight. *)

val find_id : string -> int
(** Like {!intern} but never allocates an id: [-1] if the path has never
    been interned (and so cannot name a registered document). *)

val path_of : int -> string
(** @raise Invalid_argument on an id {!intern} never returned. *)

val size : unit -> int
(** Number of distinct interned paths. *)
