module Simtime = Engine.Simtime
module Machine = Procsim.Machine

let parse_request payload =
  Machine.cpu ~kernel:true Costs.read_parse;
  Http.parse payload

let trace_request ~stack conn meta =
  let trace = Machine.trace (Netsim.Stack.machine stack) in
  if Engine.Tracelog.enabled trace then
    Engine.Tracelog.event trace
      (Machine.now (Netsim.Stack.machine stack))
      (Engine.Trace_event.Http_request
         {
           conn = conn.Netsim.Socket.conn_id;
           path = meta.Http.path;
           dynamic = Http.is_dynamic meta;
         })

let static ~stack ~cache ?disk conn meta =
  trace_request ~stack conn meta;
  let outcome = File_cache.lookup_doc cache ~doc:meta.Http.doc in
  let body_bytes =
    match (outcome, disk) with
    | File_cache.Hit bytes, _ ->
        Machine.cpu ~kernel:true Costs.cache_hit;
        bytes
    | File_cache.Miss bytes, Some disk ->
        (* Cache-fill from disk: request setup costs CPU, the transfer
           itself costs disk time charged to the current binding. *)
        Machine.cpu ~kernel:true Costs.cache_hit;
        let container =
          Rescont.Binding.resource_binding (Machine.binding (Machine.self ()))
        in
        Disksim.Disk.read disk ~container ~bytes;
        bytes
    | File_cache.Miss bytes, None ->
        (* No disk model attached: the legacy fixed miss penalty. *)
        Machine.cpu ~kernel:true Costs.cache_miss;
        bytes
    | File_cache.Not_found_doc, _ ->
        Machine.cpu ~kernel:true Costs.cache_hit;
        80
  in
  Machine.cpu ~kernel:true (Simtime.span_add Costs.write_syscall Costs.request_misc);
  let machine = Netsim.Stack.machine stack in
  let trace = Machine.trace machine in
  if Engine.Tracelog.enabled trace then
    Engine.Tracelog.event trace (Machine.now machine)
      (Engine.Trace_event.Http_response
         { conn = conn.Netsim.Socket.conn_id; path = meta.Http.path; bytes = body_bytes });
  Netsim.Stack.send stack conn (Http.response ~now:(Machine.now machine) meta ~body_bytes);
  not meta.Http.keep_alive
