module Simtime = Engine.Simtime
module Machine = Procsim.Machine
module Process = Procsim.Process
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Ops = Rescont.Ops
module Socket = Netsim.Socket
module Stack = Netsim.Stack

type api = Select | Event_api

type policy =
  | No_containers
  | Inherit_listen
  | Per_connection of {
      parent : Rescont.Container.t;
      priority_of : Netsim.Socket.conn -> int;
    }

type tracked = {
  conn : Socket.conn;
  mutable desc : Rescont.Desc_table.desc option; (* per-connection container handle *)
}

type t = {
  stack : Stack.t;
  process : Process.t;
  cache : File_cache.t;
  disk : Disksim.Disk.t option;
  api : api;
  policy : policy;
  user_preference : Socket.conn -> int;
  dynamic_handler : (Socket.conn -> Http.meta -> unit) option;
  listens : Socket.listen list;
  mutable conns : tracked list; (* accept order = fd order *)
  wq : Machine.Waitq.t;
  static_served : Engine.Metrics.counter;
  accepts : Engine.Metrics.counter;
  poll_rounds : Engine.Metrics.counter;
  mutable started : bool;
}

let create ~stack ~process ~cache ?disk ?(api = Select) ?(policy = No_containers)
    ?(user_preference = fun _ -> 0) ?dynamic_handler ~listens () =
  let machine = Stack.machine stack in
  let registry = Machine.metrics machine in
  let labels = [ ("server", Process.name process) ] in
  let t =
    {
      stack;
      process;
      cache;
      disk;
      api;
      policy;
      user_preference;
      dynamic_handler;
      listens;
      conns = [];
      wq = Machine.Waitq.create ~name:"http-server" machine;
      static_served = Engine.Metrics.counter registry ~labels "http.static_served";
      accepts = Engine.Metrics.counter registry ~labels "http.accepts";
      poll_rounds = Engine.Metrics.counter registry ~labels "http.poll_rounds";
      started = false;
    }
  in
  Engine.Metrics.gauge registry ~labels "http.open_conns" (fun () ->
      float_of_int (List.length t.conns));
  List.iter (Stack.add_listen stack) listens;
  Stack.set_on_event stack (fun () -> Machine.Waitq.signal t.wq);
  t

let static_served t = Engine.Metrics.counter_value t.static_served
let open_conns t = List.length t.conns
let accepts t = Engine.Metrics.counter_value t.accepts
let poll_rounds t = Engine.Metrics.counter_value t.poll_rounds
let process t = t.process

let uses_containers t =
  match t.policy with No_containers -> false | Inherit_listen | Per_connection _ -> true

let conn_container tracked =
  match tracked.conn.Socket.container with Some c -> Some c | None -> None

let conn_priority t tracked =
  match t.policy with
  | No_containers -> t.user_preference tracked.conn
  | Inherit_listen | Per_connection _ -> (
      match conn_container tracked with
      | Some c -> (Container.attrs c).Attrs.priority
      | None -> 0)

let listen_priority t l =
  match t.policy with
  | No_containers -> 0
  | Inherit_listen | Per_connection _ -> (
      match l.Socket.listen_container with
      | Some c -> (Container.attrs c).Attrs.priority
      | None -> 0)

(* Charge the event-notification cost for one poll (paper §5.5). *)
let charge_poll t ~ready_count =
  match t.api with
  | Select ->
      let nfds = List.length t.listens + List.length t.conns in
      Machine.cpu ~kernel:true
        (Simtime.span_add Costs.select_base
           (Simtime.span_scale (float_of_int nfds) Costs.select_per_fd))
  | Event_api ->
      Machine.cpu ~kernel:true
        (Simtime.span_add Costs.event_api_base
           (Simtime.span_scale (float_of_int ready_count) Costs.event_api_per_event))

(* Rebind the server thread to a connection's container, paying the
   Table 1 rebind cost. *)
let rebind_to t container =
  let machine = Stack.machine t.stack in
  Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
  Machine.rebind machine (Machine.self ()) container

let rebind_default t =
  if uses_containers t then rebind_to t (Process.default_container t.process)

let drop_tracking t tracked =
  t.conns <- List.filter (fun x -> x.conn.Socket.conn_id <> tracked.conn.Socket.conn_id) t.conns;
  match tracked.desc with
  | Some desc ->
      Machine.cpu ~kernel:true Ops.Cost.destroy;
      Ops.rc_release (Process.descriptors t.process) desc;
      tracked.desc <- None
  | None -> ()

let close_conn t tracked =
  Machine.cpu ~kernel:true Costs.close_syscall;
  Stack.close t.stack tracked.conn;
  drop_tracking t tracked

let accept_one t listen conn =
  Machine.cpu ~kernel:true (Simtime.span_add Costs.accept_syscall Costs.conn_setup_misc);
  Engine.Metrics.incr t.accepts;
  let tracked = { conn; desc = None } in
  (match t.policy with
  | No_containers -> ()
  | Inherit_listen -> (
      match listen.Socket.listen_container with
      | Some c -> Socket.bind_container conn c
      | None -> ())
  | Per_connection { parent; priority_of } ->
      Machine.cpu ~kernel:true Ops.Cost.create;
      let attrs = Attrs.timeshare ~priority:(priority_of conn) () in
      let desc =
        Ops.rc_create (Process.descriptors t.process) ~parent
          ~name:(Printf.sprintf "conn-%d" conn.Socket.conn_id)
          ~attrs ()
      in
      tracked.desc <- Some desc;
      Socket.bind_container conn (Rescont.Desc_table.lookup (Process.descriptors t.process) desc));
  t.conns <- t.conns @ [ tracked ]

let respond t tracked meta =
  let close_now = Serve.static ~stack:t.stack ~cache:t.cache ?disk:t.disk tracked.conn meta in
  Engine.Metrics.incr t.static_served;
  if close_now then close_conn t tracked

let handle_request t tracked payload =
  let meta = Serve.parse_request payload in
  match (Http.is_dynamic meta, t.dynamic_handler) with
  | true, Some handler -> handler tracked.conn meta
  | (true | false), _ -> respond t tracked meta

let handle_conn t tracked =
  (match conn_container tracked with
  | Some c when uses_containers t -> rebind_to t c
  | Some _ | None -> ());
  match Stack.recv t.stack tracked.conn with
  | Some payload -> handle_request t tracked payload
  | None -> (
      match tracked.conn.Socket.state with
      | Socket.Close_wait | Socket.Closed -> close_conn t tracked
      | Socket.Established | Socket.Syn_rcvd -> ())

type event = Ev_accept of Socket.listen | Ev_conn of tracked

let ready_events t =
  let listen_events =
    List.filter_map
      (fun l ->
        if Socket.accept_ready l then Some (listen_priority t l, 0, Ev_accept l) else None)
      t.listens
  in
  let conn_events =
    List.filter_map
      (fun tracked ->
        let ready =
          Socket.readable tracked.conn
          || tracked.conn.Socket.state = Socket.Closed
        in
        if ready then Some (conn_priority t tracked, 1, Ev_conn tracked) else None)
      t.conns
  in
  (* Higher priority first; accepts before data at equal priority (the
     listen descriptor has the lowest fd); then fd order. *)
  let events = listen_events @ conn_events in
  List.stable_sort
    (fun (pa, ka, _) (pb, kb, _) ->
      match compare pb pa with 0 -> compare ka kb | n -> n)
    events

(* How much of the ready set one poll round works through.

   - With select() the application gets the whole ready bitmap and works
     through it, thttpd-style (accepting at most one connection per listen
     socket per round, as thttpd does); a request arriving mid-batch waits
     for the round to finish, whatever its priority.
   - The scalable event API dequeues one (priority-ordered) event at a
     time, so freshly arrived high-priority work overtakes everything that
     arrived before it. *)
let serve_round t events =
  let events = match (t.api, events) with Event_api, e :: _ -> [ e ] | _, es -> es in
  List.iter
    (fun (_, _, ev) ->
      match ev with
      | Ev_accept l -> (
          (* One accept per listen socket per round (thttpd behaviour). *)
          match Stack.accept t.stack l with
          | Some conn -> accept_one t l conn
          | None -> ())
      | Ev_conn tracked ->
          if tracked.conn.Socket.state = Socket.Closed then drop_tracking t tracked
          else handle_conn t tracked)
    events

let body t () =
  let rec loop () =
    let events = ready_events t in
    if events = [] then begin
      Machine.Waitq.wait t.wq;
      loop ()
    end
    else begin
      rebind_default t;
      Engine.Metrics.incr t.poll_rounds;
      charge_poll t ~ready_count:(List.length events);
      serve_round t events;
      loop ()
    end
  in
  loop ()

let start t =
  if t.started then invalid_arg "Event_server.start: already started";
  t.started <- true;
  Process.spawn_thread t.process ~name:(Process.name t.process ^ "-loop") (body t)
