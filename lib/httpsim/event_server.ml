module Simtime = Engine.Simtime
module Machine = Procsim.Machine
module Process = Procsim.Process
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Ops = Rescont.Ops
module Socket = Netsim.Socket
module Stack = Netsim.Stack

type api = Select | Event_api

type policy =
  | No_containers
  | Inherit_listen
  | Per_connection of {
      parent : Rescont.Container.t;
      priority_of : Netsim.Socket.conn -> int;
    }

type tracked = {
  conn : Socket.conn;
  mutable desc : Rescont.Desc_table.desc option; (* per-connection container handle *)
}

(* One slot of the reusable ready-set buffer.  A poll round used to build
   two lists, append them and [stable_sort] the result — a pile of cons
   cells and closures per round, i.e. per request.  The slots below are
   allocated once and refilled; [ev_listen]/[ev_tracked] hold server-owned
   dummies while a slot is parked so it pins nothing. *)
type ev = {
  mutable ev_prio : int;
  mutable ev_kind : int; (* 0 = accept (listen ready), 1 = conn ready *)
  mutable ev_listen : Socket.listen;
  mutable ev_tracked : tracked;
}

type t = {
  stack : Stack.t;
  process : Process.t;
  cache : File_cache.t;
  disk : Disksim.Disk.t option;
  api : api;
  policy : policy;
  user_preference : Socket.conn -> int;
  dynamic_handler : (Socket.conn -> Http.meta -> unit) option;
  listens : Socket.listen list;
  nlistens : int;
  mutable conns : tracked array; (* first [nconns] live, accept = fd order *)
  mutable nconns : int;
  dummy_tracked : tracked;
  dummy_listen : Socket.listen;
  mutable events : ev array; (* first [nevents] filled, priority order *)
  mutable nevents : int;
  wq : Machine.Waitq.t;
  static_served : Engine.Metrics.counter;
  accepts : Engine.Metrics.counter;
  poll_rounds : Engine.Metrics.counter;
  mutable started : bool;
}

let create ~stack ~process ~cache ?disk ?(api = Select) ?(policy = No_containers)
    ?(user_preference = fun _ -> 0) ?dynamic_handler ~listens () =
  let machine = Stack.machine stack in
  let registry = Machine.metrics machine in
  let labels = [ ("server", Process.name process) ] in
  let dummy_tracked =
    {
      conn =
        Socket.make_conn
          ~src:(Netsim.Ipaddr.v 0 0 0 0)
          ~src_port:0 ~client:Socket.null_handlers ~now:Simtime.zero;
      desc = None;
    }
  in
  let dummy_listen = Socket.make_listen ~port:0 () in
  let t =
    {
      stack;
      process;
      cache;
      disk;
      api;
      policy;
      user_preference;
      dynamic_handler;
      listens;
      nlistens = List.length listens;
      conns = Array.make 8 dummy_tracked;
      nconns = 0;
      dummy_tracked;
      dummy_listen;
      events = [||];
      nevents = 0;
      wq = Machine.Waitq.create ~name:"http-server" machine;
      static_served = Engine.Metrics.counter registry ~labels "http.static_served";
      accepts = Engine.Metrics.counter registry ~labels "http.accepts";
      poll_rounds = Engine.Metrics.counter registry ~labels "http.poll_rounds";
      started = false;
    }
  in
  Engine.Metrics.gauge registry ~labels "http.open_conns" (fun () ->
      float_of_int t.nconns);
  List.iter (Stack.add_listen stack) listens;
  Stack.set_on_event stack (fun () -> Machine.Waitq.signal t.wq);
  t

let static_served t = Engine.Metrics.counter_value t.static_served
let open_conns t = t.nconns
let accepts t = Engine.Metrics.counter_value t.accepts
let poll_rounds t = Engine.Metrics.counter_value t.poll_rounds
let process t = t.process

let uses_containers t =
  match t.policy with No_containers -> false | Inherit_listen | Per_connection _ -> true

let conn_container tracked =
  match tracked.conn.Socket.container with Some c -> Some c | None -> None

let conn_priority t tracked =
  match t.policy with
  | No_containers -> t.user_preference tracked.conn
  | Inherit_listen | Per_connection _ -> (
      match conn_container tracked with
      | Some c -> (Container.attrs c).Attrs.priority
      | None -> 0)

let listen_priority t l =
  match t.policy with
  | No_containers -> 0
  | Inherit_listen | Per_connection _ -> (
      match l.Socket.listen_container with
      | Some c -> (Container.attrs c).Attrs.priority
      | None -> 0)

(* Charge the event-notification cost for one poll (paper §5.5). *)
let charge_poll t ~ready_count =
  match t.api with
  | Select ->
      let nfds = t.nlistens + t.nconns in
      Machine.cpu ~kernel:true
        (Simtime.span_add Costs.select_base
           (Simtime.span_scale (float_of_int nfds) Costs.select_per_fd))
  | Event_api ->
      Machine.cpu ~kernel:true
        (Simtime.span_add Costs.event_api_base
           (Simtime.span_scale (float_of_int ready_count) Costs.event_api_per_event))

(* Rebind the server thread to a connection's container, paying the
   Table 1 rebind cost. *)
let rebind_to t container =
  let machine = Stack.machine t.stack in
  Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
  Machine.rebind machine (Machine.self ()) container

let rebind_default t =
  if uses_containers t then rebind_to t (Process.default_container t.process)

let track t tracked =
  if t.nconns = Array.length t.conns then begin
    let fresh = Array.make (2 * t.nconns) t.dummy_tracked in
    Array.blit t.conns 0 fresh 0 t.nconns;
    t.conns <- fresh
  end;
  t.conns.(t.nconns) <- tracked;
  t.nconns <- t.nconns + 1

let drop_tracking t tracked =
  let rec find i =
    if i >= t.nconns then -1
    else if t.conns.(i).conn.Socket.conn_id = tracked.conn.Socket.conn_id then i
    else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    (* Shift rather than swap: fd (accept) order is the select() tie-break. *)
    Array.blit t.conns (i + 1) t.conns i (t.nconns - i - 1);
    t.nconns <- t.nconns - 1;
    t.conns.(t.nconns) <- t.dummy_tracked
  end;
  match tracked.desc with
  | Some desc ->
      Machine.cpu ~kernel:true Ops.Cost.destroy;
      Ops.rc_release (Process.descriptors t.process) desc;
      tracked.desc <- None
  | None -> ()

let close_conn t tracked =
  Machine.cpu ~kernel:true Costs.close_syscall;
  Stack.close t.stack tracked.conn;
  drop_tracking t tracked

let accept_one t listen conn =
  Machine.cpu ~kernel:true (Simtime.span_add Costs.accept_syscall Costs.conn_setup_misc);
  Engine.Metrics.incr t.accepts;
  let tracked = { conn; desc = None } in
  (match t.policy with
  | No_containers -> ()
  | Inherit_listen -> (
      match listen.Socket.listen_container with
      | Some c -> Socket.bind_container conn c
      | None -> ())
  | Per_connection { parent; priority_of } ->
      Machine.cpu ~kernel:true Ops.Cost.create;
      let attrs = Attrs.timeshare ~priority:(priority_of conn) () in
      let desc =
        Ops.rc_create (Process.descriptors t.process) ~parent
          ~name:(Printf.sprintf "conn-%d" conn.Socket.conn_id)
          ~attrs ()
      in
      tracked.desc <- Some desc;
      Socket.bind_container conn (Rescont.Desc_table.lookup (Process.descriptors t.process) desc));
  track t tracked

let respond t tracked meta =
  let close_now = Serve.static ~stack:t.stack ~cache:t.cache ?disk:t.disk tracked.conn meta in
  Engine.Metrics.incr t.static_served;
  if close_now then close_conn t tracked

let handle_request t tracked payload =
  let meta = Serve.parse_request payload in
  match (Http.is_dynamic meta, t.dynamic_handler) with
  | true, Some handler -> handler tracked.conn meta
  | (true | false), _ -> respond t tracked meta

let handle_conn t tracked =
  (match conn_container tracked with
  | Some c when uses_containers t -> rebind_to t c
  | Some _ | None -> ());
  match Stack.recv t.stack tracked.conn with
  | Some payload -> handle_request t tracked payload
  | None -> (
      match tracked.conn.Socket.state with
      | Socket.Close_wait | Socket.Closed -> close_conn t tracked
      | Socket.Established | Socket.Syn_rcvd -> ())

let ensure_events t n =
  if Array.length t.events < n then begin
    let cap = max n (2 * max 4 (Array.length t.events)) in
    let fresh =
      Array.init cap (fun _ ->
          { ev_prio = 0; ev_kind = 0; ev_listen = t.dummy_listen; ev_tracked = t.dummy_tracked })
    in
    Array.blit t.events 0 fresh 0 (Array.length t.events);
    t.events <- fresh
  end

(* In-place stable insertion sort of the filled prefix: higher priority
   first, accepts before data at equal priority (the listen descriptor has
   the lowest fd).  Slots were filled listens-first then conns in fd
   order, so stability reproduces the old
   [listen_events @ conn_events |> stable_sort] ordering exactly.  Ready
   sets are small (bounded by open descriptors), so quadratic worst case
   is irrelevant next to the allocation it avoids. *)
let sort_events t =
  let a = t.events in
  for i = 1 to t.nevents - 1 do
    let key = a.(i) in
    let j = ref (i - 1) in
    while
      !j >= 0
      && (a.(!j).ev_prio < key.ev_prio
         || (a.(!j).ev_prio = key.ev_prio && a.(!j).ev_kind > key.ev_kind))
    do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- key
  done

let collect_ready t =
  let n = ref 0 in
  let fill prio kind listen tracked =
    ensure_events t (!n + 1);
    let ev = t.events.(!n) in
    ev.ev_prio <- prio;
    ev.ev_kind <- kind;
    ev.ev_listen <- listen;
    ev.ev_tracked <- tracked;
    incr n
  in
  List.iter
    (fun l ->
      if Socket.accept_ready l then fill (listen_priority t l) 0 l t.dummy_tracked)
    t.listens;
  for i = 0 to t.nconns - 1 do
    let tracked = t.conns.(i) in
    if Socket.readable tracked.conn || tracked.conn.Socket.state = Socket.Closed then
      fill (conn_priority t tracked) 1 t.dummy_listen tracked
  done;
  t.nevents <- !n;
  sort_events t

(* How much of the ready set one poll round works through.

   - With select() the application gets the whole ready bitmap and works
     through it, thttpd-style (accepting at most one connection per listen
     socket per round, as thttpd does); a request arriving mid-batch waits
     for the round to finish, whatever its priority.
   - The scalable event API dequeues one (priority-ordered) event at a
     time, so freshly arrived high-priority work overtakes everything that
     arrived before it. *)
let serve_round t =
  let n = match t.api with Event_api -> min 1 t.nevents | Select -> t.nevents in
  for i = 0 to n - 1 do
    let ev = t.events.(i) in
    if ev.ev_kind = 0 then begin
      (* One accept per listen socket per round (thttpd behaviour). *)
      match Stack.accept t.stack ev.ev_listen with
      | Some conn -> accept_one t ev.ev_listen conn
      | None -> ()
    end
    else begin
      let tracked = ev.ev_tracked in
      if tracked.conn.Socket.state = Socket.Closed then drop_tracking t tracked
      else handle_conn t tracked
    end
  done;
  (* Park every filled slot with dummies so the buffer retains nothing. *)
  for i = 0 to t.nevents - 1 do
    let ev = t.events.(i) in
    ev.ev_listen <- t.dummy_listen;
    ev.ev_tracked <- t.dummy_tracked
  done;
  t.nevents <- 0

let body t () =
  let rec loop () =
    collect_ready t;
    if t.nevents = 0 then begin
      Machine.Waitq.wait t.wq;
      loop ()
    end
    else begin
      rebind_default t;
      Engine.Metrics.incr t.poll_rounds;
      charge_poll t ~ready_count:t.nevents;
      serve_round t;
      loop ()
    end
  in
  loop ()

let start t =
  if t.started then invalid_arg "Event_server.start: already started";
  t.started <- true;
  Process.spawn_thread t.process ~name:(Process.name t.process ^ "-loop") (body t)
