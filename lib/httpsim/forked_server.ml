module Simtime = Engine.Simtime
module Machine = Procsim.Machine
module Process = Procsim.Process
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Ops = Rescont.Ops
module Socket = Netsim.Socket
module Stack = Netsim.Stack

type job = { conn : Socket.conn; container : Container.t option }

type worker = {
  mutable w_process : Process.t;
  w_wq : Machine.Waitq.t;
  mutable w_job : job option;
  mutable w_busy : bool;
}

type t = {
  stack : Stack.t;
  master : Process.t;
  cache : File_cache.t;
  disk : Disksim.Disk.t option;
  worker_count : int;
  policy : Event_server.policy;
  listens : Socket.listen list;
  master_wq : Machine.Waitq.t;
  mutable workers : worker list;
  mutable backlog : job list; (* accepted, waiting for a worker *)
  served : Engine.Metrics.counter;
  accepts : Engine.Metrics.counter;
  mutable started : bool;
}

let create ~stack ~master ~cache ?disk ?(workers = 8)
    ?(policy = Event_server.No_containers) ~listens () =
  let machine = Stack.machine stack in
  let registry = Machine.metrics machine in
  let labels = [ ("server", Process.name master) ] in
  let t =
    {
      stack;
      master;
      cache;
      disk;
      worker_count = workers;
      policy;
      listens;
      master_wq = Machine.Waitq.create ~name:"forked-master" machine;
      workers = [];
      backlog = [];
      served = Engine.Metrics.counter registry ~labels "http.static_served";
      accepts = Engine.Metrics.counter registry ~labels "http.accepts";
      started = false;
    }
  in
  Engine.Metrics.gauge registry ~labels "http.backlog" (fun () ->
      float_of_int (List.length t.backlog));
  List.iter (Stack.add_listen stack) listens;
  Stack.add_on_event stack (fun () -> Machine.Waitq.signal t.master_wq);
  t

let served t = Engine.Metrics.counter_value t.served
let accepts t = Engine.Metrics.counter_value t.accepts
let idle_workers t = List.length (List.filter (fun w -> not w.w_busy) t.workers)
let backlog t = List.length t.backlog

let respond t conn meta =
  let close_now = Serve.static ~stack:t.stack ~cache:t.cache ?disk:t.disk conn meta in
  Engine.Metrics.incr t.served;
  close_now

(* The body each pre-forked worker runs inside its own process. *)
let worker_body t worker () =
  let machine = Stack.machine t.stack in
  let home = Process.default_container worker.w_process in
  let serve job =
    (match job.container with
    | Some c ->
        Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
        Machine.rebind machine (Machine.self ()) c
    | None -> ());
    let conn = job.conn in
    let rec conn_loop () =
      match Stack.recv t.stack conn with
      | Some payload ->
          let meta = Serve.parse_request payload in
          let close_now = respond t conn meta in
          if close_now then begin
            if conn.Socket.state <> Socket.Closed then begin
              Machine.cpu ~kernel:true Costs.close_syscall;
              Stack.close t.stack conn
            end
          end
          else conn_loop ()
      | None -> (
          match conn.Socket.state with
          | Socket.Close_wait | Socket.Closed ->
              Machine.cpu ~kernel:true Costs.close_syscall;
              Stack.close t.stack conn
          | Socket.Established | Socket.Syn_rcvd ->
              Machine.Waitq.wait worker.w_wq;
              conn_loop ())
    in
    conn_loop ();
    (match job.container with
    | Some c ->
        Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
        Machine.rebind machine (Machine.self ()) home;
        Container.release c
    | None -> ())
  in
  let rec loop () =
    match worker.w_job with
    | Some job ->
        worker.w_job <- None;
        serve job;
        worker.w_busy <- false;
        (* Tell the master a worker freed up. *)
        Machine.Waitq.signal t.master_wq;
        loop ()
    | None ->
        Machine.Waitq.wait worker.w_wq;
        loop ()
  in
  loop ()

(* Workers wake on their private queue for both job handoff and socket
   events; the stack's on_event also nudges busy workers so blocked
   [conn_loop]s recheck their sockets. *)
let nudge_workers t = List.iter (fun w -> if w.w_busy then Machine.Waitq.signal w.w_wq) t.workers

let assign _t worker job =
  Machine.cpu ~kernel:true Costs.ipc_descriptor_pass;
  (match job.container with
  | Some _ -> Machine.cpu ~kernel:true Ops.Cost.move_between_processes
  | None -> ());
  worker.w_busy <- true;
  worker.w_job <- Some job;
  Machine.Waitq.signal worker.w_wq

let accept_job t listen conn =
  Machine.cpu ~kernel:true (Simtime.span_add Costs.accept_syscall Costs.conn_setup_misc);
  Engine.Metrics.incr t.accepts;
  let container =
    match t.policy with
    | Event_server.No_containers -> None
    | Event_server.Inherit_listen ->
        (match listen.Socket.listen_container with
        | Some c ->
            Socket.bind_container conn c;
            ()
        | None -> ());
        None
    | Event_server.Per_connection { parent; priority_of } ->
        Machine.cpu ~kernel:true Ops.Cost.create;
        let c =
          Container.create ~parent
            ~name:(Printf.sprintf "fconn-%d" conn.Socket.conn_id)
            ~attrs:(Attrs.timeshare ~priority:(priority_of conn) ())
            ()
        in
        Socket.bind_container conn c;
        Some c
  in
  { conn; container }

let master_body t () =
  let rec dispatch_backlog () =
    match (t.backlog, List.find_opt (fun w -> not w.w_busy) t.workers) with
    | job :: rest, Some worker ->
        t.backlog <- rest;
        assign t worker job;
        dispatch_backlog ()
    | _, _ -> ()
  in
  let rec loop () =
    (* Accept everything pending, then hand out work. *)
    List.iter
      (fun listen ->
        let rec accept_all () =
          match Stack.accept t.stack listen with
          | Some conn ->
              t.backlog <- t.backlog @ [ accept_job t listen conn ];
              accept_all ()
          | None -> ()
        in
        accept_all ())
      t.listens;
    dispatch_backlog ();
    nudge_workers t;
    Machine.Waitq.wait t.master_wq;
    loop ()
  in
  loop ()

let start t =
  if t.started then invalid_arg "Forked_server.start: already started";
  t.started <- true;
  let machine = Stack.machine t.stack in
  (* Pre-fork the worker pool (paper Fig. 1). *)
  for i = 1 to t.worker_count do
    Machine.steal_time machine ~cost:Costs.fork
      ~charge:(`Container (Process.default_container t.master));
    let make_worker () =
      (* The worker record exists before the fork so the body can capture
         it; the process field is patched in right after. *)
      let wq = Machine.Waitq.create ~name:(Printf.sprintf "fworker-%d" i) machine in
      let worker = { w_process = t.master; w_wq = wq; w_job = None; w_busy = false } in
      let process, _thread =
        Process.fork t.master ~name:(Printf.sprintf "httpd-w%d" i) (worker_body t worker)
      in
      worker.w_process <- process;
      worker
    in
    t.workers <- make_worker () :: t.workers
  done;
  ignore (Process.spawn_thread t.master ~name:"httpd-master" (master_body t))
