(** The server's document store and in-memory file cache.

    The paper's experiments serve a cached 1 KB static file; this module
    also models misses (a disk read costing {!Costs.cache_miss}) so that
    tests and examples can exercise cold-cache behaviour.  Eviction is LRU
    over a byte-capacity budget.

    Internally a struct-of-arrays arena with an intrusive doubly-linked
    LRU list (DESIGN.md §15): lookup, touch, and eviction are O(1) and
    allocation-free, so one machine serves a 10^6-document Zipf working
    set at the same per-request cost as the seed's 4 documents.  Documents
    are identified by {!Docset} ids on the hot path; the [~path] API is
    the compat view over the same state.  {!File_cache_ref} is the
    executable spec this implementation is QCheck-lockstepped against. *)

type t

val create : ?capacity_bytes:int -> unit -> t
(** Default capacity 64 MB (the paper's machine had 128 MB of RAM). *)

val add_document : t -> path:string -> bytes:int -> unit
(** Register a servable document (interning [path] into the global
    {!Docset}).  Documents start uncached; re-registration is ignored. *)

val add_doc : t -> doc:int -> bytes:int -> unit
(** Register by interned doc id (the non-allocating form used by bulk
    docset builders). *)

val document_size : t -> path:string -> int option

type outcome = Hit of int | Miss of int | Not_found_doc

val lookup : t -> path:string -> outcome
(** Look a path up, updating cache state: a [Miss] loads the document
    (evicting LRU entries if needed) so a repeat lookup hits.  The [int]
    is the document size in bytes. *)

val lookup_doc : t -> doc:int -> outcome
(** {!lookup} by interned doc id — the request hot path; O(1), allocation
    free.  Ids the cache never saw (including negative ones) are
    [Not_found_doc]. *)

val lookup_cost : outcome -> Engine.Simtime.span
(** CPU to charge for the lookup: {!Costs.cache_hit}, {!Costs.cache_miss},
    or a hit-priced scan for misses of unknown documents. *)

val warm : t -> unit
(** Load every registered document that fits, in registration order, as
    the paper's warm-cache experiments assume.  Warm loads count as
    (unmetered) lookups for recency purposes: each loaded document is
    stamped and becomes most-recently-used in turn. *)

val is_cached : t -> path:string -> bool
(** Residency probe (no LRU side effects); for tests and lockstep checks. *)

val hits : t -> int
val misses : t -> int
val cached_bytes : t -> int

val registered : t -> int
(** Number of registered documents. *)

val register_metrics : t -> Engine.Metrics.t -> unit
(** Register the cache's hit/miss counters and a [cache.cached_bytes]
    gauge into [registry].  {!hits}/{!misses} remain views over the same
    counters, so the registry and the accessors always agree. *)

val register_invariants : t -> Engine.Invariant.t -> unit
(** Register the [cache.bytes-consistency] law: {!cached_bytes} equals the
    sum of resident entries' sizes, is non-negative, never exceeds the
    configured capacity, and the intrusive LRU list threads exactly the
    resident slots. *)
