(** The server's document store and in-memory file cache.

    The paper's experiments serve a cached 1 KB static file; this module
    also models misses (a disk read costing {!Costs.cache_miss}) so that
    tests and examples can exercise cold-cache behaviour.  Eviction is LRU
    over a byte-capacity budget. *)

type t

val create : ?capacity_bytes:int -> unit -> t
(** Default capacity 64 MB (the paper's machine had 128 MB of RAM). *)

val add_document : t -> path:string -> bytes:int -> unit
(** Register a servable document.  Documents start uncached. *)

val document_size : t -> path:string -> int option

type outcome = Hit of int | Miss of int | Not_found_doc

val lookup : t -> path:string -> outcome
(** Look a path up, updating cache state: a [Miss] loads the document
    (evicting LRU entries if needed) so a repeat lookup hits.  The [int]
    is the document size in bytes. *)

val lookup_cost : outcome -> Engine.Simtime.span
(** CPU to charge for the lookup: {!Costs.cache_hit}, {!Costs.cache_miss},
    or a hit-priced scan for misses of unknown documents. *)

val warm : t -> unit
(** Load every registered document that fits (in registration order), as
    the paper's warm-cache experiments assume. *)

val hits : t -> int
val misses : t -> int
val cached_bytes : t -> int

val register_metrics : t -> Engine.Metrics.t -> unit
(** Register the cache's hit/miss counters and a [cache.cached_bytes]
    gauge into [registry].  {!hits}/{!misses} remain views over the same
    counters, so the registry and the accessors always agree. *)

val register_invariants : t -> Engine.Invariant.t -> unit
(** Register the [cache.bytes-consistency] law: {!cached_bytes} equals the
    sum of resident entries' sizes, is non-negative, and never exceeds the
    configured capacity. *)
