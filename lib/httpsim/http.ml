module Payload = Netsim.Payload

type meta = { path : string; doc : int; keep_alive : bool }

let request_bytes = 250
let header_bytes = 200

(* Workloads replay a URL population millions of times, and the string
   work per message — [Printf.sprintf] for a request line,
   [String.split_on_char] to parse it back, ["200 " ^ path] for the
   response — dominated the simulator's own minor allocation.  All of it
   is memoized per domain (plain globals would race under the parallel
   sweep), keyed by the interned {!Docset} id: a document seen before
   costs one array load, and because the request memo hands back the same
   physical tag string every time, the parse memo's probe hashes an
   interned key.  The memos are lazy and never cleared; they are bounded
   by the documents a domain actually touches, not the docset size, so a
   10^6-document registration does not materialize 10^6 tag strings. *)

type tag_memo = { mutable tags : string array (* doc id -> tag; "" = absent *) }

let memo_key () = Domain.DLS.new_key (fun () -> { tags = Array.make 256 "" })
let http10_tags = memo_key ()
let http11_tags = memo_key ()
let response_tags = memo_key ()

let parse_memo : (string, meta) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let memo_find memo doc build =
  if doc >= Array.length memo.tags then begin
    let bigger = Array.make (max (doc + 1) (2 * Array.length memo.tags)) "" in
    Array.blit memo.tags 0 bigger 0 (Array.length memo.tags);
    memo.tags <- bigger
  end;
  let tag = Array.unsafe_get memo.tags doc in
  if String.length tag > 0 then tag
  else begin
    let tag = build () in
    memo.tags.(doc) <- tag;
    tag
  end

let request_doc ~now ?(keep_alive = false) ~doc () =
  (* Bound-check before the memo: an id the docset never issued would
     otherwise drive the memo array's growth arithmetic (and its
     unsafe_get) out of bounds. *)
  if doc < 0 || doc >= Docset.size () then
    invalid_arg (Printf.sprintf "Http.request_doc: unknown doc id %d" doc);
  let memo = Domain.DLS.get (if keep_alive then http11_tags else http10_tags) in
  let tag =
    memo_find memo doc (fun () ->
        Printf.sprintf "GET %s HTTP/%s" (Docset.path_of doc)
          (if keep_alive then "1.1" else "1.0"))
  in
  Payload.make ~tag ~bytes:request_bytes now

let request ~now ?keep_alive ~path () = request_doc ~now ?keep_alive ~doc:(Docset.intern path) ()

let meta_of_path ?(keep_alive = false) path = { path; doc = Docset.intern path; keep_alive }

let parse_tag tag =
  match String.split_on_char ' ' tag with
  | [ "GET"; path; version ] ->
      { path; doc = Docset.intern path; keep_alive = String.equal version "HTTP/1.1" }
  | _ -> invalid_arg (Printf.sprintf "Http.parse: not a request: %S" tag)

let parse payload =
  let tag = payload.Payload.tag in
  let table = Domain.DLS.get parse_memo in
  match Hashtbl.find table tag with
  | meta -> meta
  | exception Not_found ->
      let meta = parse_tag tag in
      Hashtbl.replace table tag meta;
      meta

let response ~now meta ~body_bytes =
  let memo = Domain.DLS.get response_tags in
  let tag = memo_find memo meta.doc (fun () -> "200 " ^ meta.path) in
  Payload.make ~tag ~bytes:(body_bytes + header_bytes) now

let is_dynamic meta =
  let p = meta.path in
  String.length p >= 4 && p.[0] = '/' && p.[1] = 'c' && p.[2] = 'g' && p.[3] = 'i'
