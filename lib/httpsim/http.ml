module Payload = Netsim.Payload

type meta = { path : string; keep_alive : bool }

let request_bytes = 250
let header_bytes = 200

(* Workloads replay a small URL population millions of times, and the
   string work per message — [Printf.sprintf] for a request line,
   [String.split_on_char] to parse it back, ["200 " ^ path] for the
   response — dominated the simulator's own minor allocation.  All three
   are memoized per domain (plain globals would race under the parallel
   sweep): a path seen before costs one hashtable probe, and because the
   request memo hands back the same physical tag string every time, the
   parse memo's probe hashes an interned key.  The tables are keyed by
   path/tag and never cleared; they are bounded by the URL population. *)

let http10_tags : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let http11_tags : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let parse_memo : (string, meta) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let response_tags : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let request ~now ?(keep_alive = false) ~path () =
  let table = Domain.DLS.get (if keep_alive then http11_tags else http10_tags) in
  let tag =
    match Hashtbl.find table path with
    | tag -> tag
    | exception Not_found ->
        let tag =
          Printf.sprintf "GET %s HTTP/%s" path (if keep_alive then "1.1" else "1.0")
        in
        Hashtbl.replace table path tag;
        tag
  in
  Payload.make ~tag ~bytes:request_bytes now

let parse_tag tag =
  match String.split_on_char ' ' tag with
  | [ "GET"; path; version ] -> { path; keep_alive = String.equal version "HTTP/1.1" }
  | _ -> invalid_arg (Printf.sprintf "Http.parse: not a request: %S" tag)

let parse payload =
  let tag = payload.Payload.tag in
  let table = Domain.DLS.get parse_memo in
  match Hashtbl.find table tag with
  | meta -> meta
  | exception Not_found ->
      let meta = parse_tag tag in
      Hashtbl.replace table tag meta;
      meta

let response ~now meta ~body_bytes =
  let table = Domain.DLS.get response_tags in
  let tag =
    match Hashtbl.find table meta.path with
    | tag -> tag
    | exception Not_found ->
        let tag = "200 " ^ meta.path in
        Hashtbl.replace table meta.path tag;
        tag
  in
  Payload.make ~tag ~bytes:(body_bytes + header_bytes) now

let is_dynamic meta =
  let p = meta.path in
  String.length p >= 4 && p.[0] = '/' && p.[1] = 'c' && p.[2] = 'g' && p.[3] = 'i'
