(* Process-global document-id interning.

   Ids must be global, not domain-local: under sharded cluster execution a
   cache is populated on the main domain while requests are parsed on shard
   domains, so per-domain id assignment would silently map lookups to the
   wrong documents.  Interning takes a mutex (it is off the hot path — the
   request path carries the already-interned int), while [path_of] reads an
   atomically published array snapshot so hot readers never lock.

   Ids travel between domains only through synchronized hand-offs (shard
   barriers, domain spawns), which order the publishing writes before the
   reads.  Because interning order can differ between runs when domains
   race to intern, ids must never influence observable simulation order;
   per-cache state is therefore kept in dense per-cache slots
   (see {!File_cache}), never ordered by global id. *)

let mutex = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 1024 (* guarded by [mutex] *)
let paths : string array Atomic.t = Atomic.make (Array.make 1024 "")
let count = Atomic.make 0

let intern path =
  Mutex.lock mutex;
  let id =
    match Hashtbl.find_opt ids path with
    | Some id -> id
    | None ->
        let id = Atomic.get count in
        let arr = Atomic.get paths in
        let arr =
          if id < Array.length arr then arr
          else begin
            let bigger = Array.make (2 * Array.length arr) "" in
            Array.blit arr 0 bigger 0 (Array.length arr);
            Atomic.set paths bigger;
            bigger
          end
        in
        arr.(id) <- path;
        Hashtbl.replace ids path id;
        (* Publish after the slot is filled: a reader that observes
           [count > id] also observes [arr.(id)]. *)
        Atomic.set count (id + 1);
        id
  in
  Mutex.unlock mutex;
  id

let find_id path =
  Mutex.lock mutex;
  let id = match Hashtbl.find_opt ids path with Some id -> id | None -> -1 in
  Mutex.unlock mutex;
  id

let size () = Atomic.get count

let path_of id =
  if id < 0 || id >= Atomic.get count then
    invalid_arg (Printf.sprintf "Docset.path_of: unknown doc id %d" id);
  (Atomic.get paths).(id)
