(** Executable specification for {!File_cache}.

    The pre-arena hashtable implementation, kept as the QCheck-lockstep
    model: random register/lookup/warm sequences must produce identical
    outcomes, counters, residency, and eviction victims on both.  Eviction
    ties on equal [last_used] break by registration index (oldest
    registered first), matching the arena's structural LRU order — the
    historic code broke ties by hashtable iteration order, which this
    module fixes and a determinism test pins. *)

type t

val create : ?capacity_bytes:int -> unit -> t
val add_document : t -> path:string -> bytes:int -> unit
val document_size : t -> path:string -> int option

val lookup : t -> path:string -> File_cache.outcome
(** Same semantics as {!File_cache.lookup}. *)

val warm : t -> unit

val is_cached : t -> path:string -> bool
(** Residency probe for lockstep comparison; does not touch LRU state. *)

val hits : t -> int
val misses : t -> int
val cached_bytes : t -> int
