module Simtime = Engine.Simtime
module Machine = Procsim.Machine
module Process = Procsim.Process
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Ops = Rescont.Ops
module Socket = Netsim.Socket
module Stack = Netsim.Stack

type t = {
  stack : Stack.t;
  process : Process.t;
  cache : File_cache.t;
  disk : Disksim.Disk.t option;
  workers : int;
  policy : Event_server.policy;
  dynamic_handler : (Socket.conn -> Http.meta -> unit) option;
  listens : Socket.listen list;
  wq : Machine.Waitq.t;
  served : Engine.Metrics.counter;
  accepts : Engine.Metrics.counter;
  mutable active : int;
  mutable started : bool;
}

let create ~stack ~process ~cache ?disk ?(workers = 16)
    ?(policy = Event_server.No_containers) ?dynamic_handler ~listens () =
  let machine = Stack.machine stack in
  let registry = Machine.metrics machine in
  let labels = [ ("server", Process.name process) ] in
  let t =
    {
      stack;
      process;
      cache;
      disk;
      workers;
      policy;
      dynamic_handler;
      listens;
      wq = Machine.Waitq.create ~name:"threaded-http" machine;
      served = Engine.Metrics.counter registry ~labels "http.static_served";
      accepts = Engine.Metrics.counter registry ~labels "http.accepts";
      active = 0;
      started = false;
    }
  in
  Engine.Metrics.gauge registry ~labels "http.active_workers" (fun () -> float_of_int t.active);
  List.iter (Stack.add_listen stack) listens;
  (* All idle workers race for each event; the first to run claims it. *)
  Stack.set_on_event stack (fun () -> Machine.Waitq.broadcast t.wq);
  t

let served t = Engine.Metrics.counter_value t.served
let accepts t = Engine.Metrics.counter_value t.accepts
let active_workers t = t.active

let try_accept t =
  let rec scan = function
    | [] -> None
    | l :: rest -> (
        match Stack.accept t.stack l with
        | Some conn -> Some (l, conn)
        | None -> scan rest)
  in
  scan t.listens

let respond t conn meta =
  let close_now = Serve.static ~stack:t.stack ~cache:t.cache ?disk:t.disk conn meta in
  Engine.Metrics.incr t.served;
  close_now

type disposition = Close_now | Keep_serving | Detached

let handle_request t conn payload =
  let meta = Serve.parse_request payload in
  match (Http.is_dynamic meta, t.dynamic_handler) with
  | true, Some handler ->
      handler conn meta;
      (* The CGI worker owns the connection from here on: it will send the
         response and close; this worker must not touch the socket again. *)
      Detached
  | (true | false), _ -> if respond t conn meta then Close_now else Keep_serving

(* Serve one connection to completion. *)
let serve_conn t listen conn =
  let machine = Stack.machine t.stack in
  Machine.cpu ~kernel:true (Simtime.span_add Costs.accept_syscall Costs.conn_setup_misc);
  Engine.Metrics.incr t.accepts;
  let container_ref =
    match t.policy with
    | Event_server.No_containers -> None
    | Event_server.Inherit_listen ->
        (match listen.Socket.listen_container with
        | Some c ->
            Socket.bind_container conn c;
            Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
            Machine.rebind machine (Machine.self ()) c
        | None -> ());
        None
    | Event_server.Per_connection { parent; priority_of } ->
        Machine.cpu ~kernel:true Ops.Cost.create;
        let c =
          Container.create ~parent
            ~name:(Printf.sprintf "tconn-%d" conn.Socket.conn_id)
            ~attrs:(Attrs.timeshare ~priority:(priority_of conn) ())
            ()
        in
        Socket.bind_container conn c;
        Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
        Machine.rebind machine (Machine.self ()) c;
        Some c
  in
  let rec conn_loop () =
    match Stack.recv t.stack conn with
    | Some payload -> (
        match handle_request t conn payload with
        | Detached -> ()
        | Close_now ->
            if conn.Socket.state <> Socket.Closed then begin
              Machine.cpu ~kernel:true Costs.close_syscall;
              Stack.close t.stack conn
            end
        | Keep_serving -> conn_loop ())
    | None -> (
        match conn.Socket.state with
        | Socket.Close_wait | Socket.Closed ->
            Machine.cpu ~kernel:true Costs.close_syscall;
            Stack.close t.stack conn
        | Socket.Established | Socket.Syn_rcvd ->
            Machine.Waitq.wait t.wq;
            conn_loop ())
  in
  conn_loop ();
  (* Back to the pool: rebind to the process principal and release the
     per-connection container. *)
  match container_ref with
  | Some c ->
      Machine.cpu ~kernel:true Ops.Cost.rebind_thread;
      Machine.rebind machine (Machine.self ()) (Process.default_container t.process);
      Container.release c
  | None -> (
      match t.policy with
      | Event_server.Inherit_listen ->
          Machine.rebind machine (Machine.self ()) (Process.default_container t.process)
      | Event_server.No_containers | Event_server.Per_connection _ -> ())

let worker_body t () =
  let rec loop () =
    match try_accept t with
    | Some (listen, conn) ->
        t.active <- t.active + 1;
        serve_conn t listen conn;
        t.active <- t.active - 1;
        loop ()
    | None ->
        Machine.Waitq.wait t.wq;
        loop ()
  in
  loop ()

let start t =
  if t.started then invalid_arg "Threaded_server.start: already started";
  t.started <- true;
  for i = 1 to t.workers do
    ignore
      (Process.spawn_thread t.process ~name:(Printf.sprintf "worker-%d" i) (worker_body t))
  done
