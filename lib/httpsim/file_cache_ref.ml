(* Executable specification for {!File_cache}.

   This is the pre-arena implementation — a string-keyed hashtable with a
   clock-stamp LRU found by folding the whole table — kept, per repo
   convention, as the obviously-correct model the struct-of-arrays arena
   is QCheck-lockstepped against.  Two deliberate fixes over the historic
   code, both pinned by tests:

   - registration prepends ([order_rev]) instead of the old
     [t.order <- t.order @ [path]] quadratic append; [warm] reverses once;
   - eviction ties on equal [last_used] break by registration index, not
     hashtable iteration order, making the victim sequence deterministic
     and equal to the arena's structural LRU order (warmed-but-untouched
     entries die oldest-registered first). *)

type entry = {
  bytes : int;
  reg : int; (* registration index: the deterministic tie-break *)
  mutable cached : bool;
  mutable last_used : int;
}

type t = {
  capacity : int;
  docs : (string, entry) Hashtbl.t;
  mutable order_rev : string list; (* registration order, newest first *)
  mutable registered : int;
  mutable cached_bytes : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity_bytes = 64 * 1024 * 1024) () =
  if capacity_bytes <= 0 then invalid_arg "File_cache_ref.create: capacity must be positive";
  {
    capacity = capacity_bytes;
    docs = Hashtbl.create 256;
    order_rev = [];
    registered = 0;
    cached_bytes = 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let add_document t ~path ~bytes =
  if bytes < 0 then invalid_arg "File_cache_ref.add_document: negative size";
  if not (Hashtbl.mem t.docs path) then begin
    Hashtbl.replace t.docs path { bytes; reg = t.registered; cached = false; last_used = 0 };
    t.registered <- t.registered + 1;
    t.order_rev <- path :: t.order_rev
  end

let document_size t ~path =
  match Hashtbl.find_opt t.docs path with Some e -> Some e.bytes | None -> None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        if not e.cached then acc
        else
          match acc with
          | Some best
            when best.last_used < e.last_used
                 || (best.last_used = e.last_used && best.reg < e.reg) ->
              acc
          | Some _ | None -> Some e)
      t.docs None
  in
  match victim with
  | None -> false
  | Some e ->
      e.cached <- false;
      t.cached_bytes <- t.cached_bytes - e.bytes;
      true

let load t e =
  let rec make_room () =
    if t.cached_bytes + e.bytes > t.capacity then if evict_lru t then make_room ()
  in
  if e.bytes <= t.capacity then begin
    make_room ();
    e.cached <- true;
    t.cached_bytes <- t.cached_bytes + e.bytes
  end

let lookup t ~path =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.docs path with
  | None -> File_cache.Not_found_doc
  | Some e ->
      e.last_used <- t.clock;
      if e.cached then begin
        t.hits <- t.hits + 1;
        File_cache.Hit e.bytes
      end
      else begin
        t.misses <- t.misses + 1;
        load t e;
        File_cache.Miss e.bytes
      end

(* Warm loads are stamped lookups in registration order (minus the
   hit/miss counters); {!File_cache} shares this definition, which keeps
   its structural LRU equal to this clock LRU after warms that follow
   traffic. *)
let warm t =
  List.iter
    (fun path ->
      match Hashtbl.find_opt t.docs path with
      | Some e when (not e.cached) && e.bytes <= t.capacity ->
          t.clock <- t.clock + 1;
          e.last_used <- t.clock;
          load t e
      | Some _ | None -> ())
    (List.rev t.order_rev)

let is_cached t ~path =
  match Hashtbl.find_opt t.docs path with Some e -> e.cached | None -> false

let hits t = t.hits
let misses t = t.misses
let cached_bytes t = t.cached_bytes
