module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Machine = Procsim.Machine
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Usage = Rescont.Usage

type request = { bytes : int; completion : unit -> unit }

type t = {
  machine : Machine.t;
  seek_time : Simtime.span;
  bytes_per_ns : float;
  queues : (int, request Queue.t * Container.t) Hashtbl.t;
  served_stamp : (int, int) Hashtbl.t;
  mutable tick : int;
  mutable depth : int;
  mutable in_service : bool;
  mutable busy_ns : int;
  mutable completed : int;
}

let create ?(seek_time = Simtime.ms 8) ?(transfer_rate_mb_s = 20.) ~machine () =
  if transfer_rate_mb_s <= 0. then invalid_arg "Disk.create: rate must be positive";
  {
    machine;
    seek_time;
    bytes_per_ns = transfer_rate_mb_s *. 1e6 /. 1e9;
    queues = Hashtbl.create 16;
    served_stamp = Hashtbl.create 16;
    tick = 0;
    depth = 0;
    in_service = false;
    busy_ns = 0;
    completed = 0;
  }

let service_time t ~bytes =
  let transfer_ns = int_of_float (Float.round (float_of_int bytes /. t.bytes_per_ns)) in
  Simtime.span_add t.seek_time (Simtime.span_of_ns transfer_ns)

let queue_for t container =
  let cid = Container.id container in
  match Hashtbl.find_opt t.queues cid with
  | Some (q, _) -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues cid (q, container);
      q

(* Container-priority order, least-recently-served among equals — the same
   discipline as the network stack's deferred-processing queues. *)
let best_pending t =
  let stamp c =
    match Hashtbl.find_opt t.served_stamp (Container.id c) with Some s -> s | None -> -1
  in
  Hashtbl.fold
    (fun _ (q, c) acc ->
      if Queue.is_empty q then acc
      else
        let prio = (Container.attrs c).Attrs.priority in
        match acc with
        | Some (best, best_prio)
          when best_prio > prio || (best_prio = prio && stamp best <= stamp c) ->
            acc
        | Some _ | None -> Some (c, prio))
    t.queues None

let rec start_next t =
  if not t.in_service then
    match best_pending t with
    | None -> ()
    | Some (container, _) -> (
        match Queue.take_opt (queue_for t container) with
        | None -> ()
        | Some request ->
            t.in_service <- true;
            t.tick <- t.tick + 1;
            Hashtbl.replace t.served_stamp (Container.id container) t.tick;
            let span = service_time t ~bytes:request.bytes in
            Sim.post (Machine.sim t.machine) span (fun () ->
                   t.in_service <- false;
                   t.depth <- t.depth - 1;
                   t.busy_ns <- t.busy_ns + Simtime.span_to_ns span;
                   t.completed <- t.completed + 1;
                   Container.charge_disk container ~bytes:request.bytes span;
                   request.completion ();
                   start_next t))

let submit t ~container ~bytes completion =
  if bytes < 0 then invalid_arg "Disk.submit: negative size";
  Queue.push { bytes; completion } (queue_for t container);
  t.depth <- t.depth + 1;
  start_next t

let read t ~container ~bytes =
  let wq = Machine.Waitq.create ~name:"disk-read" t.machine in
  submit t ~container ~bytes (fun () -> Machine.Waitq.signal wq);
  Machine.Waitq.wait wq

let queue_depth t = t.depth
let busy_time t = Simtime.span_of_ns t.busy_ns
let completed t = t.completed
