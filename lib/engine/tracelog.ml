type entry = { time : Simtime.t; event : Trace_event.t }

type t = {
  mutable on : bool;
  capacity : int;
  buffer : entry option array;
  mutable head : int; (* next write slot *)
  mutable count : int;
}

let create ?(enabled = false) ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Tracelog.create: capacity must be positive";
  { on = enabled; capacity; buffer = Array.make capacity None; head = 0; count = 0 }

let enabled t = t.on
let set_enabled t v = t.on <- v

let event t time ev =
  if t.on then begin
    t.buffer.(t.head) <- Some { time; event = ev };
    t.head <- (t.head + 1) mod t.capacity;
    if t.count < t.capacity then t.count <- t.count + 1
  end

let emit t time ~category message =
  if t.on then event t time (Trace_event.Message { category; message })

let emitf t time ~category fmt =
  if t.on then
    Format.kasprintf (fun message -> emit t time ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t =
  let result = ref [] in
  let start = (t.head - t.count + t.capacity) mod t.capacity in
  for i = t.count - 1 downto 0 do
    match t.buffer.((start + i) mod t.capacity) with
    | Some e -> result := e :: !result
    | None -> ()
  done;
  !result

let find t ~category =
  List.filter (fun e -> String.equal (Trace_event.category e.event) category) (entries t)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.head <- 0;
  t.count <- 0

let entry_to_json e =
  let fields =
    match Trace_event.to_json e.event with
    | Jsonx.Obj fields -> fields
    | other -> [ ("event", other) ]
  in
  Jsonx.Obj
    (("t_ns", Jsonx.Int (Simtime.to_ns e.time))
    :: ("cat", Jsonx.String (Trace_event.category e.event))
    :: fields)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Jsonx.to_buffer buf (entry_to_json e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let pp_entry ppf e =
  Format.fprintf ppf "[%a] %s: %s" Simtime.pp e.time
    (Trace_event.category e.event)
    (Trace_event.render e.event)
