type violation = { law : string; detail : string }

exception Violation of violation

let pp_violation ppf v = Format.fprintf ppf "invariant %s violated: %s" v.law v.detail

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Format.asprintf "%a" pp_violation v)
    | _ -> None)

type law = { name : string; check : unit -> (unit, string) result }

type t = {
  mutable laws : law list; (* registration order, oldest first *)
  mutable armed : bool;
  mutable checks_run : int;
  mutable violations_seen : int;
}

let create () = { laws = []; armed = false; checks_run = 0; violations_seen = 0 }

let register t ~law check = t.laws <- t.laws @ [ { name = law; check } ]

let names t = List.map (fun l -> l.name) t.laws

let arm t = t.armed <- true
let disarm t = t.armed <- false
let armed t = t.armed
let checks_run t = t.checks_run
let violations_seen t = t.violations_seen

let check t =
  t.checks_run <- t.checks_run + 1;
  let violations =
    List.filter_map
      (fun l ->
        match l.check () with
        | Ok () -> None
        | Error detail -> Some { law = l.name; detail }
        | exception exn ->
            (* A law that cannot even be evaluated is itself a violation:
               conservation checks must be total. *)
            Some { law = l.name; detail = "check raised: " ^ Printexc.to_string exn })
      t.laws
  in
  t.violations_seen <- t.violations_seen + List.length violations;
  violations

let check_exn t =
  match check t with [] -> () | v :: _ -> raise (Violation v)

(* Law-writing helpers: most conservation laws are equalities or bounds
   over integer quantities; these produce uniform diagnostics. *)

let require cond fmt =
  Format.kasprintf (fun detail -> if cond then Ok () else Error detail) fmt

let equal_int ~what expected actual =
  require (expected = actual) "%s: expected %d, got %d (delta %d)" what expected actual
    (actual - expected)

let leq_int ~what actual bound =
  require (actual <= bound) "%s: %d exceeds bound %d" what actual bound

let non_negative ~what actual = require (actual >= 0) "%s: %d is negative" what actual
