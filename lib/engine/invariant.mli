(** Conservation-law registry.

    The paper's central accounting claim — every unit of consumption is
    charged to exactly one resource container (§4.4, §5.1) — is checked
    mechanically rather than asserted: each subsystem registers {e laws}
    (closures re-deriving a quantity from first principles and comparing it
    with the incrementally-maintained one), and the machine runs every law
    at a configurable interval and at simulation quiesce.

    A registry is inert until {!arm}ed; registration is always safe and
    costs nothing on the simulation fast paths. *)

type violation = { law : string; detail : string }

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

type t

val create : unit -> t

val register : t -> law:string -> (unit -> (unit, string) result) -> unit
(** Add a named law.  Laws run in registration order; a law that raises is
    reported as a violation of itself (checks must be total). *)

val names : t -> string list

val arm : t -> unit
(** Mark the registry active.  Subsystems holding a registry only schedule
    periodic checks (and enable strict charging) when it is armed. *)

val disarm : t -> unit
val armed : t -> bool

val check : t -> violation list
(** Run every law; returns all violations (empty = all laws hold). *)

val check_exn : t -> unit
(** Like {!check} but raises {!Violation} on the first failure. *)

val checks_run : t -> int
(** Number of {!check}/{!check_exn} sweeps performed. *)

val violations_seen : t -> int

(** {1 Law-writing helpers} *)

val require : bool -> ('a, Format.formatter, unit, (unit, string) result) format4 -> 'a
val equal_int : what:string -> int -> int -> (unit, string) result
val leq_int : what:string -> int -> int -> (unit, string) result
val non_negative : what:string -> int -> (unit, string) result
