(** A minimal JSON tree: writer and parser.

    The repository has no external JSON dependency; this module covers what
    the observability exporters need — emitting JSON-lines traces and
    metrics snapshots, and re-parsing them in tests and tooling.  Numbers
    are kept as either [Int] or [Float] so integer counters survive a
    round trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no trailing newline). *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON document.  Trailing whitespace is allowed; trailing
    garbage is an error. *)

val parse_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

(** {1 Accessors} (convenience for tests and tooling) *)

val member : string -> t -> t option
(** [member key (Obj _)] is the value bound to [key], if any. *)

val to_list : t -> t list
(** [[]] when the value is not a [List]. *)

val string_value : t -> string option
val int_value : t -> int option
(** [int_value] accepts [Int] and integral [Float]s. *)

val float_value : t -> float option
(** [float_value] accepts both [Int] and [Float]. *)
