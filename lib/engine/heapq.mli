(** A binary min-heap keyed by [(priority, sequence)] with O(log n) insert
    and extract-min, plus O(1) lazy cancellation.

    The heap is the backbone of the event queue: priorities are simulated
    timestamps and the monotonically increasing sequence number makes
    extraction stable (events scheduled earlier at the same instant fire
    first), which keeps every simulation run deterministic. *)

type 'a t

type handle
(** A handle onto an inserted element, usable to cancel it later. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (non-cancelled) elements. *)

val physical_size : 'a t -> int
(** Number of array slots currently holding a node, live or cancelled.
    Cancellation is lazy, but the heap compacts itself whenever dead nodes
    outnumber live ones (beyond a small floor), so this stays within
    [2 * length q + 65].  Exposed for tests and instrumentation. *)

val is_empty : 'a t -> bool

val insert : 'a t -> prio:int -> 'a -> handle
(** [insert q ~prio v] adds [v] with priority [prio] and returns a handle
    for cancellation.  Smaller priorities are extracted first; ties are
    broken by insertion order. *)

val cancel : 'a t -> handle -> bool
(** [cancel q h] removes the element behind [h] if it is still queued.
    Returns [false] if the element was already extracted or cancelled.
    Cancellation is lazy: the slot is skipped on a later extraction. *)

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the live element with the smallest priority, or
    [None] when the heap holds no live elements. *)

val peek_min_prio : 'a t -> int option
(** Priority of the next live element without removing it. *)

val clear : 'a t -> unit
