(** A registry of named, optionally labelled metrics.

    Subsystems register three kinds of instrument:

    - {e counters}: monotonically increasing integers mutated on the hot
      path (an increment costs one field write — cheap enough for the
      dispatcher);
    - {e gauges}: pull-style — a closure sampled at snapshot time, used to
      expose existing mutable statistics (e.g. the network stack's drop
      counters) without duplicating state, so the exported value agrees
      with the in-process view by construction;
    - {e histograms}: bounded-bucket distributions (see
      {!Stats.Histogram}).

    Identity is [(name, labels)].  Requesting an existing counter or
    histogram returns the registered instrument (so several components may
    share one by name); registering a gauge under an existing identity
    replaces the previous closure.  Snapshots are sorted by name then
    labels, so exports are deterministic. *)

type t

type labels = (string * string) list

type counter
type histogram

val create : unit -> t

(** {1 Registration} *)

val counter : t -> ?labels:labels -> string -> counter
val gauge : t -> ?labels:labels -> string -> (unit -> float) -> unit
val histogram : t -> ?labels:labels -> lo:float -> hi:float -> buckets:int -> string -> histogram
(** @raise Invalid_argument when an existing identity is bound to an
    instrument of a different kind. *)

val make_counter : ?labels:labels -> string -> counter
(** A free-standing counter, registered later (or never) with
    {!register_counter}; lets a component count before it learns which
    registry it reports into. *)

val register_counter : t -> counter -> unit

(** {1 Mutation and reading} *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { lo : float; hi : float; total : int; counts : int array }

type sample = { name : string; labels : labels; value : value }

val snapshot : t -> sample list
(** Current value of every registered metric, sorted by (name, labels). *)

val value : t -> ?labels:labels -> string -> value option
(** Look up one metric's current value. *)

val to_json : t -> Jsonx.t
(** [{ "schema_version": 1, "metrics": [ {"name", "labels", "kind",
    ...} ] }] — counters/gauges carry ["value"]; histograms carry ["lo"],
    ["hi"], ["total"] and ["counts"]. *)

val pp : Format.formatter -> t -> unit
(** Aligned human-readable dump of a snapshot. *)
