type curve = { name : string; mutable pts : (float * float) list (* reverse order *) }

let curve name = { name; pts = [] }
let add_point c ~x ~y = c.pts <- (x, y) :: c.pts
let curve_name c = c.name
let points c = List.rev c.pts

let y_at ?(eps = 1e-9) c x =
  (* Abscissae are often computed (e.g. [i * step]), so exact float equality
     misses points; match within a tolerance scaled to the magnitude of [x]
     and return the closest match. *)
  let tol = eps *. Float.max 1.0 (Float.abs x) in
  List.fold_left
    (fun best (px, py) ->
      let d = Float.abs (px -. x) in
      if d <= tol then
        match best with
        | Some (bd, _) when bd <= d -> best
        | _ -> Some (d, py)
      else best)
    None (points c)
  |> Option.map snd

type figure = { title : string; x_label : string; y_label : string; curves : curve list }

let figure ~title ~x_label ~y_label curves = { title; x_label; y_label; curves }
let figure_curves f = f.curves
let figure_title f = f.title

let xs_of f =
  let xs =
    List.concat_map (fun c -> List.map fst (points c)) f.curves
    |> List.sort_uniq compare
  in
  xs

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let pad width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

let pp_figure ppf f =
  let xs = xs_of f in
  let headers = f.x_label :: List.map curve_name f.curves in
  let rows =
    List.map
      (fun x ->
        fmt_num x
        :: List.map
             (fun c -> match y_at c x with Some y -> fmt_num y | None -> "-")
             f.curves)
      xs
  in
  let columns = List.length headers in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      (String.length (List.nth headers i))
      rows
  in
  let widths = List.init columns width in
  let render_row row =
    String.concat "  " (List.map2 pad widths row)
  in
  Format.fprintf ppf "== %s ==@." f.title;
  Format.fprintf ppf "(y: %s)@." f.y_label;
  Format.fprintf ppf "%s@." (render_row headers);
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) rows

let pp_figure_chart ppf f =
  let xs = xs_of f in
  let peak =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc (_, y) -> Float.max acc y) acc (points c))
      1e-9 f.curves
  in
  let bar_width = 46 in
  Format.fprintf ppf "== %s ==@." f.title;
  Format.fprintf ppf "(y: %s; full bar = %s)@." f.y_label (fmt_num peak);
  List.iter
    (fun c ->
      Format.fprintf ppf "-- %s --@." (curve_name c);
      List.iter
        (fun x ->
          match y_at c x with
          | None -> ()
          | Some y ->
              let n =
                int_of_float (Float.round (float_of_int bar_width *. y /. peak))
              in
              let n = if y > 0. && n = 0 then 1 else n in
              Format.fprintf ppf "%10s |%s %s@." (fmt_num x) (String.make n '#') (fmt_num y))
        xs)
    f.curves

let figure_to_csv f =
  let xs = xs_of f in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (f.x_label :: List.map curve_name f.curves));
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      let cells =
        fmt_num x
        :: List.map (fun c -> match y_at c x with Some y -> fmt_num y | None -> "") f.curves
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

type table = { t_title : string; columns : string list; mutable rows : string list list }

let table ~title ~columns = { t_title = title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Series.add_row: row width does not match columns";
  t.rows <- t.rows @ [ row ]

let table_rows t = t.rows

let pp_table ppf t =
  let all = t.columns :: t.rows in
  let columns = List.length t.columns in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init columns width in
  Format.fprintf ppf "== %s ==@." t.t_title;
  List.iter
    (fun row -> Format.fprintf ppf "%s@." (String.concat "  " (List.map2 pad widths row)))
    all

let table_to_csv t =
  let buf = Buffer.create 256 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    (t.columns :: t.rows);
  Buffer.contents buf
