(** Lightweight in-simulation tracing.

    Subsystems record timestamped {!Trace_event.t} values; tests, exporters
    and debugging sessions consume them structurally or as rendered text.
    Tracing defaults to disabled.  Call sites that build typed events should
    guard construction with {!enabled} so a disabled trace costs one branch
    and no allocation:

    {[ if Tracelog.enabled trace then
         Tracelog.event trace now (Trace_event.Kill { thread }) ]} *)

type t

type entry = { time : Simtime.t; event : Trace_event.t }

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds retained entries; the oldest are dropped first. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val event : t -> Simtime.t -> Trace_event.t -> unit
(** Record a typed event (no-op when disabled). *)

val emit : t -> Simtime.t -> category:string -> string -> unit
(** Record a raw-string {!Trace_event.Message} (no-op when disabled). *)

val emitf :
  t -> Simtime.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted emission; the message is only formatted when tracing is
    enabled — a disabled trace skips the formatting work entirely. *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val find : t -> category:string -> entry list
(** Entries whose {!Trace_event.category} equals [category]. *)

val clear : t -> unit

val to_jsonl : t -> string
(** Retained entries as JSON lines, oldest first.  Each line is the event's
    {!Trace_event.to_json} object with ["t_ns"] (timestamp in nanoseconds)
    and ["cat"] (the category) prepended. *)

val pp_entry : Format.formatter -> entry -> unit
