type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Pareto of float * float
  | Zipf of { values : float array; cdf : float array }
  | Empirical of { values : float array; cdf : float array }
  | Categorical of {
      values : float array;
      pmf : float array; (* normalized weights, for [mean] and tests *)
      prob : float array; (* alias-table acceptance probabilities *)
      alias : int array;
    }

let constant v = Constant v

let uniform ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  Uniform (lo, hi)

let exponential ~mean =
  if mean <= 0. then invalid_arg "Dist.exponential: mean must be positive";
  Exponential mean

let pareto ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Dist.pareto: parameters must be positive";
  Pareto (shape, scale)

let normalized_cdf weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist: total weight must be positive";
  let acc = ref 0. in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let normalized_pmf weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist: total weight must be positive";
  Array.map (fun w -> w /. total) weights

(* Walker/Vose alias table: O(n) build, O(1) sample.  Each entry [i]
   either accepts (probability [prob.(i)]) or redirects to [alias.(i)];
   overfull and underfull entries are paired off with two index stacks. *)
let alias_of_pmf pmf =
  let n = Array.length pmf in
  let prob = Array.make n 1. and alias = Array.init n (fun i -> i) in
  let scaled = Array.map (fun p -> p *. float_of_int n) pmf in
  let small = Array.make n 0 and large = Array.make n 0 in
  let ns = ref 0 and nl = ref 0 in
  for i = 0 to n - 1 do
    if scaled.(i) < 1. then begin
      small.(!ns) <- i;
      incr ns
    end
    else begin
      large.(!nl) <- i;
      incr nl
    end
  done;
  while !ns > 0 && !nl > 0 do
    decr ns;
    decr nl;
    let s = small.(!ns) and l = large.(!nl) in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) -. (1. -. scaled.(s));
    if scaled.(l) < 1. then begin
      small.(!ns) <- l;
      incr ns
    end
    else begin
      large.(!nl) <- l;
      incr nl
    end
  done;
  (* Leftovers are 1.0 up to rounding; both loops settle them to accept. *)
  while !nl > 0 do
    decr nl;
    prob.(large.(!nl)) <- 1.
  done;
  while !ns > 0 do
    decr ns;
    prob.(small.(!ns)) <- 1.
  done;
  (prob, alias)

let categorical_alias pairs =
  if Array.length pairs = 0 then invalid_arg "Dist.categorical_alias: empty";
  let weights = Array.map fst pairs and values = Array.map snd pairs in
  let pmf = normalized_pmf weights in
  let prob, alias = alias_of_pmf pmf in
  Categorical { values; pmf; prob; alias }

let zipf_weights ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s))

let zipf ~n ~s =
  let weights = zipf_weights ~n ~s in
  let pmf = normalized_pmf weights in
  let prob, alias = alias_of_pmf pmf in
  Categorical { values = Array.init n (fun i -> float_of_int (i + 1)); pmf; prob; alias }

let zipf_cdf ~n ~s =
  let weights = zipf_weights ~n ~s in
  Zipf { values = Array.init n (fun i -> float_of_int (i + 1)); cdf = normalized_cdf weights }

let empirical pairs =
  if Array.length pairs = 0 then invalid_arg "Dist.empirical: empty";
  let weights = Array.map fst pairs and values = Array.map snd pairs in
  Empirical { values; cdf = normalized_cdf weights }

(* Smallest index whose cdf value is >= u. *)
let cdf_index cdf u =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cdf - 1)

let sample_index t rng =
  match t with
  | Zipf { cdf; _ } | Empirical { cdf; _ } -> cdf_index cdf (Rng.float rng 1.)
  | Categorical { prob; alias; _ } ->
      let i = Rng.int rng (Array.length prob) in
      if Rng.float rng 1. < Array.unsafe_get prob i then i else Array.unsafe_get alias i
  | Constant _ | Uniform _ | Exponential _ | Pareto _ ->
      invalid_arg "Dist.sample_index: not a finite categorical distribution"

let sample t rng =
  match t with
  | Constant v -> v
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential mean ->
      let u = 1. -. Rng.float rng 1. in
      -.mean *. log u
  | Pareto (shape, scale) ->
      let u = 1. -. Rng.float rng 1. in
      scale /. (u ** (1. /. shape))
  | Zipf { values; cdf } | Empirical { values; cdf } ->
      values.(cdf_index cdf (Rng.float rng 1.))
  | Categorical { values; _ } -> values.(sample_index t rng)

let sample_int t rng =
  let v = sample t rng in
  if v <= 0. then 0 else int_of_float (Float.round v)

let mean = function
  | Constant v -> v
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Exponential m -> m
  | Pareto (shape, scale) -> if shape <= 1. then infinity else shape *. scale /. (shape -. 1.)
  | Zipf { values; cdf } | Empirical { values; cdf } ->
      let acc = ref 0. and prev = ref 0. in
      Array.iteri
        (fun i c ->
          acc := !acc +. ((c -. !prev) *. values.(i));
          prev := c)
        cdf;
      !acc
  | Categorical { values; pmf; _ } ->
      let acc = ref 0. in
      Array.iteri (fun i p -> acc := !acc +. (p *. values.(i))) pmf;
      !acc

(* The exact per-index probability the alias table implies: index [i] is
   drawn uniformly then accepted with [prob.(i)], and every entry [j]
   aliased to [i] redirects its rejected mass [(1 - prob.(j))].  Tests
   check this reconstruction equals the normalized weights, which is the
   correctness statement for the table build itself. *)
let alias_probabilities = function
  | Categorical { prob; alias; _ } ->
      let n = Array.length prob in
      let inv_n = 1. /. float_of_int n in
      let implied = Array.make n 0. in
      for j = 0 to n - 1 do
        implied.(j) <- implied.(j) +. (prob.(j) *. inv_n);
        implied.(alias.(j)) <- implied.(alias.(j)) +. ((1. -. prob.(j)) *. inv_n)
      done;
      Some implied
  | _ -> None

let pmf = function
  | Categorical { pmf; _ } -> Some (Array.copy pmf)
  | _ -> None
