(** Result series and tables for the experiment harnesses.

    Each reproduced figure is a set of named curves over a shared x-axis;
    each reproduced table is a list of labelled rows.  This module collects
    points and renders them as aligned text tables (the format the paper's
    harness would have printed) and as CSV for external plotting. *)

type curve

val curve : string -> curve
(** A named, initially empty curve. *)

val add_point : curve -> x:float -> y:float -> unit
val curve_name : curve -> string
val points : curve -> (float * float) list
(** Points in insertion order. *)

val y_at : ?eps:float -> curve -> float -> float option
(** [y_at c x] is the y value recorded closest to [x] within a relative
    tolerance of [eps] (default [1e-9], scaled by [max 1. |x|]).  Abscissae
    produced by float arithmetic (e.g. [i *. step]) therefore still match
    their nominal grid value. *)

type figure

val figure : title:string -> x_label:string -> y_label:string -> curve list -> figure
val pp_figure : Format.formatter -> figure -> unit
(** Render the figure as an aligned table: one row per x value, one column
    per curve. *)

val pp_figure_chart : Format.formatter -> figure -> unit
(** Render the figure as horizontal ASCII bar charts, one block per curve,
    bars scaled to the figure-wide maximum — a terminal-friendly
    approximation of the paper's plots. *)

val figure_to_csv : figure -> string
val figure_curves : figure -> curve list
val figure_title : figure -> string

type table

val table : title:string -> columns:string list -> table
val add_row : table -> string list -> unit
val pp_table : Format.formatter -> table -> unit
val table_to_csv : table -> string
val table_rows : table -> string list list
