type labels = (string * string) list

type counter = { c_name : string; c_labels : labels; mutable c_value : int }
type histogram = { h_name : string; h_labels : labels; h_hist : Stats.Histogram.t }

type instrument =
  | I_counter of counter
  | I_gauge of (unit -> float) ref
  | I_histogram of histogram

type entry = { e_name : string; e_labels : labels; e_instrument : instrument }

type t = { by_key : (string, entry) Hashtbl.t }

let create () = { by_key = Hashtbl.create 64 }

let normalize labels = List.sort compare labels

let key name labels =
  let buf = Buffer.create (String.length name + 16) in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let conflict name existing wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered as a %s (wanted a %s)" name
       (kind_name existing) wanted)

let make_counter ?(labels = []) name =
  { c_name = name; c_labels = normalize labels; c_value = 0 }

let register_counter t c =
  let k = key c.c_name c.c_labels in
  match Hashtbl.find_opt t.by_key k with
  | Some { e_instrument = I_counter _; _ } | None ->
      Hashtbl.replace t.by_key k
        { e_name = c.c_name; e_labels = c.c_labels; e_instrument = I_counter c }
  | Some { e_instrument; _ } -> conflict c.c_name e_instrument "counter"

let counter t ?(labels = []) name =
  let labels = normalize labels in
  match Hashtbl.find_opt t.by_key (key name labels) with
  | Some { e_instrument = I_counter c; _ } -> c
  | Some { e_instrument; _ } -> conflict name e_instrument "counter"
  | None ->
      let c = { c_name = name; c_labels = labels; c_value = 0 } in
      register_counter t c;
      c

let gauge t ?(labels = []) name read =
  let labels = normalize labels in
  let k = key name labels in
  match Hashtbl.find_opt t.by_key k with
  | Some { e_instrument = I_gauge cell; _ } -> cell := read
  | Some { e_instrument; _ } -> conflict name e_instrument "gauge"
  | None ->
      Hashtbl.replace t.by_key k
        { e_name = name; e_labels = labels; e_instrument = I_gauge (ref read) }

let histogram t ?(labels = []) ~lo ~hi ~buckets name =
  let labels = normalize labels in
  let k = key name labels in
  match Hashtbl.find_opt t.by_key k with
  | Some { e_instrument = I_histogram h; _ } -> h
  | Some { e_instrument; _ } -> conflict name e_instrument "histogram"
  | None ->
      let h = { h_name = name; h_labels = labels; h_hist = Stats.Histogram.create ~lo ~hi ~buckets } in
      Hashtbl.replace t.by_key k { e_name = name; e_labels = labels; e_instrument = I_histogram h };
      h

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let observe h x = Stats.Histogram.add h.h_hist x

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { lo : float; hi : float; total : int; counts : int array }

type sample = { name : string; labels : labels; value : value }

let read_instrument = function
  | I_counter c -> Counter c.c_value
  | I_gauge cell -> Gauge (!cell ())
  | I_histogram h ->
      Histogram
        {
          lo = Stats.Histogram.lo h.h_hist;
          hi = Stats.Histogram.hi h.h_hist;
          total = Stats.Histogram.count h.h_hist;
          counts = Stats.Histogram.bucket_counts h.h_hist;
        }

let snapshot t =
  Hashtbl.fold
    (fun _ e acc -> { name = e.e_name; labels = e.e_labels; value = read_instrument e.e_instrument } :: acc)
    t.by_key []
  |> List.sort (fun a b ->
         match compare a.name b.name with 0 -> compare a.labels b.labels | n -> n)

let value t ?(labels = []) name =
  match Hashtbl.find_opt t.by_key (key name (normalize labels)) with
  | Some e -> Some (read_instrument e.e_instrument)
  | None -> None

let sample_to_json s =
  let open Jsonx in
  let base =
    [
      ("name", String s.name);
      ("labels", Obj (List.map (fun (k, v) -> (k, String v)) s.labels));
    ]
  in
  match s.value with
  | Counter v -> Obj (base @ [ ("kind", String "counter"); ("value", Int v) ])
  | Gauge v -> Obj (base @ [ ("kind", String "gauge"); ("value", Float v) ])
  | Histogram { lo; hi; total; counts } ->
      Obj
        (base
        @ [
            ("kind", String "histogram");
            ("lo", Float lo);
            ("hi", Float hi);
            ("total", Int total);
            ("counts", List (Array.to_list (Array.map (fun c -> Int c) counts)));
          ])

let to_json t =
  let open Jsonx in
  Obj
    [
      ("schema_version", Int 1);
      ("metrics", List (List.map sample_to_json (snapshot t)));
    ]

let pp ppf t =
  List.iter
    (fun s ->
      let labels =
        match s.labels with
        | [] -> ""
        | ls ->
            "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls) ^ "}"
      in
      match s.value with
      | Counter v -> Format.fprintf ppf "%-40s %d@." (s.name ^ labels) v
      | Gauge v -> Format.fprintf ppf "%-40s %.3f@." (s.name ^ labels) v
      | Histogram { total; _ } ->
          Format.fprintf ppf "%-40s histogram n=%d@." (s.name ^ labels) total)
    (snapshot t)
