(* Conservative time-window barrier executor.  See shard.mli for the
   protocol and its determinism argument.

   The barrier is a generation-counted mutex/condvar pair, the same shape
   as Harness.Sweep's pool: the coordinator publishes (generation,
   horizon) and broadcasts; each worker runs the shards of its lane and
   decrements [pending]; the coordinator waits for [pending = 0], runs
   the exchange, and publishes the next window.  Workers are spawned per
   [run_windows] call and joined on exit (including the exception paths),
   so the executor owns no long-lived threads. *)

module Intbox = struct
  type t = { mutable buf : int array; mutable len : int }

  let create () = { buf = Array.make 64 0; len = 0 }

  let ensure t extra =
    let cap = Array.length t.buf in
    if t.len + extra > cap then begin
      let cap' = ref (cap * 2) in
      while t.len + extra > !cap' do
        cap' := !cap' * 2
      done;
      let buf = Array.make !cap' 0 in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end

  let push2 t a b =
    ensure t 2;
    t.buf.(t.len) <- a;
    t.buf.(t.len + 1) <- b;
    t.len <- t.len + 2

  let push3 t a b c =
    ensure t 3;
    t.buf.(t.len) <- a;
    t.buf.(t.len + 1) <- b;
    t.buf.(t.len + 2) <- c;
    t.len <- t.len + 3

  let length t = t.len

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Shard.Intbox.get: out of bounds";
    t.buf.(i)

  let clear t = t.len <- 0
end

type t = { shards : int; domains : int }

let create ?domains ~shards () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Shard.create: domains must be >= 1";
        Stdlib.min d shards
    | None -> Stdlib.min shards (Domain.recommended_domain_count ())
  in
  { shards; domains }

let shards t = t.shards
let domains t = t.domains

let run_sequential ~prepare ~shards ~next ~work ~exchange =
  prepare ();
  let rec loop () =
    match next () with
    | None -> ()
    | Some h ->
        for s = 0 to shards - 1 do
          work s h
        done;
        exchange h;
        loop ()
  in
  loop ()

let run_parallel ~prepare t ~next ~work ~exchange =
  let m = Mutex.create () in
  let go = Condition.create () in
  let all_done = Condition.create () in
  let horizon = ref 0 in
  let gen = ref 0 in
  let pending = ref 0 in
  let stop = ref false in
  let failure = ref None in
  let record e bt =
    Mutex.lock m;
    (match !failure with None -> failure := Some (e, bt) | Some _ -> ());
    Mutex.unlock m
  in
  (* Lane [l] owns shards l, l+domains, l+2*domains, ... — a static
     assignment, so which domain runs a shard never depends on timing. *)
  let lane_work lane h =
    let s = ref lane in
    while !s < t.shards do
      work !s h;
      s := !s + t.domains
    done
  in
  let worker lane () =
    (try prepare () with e -> record e (Printexc.get_raw_backtrace ()));
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock m;
      while (not !stop) && !gen = !seen do
        Condition.wait go m
      done;
      if !stop then begin
        Mutex.unlock m;
        running := false
      end
      else begin
        let h = !horizon in
        seen := !gen;
        Mutex.unlock m;
        (match !failure with
        | Some _ -> () (* a window already failed; just drain the barrier *)
        | None -> (
            try lane_work lane h with e -> record e (Printexc.get_raw_backtrace ())));
        Mutex.lock m;
        decr pending;
        if !pending = 0 then Condition.signal all_done;
        Mutex.unlock m
      end
    done
  in
  let workers = Array.init (t.domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  let shutdown () =
    Mutex.lock m;
    stop := true;
    Condition.broadcast go;
    Mutex.unlock m;
    Array.iter Domain.join workers
  in
  Fun.protect ~finally:shutdown (fun () ->
      prepare ();
      let rec loop () =
        match next () with
        | None -> ()
        | Some h ->
            Mutex.lock m;
            horizon := h;
            incr gen;
            pending := t.domains - 1;
            Condition.broadcast go;
            Mutex.unlock m;
            (try lane_work 0 h with e -> record e (Printexc.get_raw_backtrace ()));
            Mutex.lock m;
            while !pending > 0 do
              Condition.wait all_done m
            done;
            Mutex.unlock m;
            (match !failure with
            | Some (e, bt) -> Printexc.raise_with_backtrace e bt
            | None -> ());
            exchange h;
            loop ()
      in
      loop ())

let run_windows ?(prepare = fun () -> ()) t ~next ~work ~exchange =
  if t.domains = 1 then run_sequential ~prepare ~shards:t.shards ~next ~work ~exchange
  else run_parallel ~prepare t ~next ~work ~exchange
