(** Sampling from the distributions used by the workload generators. *)

type t
(** A distribution over non-negative floats. *)

val constant : float -> t
val uniform : lo:float -> hi:float -> t

val exponential : mean:float -> t
(** Memoryless inter-arrival times; used for open-loop (Poisson) packet
    sources such as the SYN flooders. *)

val pareto : shape:float -> scale:float -> t
(** Heavy-tailed; Web object sizes are classically Pareto-distributed. *)

val zipf : n:int -> s:float -> t
(** Zipf over ranks [1..n] with exponent [s] (returned as a float rank);
    used for document popularity.  Sampled by Walker's alias method: O(n)
    one-time build, O(1) per sample — a 10^6-document popularity draw
    costs the same as a 4-document one. *)

val zipf_cdf : n:int -> s:float -> t
(** The same distribution sampled by inverting the precomputed CDF
    (O(log n) binary search).  Kept as the executable spec the alias
    sampler is tested against. *)

val categorical_alias : (float * float) array -> t
(** [categorical_alias [| (w1, v1); ... |]]: same distribution as
    {!empirical}, but sampled by the alias method (O(1) per draw instead
    of O(log n)).  Note the two consume the random stream differently.
    @raise Invalid_argument on empty or non-positive total weight. *)

val empirical : (float * float) array -> t
(** [empirical [| (w1, v1); ... |]] samples value [vi] with probability
    proportional to weight [wi], by CDF inversion.  @raise
    Invalid_argument on empty or non-positive total weight. *)

val sample : t -> Rng.t -> float
val sample_int : t -> Rng.t -> int
(** [sample_int] rounds the sample to the nearest integer, clamped at 0. *)

val sample_index : t -> Rng.t -> int
(** For finite categorical distributions ({!zipf}, {!zipf_cdf},
    {!empirical}, {!categorical_alias}): the {e index} of the sampled
    entry (0-based), skipping the value array — what doc-id mixes want.
    @raise Invalid_argument for continuous distributions. *)

val mean : t -> float
(** Analytic mean where available; for the finite categorical
    distributions the exact mean is computed. *)

(** {1 Introspection for tests} *)

val alias_probabilities : t -> float array option
(** For alias-sampled distributions: the exact per-index probability
    implied by the built table (acceptance mass plus redirected rejection
    mass).  Agreement with the normalized weights is the table-build
    correctness property. *)

val pmf : t -> float array option
(** For alias-sampled distributions: the normalized weight vector. *)
