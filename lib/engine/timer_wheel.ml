(* Hierarchical timer wheel: [levels] wheels of 64 slots each, slot
   granularity 64^l ns at level [l], so 11 levels cover the full 63-bit
   priority range.  Every queued node lives in the bucket given by its
   priority's level-l digit, where [l] is the highest 6-bit digit in
   which the priority differs from the wheel's lower bound [cur]; as
   [cur] advances into a bucket, the bucket cascades one level down.

   The resulting invariants carry all the correctness weight:

   - every queued priority is [>= cur];
   - at level 0 all nodes sit in the current 64 ns window, one exact
     priority per slot, at slots [>= cur land 63];
   - at level [l >= 1] all nodes share [cur]'s digits above [l] and sit
     in slots strictly beyond [cur]'s level-l digit (the slot [cur] is
     inside was emptied by the cascade that moved [cur] into it);
   - equal priorities always share one bucket: a bucket is a function of
     (prio, cur) only, so a later equal-priority insert lands where the
     earlier node already is, behind it.  Buckets append at the tail and
     cascades walk head-to-tail, so insertion-order FIFO is structural.

   Buckets are circular doubly-linked lists through a per-slot sentinel,
   which makes cancellation a true O(1) unlink — no dead nodes, no
   compaction, and a cancel-heavy workload (TCP timers under SYN flood)
   releases its payloads immediately. *)

type 'a node = {
  prio : int;
  value : 'a;
  mutable lvl : int; (* current level, for the per-level count *)
  mutable queued : bool;
  mutable prev : 'a node;
  mutable next : 'a node;
}

type handle = H : 'a node -> handle

let bits = 6
let slot_count = 64
let levels = 11 (* 11 * 6 = 66 bits >= the 62 of max_int *)

type 'a t = {
  slots : 'a node array array; (* [levels][slot_count] sentinels *)
  counts : int array; (* queued nodes per level *)
  mutable live : int;
  mutable cur : int; (* lower bound on every queued priority *)
}

(* The sentinel's [value] is never read; the immediate 0 keeps the slot
   array from pinning popped payloads. *)
let make_sentinel () : 'a node =
  let rec s = { prio = min_int; value = Obj.magic 0; lvl = -1; queued = false; prev = s; next = s } in
  s

let create () =
  {
    slots = Array.init levels (fun _ -> Array.init slot_count (fun _ -> make_sentinel ()));
    counts = Array.make levels 0;
    live = 0;
    cur = 0;
  }

let length t = t.live
let is_empty t = t.live = 0
let lower_bound t = t.cur

let append sentinel node =
  let tail = sentinel.prev in
  node.prev <- tail;
  node.next <- sentinel;
  tail.next <- node;
  sentinel.prev <- node

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev;
  node.prev <- node;
  node.next <- node

let rec level_of_diff l d = if d < slot_count then l else level_of_diff (l + 1) (d lsr bits)

let place t node =
  let lvl = level_of_diff 0 (node.prio lxor t.cur) in
  let slot = (node.prio lsr (bits * lvl)) land (slot_count - 1) in
  node.lvl <- lvl;
  append t.slots.(lvl).(slot) node;
  t.counts.(lvl) <- t.counts.(lvl) + 1

let insert t ~prio value =
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.insert: priority %d below lower bound %d" prio t.cur);
  let rec node = { prio; value; lvl = 0; queued = true; prev = node; next = node } in
  place t node;
  t.live <- t.live + 1;
  H node

let cancel t (H node) =
  if node.queued then begin
    node.queued <- false;
    unlink node;
    t.counts.(node.lvl) <- t.counts.(node.lvl) - 1;
    t.live <- t.live - 1;
    true
  end
  else false

(* Move every node of a cascading bucket down; [t.cur] has just advanced
   to the bucket's window start, so [place] lands each node at a strictly
   lower level, head-to-tail order preserved by tail-append. *)
let cascade t sentinel lvl =
  let rec drain () =
    let node = sentinel.next in
    if node != sentinel then begin
      unlink node;
      t.counts.(lvl) <- t.counts.(lvl) - 1;
      place t node;
      drain ()
    end
  in
  drain ()

let mask = slot_count - 1

(* Extract the minimum-priority node with priority <= horizon, advancing
   [cur] no further than [min next-priority horizon]; [commit] decides
   whether an empty wheel pins [cur] to the horizon. *)
let rec extract t ~horizon ~commit =
  if t.live = 0 then begin
    if commit && horizon > t.cur then t.cur <- horizon;
    None
  end
  else if t.counts.(0) > 0 then begin
    (* Level 0: scan the current window from cur's slot; the first busy
       slot holds exactly the next priority, in FIFO order. *)
    let s = ref (t.cur land mask) in
    while !s < slot_count && t.slots.(0).(!s).next == t.slots.(0).(!s) do incr s done;
    if !s = slot_count then invalid_arg "Timer_wheel: inconsistent level-0 count"
    else begin
      let node = t.slots.(0).(!s).next in
      if node.prio > horizon then begin
        if horizon > t.cur then t.cur <- horizon;
        None
      end
      else begin
        unlink node;
        node.queued <- false;
        t.counts.(0) <- t.counts.(0) - 1;
        t.live <- t.live - 1;
        t.cur <- node.prio;
        Some (node.prio, node.value)
      end
    end
  end
  else scan_levels t ~horizon ~commit 1

(* Levels >= 1: find the next busy bucket beyond cur's digit, cascade it,
   and retry from level 0.  [t.live > 0] guarantees some level is busy. *)
and scan_levels t ~horizon ~commit lvl =
  if lvl >= levels then begin
    (* Unreachable while the level counts agree with [live]; fail loudly
       rather than spin if they ever do not. *)
    invalid_arg "Timer_wheel: inconsistent level counts"
  end
  else if t.counts.(lvl) = 0 then scan_levels t ~horizon ~commit (lvl + 1)
  else begin
    let shift = bits * lvl in
    let j = ref (((t.cur lsr shift) land mask) + 1) in
    while !j < slot_count && t.slots.(lvl).(!j).next == t.slots.(lvl).(!j) do incr j done;
    if !j = slot_count then scan_levels t ~horizon ~commit (lvl + 1)
    else begin
      (* Window start of the found bucket: cur's digits above [lvl],
         digit [lvl] = j, zeros below.  At the top level there are no
         digits above — and shifting by [shift + bits > 63] would be
         unspecified, so that case must short-circuit. *)
      let above =
        (* [lsl]/[lsr] are right-associative, so the rounding-down needs
           explicit parens; and a shift amount > 62 is unspecified, so the
           top level (which has no digits above it) must short-circuit. *)
        let top = shift + bits in
        if top > 62 then 0 else (t.cur lsr top) lsl top
      in
      let bucket_start = above lor (!j lsl shift) in
      if bucket_start > horizon then begin
        if horizon > t.cur then t.cur <- horizon;
        None
      end
      else begin
        t.cur <- bucket_start;
        cascade t t.slots.(lvl).(!j) lvl;
        extract t ~horizon ~commit
      end
    end
  end

let pop_min t = extract t ~horizon:max_int ~commit:false
let pop_min_until t ~horizon = extract t ~horizon ~commit:true

let clear t =
  Array.iter
    (fun row ->
      Array.iter
        (fun sentinel ->
          let rec drain () =
            let node = sentinel.next in
            if node != sentinel then begin
              node.queued <- false;
              unlink node;
              drain ()
            end
          in
          drain ())
        row)
    t.slots;
  Array.fill t.counts 0 levels 0;
  t.live <- 0
